// Benchmark harness: one benchmark per table and figure of the
// paper's evaluation (§5), plus ablation benchmarks for the design
// choices called out in DESIGN.md and micro benchmarks for the
// numerical substrates.
//
// The figure/table benchmarks run reduced-but-faithful scales so the
// whole suite stays in minutes; `go run ./cmd/robobench -full` runs
// the paper-scale versions. Each benchmark reports the experiment's
// headline quantity via b.ReportMetric, so the regenerated "rows" are
// visible in benchmark output.
package repro

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"repro/internal/bo"
	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/forest"
	"repro/internal/gp"
	"repro/internal/linalg"
	"repro/internal/memo"
	"repro/internal/optimize"
	"repro/internal/sample"
	"repro/internal/sparksim"
	"repro/internal/tuners"
)

// benchConfig is the reduced scale shared by the figure benchmarks.
func benchConfig() experiments.Config {
	return experiments.Config{Seed: 1, Budget: 60, Repeats: 1, MeasureReps: 2, Fast: true}
}

// --- Figure/Table benchmarks -------------------------------------------------

// BenchmarkFig2ModelR2 regenerates Figure 2 (R² of the four
// importance models) and reports RandomForest's mean R² advantage
// over the best linear model.
func BenchmarkFig2ModelR2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig2ModelComparison(benchConfig(), 120)
		var rfSum, linSum float64
		for _, label := range res.Labels {
			rfSum += res.Scores[label]["RandomForest"]
			linSum += math.Max(res.Scores[label]["Lasso"], res.Scores[label]["ElasticNet"])
		}
		n := float64(len(res.Labels))
		b.ReportMetric(rfSum/n, "rf-r2")
		b.ReportMetric(linSum/n, "linear-r2")
	}
}

// BenchmarkFig3TunerQuality regenerates Figure 3 (best execution time
// scaled to Random Search) on the full workload grid and reports
// ROBOTune's mean advantage over BestConfig.
func BenchmarkFig3TunerQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		comp := experiments.RunComparison(benchConfig(), nil)
		rows := comp.Fig3()
		mean, max := experiments.SummarizeScaled(rows, "BestConfig")
		b.ReportMetric(mean, "adv-vs-bestconfig")
		b.ReportMetric(max, "max-adv")
	}
}

// BenchmarkFig4SearchCost regenerates Figure 4 (search cost scaled to
// Random Search) and reports ROBOTune's mean cost advantage over
// Random Search.
func BenchmarkFig4SearchCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		comp := experiments.RunComparison(benchConfig(),
			func(w string) bool { return w == "PageRank" || w == "KMeans" || w == "TeraSort" })
		rows := comp.Fig4()
		mean, _ := experiments.SummarizeScaled(rows, "RandomSearch")
		b.ReportMetric(mean, "cost-adv-vs-rs")
	}
}

// BenchmarkFig5Distribution regenerates Figure 5 (execution-time
// distribution of sampled configurations for PR and KM) and reports
// the median ratio of Random Search to ROBOTune for KMeans.
func BenchmarkFig5Distribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		comp := experiments.RunComparison(benchConfig(),
			func(w string) bool { return w == "PageRank" || w == "KMeans" })
		km := comp.Fig5("KMeans")
		b.ReportMetric(km.Summary["RandomSearch"].P50/km.Summary["ROBOTune"].P50, "km-p50-ratio")
		pr := comp.Fig5("PageRank")
		b.ReportMetric(pr.Summary["RandomSearch"].P50/pr.Summary["ROBOTune"].P50, "pr-p50-ratio")
	}
}

// BenchmarkTable2SearchSpeed regenerates Table 2 (iterations to reach
// within 1/5/10% of the best achieved time) and reports the mean
// within-5% iteration across workloads.
func BenchmarkTable2SearchSpeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		comp := experiments.RunComparison(benchConfig(), nil)
		rows := comp.Table2()
		var w5 float64
		for _, r := range rows {
			w5 += r.Within5
		}
		b.ReportMetric(w5/float64(len(rows)), "mean-within5-iter")
	}
}

// BenchmarkFig6Memoization regenerates Figure 6 (per-iteration
// minimum for PR-D1 vs PR-D3) and reports the within-5% iteration for
// both: memoized D3 sessions should converge earlier than cold D1.
func BenchmarkFig6Memoization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		comp := experiments.RunComparison(benchConfig(),
			func(w string) bool { return w == "PageRank" })
		f6 := comp.Fig6("PageRank")
		b.ReportMetric(f6.IterWithin5["D1"], "d1-within5-iter")
		b.ReportMetric(f6.IterWithin5["D3"], "d3-within5-iter")
	}
}

// BenchmarkFig7Recall regenerates Figure 7 (selection recall vs
// sample count) and reports recall at 100 samples (the paper's
// chosen operating point, where recall should still be high).
func BenchmarkFig7Recall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig7SelectionRecall(benchConfig(), []int{150, 100, 50, 25})
		var at100 float64
		var n int
		for _, recs := range res.Recall {
			at100 += recs[1]
			n++
		}
		b.ReportMetric(at100/float64(n), "recall-at-100")
	}
}

// BenchmarkFig8Sampling regenerates Figure 8 (sampling behavior in
// the cores-vs-memory plane) and reports a clustering statistic:
// ROBOTune's mean nearest-neighbor distance relative to Random
// Search's (exploitation concentrates samples, so < 1).
func BenchmarkFig8Sampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8SamplingBehavior(benchConfig())
		rt := meanNearestNeighbor(res.Points["ROBOTune"])
		rs := meanNearestNeighbor(res.Points["RandomSearch"])
		b.ReportMetric(rt/rs, "rt-vs-rs-nn-dist")
	}
}

func meanNearestNeighbor(pts [][2]float64) float64 {
	if len(pts) < 2 {
		return 0
	}
	var sum float64
	for i, p := range pts {
		best := math.Inf(1)
		for j, q := range pts {
			if i == j {
				continue
			}
			// Normalize: cores 1-32, memory log-scaled.
			dc := (p[0] - q[0]) / 32
			dm := (math.Log(p[1]) - math.Log(q[1])) / math.Log(184320.0/8192)
			if d := dc*dc + dm*dm; d < best {
				best = d
			}
		}
		sum += math.Sqrt(best)
	}
	return sum / float64(len(pts))
}

// BenchmarkFig9Surface regenerates Figure 9 (GP response surface at
// increasing iterations) and reports the surface range (max-min) at
// the final snapshot — a fitted surface discriminates regions.
func BenchmarkFig9Surface(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig9ResponseSurface(benchConfig(), []int{25, 60}, 10)
		last := res.Surfaces[len(res.Surfaces)-1]
		if last == nil {
			b.ReportMetric(0, "surface-range-s")
			continue
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, row := range last {
			for _, v := range row {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
		b.ReportMetric(hi-lo, "surface-range-s")
	}
}

// BenchmarkDefaultComparison regenerates the §5.2 default-vs-tuned
// comparison and reports the KMeans mean speedup (the paper's 27.1x
// headline; the simulator reproduces the order of magnitude).
func BenchmarkDefaultComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.DefaultComparison(benchConfig())
		var km float64
		var n int
		for _, r := range rows {
			if r.Workload == "KMeans" && !math.IsNaN(r.Speedup) {
				km += r.Speedup
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(km/float64(n), "km-speedup")
		}
	}
}

// --- Ablation benchmarks -----------------------------------------------------

// tsObjective builds a fresh TeraSort evaluator for ablation runs.
func tsObjective(seed uint64) *sparksim.Evaluator {
	return sparksim.NewEvaluator(sparksim.PaperCluster(), sparksim.TeraSort(30), seed, 480)
}

// fastCoreOptions are reduced-scale ROBOTune options for ablations.
func fastCoreOptions() core.Options {
	o := core.Options{GenericSamples: 80, PermuteRepeats: 3}
	return o
}

// BenchmarkAblationHedge compares the GP-Hedge portfolio against each
// single acquisition function on a fixed tuning problem, reporting
// the best value found by each (lower is better). The portfolio
// should track the best individual function (§3.4).
func BenchmarkAblationHedge(b *testing.B) {
	run := func(portfolio []bo.Acquisition, seed uint64) float64 {
		opts := core.Options{GenericSamples: 80, PermuteRepeats: 3}
		opts.BO = bo.DefaultConfig()
		opts.BO.Portfolio = portfolio
		opts.BO.CandidatePool = 128
		opts.BO.Starts = 1
		opts.BO.GP.Restarts = 1
		rt := core.New(nil, opts)
		ev := tsObjective(seed)
		res := rt.Tune(ev, conf.SparkSpace(), 50, seed)
		if !res.Found {
			return 480
		}
		return ev.Measure(res.Best, 3, seed*13+1)
	}
	for i := 0; i < b.N; i++ {
		var hedge, pi, ei, lcb float64
		const reps = 3
		for s := uint64(0); s < reps; s++ {
			hedge += run(bo.DefaultPortfolio(), 40+s)
			pi += run([]bo.Acquisition{bo.PI{Xi: 0.01}}, 40+s)
			ei += run([]bo.Acquisition{bo.EI{Xi: 0.01}}, 40+s)
			lcb += run([]bo.Acquisition{bo.LCB{Kappa: 1.96}}, 40+s)
		}
		b.ReportMetric(hedge/reps, "hedge-best-s")
		b.ReportMetric(pi/reps, "pi-best-s")
		b.ReportMetric(ei/reps, "ei-best-s")
		b.ReportMetric(lcb/reps, "lcb-best-s")
	}
}

// BenchmarkAblationLHS compares LHS against plain uniform random
// initialization of the BO training set by fitting GPs on both and
// comparing predictive quality on held-out configurations.
func BenchmarkAblationLHS(b *testing.B) {
	space := conf.SparkSpace()
	sub, err := space.Sub([]string{
		conf.ExecutorCores, conf.ExecutorMemory, conf.ExecutorInstances,
		conf.DefaultParallelism, conf.MemoryFraction,
	}, space.Default().With(conf.ExecutorMemory, 32768))
	if err != nil {
		b.Fatal(err)
	}
	ev := tsObjective(3)
	evalAt := func(u []float64) float64 { return ev.EvaluateSpec(sub.Decode(u), sparksim.EvalSpec{}).Seconds }
	fitAndScore := func(design sample.Design, seed uint64) float64 {
		y := make([]float64, len(design))
		for i, u := range design {
			y[i] = evalAt(u)
		}
		cfg := gp.DefaultConfig()
		cfg.Restarts = 1
		cfg.Seed = seed
		g, err := gp.Fit(design, y, cfg)
		if err != nil {
			return math.Inf(1)
		}
		// Held-out MSE over a fixed probe set.
		probes := sample.LHS(40, sub.Dim(), sample.NewRNG(999))
		var mse float64
		for _, u := range probes {
			mu, _ := g.Predict(u)
			d := mu - evalAt(u)
			mse += d * d
		}
		return mse / 40
	}
	for i := 0; i < b.N; i++ {
		var lhs, uni, hal float64
		const seeds = 6
		for s := uint64(0); s < seeds; s++ {
			lhs += fitAndScore(sample.LHS(20, sub.Dim(), sample.NewRNG(s+5)), s)
			uni += fitAndScore(sample.Uniform(20, sub.Dim(), sample.NewRNG(s+5)), s)
			hal += fitAndScore(sample.Halton(20, sub.Dim(), sample.NewRNG(s+5)), s)
		}
		b.ReportMetric(lhs/seeds, "lhs-mse")
		b.ReportMetric(uni/seeds, "uniform-mse")
		b.ReportMetric(hal/seeds, "halton-mse")
	}
}

// BenchmarkAblationSelection compares BO over the RF-selected
// subspace against BO over all 44 raw dimensions with the same
// budget, reporting the best found by each. Dimension reduction is
// the paper's answer to BO's high-dimensional weakness (§3.1).
func BenchmarkAblationSelection(b *testing.B) {
	space := conf.SparkSpace()
	runPair := func(seed uint64) (sel, full float64) {
		// With selection (standard ROBOTune).
		opts := core.Options{GenericSamples: 80, PermuteRepeats: 3}
		opts.BO = bo.DefaultConfig()
		opts.BO.CandidatePool = 128
		opts.BO.Starts = 1
		opts.BO.GP.Restarts = 1
		rt := core.New(nil, opts)
		ev := tsObjective(seed)
		res := rt.Tune(ev, space, 50, seed)
		sel = 480.0
		if res.Found {
			sel = ev.Measure(res.Best, 3, 77)
		}

		// Without selection: plain BO over all 44 dims.
		engine := bo.New(space.Dim(), func() bo.Config {
			c := bo.DefaultConfig()
			c.Seed = seed
			c.CandidatePool = 128
			c.Starts = 1
			c.GP.Restarts = 1
			return c
		}())
		ev2 := tsObjective(seed)
		rng := sample.NewRNG(seed)
		bestFull := math.Inf(1)
		var bestCfg conf.Config
		for _, u := range sample.LHS(20, space.Dim(), rng) {
			rec := ev2.EvaluateSpec(space.Decode(u), sparksim.EvalSpec{})
			engine.Tell(u, math.Log(rec.Seconds))
			if rec.Completed && rec.Seconds < bestFull {
				bestFull, bestCfg = rec.Seconds, rec.Config
			}
		}
		for k := 0; k < 30; k++ {
			u, err := engine.Suggest()
			if err != nil {
				break
			}
			rec := ev2.EvaluateSpec(space.Decode(u), sparksim.EvalSpec{})
			engine.Tell(u, math.Log(rec.Seconds))
			if rec.Completed && rec.Seconds < bestFull {
				bestFull, bestCfg = rec.Seconds, rec.Config
			}
		}
		full = 480.0
		if bestCfg.Valid() {
			full = ev2.Measure(bestCfg, 3, 77)
		}
		return sel, full
	}
	for i := 0; i < b.N; i++ {
		var selSum, fullSum float64
		const seeds = 2
		for s := uint64(0); s < seeds; s++ {
			sel, full := runPair(11 + s*7)
			selSum += sel
			fullSum += full
		}
		b.ReportMetric(selSum/seeds, "with-selection-s")
		b.ReportMetric(fullSum/seeds, "raw-44dim-s")
	}
}

// BenchmarkAblationMDIvsMDA compares the conventional MDI importance
// against the paper's MDA (permutation) choice by checking how many
// of the top-5 MDA groups MDI agrees on for a PageRank sample set.
func BenchmarkAblationMDIvsMDA(b *testing.B) {
	space := conf.SparkSpace()
	ev := sparksim.NewEvaluator(sparksim.PaperCluster(), sparksim.PageRank(10), 21, 480)
	design := sample.LHS(100, space.Dim(), sample.NewRNG(21))
	x := make([][]float64, len(design))
	y := make([]float64, len(design))
	for i, u := range design {
		x[i] = u
		y[i] = ev.EvaluateSpec(space.Decode(u), sparksim.EvalSpec{}).Seconds
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := forest.RFDefaults()
		cfg.Trees = 60
		cfg.Seed = 21
		f := forest.Train(x, y, cfg)
		groups := space.Groups()
		mda := f.PermutationImportance(groups, 3, 22, 0)
		mdi := f.MDIImportance()
		// Aggregate MDI per group for comparability.
		mdiGroup := make([]float64, len(groups))
		for gi, g := range groups {
			for _, idx := range g {
				mdiGroup[gi] += mdi[idx]
			}
		}
		agree := topKOverlap(importanceOrder(mda), order(mdiGroup), 5)
		b.ReportMetric(float64(agree), "top5-agreement")
	}
}

func importanceOrder(imps []forest.GroupImportance) []int {
	vals := make([]float64, len(imps))
	for i, im := range imps {
		vals[i] = im.Drop
	}
	return order(vals)
}

func order(vals []float64) []int {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < len(idx); i++ {
		for j := i + 1; j < len(idx); j++ {
			if vals[idx[j]] > vals[idx[i]] {
				idx[i], idx[j] = idx[j], idx[i]
			}
		}
	}
	return idx
}

func topKOverlap(a, bb []int, k int) int {
	set := map[int]bool{}
	for _, v := range a[:k] {
		set[v] = true
	}
	n := 0
	for _, v := range bb[:k] {
		if set[v] {
			n++
		}
	}
	return n
}

// BenchmarkAblationGuard measures the bad-configuration guard's
// effect on search cost: ROBOTune with and without the median-multiple
// stopping threshold (§4).
func BenchmarkAblationGuard(b *testing.B) {
	run := func(guard float64, seed uint64) float64 {
		opts := core.Options{GenericSamples: 80, PermuteRepeats: 3, GuardMultiple: guard}
		opts.BO = bo.DefaultConfig()
		opts.BO.CandidatePool = 128
		opts.BO.Starts = 1
		opts.BO.GP.Restarts = 1
		rt := core.New(nil, opts)
		ev := sparksim.NewEvaluator(sparksim.PaperCluster(), sparksim.KMeans(400), seed, 480)
		res := rt.Tune(ev, conf.SparkSpace(), 40, seed)
		return res.SearchCost
	}
	for i := 0; i < b.N; i++ {
		var g, ng float64
		const seeds = 2
		for s := uint64(0); s < seeds; s++ {
			g += run(2, 31+s)
			ng += run(-1, 31+s)
		}
		b.ReportMetric(g/seeds, "guarded-cost-s")
		b.ReportMetric(ng/seeds, "unguarded-cost-s")
	}
}

// --- Micro benchmarks --------------------------------------------------------

func BenchmarkLHS(b *testing.B) {
	rng := sample.NewRNG(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sample.LHS(100, 44, rng)
	}
}

func BenchmarkMaximinLHS(b *testing.B) {
	rng := sample.NewRNG(1)
	for i := 0; i < b.N; i++ {
		sample.MaximinLHS(20, 8, 0, rng)
	}
}

func BenchmarkSimulatorRun(b *testing.B) {
	cl := sparksim.PaperCluster()
	w := sparksim.PageRank(10)
	space := conf.SparkSpace()
	c := space.Decode(sample.LHS(1, space.Dim(), sample.NewRNG(2))[0])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparksim.Run(cl, w, c, sample.NewRNG(uint64(i)), 480)
	}
}

// BenchmarkForestTrain measures Random-Forest training at workers=1
// (the serial baseline) and workers=GOMAXPROCS; tree growth is
// embarrassingly parallel, so the speedup should track core count.
// The trained forests are bit-identical (see TestTrainWorkersParity).
func BenchmarkForestTrain(b *testing.B) {
	x := sample.LHS(100, 44, sample.NewRNG(3))
	y := make([]float64, len(x))
	for i, u := range x {
		y[i] = u[0]*100 + u[1]*u[2]*50
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := forest.RFDefaults()
			cfg.Trees = 100
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(i)
				forest.Train(x, y, cfg)
			}
		})
	}
}

func BenchmarkForestPredict(b *testing.B) {
	x := sample.LHS(100, 44, sample.NewRNG(3))
	y := make([]float64, len(x))
	for i, u := range x {
		y[i] = u[0]*100 + u[1]*u[2]*50
	}
	f := forest.Train(x, y, forest.RFDefaults())
	probe := x[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Predict(probe)
	}
}

// BenchmarkPermImportance measures MDA permutation importance over the
// full 44-parameter grouping at workers=1 and workers=GOMAXPROCS. Each
// (group, repeat) OOB pass is independent, so this path also scales
// with cores while producing bit-identical drops.
func BenchmarkPermImportance(b *testing.B) {
	space := conf.SparkSpace()
	x := sample.LHS(100, space.Dim(), sample.NewRNG(4))
	y := make([]float64, len(x))
	for i, u := range x {
		y[i] = u[0]*100 + u[5]*u[7]*50
	}
	cfg := forest.RFDefaults()
	cfg.Trees = 60
	f := forest.Train(x, y, cfg)
	groups := space.Groups()
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f.PermutationImportance(groups, 2, uint64(i), workers)
			}
		})
	}
}

// BenchmarkMultistart measures the multi-start L-BFGS-B acquisition
// search (the §4 inner loop) on a GP posterior surface at workers=1
// and workers=GOMAXPROCS. The argmin is bit-identical across worker
// counts (see optimize.TestMultistartWorkersParity).
func BenchmarkMultistart(b *testing.B) {
	x := sample.LHS(60, 8, sample.NewRNG(12))
	y := make([]float64, len(x))
	for i, u := range x {
		y[i] = math.Sin(3*u[0]) + u[1]*u[1] + 0.5*u[2]
	}
	g, err := gp.Fit(x, y, func() gp.Config { c := gp.DefaultConfig(); c.Restarts = 1; return c }())
	if err != nil {
		b.Fatal(err)
	}
	neg := func(u []float64) float64 {
		mu, v := g.Predict(u)
		return mu - 1.96*math.Sqrt(v)
	}
	bounds := optimize.UnitBox(8)
	local := func(f optimize.Objective, x0 []float64, bb optimize.Bounds) optimize.Result {
		return optimize.LBFGSB(f, x0, bb, 40)
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				optimize.Multistart(neg, bounds, 16, nil, sample.NewRNG(uint64(i)), workers, local)
			}
		})
	}
}

// gpBenchData builds a reproducible d-dimensional training set of n
// points for the GP fast-path benchmarks.
func gpBenchData(n, d int, seed uint64) ([][]float64, []float64) {
	x := sample.LHS(n, d, sample.NewRNG(seed))
	y := make([]float64, len(x))
	for i, u := range x {
		y[i] = math.Sin(3*u[0]) + u[1]*u[1] + 0.5*u[2] - 0.25*u[3]
	}
	return x, y
}

// BenchmarkGPFitScale measures the full GP fit (hyperparameter
// multistart + factorization) at realistic campaign sizes. This is the
// BO engine's per-iteration bottleneck (§3.4): each Suggest triggers a
// fit whose likelihood objective is evaluated hundreds of times.
func BenchmarkGPFitScale(b *testing.B) {
	for _, n := range []int{20, 60, 120} {
		x, y := gpBenchData(n, 8, 5)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cfg := gp.DefaultConfig()
			cfg.Restarts = 2
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(i)
				if _, err := gp.Fit(x, y, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGPFitARDScale is the ARD variant: d extra hyperparameters
// and a per-dimension inner kernel loop, the worst case the distance
// cache is built for.
func BenchmarkGPFitARDScale(b *testing.B) {
	for _, n := range []int{20, 60} {
		x, y := gpBenchData(n, 8, 5)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cfg := gp.DefaultConfig()
			cfg.ARD = true
			cfg.Restarts = 1
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(i)
				if _, err := gp.Fit(x, y, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGPPredictScale measures posterior prediction, the inner
// call of the acquisition multistart (thousands of calls per Suggest).
func BenchmarkGPPredictScale(b *testing.B) {
	for _, n := range []int{20, 60, 120} {
		x, y := gpBenchData(n, 8, 6)
		cfg := gp.DefaultConfig()
		cfg.Restarts = 1
		g, err := gp.Fit(x, y, cfg)
		if err != nil {
			b.Fatal(err)
		}
		probe := x[0]
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.Predict(probe)
			}
		})
	}
}

// BenchmarkGPPredictIntoScale is the scratch-reusing posterior the
// acquisition multistart uses: zero allocations per call.
func BenchmarkGPPredictIntoScale(b *testing.B) {
	for _, n := range []int{20, 60, 120} {
		x, y := gpBenchData(n, 8, 6)
		cfg := gp.DefaultConfig()
		cfg.Restarts = 1
		g, err := gp.Fit(x, y, cfg)
		if err != nil {
			b.Fatal(err)
		}
		probe := x[0]
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var s gp.PredictScratch
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.PredictInto(&s, probe)
			}
		})
	}
}

// BenchmarkBOSuggestScale measures one full Suggest (surrogate update
// + hedge settle + acquisition multistart) on an engine preloaded with
// n observations — the steady-state per-iteration cost of a campaign.
func BenchmarkBOSuggestScale(b *testing.B) {
	for _, n := range []int{20, 60} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cfg := bo.DefaultConfig()
			cfg.Seed = 8
			cfg.CandidatePool = 128
			cfg.Starts = 1
			cfg.GP.Restarts = 1
			e := bo.New(6, cfg)
			rng := sample.NewRNG(8)
			for _, u := range sample.LHS(n, 6, rng) {
				e.Tell(u, math.Sin(3*u[0])+u[1])
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u, err := e.Suggest()
				if err != nil {
					b.Fatal(err)
				}
				e.Tell(u, math.Sin(3*u[0])+u[1])
			}
		})
	}
}

func BenchmarkGPFit(b *testing.B) {
	x := sample.LHS(60, 8, sample.NewRNG(5))
	y := make([]float64, len(x))
	for i, u := range x {
		y[i] = math.Sin(3*u[0]) + u[1]*u[1]
	}
	cfg := gp.DefaultConfig()
	cfg.Restarts = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		if _, err := gp.Fit(x, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGPPredict(b *testing.B) {
	x := sample.LHS(100, 8, sample.NewRNG(6))
	y := make([]float64, len(x))
	for i, u := range x {
		y[i] = math.Sin(3*u[0]) + u[1]*u[1]
	}
	g, err := gp.Fit(x, y, gp.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	probe := x[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Predict(probe)
	}
}

func BenchmarkCholesky(b *testing.B) {
	n := 100
	rng := sample.NewRNG(7)
	m := linalg.NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	a := linalg.Mul(m, m.T())
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := linalg.Cholesky(a, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBOSuggest(b *testing.B) {
	cfg := bo.DefaultConfig()
	cfg.Seed = 8
	cfg.CandidatePool = 128
	cfg.Starts = 1
	cfg.GP.Restarts = 1
	e := bo.New(6, cfg)
	rng := sample.NewRNG(8)
	for _, u := range sample.LHS(30, 6, rng) {
		e.Tell(u, math.Sin(3*u[0])+u[1])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, err := e.Suggest()
		if err != nil {
			b.Fatal(err)
		}
		e.Tell(u, math.Sin(3*u[0])+u[1])
	}
}

func BenchmarkEvaluatorThroughput(b *testing.B) {
	ev := sparksim.NewEvaluator(sparksim.PaperCluster(), sparksim.TeraSort(20), 9, 480)
	space := conf.SparkSpace()
	design := sample.LHS(64, space.Dim(), sample.NewRNG(9))
	cfgs := make([]conf.Config, len(design))
	for i, u := range design {
		cfgs[i] = space.Decode(u)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.EvaluateSpec(cfgs[i%len(cfgs)], sparksim.EvalSpec{})
	}
}

// BenchmarkFullTuningSession measures one complete ROBOTune session
// (selection + 40 tuning evaluations) end to end.
func BenchmarkFullTuningSession(b *testing.B) {
	space := conf.SparkSpace()
	for i := 0; i < b.N; i++ {
		opts := core.Options{GenericSamples: 80, PermuteRepeats: 3}
		opts.BO = bo.DefaultConfig()
		opts.BO.CandidatePool = 128
		opts.BO.Starts = 1
		opts.BO.GP.Restarts = 1
		rt := core.New(memo.NewStore(), opts)
		ev := sparksim.NewEvaluator(sparksim.PaperCluster(), sparksim.KMeans(200), uint64(i), 480)
		res := rt.Tune(ev, space, 40, uint64(i))
		if res.Found {
			b.ReportMetric(res.BestSeconds, "best-s")
		}
	}
}

// Guard against accidental removal of baselines from the grid.
var _ = []tuners.Tuner{tuners.RandomSearch{}, tuners.BestConfig{}, tuners.Gunther{}}

// BenchmarkAblationARD compares the isotropic Matérn kernel against
// ARD (per-dimension length scales) on held-out prediction quality
// over a tuning subspace sample.
func BenchmarkAblationARD(b *testing.B) {
	space := conf.SparkSpace()
	sub, err := space.Sub([]string{
		conf.ExecutorCores, conf.ExecutorMemory, conf.ExecutorInstances,
		conf.DefaultParallelism, conf.LocalityWait, // one near-inert dim for ARD to discount
	}, space.Default().With(conf.ExecutorMemory, 32768))
	if err != nil {
		b.Fatal(err)
	}
	ev := tsObjective(17)
	design := sample.LHS(40, sub.Dim(), sample.NewRNG(17))
	y := make([]float64, len(design))
	for i, u := range design {
		y[i] = ev.EvaluateSpec(sub.Decode(u), sparksim.EvalSpec{}).Seconds
	}
	probes := sample.LHS(30, sub.Dim(), sample.NewRNG(18))
	probeY := make([]float64, len(probes))
	for i, u := range probes {
		probeY[i] = ev.EvaluateSpec(sub.Decode(u), sparksim.EvalSpec{}).Seconds
	}
	score := func(ard bool) float64 {
		cfg := gp.DefaultConfig()
		cfg.ARD = ard
		cfg.Restarts = 2
		cfg.Seed = 19
		g, err := gp.Fit(design, y, cfg)
		if err != nil {
			return math.Inf(1)
		}
		var mse float64
		for i, u := range probes {
			mu, _ := g.Predict(u)
			d := mu - probeY[i]
			mse += d * d
		}
		return mse / float64(len(probes))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(score(false), "iso-mse")
		b.ReportMetric(score(true), "ard-mse")
	}
}

// BenchmarkExtensionSHA compares the Successive-Halving extension
// baseline against ROBOTune under equal budgets: SHA's adaptive caps
// make its search cheap, but the model-free schedule usually finds
// worse configurations.
func BenchmarkExtensionSHA(b *testing.B) {
	space := conf.SparkSpace()
	for i := 0; i < b.N; i++ {
		evSHA := sparksim.NewEvaluator(sparksim.PaperCluster(), sparksim.PageRank(10), 51, 480)
		sha := tuners.SuccessiveHalving{}.Tune(evSHA, space, 60, 51)
		shaQ := 480.0
		if sha.Found {
			shaQ = evSHA.Measure(sha.Best, 3, 99)
		}

		opts := core.Options{GenericSamples: 80, PermuteRepeats: 3}
		opts.BO = bo.DefaultConfig()
		opts.BO.CandidatePool = 128
		opts.BO.Starts = 1
		opts.BO.GP.Restarts = 1
		rt := core.New(nil, opts)
		evRT := sparksim.NewEvaluator(sparksim.PaperCluster(), sparksim.PageRank(10), 51, 480)
		res := rt.Tune(evRT, space, 60, 51)
		rtQ := 480.0
		if res.Found {
			rtQ = evRT.Measure(res.Best, 3, 99)
		}
		b.ReportMetric(shaQ, "sha-best-s")
		b.ReportMetric(rtQ, "robotune-best-s")
		b.ReportMetric(sha.SearchCost/float64(sha.Evals), "sha-cost-per-eval")
		b.ReportMetric(res.SearchCost/float64(res.Evals), "rt-cost-per-eval")
	}
}
