// Package repro is a from-scratch Go reproduction of "ROBOTune:
// High-Dimensional Configuration Tuning for Cluster-Based Data
// Analytics" (Khan & Yu, ICPP 2021).
//
// The root package carries the benchmark harness (bench_test.go),
// with one benchmark per table and figure of the paper's evaluation
// plus ablation and micro benchmarks. The library lives under
// internal/ (see DESIGN.md for the inventory) and the runnable
// entry points under cmd/ and examples/.
package repro
