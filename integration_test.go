// End-to-end integration tests pinning the paper's headline claims on
// a reduced grid — the fast standing guarantee that the reproduction
// still reproduces. The full-scale versions live in robobench and the
// benchmark harness.
package repro

import (
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/experiments"
)

// headlineGrid runs the comparison once per test binary invocation.
func headlineGrid(t *testing.T) *experiments.Comparison {
	t.Helper()
	cfg := experiments.Config{Seed: 1, Budget: 60, Repeats: 1, MeasureReps: 2, Fast: true}
	return experiments.RunComparison(cfg, func(w string) bool {
		return w == "PageRank" || w == "KMeans" || w == "TeraSort"
	})
}

func TestHeadlineQualityClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("integration grid is slow")
	}
	comp := headlineGrid(t)
	rows := comp.Fig3()
	// Abstract: "finds similar or better performing configurations
	// than contemporary tuning tools". At this reduced scale, demand
	// a mean advantage over every baseline.
	for _, other := range []string{"BestConfig", "RandomSearch"} {
		mean, _ := experiments.SummarizeScaled(rows, other)
		if mean < 1.0 {
			t.Errorf("ROBOTune mean quality advantage over %s = %.3f, want >= 1", other, mean)
		}
	}
	// And ROBOTune itself must beat RS on most rows.
	wins := 0
	for _, r := range rows {
		if r.Scaled["ROBOTune"] < 1 {
			wins++
		}
	}
	if wins*2 < len(rows) {
		t.Errorf("ROBOTune beat RS on only %d of %d rows", wins, len(rows))
	}
}

func TestHeadlineSearchCostClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("integration grid is slow")
	}
	comp := headlineGrid(t)
	rows := comp.Fig4()
	// Abstract: search cost improvement of ~1.5-1.6x on average (ours
	// overshoots; require at least the paper's figure).
	for _, other := range []string{"BestConfig", "Gunther", "RandomSearch"} {
		mean, _ := experiments.SummarizeScaled(rows, other)
		if mean < 1.3 {
			t.Errorf("ROBOTune mean cost advantage over %s = %.3f, want >= 1.3", other, mean)
		}
	}
	// Every single row should favor ROBOTune's cost.
	for _, r := range rows {
		if r.Scaled["ROBOTune"] >= 1 {
			t.Errorf("%s-D%d: ROBOTune cost ratio %.3f >= 1",
				experiments.ShortName[r.Workload], r.DatasetIdx+1, r.Scaled["ROBOTune"])
		}
	}
}

func TestHeadlineDistributionClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("integration grid is slow")
	}
	comp := headlineGrid(t)
	// §5.3: the baselines' sampled-configuration medians sit well
	// above ROBOTune's (paper: 1.35-1.53x; ours larger).
	for _, w := range []string{"PageRank", "KMeans"} {
		f5 := comp.Fig5(w)
		rt := f5.Summary["ROBOTune"].P50
		for _, other := range []string{"BestConfig", "Gunther", "RandomSearch"} {
			ratio := f5.Summary[other].P50 / rt
			if ratio < 1.2 {
				t.Errorf("%s: %s median ratio %.2f, want > 1.2", w, other, ratio)
			}
		}
	}
}

func TestHeadlineSignificance(t *testing.T) {
	if testing.Short() {
		t.Skip("integration grid is slow")
	}
	comp := headlineGrid(t)
	// Pool per-session qualities and check ROBOTune's distribution is
	// stochastically smaller than Random Search's.
	var rt, rs []float64
	for _, s := range comp.Sessions {
		switch s.Tuner {
		case "ROBOTune":
			rt = append(rt, s.Quality)
		case "RandomSearch":
			rs = append(rs, s.Quality)
		}
	}
	if len(rt) == 0 || len(rs) == 0 {
		t.Fatal("missing sessions")
	}
	_, z, p := analysis.MannWhitney(rt, rs)
	if math.IsNaN(p) {
		t.Fatal("Mann-Whitney undefined")
	}
	if z >= 0 {
		t.Errorf("ROBOTune not stochastically better: z=%.2f p=%.3f", z, p)
	}
}
