GO ?= go

.PHONY: build test race bench fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race suite: the full test set (including the root race_stress_test.go
# hostile-concurrency tests and the workers-parity tests) under the Go
# race detector. Any unsynchronized shared access fails the build.
race:
	$(GO) test -race ./...

# Parallelism benchmarks: forest training, permutation importance and
# acquisition multistart at workers=1 vs workers=GOMAXPROCS.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkForestTrain|BenchmarkPermImportance|BenchmarkMultistart' -benchtime 2x .

# Seed-splitting fuzz target: distinct worker streams must never alias.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSeedSplit -fuzztime 30s ./internal/par
