GO ?= go

.PHONY: build test lint race bench bench-gp bench-gp-scale bench-multifidelity benchstat fuzz fuzz-journal fuzz-server fault-stress crash-stress crash-stress-campaign load-test

build:
	$(GO) build ./...

# Static analysis: staticcheck when installed (CI installs it),
# otherwise the vet subset that ships with the toolchain. Always ends
# with the architectural boundary gate: nothing outside a backend
# implementation may import internal/sparksim or internal/clustersim
# directly.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; running go vet only"; \
		$(GO) vet ./...; \
	fi
	$(GO) test -run 'TestArchBoundary' -count 1 ./internal/backend


# Default verification flow: vet plus the full unit/property suite.
test:
	$(GO) vet ./...
	$(GO) test ./...

# Race suite: the full test set (including the root race_stress_test.go
# hostile-concurrency tests and the workers-parity tests) under the Go
# race detector. Any unsynchronized shared access fails the build.
race:
	$(GO) test -race ./...

# Parallelism benchmarks: forest training, permutation importance and
# acquisition multistart at workers=1 vs workers=GOMAXPROCS.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkForestTrain|BenchmarkPermImportance|BenchmarkMultistart' -benchtime 2x .

# GP fast-path benchmarks: surrogate fit, posterior prediction, and
# engine Suggest across training-set sizes, with allocation counts.
# Reference numbers (seed vs fast path) live in BENCH_gp_fastpath.json.
bench-gp:
	$(GO) test -run '^$$' -bench 'BenchmarkGPFitScale|BenchmarkGPFitARDScale|BenchmarkGPPredict|BenchmarkBOSuggestScale' -benchmem -benchtime 3x .

# Large-n surrogate scaling: exact (blocked Cholesky) vs sparse
# local-subset fit/extend/suggest at n in {500, 1000, 2000}. Set
# ROBOTUNE_BENCH_FULL=1 to add n=5000 and n=10000 (the exact rows take
# minutes). Reference numbers live in BENCH_gp_scale.json.
bench-gp-scale:
	$(GO) test -run '^$$' -bench 'BenchmarkGPScale' -benchmem -benchtime 1x .

# Multi-fidelity cost-to-quality acceptance run: BOHB (fidelity ladder
# + cost-aware acquisition) vs full-fidelity ROBOTune on the paper
# workloads, at a larger budget than the always-on CI gate
# (TestMultiFidelityQualityRegression in `make test`). Results land in
# BENCH_multifidelity.json.
bench-multifidelity:
	ROBOTUNE_BENCH_MF=1 $(GO) test -run 'TestBenchMultiFidelity' -v -count 1 -timeout 1200s ./internal/experiments

# A/B comparison helper: save a baseline, make a change, compare.
# Uses benchstat when installed, otherwise falls back to diff.
#   make benchstat OLD=before.txt NEW=after.txt
benchstat:
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat $(OLD) $(NEW); \
	else \
		echo "benchstat not installed; falling back to diff"; \
		diff -u $(OLD) $(NEW) || true; \
	fi

# Robustness suite under the race detector: fault injection, session
# retries/deadlines, cancellation and censored-observation handling.
fault-stress:
	$(GO) test -race -count 2 -run 'Fault|Session|Cancel|Censored' ./internal/sparksim ./internal/tuners ./internal/core ./internal/bo

# Kill/resume stress: re-executes the test binary as a journaled
# campaign, SIGKILLs it at escalating depths, resumes each time, and
# checks the stitched result is bit-identical to an uninterrupted run.
# The deterministic in-process sweeps (truncate-at-every-k, graceful
# cancel, replay divergence) run under plain `make test`; this target
# adds the real-process half.
crash-stress:
	ROBOTUNE_CRASH_STRESS=1 $(GO) test -run 'TestKillResumeStress' -v -count 1 -timeout 600s ./internal/core
	ROBOTUNE_CRASH_STRESS=1 $(GO) test -run 'TestWireKillResume' -v -count 1 -timeout 600s ./internal/server
	$(GO) test -run 'Resume|Journal|Truncate|BitFlip|Snapshot' -count 1 ./internal/journal ./internal/core ./internal/tuners

# Campaign-level kill/resume stress: a 4-session concurrent campaign
# (ledger + per-session journals) is SIGKILLed at escalating depths
# and resumed until it finishes; the stitched result must be
# bit-identical to an uninterrupted run, with zero completed sessions
# re-executed (asserted via task-constructor counters). The in-process
# ledger tests (resume, mid-grid, panic containment, budget
# reallocation, grant replay) run under plain `make test`.
crash-stress-campaign:
	ROBOTUNE_CRASH_STRESS=1 $(GO) test -run 'TestCampaignKillResumeStress' -v -count 1 -timeout 600s ./internal/schedule
	$(GO) test -run 'TestCampaign|TestLedger|TestDurable' -count 1 ./internal/schedule ./internal/journal ./internal/experiments

# Seed-splitting fuzz target: distinct worker streams must never alias.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSeedSplit -fuzztime 30s ./internal/par

# Journal recovery fuzzing: arbitrary bytes on disk must never panic
# recovery, and a corrupt snapshot must never be partially trusted.
fuzz-journal:
	$(GO) test -run '^$$' -fuzz FuzzOpen -fuzztime 30s ./internal/journal
	$(GO) test -run '^$$' -fuzz FuzzSnapshot -fuzztime 30s ./internal/journal

# Protocol fuzzing against robotuned: hostile session specs and observe
# bodies must 4xx cleanly — never panic, never corrupt a session.
fuzz-server:
	$(GO) test -run '^$$' -fuzz FuzzSessionSpec -fuzztime 30s ./internal/server
	$(GO) test -run '^$$' -fuzz FuzzObserveBody -fuzztime 30s ./internal/server

# robotuned throughput acceptance run: concurrent journaled sessions
# over direct handler dispatch and real loopback TCP. The in-process
# number must clear 10,000 propose/observe round trips per second;
# results land in BENCH_robotuned.json.
load-test:
	ROBOTUNE_LOADTEST=1 $(GO) test -run 'TestLoadFull' -v -count 1 -timeout 300s ./internal/server/loadtest
