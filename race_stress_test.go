// Race stress suite: short, hostile concurrency tests for every
// structure the tuner shares across goroutines. They assert nothing
// subtle — their value is under `go test -race ./...` (the `race`
// Makefile target), where the detector turns any unsynchronized
// access into a failure.
package repro

import (
	"context"
	"sync"
	"testing"

	"repro/internal/conf"
	"repro/internal/forest"
	"repro/internal/memo"
	"repro/internal/optimize"
	"repro/internal/sample"
	"repro/internal/sparksim"
	"repro/internal/trace"
)

const stressG = 8 // hostile goroutines per role

func stressConfigs(space *conf.Space, n int, seed uint64) []conf.Config {
	rng := sample.NewRNG(seed)
	cfgs := make([]conf.Config, n)
	for i, u := range sample.LHS(n, space.Dim(), rng) {
		cfgs[i] = space.Decode(u)
	}
	return cfgs
}

func TestStressMemoStore(t *testing.T) {
	store := memo.NewStore()
	var wg sync.WaitGroup
	for g := 0; g < stressG; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			workloads := []string{"TeraSort", "PageRank", "KMeans"}
			for i := 0; i < 200; i++ {
				w := workloads[(g+i)%len(workloads)]
				switch i % 5 {
				case 0:
					store.PutSelection(w, []string{"spark.executor.cores", "spark.executor.memory"})
				case 1:
					store.Selection(w)
				case 2:
					store.AddConfigs(w, []memo.SavedConfig{{
						Values:  map[string]float64{"spark.executor.cores": float64(1 + i%8)},
						Seconds: float64(50 + i),
						Dataset: "d",
					}}, 8)
				case 3:
					store.BestConfigs(w, 4)
				default:
					store.Workloads()
				}
			}
		}(g)
	}
	wg.Wait()
	if len(store.Workloads()) == 0 {
		t.Error("store empty after stress")
	}
}

func TestStressEvaluator(t *testing.T) {
	space := conf.SparkSpace()
	ev := sparksim.NewEvaluator(sparksim.PaperCluster(), sparksim.TeraSort(20), 1, 480)
	cfgs := stressConfigs(space, 16, 2)
	var wg sync.WaitGroup
	for g := 0; g < stressG; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				c := cfgs[(g*7+i)%len(cfgs)]
				switch i % 5 {
				case 0:
					ev.EvaluateSpec(c, sparksim.EvalSpec{})
				case 1:
					ev.EvaluateSpec(c, sparksim.EvalSpec{Cap: 120})
				case 2:
					ev.EvaluateSpecCtx(context.Background(), cfgs[:4], sparksim.EvalSpec{Workers: 2})
				case 3:
					ev.History()
					ev.Evals()
					ev.SearchCost()
				default:
					// Reset races against in-flight evaluations: the
					// seed/eval-counter handoff must stay locked.
					ev.Reset(uint64(g*100 + i))
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestStressTraceRecorder(t *testing.T) {
	space := conf.SparkSpace()
	ev := sparksim.NewEvaluator(sparksim.PaperCluster(), sparksim.KMeans(200), 3, 480)
	rec := trace.NewRecorder(ev)
	cfgs := stressConfigs(space, 8, 4)
	var wg sync.WaitGroup
	for g := 0; g < stressG; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c := cfgs[(g+i)%len(cfgs)]
				switch i % 3 {
				case 0:
					rec.EvaluateSpec(c, sparksim.EvalSpec{})
				case 1:
					rec.EvaluateSpec(c, sparksim.EvalSpec{Cap: 150})
				default:
					rec.Records()
				}
			}
		}(g)
	}
	wg.Wait()
	records := rec.Records()
	for i, r := range records {
		if r.Index != i {
			t.Fatalf("record %d has index %d", i, r.Index)
		}
	}
}

func TestStressForestWorkers(t *testing.T) {
	rng := sample.NewRNG(5)
	n, d := 120, 6
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()
		}
		x[i] = row
		y[i] = 3*row[0] + row[1]*row[1]
	}
	f := forest.Train(x, y, forest.Config{Trees: 30, Bootstrap: true, Seed: 7, Workers: stressG})
	groups := [][]int{{0}, {1}, {2, 3}, {4, 5}}
	var wg sync.WaitGroup
	for g := 0; g < stressG; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Concurrent importance runs share the forest read-only
			// while each spins up its own worker pool.
			f.PermutationImportance(groups, 2, uint64(g), stressG)
			f.Predict(x[g%len(x)])
			f.OOBR2()
		}(g)
	}
	wg.Wait()
}

func TestStressMultistartWorkers(t *testing.T) {
	sphere := func(x []float64) float64 {
		var s float64
		for _, v := range x {
			s += (v - 0.4) * (v - 0.4)
		}
		return s
	}
	b := optimize.UnitBox(4)
	local := func(fn optimize.Objective, x0 []float64, bb optimize.Bounds) optimize.Result {
		return optimize.LBFGSB(fn, x0, bb, 40)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := optimize.Multistart(sphere, b, 12, nil, sample.NewRNG(uint64(g)), stressG, local)
			if r.F > 1e-6 {
				t.Errorf("goroutine %d: multistart min %v", g, r.F)
			}
		}(g)
	}
	wg.Wait()
}
