package client_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/client"
)

// flakyHandler serves /v1/sessions/{id} status GETs unconditionally
// and fails the first `fail` propose/observe POSTs the given way
// before succeeding.
type flakyHandler struct {
	fail  int32
	calls atomic.Int32
	mode  string // "503", "429", "reset"
}

func (h *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == "GET" {
		fmt.Fprint(w, `{"id":"abc"}`)
		return
	}
	n := h.calls.Add(1)
	if n <= h.fail {
		switch h.mode {
		case "503":
			w.WriteHeader(503)
			fmt.Fprint(w, `{"error":{"code":"overloaded","message":"try again"}}`)
		case "429":
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(429)
			fmt.Fprint(w, `{"error":{"code":"throttled","message":"slow down"}}`)
		case "reset":
			hj, ok := w.(http.Hijacker)
			if !ok {
				panic("test server does not support hijacking")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				panic(err)
			}
			conn.Close() // mid-request connection reset
		}
		return
	}
	fmt.Fprint(w, `{"done":true}`)
}

func retryEnv(t *testing.T, h *flakyHandler, retries int) (*client.Session, *[]time.Duration) {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	slept := &[]time.Duration{}
	cl := client.New(ts.URL)
	cl.Retry = client.RetryPolicy{
		MaxRetries: retries,
		Sleep:      func(d time.Duration) { *slept = append(*slept, d) },
	}
	sess, err := cl.Attach("abc")
	if err != nil {
		t.Fatal(err)
	}
	return sess, slept
}

// TestRetryTransient503: two 503s then success — the caller sees only
// the success, after two backoff sleeps.
func TestRetryTransient503(t *testing.T) {
	h := &flakyHandler{fail: 2, mode: "503"}
	sess, slept := retryEnv(t, h, 3)
	_, done, err := sess.Propose(0)
	if err != nil || !done {
		t.Fatalf("propose after retries: done=%v err=%v", done, err)
	}
	if h.calls.Load() != 3 {
		t.Fatalf("server saw %d propose calls, want 3", h.calls.Load())
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2: %v", len(*slept), *slept)
	}
	// Exponential with default base 100ms and jitter 0.2: the second
	// wait is drawn from a strictly higher band than the first.
	if (*slept)[0] < 80*time.Millisecond || (*slept)[0] > 120*time.Millisecond {
		t.Fatalf("first backoff %v outside the 100ms +/- 20%% band", (*slept)[0])
	}
	if (*slept)[1] < 160*time.Millisecond || (*slept)[1] > 240*time.Millisecond {
		t.Fatalf("second backoff %v outside the 200ms +/- 20%% band", (*slept)[1])
	}
}

// TestRetryHonorsRetryAfter: a 429 carrying Retry-After: 2 floors the
// wait at the server's window even though nominal backoff is 100ms.
func TestRetryHonorsRetryAfter(t *testing.T) {
	h := &flakyHandler{fail: 1, mode: "429"}
	sess, slept := retryEnv(t, h, 2)
	if _, _, err := sess.Propose(0); err != nil {
		t.Fatal(err)
	}
	if len(*slept) != 1 || (*slept)[0] < 2*time.Second {
		t.Fatalf("slept %v, want one wait of at least the Retry-After 2s", *slept)
	}
}

// TestRetryConnectionReset: a connection torn down mid-request is
// transient — the next attempt lands.
func TestRetryConnectionReset(t *testing.T) {
	h := &flakyHandler{fail: 1, mode: "reset"}
	sess, slept := retryEnv(t, h, 2)
	resp, err := sess.Observe(client.Observation{Config: map[string]float64{"x": 1}, Skipped: true})
	_ = resp
	if err != nil {
		t.Fatalf("observe after reset: %v", err)
	}
	if len(*slept) != 1 {
		t.Fatalf("slept %d times, want 1", len(*slept))
	}
}

// TestRetryExhaustion: a server that never recovers costs exactly
// MaxRetries re-sends, then the last error surfaces.
func TestRetryExhaustion(t *testing.T) {
	h := &flakyHandler{fail: 1 << 30, mode: "503"}
	sess, slept := retryEnv(t, h, 3)
	_, _, err := sess.Propose(0)
	if err == nil {
		t.Fatal("propose succeeded against a permanently failing server")
	}
	if !client.IsRetryable(err) {
		t.Fatalf("surfaced error %v should still classify retryable", err)
	}
	if h.calls.Load() != 4 {
		t.Fatalf("server saw %d calls, want 1 + 3 retries", h.calls.Load())
	}
	if len(*slept) != 3 {
		t.Fatalf("slept %d times, want 3", len(*slept))
	}
}

// TestNoRetryOnPermanentErrors: 4xx answers (here a 409 conflict) are
// not transient — no sleep, the error surfaces immediately.
func TestNoRetryOnPermanentErrors(t *testing.T) {
	calls := atomic.Int32{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == "GET" {
			fmt.Fprint(w, `{"id":"abc"}`)
			return
		}
		calls.Add(1)
		w.WriteHeader(409)
		fmt.Fprint(w, `{"error":{"code":"conflict","message":"no matching proposal"}}`)
	}))
	t.Cleanup(ts.Close)
	cl := client.New(ts.URL)
	cl.Retry = client.RetryPolicy{MaxRetries: 5, Sleep: func(time.Duration) {
		t.Fatal("slept for a permanent error")
	}}
	sess, err := cl.Attach("abc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Observe(client.Observation{Skipped: true}); !client.IsConflict(err) {
		t.Fatalf("want the 409 conflict surfaced, got %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls, want exactly 1", calls.Load())
	}
}

// TestZeroPolicyRetriesNothing: the zero RetryPolicy is the old
// behavior — first failure surfaces.
func TestZeroPolicyRetriesNothing(t *testing.T) {
	h := &flakyHandler{fail: 1, mode: "503"}
	sess, slept := retryEnv(t, h, 0)
	if _, _, err := sess.Propose(0); err == nil {
		t.Fatal("zero policy retried")
	}
	if len(*slept) != 0 || h.calls.Load() != 1 {
		t.Fatalf("zero policy slept %v / %d calls", *slept, h.calls.Load())
	}
}
