// Package client is the thin Go client for robotuned, the networked
// ask/tell tuning service. It mirrors the in-process stepper shape —
// Propose returns trials, Observe reports outcomes — over HTTP, so a
// driver loop written against a local tuners.Stepper ports to a live
// server by swapping the two calls.
//
//	cl := client.New("http://127.0.0.1:7077")
//	sess, err := cl.Create(client.SessionSpec{
//	    Tuner:  "robotune",
//	    Space:  json.RawMessage(`"spark"`),
//	    Budget: 100,
//	    Seed:   7,
//	})
//	for {
//	    props, done, err := sess.Propose(0)
//	    if len(props) == 0 && done { break }
//	    for _, p := range props {
//	        rec := runOnCluster(p.Config, p.Cap)
//	        sess.Observe(client.Observation{Config: p.Config, Seconds: rec.Seconds, Completed: true})
//	    }
//	}
//	res, err := sess.Finish()
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/server"
)

// Wire types are shared with the server package so the two cannot
// drift; the aliases keep client code free of the internal import.
type (
	SessionSpec     = server.SessionSpec
	SpecOptions     = server.SpecOptions
	Proposal        = server.WireProposal
	Observation     = server.Observation
	ObserveResponse = server.ObserveResponse
	StatusResponse  = server.StatusResponse
	ResultResponse  = server.ResultResponse
)

// APIError is a non-2xx server response, decoded from the uniform
// error envelope.
type APIError struct {
	Status  int    // HTTP status
	Code    string // machine-readable class: bad_request, conflict, throttled, ...
	Message string
	// RetryAfter is the server's Retry-After header when it sent one
	// (0 otherwise); the retry policy waits at least this long.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("robotuned: %s (%d %s)", e.Message, e.Status, e.Code)
}

// IsConflict reports a 409: the observation did not match a pending
// proposal. After a reconnect this usually means the server already
// has the observation (it was journaled before the crash) — drivers
// treat it as already-applied.
func IsConflict(err error) bool { return hasStatus(err, 409) }

// IsMaxObservations reports the server's per-session observation cap:
// the session will never accept another evaluated observation, so
// drivers should skip their outstanding proposals and finish the
// session rather than retry. Matched by code, not status — the cap
// shares 409 with IsConflict but means "stop", not "already applied".
func IsMaxObservations(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == "max_observations"
}

// IsThrottled reports a 429: per-tenant backpressure, retry later.
func IsThrottled(err error) bool { return hasStatus(err, 429) }

// IsNotFound reports a 404.
func IsNotFound(err error) bool { return hasStatus(err, 404) }

// IsFinished reports a 410: the session is sealed.
func IsFinished(err error) bool { return hasStatus(err, 410) }

func hasStatus(err error, status int) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == status
}

// IsRetryable reports whether an error is transient: a server answer
// of 429 (throttled), 502, or 503 (overload, a restarting or draining
// peer behind a load balancer), or a transport-level failure such as a
// connection reset or refused dial. Context cancellation is never
// retryable — the caller asked to stop. Client errors (4xx other than
// 429) and body-decoding failures are permanent.
func IsRetryable(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		switch ae.Status {
		case 429, 502, 503:
			return true
		}
		return false
	}
	// http.Client wraps every transport failure — reset, refused,
	// EOF mid-body — in a url.Error; anything else (JSON decode,
	// request construction) is a bug worth surfacing, not retrying.
	var ue *url.Error
	return errors.As(err, &ue)
}

// RetryPolicy makes Session.Propose and Session.Observe retry
// transient failures (see IsRetryable) with exponential backoff and
// jitter, honoring the server's Retry-After when one is sent. The
// zero value retries nothing. Create, Finish, and the status calls
// are never retried automatically: Create is not idempotent, and the
// others are cheap for the driver to repeat with its own policy.
//
// Observing after a retried send can answer 409 conflict when the
// first attempt was applied but its response was lost; drivers treat
// that as already-applied (see IsConflict).
type RetryPolicy struct {
	// MaxRetries is how many times a failed call is re-sent beyond
	// the first attempt (0 = no retry).
	MaxRetries int
	// BaseBackoff is the first wait, doubled each retry (default
	// 100ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling (default 2s).
	MaxBackoff time.Duration
	// Jitter spreads each wait uniformly over ±Jitter of its nominal
	// value so a restarted server is not hit by every client at once
	// (default 0.2; negative = none).
	Jitter float64
	// Sleep is the wait function (nil = time.Sleep); tests inject a
	// recorder.
	Sleep func(time.Duration)
}

// backoff is the wait before retry number attempt (0-based), floored
// by the server's Retry-After when the error carries one.
func (p RetryPolicy) backoff(attempt int, err error) time.Duration {
	base, ceil := p.BaseBackoff, p.MaxBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if ceil <= 0 {
		ceil = 2 * time.Second
	}
	d := base << uint(attempt)
	if d <= 0 || d > ceil {
		d = ceil
	}
	jitter := p.Jitter
	if jitter == 0 {
		jitter = 0.2
	}
	if jitter > 0 {
		d = time.Duration(float64(d) * (1 - jitter + 2*jitter*rand.Float64()))
	}
	var ae *APIError
	if errors.As(err, &ae) && ae.RetryAfter > d {
		d = ae.RetryAfter // the server knows its own backpressure window
	}
	return d
}

func (p RetryPolicy) sleep(d time.Duration) {
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Client talks to one robotuned server.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:7077".
	BaseURL string
	// Tenant is sent as X-Robotune-Tenant ("" = the default tenant).
	Tenant string
	// HTTP is the transport (http.DefaultClient when nil).
	HTTP *http.Client
	// Retry makes Propose and Observe survive transient failures; the
	// zero value retries nothing.
	Retry RetryPolicy
}

// New returns a client for the server at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

// Create starts a session from spec and returns a handle to it.
func (c *Client) Create(spec SessionSpec) (*Session, error) {
	var st StatusResponse
	if err := c.do("POST", "/v1/sessions", spec, &st); err != nil {
		return nil, err
	}
	return &Session{c: c, ID: st.ID}, nil
}

// Attach returns a handle to an existing session (possibly created by
// a previous process against the same journal directory), verifying
// it exists.
func (c *Client) Attach(id string) (*Session, error) {
	s := &Session{c: c, ID: id}
	if _, err := s.Status(); err != nil {
		return nil, err
	}
	return s, nil
}

// Health checks /healthz.
func (c *Client) Health() error {
	return c.do("GET", "/healthz", nil, nil)
}

func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Tenant != "" {
		req.Header.Set("X-Robotune-Tenant", c.Tenant)
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, server.MaxBodyBytes))
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		retryAfter := parseRetryAfter(resp.Header.Get("Retry-After"))
		var eb server.ErrorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error.Code != "" {
			return &APIError{Status: resp.StatusCode, Code: eb.Error.Code,
				Message: eb.Error.Message, RetryAfter: retryAfter}
		}
		return &APIError{Status: resp.StatusCode, Code: "http_error", RetryAfter: retryAfter,
			Message: fmt.Sprintf("%s %s: %s", method, path, bytes.TrimSpace(data))}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// doRetry is do under the client's retry policy: transient failures
// (IsRetryable) are re-sent with backoff until the policy is spent.
func (c *Client) doRetry(method, path string, in, out any) error {
	for attempt := 0; ; attempt++ {
		err := c.do(method, path, in, out)
		if err == nil || attempt >= c.Retry.MaxRetries || !IsRetryable(err) {
			return err
		}
		c.Retry.sleep(c.Retry.backoff(attempt, err))
	}
}

// parseRetryAfter reads a Retry-After header: delay seconds or an
// HTTP-date ("" or garbage = 0).
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if when, err := http.ParseTime(h); err == nil {
		if d := time.Until(when); d > 0 {
			return d
		}
	}
	return 0
}

// Session is a handle to one server-side tuning session.
type Session struct {
	c  *Client
	ID string
}

// Propose asks for up to n trials (n <= 0 = as many as the tuner can
// usefully emit). done is true when the tuner will never propose
// again; an empty non-done batch means the tuner is waiting for
// outstanding observations.
func (s *Session) Propose(n int) (props []Proposal, done bool, err error) {
	var resp server.ProposeResponse
	body := map[string]int{"n": n}
	if err := s.c.doRetry("POST", "/v1/sessions/"+s.ID+"/propose", body, &resp); err != nil {
		return nil, false, err
	}
	return resp.Proposals, resp.Done, nil
}

// Observe reports evaluated trials back. Each observation's Config
// must exactly match a proposal from Propose.
func (s *Session) Observe(obs ...Observation) (ObserveResponse, error) {
	var resp ObserveResponse
	body := map[string]any{"observations": obs}
	err := s.c.doRetry("POST", "/v1/sessions/"+s.ID+"/observe", body, &resp)
	return resp, err
}

// Skip abandons a proposed trial without running it; the tuner moves
// on and no evaluation is charged.
func (s *Session) Skip(config map[string]float64) (ObserveResponse, error) {
	return s.Observe(Observation{Config: config, Skipped: true})
}

// Status fetches the session's current state (a bounded trace tail).
func (s *Session) Status() (StatusResponse, error) {
	var st StatusResponse
	err := s.c.do("GET", "/v1/sessions/"+s.ID, nil, &st)
	return st, err
}

// FullStatus fetches the state with the complete trace.
func (s *Session) FullStatus() (StatusResponse, error) {
	var st StatusResponse
	err := s.c.do("GET", "/v1/sessions/"+s.ID+"?trace=all", nil, &st)
	return st, err
}

// Finish seals the session (even mid-campaign) and returns its
// result. The journal on disk stays readable afterwards.
func (s *Session) Finish() (ResultResponse, error) {
	var res ResultResponse
	err := s.c.do("DELETE", "/v1/sessions/"+s.ID, nil, &res)
	return res, err
}
