// Package client is the thin Go client for robotuned, the networked
// ask/tell tuning service. It mirrors the in-process stepper shape —
// Propose returns trials, Observe reports outcomes — over HTTP, so a
// driver loop written against a local tuners.Stepper ports to a live
// server by swapping the two calls.
//
//	cl := client.New("http://127.0.0.1:7077")
//	sess, err := cl.Create(client.SessionSpec{
//	    Tuner:  "robotune",
//	    Space:  json.RawMessage(`"spark"`),
//	    Budget: 100,
//	    Seed:   7,
//	})
//	for {
//	    props, done, err := sess.Propose(0)
//	    if len(props) == 0 && done { break }
//	    for _, p := range props {
//	        rec := runOnCluster(p.Config, p.Cap)
//	        sess.Observe(client.Observation{Config: p.Config, Seconds: rec.Seconds, Completed: true})
//	    }
//	}
//	res, err := sess.Finish()
package client

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/server"
)

// Wire types are shared with the server package so the two cannot
// drift; the aliases keep client code free of the internal import.
type (
	SessionSpec     = server.SessionSpec
	SpecOptions     = server.SpecOptions
	Proposal        = server.WireProposal
	Observation     = server.Observation
	ObserveResponse = server.ObserveResponse
	StatusResponse  = server.StatusResponse
	ResultResponse  = server.ResultResponse
)

// APIError is a non-2xx server response, decoded from the uniform
// error envelope.
type APIError struct {
	Status  int    // HTTP status
	Code    string // machine-readable class: bad_request, conflict, throttled, ...
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("robotuned: %s (%d %s)", e.Message, e.Status, e.Code)
}

// IsConflict reports a 409: the observation did not match a pending
// proposal. After a reconnect this usually means the server already
// has the observation (it was journaled before the crash) — drivers
// treat it as already-applied.
func IsConflict(err error) bool { return hasStatus(err, 409) }

// IsMaxObservations reports the server's per-session observation cap:
// the session will never accept another evaluated observation, so
// drivers should skip their outstanding proposals and finish the
// session rather than retry. Matched by code, not status — the cap
// shares 409 with IsConflict but means "stop", not "already applied".
func IsMaxObservations(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == "max_observations"
}

// IsThrottled reports a 429: per-tenant backpressure, retry later.
func IsThrottled(err error) bool { return hasStatus(err, 429) }

// IsNotFound reports a 404.
func IsNotFound(err error) bool { return hasStatus(err, 404) }

// IsFinished reports a 410: the session is sealed.
func IsFinished(err error) bool { return hasStatus(err, 410) }

func hasStatus(err error, status int) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == status
}

// Client talks to one robotuned server.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:7077".
	BaseURL string
	// Tenant is sent as X-Robotune-Tenant ("" = the default tenant).
	Tenant string
	// HTTP is the transport (http.DefaultClient when nil).
	HTTP *http.Client
}

// New returns a client for the server at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

// Create starts a session from spec and returns a handle to it.
func (c *Client) Create(spec SessionSpec) (*Session, error) {
	var st StatusResponse
	if err := c.do("POST", "/v1/sessions", spec, &st); err != nil {
		return nil, err
	}
	return &Session{c: c, ID: st.ID}, nil
}

// Attach returns a handle to an existing session (possibly created by
// a previous process against the same journal directory), verifying
// it exists.
func (c *Client) Attach(id string) (*Session, error) {
	s := &Session{c: c, ID: id}
	if _, err := s.Status(); err != nil {
		return nil, err
	}
	return s, nil
}

// Health checks /healthz.
func (c *Client) Health() error {
	return c.do("GET", "/healthz", nil, nil)
}

func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Tenant != "" {
		req.Header.Set("X-Robotune-Tenant", c.Tenant)
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, server.MaxBodyBytes))
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var eb server.ErrorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error.Code != "" {
			return &APIError{Status: resp.StatusCode, Code: eb.Error.Code, Message: eb.Error.Message}
		}
		return &APIError{Status: resp.StatusCode, Code: "http_error",
			Message: fmt.Sprintf("%s %s: %s", method, path, bytes.TrimSpace(data))}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Session is a handle to one server-side tuning session.
type Session struct {
	c  *Client
	ID string
}

// Propose asks for up to n trials (n <= 0 = as many as the tuner can
// usefully emit). done is true when the tuner will never propose
// again; an empty non-done batch means the tuner is waiting for
// outstanding observations.
func (s *Session) Propose(n int) (props []Proposal, done bool, err error) {
	var resp server.ProposeResponse
	body := map[string]int{"n": n}
	if err := s.c.do("POST", "/v1/sessions/"+s.ID+"/propose", body, &resp); err != nil {
		return nil, false, err
	}
	return resp.Proposals, resp.Done, nil
}

// Observe reports evaluated trials back. Each observation's Config
// must exactly match a proposal from Propose.
func (s *Session) Observe(obs ...Observation) (ObserveResponse, error) {
	var resp ObserveResponse
	body := map[string]any{"observations": obs}
	err := s.c.do("POST", "/v1/sessions/"+s.ID+"/observe", body, &resp)
	return resp, err
}

// Skip abandons a proposed trial without running it; the tuner moves
// on and no evaluation is charged.
func (s *Session) Skip(config map[string]float64) (ObserveResponse, error) {
	return s.Observe(Observation{Config: config, Skipped: true})
}

// Status fetches the session's current state (a bounded trace tail).
func (s *Session) Status() (StatusResponse, error) {
	var st StatusResponse
	err := s.c.do("GET", "/v1/sessions/"+s.ID, nil, &st)
	return st, err
}

// FullStatus fetches the state with the complete trace.
func (s *Session) FullStatus() (StatusResponse, error) {
	var st StatusResponse
	err := s.c.do("GET", "/v1/sessions/"+s.ID+"?trace=all", nil, &st)
	return st, err
}

// Finish seals the session (even mid-campaign) and returns its
// result. The journal on disk stays readable afterwards.
func (s *Session) Finish() (ResultResponse, error) {
	var res ResultResponse
	err := s.c.do("DELETE", "/v1/sessions/"+s.ID, nil, &res)
	return res, err
}
