// Package stats provides the statistical primitives shared by the
// ROBOTune components: the standard normal distribution (PDF, CDF,
// quantile), descriptive statistics, percentiles, coefficient of
// determination, recall, and k-fold cross-validation splitting.
package stats

import (
	"math"
	"math/rand/v2"
	"sort"
)

// NormPDF returns the density of the standard normal distribution at x.
func NormPDF(x float64) float64 {
	const invSqrt2Pi = 0.3989422804014327
	return invSqrt2Pi * math.Exp(-0.5*x*x)
}

// NormCDF returns the cumulative distribution function of the standard
// normal distribution at x.
func NormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormQuantile returns the inverse CDF (quantile function) of the
// standard normal distribution, using the Acklam rational
// approximation refined by one Halley step. p must lie in (0,1).
func NormQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		case p == 1:
			return math.Inf(1)
		default:
			return math.NaN()
		}
	}
	// Acklam's algorithm.
	const (
		a1 = -3.969683028665376e+01
		a2 = 2.209460984245205e+02
		a3 = -2.759285104469687e+02
		a4 = 1.383577518672690e+02
		a5 = -3.066479806614716e+01
		a6 = 2.506628277459239e+00

		b1 = -5.447609879822406e+01
		b2 = 1.615858368580409e+02
		b3 = -1.556989798598866e+02
		b4 = 6.680131188771972e+01
		b5 = -1.328068155288572e+01

		c1 = -7.784894002430293e-03
		c2 = -3.223964580411365e-01
		c3 = -2.400758277161838e+00
		c4 = -2.549732539343734e+00
		c5 = 4.374664141464968e+00
		c6 = 2.938163982698783e+00

		d1 = 7.784695709041462e-03
		d2 = 3.224671290700398e-01
		d3 = 2.445134137142996e+00
		d4 = 3.754408661907416e+00

		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	}
	// One step of Halley's method sharpens the approximation to near
	// machine precision.
	e := NormCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs. It returns 0
// for slices with fewer than two elements.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs, or NaN for an empty slice.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks, or NaN for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// R2 returns the coefficient of determination of predictions pred
// against observations obs: 1 - SS_res/SS_tot. A model predicting the
// mean scores 0; arbitrarily worse models score negative. If obs has
// zero variance, R2 returns 0 when predictions are exact and
// math.Inf(-1) otherwise.
func R2(obs, pred []float64) float64 {
	if len(obs) == 0 || len(obs) != len(pred) {
		return math.NaN()
	}
	m := Mean(obs)
	var ssRes, ssTot float64
	for i := range obs {
		r := obs[i] - pred[i]
		ssRes += r * r
		d := obs[i] - m
		ssTot += d * d
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	return 1 - ssRes/ssTot
}

// Recall returns |truth ∩ found| / |truth| for string sets. It returns
// 1 when truth is empty (nothing to miss).
func Recall(truth, found []string) float64 {
	if len(truth) == 0 {
		return 1
	}
	set := make(map[string]bool, len(found))
	for _, f := range found {
		set[f] = true
	}
	hit := 0
	for _, t := range truth {
		if set[t] {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// KFold splits the indices 0..n-1 into k shuffled folds for
// cross-validation. Fold sizes differ by at most one. It panics if
// k < 2 or n < k.
func KFold(n, k int, rng *rand.Rand) [][]int {
	if k < 2 {
		panic("stats: KFold requires k >= 2")
	}
	if n < k {
		panic("stats: KFold requires n >= k")
	}
	perm := rng.Perm(n)
	folds := make([][]int, k)
	for i, idx := range perm {
		f := i % k
		folds[f] = append(folds[f], idx)
	}
	return folds
}

// TrainTest returns the complement of fold within 0..n-1, preserving
// ascending order, for use as a training index set.
func TrainTest(n int, fold []int) []int {
	inFold := make(map[int]bool, len(fold))
	for _, i := range fold {
		inFold[i] = true
	}
	train := make([]int, 0, n-len(fold))
	for i := 0; i < n; i++ {
		if !inFold[i] {
			train = append(train, i)
		}
	}
	return train
}

// Summary holds the descriptive statistics of a sample.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P25, P50, P75 float64
	P90, P95, P99 float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:    len(xs),
		Mean: Mean(xs),
		Std:  StdDev(xs),
		Min:  Min(xs),
		Max:  Max(xs),
		P25:  Percentile(xs, 25),
		P50:  Percentile(xs, 50),
		P75:  Percentile(xs, 75),
		P90:  Percentile(xs, 90),
		P95:  Percentile(xs, 95),
		P99:  Percentile(xs, 99),
	}
}
