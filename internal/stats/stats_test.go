package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sample"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNormPDF(t *testing.T) {
	if !almost(NormPDF(0), 0.3989422804014327, 1e-12) {
		t.Errorf("NormPDF(0) = %v", NormPDF(0))
	}
	if !almost(NormPDF(1), 0.24197072451914337, 1e-12) {
		t.Errorf("NormPDF(1) = %v", NormPDF(1))
	}
	if NormPDF(10) > 1e-20 {
		t.Errorf("NormPDF(10) should be tiny, got %v", NormPDF(10))
	}
}

func TestNormCDF(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{1, 0.8413447460685429},
		{-3, 0.0013498980316300933},
	}
	for _, c := range cases {
		if got := NormCDF(c.x); !almost(got, c.want, 1e-10) {
			t.Errorf("NormCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormQuantileInvertsCDF(t *testing.T) {
	f := func(u16 uint16) bool {
		p := (float64(u16) + 0.5) / 65537.0 // strictly inside (0,1)
		x := NormQuantile(p)
		return almost(NormCDF(x), p, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNormQuantileEdges(t *testing.T) {
	if !math.IsInf(NormQuantile(0), -1) {
		t.Error("NormQuantile(0) should be -Inf")
	}
	if !math.IsInf(NormQuantile(1), 1) {
		t.Error("NormQuantile(1) should be +Inf")
	}
	if !math.IsNaN(NormQuantile(-0.5)) || !math.IsNaN(NormQuantile(1.5)) {
		t.Error("out-of-range p should give NaN")
	}
	if !almost(NormQuantile(0.975), 1.959963984540054, 1e-8) {
		t.Errorf("NormQuantile(0.975) = %v", NormQuantile(0.975))
	}
}

func TestDescriptive(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	if m := Mean(xs); !almost(m, 3, 1e-12) {
		t.Errorf("Mean = %v", m)
	}
	if v := Variance(xs); !almost(v, 2.5, 1e-12) {
		t.Errorf("Variance = %v", v)
	}
	if md := Median(xs); !almost(md, 3, 1e-12) {
		t.Errorf("Median = %v", md)
	}
	if mn, mx := Min(xs), Max(xs); mn != 1 || mx != 5 {
		t.Errorf("Min,Max = %v,%v", mn, mx)
	}
}

func TestDescriptiveEmpty(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if Variance(nil) != 0 {
		t.Error("Variance(nil) should be 0")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("Min/Max of empty should be +Inf/-Inf")
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile(nil) should be NaN")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(xs, 0); p != 1 {
		t.Errorf("P0 = %v", p)
	}
	if p := Percentile(xs, 100); p != 10 {
		t.Errorf("P100 = %v", p)
	}
	if p := Percentile(xs, 50); !almost(p, 5.5, 1e-12) {
		t.Errorf("P50 = %v", p)
	}
	if p := Percentile(xs, 90); !almost(p, 9.1, 1e-12) {
		t.Errorf("P90 = %v", p)
	}
	// Percentile must not mutate the input.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(seed uint64, a8, b8 uint8) bool {
		rng := sample.NewRNG(seed)
		xs := make([]float64, 20)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		pa := float64(a8) / 255 * 100
		pb := float64(b8) / 255 * 100
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(xs, pa) <= Percentile(xs, pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestR2(t *testing.T) {
	obs := []float64{1, 2, 3, 4}
	if r := R2(obs, obs); !almost(r, 1, 1e-12) {
		t.Errorf("perfect prediction R2 = %v", r)
	}
	m := Mean(obs)
	mean := []float64{m, m, m, m}
	if r := R2(obs, mean); !almost(r, 0, 1e-12) {
		t.Errorf("mean prediction R2 = %v", r)
	}
	bad := []float64{10, -10, 10, -10}
	if r := R2(obs, bad); r >= 0 {
		t.Errorf("bad prediction R2 = %v, want negative", r)
	}
	if !math.IsNaN(R2(nil, nil)) {
		t.Error("R2 of empty should be NaN")
	}
	if !math.IsNaN(R2([]float64{1}, []float64{1, 2})) {
		t.Error("R2 of mismatched lengths should be NaN")
	}
}

func TestR2ZeroVariance(t *testing.T) {
	obs := []float64{2, 2, 2}
	if r := R2(obs, []float64{2, 2, 2}); r != 0 {
		t.Errorf("exact constant prediction R2 = %v, want 0", r)
	}
	if r := R2(obs, []float64{1, 2, 3}); !math.IsInf(r, -1) {
		t.Errorf("wrong constant prediction R2 = %v, want -Inf", r)
	}
}

func TestRecall(t *testing.T) {
	truth := []string{"a", "b", "c"}
	if r := Recall(truth, []string{"a", "b", "c", "d"}); r != 1 {
		t.Errorf("full recall = %v", r)
	}
	if r := Recall(truth, []string{"a"}); !almost(r, 1.0/3, 1e-12) {
		t.Errorf("partial recall = %v", r)
	}
	if r := Recall(truth, nil); r != 0 {
		t.Errorf("empty found recall = %v", r)
	}
	if r := Recall(nil, []string{"x"}); r != 1 {
		t.Errorf("empty truth recall = %v", r)
	}
}

func TestKFold(t *testing.T) {
	rng := sample.NewRNG(11)
	folds := KFold(103, 5, rng)
	if len(folds) != 5 {
		t.Fatalf("fold count = %d", len(folds))
	}
	seen := make(map[int]int)
	for _, f := range folds {
		for _, i := range f {
			seen[i]++
		}
	}
	if len(seen) != 103 {
		t.Fatalf("covered %d indices, want 103", len(seen))
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d appears %d times", i, c)
		}
	}
	// Sizes differ by at most one.
	min, max := 1<<30, 0
	for _, f := range folds {
		if len(f) < min {
			min = len(f)
		}
		if len(f) > max {
			max = len(f)
		}
	}
	if max-min > 1 {
		t.Errorf("fold size spread %d..%d", min, max)
	}
}

func TestKFoldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("KFold(3,5) should panic (n < k)")
		}
	}()
	KFold(3, 5, sample.NewRNG(1))
}

func TestTrainTest(t *testing.T) {
	train := TrainTest(6, []int{1, 4})
	want := []int{0, 2, 3, 5}
	if len(train) != len(want) {
		t.Fatalf("train = %v", train)
	}
	for i := range want {
		if train[i] != want[i] {
			t.Fatalf("train = %v, want %v", train, want)
		}
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	s := Summarize(xs)
	if s.N != 100 || s.Min != 1 || s.Max != 100 {
		t.Errorf("summary = %+v", s)
	}
	if !almost(s.P50, 50.5, 1e-9) || !almost(s.Mean, 50.5, 1e-9) {
		t.Errorf("P50/Mean = %v/%v", s.P50, s.Mean)
	}
	if s.P90 <= s.P50 || s.P99 <= s.P90 {
		t.Errorf("percentiles not increasing: %+v", s)
	}
}
