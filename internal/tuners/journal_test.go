package tuners

import (
	"path/filepath"
	"testing"

	"repro/internal/conf"
	"repro/internal/journal"
)

func sessionMeta() journal.Meta {
	return journal.Meta{Seed: 9, Budget: 12, Tuner: "RandomSearch"}
}

// countedFlaky wraps flakyObjective with a live-call counter so tests
// can assert replay never touches the objective.
func countedFlaky(failFirst int, live *int) *FuncObjective {
	inner := flakyObjective(failFirst)
	orig := inner.FnOutcome
	inner.FnOutcome = func(c conf.Config) (float64, bool, bool) {
		*live++
		return orig(c)
	}
	return inner
}

// TestSessionJournalReplaySubstitutes: a resumed session must serve
// the journaled records without touching the objective, restore the
// stream position and failure ledger, and report the same result.
func TestSessionJournalReplaySubstitutes(t *testing.T) {
	sp := smallSpace(t)
	path := filepath.Join(t.TempDir(), "s.jnl")

	jn, err := journal.Open(path, sessionMeta(), journal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	jn.SetPhase("bo")
	full := RandomSearch{}.Run(NewSession(flakyObjective(1), sp, Request{
		Budget: 12, Seed: 9, Retry: RetryPolicy{MaxRetries: 2}, Journal: jn,
	}))
	if err := jn.Close(); err != nil {
		t.Fatal(err)
	}
	if !full.Found {
		t.Fatal("baseline session found nothing")
	}
	if full.Failures.Retries == 0 {
		t.Fatal("flaky objective produced no retries; test is not exercising the stream restore")
	}

	jn2, err := journal.Open(path, sessionMeta(), journal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if jn2.ReplayPending() != 12 {
		t.Fatalf("replay pending %d, want 12", jn2.ReplayPending())
	}
	jn2.SetPhase("bo")
	live := 0
	obj := countedFlaky(1, &live)
	res := RandomSearch{}.Run(NewSession(obj, sp, Request{
		Budget: 12, Seed: 9, Retry: RetryPolicy{MaxRetries: 2}, Journal: jn2,
	}))
	if reason := jn2.Diverged(); reason != "" {
		t.Fatalf("replay diverged: %s", reason)
	}
	jn2.Close()

	if live != 0 {
		t.Fatalf("full replay made %d live objective calls", live)
	}
	if res.BestSeconds != full.BestSeconds || res.Evals != full.Evals || res.SearchCost != full.SearchCost {
		t.Fatalf("resumed result %v/%d/%v, want %v/%d/%v",
			res.BestSeconds, res.Evals, res.SearchCost, full.BestSeconds, full.Evals, full.SearchCost)
	}
	if res.Failures != full.Failures {
		t.Fatalf("failure ledger %+v, want %+v", res.Failures, full.Failures)
	}
	if len(res.Trace) != len(full.Trace) {
		t.Fatalf("trace length %d, want %d", len(res.Trace), len(full.Trace))
	}
	for i := range full.Trace {
		if res.Trace[i] != full.Trace[i] {
			t.Fatalf("trace[%d] = %v, want %v", i, res.Trace[i], full.Trace[i])
		}
	}
	// The objective's stream position was restored even though it was
	// never called.
	if obj.Evals() != full.Evals {
		t.Fatalf("restored stream position %d, want %d", obj.Evals(), full.Evals)
	}
}

// TestSessionReplayDivergenceContinuesLive: a decision path that no
// longer matches the journal (here: a different tuner seed the meta
// cannot catch) must truncate the stale tail and finish the campaign
// live — never replay wrong records, never fail the session.
func TestSessionReplayDivergenceContinuesLive(t *testing.T) {
	sp := smallSpace(t)
	path := filepath.Join(t.TempDir(), "d.jnl")
	jn, err := journal.Open(path, sessionMeta(), journal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	jn.SetPhase("bo")
	RandomSearch{}.Run(NewSession(flakyObjective(0), sp, Request{Budget: 8, Seed: 9, Journal: jn}))
	jn.Close()

	jn2, err := journal.Open(path, sessionMeta(), journal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	jn2.SetPhase("bo")
	live := 0
	res := RandomSearch{}.Run(NewSession(countedFlaky(0, &live), sp, Request{
		Budget: 8, Seed: 10, Journal: jn2, // different sampling sequence
	}))
	if jn2.Diverged() == "" {
		t.Fatal("mismatched decision path replayed without detection")
	}
	jn2.Close()
	if !res.Found {
		t.Fatal("diverged session did not finish")
	}
	if live != 8 {
		t.Fatalf("diverged session made %d live calls, want the full 8", live)
	}

	// The stale tail is gone: the journal now holds exactly the live
	// session's records and resumes cleanly at the new seed.
	jn3, err := journal.Open(path, sessionMeta(), journal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if jn3.ReplayPending() != 8 {
		t.Fatalf("post-divergence journal replays %d records, want 8", jn3.ReplayPending())
	}
	jn3.SetPhase("bo")
	live2 := 0
	res2 := RandomSearch{}.Run(NewSession(countedFlaky(0, &live2), sp, Request{
		Budget: 8, Seed: 10, Journal: jn3,
	}))
	if reason := jn3.Diverged(); reason != "" {
		t.Fatalf("clean resume diverged: %s", reason)
	}
	jn3.Close()
	if live2 != 0 || res2.BestSeconds != res.BestSeconds {
		t.Fatalf("post-divergence resume: live=%d best=%v, want 0/%v", live2, res2.BestSeconds, res.BestSeconds)
	}
}
