package tuners

import (
	"testing"

	"repro/internal/conf"
	"repro/internal/sparksim"
)

// grantStub hands out a scripted sequence of budget grants and
// records the trial counts at which it was asked.
type grantStub struct {
	grants  []int
	askedAt []int
}

func (g *grantStub) Grant(trials int) int {
	g.askedAt = append(g.askedAt, trials)
	if len(g.grants) == 0 {
		return 0
	}
	n := g.grants[0]
	g.grants = g.grants[1:]
	return n
}

func extendObjective() *FuncObjective {
	return &FuncObjective{Fn: func(c conf.Config) (float64, bool) {
		s := 5.0
		for i := 0; i < c.Space().Dim(); i++ {
			s += c.RawAt(i) * 0.01
		}
		return s, true
	}}
}

// TestRandomSearchExtensionEquivalence: budget granted in pieces spends
// exactly like budget granted up front — 5 base + 3 granted produces
// the identical trial sequence as a plain budget of 8.
func TestRandomSearchExtensionEquivalence(t *testing.T) {
	space := conf.SparkSpace()
	want := RandomSearch{}.Run(NewSession(extendObjective(), space, Request{Budget: 8, Seed: 41}))

	gs := &grantStub{grants: []int{3}}
	got := RandomSearch{}.Run(NewSession(extendObjective(), space, Request{Budget: 5, Seed: 41, Grants: gs}))

	if len(got.Trace) != 8 {
		t.Fatalf("extended session ran %d trials, want 8", len(got.Trace))
	}
	if got.BestSeconds != want.BestSeconds || !got.Best.Equal(want.Best) {
		t.Fatalf("extended best (%v, %v) != direct best (%v, %v)",
			got.Best.ToMap(), got.BestSeconds, want.Best.ToMap(), want.BestSeconds)
	}
	for i := range want.Trace {
		if got.Trace[i] != want.Trace[i] {
			t.Fatalf("trace[%d] = %v, want %v", i, got.Trace[i], want.Trace[i])
		}
	}
	// The grant was requested exactly at base-budget exhaustion, and the
	// post-grant exhaustion asked once more (declined, ending the loop).
	if len(gs.askedAt) != 2 || gs.askedAt[0] != 5 || gs.askedAt[1] != 8 {
		t.Fatalf("grant draws at %v, want [5 8]", gs.askedAt)
	}
}

// nonExtender is a stepper that stops deliberately: it lacks the
// Extender capability entirely, so the driver must never charge the
// grant source on its behalf.
type nonExtender struct {
	Protocol
	space *conf.Space
	left  int
}

func (st *nonExtender) Done() bool { return st.left <= 0 }

func (st *nonExtender) Propose(n int) []Proposal {
	st.CheckPropose(st.Done())
	st.left--
	p := []Proposal{{Config: st.space.Default()}}
	st.Proposed(p)
	return p
}

func (st *nonExtender) Observe(c conf.Config, rec sparksim.EvalRecord) { st.Observed(c) }

// TestNonExtenderNeverCharged: a declined extension must not draw from
// the grant pool — tryExtend checks the capability before asking, so
// the unspent budget stays available for sibling sessions.
func TestNonExtenderNeverCharged(t *testing.T) {
	space := conf.SparkSpace()
	gs := &grantStub{grants: []int{10}}
	s := NewSession(extendObjective(), space, Request{Budget: 10, Seed: 1, Grants: gs})
	res := Drive(&nonExtender{space: space, left: 4}, s)
	if len(res.Trace) != 4 {
		t.Fatalf("stepper ran %d trials, want 4", len(res.Trace))
	}
	if len(gs.askedAt) != 0 {
		t.Fatalf("grant source charged %d times for a non-extending stepper", len(gs.askedAt))
	}
	if len(gs.grants) != 1 {
		t.Fatal("grant was consumed despite never being applicable")
	}
}

// TestExtensionStopsWhenDeclined: a zero grant ends the session like
// plain budget exhaustion.
func TestExtensionStopsWhenDeclined(t *testing.T) {
	space := conf.SparkSpace()
	gs := &grantStub{} // always answers 0
	res := RandomSearch{}.Run(NewSession(extendObjective(), space, Request{Budget: 6, Seed: 3, Grants: gs}))
	if len(res.Trace) != 6 {
		t.Fatalf("declined extension changed the trial count: %d, want 6", len(res.Trace))
	}
	if len(gs.askedAt) != 1 || gs.askedAt[0] != 6 {
		t.Fatalf("grant draws at %v, want exactly [6]", gs.askedAt)
	}
}
