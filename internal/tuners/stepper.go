package tuners

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/conf"
	"repro/internal/journal"
)

// Proposal is one trial a stepper asks its driver to run: the
// configuration plus the stopping cap the tuner chose for it (0 means
// no tuner-side cap; a session deadline still applies when the driver
// is a Session) and the fidelity the trial should run at (the zero
// value is the full workload; multi-fidelity steppers like BOHB
// propose cheap proxy runs on the lower rungs of their ladder).
type Proposal struct {
	Config   conf.Config
	Cap      float64
	Fidelity backend.Fidelity
}

// Stepper is the inverted (ask/tell) tuner protocol: instead of a
// blocking loop that calls the objective, a stepper emits the trials
// it wants evaluated and is fed the outcomes. Every tuner in this
// repository is implemented as a stepper; Drive runs one under a
// Session (the in-process driver), and external systems can drive one
// directly against a real cluster without any Objective at all.
//
// Protocol:
//
//   - Propose(n) returns up to n trials to evaluate next (n <= 0
//     means "as many as the stepper can usefully emit"). An empty
//     return with no outstanding observations means the stepper has
//     nothing further; an empty return *with* outstanding
//     observations means it is waiting for them (sequential phases
//     propose one trial at a time).
//   - Observe(c, rec) feeds back the outcome of a proposed trial.
//     Observations of distinct trials may arrive in any order, but
//     every observation must match a pending proposal: observing a
//     configuration that was never proposed (or already observed)
//     panics rather than corrupting tuner state.
//   - Done() reports that the stepper will never propose again.
//     Calling Propose after Done panics.
type Stepper interface {
	Propose(n int) []Proposal
	Observe(c conf.Config, rec backend.EvalRecord)
	Done() bool
}

// Batcher is the optional stepper capability for concurrent
// evaluation: EvalParallel returns the worker count the driver should
// use when a multi-trial proposal batch has no per-trial caps.
type Batcher interface {
	EvalParallel() int
}

// Extender is the optional stepper capability for adaptive budgets: a
// stepper that stopped only because its evaluation budget ran out can
// absorb extra evaluations granted from a campaign's budget pool and
// keep searching. A stepper that stopped deliberately (early-stop
// patience, nothing left to propose) answers CanExtend false and is
// never granted anything.
type Extender interface {
	// CanExtend reports whether more budget would actually be spent.
	CanExtend() bool
	// ExtendBudget adds n evaluations to the remaining budget and
	// revives the stepper if budget exhaustion had finished it.
	ExtendBudget(n int)
}

// Finisher is the optional stepper capability for end-of-session
// bookkeeping (ROBOTune's memoization and final snapshot): Drive
// calls Finish exactly once, after the propose/observe loop ends —
// whether the stepper completed or the session was cancelled.
type Finisher interface {
	Finish(s *Session)
}

// ResultMaker is the optional stepper capability for tuners whose
// Result carries more than the session's generic view (ROBOTune's
// selection accounting and trace). Without it, Drive returns
// s.Result().
type ResultMaker interface {
	SessionResult(s *Session) Result
}

// Protocol is the embeddable bookkeeping that makes a stepper fail
// loudly on misuse instead of corrupting state: it tracks proposed
// trials in flight and matches every observation back to the earliest
// pending proposal of that configuration.
type Protocol struct {
	pending []pendingTrial
	next    int
}

type pendingTrial struct {
	seq int
	cfg map[string]float64
}

// CheckPropose panics when Propose is called on a finished stepper —
// each stepper calls it at the top of Propose with its own Done().
func (p *Protocol) CheckPropose(done bool) {
	if done {
		panic("tuners: Propose called after Done")
	}
}

// Proposed registers a batch of outgoing proposals and returns the
// sequence number assigned to the first (the rest follow
// consecutively).
func (p *Protocol) Proposed(ps []Proposal) int {
	first := p.next
	for _, pr := range ps {
		p.pending = append(p.pending, pendingTrial{seq: p.next, cfg: pr.Config.ToMap()})
		p.next++
	}
	return first
}

// Observed consumes the earliest pending proposal matching c and
// returns its sequence number. It panics when no pending proposal
// matches — an Observe without a Propose, or a double Observe of the
// same trial.
func (p *Protocol) Observed(c conf.Config) int {
	for i, pt := range p.pending {
		if sameConfig(pt.cfg, c) {
			seq := pt.seq
			p.pending = append(p.pending[:i], p.pending[i+1:]...)
			return seq
		}
	}
	panic(fmt.Sprintf("tuners: Observe without a matching Propose (or double Observe): %v", c.ToMap()))
}

// Outstanding returns the number of proposed-but-unobserved trials.
func (p *Protocol) Outstanding() int { return len(p.pending) }

// Drive runs a stepper to completion under a session — the single
// driver loop that owns evaluation, retries, deadlines, cancellation,
// journal commit and replay substitution for every tuner. Proposal
// batches sharing one cap and one fidelity go through the session's
// concurrent batch path when the stepper asks for parallelism;
// everything else is evaluated sequentially with a cancellation check
// per trial.
func Drive(st Stepper, s *Session) Result {
	for !s.Done() {
		if st.Done() {
			// Budget exhaustion is revivable: when the session has a
			// campaign grant source and the stepper can absorb more
			// budget, extend and keep proposing. Everything else ends the
			// loop for good.
			if !s.tryExtend(st) {
				break
			}
			continue
		}
		props := st.Propose(0)
		if len(props) == 0 {
			break
		}
		par := 1
		if b, ok := st.(Batcher); ok {
			par = b.EvalParallel()
		}
		if par > 1 && len(props) > 1 && sameCap(props) && sameFidelity(props) {
			cfgs := make([]conf.Config, len(props))
			for i, p := range props {
				cfgs[i] = p.Config
			}
			spec := backend.EvalSpec{Cap: props[0].Cap, Fidelity: props[0].Fidelity, Workers: par}
			for i, rec := range s.Eval(spec, cfgs...) {
				st.Observe(cfgs[i], rec)
			}
			continue
		}
		for _, p := range props {
			if s.Done() {
				break
			}
			spec := backend.EvalSpec{Cap: p.Cap, Fidelity: p.Fidelity}
			st.Observe(p.Config, s.Eval(spec, p.Config)[0])
		}
	}
	if f, ok := st.(Finisher); ok {
		f.Finish(s)
	}
	res := s.Result()
	if rm, ok := st.(ResultMaker); ok {
		res = rm.SessionResult(s)
	}
	AppendDone(s.Journal(), res)
	return res
}

// sameCap reports whether every proposal carries one stopping cap — a
// uniform wave (capped or not) can run under a single batch EvalSpec.
func sameCap(props []Proposal) bool {
	for _, p := range props[1:] {
		if p.Cap != props[0].Cap {
			return false
		}
	}
	return true
}

// sameFidelity reports whether every proposal runs at one fidelity —
// the batch path evaluates a whole wave under a single EvalSpec, so
// mixed-fidelity waves fall back to the sequential loop.
func sameFidelity(props []Proposal) bool {
	for _, p := range props[1:] {
		if p.Fidelity != props[0].Fidelity {
			return false
		}
	}
	return true
}

// AppendDone records the session outcome in the journal. A cancelled
// session deliberately leaves no done marker so its journal stays
// resumable; a finished one records its result, and replaying the
// whole journal reproduces it without spending a single new
// evaluation. Exported for drivers outside this package (the
// robotuned wire server seals its sessions with it).
func AppendDone(jn *journal.Journal, res Result) {
	if jn == nil || res.Cancelled {
		return
	}
	done := journal.DoneEntry{
		Found:          res.Found,
		Evals:          res.Evals,
		SearchCost:     res.SearchCost,
		SelectionEvals: res.SelectionEvals,
		SelectionCost:  res.SelectionCost,
	}
	if res.Found {
		// BestSeconds is +Inf when nothing completed, which JSON cannot
		// encode; record it only for a found result.
		done.Best = res.Best.ToMap()
		done.BestSeconds = res.BestSeconds
	}
	_ = jn.AppendDone(done)
}
