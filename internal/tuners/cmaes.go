package tuners

import (
	"math"

	"repro/internal/backend"
	"repro/internal/conf"
	"repro/internal/optimize"
	"repro/internal/sample"
)

// CMAES is an extension baseline: separable CMA-ES evolving
// configurations directly in the 44-dimensional unit cube. Evolution
// strategies are a standard tool in program autotuning; like Gunther
// it is population-based, but with principled step-size and
// per-coordinate variance adaptation instead of ad-hoc mutation
// rates.
type CMAES struct {
	// Sigma0 is the initial step size (default 0.25 of the cube).
	Sigma0 float64
	// Lambda is the population size (default 4+3·ln d).
	Lambda int
}

// Name implements Tuner.
func (CMAES) Name() string { return "CMAES" }

// Tune implements Tuner.
func (c CMAES) Tune(obj Objective, space *conf.Space, budget int, seed uint64) Result {
	return c.Run(NewSession(obj, space, Request{Budget: budget, Seed: seed}))
}

// Run implements SessionTuner by driving the stepper.
func (c CMAES) Run(s *Session) Result {
	return Drive(c.Stepper(s.Space(), s.Budget(), s.Seed()), s)
}

// Stepper returns the ask/tell form of CMA-ES: each generation is
// proposed as one wave and told back to the optimizer once fully
// observed. When the budget is below one generation the distribution
// mean is proposed as a last resort, matching the blocking loop.
func (c CMAES) Stepper(space *conf.Space, budget int, seed uint64) Stepper {
	rng := sample.NewRNG(seed)
	// Start from the cube center; CMA-ES handles the rest.
	x0 := make([]float64, space.Dim())
	for i := range x0 {
		x0[i] = 0.5
	}
	st := &cmaesStepper{
		space:  space,
		budget: budget,
		opt: optimize.NewCMAES(x0, optimize.UnitBox(space.Dim()),
			optimize.CMAESConfig{Sigma0: c.Sigma0, Lambda: c.Lambda, MaxEvals: budget, Seed: seed}, rng),
		slot: make(map[int]int),
	}
	st.startGeneration()
	return st
}

type cmaesStepper struct {
	Protocol
	space  *conf.Space
	budget int
	opt    *optimize.CMAESState
	gens   int
	done   bool

	// Current generation state.
	xs   [][]float64
	fs   []float64
	next int
	seen int
	slot map[int]int // proposal sequence → generation index

	meanPhase    bool
	meanProposed bool
}

func (st *cmaesStepper) Done() bool { return st.done }

func (st *cmaesStepper) startGeneration() {
	if !st.opt.Done() {
		st.xs = st.opt.Ask()
		st.fs = make([]float64, len(st.xs))
		st.next = 0
		st.seen = 0
		return
	}
	st.xs = nil
	if st.gens == 0 && st.budget > 0 {
		// Budget below one generation: evaluate the mean, exactly like
		// the blocking optimizer's final fallback.
		st.meanPhase = true
		return
	}
	st.done = true
}

func (st *cmaesStepper) Propose(n int) []Proposal {
	st.CheckPropose(st.done)
	if st.meanPhase {
		if st.meanProposed {
			return nil
		}
		st.meanProposed = true
		props := []Proposal{{Config: st.space.Decode(st.opt.Mean())}}
		st.Proposed(props)
		return props
	}
	if st.next >= len(st.xs) {
		return nil // waiting for the generation's outstanding observations
	}
	k := len(st.xs) - st.next
	if n > 0 && n < k {
		k = n
	}
	props := make([]Proposal, k)
	for i := 0; i < k; i++ {
		props[i] = Proposal{Config: st.space.Decode(st.xs[st.next+i])}
	}
	first := st.Proposed(props)
	for i := 0; i < k; i++ {
		st.slot[first+i] = st.next + i
	}
	st.next += k
	return props
}

func (st *cmaesStepper) Observe(c conf.Config, rec backend.EvalRecord) {
	seq := st.Observed(c)
	if st.meanPhase {
		st.done = true
		return
	}
	idx := st.slot[seq]
	delete(st.slot, seq)
	f := rec.Seconds
	if rec.Skipped {
		f = math.Inf(1)
	}
	st.fs[idx] = f
	st.seen++
	if st.seen == len(st.xs) && st.next >= len(st.xs) {
		st.opt.Tell(st.fs)
		st.gens++
		st.startGeneration()
	}
}
