package tuners

import (
	"math"

	"repro/internal/conf"
	"repro/internal/optimize"
	"repro/internal/sample"
)

// CMAES is an extension baseline: separable CMA-ES evolving
// configurations directly in the 44-dimensional unit cube. Evolution
// strategies are a standard tool in program autotuning; like Gunther
// it is population-based, but with principled step-size and
// per-coordinate variance adaptation instead of ad-hoc mutation
// rates.
type CMAES struct {
	// Sigma0 is the initial step size (default 0.25 of the cube).
	Sigma0 float64
	// Lambda is the population size (default 4+3·ln d).
	Lambda int
}

// Name implements Tuner.
func (CMAES) Name() string { return "CMAES" }

// Tune implements Tuner.
func (c CMAES) Tune(obj Objective, space *conf.Space, budget int, seed uint64) Result {
	return c.Run(NewSession(obj, space, Request{Budget: budget, Seed: seed}))
}

// Run implements SessionTuner.
func (c CMAES) Run(s *Session) Result {
	space, budget := s.Space(), s.Budget()
	rng := sample.NewRNG(s.Seed())

	evalsLeft := budget
	f := func(u []float64) float64 {
		if evalsLeft <= 0 || s.Done() {
			// Budget exhausted (or session cancelled) mid-generation:
			// return a terrible value without consuming an evaluation.
			return math.Inf(1)
		}
		evalsLeft--
		rec := s.Evaluate(space.Decode(u))
		return rec.Seconds
	}

	// Start from the cube center; CMA-ES handles the rest.
	x0 := make([]float64, space.Dim())
	for i := range x0 {
		x0[i] = 0.5
	}
	optimize.CMAES(f, x0, optimize.UnitBox(space.Dim()),
		optimize.CMAESConfig{Sigma0: c.Sigma0, Lambda: c.Lambda, MaxEvals: budget, Seed: s.Seed()}, rng)
	return s.Result()
}
