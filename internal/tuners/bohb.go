package tuners

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/backend"
	"repro/internal/bo"
	"repro/internal/conf"
	"repro/internal/sample"
)

// BOHB is the multi-fidelity extension tuner: BOHB-style successive
// halving over a *fidelity ladder* (fractions of the real workload
// along a configurable axis — input volumes or stage-plan prefix)
// with the BO engine proposing bracket cohorts and a single surrogate
// accumulating evidence across all fidelities.
//
// Each bracket evaluates a cohort of Eta^(rungs-1) configurations at
// the ladder's cheapest fidelity, promotes the fastest 1/Eta to the
// next rung, and repeats until the survivors run the full workload.
// The first bracket's cohort is an LHS design; later brackets draw
// theirs from the surrogate via constant-liar batch suggestion, so
// brackets sharpen as evidence accumulates. Budget that cannot fund a
// whole bracket is spent on sequential full-fidelity BO suggestions
// (brackets are never truncated mid-rung — a half-evaluated rung
// promotes garbage).
//
// The surrogate sees full-fidelity completions as exact observations
// and proxy completions as *extrapolated* evidence: the observed
// log-runtime plus the log of the rung's scale ratio (i.e. runtime is
// assumed to scale linearly with input size). The assumption is crude
// but consistent — it preserves the ranking within a rung and keeps
// every observation on one comparable scale, which is all the
// acquisition needs; learning a per-rung correction from promotion
// pairs was tried and measurably hurt, because early in a session the
// estimate is built from a handful of biased survivors. Failures
// enter censored, exactly as in ROBOTune. When BO.CostAware is set,
// every observation also feeds the engine's cost model with its
// full-fidelity-equivalent spend, making the acquisition prefer cheap
// promising points.
type BOHB struct {
	// Eta is the promotion factor: 1/Eta of each rung survives
	// (default 3, Hyperband's usual choice).
	Eta int
	// Ladder lists the input-scale fidelities in ascending order; the
	// last entry must be 1 (the full workload). Default {1/9, 1/3, 1}.
	// An invalid ladder (see ValidFidelityLadder) falls back to the
	// default.
	Ladder []float64
	// BO configures the shared surrogate engine. The zero value
	// selects bo.DefaultConfig (preserving CostAware and Workers).
	BO bo.Config
	// Axis selects which workload dimension the ladder scales: input
	// volumes (the default) or the stage-plan prefix. Batch jobs whose
	// runtime is data-volume-bound proxy well under AxisInput;
	// iterative workloads (many similar stages) often have a per-stage
	// cost floor that input scaling cannot shrink, and proxy far more
	// cheaply — and rank more faithfully — under AxisStage.
	Axis FidelityAxis
	// Workers is the parallelism hint for rung waves (default 1).
	Workers int
	// Guard is the median-multiple stopping cap, the same mechanism as
	// ROBOTune's Options.GuardMultiple: each proposal carries a cap of
	// Guard × the median completed full-equivalent time, scaled to the
	// rung's fidelity. Default 3; < 0 disables.
	Guard float64
}

// FidelityAxis selects which workload dimension a BOHB fidelity
// ladder scales down.
type FidelityAxis int

const (
	// AxisInput scales every stage's data volumes by the rung fraction.
	AxisInput FidelityAxis = iota
	// AxisStage truncates the plan to the first ceil(frac·stages)
	// stages.
	AxisStage
)

// DefaultLadder is the fidelity ladder BOHB uses when none is given:
// two proxy rungs a factor of Eta=3 apart, then the full workload.
func DefaultLadder() []float64 { return []float64{1.0 / 9, 1.0 / 3, 1} }

// MaxLadderRungs bounds the fidelity ladder length accepted by
// ValidFidelityLadder (a 16-rung ladder is already far past useful).
const MaxLadderRungs = 16

// ValidFidelityLadder checks a fidelity ladder: 1-16 finite entries,
// each in (0, 1], strictly ascending, ending at exactly 1. The cli
// and the wire server validate user ladders with it before handing
// them to BOHB.
func ValidFidelityLadder(l []float64) error {
	if len(l) == 0 {
		return fmt.Errorf("fidelity ladder is empty")
	}
	if len(l) > MaxLadderRungs {
		return fmt.Errorf("fidelity ladder has %d rungs, max %d", len(l), MaxLadderRungs)
	}
	for i, v := range l {
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 || v > 1 {
			return fmt.Errorf("fidelity ladder rung %d = %v, want (0, 1]", i, v)
		}
		if i > 0 && v <= l[i-1] {
			return fmt.Errorf("fidelity ladder not strictly ascending at rung %d", i)
		}
	}
	if l[len(l)-1] != 1 {
		return fmt.Errorf("fidelity ladder must end at 1, ends at %v", l[len(l)-1])
	}
	return nil
}

// Name implements Tuner.
func (BOHB) Name() string { return "BOHB" }

// Tune implements Tuner.
func (b BOHB) Tune(obj Objective, space *conf.Space, budget int, seed uint64) Result {
	return b.Run(NewSession(obj, space, Request{Budget: budget, Seed: seed}))
}

// Run implements SessionTuner by driving the stepper.
func (b BOHB) Run(ses *Session) Result {
	return Drive(b.Stepper(ses.Space(), ses.Budget(), ses.Seed()), ses)
}

// boConfig resolves the engine configuration: a zero BO field selects
// the defaults while preserving the orthogonal CostAware and Workers
// toggles, and the session seed always wins.
func (b BOHB) boConfig(seed uint64) bo.Config {
	cfg := b.BO
	if cfg.Portfolio == nil && cfg.CandidatePool == 0 {
		d := bo.DefaultConfig()
		d.CostAware = cfg.CostAware
		d.Workers = cfg.Workers
		cfg = d
	}
	cfg.Seed = seed
	return cfg
}

type bohbEntry struct {
	c   conf.Config
	sec float64 // ranking key: observed seconds (spend floor if failed)
}

// Stepper returns the ask/tell form of BOHB. Each rung is proposed as
// one wave at its ladder fidelity; promotion runs once the whole rung
// has been observed; new brackets start while a full bracket still
// fits in the remaining budget, then the tail phase spends what is
// left on sequential full-fidelity BO suggestions.
func (b BOHB) Stepper(space *conf.Space, budget int, seed uint64) Stepper {
	if b.Eta < 2 {
		b.Eta = 3
	}
	if len(b.Ladder) == 0 || ValidFidelityLadder(b.Ladder) != nil {
		b.Ladder = DefaultLadder()
	}
	if b.Workers < 1 {
		b.Workers = 1
	}
	if b.Guard == 0 {
		b.Guard = 3
	}

	// A bracket costs n0 + n0/Eta + ... trials for n0 = Eta^(rungs-1).
	n0 := 1
	for r := 1; r < len(b.Ladder); r++ {
		n0 *= b.Eta
	}
	trials := 0
	for r, n := 0, n0; r < len(b.Ladder); r, n = r+1, n/b.Eta {
		if n < 1 {
			n = 1
		}
		trials += n
	}

	st := &bohbStepper{
		cfg:           b,
		space:         space,
		rng:           sample.NewRNG(seed ^ 0xb0bb),
		engine:        bo.New(space.Dim(), b.boConfig(seed)),
		remaining:     budget,
		cohortSize:    n0,
		bracketTrials: trials,
		slot:          make(map[int]int),
	}
	st.startBracket()
	return st
}

type bohbStepper struct {
	Protocol
	cfg           BOHB
	space         *conf.Space
	rng           *rand.Rand
	engine        *bo.Engine
	remaining     int
	cohortSize    int // n0 = Eta^(rungs-1)
	bracketTrials int // total trials one whole bracket costs
	bracket       int // brackets started so far
	tail          bool
	surrFallbacks int

	// Current rung state.
	queue []bohbEntry
	rung  int
	next  int
	seen  int
	slot  map[int]int // proposal sequence → rung entry index

	// times holds completed full-equivalent execution times (proxy
	// measurements scaled up linearly), the population the guard cap's
	// median is drawn from.
	times []float64
}

func (st *bohbStepper) Done() bool { return st.tail && st.remaining <= 0 }

// EvalParallel implements Batcher: rung waves may be evaluated
// concurrently. Promotion is order-independent (the engine is fed in
// queue order at rung end), so results are bit-identical for any
// worker count.
func (st *bohbStepper) EvalParallel() int { return st.cfg.Workers }

// startBracket opens the next bracket — or, when a whole bracket no
// longer fits, switches to the full-fidelity tail phase.
func (st *bohbStepper) startBracket() {
	if st.remaining < st.bracketTrials {
		st.tail = true
		return
	}
	st.queue = st.cohort(st.cohortSize)
	st.bracket++
	st.rung = 0
	st.startRung()
}

// cohort draws a bracket's initial configurations: LHS for the first
// bracket (and whenever the surrogate has nothing to say), batch
// suggestions from the engine afterwards, padded with random points
// if the constant-liar lookahead stops early.
func (st *bohbStepper) cohort(n int) []bohbEntry {
	var us [][]float64
	if st.bracket > 0 && st.engine.N() >= 2 {
		us = st.suggestBatch(n)
	}
	if len(us) == 0 {
		us = sample.LHS(n, st.space.Dim(), st.rng)
	}
	for len(us) < n {
		us = append(us, randomUnitVec(st.space.Dim(), st.rng))
	}
	entries := make([]bohbEntry, n)
	for i := 0; i < n; i++ {
		entries[i] = bohbEntry{c: st.space.Decode(us[i])}
	}
	return entries
}

// startRung reserves the rung's trials (affordability was checked at
// bracket start, so the reservation never truncates a rung).
func (st *bohbStepper) startRung() {
	st.remaining -= len(st.queue)
	st.next, st.seen = 0, 0
}

// rungFidelity maps a ladder rung to the proposal fidelity along the
// configured axis; the top rung (scale 1) is the zero Fidelity, i.e.
// the full workload.
func (st *bohbStepper) rungFidelity(r int) backend.Fidelity {
	s := st.cfg.Ladder[r]
	if s >= 1 {
		return backend.Fidelity{}
	}
	if st.cfg.Axis == AxisStage {
		return backend.Fidelity{StageFrac: s}
	}
	return backend.Fidelity{InputScale: s}
}

// guardCap is the stopping cap for a trial at the given rung: Guard ×
// the median completed full-equivalent time, shrunk linearly to the
// rung's input scale (0 while nothing has completed — an all-failed
// prefix must not manufacture a cap). The cap deliberately stays on
// the linear assumption rather than the learned calibration: a cap
// exists to kill pathological stragglers, and tightening it with a
// still-noisy learned ratio kills good runs instead.
func (st *bohbStepper) guardCap(rung int) float64 {
	if st.cfg.Guard <= 0 || len(st.times) == 0 {
		return 0
	}
	sorted := append([]float64(nil), st.times...)
	sort.Float64s(sorted)
	med := sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		med = (med + sorted[len(sorted)/2-1]) / 2
	}
	return med * st.cfg.Guard * st.cfg.Ladder[rung]
}

func (st *bohbStepper) Propose(n int) []Proposal {
	st.CheckPropose(st.Done())
	if st.tail {
		// Sequential full-fidelity suggestions: one at a time, so each
		// sees every previous observation (and the stepper stays
		// bit-identical for any Workers setting).
		u := st.suggestOne()
		st.remaining--
		props := []Proposal{{Config: st.space.Decode(u), Cap: st.guardCap(len(st.cfg.Ladder) - 1)}}
		st.Proposed(props)
		return props
	}
	if st.next >= len(st.queue) {
		return nil // waiting for the rung's outstanding observations
	}
	k := len(st.queue) - st.next
	if n > 0 && n < k {
		k = n
	}
	fid := st.rungFidelity(st.rung)
	cap := st.guardCap(st.rung)
	props := make([]Proposal, k)
	for i := 0; i < k; i++ {
		props[i] = Proposal{Config: st.queue[st.next+i].c, Cap: cap, Fidelity: fid}
	}
	first := st.Proposed(props)
	for i := 0; i < k; i++ {
		st.slot[first+i] = st.next + i
	}
	st.next += k
	return props
}

func (st *bohbStepper) Observe(c conf.Config, rec backend.EvalRecord) {
	seq := st.Observed(c)
	if st.tail {
		if rec.Completed {
			st.times = append(st.times, rec.Seconds)
		}
		st.feedEngine(c, rec, 1)
		return
	}
	idx := st.slot[seq]
	delete(st.slot, seq)
	// Ranking key: observed seconds; failed runs carry their consumed
	// time (they are at least that slow); skipped (cancelled) entries
	// sort last so they can never be promoted over a measurement.
	sec := rec.Seconds
	switch {
	case rec.Skipped:
		sec = math.Inf(1)
	case !rec.Completed:
		sec = math.Max(rec.Raw, rec.Seconds)
	}
	st.queue[idx].sec = sec
	if rec.Completed {
		st.times = append(st.times, rec.Seconds/st.cfg.Ladder[st.rung])
	}
	if !rec.Skipped {
		st.feedEngine(c, rec, st.cfg.Ladder[st.rung])
	}
	st.seen++
	if st.seen == len(st.queue) && st.next >= len(st.queue) {
		st.endRung()
	}
}

// feedEngine adds one observation to the shared surrogate. Full
// completions (scale 1) are exact; proxy completions are extrapolated
// to full-workload scale linearly; failures are censored floors. The
// cost model always receives the full-fidelity-equivalent spend.
func (st *bohbStepper) feedEngine(c conf.Config, rec backend.EvalRecord, scale float64) {
	u := st.space.Encode(c)
	if rec.Seconds > 0 {
		y := math.Log(rec.Seconds / scale)
		if rec.Completed {
			_ = st.engine.Tell(u, y)
		} else {
			_ = st.engine.TellCensored(u, y)
		}
	}
	if rec.Raw > 0 {
		st.engine.ObserveCost(u, rec.Raw/scale)
	}
}

// endRung promotes the fastest 1/Eta of the rung, or closes the
// bracket when the ladder is exhausted.
func (st *bohbStepper) endRung() {
	evaluated := append([]bohbEntry(nil), st.queue...)
	sort.SliceStable(evaluated, func(a, b int) bool { return evaluated[a].sec < evaluated[b].sec })
	keep := len(evaluated) / st.cfg.Eta
	if keep < 1 {
		keep = 1
	}
	st.rung++
	if st.rung >= len(st.cfg.Ladder) {
		st.startBracket()
		return
	}
	st.queue = evaluated[:keep]
	for i := range st.queue {
		st.queue[i].sec = 0
	}
	st.startRung()
}

// suggestOne asks the engine for the next tail-phase point, falling
// back to a random unit point when the surrogate cannot help (too few
// observations, fit failure, or a panic in the numeric stack).
func (st *bohbStepper) suggestOne() []float64 {
	if st.engine.N() >= 2 {
		if u := st.trySuggest(); u != nil {
			return u
		}
		st.surrFallbacks++
	}
	return randomUnitVec(st.space.Dim(), st.rng)
}

func (st *bohbStepper) trySuggest() (u []float64) {
	defer func() {
		if recover() != nil {
			u = nil
		}
	}()
	u, err := st.engine.Suggest()
	if err != nil {
		return nil
	}
	return u
}

// suggestBatch asks the engine for a bracket cohort, nil on any
// failure (the caller falls back to LHS).
func (st *bohbStepper) suggestBatch(n int) (us [][]float64) {
	defer func() {
		if recover() != nil {
			us = nil
			st.surrFallbacks++
		}
	}()
	out, err := st.engine.BatchSuggest(n)
	if err != nil {
		st.surrFallbacks++
		return nil
	}
	return out
}

// SessionResult implements ResultMaker: BOHB reports its surrogate
// fallbacks like ROBOTune does.
func (st *bohbStepper) SessionResult(s *Session) Result {
	res := s.Result()
	res.SurrogateFallbacks = st.surrFallbacks
	return res
}

func randomUnitVec(d int, rng *rand.Rand) []float64 {
	u := make([]float64, d)
	for i := range u {
		u[i] = rng.Float64()
	}
	return u
}
