package tuners

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/backend"
	"repro/internal/conf"
)

// flakyObjective fails transiently on the first k attempts of every
// configuration, then succeeds.
func flakyObjective(failFirst int) *FuncObjective {
	attempts := map[string]int{}
	return &FuncObjective{
		FnOutcome: func(c conf.Config) (float64, bool, bool) {
			key := fmt.Sprintf("%d|%.6f", c.Int("cores"), c.Float("frac"))
			attempts[key]++
			if attempts[key] <= failFirst {
				return 30, false, true // transient: a retry will succeed
			}
			sec, _ := smoothObjective(c)
			return sec, true, false
		},
	}
}

func TestSessionRetriesTransientFailures(t *testing.T) {
	obj := flakyObjective(1)
	sp := smallSpace(t)
	s := NewSession(obj, sp, Request{Budget: 10, Seed: 1,
		Retry: RetryPolicy{MaxRetries: 2}})
	res := RandomSearch{}.Run(s)

	if !res.Found {
		t.Fatal("retried session found nothing")
	}
	// Every trial fails once then succeeds: 10 trials, 10 retries.
	if res.Failures.Retries != 10 || res.Failures.Transient != 10 {
		t.Errorf("retries=%d transient=%d, want 10/10", res.Failures.Retries, res.Failures.Transient)
	}
	if res.Failures.Failed != 0 {
		t.Errorf("all trials eventually completed, yet Failed=%d", res.Failures.Failed)
	}
	// The retried attempts hit the objective too.
	if res.Evals != 20 {
		t.Errorf("Evals=%d, want 20 (10 trials x 2 attempts)", res.Evals)
	}
	if res.Failures.BackoffSeconds <= 0 {
		t.Error("no backoff accounted")
	}
	if len(res.Trace) != 10 {
		t.Errorf("trace holds %d entries, want one per trial (10)", len(res.Trace))
	}
}

func TestSessionZeroRetryMatchesLegacyTune(t *testing.T) {
	a := RandomSearch{}.Tune(newSynth(smoothObjective), smallSpace(t), 25, 7)
	b := RandomSearch{}.Run(NewSession(newSynth(smoothObjective), smallSpace(t), Request{Budget: 25, Seed: 7}))
	if a.BestSeconds != b.BestSeconds || a.Evals != b.Evals || len(a.Trace) != len(b.Trace) {
		t.Fatalf("legacy Tune and zero-request Run diverge: %+v vs %+v", a, b)
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("trace[%d]: %v vs %v", i, a.Trace[i], b.Trace[i])
		}
	}
}

func TestSessionRetriesExhaustedCountsFailure(t *testing.T) {
	obj := flakyObjective(5) // fails more times than the retry budget
	s := NewSession(obj, smallSpace(t), Request{Budget: 3, Seed: 2,
		Retry: RetryPolicy{MaxRetries: 1}})
	res := RandomSearch{}.Run(s)
	if res.Found {
		t.Fatal("nothing can complete, yet Found=true")
	}
	if res.Failures.Failed != 3 {
		t.Errorf("Failed=%d, want 3", res.Failures.Failed)
	}
	for i, v := range res.Trace {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("trace[%d] = %v", i, v)
		}
	}
}

func TestSessionDeadlineTightensCap(t *testing.T) {
	var caps []float64
	obj := &FuncObjective{
		Fn: func(c conf.Config) (float64, bool) { return 100, true },
	}
	// Wrap to spy the cap the session passes down.
	spy := &capSpy{inner: obj, caps: &caps}
	s := NewSession(spy, smallSpace(t), Request{Budget: 2, Seed: 3, Deadline: 120})
	RandomSearch{}.Run(s)
	if len(caps) != 2 {
		t.Fatalf("want 2 capped calls, got %d", len(caps))
	}
	for _, c := range caps {
		if c != 120 {
			t.Errorf("cap %v, want deadline 120", c)
		}
	}
	// A tuner cap tighter than the deadline wins.
	caps = nil
	s2 := NewSession(spy, smallSpace(t), Request{Budget: 1, Seed: 3, Deadline: 120})
	s2.Eval(backend.EvalSpec{Cap: 60}, smallSpace(t).Default())
	if len(caps) != 1 || caps[0] != 60 {
		t.Errorf("caps=%v, want [60]", caps)
	}
}

// capSpy forwards to an inner objective while recording the cap of
// every spec the session passes down.
type capSpy struct {
	inner *FuncObjective
	caps  *[]float64
}

func (s *capSpy) EvaluateSpec(c conf.Config, spec backend.EvalSpec) backend.EvalRecord {
	*s.caps = append(*s.caps, spec.Cap)
	return s.inner.EvaluateSpec(c, spec)
}
func (s *capSpy) SearchCost() float64 { return s.inner.SearchCost() }
func (s *capSpy) Evals() int          { return s.inner.Evals() }

func TestSessionCancellationStopsAllTuners(t *testing.T) {
	for _, tn := range []SessionTuner{
		RandomSearch{}, BestConfig{RoundSize: 10}, Gunther{},
		SuccessiveHalving{}, CMAES{},
	} {
		t.Run(tn.Name(), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			evals := 0
			obj := newSynth(func(c conf.Config) (float64, bool) {
				evals++
				if evals >= 5 {
					cancel()
				}
				return smoothObjective(c)
			})
			res := tn.Run(NewSession(obj, smallSpace(t), Request{Ctx: ctx, Budget: 200, Seed: 4}))
			if !res.Cancelled {
				t.Fatal("result not marked cancelled")
			}
			// "Within one evaluation": the tuner must stop promptly, not
			// drain its 200-trial budget.
			if res.Evals > 6 {
				t.Fatalf("tuner kept going after cancel: %d evals", res.Evals)
			}
			if !res.Found {
				t.Fatal("best-so-far lost on cancellation")
			}
		})
	}
}

func TestSessionPreCancelledReturnsEmpty(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	obj := newSynth(smoothObjective)
	res := Gunther{}.Run(NewSession(obj, smallSpace(t), Request{Ctx: ctx, Budget: 50, Seed: 5}))
	if res.Found || res.Evals != 0 || !res.Cancelled {
		t.Fatalf("pre-cancelled session ran work: %+v", res)
	}
}

func TestSessionBatchFallbackAppliesRetries(t *testing.T) {
	obj := flakyObjective(1) // FuncObjective: no batch capability
	sp := smallSpace(t)
	s := NewSession(obj, sp, Request{Budget: 4, Seed: 6,
		Retry: RetryPolicy{MaxRetries: 1}})
	cfgs := []conf.Config{sp.Default(), sp.Default(), sp.Default(), sp.Default()}
	recs := s.Eval(backend.EvalSpec{Workers: 4}, cfgs...)
	if len(recs) != 4 {
		t.Fatalf("want 4 records, got %d", len(recs))
	}
	// Same config each time: first trial retries once and succeeds,
	// the rest succeed immediately.
	if !recs[0].Completed || s.Stats().Retries != 1 {
		t.Errorf("first record %+v, retries=%d", recs[0], s.Stats().Retries)
	}
}
