package tuners

import (
	"repro/internal/conf"
	"repro/internal/sample"
)

// RandomSearch explores parameter ranges uniformly at random
// (Bergstra & Bengio), the baseline every tuner in §5 is scaled
// against. It is surprisingly competitive in high-dimensional spaces,
// which is exactly the paper's observation about search-based tuners
// that underexploit.
type RandomSearch struct{}

// Name implements Tuner.
func (RandomSearch) Name() string { return "RandomSearch" }

// Tune implements Tuner.
func (t RandomSearch) Tune(obj Objective, space *conf.Space, budget int, seed uint64) Result {
	return t.Run(NewSession(obj, space, Request{Budget: budget, Seed: seed}))
}

// Run implements SessionTuner.
func (RandomSearch) Run(s *Session) Result {
	space := s.Space()
	rng := sample.NewRNG(s.Seed())
	u := make([]float64, space.Dim())
	for i := 0; i < s.Budget() && !s.Done(); i++ {
		for j := range u {
			u[j] = rng.Float64()
		}
		s.Evaluate(space.Decode(u))
	}
	return s.Result()
}
