package tuners

import (
	"repro/internal/conf"
	"repro/internal/sample"
)

// RandomSearch explores parameter ranges uniformly at random
// (Bergstra & Bengio), the baseline every tuner in §5 is scaled
// against. It is surprisingly competitive in high-dimensional spaces,
// which is exactly the paper's observation about search-based tuners
// that underexploit.
type RandomSearch struct{}

// Name implements Tuner.
func (RandomSearch) Name() string { return "RandomSearch" }

// Tune implements Tuner.
func (RandomSearch) Tune(obj Objective, space *conf.Space, budget int, seed uint64) Result {
	rng := sample.NewRNG(seed)
	tr := newTracker()
	u := make([]float64, space.Dim())
	for i := 0; i < budget; i++ {
		for j := range u {
			u[j] = rng.Float64()
		}
		c := space.Decode(u)
		tr.observe(c, obj.Evaluate(c))
	}
	return tr.result(obj)
}
