package tuners

import (
	"math/rand/v2"

	"repro/internal/backend"
	"repro/internal/conf"
	"repro/internal/sample"
)

// RandomSearch explores parameter ranges uniformly at random
// (Bergstra & Bengio), the baseline every tuner in §5 is scaled
// against. It is surprisingly competitive in high-dimensional spaces,
// which is exactly the paper's observation about search-based tuners
// that underexploit.
type RandomSearch struct{}

// Name implements Tuner.
func (RandomSearch) Name() string { return "RandomSearch" }

// Tune implements Tuner.
func (t RandomSearch) Tune(obj Objective, space *conf.Space, budget int, seed uint64) Result {
	return t.Run(NewSession(obj, space, Request{Budget: budget, Seed: seed}))
}

// Run implements SessionTuner by driving the stepper.
func (t RandomSearch) Run(s *Session) Result {
	return Drive(t.Stepper(s.Space(), s.Budget(), s.Seed()), s)
}

// Stepper returns the ask/tell form of random search.
func (RandomSearch) Stepper(space *conf.Space, budget int, seed uint64) Stepper {
	return &randomSearchStepper{
		space: space,
		rng:   sample.NewRNG(seed),
		left:  budget,
	}
}

type randomSearchStepper struct {
	Protocol
	space *conf.Space
	rng   *rand.Rand
	left  int
}

func (st *randomSearchStepper) Done() bool { return st.left <= 0 }

func (st *randomSearchStepper) Propose(n int) []Proposal {
	st.CheckPropose(st.Done())
	if n <= 0 || n > st.left {
		n = st.left
	}
	props := make([]Proposal, n)
	u := make([]float64, st.space.Dim())
	for i := range props {
		for j := range u {
			u[j] = st.rng.Float64()
		}
		props[i] = Proposal{Config: st.space.Decode(u)}
	}
	st.left -= n
	st.Proposed(props)
	return props
}

func (st *randomSearchStepper) Observe(c conf.Config, rec backend.EvalRecord) {
	st.Observed(c)
}

// CanExtend implements Extender: random search only ever stops on
// budget exhaustion, so extra budget is always spendable. Extension
// preserves determinism — each trial consumes the same RNG draws
// whether proposed in one wave or several, so budget b granted as
// b1 + b2 produces the identical configuration sequence.
func (st *randomSearchStepper) CanExtend() bool { return true }

// ExtendBudget implements Extender.
func (st *randomSearchStepper) ExtendBudget(n int) {
	if n > 0 {
		st.left += n
	}
}
