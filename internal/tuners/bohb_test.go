package tuners

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/conf"
	"repro/internal/journal"
	"repro/internal/sparksim"
)

func TestBOHBFindsOnSimulator(t *testing.T) {
	space := conf.SparkSpace()
	ev := sparksim.NewEvaluator(sparksim.PaperCluster(), sparksim.KMeans(200), 4, 480)
	res := BOHB{}.Tune(ev, space, 30, 4)
	if !res.Found {
		t.Fatal("BOHB found nothing on KMeans")
	}
	if res.Evals > 30 {
		t.Fatalf("evals = %d exceeds budget", res.Evals)
	}
	// The proxy rungs keep mean per-evaluation cost well below Random
	// Search, which runs every trial at full fidelity.
	evRS := sparksim.NewEvaluator(sparksim.PaperCluster(), sparksim.KMeans(200), 4, 480)
	rs := RandomSearch{}.Tune(evRS, space, 30, 4)
	perEval := res.SearchCost / float64(res.Evals)
	rsPerEval := rs.SearchCost / float64(rs.Evals)
	if perEval >= rsPerEval {
		t.Errorf("BOHB per-eval cost %v should be below RS %v (proxy savings)", perEval, rsPerEval)
	}
}

func TestBOHBDeterministic(t *testing.T) {
	run := func() Result {
		ev := sparksim.NewEvaluator(sparksim.PaperCluster(), sparksim.KMeans(150), 4, 480)
		return BOHB{}.Tune(ev, conf.SparkSpace(), 20, 9)
	}
	a, b := run(), run()
	if a.BestSeconds != b.BestSeconds || a.SearchCost != b.SearchCost {
		t.Error("same seed differs")
	}
}

// TestBOHBWorkersParity: bracket promotion (and therefore the whole
// session) must be bit-identical whether rung waves run sequentially
// or concurrently.
func TestBOHBWorkersParity(t *testing.T) {
	run := func(workers int) Result {
		ev := sparksim.NewEvaluator(sparksim.PaperCluster(), sparksim.PageRank(40), 4, 480)
		return BOHB{Workers: workers}.Tune(ev, conf.SparkSpace(), 18, 7)
	}
	seq, par := run(1), run(4)
	if seq.BestSeconds != par.BestSeconds || seq.SearchCost != par.SearchCost {
		t.Fatalf("workers=1 best/cost %v/%v, workers=4 %v/%v",
			seq.BestSeconds, seq.SearchCost, par.BestSeconds, par.SearchCost)
	}
	if len(seq.Trace) != len(par.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(seq.Trace), len(par.Trace))
	}
	for i := range seq.Trace {
		if seq.Trace[i] != par.Trace[i] {
			t.Fatalf("trace[%d] = %v (workers=1) vs %v (workers=4)", i, seq.Trace[i], par.Trace[i])
		}
	}
}

// cancellingSpecObjective cancels the session's context after n
// spec-driven evaluations; it overrides EvaluateSpec so the counting
// survives the promoted-method routing.
type cancellingSpecObjective struct {
	*sparksim.Evaluator
	cancel context.CancelFunc
	left   int
}

func (c *cancellingSpecObjective) EvaluateSpec(cfg conf.Config, spec sparksim.EvalSpec) sparksim.EvalRecord {
	rec := c.Evaluator.EvaluateSpec(cfg, spec)
	c.left--
	if c.left <= 0 {
		c.cancel()
	}
	return rec
}

// TestBOHBKillResumeMidBracket: a session killed mid-bracket must
// resume from its journal bit-identically — replaying the proxy-rung
// records at their journaled fidelities and finishing the bracket
// live with exactly the evaluations the uninterrupted run performed.
func TestBOHBKillResumeMidBracket(t *testing.T) {
	space := conf.SparkSpace()
	req := func(jn *journal.Journal, ctx context.Context) Request {
		return Request{Budget: 16, Seed: 11, Journal: jn, Ctx: ctx}
	}
	newEval := func() *sparksim.Evaluator {
		return sparksim.NewEvaluator(sparksim.PaperCluster(), sparksim.KMeans(150), 4, 480)
	}
	meta := journal.Meta{Seed: 11, Budget: 16, Tuner: "BOHB"}

	// Uninterrupted baseline.
	full := BOHB{}.Run(NewSession(newEval(), space, req(nil, nil)))
	if !full.Found {
		t.Fatal("baseline found nothing")
	}

	// Interrupted run: cancelled after 5 evaluations — mid first rung
	// of the first bracket (9 proxy trials at the cheapest fidelity).
	path := filepath.Join(t.TempDir(), "bohb.jnl")
	jn, err := journal.Open(path, meta, journal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	obj := &cancellingSpecObjective{Evaluator: newEval(), cancel: cancel, left: 5}
	killed := BOHB{}.Run(NewSession(obj, space, req(jn, ctx)))
	jn.Close()
	if !killed.Cancelled {
		t.Fatal("interrupted session not marked cancelled")
	}
	if killed.Evals >= full.Evals {
		t.Fatalf("interrupted session ran %d evals, baseline %d — not killed mid-bracket", killed.Evals, full.Evals)
	}

	// Resume: the journaled prefix replays (with its fidelities), the
	// rest runs live, and the result matches the uninterrupted run.
	jn2, err := journal.Open(path, meta, journal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if jn2.ReplayPending() == 0 {
		t.Fatal("no journaled records to replay")
	}
	res := BOHB{}.Run(NewSession(newEval(), space, req(jn2, nil)))
	if reason := jn2.Diverged(); reason != "" {
		t.Fatalf("resume diverged: %s", reason)
	}
	jn2.Close()
	if res.BestSeconds != full.BestSeconds || res.SearchCost != full.SearchCost || res.Evals != full.Evals {
		t.Fatalf("resumed best/cost/evals %v/%v/%d, want %v/%v/%d",
			res.BestSeconds, res.SearchCost, res.Evals, full.BestSeconds, full.SearchCost, full.Evals)
	}
	if len(res.Trace) != len(full.Trace) {
		t.Fatalf("trace length %d, want %d", len(res.Trace), len(full.Trace))
	}
	for i := range full.Trace {
		if res.Trace[i] != full.Trace[i] {
			t.Fatalf("trace[%d] = %v, want %v", i, res.Trace[i], full.Trace[i])
		}
	}
}

// TestBOHBProxyNeverTakesIncumbent: proxy completions measure a
// reduced workload; the session incumbent must ignore them.
func TestBOHBProxyNeverTakesIncumbent(t *testing.T) {
	tr := newTracker()
	c := conf.Config{}
	tr.observe(c, sparksim.EvalRecord{
		Seconds: 3, Completed: true,
		Fidelity: sparksim.Fidelity{InputScale: 0.3},
	})
	if tr.found {
		t.Fatal("proxy observation took the incumbent")
	}
	tr.observe(c, sparksim.EvalRecord{Seconds: 120, Completed: true})
	if !tr.found || tr.bestSec != 120 {
		t.Fatalf("full-fidelity observation not incumbent: found=%v best=%v", tr.found, tr.bestSec)
	}
}

// TestBOHBStageAxis: under AxisStage the rung proposals carry
// stage-fraction fidelities (input scale untouched), the session still
// finds an incumbent, and the proxy savings survive — on an iterative
// workload stage truncation is the axis that actually cheapens runs.
func TestBOHBStageAxis(t *testing.T) {
	b := BOHB{Axis: AxisStage}
	st := b.Stepper(conf.SparkSpace(), 30, 4).(*bohbStepper)
	for r, want := range []sparksim.Fidelity{
		{StageFrac: 1.0 / 9}, {StageFrac: 1.0 / 3}, {},
	} {
		if got := st.rungFidelity(r); got != want {
			t.Fatalf("rung %d fidelity = %+v, want %+v", r, got, want)
		}
	}

	ev := sparksim.NewEvaluator(sparksim.PaperCluster(), sparksim.KMeans(200), 4, 480)
	res := b.Tune(ev, conf.SparkSpace(), 30, 4)
	if !res.Found {
		t.Fatal("stage-axis BOHB found nothing on KMeans")
	}
	proxies := 0
	for _, p := range res.Proxy {
		if p {
			proxies++
		}
	}
	if proxies == 0 || proxies == res.Evals {
		t.Fatalf("want a mix of proxy and full trials, got %d/%d", proxies, res.Evals)
	}
}

func TestValidFidelityLadder(t *testing.T) {
	for _, tc := range []struct {
		l  []float64
		ok bool
	}{
		{[]float64{1.0 / 9, 1.0 / 3, 1}, true},
		{[]float64{1}, true},
		{nil, false},
		{[]float64{0.5}, false},          // must end at 1
		{[]float64{0.5, 0.25, 1}, false}, // not ascending
		{[]float64{0, 0.5, 1}, false},    // zero rung
		{[]float64{-0.1, 1}, false},      // negative rung
		{[]float64{0.5, 0.5, 1}, false},  // not strictly ascending
		{make([]float64, 20), false},     // too long
	} {
		err := ValidFidelityLadder(tc.l)
		if (err == nil) != tc.ok {
			t.Errorf("ValidFidelityLadder(%v) = %v, want ok=%v", tc.l, err, tc.ok)
		}
	}
}

// TestBOHBDegenerateSettings: nonsense settings fall back to sane
// defaults without panics.
func TestBOHBDegenerateSettings(t *testing.T) {
	obj := newSynth(smoothObjective)
	res := BOHB{Eta: 1, Ladder: []float64{0.7, 0.2}}.Tune(obj, smallSpace(t), 20, 3)
	if res.Evals == 0 {
		t.Error("no evaluations performed")
	}
}
