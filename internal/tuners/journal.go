package tuners

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/conf"
	"repro/internal/journal"
)

// StreamRestorer is the optional resume capability (see
// backend.StreamRestorer): backend evaluators, *FuncObjective and
// *trace.Recorder implement it; objectives that do not still resume
// correctly for the replayed prefix, but later live evaluations draw
// from the start of their streams.
type StreamRestorer = backend.StreamRestorer

// Counts converts the ledger to the journal's dependency-free mirror
// (journal deliberately does not import tuners).
func (s FailureStats) Counts() journal.FailureCounts {
	return journal.FailureCounts{
		Failed:         s.Failed,
		Transient:      s.Transient,
		Retries:        s.Retries,
		OOM:            s.OOM,
		Infeasible:     s.Infeasible,
		BackoffSeconds: s.BackoffSeconds,
		Skipped:        s.Skipped,
	}
}

// statsFrom is the inverse of Counts, used during replay to restore
// the ledger to its post-trial state.
func statsFrom(c journal.FailureCounts) FailureStats {
	return FailureStats{
		Failed:         c.Failed,
		Transient:      c.Transient,
		Retries:        c.Retries,
		OOM:            c.OOM,
		Infeasible:     c.Infeasible,
		BackoffSeconds: c.BackoffSeconds,
		Skipped:        c.Skipped,
	}
}

// sameConfig reports whether a journaled config map matches a live
// config exactly. JSON round-trips float64 bit-exactly (Go marshals
// the shortest representation that parses back to the same value), so
// exact comparison is the correct test, not an epsilon.
func sameConfig(m map[string]float64, c conf.Config) bool {
	cm := c.ToMap()
	if len(m) != len(cm) {
		return false
	}
	for k, v := range cm {
		jv, ok := m[k]
		if !ok || jv != v {
			return false
		}
	}
	return true
}

// replayNext substitutes the next journaled record for an evaluation
// of c at fidelity fid: it restores the objective's stream position
// and the failure ledger to their post-trial values and records the
// observation in the trace/incumbent, without touching the objective.
// It returns ok=false when no replay is pending — or when the journal
// diverges from the requested evaluation (wrong phase, config or
// fidelity), in which case the stale tail has been truncated and the
// caller evaluates live.
func (s *Session) replayNext(c conf.Config, fid backend.Fidelity) (backend.EvalRecord, bool) {
	j := s.req.Journal
	if j == nil {
		return backend.EvalRecord{}, false
	}
	e, ok := j.PeekReplay()
	if !ok {
		return backend.EvalRecord{}, false
	}
	if e.Phase != j.Phase() {
		j.AbortReplay(fmt.Sprintf("trial %d: journal phase %q, session phase %q", e.Trial, e.Phase, j.Phase()))
		return backend.EvalRecord{}, false
	}
	if !sameConfig(e.Config, c) {
		j.AbortReplay(fmt.Sprintf("trial %d: journaled config does not match the session's", e.Trial))
		return backend.EvalRecord{}, false
	}
	jfid := backend.Fidelity{InputScale: e.FidelityInput, StageFrac: e.FidelityStage}
	if jfid != fid && !(jfid.Full() && fid.Full()) {
		// A journaled proxy observation must never replay as a
		// full-fidelity one (or vice versa, or at a different rung): a
		// ladder change between runs invalidates the stale tail.
		j.AbortReplay(fmt.Sprintf("trial %d: journaled fidelity %s, session fidelity %s", e.Trial, jfid, fid))
		return backend.EvalRecord{}, false
	}
	j.NextReplay()
	if sr, ok := s.obj.(StreamRestorer); ok {
		sr.RestoreStream(e.ObjEvals, e.ObjCost)
	}
	rec := backend.EvalRecord{
		Config:     c,
		Seconds:    e.Seconds,
		Raw:        e.Raw,
		Completed:  e.Completed,
		OOM:        e.OOM,
		Infeasible: e.Infeasible,
		Transient:  e.Transient,
		Fidelity:   jfid,
	}
	s.stats = statsFrom(e.Stats)
	s.tr.observe(c, rec)
	return rec, true
}

// journalAppend commits one live evaluation to the journal (no-op
// without one). objEvals/objCost are the objective's counters after
// the trial — the stream position a resume must restore. Append
// failures are sticky in the journal but deliberately non-fatal here:
// a full disk degrades durability, it does not kill the campaign.
func (s *Session) journalAppend(c conf.Config, rec backend.EvalRecord, objEvals int, objCost float64) {
	j := s.req.Journal
	if j == nil || rec.Skipped {
		return
	}
	_ = j.Append(journal.EvalEntry{
		Config:        c.ToMap(),
		Seconds:       rec.Seconds,
		Raw:           rec.Raw,
		Completed:     rec.Completed,
		OOM:           rec.OOM,
		Infeasible:    rec.Infeasible,
		Transient:     rec.Transient,
		FidelityInput: rec.Fidelity.InputScale,
		FidelityStage: rec.Fidelity.StageFrac,
		ObjEvals:      objEvals,
		ObjCost:       objCost,
		Stats:         s.stats.Counts(),
	})
}
