package tuners

import (
	"math"
	"sort"

	"repro/internal/conf"
	"repro/internal/sample"
)

// Gunther reimplements the genetic search of "Gunther: Search-Based
// Auto-Tuning of MapReduce" (Liao et al., Euro-Par'13) on the Spark
// configuration space: a randomly initialized population evolved with
// aggressive tournament selection, uniform crossover and Gaussian
// mutation, with elitism.
//
// Following §6 of the ROBOTune paper, Gunther's random initialization
// grows with dimensionality ("the number of random configurations for
// initialization increases by two for each new parameter") and
// consumes a significant share of the budget — the root of its
// RS-like exploration profile in Figures 3-5.
type Gunther struct {
	// PopSize is the evolving population size (default 16).
	PopSize int
	// MutationRate is the per-gene mutation probability (default 0.25,
	// the "aggressive mutation" of the original).
	MutationRate float64
	// MutationSigma is the Gaussian mutation step (default 0.15).
	MutationSigma float64
	// Elite is the number of best individuals copied unchanged
	// (default 2).
	Elite int
}

// Name implements Tuner.
func (Gunther) Name() string { return "Gunther" }

type individual struct {
	genes   []float64
	fitness float64 // objective seconds; lower is better
	valid   bool
}

// Tune implements Tuner.
func (g Gunther) Tune(obj Objective, space *conf.Space, budget int, seed uint64) Result {
	return g.Run(NewSession(obj, space, Request{Budget: budget, Seed: seed}))
}

// Run implements SessionTuner.
func (g Gunther) Run(s *Session) Result {
	space, budget := s.Space(), s.Budget()
	if g.PopSize <= 0 {
		g.PopSize = 16
	}
	if g.MutationRate <= 0 {
		g.MutationRate = 0.25
	}
	if g.MutationSigma <= 0 {
		g.MutationSigma = 0.15
	}
	if g.Elite <= 0 {
		g.Elite = 2
	}
	rng := sample.NewRNG(s.Seed())
	d := space.Dim()

	evaluate := func(genes []float64) individual {
		c := space.Decode(genes)
		rec := s.Evaluate(c)
		fit := rec.Seconds
		return individual{genes: genes, fitness: fit, valid: rec.Completed}
	}

	// Random initialization: 2 configurations per tuned parameter
	// (faithful to the original; on the 44-parameter Spark space with
	// the paper's budget of 100 this consumes 88 evaluations — §5.2's
	// "significant portion of the allocated budget"), leaving at
	// least one generation of evolution when the budget allows.
	initN := 2 * d
	if maxInit := budget - g.PopSize; initN > maxInit {
		initN = maxInit
	}
	if initN < g.PopSize {
		initN = g.PopSize
	}
	if initN > budget {
		initN = budget
	}
	pool := make([]individual, 0, initN)
	for i := 0; i < initN && !s.Done(); i++ {
		genes := make([]float64, d)
		for j := range genes {
			genes[j] = rng.Float64()
		}
		pool = append(pool, evaluate(genes))
	}
	used := len(pool)

	// Aggressive selection: the best PopSize of the random pool seed
	// the population.
	sort.SliceStable(pool, func(a, b int) bool { return pool[a].fitness < pool[b].fitness })
	pop := pool
	if len(pop) > g.PopSize {
		pop = pop[:g.PopSize]
	}
	if len(pop) == 0 { // cancelled before anything ran
		return s.Result()
	}

	tournament := func() individual {
		best := pop[rng.IntN(len(pop))]
		for k := 0; k < 2; k++ {
			c := pop[rng.IntN(len(pop))]
			if c.fitness < best.fitness {
				best = c
			}
		}
		return best
	}

	for used < budget && !s.Done() {
		next := make([]individual, 0, g.PopSize)
		// Elitism.
		for i := 0; i < g.Elite && i < len(pop); i++ {
			next = append(next, pop[i])
		}
		for len(next) < g.PopSize && used < budget && !s.Done() {
			p1, p2 := tournament(), tournament()
			child := make([]float64, d)
			for j := 0; j < d; j++ {
				if rng.Float64() < 0.5 {
					child[j] = p1.genes[j]
				} else {
					child[j] = p2.genes[j]
				}
				if rng.Float64() < g.MutationRate {
					child[j] += rng.NormFloat64() * g.MutationSigma
					child[j] = math.Min(math.Nextafter(1, 0), math.Max(0, child[j]))
				}
			}
			next = append(next, evaluate(child))
			used++
		}
		sort.SliceStable(next, func(a, b int) bool { return next[a].fitness < next[b].fitness })
		pop = next
	}
	return s.Result()
}
