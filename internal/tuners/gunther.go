package tuners

import (
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/backend"
	"repro/internal/conf"
	"repro/internal/sample"
)

// Gunther reimplements the genetic search of "Gunther: Search-Based
// Auto-Tuning of MapReduce" (Liao et al., Euro-Par'13) on the Spark
// configuration space: a randomly initialized population evolved with
// aggressive tournament selection, uniform crossover and Gaussian
// mutation, with elitism.
//
// Following §6 of the ROBOTune paper, Gunther's random initialization
// grows with dimensionality ("the number of random configurations for
// initialization increases by two for each new parameter") and
// consumes a significant share of the budget — the root of its
// RS-like exploration profile in Figures 3-5.
type Gunther struct {
	// PopSize is the evolving population size (default 16).
	PopSize int
	// MutationRate is the per-gene mutation probability (default 0.25,
	// the "aggressive mutation" of the original).
	MutationRate float64
	// MutationSigma is the Gaussian mutation step (default 0.15).
	MutationSigma float64
	// Elite is the number of best individuals copied unchanged
	// (default 2).
	Elite int
}

// Name implements Tuner.
func (Gunther) Name() string { return "Gunther" }

type individual struct {
	genes   []float64
	fitness float64 // objective seconds; lower is better
	valid   bool
}

// Tune implements Tuner.
func (g Gunther) Tune(obj Objective, space *conf.Space, budget int, seed uint64) Result {
	return g.Run(NewSession(obj, space, Request{Budget: budget, Seed: seed}))
}

// Run implements SessionTuner by driving the stepper.
func (g Gunther) Run(s *Session) Result {
	return Drive(g.Stepper(s.Space(), s.Budget(), s.Seed()), s)
}

// Stepper returns the ask/tell form of Gunther. Each generation
// (and the random initialization pool) is proposed as one wave; the
// next generation's parents are drawn only after the whole wave has
// been observed. All random draws for a wave happen before any of its
// evaluations, so the rng sequence is identical to the blocking loop.
func (g Gunther) Stepper(space *conf.Space, budget int, seed uint64) Stepper {
	if g.PopSize <= 0 {
		g.PopSize = 16
	}
	if g.MutationRate <= 0 {
		g.MutationRate = 0.25
	}
	if g.MutationSigma <= 0 {
		g.MutationSigma = 0.15
	}
	if g.Elite <= 0 {
		g.Elite = 2
	}
	st := &guntherStepper{
		cfg:    g,
		space:  space,
		rng:    sample.NewRNG(seed),
		d:      space.Dim(),
		budget: budget,
		slot:   make(map[int]int),
	}
	st.startInit()
	return st
}

type guntherStepper struct {
	Protocol
	cfg    Gunther
	space  *conf.Space
	rng    *rand.Rand
	d      int
	budget int
	used   int
	done   bool

	initPhase bool
	pop       []individual
	elites    []individual

	// Current wave state.
	queue   [][]float64  // genes pending evaluation, in creation order
	results []individual // slot per queue index, filled at observe
	next    int          // next queue index to propose
	seen    int          // observations received this wave
	slot    map[int]int  // proposal sequence → queue index
}

func (st *guntherStepper) Done() bool { return st.done }

// startInit builds the random initialization pool: 2 configurations
// per tuned parameter (faithful to the original; on the 44-parameter
// Spark space with the paper's budget of 100 this consumes 88
// evaluations — §5.2's "significant portion of the allocated
// budget"), leaving at least one generation of evolution when the
// budget allows.
func (st *guntherStepper) startInit() {
	st.initPhase = true
	initN := 2 * st.d
	if maxInit := st.budget - st.cfg.PopSize; initN > maxInit {
		initN = maxInit
	}
	if initN < st.cfg.PopSize {
		initN = st.cfg.PopSize
	}
	if initN > st.budget {
		initN = st.budget
	}
	if initN <= 0 {
		st.done = true
		return
	}
	queue := make([][]float64, initN)
	for i := range queue {
		genes := make([]float64, st.d)
		for j := range genes {
			genes[j] = st.rng.Float64()
		}
		queue[i] = genes
	}
	st.used = initN
	st.startWave(queue)
}

func (st *guntherStepper) startWave(queue [][]float64) {
	st.queue = queue
	st.results = make([]individual, len(queue))
	st.next = 0
	st.seen = 0
}

func (st *guntherStepper) tournament() individual {
	best := st.pop[st.rng.IntN(len(st.pop))]
	for k := 0; k < 2; k++ {
		c := st.pop[st.rng.IntN(len(st.pop))]
		if c.fitness < best.fitness {
			best = c
		}
	}
	return best
}

// startGeneration draws the whole next generation — elites copied
// unchanged plus tournament-selected, crossed-over and mutated
// children — and reserves its budget up front.
func (st *guntherStepper) startGeneration() {
	st.initPhase = false
	st.elites = st.elites[:0]
	for i := 0; i < st.cfg.Elite && i < len(st.pop); i++ {
		st.elites = append(st.elites, st.pop[i])
	}
	k := st.cfg.PopSize - len(st.elites)
	if left := st.budget - st.used; k > left {
		k = left
	}
	if k <= 0 {
		st.done = true
		return
	}
	queue := make([][]float64, k)
	for i := range queue {
		p1, p2 := st.tournament(), st.tournament()
		child := make([]float64, st.d)
		for j := 0; j < st.d; j++ {
			if st.rng.Float64() < 0.5 {
				child[j] = p1.genes[j]
			} else {
				child[j] = p2.genes[j]
			}
			if st.rng.Float64() < st.cfg.MutationRate {
				child[j] += st.rng.NormFloat64() * st.cfg.MutationSigma
				child[j] = math.Min(math.Nextafter(1, 0), math.Max(0, child[j]))
			}
		}
		queue[i] = child
	}
	st.used += k
	st.startWave(queue)
}

func (st *guntherStepper) Propose(n int) []Proposal {
	st.CheckPropose(st.done)
	if st.next >= len(st.queue) {
		return nil // waiting for the wave's outstanding observations
	}
	k := len(st.queue) - st.next
	if n > 0 && n < k {
		k = n
	}
	props := make([]Proposal, k)
	for i := 0; i < k; i++ {
		props[i] = Proposal{Config: st.space.Decode(st.queue[st.next+i])}
	}
	first := st.Proposed(props)
	for i := 0; i < k; i++ {
		st.slot[first+i] = st.next + i
	}
	st.next += k
	return props
}

func (st *guntherStepper) Observe(c conf.Config, rec backend.EvalRecord) {
	seq := st.Observed(c)
	idx := st.slot[seq]
	delete(st.slot, seq)
	fit := rec.Seconds
	if rec.Skipped {
		fit = math.Inf(1)
	}
	st.results[idx] = individual{genes: st.queue[idx], fitness: fit, valid: rec.Completed}
	st.seen++
	if st.seen == len(st.queue) && st.next >= len(st.queue) {
		st.endWave()
	}
}

func (st *guntherStepper) endWave() {
	if st.initPhase {
		// Aggressive selection: the best PopSize of the random pool
		// seed the population.
		pool := append([]individual(nil), st.results...)
		sort.SliceStable(pool, func(a, b int) bool { return pool[a].fitness < pool[b].fitness })
		if len(pool) > st.cfg.PopSize {
			pool = pool[:st.cfg.PopSize]
		}
		st.pop = pool
	} else {
		next := make([]individual, 0, st.cfg.PopSize)
		next = append(next, st.elites...)
		next = append(next, st.results...)
		sort.SliceStable(next, func(a, b int) bool { return next[a].fitness < next[b].fitness })
		st.pop = next
	}
	if st.used >= st.budget || len(st.pop) == 0 {
		st.done = true
		return
	}
	st.startGeneration()
}
