package tuners

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/backend"
	"repro/internal/conf"
	"repro/internal/journal"
)

// Request describes one tuning session: the evaluation budget and
// seed that every tuner needs, plus the robustness envelope —
// cancellation, per-run deadlines and a retry policy for transient
// failures. The zero value of every optional field reproduces the
// legacy Tune(obj, space, budget, seed) behavior exactly.
type Request struct {
	// Ctx cancels the session: tuners stop starting evaluations once
	// it is done and return the best result so far. nil means no
	// cancellation (context.Background).
	Ctx context.Context
	// Budget is the maximum number of evaluations (trials — a retried
	// trial still counts once against the budget, though the extra
	// attempts do show up in Result.Evals and the search cost).
	Budget int
	// Seed drives the tuner's own randomness.
	Seed uint64
	// Deadline is a per-evaluation limit in simulated seconds, layered
	// under any tuner-chosen cap (the median-multiple guard): each run
	// is stopped at min(cap, Deadline). <= 0 means no extra deadline.
	Deadline float64
	// Retry bounds re-evaluation of transient failures.
	Retry RetryPolicy
	// Journal, when set, makes the session durable: every completed
	// evaluation is committed to the write-ahead journal before the
	// tuner acts on it, and a journal recovered from a previous run
	// replays its records in place of re-evaluating them — the
	// bit-identical resume path. nil disables journaling.
	Journal *journal.Journal
	// Grants, when set, lets the session draw extra evaluations from a
	// campaign-level budget pool once its tuner has exhausted the base
	// Budget (the adaptive-budget half of campaign durability). Only
	// tuners implementing Extender can absorb a grant; the driver asks
	// the source at most once per exhaustion and stops when it returns
	// 0. nil disables extension.
	Grants GrantSource
}

// GrantSource is the campaign's adaptive budget pool as seen by one
// session: evaluations unspent by early-stopped or failed sibling
// sessions, granted to sessions that can still use them.
type GrantSource interface {
	// Grant requests extra budget for a session whose tuner has run
	// dry; trials is the session's trial count at the request — the
	// sequence point a durable campaign journals so a resumed run
	// applies the same grant at the same place. It returns the number
	// of extra evaluations granted (0 = none; the session finishes).
	Grant(trials int) int
}

// RetryPolicy bounds how transient evaluation failures (lost
// heartbeats, fetch storms — EvalRecord.Transient) are retried with
// exponential backoff. The zero value never retries.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts per trial (0 = none).
	MaxRetries int
	// BackoffBase is the first backoff in seconds (default 5).
	BackoffBase float64
	// BackoffFactor multiplies the backoff per attempt (default 2).
	BackoffFactor float64
	// Sleep, when set, is called with each backoff so real systems can
	// wait out the incident; the simulator leaves it nil and only
	// accounts the backoff in FailureStats.BackoffSeconds. The session
	// runs Sleep on its own goroutine and abandons the wait when its
	// context is cancelled, so a SIGINT unwinds immediately instead of
	// waiting out the backoff.
	Sleep func(d time.Duration)
}

func (p RetryPolicy) base() float64 {
	if p.BackoffBase <= 0 {
		return 5
	}
	return p.BackoffBase
}

func (p RetryPolicy) factor() float64 {
	if p.BackoffFactor <= 1 {
		return 2
	}
	return p.BackoffFactor
}

// FailureStats aggregates what went wrong during a session — the
// graceful-degradation ledger reported in Result.Failures.
type FailureStats struct {
	// Failed counts trials whose final attempt did not complete
	// (OOM, infeasible, truncated or transient past the retry budget).
	Failed int
	// Transient counts transient failures observed, including ones a
	// retry subsequently cured.
	Transient int
	// Retries counts re-attempts performed under the RetryPolicy.
	Retries int
	// OOM and Infeasible break Failed down by cause.
	OOM        int
	Infeasible int
	// BackoffSeconds is the simulated time spent backing off.
	BackoffSeconds float64
	// Skipped counts batch entries never evaluated because the
	// session's context was cancelled.
	Skipped int
}

// BatchEvaluator is the optional concurrent-evaluation capability
// with cancellation (see backend.BatchEvaluator; *sparksim.Evaluator,
// *trace.Recorder and the pool's batch gate implement it).
type BatchEvaluator = backend.BatchEvaluator

// Session is the context a tuner runs in: it owns the objective, the
// search space and the request, funnels every evaluation through the
// retry/deadline/cancellation machinery, and accumulates the
// incumbent, trace and failure statistics that become the Result.
// Tuners call Eval instead of touching the Objective directly.
//
// A Session is single-tuner, single-use state; it is not safe for
// concurrent Eval calls (the batch path parallelizes internally).
type Session struct {
	obj   Objective
	space *conf.Space
	req   Request
	tr    *tracker
	stats FailureStats
}

// NewSession prepares a session. A nil ctx in the request is replaced
// with context.Background.
func NewSession(obj Objective, space *conf.Space, req Request) *Session {
	if req.Ctx == nil {
		req.Ctx = context.Background()
	}
	return &Session{obj: obj, space: space, req: req, tr: newTracker()}
}

// Objective returns the underlying objective.
func (s *Session) Objective() Objective { return s.obj }

// Space returns the search space.
func (s *Session) Space() *conf.Space { return s.space }

// Ctx returns the session's context (never nil).
func (s *Session) Ctx() context.Context { return s.req.Ctx }

// Budget returns the trial budget.
func (s *Session) Budget() int { return s.req.Budget }

// Seed returns the tuner seed.
func (s *Session) Seed() uint64 { return s.req.Seed }

// Deadline returns the per-evaluation deadline (0 = none).
func (s *Session) Deadline() float64 { return s.req.Deadline }

// Done reports whether the session's context has been cancelled;
// tuners check it before starting each evaluation and unwind with the
// best-so-far when it trips.
func (s *Session) Done() bool {
	select {
	case <-s.req.Ctx.Done():
		return true
	default:
		return false
	}
}

// effectiveCap layers the request deadline under a tuner-chosen cap.
func (s *Session) effectiveCap(cap float64) float64 {
	if d := s.req.Deadline; d > 0 && (cap <= 0 || d < cap) {
		return d
	}
	return cap
}

// rawEval runs one attempt through the objective's single evaluation
// entry point; the fidelity has already been vetted (and degraded to
// full for objectives without the capability) by effectiveFidelity.
func (s *Session) rawEval(c conf.Config, cap float64, fid backend.Fidelity) backend.EvalRecord {
	return s.obj.EvaluateSpec(c, backend.EvalSpec{Cap: cap, Fidelity: fid})
}

// effectiveFidelity returns the fidelity the session will actually
// execute: the requested one when the objective can derive proxy runs
// (backend.FidelitySupporter), full fidelity otherwise — an objective
// without the capability can only run the full workload, and the
// record and journal stay honest about what ran. A full-fidelity
// request canonicalizes to the zero value so explicit
// {InputScale: 1} and the zero Fidelity journal and replay
// identically.
func (s *Session) effectiveFidelity(f backend.Fidelity) backend.Fidelity {
	if f.Full() {
		return backend.Fidelity{}
	}
	if fs, ok := s.obj.(backend.FidelitySupporter); !ok || !fs.SupportsFidelity() {
		return backend.Fidelity{}
	}
	return f
}

// note tallies the final observation of a trial.
func (s *Session) note(rec backend.EvalRecord) {
	if rec.Completed {
		return
	}
	s.stats.Failed++
	if rec.OOM {
		s.stats.OOM++
	}
	if rec.Infeasible {
		s.stats.Infeasible++
	}
}

// Eval is the session's unified evaluation entry point: every trial
// — single or batch, capped or not, full or proxy fidelity — runs
// under one backend.EvalSpec. A single configuration takes the
// sequential path (replay substitution, deadline layering, transient
// retries); multiple configurations take the batch path, which
// evaluates concurrently on spec.Workers goroutines when the
// objective supports it and degrades to the sequential loop when
// per-trial retry/deadline handling is requested.
func (s *Session) Eval(spec backend.EvalSpec, cfgs ...conf.Config) []backend.EvalRecord {
	switch len(cfgs) {
	case 0:
		return nil
	case 1:
		return []backend.EvalRecord{s.evalOne(cfgs[0], spec)}
	}
	return s.evalMany(cfgs, spec)
}

// evalOne runs one trial under the spec. Transient failures are
// retried with exponential backoff up to the policy's bound — the
// retried attempts inflate the objective's evaluation and cost
// counters (a real cluster charged for them too) but the trial enters
// the trace once, with its final outcome.
func (s *Session) evalOne(c conf.Config, spec backend.EvalSpec) backend.EvalRecord {
	fid := s.effectiveFidelity(spec.Fidelity)
	if rec, ok := s.replayNext(c, fid); ok {
		return rec
	}
	cap := s.effectiveCap(spec.Cap)
	rec := s.rawEval(c, cap, fid)
	if rec.Transient {
		s.stats.Transient++
	}
	backoff := s.req.Retry.base()
	aborted := false // retry loop cut short by cancellation
	for attempt := 0; rec.Transient && attempt < s.req.Retry.MaxRetries; attempt++ {
		if s.Done() {
			aborted = true
			break
		}
		s.stats.Retries++
		s.stats.BackoffSeconds += backoff
		if !s.sleepBackoff(backoff) {
			aborted = true
			break
		}
		backoff *= s.req.Retry.factor()
		rec = s.rawEval(c, cap, fid)
		if rec.Transient {
			s.stats.Transient++
		}
	}
	s.note(rec)
	s.tr.observe(c, rec)
	if !aborted {
		// A trial whose retry loop was abandoned by cancellation is not
		// committed: an uninterrupted run would have kept retrying, so
		// its journaled outcome could differ. Resume re-runs the whole
		// trial from the restored stream position instead, reproducing
		// the uninterrupted retry sequence bit-identically.
		s.journalAppend(c, rec, s.obj.Evals(), s.obj.SearchCost())
	}
	return rec
}

// sleepBackoff waits out one retry backoff via the policy's Sleep,
// returning false when the session's context is cancelled first — the
// cancellation must unwind immediately, not wait out the incident.
// The simulator leaves Sleep nil, so no wall-clock time passes and
// the answer only reflects cancellation.
func (s *Session) sleepBackoff(seconds float64) bool {
	if s.req.Retry.Sleep == nil {
		return !s.Done()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.req.Retry.Sleep(time.Duration(seconds * float64(time.Second)))
	}()
	select {
	case <-done:
		return !s.Done()
	case <-s.req.Ctx.Done():
		// The Sleep goroutine finishes on its own; the session just
		// stops waiting for it.
		return false
	}
}

// evalMany is the batch half of Eval: replay substitution for the
// leading entries, then the live remainder under one spec.
func (s *Session) evalMany(cfgs []conf.Config, spec backend.EvalSpec) []backend.EvalRecord {
	if len(cfgs) == 0 {
		return nil
	}
	// Replay journaled records for the leading entries of the batch; a
	// partially journaled batch (the process died mid-batch) replays
	// its prefix and evaluates the rest live, which lands the live runs
	// on exactly the evaluation indices the original batch reserved.
	if j := s.req.Journal; j != nil && j.Replaying() {
		fid := s.effectiveFidelity(spec.Fidelity)
		recs := make([]backend.EvalRecord, 0, len(cfgs))
		i := 0
		for ; i < len(cfgs); i++ {
			rec, ok := s.replayNext(cfgs[i], fid)
			if !ok {
				break
			}
			recs = append(recs, rec)
		}
		if i < len(cfgs) {
			recs = append(recs, s.evaluateBatchLive(cfgs[i:], spec)...)
		}
		return recs
	}
	return s.evaluateBatchLive(cfgs, spec)
}

// evaluateBatchLive is the live half of the batch path: the
// concurrent fast path when the objective supports it and no
// per-trial retry/deadline handling is requested, a sequential loop
// otherwise.
func (s *Session) evaluateBatchLive(cfgs []conf.Config, spec backend.EvalSpec) []backend.EvalRecord {
	be, isBatch := s.obj.(backend.BatchEvaluator)
	if !isBatch || s.req.Deadline > 0 || s.req.Retry.MaxRetries > 0 {
		recs := make([]backend.EvalRecord, 0, len(cfgs))
		for _, c := range cfgs {
			if s.Done() {
				recs = append(recs, backend.EvalRecord{Config: c, Skipped: true})
				s.stats.Skipped++
				continue
			}
			recs = append(recs, s.evalOne(c, backend.EvalSpec{Cap: spec.Cap, Fidelity: spec.Fidelity}))
		}
		return recs
	}
	// Capture the stream position before dispatch: entry i runs at
	// evaluation index base+i (batch evaluators reserve the whole index
	// block up front, and cancellation only ever skips a suffix), and
	// each evaluated entry charges min(Raw, Seconds) — for completed
	// runs Seconds is already the capped duration, for failed ones it
	// is the global cap, so this reproduces the evaluator's commit
	// arithmetic bit-for-bit.
	base := s.obj.Evals()
	cost := s.obj.SearchCost()
	recs := be.EvaluateSpecCtx(s.req.Ctx, cfgs, backend.EvalSpec{
		Cap:      spec.Cap,
		Fidelity: s.effectiveFidelity(spec.Fidelity),
		Workers:  spec.Workers,
	})
	for i, rec := range recs {
		if rec.Skipped {
			s.stats.Skipped++
			continue
		}
		if rec.Transient {
			s.stats.Transient++
		}
		s.note(rec)
		s.tr.observe(cfgs[i], rec)
		cost += math.Min(rec.Raw, rec.Seconds)
		s.journalAppend(cfgs[i], rec, base+i+1, cost)
	}
	return recs
}

// Observe records an evaluation performed outside the session's
// Evaluate helpers (tuners that must drive the objective directly)
// so it still reaches the trace, incumbent and failure statistics.
func (s *Session) Observe(c conf.Config, rec backend.EvalRecord) {
	if rec.Skipped {
		s.stats.Skipped++
		return
	}
	if rec.Transient {
		s.stats.Transient++
	}
	s.note(rec)
	s.tr.observe(c, rec)
}

// FastForward consumes n pending replay records at once without
// re-deriving them — the selection fast-skip path, used when a
// snapshot already carries the selection outcome so resume need not
// re-train the forest. Each record's observation enters the
// trace/incumbent, and the objective stream position and failure
// ledger are restored from the last record. It fails without
// consuming anything when fewer than n records are pending.
func (s *Session) FastForward(n int) ([]journal.EvalEntry, error) {
	j := s.req.Journal
	if j == nil {
		return nil, fmt.Errorf("tuners: FastForward without a journal")
	}
	entries, err := j.SkipReplay(n)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		c, err := s.space.FromRaw(e.Config)
		if err != nil {
			continue
		}
		s.tr.observe(c, backend.EvalRecord{
			Config:     c,
			Seconds:    e.Seconds,
			Raw:        e.Raw,
			Completed:  e.Completed,
			OOM:        e.OOM,
			Infeasible: e.Infeasible,
			Transient:  e.Transient,
			Fidelity:   backend.Fidelity{InputScale: e.FidelityInput, StageFrac: e.FidelityStage},
		})
	}
	if len(entries) > 0 {
		last := entries[len(entries)-1]
		if sr, ok := s.obj.(StreamRestorer); ok {
			sr.RestoreStream(last.ObjEvals, last.ObjCost)
		}
		s.stats = statsFrom(last.Stats)
	}
	return entries, nil
}

// Journal returns the session's journal, or nil.
func (s *Session) Journal() *journal.Journal { return s.req.Journal }

// SetPhase stamps the campaign phase on subsequently journaled
// evaluations (and validates it during replay). No-op without a
// journal.
func (s *Session) SetPhase(phase string) {
	if j := s.req.Journal; j != nil {
		j.SetPhase(phase)
	}
}

// Trials returns the number of observations recorded in the session's
// trace so far (replayed and live).
func (s *Session) Trials() int { return len(s.tr.trace) }

// tryExtend asks the request's grant source for extra budget on
// behalf of an exhausted stepper. It returns true when a grant was
// applied (the driver loop continues proposing). Steppers that cannot
// absorb more budget — early-stopped, finished for good, or simply
// not Extenders — are never charged a grant, so a declined draw stays
// in the pool for a sibling session.
func (s *Session) tryExtend(st Stepper) bool {
	if s.req.Grants == nil || s.Done() {
		return false
	}
	ex, ok := st.(Extender)
	if !ok || !ex.CanExtend() {
		return false
	}
	n := s.req.Grants.Grant(s.Trials())
	if n <= 0 {
		return false
	}
	ex.ExtendBudget(n)
	s.req.Budget += n
	return true
}

// Best returns the incumbent so far.
func (s *Session) Best() (conf.Config, float64, bool) {
	return s.tr.best, s.tr.bestSec, s.tr.found
}

// Stats returns the failure ledger accumulated so far.
func (s *Session) Stats() FailureStats { return s.stats }

// Cancelled reports whether the session's context was cancelled.
func (s *Session) Cancelled() bool { return s.req.Ctx.Err() != nil }

// Result assembles the session outcome: the incumbent (Found=false
// only when nothing completed), the trace, the objective's evaluation
// and cost counters, the failure ledger and the cancellation flag.
func (s *Session) Result() Result {
	r := s.tr.result(s.obj)
	r.Failures = s.stats
	r.Cancelled = s.Cancelled()
	return r
}

// SessionTuner is the context-aware tuner surface: Run executes under
// a Session (cancellation, deadlines, retries, failure accounting).
// Every tuner in this package and core.ROBOTune implement it; the
// embedded legacy Tuner interface keeps positional Tune available as
// a thin wrapper for existing callers.
type SessionTuner interface {
	Tuner
	Run(s *Session) Result
}
