package tuners

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/conf"
	"repro/internal/sparksim"
)

func testRecord(c conf.Config, sec float64) sparksim.EvalRecord {
	return sparksim.EvalRecord{Config: c, Seconds: sec, Raw: sec, Completed: true}
}

// mustPanic runs f and fails the test unless it panics.
func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	f()
}

// steppersUnderTest builds one small instance of every baseline
// stepper for protocol tests.
func steppersUnderTest(space *conf.Space) map[string]Stepper {
	return map[string]Stepper{
		"RandomSearch":      RandomSearch{}.Stepper(space, 8, 3),
		"BestConfig":        tunerStepper(BestConfig{RoundSize: 4}, space, 8, 3),
		"Gunther":           tunerStepper(Gunther{PopSize: 4, Elite: 1}, space, 10, 3),
		"SuccessiveHalving": SuccessiveHalving{}.Stepper(space, 8, 3),
		"CMAES":             CMAES{Lambda: 4}.Stepper(space, 8, 3),
	}
}

// tunerStepper is a tiny adapter: BestConfig and Gunther expose their
// steppers with the same signature, this keeps the table literal tidy.
func tunerStepper(t interface {
	Stepper(space *conf.Space, budget int, seed uint64) Stepper
}, space *conf.Space, budget int, seed uint64) Stepper {
	return t.Stepper(space, budget, seed)
}

func TestObserveWithoutProposePanics(t *testing.T) {
	space := conf.SparkSpace()
	for name, st := range steppersUnderTest(space) {
		c := space.Default()
		mustPanic(t, name+": Observe without Propose", func() {
			st.Observe(c, testRecord(c, 100))
		})
	}
}

func TestDoubleObservePanics(t *testing.T) {
	space := conf.SparkSpace()
	for name, st := range steppersUnderTest(space) {
		props := st.Propose(1)
		if len(props) == 0 {
			t.Fatalf("%s: no initial proposal", name)
		}
		c := props[0].Config
		st.Observe(c, testRecord(c, 100))
		mustPanic(t, name+": double Observe", func() {
			st.Observe(c, testRecord(c, 100))
		})
	}
}

func TestProposeAfterDonePanics(t *testing.T) {
	space := conf.SparkSpace()
	for name, st := range steppersUnderTest(space) {
		// Drain the stepper to completion with plausible outcomes.
		for steps := 0; !st.Done(); steps++ {
			if steps > 10000 {
				t.Fatalf("%s: stepper never finished", name)
			}
			props := st.Propose(0)
			if len(props) == 0 {
				break
			}
			for _, p := range props {
				st.Observe(p.Config, testRecord(p.Config, 100))
			}
		}
		if !st.Done() {
			continue // stepper ended by empty Propose; Done-panic not reachable
		}
		mustPanic(t, name+": Propose after Done", func() {
			st.Propose(1)
		})
	}
}

// TestStepperInterleavings fuzzes the driver schedule: every stepper
// must produce a complete run under randomized chunk sizes and
// randomized out-of-order observation of in-flight trials, exercising
// the any-order Observe contract the batch driver relies on.
func TestStepperInterleavings(t *testing.T) {
	space := conf.SparkSpace()
	for round := 0; round < 20; round++ {
		rng := rand.New(rand.NewPCG(uint64(round), 99))
		for name, st := range steppersUnderTest(space) {
			evals := 0
			var inflight []Proposal
			for steps := 0; !st.Done(); steps++ {
				if steps > 10000 {
					t.Fatalf("%s round %d: stepper never finished", name, round)
				}
				props := st.Propose(rng.IntN(5)) // 0 = "everything you have"
				inflight = append(inflight, props...)
				if len(inflight) == 0 {
					break
				}
				// Observe a random subset, in random order.
				k := 1 + rng.IntN(len(inflight))
				for j := 0; j < k; j++ {
					pick := rng.IntN(len(inflight))
					p := inflight[pick]
					inflight = append(inflight[:pick], inflight[pick+1:]...)
					sec := 50 + 400*rng.Float64()
					rec := testRecord(p.Config, sec)
					if rng.IntN(10) == 0 {
						// Occasionally a failed (killed) run.
						rec.Completed = false
						rec.Seconds = math.Max(p.Cap, 480)
					}
					st.Observe(p.Config, rec)
					evals++
				}
			}
			if evals == 0 {
				t.Errorf("%s round %d: no evaluations at all", name, round)
			}
		}
	}
}

// TestResultCompleted checks the Completed parallel slice: one entry
// per trace point, marking which evaluations finished.
func TestResultCompleted(t *testing.T) {
	space := conf.SparkSpace()
	calls := 0
	obj := &FuncObjective{Fn: func(c conf.Config) (float64, bool) {
		calls++
		return 100, calls%3 != 0 // every third run fails
	}}
	res := RandomSearch{}.Tune(obj, space, 9, 5)
	if len(res.Completed) != len(res.Trace) {
		t.Fatalf("Completed length %d != Trace length %d", len(res.Completed), len(res.Trace))
	}
	nFail := 0
	for _, ok := range res.Completed {
		if !ok {
			nFail++
		}
	}
	if nFail != 3 {
		t.Errorf("completed flags record %d failures, want 3", nFail)
	}
}
