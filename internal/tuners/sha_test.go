package tuners

import (
	"testing"

	"repro/internal/conf"
	"repro/internal/sparksim"
)

func TestSHARespectssBudgetAndFinds(t *testing.T) {
	obj := newSynth(smoothObjective)
	res := SuccessiveHalving{}.Tune(obj, smallSpace(t), 60, 1)
	if res.Evals > 60 {
		t.Fatalf("evals = %d exceeds budget", res.Evals)
	}
	if !res.Found {
		t.Fatal("SHA found nothing")
	}
	if res.BestSeconds > 75 {
		t.Errorf("SHA best %v too far from optimum ~50", res.BestSeconds)
	}
}

func TestSHAOnSimulatorUsesCheapEarlyRounds(t *testing.T) {
	space := conf.SparkSpace()
	ev := sparksim.NewEvaluator(sparksim.PaperCluster(), sparksim.KMeans(200), 4, 480)
	res := SuccessiveHalving{}.Tune(ev, space, 60, 4)
	if !res.Found {
		t.Fatal("SHA found nothing on KMeans")
	}
	// The tight early caps keep mean per-evaluation cost well under
	// the 480 s worst case.
	perEval := res.SearchCost / float64(res.Evals)
	if perEval > 300 {
		t.Errorf("mean cost per eval %v, expected early-kill savings", perEval)
	}
	// Compare with Random Search under the same budget: SHA should be
	// cheaper per evaluation (RS runs everything to the cap).
	evRS := sparksim.NewEvaluator(sparksim.PaperCluster(), sparksim.KMeans(200), 4, 480)
	rs := RandomSearch{}.Tune(evRS, space, 60, 4)
	if rs.Evals > 0 && perEval >= rs.SearchCost/float64(rs.Evals) {
		t.Errorf("SHA per-eval cost %v should be below RS %v",
			perEval, rs.SearchCost/float64(rs.Evals))
	}
}

func TestSHADeterministic(t *testing.T) {
	a := SuccessiveHalving{}.Tune(newSynth(smoothObjective), smallSpace(t), 40, 9)
	b := SuccessiveHalving{}.Tune(newSynth(smoothObjective), smallSpace(t), 40, 9)
	if a.BestSeconds != b.BestSeconds || a.SearchCost != b.SearchCost {
		t.Error("same seed differs")
	}
}

func TestSHAHandlesFailures(t *testing.T) {
	obj := newSynth(func(conf.Config) (float64, bool) { return 1000, false })
	res := SuccessiveHalving{}.Tune(obj, smallSpace(t), 30, 2)
	if res.Found {
		t.Error("all-failing objective reported success")
	}
	if res.Evals > 30 {
		t.Errorf("evals = %d", res.Evals)
	}
}

func TestSHADefaults(t *testing.T) {
	// Degenerate settings fall back to sane defaults without panics.
	obj := newSynth(smoothObjective)
	res := SuccessiveHalving{Eta: 1, MinCap: -5, MaxCap: -1}.Tune(obj, smallSpace(t), 20, 3)
	if res.Evals == 0 {
		t.Error("no evaluations performed")
	}
}

func TestCMAESTunerBudgetAndQuality(t *testing.T) {
	obj := newSynth(smoothObjective)
	res := CMAES{}.Tune(obj, smallSpace(t), 80, 5)
	if res.Evals > 80 {
		t.Fatalf("evals = %d exceeds budget", res.Evals)
	}
	if !res.Found {
		t.Fatal("CMAES found nothing")
	}
	if res.BestSeconds > 70 {
		t.Errorf("CMAES best %v too far from optimum ~50", res.BestSeconds)
	}
}

func TestCMAESTunerOnSimulator(t *testing.T) {
	ev := sparksim.NewEvaluator(sparksim.PaperCluster(), sparksim.TeraSort(20), 6, 480)
	res := CMAES{}.Tune(ev, conf.SparkSpace(), 50, 6)
	if !res.Found {
		t.Fatal("CMAES found nothing on TeraSort")
	}
	if res.BestSeconds > 400 {
		t.Errorf("CMAES best %v", res.BestSeconds)
	}
}

func TestCMAESTunerDeterministic(t *testing.T) {
	a := CMAES{}.Tune(newSynth(smoothObjective), smallSpace(t), 40, 8)
	b := CMAES{}.Tune(newSynth(smoothObjective), smallSpace(t), 40, 8)
	if a.BestSeconds != b.BestSeconds {
		t.Error("same seed differs")
	}
}
