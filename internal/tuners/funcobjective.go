package tuners

import (
	"math"
	"sync"

	"repro/internal/backend"
	"repro/internal/conf"
)

// FuncObjective adapts a plain Go function to the Objective interface,
// so any measurable system — not just the Spark simulator — can be
// tuned (§4: the framework is modular; only the configuration encoder
// and objective are system-specific). The function returns the
// measured cost in seconds and whether the run succeeded.
//
// FuncObjective is safe for concurrent use.
type FuncObjective struct {
	// Fn measures one configuration.
	Fn func(c conf.Config) (seconds float64, ok bool)
	// FnOutcome, when set, takes precedence over Fn and additionally
	// reports whether a failure was transient (worth retrying under a
	// Session's RetryPolicy).
	FnOutcome func(c conf.Config) (seconds float64, ok, transient bool)
	// Cap is the per-evaluation limit (the guard and failed runs
	// report this value); <= 0 means 480, the paper's default.
	Cap float64
	// Workload and Dataset, when set, key ROBOTune's memoization.
	Workload, Dataset string

	mu    sync.Mutex
	evals int
	cost  float64
}

// EvaluateSpec implements Objective. The spec's cap supports
// ROBOTune's bad-configuration guard: runs whose measured time
// exceeds the cap are charged only the cap and valued at the global
// limit. The fidelity axis is ignored — a plain function has no proxy
// form, and FuncObjective does not claim backend.FidelitySupporter,
// so sessions degrade proxy requests to full fidelity before they
// reach it.
func (f *FuncObjective) EvaluateSpec(c conf.Config, spec backend.EvalSpec) backend.EvalRecord {
	limit := f.capSeconds()
	cap := spec.Cap
	if cap <= 0 || cap > limit {
		cap = limit
	}
	var (
		sec       float64
		ok        bool
		transient bool
	)
	if f.FnOutcome != nil {
		sec, ok, transient = f.FnOutcome(c)
	} else {
		sec, ok = f.Fn(c)
	}
	consumed := math.Min(sec, cap)

	f.mu.Lock()
	f.evals++
	f.cost += consumed
	f.mu.Unlock()

	rec := backend.EvalRecord{Config: c, Raw: sec, Transient: transient && !ok}
	if ok && sec <= cap {
		rec.Completed = true
		rec.Seconds = consumed
	} else {
		rec.Seconds = limit
	}
	return rec
}

func (f *FuncObjective) capSeconds() float64 {
	if f.Cap <= 0 {
		return 480
	}
	return f.Cap
}

// SearchCost implements Objective.
func (f *FuncObjective) SearchCost() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cost
}

// Evals implements Objective.
func (f *FuncObjective) Evals() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.evals
}

// RestoreStream implements StreamRestorer: a resumed durable session
// moves the counters to the journaled position so evaluation and cost
// accounting continue where the interrupted run left off.
func (f *FuncObjective) RestoreStream(evals int, cost float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.evals = evals
	f.cost = cost
}

// WorkloadName keys ROBOTune's caches when Workload is set.
func (f *FuncObjective) WorkloadName() string { return f.Workload }

// DatasetName completes the memoization identity.
func (f *FuncObjective) DatasetName() string { return f.Dataset }
