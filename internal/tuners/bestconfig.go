package tuners

import (
	"math"
	"math/rand/v2"

	"repro/internal/backend"
	"repro/internal/conf"
	"repro/internal/sample"
)

// BestConfig reimplements the search strategy of "BestConfig: Tapping
// the Performance Potential of Systems via Automatic Configuration
// Tuning" (Zhu et al., SoCC'17): rounds of Divide-and-Diverge
// Sampling (DDS) followed by Recursive Bound-and-Search (RBS) around
// the incumbent.
//
// DDS divides each parameter range into k intervals and draws samples
// so that every interval of every parameter is visited once per round
// — a Latin-Hypercube-style stratification. RBS then bounds a
// sub-space around the best sample (the span between its neighboring
// sample values on each axis) and recurses inside it. When a round
// fails to improve, the search diverges back to the full space.
//
// The reference implementation suggests a sampling-set size of 100;
// with the paper's budget of 100 evaluations that leaves a single DDS
// round and no RBS recursion, which is why §5.2 finds BestConfig
// performing close to Random Search. RoundSize is configurable so
// larger budgets exercise the recursive phase.
type BestConfig struct {
	// RoundSize is the DDS sampling-set size per round (default 100,
	// the reference default).
	RoundSize int
}

// Name implements Tuner.
func (BestConfig) Name() string { return "BestConfig" }

// Tune implements Tuner.
func (b BestConfig) Tune(obj Objective, space *conf.Space, budget int, seed uint64) Result {
	return b.Run(NewSession(obj, space, Request{Budget: budget, Seed: seed}))
}

// Run implements SessionTuner by driving the stepper.
func (b BestConfig) Run(s *Session) Result {
	return Drive(b.Stepper(s.Space(), s.Budget(), s.Seed()), s)
}

// Stepper returns the ask/tell form of BestConfig. Each DDS round is
// proposed as a batch; the RBS bounds update runs once the whole
// round has been observed, so a new round is never proposed while an
// earlier one is outstanding.
func (b BestConfig) Stepper(space *conf.Space, budget int, seed uint64) Stepper {
	roundSize := b.RoundSize
	if roundSize <= 0 {
		roundSize = 100
	}
	d := space.Dim()
	st := &bestConfigStepper{
		space:     space,
		rng:       sample.NewRNG(seed),
		roundSize: roundSize,
		d:         d,
		remaining: budget,
		lo:        make([]float64, d),
		hi:        make([]float64, d),
		prevBest:  math.Inf(1),
		slot:      make(map[int]int),
	}
	st.resetBounds()
	return st
}

type bestConfigStepper struct {
	Protocol
	space     *conf.Space
	rng       *rand.Rand
	roundSize int
	d         int
	remaining int
	lo, hi    []float64
	prevBest  float64

	// Current round state.
	points       [][]float64 // mapped unit points, index-aligned with the design
	next         int         // next point index to propose
	seen         int         // observations received this round
	roundBest    []float64
	roundBestSec float64
	slot         map[int]int // proposal sequence → round point index
}

func (st *bestConfigStepper) resetBounds() {
	for j := 0; j < st.d; j++ {
		st.lo[j], st.hi[j] = 0, 1
	}
}

func (st *bestConfigStepper) Done() bool {
	return st.remaining <= 0 && st.next >= len(st.points)
}

// startRound draws the next DDS design inside the current bounds and
// reserves its budget, mirroring the legacy loop which decremented
// the budget at round start.
func (st *bestConfigStepper) startRound() {
	n := st.roundSize
	if n > st.remaining {
		n = st.remaining
	}
	st.remaining -= n
	design := sample.LHS(n, st.d, st.rng)
	st.points = make([][]float64, n)
	for i, u := range design {
		p := make([]float64, st.d)
		for j := 0; j < st.d; j++ {
			p[j] = st.lo[j] + u[j]*(st.hi[j]-st.lo[j])
		}
		st.points[i] = p
	}
	st.next = 0
	st.seen = 0
	st.roundBest = nil
	st.roundBestSec = math.Inf(1)
}

func (st *bestConfigStepper) Propose(n int) []Proposal {
	st.CheckPropose(st.Done())
	if st.next >= len(st.points) {
		if st.seen < len(st.points) {
			return nil // waiting for the round's outstanding observations
		}
		st.startRound()
	}
	k := len(st.points) - st.next
	if n > 0 && n < k {
		k = n
	}
	props := make([]Proposal, k)
	for i := 0; i < k; i++ {
		props[i] = Proposal{Config: st.space.Decode(st.points[st.next+i])}
	}
	first := st.Proposed(props)
	for i := 0; i < k; i++ {
		st.slot[first+i] = st.next + i
	}
	st.next += k
	return props
}

func (st *bestConfigStepper) Observe(c conf.Config, rec backend.EvalRecord) {
	seq := st.Observed(c)
	idx := st.slot[seq]
	delete(st.slot, seq)
	st.seen++
	if !rec.Skipped && rec.Completed && rec.Seconds < st.roundBestSec {
		st.roundBestSec = rec.Seconds
		st.roundBest = st.points[idx]
	}
	if st.seen == len(st.points) && st.next >= len(st.points) {
		st.endRound()
	}
}

// endRound applies the RBS bounds update (or diverges back to the
// full space) once every point of the round has been observed.
func (st *bestConfigStepper) endRound() {
	if st.roundBest == nil || st.roundBestSec >= st.prevBest {
		// No improvement: diverge back to the full space
		// (bound-and-search restart).
		st.resetBounds()
		return
	}
	st.prevBest = st.roundBestSec

	// RBS: bound the next round between the incumbent's neighboring
	// sample values on each axis.
	for j := 0; j < st.d; j++ {
		nlo, nhi := st.lo[j], st.hi[j]
		for _, p := range st.points {
			if p[j] < st.roundBest[j] && p[j] > nlo {
				nlo = p[j]
			}
			if p[j] > st.roundBest[j] && p[j] < nhi {
				nhi = p[j]
			}
		}
		if nhi-nlo < 1e-6 {
			// Degenerate interval: widen slightly around the best.
			span := (st.hi[j] - st.lo[j]) * 0.05
			nlo = math.Max(0, st.roundBest[j]-span)
			nhi = math.Min(1, st.roundBest[j]+span)
		}
		st.lo[j], st.hi[j] = nlo, nhi
	}
}
