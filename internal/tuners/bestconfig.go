package tuners

import (
	"math"

	"repro/internal/conf"
	"repro/internal/sample"
)

// BestConfig reimplements the search strategy of "BestConfig: Tapping
// the Performance Potential of Systems via Automatic Configuration
// Tuning" (Zhu et al., SoCC'17): rounds of Divide-and-Diverge
// Sampling (DDS) followed by Recursive Bound-and-Search (RBS) around
// the incumbent.
//
// DDS divides each parameter range into k intervals and draws samples
// so that every interval of every parameter is visited once per round
// — a Latin-Hypercube-style stratification. RBS then bounds a
// sub-space around the best sample (the span between its neighboring
// sample values on each axis) and recurses inside it. When a round
// fails to improve, the search diverges back to the full space.
//
// The reference implementation suggests a sampling-set size of 100;
// with the paper's budget of 100 evaluations that leaves a single DDS
// round and no RBS recursion, which is why §5.2 finds BestConfig
// performing close to Random Search. RoundSize is configurable so
// larger budgets exercise the recursive phase.
type BestConfig struct {
	// RoundSize is the DDS sampling-set size per round (default 100,
	// the reference default).
	RoundSize int
}

// Name implements Tuner.
func (BestConfig) Name() string { return "BestConfig" }

// Tune implements Tuner.
func (b BestConfig) Tune(obj Objective, space *conf.Space, budget int, seed uint64) Result {
	return b.Run(NewSession(obj, space, Request{Budget: budget, Seed: seed}))
}

// Run implements SessionTuner.
func (b BestConfig) Run(s *Session) Result {
	space, budget := s.Space(), s.Budget()
	roundSize := b.RoundSize
	if roundSize <= 0 {
		roundSize = 100
	}
	rng := sample.NewRNG(s.Seed())
	d := space.Dim()

	// Current search bounds in the unit cube.
	lo := make([]float64, d)
	hi := make([]float64, d)
	resetBounds := func() {
		for j := 0; j < d; j++ {
			lo[j], hi[j] = 0, 1
		}
	}
	resetBounds()

	remaining := budget
	prevBest := math.Inf(1)
	for remaining > 0 && !s.Done() {
		n := roundSize
		if n > remaining {
			n = remaining
		}
		remaining -= n

		// DDS within the current bounds: stratified like LHS.
		design := sample.LHS(n, d, rng)
		points := make([][]float64, n)
		var roundBest []float64
		roundBestSec := math.Inf(1)
		for i, u := range design {
			if s.Done() {
				break
			}
			p := make([]float64, d)
			for j := 0; j < d; j++ {
				p[j] = lo[j] + u[j]*(hi[j]-lo[j])
			}
			points[i] = p
			c := space.Decode(p)
			rec := s.Evaluate(c)
			if rec.Completed && rec.Seconds < roundBestSec {
				roundBestSec = rec.Seconds
				roundBest = p
			}
		}

		if roundBest == nil || roundBestSec >= prevBest {
			// No improvement: diverge back to the full space
			// (bound-and-search restart).
			resetBounds()
			continue
		}
		prevBest = roundBestSec

		// RBS: bound the next round between the incumbent's
		// neighboring sample values on each axis.
		for j := 0; j < d; j++ {
			nlo, nhi := lo[j], hi[j]
			for _, p := range points {
				if p == nil { // round cut short by cancellation
					continue
				}
				if p[j] < roundBest[j] && p[j] > nlo {
					nlo = p[j]
				}
				if p[j] > roundBest[j] && p[j] < nhi {
					nhi = p[j]
				}
			}
			if nhi-nlo < 1e-6 {
				// Degenerate interval: widen slightly around the best.
				span := (hi[j] - lo[j]) * 0.05
				nlo = math.Max(0, roundBest[j]-span)
				nhi = math.Min(1, roundBest[j]+span)
			}
			lo[j], hi[j] = nlo, nhi
		}
	}
	return s.Result()
}
