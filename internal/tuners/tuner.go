// Package tuners defines the common tuner interface and the three
// comparison baselines evaluated against ROBOTune in §5: Random
// Search, BestConfig (divide-and-diverge sampling with recursive
// bound-and-search, Zhu et al. SoCC'17) and Gunther (a genetic
// algorithm with aggressive selection and mutation, Liao et al.
// Euro-Par'13). All three search the full 44-dimensional space — none
// performs parameter selection — and all respect the same
// per-evaluation stopping guard via the shared Objective.
package tuners

import (
	"math"

	"repro/internal/backend"
	"repro/internal/conf"
)

// Objective is the expensive black box a tuner optimizes — exactly
// the backend-neutral evaluator contract (EvaluateSpec + cost
// counters). Any registered backend's evaluator satisfies it; tests
// substitute synthetic objectives.
type Objective = backend.Evaluator

// Result summarizes a tuning session.
type Result struct {
	// Best is the best completed configuration found.
	Best conf.Config
	// BestSeconds is its observed objective value.
	BestSeconds float64
	// Found is false when no configuration completed within budget.
	Found bool
	// Evals is the number of evaluations consumed.
	Evals int
	// SearchCost is the total simulated seconds spent evaluating.
	SearchCost float64
	// Trace holds the observed objective value of every evaluation in
	// order, for search-speed analysis (Figure 6, Table 2). It
	// includes capped and failed observations — a trial stopped by the
	// guard or deadline contributes its capped duration, an OOM or
	// infeasible run its charged time — so the trace is the session's
	// full spend, not just its successes. Use Completed to tell them
	// apart.
	Trace []float64
	// Completed parallels Trace: Completed[i] is true when the i-th
	// observation finished (its Trace value is a measurement), false
	// when it was capped or failed (its Trace value is a floor).
	Completed []bool
	// Proxy parallels Trace: Proxy[i] is true when the i-th
	// observation ran at reduced fidelity — its seconds measure a
	// scaled-down workload and are not comparable with full-fidelity
	// entries (convergence analysis must skip them). All false for
	// single-fidelity tuners.
	Proxy []bool
	// SelectedParams lists the high-impact parameters tuned, when the
	// tuner performs parameter selection (ROBOTune); nil otherwise.
	SelectedParams []string
	// SelectionEvals and SelectionCost report the one-time parameter
	// selection phase, which §5.3 excludes from search-cost
	// comparisons. Both are zero for tuners without selection and for
	// selection-cache hits. Evals and SearchCost above cover only the
	// tuning phase.
	SelectionEvals int
	SelectionCost  float64
	// Failures is the session's failure/retry ledger.
	Failures FailureStats
	// SurrogateFallbacks counts BO iterations that fell back to a
	// random suggestion because the surrogate could not be fit even at
	// maximum jitter — graceful degradation instead of aborting a
	// paid-for campaign. Zero for tuners without a surrogate.
	SurrogateFallbacks int
	// Cancelled is true when the session's context was cancelled and
	// the result holds the best-so-far at that point.
	Cancelled bool
}

// Tuner finds a good configuration within a budget of evaluations.
type Tuner interface {
	Name() string
	// Tune runs at most budget evaluations of obj over space.
	Tune(obj Objective, space *conf.Space, budget int, seed uint64) Result
}

// tracker accumulates the incumbent across evaluations.
type tracker struct {
	best      conf.Config
	bestSec   float64
	found     bool
	trace     []float64
	completed []bool
	proxy     []bool
}

func newTracker() *tracker { return &tracker{bestSec: math.Inf(1)} }

func (t *tracker) observe(c conf.Config, rec backend.EvalRecord) {
	t.trace = append(t.trace, rec.Seconds)
	t.completed = append(t.completed, rec.Completed)
	t.proxy = append(t.proxy, !rec.Fidelity.Full())
	// Only full-fidelity completions can take the incumbent: a proxy
	// run's seconds measure a reduced workload and are incomparable
	// with — and far smaller than — full-fidelity observations.
	if rec.Completed && rec.Fidelity.Full() && rec.Seconds < t.bestSec {
		t.best = c
		t.bestSec = rec.Seconds
		t.found = true
	}
}

func (t *tracker) result(obj Objective) Result {
	return Result{
		Best:        t.best,
		BestSeconds: t.bestSec,
		Found:       t.found,
		Evals:       obj.Evals(),
		SearchCost:  obj.SearchCost(),
		Trace:       append([]float64(nil), t.trace...),
		Completed:   append([]bool(nil), t.completed...),
		Proxy:       append([]bool(nil), t.proxy...),
	}
}
