package tuners

import (
	"math"
	"sync"
	"testing"

	"repro/internal/backend"
	"repro/internal/conf"
	"repro/internal/sparksim"
)

// synthObjective adapts a plain function to the Objective interface.
type synthObjective struct {
	mu    sync.Mutex
	fn    func(conf.Config) (seconds float64, completed bool)
	cap   float64
	evals int
	cost  float64
}

func newSynth(fn func(conf.Config) (float64, bool)) *synthObjective {
	return &synthObjective{fn: fn, cap: 480}
}

// EvaluateSpec ignores the spec's cap and fidelity: the synthetic cap
// is fixed so tests exercise tuner logic, not cap plumbing.
func (s *synthObjective) EvaluateSpec(c conf.Config, _ backend.EvalSpec) backend.EvalRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evals++
	sec, done := s.fn(c)
	consumed := math.Min(sec, s.cap)
	s.cost += consumed
	rec := backend.EvalRecord{Config: c, Raw: sec, Completed: done && sec <= s.cap}
	if rec.Completed {
		rec.Seconds = consumed
	} else {
		rec.Seconds = s.cap
	}
	return rec
}

func (s *synthObjective) SearchCost() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cost
}

func (s *synthObjective) Evals() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evals
}

// smallSpace is a 4-parameter space with a smooth objective: optimum
// at cores=16, frac=0.6.
func smallSpace(t *testing.T) *conf.Space {
	t.Helper()
	s, err := conf.NewSpace([]conf.Param{
		{Name: "cores", Kind: conf.Int, Min: 1, Max: 32, Default: 4},
		{Name: "frac", Kind: conf.Float, Min: 0.1, Max: 0.9, Default: 0.5},
		{Name: "flag", Kind: conf.Bool, Default: 0},
		{Name: "noise1", Kind: conf.Float, Min: 0, Max: 1, Default: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func smoothObjective(c conf.Config) (float64, bool) {
	cores := float64(c.Int("cores"))
	frac := c.Float("frac")
	sec := 50 + 2*math.Abs(cores-16) + 100*(frac-0.6)*(frac-0.6)
	if !c.Bool("flag") {
		sec += 5
	}
	return sec, true
}

func TestRandomSearchBudgetAndBest(t *testing.T) {
	obj := newSynth(smoothObjective)
	res := RandomSearch{}.Tune(obj, smallSpace(t), 50, 1)
	if res.Evals != 50 || len(res.Trace) != 50 {
		t.Fatalf("evals=%d trace=%d, want 50", res.Evals, len(res.Trace))
	}
	if !res.Found {
		t.Fatal("RS found nothing")
	}
	if res.BestSeconds > 80 {
		t.Errorf("RS best %v implausibly bad for 50 samples", res.BestSeconds)
	}
	if res.SearchCost <= 0 {
		t.Error("search cost not accounted")
	}
	// Best value must match re-evaluating the best config's formula.
	sec, _ := smoothObjective(res.Best)
	if sec != res.BestSeconds {
		t.Errorf("recorded best %v != config's value %v", res.BestSeconds, sec)
	}
}

func TestRandomSearchDeterministic(t *testing.T) {
	a := RandomSearch{}.Tune(newSynth(smoothObjective), smallSpace(t), 30, 7)
	b := RandomSearch{}.Tune(newSynth(smoothObjective), smallSpace(t), 30, 7)
	if a.BestSeconds != b.BestSeconds {
		t.Error("same seed differs")
	}
	c := RandomSearch{}.Tune(newSynth(smoothObjective), smallSpace(t), 30, 8)
	if a.BestSeconds == c.BestSeconds && a.Best.Equal(c.Best) {
		t.Error("different seeds found identical path (suspicious)")
	}
}

func TestBestConfigSingleRoundMatchesPaperObservation(t *testing.T) {
	// With budget == RoundSize there is no recursion: pure DDS.
	obj := newSynth(smoothObjective)
	res := BestConfig{RoundSize: 100}.Tune(obj, smallSpace(t), 100, 2)
	if res.Evals != 100 {
		t.Fatalf("evals = %d", res.Evals)
	}
	if !res.Found {
		t.Fatal("BestConfig found nothing")
	}
}

func TestBestConfigRecursionImproves(t *testing.T) {
	// Multiple small rounds let RBS zoom in; final best should beat
	// the first round's best on a smooth objective.
	obj := newSynth(smoothObjective)
	res := BestConfig{RoundSize: 20}.Tune(obj, smallSpace(t), 100, 3)
	firstRound := math.Inf(1)
	for _, v := range res.Trace[:20] {
		if v < firstRound {
			firstRound = v
		}
	}
	if res.BestSeconds > firstRound {
		t.Errorf("RBS best %v did not improve on round 1 best %v", res.BestSeconds, firstRound)
	}
	if res.BestSeconds > 60 {
		t.Errorf("BestConfig with recursion best = %v, want near optimum ~50", res.BestSeconds)
	}
}

func TestBestConfigDivergesOnNoImprovement(t *testing.T) {
	// A flat objective never improves; the search must still consume
	// the budget without panicking (bounds keep resetting).
	obj := newSynth(func(conf.Config) (float64, bool) { return 100, true })
	res := BestConfig{RoundSize: 10}.Tune(obj, smallSpace(t), 40, 4)
	if res.Evals != 40 {
		t.Fatalf("evals = %d", res.Evals)
	}
}

func TestGuntherBudgetAndImprovement(t *testing.T) {
	obj := newSynth(smoothObjective)
	res := Gunther{}.Tune(obj, smallSpace(t), 100, 5)
	if res.Evals != 100 {
		t.Fatalf("evals = %d, want exactly the budget", res.Evals)
	}
	if !res.Found {
		t.Fatal("Gunther found nothing")
	}
	// Init is 2*dim = 8 (small space); evolution should improve over
	// the random-init best.
	initBest := math.Inf(1)
	for _, v := range res.Trace[:8] {
		if v < initBest {
			initBest = v
		}
	}
	if res.BestSeconds > initBest {
		t.Errorf("GA best %v worse than init best %v", res.BestSeconds, initBest)
	}
}

func TestGuntherInitScalesWithDimensionality(t *testing.T) {
	// On the 44-parameter Spark space, initialization takes 2x44=88
	// evals, capped at 2/3 of budget (66 of 100) — the "significant
	// portion" §5.2 blames for Gunther's exploration-heavy profile.
	obj := newSynth(func(c conf.Config) (float64, bool) { return 100, true })
	res := Gunther{}.Tune(obj, conf.SparkSpace(), 100, 6)
	if res.Evals != 100 {
		t.Fatalf("evals = %d", res.Evals)
	}
}

func TestAllTunersHandleTotalFailure(t *testing.T) {
	obj := newSynth(func(conf.Config) (float64, bool) { return 1000, false })
	for _, tn := range []Tuner{RandomSearch{}, BestConfig{RoundSize: 10}, Gunther{}} {
		res := tn.Tune(obj, smallSpace(t), 20, 7)
		if res.Found {
			t.Errorf("%s: Found=true on all-failing objective", tn.Name())
		}
		if !math.IsInf(res.BestSeconds, 1) {
			t.Errorf("%s: BestSeconds = %v, want +Inf", tn.Name(), res.BestSeconds)
		}
	}
	// Reset between tuners is the caller's job; here total evals
	// accumulated across all three.
	if obj.Evals() != 60 {
		t.Errorf("total evals = %d", obj.Evals())
	}
}

func TestTunersOnRealSimulator(t *testing.T) {
	// Integration: every baseline tunes TeraSort-20GB on the real
	// simulator and finds something comfortably below the cap.
	space := conf.SparkSpace()
	for _, tn := range []Tuner{RandomSearch{}, BestConfig{}, Gunther{}} {
		ev := sparksim.NewEvaluator(sparksim.PaperCluster(), sparksim.TeraSort(20), 42, 480)
		res := tn.Tune(ev, space, 40, 42)
		if !res.Found {
			t.Errorf("%s found no completing config in 40 evals", tn.Name())
			continue
		}
		if res.BestSeconds >= 400 {
			t.Errorf("%s best = %v, want < 400", tn.Name(), res.BestSeconds)
		}
		if res.SearchCost <= 0 || res.Evals != 40 {
			t.Errorf("%s accounting: cost=%v evals=%d", tn.Name(), res.SearchCost, res.Evals)
		}
	}
}

func TestTunerNames(t *testing.T) {
	if (RandomSearch{}).Name() != "RandomSearch" ||
		(BestConfig{}).Name() != "BestConfig" ||
		(Gunther{}).Name() != "Gunther" {
		t.Error("tuner names wrong")
	}
}

func TestFuncObjectiveBasics(t *testing.T) {
	space := smallSpace(t)
	obj := &FuncObjective{
		Fn: func(c conf.Config) (float64, bool) {
			return float64(c.Int("cores")) * 10, true
		},
		Cap:      480,
		Workload: "W",
		Dataset:  "D",
	}
	c := space.Default() // cores=4
	rec := obj.EvaluateSpec(c, backend.EvalSpec{})
	if !rec.Completed || rec.Seconds != 40 || rec.Raw != 40 {
		t.Fatalf("rec = %+v", rec)
	}
	if obj.Evals() != 1 || obj.SearchCost() != 40 {
		t.Errorf("accounting: %d %v", obj.Evals(), obj.SearchCost())
	}
	if obj.WorkloadName() != "W" || obj.DatasetName() != "D" {
		t.Error("identity lost")
	}
}

func TestFuncObjectiveCapAndFailure(t *testing.T) {
	space := smallSpace(t)
	obj := &FuncObjective{
		Fn:  func(c conf.Config) (float64, bool) { return 1000, true },
		Cap: 100,
	}
	rec := obj.EvaluateSpec(space.Default(), backend.EvalSpec{})
	if rec.Completed {
		t.Error("over-cap run should not complete")
	}
	if rec.Seconds != 100 {
		t.Errorf("objective value %v, want cap 100", rec.Seconds)
	}
	if obj.SearchCost() != 100 {
		t.Errorf("cost %v, want capped 100", obj.SearchCost())
	}

	fail := &FuncObjective{Fn: func(c conf.Config) (float64, bool) { return 5, false }}
	rec = fail.EvaluateSpec(space.Default(), backend.EvalSpec{})
	if rec.Completed || rec.Seconds != 480 {
		t.Errorf("failed run rec = %+v", rec)
	}
	if fail.SearchCost() != 5 {
		t.Errorf("failed run cost %v, want consumed 5", fail.SearchCost())
	}
}

func TestFuncObjectiveGuardCap(t *testing.T) {
	obj := &FuncObjective{
		Fn:  func(c conf.Config) (float64, bool) { return 50, true },
		Cap: 480,
	}
	space := smallSpace(t)
	// A guard cap below the measured time truncates the run.
	rec := obj.EvaluateSpec(space.Default(), backend.EvalSpec{Cap: 30})
	if rec.Completed {
		t.Error("guard-truncated run should not complete")
	}
	if obj.SearchCost() != 30 {
		t.Errorf("cost %v, want guard cap 30", obj.SearchCost())
	}
}

func TestFuncObjectiveDrivesAllTuners(t *testing.T) {
	space := smallSpace(t)
	for _, tn := range []Tuner{RandomSearch{}, BestConfig{RoundSize: 10}, Gunther{}} {
		obj := &FuncObjective{Fn: smoothObjective}
		res := tn.Tune(obj, space, 30, 3)
		if !res.Found || res.Evals != 30 {
			t.Errorf("%s via FuncObjective: found=%v evals=%d", tn.Name(), res.Found, res.Evals)
		}
	}
}
