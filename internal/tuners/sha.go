package tuners

import (
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/backend"
	"repro/internal/conf"
	"repro/internal/sample"
)

// SuccessiveHalving is an extension baseline beyond the paper's
// three: Hyperband-style successive halving over the *execution time
// cap* instead of training epochs. A large cohort of LHS
// configurations is evaluated under a tight time cap — runs that
// cannot finish are killed cheaply — and the fastest fraction is
// promoted to a looser cap, repeating until the survivors run under
// the full limit. It exploits the same early-kill machinery as
// ROBOTune's guard, but with a fixed schedule instead of a model.
//
// It requires an Objective that supports EvaluateWithCap (the
// simulator's Evaluator and FuncObjective both do); otherwise every
// evaluation runs under the full cap and the method degrades to
// repeated-evaluation selection.
type SuccessiveHalving struct {
	// Eta is the promotion factor: 1/Eta of each cohort survives and
	// the cap grows by Eta (default 3, Hyperband's usual choice).
	Eta int
	// MinCap is the tightest initial cap in seconds (default 60).
	MinCap float64
	// MaxCap is the final cap (default 480, the paper's limit).
	MaxCap float64
}

// Name implements Tuner.
func (SuccessiveHalving) Name() string { return "SuccessiveHalving" }

// Tune implements Tuner.
func (s SuccessiveHalving) Tune(obj Objective, space *conf.Space, budget int, seed uint64) Result {
	return s.Run(NewSession(obj, space, Request{Budget: budget, Seed: seed}))
}

// Run implements SessionTuner by driving the stepper. The rung caps
// ride on the session's guard capability, so the request deadline
// tightens them further.
func (s SuccessiveHalving) Run(ses *Session) Result {
	return Drive(s.Stepper(ses.Space(), ses.Budget(), ses.Seed()), ses)
}

type shaEntry struct {
	c   conf.Config
	sec float64
}

// Stepper returns the ask/tell form of successive halving. Each rung
// is proposed as one wave (every proposal carrying the rung's cap);
// promotion runs once the whole rung has been observed. Leftover
// budget after the final rung is spent on jittered copies of the best
// survivor, proposed on demand.
func (s SuccessiveHalving) Stepper(space *conf.Space, budget int, seed uint64) Stepper {
	if s.Eta < 2 {
		s.Eta = 3
	}
	if s.MinCap <= 0 {
		s.MinCap = 60
	}
	if s.MaxCap <= s.MinCap {
		s.MaxCap = 480
	}
	rng := sample.NewRNG(seed)

	// Rounds: caps MinCap, MinCap*Eta, ... up to MaxCap.
	rounds := 1
	for cap := s.MinCap; cap < s.MaxCap; cap *= float64(s.Eta) {
		rounds++
	}
	// Cohort sizing: n + n/eta + n/eta² + ... <= budget.
	denom := 0.0
	f := 1.0
	for r := 0; r < rounds; r++ {
		denom += f
		f /= float64(s.Eta)
	}
	cohort := int(float64(budget) / denom)
	if cohort < 1 {
		cohort = 1
	}

	st := &shaStepper{
		cfg:       s,
		space:     space,
		rng:       rng,
		rounds:    rounds,
		remaining: budget,
		cap:       s.MinCap,
		slot:      make(map[int]int),
	}
	for _, u := range sample.LHS(cohort, space.Dim(), rng) {
		st.survivors = append(st.survivors, shaEntry{c: space.Decode(u)})
	}
	st.startRound()
	return st
}

type shaStepper struct {
	Protocol
	cfg       SuccessiveHalving
	space     *conf.Space
	rng       *rand.Rand
	rounds    int
	r         int
	remaining int
	cap       float64
	survivors []shaEntry
	jitter    bool

	// Current rung state.
	queue    []shaEntry // entries pending evaluation this rung
	roundCap float64
	next     int
	seen     int
	slot     map[int]int // proposal sequence → rung entry index
}

func (st *shaStepper) Done() bool { return st.jitter && st.remaining <= 0 }

// startRound reserves the rung's budget and queues its survivors, or
// switches to the jitter phase when the rung schedule is exhausted.
func (st *shaStepper) startRound() {
	if st.r >= st.rounds || st.remaining <= 0 || len(st.survivors) == 0 {
		st.jitter = true
		if len(st.survivors) == 0 {
			st.remaining = 0
		}
		return
	}
	st.roundCap = st.cap
	if st.r == st.rounds-1 {
		st.roundCap = st.cfg.MaxCap
	}
	k := len(st.survivors)
	if k > st.remaining {
		k = st.remaining
	}
	st.remaining -= k
	st.queue = append([]shaEntry(nil), st.survivors[:k]...)
	st.next = 0
	st.seen = 0
}

func (st *shaStepper) Propose(n int) []Proposal {
	st.CheckPropose(st.Done())
	if st.jitter {
		k := st.remaining
		if n > 0 && n < k {
			k = n
		}
		props := make([]Proposal, k)
		for i := 0; i < k; i++ {
			// Jittered copy of the best survivor under the full cap.
			u := st.space.Encode(st.survivors[0].c)
			for j := range u {
				u[j] = clampUnit(u[j] + 0.03*st.rng.NormFloat64())
			}
			props[i] = Proposal{Config: st.space.Decode(u), Cap: st.cfg.MaxCap}
		}
		st.remaining -= k
		st.Proposed(props)
		return props
	}
	if st.next >= len(st.queue) {
		return nil // waiting for the rung's outstanding observations
	}
	k := len(st.queue) - st.next
	if n > 0 && n < k {
		k = n
	}
	props := make([]Proposal, k)
	for i := 0; i < k; i++ {
		props[i] = Proposal{Config: st.queue[st.next+i].c, Cap: st.roundCap}
	}
	first := st.Proposed(props)
	for i := 0; i < k; i++ {
		st.slot[first+i] = st.next + i
	}
	st.next += k
	return props
}

func (st *shaStepper) Observe(c conf.Config, rec backend.EvalRecord) {
	seq := st.Observed(c)
	if st.jitter {
		return // jitter evaluations only feed the session incumbent
	}
	idx := st.slot[seq]
	delete(st.slot, seq)
	// Runs killed by the tight cap carry their consumed time as the
	// ranking key (they are at least that slow).
	sec := rec.Seconds
	if !rec.Completed {
		sec = math.Max(rec.Raw, st.roundCap)
	}
	st.queue[idx].sec = sec
	st.seen++
	if st.seen == len(st.queue) && st.next >= len(st.queue) {
		st.endRound()
	}
}

// endRound promotes the fastest 1/Eta of the rung and loosens the cap.
func (st *shaStepper) endRound() {
	evaluated := append([]shaEntry(nil), st.queue...)
	sort.SliceStable(evaluated, func(a, b int) bool { return evaluated[a].sec < evaluated[b].sec })
	keep := len(evaluated) / st.cfg.Eta
	if keep < 1 {
		keep = 1
	}
	st.survivors = evaluated[:keep]
	st.cap = math.Min(st.cap*float64(st.cfg.Eta), st.cfg.MaxCap)
	st.r++
	st.startRound()
}

func clampUnit(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v >= 1 {
		return math.Nextafter(1, 0)
	}
	return v
}
