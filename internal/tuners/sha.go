package tuners

import (
	"math"
	"sort"

	"repro/internal/conf"
	"repro/internal/sample"
	"repro/internal/sparksim"
)

// SuccessiveHalving is an extension baseline beyond the paper's
// three: Hyperband-style successive halving over the *execution time
// cap* instead of training epochs. A large cohort of LHS
// configurations is evaluated under a tight time cap — runs that
// cannot finish are killed cheaply — and the fastest fraction is
// promoted to a looser cap, repeating until the survivors run under
// the full limit. It exploits the same early-kill machinery as
// ROBOTune's guard, but with a fixed schedule instead of a model.
//
// It requires an Objective that supports EvaluateWithCap (the
// simulator's Evaluator and FuncObjective both do); otherwise every
// evaluation runs under the full cap and the method degrades to
// repeated-evaluation selection.
type SuccessiveHalving struct {
	// Eta is the promotion factor: 1/Eta of each cohort survives and
	// the cap grows by Eta (default 3, Hyperband's usual choice).
	Eta int
	// MinCap is the tightest initial cap in seconds (default 60).
	MinCap float64
	// MaxCap is the final cap (default 480, the paper's limit).
	MaxCap float64
}

// Name implements Tuner.
func (SuccessiveHalving) Name() string { return "SuccessiveHalving" }

// Tune implements Tuner.
func (s SuccessiveHalving) Tune(obj Objective, space *conf.Space, budget int, seed uint64) Result {
	return s.Run(NewSession(obj, space, Request{Budget: budget, Seed: seed}))
}

// Run implements SessionTuner. The rung caps ride on the session's
// guard capability, so the request deadline tightens them further.
func (s SuccessiveHalving) Run(ses *Session) Result {
	space, budget := ses.Space(), ses.Budget()
	if s.Eta < 2 {
		s.Eta = 3
	}
	if s.MinCap <= 0 {
		s.MinCap = 60
	}
	if s.MaxCap <= s.MinCap {
		s.MaxCap = 480
	}
	rng := sample.NewRNG(ses.Seed())

	evalAt := func(c conf.Config, cap float64) sparksim.EvalRecord {
		return ses.EvaluateWithCap(c, cap)
	}

	// Rounds: caps MinCap, MinCap*Eta, ... up to MaxCap.
	rounds := 1
	for cap := s.MinCap; cap < s.MaxCap; cap *= float64(s.Eta) {
		rounds++
	}
	// Cohort sizing: n + n/eta + n/eta² + ... <= budget.
	denom := 0.0
	f := 1.0
	for r := 0; r < rounds; r++ {
		denom += f
		f /= float64(s.Eta)
	}
	cohort := int(float64(budget) / denom)
	if cohort < 1 {
		cohort = 1
	}

	type entry struct {
		c   conf.Config
		sec float64
	}
	var survivors []entry
	for _, u := range sample.LHS(cohort, space.Dim(), rng) {
		survivors = append(survivors, entry{c: space.Decode(u)})
	}

	remaining := budget
	cap := s.MinCap
	for r := 0; r < rounds && remaining > 0 && len(survivors) > 0 && !ses.Done(); r++ {
		if r == rounds-1 {
			cap = s.MaxCap
		}
		evaluated := survivors[:0]
		for _, e := range survivors {
			if remaining <= 0 || ses.Done() {
				break
			}
			remaining--
			rec := evalAt(e.c, cap)
			// Runs killed by the tight cap carry their consumed time
			// as the ranking key (they are at least that slow).
			sec := rec.Seconds
			if !rec.Completed {
				sec = math.Max(rec.Raw, cap)
			}
			evaluated = append(evaluated, entry{c: e.c, sec: sec})
		}
		sort.SliceStable(evaluated, func(a, b int) bool { return evaluated[a].sec < evaluated[b].sec })
		keep := len(evaluated) / s.Eta
		if keep < 1 {
			keep = 1
		}
		survivors = append([]entry(nil), evaluated[:keep]...)
		cap = math.Min(cap*float64(s.Eta), s.MaxCap)
	}

	// Spend any leftover budget re-evaluating the incumbent region:
	// jittered copies of the best survivor.
	for remaining > 0 && len(survivors) > 0 && !ses.Done() {
		remaining--
		u := space.Encode(survivors[0].c)
		for j := range u {
			u[j] = clampUnit(u[j] + 0.03*rng.NormFloat64())
		}
		evalAt(space.Decode(u), s.MaxCap)
	}
	return ses.Result()
}

func clampUnit(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v >= 1 {
		return math.Nextafter(1, 0)
	}
	return v
}
