package memo_test

import (
	"fmt"

	"repro/internal/memo"
)

// The store's two caches mirror Figure 1 of the paper: the parameter
// selection cache keyed by workload family, and the memoization
// buffer of best recent configurations.
func Example() {
	store := memo.NewStore()

	// After a parameter-selection run:
	store.PutSelection("PageRank", []string{
		"spark.executor.cores", "spark.executor.memory",
	})

	// After a tuning session:
	store.AddConfigs("PageRank", []memo.SavedConfig{
		{Values: map[string]float64{"spark.executor.cores": 8}, Seconds: 92, Dataset: "5M pages"},
		{Values: map[string]float64{"spark.executor.cores": 12}, Seconds: 88, Dataset: "5M pages"},
	}, 4)

	// The next session on a different dataset starts warm:
	sel, hit := store.Selection("PageRank")
	fmt.Println("cache hit:", hit, sel)
	for _, c := range store.BestConfigs("PageRank", 4) {
		fmt.Printf("memoized: %.0fs with %v cores\n", c.Seconds, c.Values["spark.executor.cores"])
	}
	// Output:
	// cache hit: true [spark.executor.cores spark.executor.memory]
	// memoized: 88s with 12 cores
	// memoized: 92s with 8 cores
}
