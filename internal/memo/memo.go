// Package memo implements ROBOTune's Memoized Sampling state (§3.2):
// the Parameter Selection Cache, which remembers the high-impact
// parameters chosen for each workload family so repeated workloads
// skip the expensive selection phase; and the Configuration
// Memoization Buffer, which keeps a few of the best configurations
// from prior tuning sessions to seed the BO training set when the
// same workload returns with a different input dataset.
//
// Both structures are keyed by workload family (e.g. "PageRank"), not
// by dataset: the paper observes that high-impact parameters remain
// stable across dataset sizes while optimal values shift, which is
// exactly the split between the two caches.
package memo

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
)

// SavedConfig is one memoized high-performance configuration.
type SavedConfig struct {
	// Values maps parameter names to raw values.
	Values map[string]float64 `json:"values"`
	// Seconds is the execution time observed when it was saved.
	Seconds float64 `json:"seconds"`
	// Dataset records which input the configuration was tuned for.
	Dataset string `json:"dataset"`
}

// Store holds both caches. It is safe for concurrent use and can be
// persisted to JSON.
type Store struct {
	mu         sync.Mutex
	selections map[string][]string
	configs    map[string][]SavedConfig
}

// NewStore returns an empty in-memory store.
func NewStore() *Store {
	return &Store{
		selections: make(map[string][]string),
		configs:    make(map[string][]SavedConfig),
	}
}

// Selection returns the cached high-impact parameter names for the
// workload family — a parameter-selection cache hit (Figure 1).
func (s *Store) Selection(workload string) ([]string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sel, ok := s.selections[workload]
	if !ok {
		return nil, false
	}
	return append([]string(nil), sel...), true
}

// PutSelection stores the selected parameters for a workload family.
func (s *Store) PutSelection(workload string, params []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.selections[workload] = append([]string(nil), params...)
}

// BestConfigs returns up to n memoized configurations for the
// workload family, best (lowest Seconds) first — the Best Recent
// Configs of Figure 1.
func (s *Store) BestConfigs(workload string, n int) []SavedConfig {
	s.mu.Lock()
	defer s.mu.Unlock()
	saved := s.configs[workload]
	out := make([]SavedConfig, 0, n)
	for i := 0; i < len(saved) && i < n; i++ {
		c := saved[i]
		c.Values = cloneValues(c.Values)
		out = append(out, c)
	}
	return out
}

// AddConfigs merges new well-tuned configurations into the buffer for
// the workload family, keeping only the `keep` best by Seconds.
func (s *Store) AddConfigs(workload string, cfgs []SavedConfig, keep int) {
	if keep < 1 {
		keep = 4
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	merged := append(append([]SavedConfig(nil), s.configs[workload]...), cloneConfigs(cfgs)...)
	sort.SliceStable(merged, func(a, b int) bool { return merged[a].Seconds < merged[b].Seconds })
	if len(merged) > keep {
		merged = merged[:keep]
	}
	s.configs[workload] = merged
}

// Workloads returns the workload families present in either cache,
// sorted.
func (s *Store) Workloads() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := make(map[string]bool)
	for w := range s.selections {
		set[w] = true
	}
	for w := range s.configs {
		set[w] = true
	}
	out := make([]string, 0, len(set))
	for w := range set {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// persisted is the JSON schema for Save/Load.
type persisted struct {
	Selections map[string][]string      `json:"selections"`
	Configs    map[string][]SavedConfig `json:"configs"`
}

// MarshalJSON serializes the store's full contents (both caches), so a
// *Store embeds directly in larger durable structures such as session
// journal snapshots.
func (s *Store) MarshalJSON() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return json.Marshal(persisted{Selections: s.selections, Configs: s.configs})
}

// UnmarshalJSON replaces the store's contents with the serialized
// state — the restore half of the journal snapshot path.
func (s *Store) UnmarshalJSON(data []byte) error {
	var p persisted
	if err := json.Unmarshal(data, &p); err != nil {
		return fmt.Errorf("memo: parse snapshot: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.selections = p.Selections
	if s.selections == nil {
		s.selections = make(map[string][]string)
	}
	s.configs = p.Configs
	if s.configs == nil {
		s.configs = make(map[string][]SavedConfig)
	}
	return nil
}

// Save writes the store to a JSON file.
func (s *Store) Save(path string) error {
	s.mu.Lock()
	p := persisted{Selections: s.selections, Configs: s.configs}
	data, err := json.MarshalIndent(p, "", "  ")
	s.mu.Unlock()
	if err != nil {
		return fmt.Errorf("memo: marshal: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("memo: write: %w", err)
	}
	return os.Rename(tmp, path)
}

// Load reads a store previously written by Save. A missing file
// yields an empty store, so first runs need no setup.
func Load(path string) (*Store, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return NewStore(), nil
	}
	if err != nil {
		return nil, fmt.Errorf("memo: read: %w", err)
	}
	var p persisted
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("memo: parse %s: %w", path, err)
	}
	s := NewStore()
	if p.Selections != nil {
		s.selections = p.Selections
	}
	if p.Configs != nil {
		s.configs = p.Configs
	}
	return s, nil
}

func cloneValues(v map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(v))
	for k, x := range v {
		out[k] = x
	}
	return out
}

func cloneConfigs(cs []SavedConfig) []SavedConfig {
	out := make([]SavedConfig, len(cs))
	for i, c := range cs {
		out[i] = SavedConfig{Values: cloneValues(c.Values), Seconds: c.Seconds, Dataset: c.Dataset}
	}
	return out
}
