package memo

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestSelectionCache(t *testing.T) {
	s := NewStore()
	if _, ok := s.Selection("PageRank"); ok {
		t.Fatal("empty store reported a hit")
	}
	s.PutSelection("PageRank", []string{"a", "b"})
	sel, ok := s.Selection("PageRank")
	if !ok || len(sel) != 2 || sel[0] != "a" {
		t.Fatalf("Selection = %v %v", sel, ok)
	}
	// Returned slice is a copy.
	sel[0] = "mutated"
	sel2, _ := s.Selection("PageRank")
	if sel2[0] != "a" {
		t.Error("Selection leaked internal slice")
	}
}

func TestBestConfigsOrderingAndCap(t *testing.T) {
	s := NewStore()
	s.AddConfigs("KMeans", []SavedConfig{
		{Values: map[string]float64{"p": 1}, Seconds: 30, Dataset: "D1"},
		{Values: map[string]float64{"p": 2}, Seconds: 10, Dataset: "D1"},
		{Values: map[string]float64{"p": 3}, Seconds: 20, Dataset: "D1"},
	}, 4)
	got := s.BestConfigs("KMeans", 4)
	if len(got) != 3 || got[0].Seconds != 10 || got[2].Seconds != 30 {
		t.Fatalf("BestConfigs = %+v", got)
	}
	// Merging keeps only the best `keep`.
	s.AddConfigs("KMeans", []SavedConfig{
		{Values: map[string]float64{"p": 4}, Seconds: 5, Dataset: "D2"},
		{Values: map[string]float64{"p": 5}, Seconds: 40, Dataset: "D2"},
	}, 4)
	got = s.BestConfigs("KMeans", 10)
	if len(got) != 4 {
		t.Fatalf("cap not applied: %d entries", len(got))
	}
	if got[0].Seconds != 5 || got[3].Seconds != 30 {
		t.Errorf("merge order wrong: %+v", got)
	}
	// The paper pulls 4 Best Recent Configs; asking for fewer works.
	if n := len(s.BestConfigs("KMeans", 2)); n != 2 {
		t.Errorf("BestConfigs(2) returned %d", n)
	}
}

func TestBestConfigsCopies(t *testing.T) {
	s := NewStore()
	s.AddConfigs("W", []SavedConfig{{Values: map[string]float64{"p": 1}, Seconds: 1}}, 4)
	got := s.BestConfigs("W", 1)
	got[0].Values["p"] = 99
	again := s.BestConfigs("W", 1)
	if again[0].Values["p"] != 1 {
		t.Error("BestConfigs leaked internal map")
	}
}

func TestAddConfigsDefaultKeep(t *testing.T) {
	s := NewStore()
	var cfgs []SavedConfig
	for i := 0; i < 10; i++ {
		cfgs = append(cfgs, SavedConfig{Values: map[string]float64{}, Seconds: float64(i)})
	}
	s.AddConfigs("W", cfgs, 0) // 0 → paper default of 4
	if n := len(s.BestConfigs("W", 100)); n != 4 {
		t.Errorf("default keep = %d, want 4", n)
	}
}

func TestWorkloads(t *testing.T) {
	s := NewStore()
	s.PutSelection("B", []string{"x"})
	s.AddConfigs("A", []SavedConfig{{Seconds: 1}}, 4)
	ws := s.Workloads()
	if len(ws) != 2 || ws[0] != "A" || ws[1] != "B" {
		t.Errorf("Workloads = %v", ws)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "memo.json")
	s := NewStore()
	s.PutSelection("PageRank", []string{"spark.executor.cores", "spark.executor.memory"})
	s.AddConfigs("PageRank", []SavedConfig{
		{Values: map[string]float64{"spark.executor.cores": 8}, Seconds: 77, Dataset: "5M pages"},
	}, 4)
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := loaded.Selection("PageRank")
	if !ok || len(sel) != 2 {
		t.Fatalf("loaded selection = %v %v", sel, ok)
	}
	cfgs := loaded.BestConfigs("PageRank", 4)
	if len(cfgs) != 1 || cfgs[0].Seconds != 77 || cfgs[0].Values["spark.executor.cores"] != 8 {
		t.Fatalf("loaded configs = %+v", cfgs)
	}
}

func TestLoadMissingFileGivesEmptyStore(t *testing.T) {
	s, err := Load(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Workloads()) != 0 {
		t.Error("missing file should load as empty store")
	}
}

func TestLoadRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("corrupt file accepted")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s.PutSelection("W", []string{"p"})
				s.Selection("W")
				s.AddConfigs("W", []SavedConfig{{Values: map[string]float64{"p": float64(j)}, Seconds: float64(j)}}, 4)
				s.BestConfigs("W", 4)
				s.Workloads()
			}
		}(i)
	}
	wg.Wait()
	if got := s.BestConfigs("W", 4); len(got) == 0 || got[0].Seconds != 0 {
		t.Errorf("concurrent merge result: %+v", got)
	}
}
