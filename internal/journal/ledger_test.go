package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testLedgerMeta() LedgerMeta {
	return LedgerMeta{
		Seed:     7,
		Tasks:    []string{"a", "b", "c"},
		Journals: []string{"a.jnl", "b.jnl", ""},
		Config:   "budget=20",
	}
}

func TestLedgerFreshAndResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.lgr")
	meta := testLedgerMeta()
	l, err := OpenLedger(path, meta, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if l.Resumed() {
		t.Fatal("fresh ledger claims resumed")
	}
	if err := l.AppendStart(0); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendStart(1); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendGrant(Grant{Seq: 0, Task: 1, Evals: 5, Trials: 20}); err != nil {
		t.Fatal(err)
	}
	payload, _ := json.Marshal(map[string]int{"trials": 20})
	if err := l.AppendTaskDone(TaskDone{Task: 0, Trials: 20, Surplus: 0, Result: payload}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendTaskFailed(TaskFailed{Task: 2, Reason: "boom", Trials: 3, Surplus: 17}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenLedger(path, meta, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.Resumed() {
		t.Fatal("reopened ledger not resumed")
	}
	if ri := r.Recovery(); ri.Truncated || ri.Records != 6 {
		t.Fatalf("recovery = %+v, want 6 records untruncated", ri)
	}
	if !r.TaskStarted(0) || !r.TaskStarted(1) || r.TaskStarted(2) {
		t.Fatal("start records wrong")
	}
	d, ok := r.TaskDone(0)
	if !ok || d.Trials != 20 || string(d.Result) != string(payload) {
		t.Fatalf("done record = %+v, %v", d, ok)
	}
	if _, ok := r.TaskDone(1); ok {
		t.Fatal("task 1 reported done")
	}
	f, ok := r.TaskFailed(2)
	if !ok || f.Reason != "boom" || f.Surplus != 17 {
		t.Fatalf("failed record = %+v, %v", f, ok)
	}
	gs := r.Grants()
	if len(gs) != 1 || gs[0] != (Grant{Seq: 0, Task: 1, Evals: 5, Trials: 20}) {
		t.Fatalf("grants = %+v", gs)
	}
}

func TestLedgerTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.lgr")
	meta := testLedgerMeta()
	l, err := OpenLedger(path, meta, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendStart(0); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendTaskDone(TaskDone{Task: 0, Trials: 5}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Tear the tail: cut the last record mid-payload.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := OpenLedger(path, meta, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if ri := r.Recovery(); !ri.Truncated || ri.Reason == "" {
		t.Fatalf("recovery = %+v, want truncation", ri)
	}
	if !r.TaskStarted(0) {
		t.Fatal("intact start record lost")
	}
	if _, ok := r.TaskDone(0); ok {
		t.Fatal("torn done record trusted")
	}
	// The truncated ledger must append cleanly where the tear was cut.
	if err := r.AppendTaskDone(TaskDone{Task: 0, Trials: 5}); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r2, err := OpenLedger(path, meta, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if ri := r2.Recovery(); ri.Truncated {
		t.Fatalf("second recovery truncated: %+v", ri)
	}
	if _, ok := r2.TaskDone(0); !ok {
		t.Fatal("re-appended done record lost")
	}
}

func TestLedgerMetaMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.lgr")
	l, err := OpenLedger(path, testLedgerMeta(), SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()

	other := testLedgerMeta()
	other.Tasks = []string{"a", "b", "d"}
	if _, err := OpenLedger(path, other, SyncAlways); err == nil ||
		!strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("task-list mismatch not rejected: %v", err)
	}
	other = testLedgerMeta()
	other.Config = "budget=40"
	if _, err := OpenLedger(path, other, SyncAlways); err == nil {
		t.Fatal("config mismatch not rejected")
	}
}

func TestLedgerBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.lgr")
	if err := os.WriteFile(path, []byte("NOTALGRX plus junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLedger(path, testLedgerMeta(), SyncAlways); err == nil {
		t.Fatal("bad magic not rejected")
	}
}

func TestLedgerOutOfRangeTaskTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.lgr")
	meta := testLedgerMeta()
	l, err := OpenLedger(path, meta, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendStart(0); err != nil {
		t.Fatal(err)
	}
	// A record for a task index outside the manifest: recovery must
	// treat it as corruption, not index into a shorter campaign.
	if err := l.AppendStart(99); err != nil {
		t.Fatal(err)
	}
	l.Close()
	r, err := OpenLedger(path, meta, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if ri := r.Recovery(); !ri.Truncated {
		t.Fatalf("recovery = %+v, want truncation at out-of-range record", ri)
	}
	if !r.TaskStarted(0) {
		t.Fatal("intact record lost")
	}
}
