package journal

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzOpen feeds arbitrary bytes to recovery: whatever is on disk —
// torn tails, flipped bits, hostile lengths, random garbage — Open
// must either return an error or a usable journal, and never panic.
// The seed corpus is a well-formed journal so mutations explore the
// interesting frame-boundary space.
func FuzzOpen(f *testing.F) {
	_, valid := writeJournal(f, 3, true)
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add([]byte{})
	f.Add([]byte("ROBOJNL1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.jnl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := Open(path, testMeta(), SyncNone)
		if err != nil {
			return
		}
		// Whatever survived recovery must be fully traversable and
		// appendable.
		for {
			if _, ok := j.NextReplay(); !ok {
				break
			}
		}
		j.Snapshot()
		j.Done()
		j.SetPhase("bo")
		if err := j.Append(testEntry(0)); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		j.Close()
	})
}

// FuzzSnapshot does the same for the snapshot side file: a corrupt
// snapshot is advisory state and must be silently ignored, never
// trusted partially and never a panic.
func FuzzSnapshot(f *testing.F) {
	path, _ := writeJournal(f, 2, false)
	j, err := Open(path, testMeta(), SyncNone)
	if err != nil {
		f.Fatal(err)
	}
	if err := j.WriteSnapshot(Snapshot{Phase: "bo", Trials: 2, Selection: []string{"a"}}); err != nil {
		f.Fatal(err)
	}
	j.Close()
	snapBytes, err := os.ReadFile(path + ".snap")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(snapBytes)
	f.Add(snapBytes[:len(snapBytes)/2])
	f.Add([]byte("ROBOSNP1"))
	jnlBytes, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		jp := filepath.Join(dir, "run.jnl")
		if err := os.WriteFile(jp, jnlBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(jp+".snap", data, 0o644); err != nil {
			t.Fatal(err)
		}
		jj, err := Open(jp, testMeta(), SyncNone)
		if err != nil {
			t.Fatalf("journal rejected over a corrupt snapshot: %v", err)
		}
		if snap, ok := jj.Snapshot(); ok && snap.Phase != "bo" {
			t.Fatalf("accepted snapshot differs from the written one: %+v", snap)
		}
		jj.Close()
	})
}
