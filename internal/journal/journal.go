// Package journal implements a crash-safe write-ahead journal for
// tuning sessions. Evaluations are the costliest artifact a campaign
// produces — the paper spends its whole budget on a few dozen cluster
// runs — so losing a half-finished session to a process crash, OOM
// kill or node preemption throws away hours of paid-for work.
//
// The journal provides three guarantees:
//
//   - Durability: every completed evaluation (configuration, observed
//     cost, failure/censoring status, objective stream position,
//     failure-ledger state) is appended as a length-prefixed,
//     CRC32-checksummed record, fsynced per the configured policy,
//     before the tuner acts on it.
//   - Atomicity: periodic snapshots (parameter selection, memoization
//     buffer, surrogate observation set, budget spent) are written via
//     temp-file + rename, so a torn write can never corrupt the
//     snapshot — readers see the old snapshot or the new one, never a
//     mix.
//   - Recoverability: opening an existing journal replays its records.
//     A torn tail record (the process died mid-append) is truncated,
//     losing at most the in-flight evaluation and never a committed
//     one. Recovery never panics on corrupt input.
//
// Resume is replay-based: the tuner re-executes its deterministic
// decision path, and the session substitutes journaled records for the
// first k evaluations instead of re-running them. Because every
// random-number stream in the tuner is derived from the seed (PR 1's
// SplitMix64 splitting) and the objective's noise streams are indexed
// by the evaluation counter — whose position each record persists —
// the resumed campaign is bit-identical to an uninterrupted one.
//
// The package is dependency-free (standard library only); the tuners
// and core packages adapt their own types to the record schema here.
package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// magic identifies a journal file; it doubles as the format version
// (bump the trailing digit on incompatible changes).
var magic = []byte("ROBOJNL1")

// snapMagic identifies a snapshot file.
var snapMagic = []byte("ROBOSNP1")

// frameOverhead is the per-record framing cost: u32 payload length +
// u32 CRC32 (IEEE) of the payload.
const frameOverhead = 8

// maxRecordBytes bounds a single record so a corrupt length prefix
// cannot drive recovery into a giant allocation.
const maxRecordBytes = 16 << 20

// SyncPolicy controls when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every appended record: an evaluation is
	// durable before the tuner acts on it. This is the default; with
	// evaluations costing minutes of cluster time each, an fsync is
	// noise.
	SyncAlways SyncPolicy = iota
	// SyncNone never fsyncs explicitly (the OS flushes on its own
	// schedule). A kernel crash may lose trailing records; a process
	// crash alone does not. Snapshots are always fsynced regardless.
	SyncNone
)

// Meta identifies the session a journal belongs to. Resume validates
// that every field matches before replaying: a journal recorded under
// a different seed, budget, workload or fault plan must not silently
// steer a new session.
type Meta struct {
	Seed      uint64  `json:"seed"`
	Budget    int     `json:"budget"`
	Workload  string  `json:"workload"`
	Dataset   string  `json:"dataset"`
	Tuner     string  `json:"tuner"`
	Cap       float64 `json:"cap,omitempty"`
	Deadline  float64 `json:"deadline,omitempty"`
	Retries   int     `json:"retries,omitempty"`
	Faults    string  `json:"faults,omitempty"`
	SpaceHash string  `json:"space_hash,omitempty"`
}

func (m Meta) equal(o Meta) bool { return m == o }

// FailureCounts mirrors the session failure ledger
// (tuners.FailureStats) without importing it, keeping this package
// dependency-free.
type FailureCounts struct {
	Failed         int     `json:"failed,omitempty"`
	Transient      int     `json:"transient,omitempty"`
	Retries        int     `json:"retries,omitempty"`
	OOM            int     `json:"oom,omitempty"`
	Infeasible     int     `json:"infeasible,omitempty"`
	BackoffSeconds float64 `json:"backoff_seconds,omitempty"`
	Skipped        int     `json:"skipped,omitempty"`
}

// EvalEntry is one committed evaluation: the trial's configuration and
// outcome, plus the two pieces of state a bit-identical resume needs —
// the objective's stream position (evaluation counter and accumulated
// cost, which seed the per-run noise and fault streams) and the
// session's cumulative failure ledger after the trial.
type EvalEntry struct {
	// Phase names the campaign phase that produced the trial (probe,
	// selection, init, bo); replay validates it against the resumed
	// run's phase as a divergence tripwire.
	Phase string `json:"phase"`
	// Trial is the 0-based ordinal of the record in the journal.
	Trial int `json:"trial"`
	// Config holds the evaluated configuration's raw values by
	// parameter name.
	Config map[string]float64 `json:"config"`
	// Seconds, Raw and the outcome flags mirror sparksim.EvalRecord.
	Seconds    float64 `json:"seconds"`
	Raw        float64 `json:"raw"`
	Completed  bool    `json:"completed"`
	OOM        bool    `json:"oom,omitempty"`
	Infeasible bool    `json:"infeasible,omitempty"`
	Transient  bool    `json:"transient,omitempty"`
	// Skipped marks a trial whose evaluation was abandoned by the
	// driver (a remote client dropping a proposal) rather than run: it
	// advanced the tuner's protocol state but charged no evaluation.
	// The in-process session never journals skipped trials; the
	// robotuned wire server does, so a resumed session replays the
	// abandonment instead of waiting forever for the lost observation.
	Skipped bool `json:"skipped,omitempty"`
	// FidelityInput and FidelityStage mirror the evaluation's
	// sparksim.Fidelity (input-scale fraction and stage fraction; 0 =
	// full fidelity, the journal stays dependency-free). Replay
	// validates them against the resumed run's proposal as a
	// divergence tripwire, so a ladder change invalidates the stale
	// tail instead of silently replaying proxy observations as full
	// ones.
	FidelityInput float64 `json:"fidelity_input,omitempty"`
	FidelityStage float64 `json:"fidelity_stage,omitempty"`
	// ObjEvals and ObjCost are the objective's evaluation counter and
	// accumulated search cost after this trial — the SplitMix64-derived
	// noise and fault streams are indexed by the counter, so restoring
	// it (rather than re-deriving it) is what makes a resumed run
	// consume exactly the streams the original would have.
	ObjEvals int     `json:"obj_evals"`
	ObjCost  float64 `json:"obj_cost"`
	// Stats is the session failure ledger after this trial.
	Stats FailureCounts `json:"stats"`
}

// DoneEntry marks a session that ran to completion (budget exhausted
// or early-stopped — not cancelled) and summarizes its result.
type DoneEntry struct {
	Best           map[string]float64 `json:"best,omitempty"`
	BestSeconds    float64            `json:"best_seconds"`
	Found          bool               `json:"found"`
	Evals          int                `json:"evals"`
	SearchCost     float64            `json:"search_cost"`
	SelectionEvals int                `json:"selection_evals,omitempty"`
	SelectionCost  float64            `json:"selection_cost,omitempty"`
}

// Snapshot captures the session state the tuner wants to restore
// without replaying math: the parameter selection, the memoization
// buffer and the surrogate's observation set. Memo and Engine are
// opaque JSON blobs owned by the memo and bo packages, keeping this
// package free of tuner dependencies. Snapshots are advisory — the
// journal records alone suffice for a bit-identical resume — but they
// let resume skip the selection phase's forest training and give
// operators a readable picture of a dead campaign.
type Snapshot struct {
	// Phase names the boundary the snapshot was taken at.
	Phase string `json:"phase"`
	// Trials is the number of journal records covered by the snapshot.
	Trials int `json:"trials"`
	// SelTrials is the number of leading records belonging to the
	// probe/selection phases; resume may skip exactly these when the
	// snapshot carries the selection outcome.
	SelTrials int `json:"sel_trials"`
	// BudgetSpent is the tuning budget consumed at snapshot time.
	BudgetSpent int `json:"budget_spent"`
	// Selection is the selected parameter list (post-fallback).
	Selection []string `json:"selection,omitempty"`
	// Memo is the memoization store state (memo.Store JSON).
	Memo json.RawMessage `json:"memo,omitempty"`
	// Engine is the BO engine observation state (bo.EngineState JSON).
	Engine json.RawMessage `json:"engine,omitempty"`
	// Stats is the failure ledger at snapshot time.
	Stats FailureCounts `json:"stats"`
}

// RecoveryInfo reports what recovery found and did. Nothing is dropped
// silently: every discarded byte is accounted for here.
type RecoveryInfo struct {
	// Records is the number of intact records recovered (all types).
	Records int
	// Truncated is true when a torn or corrupt tail was cut off.
	Truncated bool
	// TruncatedBytes is how many trailing bytes were discarded.
	TruncatedBytes int64
	// Reason describes why truncation happened (short read, CRC
	// mismatch, unparsable payload).
	Reason string
}

// frame is the on-disk record envelope; exactly one pointer is set.
type frame struct {
	T    string     `json:"t"`
	Meta *Meta      `json:"meta,omitempty"`
	Eval *EvalEntry `json:"eval,omitempty"`
	Done *DoneEntry `json:"done,omitempty"`
}

// Journal is an open session journal. It is safe for use from one
// tuner goroutine (the Session serializes evaluations); a mutex guards
// the rare cross-goroutine inspection calls.
type Journal struct {
	mu     sync.Mutex
	path   string
	f      *os.File
	policy SyncPolicy
	meta   Meta

	// replay is the queue of recovered evaluation records not yet
	// consumed; replayOff[i] is the byte offset of replay[i]'s frame,
	// so aborting replay can truncate the stale tail.
	replay    []EvalEntry
	replayOff []int64
	replayed  int

	trials   int // eval records on disk or replayed so far
	phase    string
	done     *DoneEntry
	snap     *Snapshot
	resumed  bool
	recovery RecoveryInfo
	diverged string // non-empty once replay was aborted
	writeErr error  // sticky append failure; journaling degrades, the campaign survives
}

// Open opens or creates the journal at path. If the file does not
// exist (or is an empty stub), a fresh journal is created with the
// given meta. If it exists, its records are recovered — truncating a
// torn tail — its meta is validated against the given meta, and the
// recovered evaluations become the replay queue. A valid snapshot side
// file (path + ".snap") is loaded when present; a missing or corrupt
// snapshot is ignored (the records alone are sufficient).
func Open(path string, meta Meta, policy SyncPolicy) (*Journal, error) {
	j := &Journal{path: path, policy: policy, meta: meta}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	j.f = f
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: read %s: %w", path, err)
	}
	if len(data) < len(magic) {
		// Fresh file, or a crash landed inside the 8-byte header: no
		// record can have been committed, so (re)initialize.
		if err := j.initFresh(int64(len(data))); err != nil {
			f.Close()
			return nil, err
		}
		return j, nil
	}
	if !bytes.Equal(data[:len(magic)], magic) {
		f.Close()
		return nil, fmt.Errorf("journal: %s is not a journal file (bad magic)", path)
	}
	if err := j.recover(data); err != nil {
		f.Close()
		return nil, err
	}
	j.loadSnapshot()
	return j, nil
}

// initFresh truncates any partial header and writes a new journal
// header plus the meta record.
func (j *Journal) initFresh(had int64) error {
	if had > 0 {
		if err := j.f.Truncate(0); err != nil {
			return fmt.Errorf("journal: truncate partial header: %w", err)
		}
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if _, err := j.f.Write(magic); err != nil {
		return fmt.Errorf("journal: write header: %w", err)
	}
	if err := j.appendFrame(frame{T: "meta", Meta: &j.meta}); err != nil {
		return err
	}
	return j.syncAlways()
}

// recover parses data (a full journal image), truncates any torn
// tail, validates meta, and builds the replay queue.
func (j *Journal) recover(data []byte) error {
	off := int64(len(magic))
	var sawMeta bool
	truncate := func(reason string) {
		j.recovery.Truncated = true
		j.recovery.TruncatedBytes = int64(len(data)) - off
		j.recovery.Reason = reason
	}
	for off < int64(len(data)) {
		payload, size, reason := nextFrame(data, off)
		if reason != "" {
			truncate(reason)
			break
		}
		var fr frame
		if err := json.Unmarshal(payload, &fr); err != nil {
			truncate("unparsable record payload")
			break
		}
		switch {
		case fr.T == "meta" && fr.Meta != nil:
			if sawMeta {
				truncate("duplicate meta record")
			} else {
				sawMeta = true
				if !fr.Meta.equal(j.meta) {
					return fmt.Errorf("journal: %s was recorded for a different session (have %+v, journal %+v); "+
						"use a new journal file or rerun with the original flags", j.path, j.meta, *fr.Meta)
				}
			}
		case fr.T == "eval" && fr.Eval != nil:
			j.replay = append(j.replay, *fr.Eval)
			j.replayOff = append(j.replayOff, off)
		case fr.T == "done" && fr.Done != nil:
			d := *fr.Done
			j.done = &d
		default:
			truncate(fmt.Sprintf("unknown record type %q", fr.T))
		}
		if j.recovery.Truncated {
			break
		}
		off += size
		j.recovery.Records++
	}
	if !sawMeta {
		// The meta record is written (and fsynced) at creation; its
		// absence means the header append itself was torn. No eval can
		// have been committed after it, so reinitialize.
		return j.initFresh(int64(len(data)))
	}
	if j.recovery.Truncated {
		if err := j.f.Truncate(off); err != nil {
			return fmt.Errorf("journal: truncate torn tail: %w", err)
		}
	}
	if _, err := j.f.Seek(off, io.SeekStart); err != nil {
		return err
	}
	j.resumed = true
	j.trials = 0 // advances as records are replayed or appended
	return nil
}

// loadSnapshot reads the side file, ignoring it unless fully valid.
func (j *Journal) loadSnapshot() {
	data, err := os.ReadFile(j.snapPath())
	if err != nil || len(data) < len(snapMagic)+frameOverhead {
		return
	}
	if !bytes.Equal(data[:len(snapMagic)], snapMagic) {
		return
	}
	payload, _, reason := nextFrame(data, int64(len(snapMagic)))
	if reason != "" {
		return
	}
	var s Snapshot
	if err := json.Unmarshal(payload, &s); err != nil {
		return
	}
	j.snap = &s
}

func (j *Journal) snapPath() string { return j.path + ".snap" }

// Path returns the journal file path.
func (j *Journal) Path() string { return j.path }

// Meta returns the session identity the journal was opened with.
func (j *Journal) Meta() Meta { return j.meta }

// Resumed reports whether Open recovered an existing journal.
func (j *Journal) Resumed() bool { return j.resumed }

// Recovery returns what recovery found and truncated.
func (j *Journal) Recovery() RecoveryInfo { return j.recovery }

// ReplayPending returns how many recovered evaluations have not yet
// been consumed.
func (j *Journal) ReplayPending() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.replay) - j.replayed
}

// Replayed returns how many recovered evaluations were consumed.
func (j *Journal) Replayed() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.replayed
}

// Replaying reports whether recovered evaluations are still pending.
func (j *Journal) Replaying() bool { return j.ReplayPending() > 0 }

// Trials returns the number of evaluations committed to or replayed
// from the journal so far.
func (j *Journal) Trials() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trials
}

// SetPhase records the campaign phase stamped on subsequent entries
// and validated by replay.
func (j *Journal) SetPhase(p string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.phase = p
}

// Phase returns the current campaign phase.
func (j *Journal) Phase() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.phase
}

// PeekReplay returns the next recovered evaluation without consuming
// it.
func (j *Journal) PeekReplay() (EvalEntry, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.replayed >= len(j.replay) {
		return EvalEntry{}, false
	}
	return j.replay[j.replayed], true
}

// NextReplay consumes and returns the next recovered evaluation.
func (j *Journal) NextReplay() (EvalEntry, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.replayed >= len(j.replay) {
		return EvalEntry{}, false
	}
	e := j.replay[j.replayed]
	j.replayed++
	j.trials++
	return e, true
}

// SkipReplay consumes the next n recovered evaluations at once (the
// selection fast-skip path) and returns them in order. It fails
// without consuming anything if fewer than n are pending.
func (j *Journal) SkipReplay(n int) ([]EvalEntry, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if pending := len(j.replay) - j.replayed; pending < n {
		return nil, fmt.Errorf("journal: cannot skip %d records, only %d pending", n, pending)
	}
	out := j.replay[j.replayed : j.replayed+n]
	j.replayed += n
	j.trials += n
	return out, nil
}

// AbortReplay discards the pending replay queue and truncates the
// journal file at the first unconsumed record, so the stale tail is
// not replayed by a future resume. reason is retained for Diverged.
// It is called when the resumed run's decision path no longer matches
// the journal (which a bit-identical tuner never triggers).
func (j *Journal) AbortReplay(reason string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.replayed >= len(j.replay) {
		return nil
	}
	off := j.replayOff[j.replayed]
	j.replay = j.replay[:j.replayed]
	j.replayOff = j.replayOff[:j.replayed]
	j.diverged = reason
	j.done = nil
	if err := j.f.Truncate(off); err != nil {
		j.writeErr = err
		return err
	}
	if _, err := j.f.Seek(off, io.SeekStart); err != nil {
		j.writeErr = err
		return err
	}
	return nil
}

// Diverged returns the divergence reason if replay was aborted, or "".
func (j *Journal) Diverged() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.diverged
}

// Append commits one evaluation. The record is on disk (and fsynced
// under SyncAlways) before Append returns, so a crash immediately
// after an expensive evaluation loses nothing. Append failures are
// sticky (see Err) but deliberately non-fatal: a full disk must not
// kill a paid-for campaign, it only degrades its durability.
func (j *Journal) Append(e EvalEntry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.replayed < len(j.replay) {
		return errors.New("journal: Append while replay records are pending")
	}
	e.Phase = j.phase
	e.Trial = j.trials
	if err := j.appendFrame(frame{T: "eval", Eval: &e}); err != nil {
		j.writeErr = err
		return err
	}
	if j.policy == SyncAlways {
		if err := j.f.Sync(); err != nil {
			j.writeErr = err
			return err
		}
	}
	j.trials++
	j.replay = append(j.replay, e)
	j.replayOff = append(j.replayOff, 0) // offset unused once consumed
	j.replayed = len(j.replay)
	return nil
}

// AppendDone commits the completion marker. Resuming a journal with a
// done record replays every evaluation and reproduces the recorded
// result without spending any new evaluation.
func (j *Journal) AppendDone(d DoneEntry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.done != nil {
		return nil
	}
	if err := j.appendFrame(frame{T: "done", Done: &d}); err != nil {
		j.writeErr = err
		return err
	}
	if err := j.f.Sync(); err != nil {
		j.writeErr = err
		return err
	}
	j.done = &d
	return nil
}

// Done returns the completion marker, if the session finished.
func (j *Journal) Done() (DoneEntry, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.done == nil {
		return DoneEntry{}, false
	}
	return *j.done, true
}

// appendFrame writes one framed record at the current offset.
// Callers hold j.mu.
func (j *Journal) appendFrame(fr frame) error {
	payload, err := json.Marshal(fr)
	if err != nil {
		return fmt.Errorf("journal: marshal record: %w", err)
	}
	if _, err := j.f.Write(frameRecord(payload)); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	return nil
}

func (j *Journal) syncAlways() error {
	if err := j.f.Sync(); err != nil {
		j.writeErr = err
		return err
	}
	return nil
}

// WriteSnapshot atomically replaces the snapshot side file: the new
// image is written to a temp file, fsynced, and renamed over the old
// one, so readers observe the previous snapshot or the new one but
// never a torn mix. The containing directory is fsynced so the rename
// itself survives a crash.
func (j *Journal) WriteSnapshot(s Snapshot) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	payload, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("journal: marshal snapshot: %w", err)
	}
	buf := append(append([]byte(nil), snapMagic...), frameRecord(payload)...)

	tmp := j.snapPath() + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		j.writeErr = err
		return err
	}
	if _, err := tf.Write(buf); err != nil {
		tf.Close()
		os.Remove(tmp)
		j.writeErr = err
		return err
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		os.Remove(tmp)
		j.writeErr = err
		return err
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		j.writeErr = err
		return err
	}
	if err := os.Rename(tmp, j.snapPath()); err != nil {
		os.Remove(tmp)
		j.writeErr = err
		return err
	}
	syncDir(filepath.Dir(j.snapPath()))
	cp := s
	j.snap = &cp
	return nil
}

// Snapshot returns the most recent valid snapshot, from this run or
// recovered from disk.
func (j *Journal) Snapshot() (Snapshot, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.snap == nil {
		return Snapshot{}, false
	}
	return *j.snap, true
}

// Err returns the first append/snapshot failure, if any. Journaling is
// deliberately non-fatal to the campaign; callers surface this at the
// end of the session.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.writeErr
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	syncErr := j.f.Sync()
	closeErr := j.f.Close()
	j.f = nil
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// syncDir fsyncs a directory so a just-renamed file's directory entry
// is durable; best-effort (some filesystems reject directory fsync).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	d.Close()
}
