package journal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testMeta() Meta {
	return Meta{Seed: 7, Budget: 20, Workload: "KMeans", Dataset: "D1", Tuner: "ROBOTune", Cap: 480, SpaceHash: "abc"}
}

func testEntry(i int) EvalEntry {
	return EvalEntry{
		Config:    map[string]float64{"a": float64(i) + 0.5, "b": 1.0 / 3.0},
		Seconds:   100 + float64(i),
		Raw:       100 + float64(i),
		Completed: i%3 != 0,
		OOM:       i%3 == 0,
		ObjEvals:  i + 1,
		ObjCost:   float64(i+1) * 100,
		Stats:     FailureCounts{Failed: i / 3},
	}
}

// writeJournal creates a journal with n eval records (and optionally a
// done record) and returns its path and raw bytes.
func writeJournal(t testing.TB, n int, done bool) (string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.jnl")
	j, err := Open(path, testMeta(), SyncNone)
	if err != nil {
		t.Fatalf("Open fresh: %v", err)
	}
	for i := 0; i < n; i++ {
		j.SetPhase("bo")
		if err := j.Append(testEntry(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if done {
		if err := j.AppendDone(DoneEntry{Found: true, BestSeconds: 99, Evals: n}); err != nil {
			t.Fatalf("AppendDone: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, data
}

// frameEnds walks the on-disk format independently of the package's
// recovery code and returns the byte offset just past each frame —
// a format contract the tests rely on.
func frameEnds(t *testing.T, data []byte) []int64 {
	t.Helper()
	if !bytes.Equal(data[:8], magic) {
		t.Fatal("missing magic")
	}
	var ends []int64
	off := int64(8)
	for off < int64(len(data)) {
		rest := data[off:]
		if len(rest) < frameOverhead {
			t.Fatalf("torn frame in freshly written journal at %d", off)
		}
		n := binary.LittleEndian.Uint32(rest[:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if int64(len(rest)) < frameOverhead+int64(n) {
			t.Fatalf("short payload in freshly written journal at %d", off)
		}
		if crc32.ChecksumIEEE(rest[frameOverhead:frameOverhead+int64(n)]) != sum {
			t.Fatalf("checksum mismatch in freshly written journal at %d", off)
		}
		off += frameOverhead + int64(n)
		ends = append(ends, off)
	}
	return ends
}

func TestRoundtrip(t *testing.T) {
	const n = 6
	path, _ := writeJournal(t, n, true)

	j, err := Open(path, testMeta(), SyncNone)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j.Close()
	if !j.Resumed() {
		t.Fatal("Resumed() = false after reopening a populated journal")
	}
	if got := j.ReplayPending(); got != n {
		t.Fatalf("ReplayPending = %d, want %d", got, n)
	}
	if rec := j.Recovery(); rec.Truncated {
		t.Fatalf("clean journal reported truncation: %+v", rec)
	}
	for i := 0; i < n; i++ {
		e, ok := j.NextReplay()
		if !ok {
			t.Fatalf("NextReplay %d: exhausted early", i)
		}
		want := testEntry(i)
		want.Phase, want.Trial = "bo", i
		if !reflect.DeepEqual(e, want) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, e, want)
		}
	}
	if _, ok := j.NextReplay(); ok {
		t.Fatal("NextReplay returned a record past the end")
	}
	d, ok := j.Done()
	if !ok || !d.Found || d.BestSeconds != 99 || d.Evals != n {
		t.Fatalf("Done = %+v, %v", d, ok)
	}
}

func TestFloatRoundtripExact(t *testing.T) {
	// The parity guarantee depends on config values and costs
	// surviving the JSON encoding bit-exactly.
	path := filepath.Join(t.TempDir(), "f.jnl")
	j, err := Open(path, testMeta(), SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	vals := []float64{1.0 / 3.0, 0.1, 2.220446049250313e-16, 1e300, 123456789.123456789}
	e := EvalEntry{Config: map[string]float64{}, Seconds: vals[0], Raw: vals[1], ObjCost: vals[4]}
	for i, v := range vals {
		e.Config[string(rune('a'+i))] = v
	}
	if err := j.Append(e); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := Open(path, testMeta(), SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got, ok := j2.NextReplay()
	if !ok {
		t.Fatal("no record")
	}
	for k, v := range e.Config {
		if got.Config[k] != v {
			t.Fatalf("config[%s] = %v, want bit-identical %v", k, got.Config[k], v)
		}
	}
	if got.Seconds != e.Seconds || got.Raw != e.Raw || got.ObjCost != e.ObjCost {
		t.Fatalf("floats not bit-identical: %+v vs %+v", got, e)
	}
}

func TestMetaMismatch(t *testing.T) {
	path, _ := writeJournal(t, 2, false)
	other := testMeta()
	other.Seed = 8
	if _, err := Open(path, other, SyncNone); err == nil {
		t.Fatal("Open with mismatched meta succeeded; want error")
	}
}

func TestNotAJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.jnl")
	if err := os.WriteFile(path, []byte("definitely not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, testMeta(), SyncNone); err == nil {
		t.Fatal("Open on a non-journal file succeeded; want error")
	}
}

// TestTruncateEveryOffset cuts the journal at every byte offset and
// asserts recovery never panics, keeps every record fully contained in
// the prefix, and never invents records.
func TestTruncateEveryOffset(t *testing.T) {
	const n = 5
	_, data := writeJournal(t, n, true)
	ends := frameEnds(t, data) // meta, n evals, done

	for cut := 0; cut <= len(data); cut++ {
		// complete = number of whole frames inside the prefix.
		complete := 0
		for _, e := range ends {
			if int64(cut) >= e {
				complete++
			}
		}
		path := filepath.Join(t.TempDir(), "cut.jnl")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := Open(path, testMeta(), SyncNone)
		if err != nil {
			t.Fatalf("cut=%d: Open error: %v", cut, err)
		}
		wantEvals := 0
		if complete >= 1 {
			wantEvals = complete - 1 // minus the meta frame
		}
		wantDone := false
		if wantEvals > n {
			wantEvals, wantDone = n, true
		}
		if got := j.ReplayPending(); got != wantEvals {
			t.Fatalf("cut=%d: replay %d records, want %d", cut, got, wantEvals)
		}
		if _, ok := j.Done(); ok != wantDone {
			t.Fatalf("cut=%d: done=%v, want %v", cut, ok, wantDone)
		}
		for i := 0; i < wantEvals; i++ {
			e, ok := j.NextReplay()
			if !ok {
				t.Fatalf("cut=%d: record %d missing", cut, i)
			}
			want := testEntry(i)
			want.Phase, want.Trial = "bo", i
			if !reflect.DeepEqual(e, want) {
				t.Fatalf("cut=%d: record %d corrupted: %+v", cut, i, e)
			}
		}
		// The truncated journal must stay appendable once drained.
		j.SetPhase("bo")
		if err := j.Append(testEntry(wantEvals)); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		j.Close()
	}
}

// TestBitFlipEveryOffset flips one bit at every byte offset and
// asserts recovery never panics and preserves every record that
// precedes the corruption.
func TestBitFlipEveryOffset(t *testing.T) {
	const n = 4
	_, data := writeJournal(t, n, false)
	ends := frameEnds(t, data)

	for pos := 0; pos < len(data); pos++ {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x40
		path := filepath.Join(t.TempDir(), "flip.jnl")
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := Open(path, testMeta(), SyncNone)
		if pos < len(magic) {
			// A corrupted magic header must be rejected, not recovered.
			if err == nil {
				j.Close()
				t.Fatalf("pos=%d: corrupt magic accepted", pos)
			}
			continue
		}
		if err != nil {
			// A flip inside the meta frame may surface as a meta
			// mismatch (still parsable JSON with a valid checksum is
			// impossible — but the error path must be an error, never a
			// panic). Everything else must recover.
			if int64(pos) < ends[0] {
				continue
			}
			t.Fatalf("pos=%d: Open error: %v", pos, err)
		}
		// Frames wholly before the flipped byte must survive intact.
		intactFrames := 0
		for _, e := range ends {
			if e <= int64(pos) {
				intactFrames++
			}
		}
		wantAtLeast := 0
		if intactFrames >= 1 {
			wantAtLeast = intactFrames - 1 // minus meta
		}
		if got := j.ReplayPending(); got < wantAtLeast {
			t.Fatalf("pos=%d: recovered %d records, want >= %d", pos, got, wantAtLeast)
		}
		for i := 0; i < wantAtLeast; i++ {
			e, ok := j.NextReplay()
			if !ok {
				t.Fatalf("pos=%d: record %d missing", pos, i)
			}
			want := testEntry(i)
			want.Phase, want.Trial = "bo", i
			if !reflect.DeepEqual(e, want) {
				t.Fatalf("pos=%d: intact record %d corrupted: %+v", pos, i, e)
			}
		}
		j.Close()
	}
}

func TestAppendWhileReplayingFails(t *testing.T) {
	path, _ := writeJournal(t, 3, false)
	j, err := Open(path, testMeta(), SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(testEntry(9)); err == nil {
		t.Fatal("Append with pending replay succeeded; want error")
	}
	for {
		if _, ok := j.NextReplay(); !ok {
			break
		}
	}
	if err := j.Append(testEntry(3)); err != nil {
		t.Fatalf("Append after replay drained: %v", err)
	}
}

func TestAbortReplayTruncates(t *testing.T) {
	path, _ := writeJournal(t, 5, true)
	j, err := Open(path, testMeta(), SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	j.NextReplay()
	j.NextReplay()
	if err := j.AbortReplay("test divergence"); err != nil {
		t.Fatalf("AbortReplay: %v", err)
	}
	if j.Diverged() == "" {
		t.Fatal("Diverged() empty after abort")
	}
	if got := j.ReplayPending(); got != 0 {
		t.Fatalf("ReplayPending = %d after abort", got)
	}
	if _, ok := j.Done(); ok {
		t.Fatal("done record survived an aborted replay")
	}
	// New appends continue from the truncation point...
	j.SetPhase("bo")
	if err := j.Append(testEntry(2)); err != nil {
		t.Fatalf("Append after abort: %v", err)
	}
	j.Close()
	// ...and a fresh open sees 2 replayed + 1 appended records.
	j2, err := Open(path, testMeta(), SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.ReplayPending(); got != 3 {
		t.Fatalf("after abort+append reopen: %d records, want 3", got)
	}
}

func TestSkipReplay(t *testing.T) {
	path, _ := writeJournal(t, 4, false)
	j, err := Open(path, testMeta(), SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := j.SkipReplay(5); err == nil {
		t.Fatal("SkipReplay past the queue succeeded")
	}
	got, err := j.SkipReplay(3)
	if err != nil || len(got) != 3 {
		t.Fatalf("SkipReplay(3) = %d records, err %v", len(got), err)
	}
	if j.ReplayPending() != 1 || j.Trials() != 3 {
		t.Fatalf("pending %d, trials %d after skip", j.ReplayPending(), j.Trials())
	}
}

func TestSnapshotRoundtripAndCorruption(t *testing.T) {
	path, _ := writeJournal(t, 2, false)
	j, err := Open(path, testMeta(), SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	snap := Snapshot{
		Phase: "bo", Trials: 2, SelTrials: 1, BudgetSpent: 1,
		Selection: []string{"a", "b"},
		Memo:      []byte(`{"k":1}`),
		Stats:     FailureCounts{Failed: 1},
	}
	if err := j.WriteSnapshot(snap); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	j.Close()

	reopen := func() (*Journal, func()) {
		jj, err := Open(path, testMeta(), SyncNone)
		if err != nil {
			t.Fatal(err)
		}
		return jj, func() { jj.Close() }
	}
	j2, done := reopen()
	got, ok := j2.Snapshot()
	if !ok || !reflect.DeepEqual(got.Selection, snap.Selection) || got.Trials != 2 {
		t.Fatalf("snapshot not recovered: %+v, %v", got, ok)
	}
	done()

	// Corrupt the snapshot at every offset: the journal must open
	// fine and either see the full snapshot or none.
	data, err := os.ReadFile(path + ".snap")
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(data); cut++ {
		if err := os.WriteFile(path+".snap", data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		jj, done := reopen()
		if s, ok := jj.Snapshot(); ok {
			if cut != len(data) {
				t.Fatalf("cut=%d: torn snapshot accepted", cut)
			}
			if !reflect.DeepEqual(s.Selection, snap.Selection) {
				t.Fatalf("cut=%d: snapshot corrupted: %+v", cut, s)
			}
		} else if cut == len(data) {
			t.Fatal("intact snapshot rejected")
		}
		done()
	}
	for pos := 0; pos < len(data); pos++ {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x08
		if err := os.WriteFile(path+".snap", mut, 0o644); err != nil {
			t.Fatal(err)
		}
		jj, done := reopen()
		if s, ok := jj.Snapshot(); ok {
			// A flip that still passes CRC is impossible; any accepted
			// snapshot must be bit-identical to what was written.
			if !reflect.DeepEqual(s.Selection, snap.Selection) || s.Trials != snap.Trials {
				t.Fatalf("pos=%d: corrupt snapshot accepted: %+v", pos, s)
			}
		}
		done()
	}
}

func TestFreshAndShortFiles(t *testing.T) {
	// Opening short/empty stubs must initialize a fresh journal.
	for _, stub := range [][]byte{nil, {}, []byte("ROB"), magic[:7]} {
		path := filepath.Join(t.TempDir(), "stub.jnl")
		if stub != nil {
			if err := os.WriteFile(path, stub, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		j, err := Open(path, testMeta(), SyncAlways)
		if err != nil {
			t.Fatalf("stub %q: %v", stub, err)
		}
		if j.Resumed() {
			t.Fatalf("stub %q: resumed from nothing", stub)
		}
		if err := j.Append(testEntry(0)); err != nil {
			t.Fatalf("stub %q: append: %v", stub, err)
		}
		j.Close()
	}
}
