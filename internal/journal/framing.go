package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// frameRecord frames a payload for append: u32 little-endian length +
// u32 CRC32 (IEEE) of the payload, then the payload itself, as one
// contiguous buffer — a single write keeps a torn append contiguous at
// the tail, where recovery truncates it cleanly. The session journal
// and the campaign ledger share this framing.
func frameRecord(payload []byte) []byte {
	buf := make([]byte, frameOverhead+len(payload))
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameOverhead:], payload)
	return buf
}

// nextFrame parses the frame starting at data[off]. On success it
// returns the payload and the frame's total on-disk size; otherwise a
// non-empty reason names the torn or corrupt condition recovery must
// truncate at. It never panics on hostile input: lengths are bounded
// before any allocation.
func nextFrame(data []byte, off int64) (payload []byte, size int64, reason string) {
	rest := data[off:]
	if len(rest) < frameOverhead {
		return nil, 0, "torn frame header"
	}
	n := binary.LittleEndian.Uint32(rest[:4])
	sum := binary.LittleEndian.Uint32(rest[4:8])
	if n == 0 || n > maxRecordBytes {
		return nil, 0, fmt.Sprintf("implausible record length %d", n)
	}
	if int64(len(rest)) < frameOverhead+int64(n) {
		return nil, 0, "torn record payload"
	}
	payload = rest[frameOverhead : frameOverhead+int64(n)]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, "record checksum mismatch"
	}
	return payload, frameOverhead + int64(n), ""
}
