package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// ledgerMagic identifies a campaign ledger file; like the session
// journal's magic it doubles as the format version.
var ledgerMagic = []byte("ROBOLGR1")

// LedgerMeta identifies the campaign a ledger belongs to. Resume
// validates every field before trusting the records: a ledger written
// for a different task list, seed or configuration must not silently
// steer a new campaign.
type LedgerMeta struct {
	// Seed is the campaign-level seed (0 when the campaign derives all
	// randomness from per-task seeds).
	Seed uint64 `json:"seed,omitempty"`
	// Tasks names every task in campaign order; the index into this
	// list is the task identity all other records use.
	Tasks []string `json:"tasks"`
	// Journals holds each task's session-journal path, parallel to
	// Tasks ("" for tasks without one). Recorded so an operator — or a
	// resume on a different invocation — can find the per-session
	// evidence from the ledger alone.
	Journals []string `json:"journals,omitempty"`
	// Config is a free-form fingerprint of everything else that must
	// match for the records to be replayable (budgets, fault plan,
	// reallocation policy, ...).
	Config string `json:"config,omitempty"`
}

func (m LedgerMeta) equal(o LedgerMeta) bool {
	if m.Seed != o.Seed || m.Config != o.Config || len(m.Tasks) != len(o.Tasks) || len(m.Journals) != len(o.Journals) {
		return false
	}
	for i := range m.Tasks {
		if m.Tasks[i] != o.Tasks[i] {
			return false
		}
	}
	for i := range m.Journals {
		if m.Journals[i] != o.Journals[i] {
			return false
		}
	}
	return true
}

// TaskStart marks a task as claimed by a (possibly crashed) run. A
// started-but-not-done task is the resume signal to replay its session
// journal rather than skip it.
type TaskStart struct {
	Task int `json:"task"`
}

// TaskDone records a task that ran to completion: how many budgeted
// trials it consumed, how many evaluations it left unspent (returned
// to the campaign's budget pool), and an opaque owner-defined result
// payload that resume hands back without re-running anything.
type TaskDone struct {
	Task    int             `json:"task"`
	Trials  int             `json:"trials"`
	Surplus int             `json:"surplus"`
	Result  json.RawMessage `json:"result,omitempty"`
}

// TaskFailed records a task whose session panicked (or could not
// start). Its unspent budget is surrendered to the pool like a
// completed task's; resume does not retry it — a deterministic
// campaign would only crash the same way again, and retrying would
// double-spend the surrendered surplus.
type TaskFailed struct {
	Task    int    `json:"task"`
	Reason  string `json:"reason"`
	Trials  int    `json:"trials"`
	Surplus int    `json:"surplus"`
}

// Grant records one budget-pool draw: Evals extra evaluations granted
// to Task. Grants are journaled before they are applied (write-ahead),
// so a resumed campaign replays exactly the grants the original run
// decided, at the same points in each task's trial sequence. Seq is
// the campaign-wide grant ordinal; Trials is the receiving task's
// trial count at the moment of the grant (diagnostic — replay consumes
// a task's grants in order, whenever its tuner runs dry).
type Grant struct {
	Seq    int `json:"seq"`
	Task   int `json:"task"`
	Evals  int `json:"evals"`
	Trials int `json:"trials,omitempty"`
}

// ledgerFrame is the on-disk record envelope; exactly one pointer is
// set. It rides the same CRC framing as the session journal.
type ledgerFrame struct {
	T      string      `json:"t"`
	Meta   *LedgerMeta `json:"meta,omitempty"`
	Start  *TaskStart  `json:"start,omitempty"`
	Done   *TaskDone   `json:"done,omitempty"`
	Failed *TaskFailed `json:"failed,omitempty"`
	Grant  *Grant      `json:"grant,omitempty"`
}

// Ledger is an open campaign ledger: the durable half of the
// scheduler's task list. Appends are serialized by a mutex — unlike
// the session journal, many task goroutines write to one ledger.
type Ledger struct {
	mu     sync.Mutex
	path   string
	f      *os.File
	policy SyncPolicy
	meta   LedgerMeta

	started  map[int]bool
	done     map[int]TaskDone
	failed   map[int]TaskFailed
	grants   []Grant
	resumed  bool
	recovery RecoveryInfo
	writeErr error
}

// OpenLedger opens or creates the campaign ledger at path. An
// existing ledger is recovered — a torn tail record is truncated, its
// meta is validated against the given meta — and its task records
// become the campaign's resume state.
func OpenLedger(path string, meta LedgerMeta, policy SyncPolicy) (*Ledger, error) {
	l := &Ledger{
		path:    path,
		policy:  policy,
		meta:    meta,
		started: make(map[int]bool),
		done:    make(map[int]TaskDone),
		failed:  make(map[int]TaskFailed),
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: open %s: %w", path, err)
	}
	l.f = f
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ledger: read %s: %w", path, err)
	}
	if len(data) < len(ledgerMagic) {
		if err := l.initFresh(int64(len(data))); err != nil {
			f.Close()
			return nil, err
		}
		return l, nil
	}
	if !bytes.Equal(data[:len(ledgerMagic)], ledgerMagic) {
		f.Close()
		return nil, fmt.Errorf("ledger: %s is not a campaign ledger (bad magic)", path)
	}
	if err := l.recover(data); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// initFresh truncates any partial header and writes a new ledger
// header plus the meta record.
func (l *Ledger) initFresh(had int64) error {
	if had > 0 {
		if err := l.f.Truncate(0); err != nil {
			return fmt.Errorf("ledger: truncate partial header: %w", err)
		}
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if _, err := l.f.Write(ledgerMagic); err != nil {
		return fmt.Errorf("ledger: write header: %w", err)
	}
	if err := l.appendFrame(ledgerFrame{T: "meta", Meta: &l.meta}); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	return nil
}

// recover parses data (a full ledger image), truncates any torn tail,
// validates meta, and rebuilds the per-task record maps.
func (l *Ledger) recover(data []byte) error {
	off := int64(len(ledgerMagic))
	var sawMeta bool
	truncate := func(reason string) {
		l.recovery.Truncated = true
		l.recovery.TruncatedBytes = int64(len(data)) - off
		l.recovery.Reason = reason
	}
	validTask := func(i int) bool { return i >= 0 && i < len(l.meta.Tasks) }
	for off < int64(len(data)) {
		payload, size, reason := nextFrame(data, off)
		if reason != "" {
			truncate(reason)
			break
		}
		var fr ledgerFrame
		if err := json.Unmarshal(payload, &fr); err != nil {
			truncate("unparsable record payload")
			break
		}
		switch {
		case fr.T == "meta" && fr.Meta != nil:
			if sawMeta {
				truncate("duplicate meta record")
			} else {
				sawMeta = true
				if !fr.Meta.equal(l.meta) {
					return fmt.Errorf("ledger: %s was recorded for a different campaign; "+
						"use a new ledger file or rerun with the original task list and flags", l.path)
				}
			}
		case fr.T == "start" && fr.Start != nil && validTask(fr.Start.Task):
			l.started[fr.Start.Task] = true
		case fr.T == "done" && fr.Done != nil && validTask(fr.Done.Task):
			l.done[fr.Done.Task] = *fr.Done
		case fr.T == "failed" && fr.Failed != nil && validTask(fr.Failed.Task):
			l.failed[fr.Failed.Task] = *fr.Failed
		case fr.T == "grant" && fr.Grant != nil && validTask(fr.Grant.Task):
			l.grants = append(l.grants, *fr.Grant)
		default:
			truncate(fmt.Sprintf("unknown record type %q", fr.T))
		}
		if l.recovery.Truncated {
			break
		}
		off += size
		l.recovery.Records++
	}
	if !sawMeta {
		// The meta record is fsynced at creation; its absence means the
		// header append itself was torn — nothing else can have committed.
		return l.initFresh(int64(len(data)))
	}
	if l.recovery.Truncated {
		if err := l.f.Truncate(off); err != nil {
			return fmt.Errorf("ledger: truncate torn tail: %w", err)
		}
	}
	if _, err := l.f.Seek(off, io.SeekStart); err != nil {
		return err
	}
	l.resumed = true
	return nil
}

// Path returns the ledger file path.
func (l *Ledger) Path() string { return l.path }

// Meta returns the campaign identity the ledger was opened with.
func (l *Ledger) Meta() LedgerMeta { return l.meta }

// Resumed reports whether OpenLedger recovered an existing ledger.
func (l *Ledger) Resumed() bool { return l.resumed }

// Recovery returns what recovery found and truncated.
func (l *Ledger) Recovery() RecoveryInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recovery
}

// TaskStarted reports whether a start record exists for task i.
func (l *Ledger) TaskStarted(i int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.started[i]
}

// TaskDone returns task i's completion record, if it finished.
func (l *Ledger) TaskDone(i int) (TaskDone, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	d, ok := l.done[i]
	return d, ok
}

// TaskFailed returns task i's failure record, if it crashed.
func (l *Ledger) TaskFailed(i int) (TaskFailed, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	f, ok := l.failed[i]
	return f, ok
}

// Grants returns every recorded budget grant in append order.
func (l *Ledger) Grants() []Grant {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Grant(nil), l.grants...)
}

// AppendStart commits a start record for task i.
func (l *Ledger) AppendStart(i int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.started[i] {
		return nil
	}
	if err := l.append(ledgerFrame{T: "start", Start: &TaskStart{Task: i}}); err != nil {
		return err
	}
	l.started[i] = true
	return nil
}

// AppendTaskDone commits a completion record. The record is durable
// before the campaign banks the task's surplus or skips the task on
// resume.
func (l *Ledger) AppendTaskDone(d TaskDone) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.done[d.Task]; ok {
		return nil
	}
	if err := l.append(ledgerFrame{T: "done", Done: &d}); err != nil {
		return err
	}
	l.done[d.Task] = d
	return nil
}

// AppendTaskFailed commits a failure record.
func (l *Ledger) AppendTaskFailed(f TaskFailed) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.failed[f.Task]; ok {
		return nil
	}
	if err := l.append(ledgerFrame{T: "failed", Failed: &f}); err != nil {
		return err
	}
	l.failed[f.Task] = f
	return nil
}

// AppendGrant commits one budget-pool grant. Write-ahead: the caller
// only applies the grant after this returns nil, so the set of applied
// grants is always a prefix of the journaled ones and replay can never
// disagree with a grant the original run acted on.
func (l *Ledger) AppendGrant(g Grant) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.append(ledgerFrame{T: "grant", Grant: &g}); err != nil {
		return err
	}
	l.grants = append(l.grants, g)
	return nil
}

// append writes one frame and syncs per policy. Callers hold l.mu.
// Failures are sticky (see Err) but non-fatal, matching the session
// journal: a full disk degrades durability, it does not kill the
// campaign.
func (l *Ledger) append(fr ledgerFrame) error {
	if err := l.appendFrame(fr); err != nil {
		l.writeErr = err
		return err
	}
	if l.policy == SyncAlways {
		if err := l.f.Sync(); err != nil {
			l.writeErr = err
			return err
		}
	}
	return nil
}

func (l *Ledger) appendFrame(fr ledgerFrame) error {
	payload, err := json.Marshal(fr)
	if err != nil {
		return fmt.Errorf("ledger: marshal record: %w", err)
	}
	if _, err := l.f.Write(frameRecord(payload)); err != nil {
		return fmt.Errorf("ledger: append: %w", err)
	}
	return nil
}

// Err returns the first append failure, if any.
func (l *Ledger) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.writeErr
}

// Close syncs and closes the ledger file.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	syncErr := l.f.Sync()
	closeErr := l.f.Close()
	l.f = nil
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
