package report

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestRenderStructure(t *testing.T) {
	r := New("My title")
	r.Add("Section A", "line one\nline two\n")
	r.AddMarkdown("Section B", "| a | b |\n|---|---|\n| 1 | 2 |\n")
	out := r.Render()
	if !strings.HasPrefix(out, "# My title") {
		t.Errorf("missing title: %q", out[:40])
	}
	for _, want := range []string{"## Section A", "## Section B", "```\nline one", "| a | b |"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	// Markdown sections must not be fenced.
	if strings.Contains(out, "```\n| a | b |") {
		t.Error("markdown section was fenced")
	}
}

func TestComparisonSummary(t *testing.T) {
	cfg := experiments.Config{Seed: 5, Budget: 25, Repeats: 1, MeasureReps: 2, Fast: true}
	comp := experiments.RunComparison(cfg, func(w string) bool { return w == "TeraSort" })
	md := ComparisonSummary(comp)
	for _, want := range []string{"BestConfig", "Gunther", "RandomSearch", "| baseline |"} {
		if !strings.Contains(md, want) {
			t.Errorf("summary missing %q:\n%s", want, md)
		}
	}
	if strings.Count(md, "\n") != 5 {
		t.Errorf("summary should have header+rule+3 rows:\n%s", md)
	}
}

func TestSelectionSummary(t *testing.T) {
	md := SelectionSummary(map[string][]string{
		"B": {"x", "y"},
		"A": {"z"},
	})
	ia, ib := strings.Index(md, "**A**"), strings.Index(md, "**B**")
	if ia < 0 || ib < 0 || ia > ib {
		t.Errorf("selection summary unsorted or incomplete:\n%s", md)
	}
}

func TestFullReportSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full report is slow")
	}
	cfg := experiments.Config{Seed: 5, Budget: 25, Repeats: 1, MeasureReps: 2, Fast: true}
	comp := experiments.RunComparison(cfg, func(w string) bool { return w == "PageRank" || w == "KMeans" })
	out := FullReport(cfg, comp)
	for _, want := range []string{
		"Figure 2", "Figure 3", "Figure 4", "Figure 5", "Figure 6",
		"Figure 7", "Figure 8", "Figure 9", "Table 2", "default configuration",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestSignificanceSummary(t *testing.T) {
	cfg := experiments.Config{Seed: 5, Budget: 25, Repeats: 2, MeasureReps: 2, Fast: true}
	comp := experiments.RunComparison(cfg, func(w string) bool { return w == "TeraSort" })
	md := SignificanceSummary(comp)
	for _, want := range []string{"win rate", "Mann-Whitney", "BestConfig", "RandomSearch"} {
		if !strings.Contains(md, want) {
			t.Errorf("missing %q:\n%s", want, md)
		}
	}
}
