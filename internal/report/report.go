// Package report renders experiment results as a single Markdown
// document — the machine-generated counterpart of EXPERIMENTS.md,
// produced by `robobench -out report.md`.
package report

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/experiments"
)

// Report accumulates sections and renders Markdown.
type Report struct {
	title    string
	sections []section
}

type section struct {
	heading string
	body    string
}

// New creates a report with a title.
func New(title string) *Report { return &Report{title: title} }

// Add appends a section with preformatted body text (wrapped in a
// code fence to preserve table alignment).
func (r *Report) Add(heading, body string) {
	r.sections = append(r.sections, section{heading: heading, body: body})
}

// AddMarkdown appends a section whose body is already Markdown.
func (r *Report) AddMarkdown(heading, body string) {
	r.sections = append(r.sections, section{heading: heading, body: "\x00md\x00" + body})
}

// Render produces the final Markdown document.
func (r *Report) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s\n\nGenerated %s.\n", r.title, time.Now().UTC().Format("2006-01-02 15:04 MST"))
	for _, s := range r.sections {
		fmt.Fprintf(&sb, "\n## %s\n\n", s.heading)
		if body, ok := strings.CutPrefix(s.body, "\x00md\x00"); ok {
			sb.WriteString(strings.TrimRight(body, "\n"))
			sb.WriteByte('\n')
			continue
		}
		sb.WriteString("```\n")
		sb.WriteString(strings.TrimRight(s.body, "\n"))
		sb.WriteString("\n```\n")
	}
	return sb.String()
}

// ComparisonSummary renders the headline numbers of a comparison as a
// Markdown table: ROBOTune's mean/max advantage over each baseline
// for both quality (Figure 3) and search cost (Figure 4).
func ComparisonSummary(comp *experiments.Comparison) string {
	f3 := comp.Fig3()
	f4 := comp.Fig4()
	var sb strings.Builder
	sb.WriteString("| baseline | quality adv (mean) | quality adv (max) | cost adv (mean) | cost adv (max) |\n")
	sb.WriteString("|---|---|---|---|---|\n")
	for _, other := range []string{"BestConfig", "Gunther", "RandomSearch"} {
		qm, qx := experiments.SummarizeScaled(f3, other)
		cm, cx := experiments.SummarizeScaled(f4, other)
		fmt.Fprintf(&sb, "| %s | %.2fx | %.2fx | %.2fx | %.2fx |\n", other, qm, qx, cm, cx)
	}
	return sb.String()
}

// SelectionSummary renders which parameters ROBOTune selected across
// sessions as a Markdown list (frequency-ranked).
func SelectionSummary(selected map[string][]string) string {
	var sb strings.Builder
	workloads := make([]string, 0, len(selected))
	for w := range selected {
		workloads = append(workloads, w)
	}
	sort.Strings(workloads)
	for _, w := range workloads {
		fmt.Fprintf(&sb, "- **%s**: %s\n", w, strings.Join(selected[w], ", "))
	}
	return sb.String()
}

// FullReport assembles every experiment into one document. The
// comparison is taken as an argument so robobench can reuse the grid
// it already ran.
func FullReport(cfg experiments.Config, comp *experiments.Comparison) string {
	r := New("ROBOTune reproduction report")

	r.AddMarkdown("Headline comparison (ROBOTune advantage)", ComparisonSummary(comp))
	r.AddMarkdown("Statistical significance", SignificanceSummary(comp))
	r.Add("Figure 3 — best execution time scaled to Random Search",
		experiments.RenderScaled("(lower is better)", comp.Fig3()))
	r.Add("Figure 4 — search cost scaled to Random Search",
		experiments.RenderScaled("(lower is better)", comp.Fig4()))
	for _, w := range []string{"PageRank", "KMeans"} {
		r.Add(fmt.Sprintf("Figure 5 — sampled configuration distribution (%s)", w),
			comp.Fig5(w).Render())
	}
	r.Add("Figure 6 — memoization convergence (PageRank)",
		comp.Fig6("PageRank").Render("PageRank"))
	r.Add("Table 2 — search speed", experiments.RenderTable2(comp.Table2()))

	r.Add("Figure 2 — importance model comparison",
		experiments.Fig2ModelComparison(cfg, 200).Render())
	r.Add("Figure 7 — selection recall vs sample count",
		experiments.Fig7SelectionRecall(cfg, nil).Render())
	r.Add("Figure 8 — sampling behavior",
		experiments.Fig8SamplingBehavior(cfg).Render())
	r.Add("Figure 9 — GP response surface",
		experiments.Fig9ResponseSurface(cfg, nil, 0).Render())
	r.Add("§5.2 — default configuration comparison",
		experiments.RenderDefault(experiments.DefaultComparison(cfg)))
	return r.Render()
}

// SignificanceSummary tests whether ROBOTune's final-configuration
// quality is statistically better than each baseline's across all
// sessions (Mann-Whitney U, two-sided), with a bootstrap CI for the
// mean quality ratio and the paired win rate.
func SignificanceSummary(comp *experiments.Comparison) string {
	type key struct {
		w       string
		ds, rep int
	}
	rt := map[key]float64{}
	byTuner := map[string]map[key]float64{}
	for _, s := range comp.Sessions {
		k := key{s.Workload, s.DatasetIdx, s.Repeat}
		if s.Tuner == "ROBOTune" {
			rt[k] = s.Quality
			continue
		}
		if byTuner[s.Tuner] == nil {
			byTuner[s.Tuner] = map[key]float64{}
		}
		byTuner[s.Tuner][k] = s.Quality
	}

	var sb strings.Builder
	sb.WriteString("| baseline | win rate | mean ratio (baseline/ROBOTune) | Mann-Whitney p |\n")
	sb.WriteString("|---|---|---|---|\n")
	for _, other := range []string{"BestConfig", "Gunther", "RandomSearch"} {
		var a, b, ratios []float64
		for k, rv := range rt {
			ov, ok := byTuner[other][k]
			if !ok {
				continue
			}
			a = append(a, rv)
			b = append(b, ov)
			if rv > 0 {
				ratios = append(ratios, ov/rv)
			}
		}
		if len(a) == 0 {
			continue
		}
		_, _, p := analysis.MannWhitney(a, b)
		iv := analysis.BootstrapMeanCI(ratios, 0.95, 7)
		fmt.Fprintf(&sb, "| %s | %.0f%% | %s | %.3f |\n",
			other, 100*analysis.WinRate(a, b), iv.String(), p)
	}
	return sb.String()
}
