// Package par provides the deterministic-parallelism primitives the
// tuner's hot paths share: a seed splitter that derives independent,
// never-aliasing RNG streams for parallel work items, and a bounded
// worker pool for index-addressed fan-out.
//
// The determinism contract every user of this package upholds is:
// running a computation with Workers=1 and Workers=N must produce
// bit-identical results under the same seed. The pattern that
// guarantees it is (1) derive each work item's randomness from
// SplitSeed(seed, item) rather than from a shared stream, (2) have
// item i write only slot i of the output, and (3) reduce the outputs
// in index order so floating-point summation and argmin tie-breaking
// match the serial path exactly.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// SplitSeed derives the RNG seed for one work item (a tree, a
// permutation repeat, a multistart run) from a base seed. It applies
// the SplitMix64 finalizer to seed + (stream+1)·φ, a composition of
// bijections on uint64, so for a fixed base seed distinct streams can
// never alias — the property FuzzSeedSplit checks. The +1 keeps
// stream 0 from collapsing onto the raw seed.
func SplitSeed(seed, stream uint64) uint64 {
	z := seed + (stream+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Workers resolves a worker-count option: values <= 0 select
// runtime.GOMAXPROCS, anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on up to `workers`
// goroutines (<= 0 selects GOMAXPROCS). Work is handed out by an
// atomic counter, so items run in roughly ascending order but on
// arbitrary goroutines; callers keep determinism by making fn(i)
// depend only on i and write only slot i of any shared output.
// workers <= 1 (or n <= 1) degenerates to a plain serial loop with no
// goroutine or synchronization overhead.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
