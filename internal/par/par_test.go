package par

import (
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/sample"
)

func TestSplitSeedDistinctStreams(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, ^uint64(0)} {
		seen := make(map[uint64]uint64)
		for s := uint64(0); s < 10000; s++ {
			v := SplitSeed(seed, s)
			if prev, dup := seen[v]; dup {
				t.Fatalf("seed %d: streams %d and %d alias to %d", seed, prev, s, v)
			}
			seen[v] = s
		}
	}
}

func TestSplitSeedStreamsDecorrelated(t *testing.T) {
	// Adjacent streams must not produce near-identical RNG output: the
	// first draws of streams 0..63 should all differ.
	seen := make(map[float64]bool)
	for s := uint64(0); s < 64; s++ {
		v := sample.NewRNG(SplitSeed(7, s)).Float64()
		if seen[v] {
			t.Fatalf("stream %d repeats an earlier first draw %v", s, v)
		}
		seen[v] = true
	}
}

func TestWorkersResolve(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 257
		var hits [n]atomic.Int32
		ForEach(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	ForEach(4, 0, func(int) { t.Fatal("fn called for n=0") })
	ran := false
	ForEach(4, 1, func(i int) { ran = i == 0 })
	if !ran {
		t.Error("n=1 not run")
	}
}

func TestForEachDeterministicSlots(t *testing.T) {
	// The canonical usage pattern: slot i derives from SplitSeed(seed, i)
	// only, so any worker count produces the same output.
	run := func(workers int) []float64 {
		out := make([]float64, 100)
		ForEach(workers, len(out), func(i int) {
			out[i] = sample.NewRNG(SplitSeed(99, uint64(i))).Float64()
		})
		return out
	}
	serial := run(1)
	for _, w := range []int{2, 4, 16} {
		got := run(w)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: slot %d = %v, serial %v", w, i, got[i], serial[i])
			}
		}
	}
}

// FuzzSeedSplit asserts the non-aliasing contract for arbitrary base
// seeds: two distinct streams of the same seed never map to the same
// derived seed (SplitSeed composes bijections, so this is structural,
// and the fuzzer guards the structure against regressions).
func FuzzSeedSplit(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(1))
	f.Add(uint64(1), uint64(100), uint64(3))
	f.Add(^uint64(0), uint64(0), ^uint64(0))
	f.Add(uint64(0x9e3779b97f4a7c15), uint64(2), uint64(7))
	f.Fuzz(func(t *testing.T, seed, a, b uint64) {
		if a == b {
			return
		}
		if SplitSeed(seed, a) == SplitSeed(seed, b) {
			t.Fatalf("seed %d: streams %d and %d alias", seed, a, b)
		}
	})
}
