package server_test

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/client"
	"repro/internal/server"
)

// FuzzSessionSpec throws arbitrary bytes at the session-spec decoder:
// whatever comes in, it must never panic, and anything it accepts must
// build a working session end-to-end. Run the seeds under `go test`,
// or mine with `make fuzz-server`.
func FuzzSessionSpec(f *testing.F) {
	f.Add([]byte(`{"tuner":"randomsearch","space":"spark","budget":10}`))
	f.Add([]byte(`{"tuner":"robotune","space":"spark","budget":100,"seed":7,"workload":"TeraSort","dataset":"D1"}`))
	f.Add([]byte(`{"tuner":"cmaes","space":{"system":"x","params":[{"name":"a","type":"float","min":0,"max":1,"default":0.5}]},"budget":5}`))
	f.Add([]byte(`{"tuner":"randomsearch","space":"spark","budget":10,"sync":"none","options":{"workers":2}}`))
	f.Add([]byte(`{"tuner":"randomsearch","space":"spark","budget":-1}`))
	f.Add([]byte(`{"tuner":"randomsearch","space":"spark","budget":1e99}`))
	f.Add([]byte(`{"tuner":"","space":"","budget":0}`))
	f.Add([]byte(`{"tuner":"randomsearch","space":"spark","budget":10,"options":{"importance_threshold":1e308}}`))
	f.Add([]byte(`{"tuner":"bohb","space":"spark","budget":20,"seed":3,"options":{"fidelity_ladder":[0.111,0.333,1],"cost_aware":true}}`))
	f.Add([]byte(`{"tuner":"bohb","space":"spark","budget":20,"options":{"fidelity_ladder":[0.5,0.2,1]}}`))
	f.Add([]byte(`{"tuner":"bohb","space":"spark","budget":20,"options":{"fidelity_ladder":[0.25,0.5]}}`))
	f.Add([]byte(`{"tuner":"bohb","space":"spark","budget":20,"options":{"fidelity_ladder":[-1,1]}}`))
	f.Add([]byte(`{"tuner":"bohb","space":"spark","budget":20,"seed":3,"options":{"fidelity_ladder":[0.111,0.333,1],"fidelity_axis":"stage"}}`))
	f.Add([]byte(`{"tuner":"bohb","space":"spark","budget":20,"options":{"fidelity_axis":"volume"}}`))
	f.Add([]byte(`{"tuner":"randomsearch","space":"spark","budget":10,"options":{"cost_aware":true}}`))
	f.Add([]byte(`{"tuner":"randomsearch","space":{"system":"x","params":[{"name":"a","type":"int","min":9,"max":1}]},"budget":3}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte{0xff, 0xfe, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		ps, err := server.DecodeSessionSpec(data)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		// Accepted specs must satisfy the documented bounds...
		if ps.Spec.Budget <= 0 || ps.Spec.Budget > server.MaxBudget {
			t.Fatalf("accepted budget %d outside (0, %d]", ps.Spec.Budget, server.MaxBudget)
		}
		if ps.Space == nil || ps.Space.Dim() == 0 || ps.Space.Dim() > server.MaxSpaceDim {
			t.Fatalf("accepted spec with unusable space: %+v", ps.Space)
		}
		// ... and actually serve traffic: create the session on an
		// ephemeral server and run one propose/observe round trip.
		srv := server.New(server.Options{})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		cl := client.New(ts.URL)
		sess, err := cl.Create(ps.Spec)
		if err != nil {
			t.Fatalf("validated spec rejected by the server: %v", err)
		}
		props, _, err := sess.Propose(1)
		if err != nil {
			t.Fatalf("first propose on a fresh session: %v", err)
		}
		if len(props) > 0 {
			if _, err := sess.Observe(client.Observation{Config: props[0].Config, Seconds: 1, Completed: true}); err != nil {
				t.Fatalf("observing our own proposal: %v", err)
			}
		}
	})
}

// FuzzObserveBody throws arbitrary bytes at the observe decoder and,
// when they decode, at a live session. Invariants: no panic; invalid
// bodies 4xx; the session's evaluation counter moves only on accepted,
// non-skipped observations; the tuner never sees a non-finite number.
func FuzzObserveBody(f *testing.F) {
	f.Add([]byte(`{"observations":[{"config":{"size_mb":256,"ttl":5,"policy":0},"seconds":12.5,"completed":true}]}`))
	f.Add([]byte(`{"observations":[{"config":{"size_mb":64,"ttl":0.1,"policy":2},"seconds":480,"raw":1200,"completed":false,"oom":true}]}`))
	f.Add([]byte(`{"observations":[{"config":{"size_mb":64,"ttl":1,"policy":1},"skipped":true}]}`))
	f.Add([]byte(`{"observations":[]}`))
	f.Add([]byte(`{"observations":[{"config":{},"seconds":1}]}`))
	f.Add([]byte(`{"observations":[{"config":{"size_mb":256},"seconds":-1}]}`))
	f.Add([]byte(`{"observations":[{"config":{"size_mb":1e999},"seconds":1}]}`))
	f.Add([]byte(`{"observations":[{"config":{"size_mb":256,"ttl":5,"policy":0},"seconds":1e999}]}`))
	f.Add([]byte(`{"observations":[{"config":{"unknown_param":1},"seconds":1}]}`))
	f.Add([]byte(`{"observations":[{"config":{"size_mb":256,"ttl":5,"policy":0},"seconds":4.2,"cap":480,"fidelity_input":0.333,"completed":true}]}`))
	f.Add([]byte(`{"observations":[{"config":{"size_mb":256,"ttl":5,"policy":0},"seconds":4.2,"fidelity_input":1.5,"completed":true}]}`))
	f.Add([]byte(`{"observations":[{"config":{"size_mb":256,"ttl":5,"policy":0},"seconds":4.2,"fidelity_stage":-0.25}]}`))
	f.Add([]byte(`{"observations":[{"config":{"size_mb":256,"ttl":5,"policy":0},"skipped":true,"fidelity_input":2}]}`))
	f.Add([]byte(`{"observations":[{"config":{"size_mb":256,"ttl":5,"policy":0},"seconds":4.2,"cap":-3}]}`))
	f.Add([]byte(`{"observations":null}`))
	f.Add([]byte(`{"observation":[{"config":{"size_mb":256},"seconds":1}]}`)) // wrong field
	f.Add([]byte(`"observations"`))
	f.Add([]byte{0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := server.DecodeObserveBody(data)
		if err == nil {
			// Whatever the decoder lets through must be finite.
			for _, o := range req.Observations {
				for name, v := range o.Config {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("decoder passed non-finite config value %s=%v", name, v)
					}
				}
				if !o.Skipped && (math.IsNaN(o.Seconds) || math.IsInf(o.Seconds, 0) || o.Seconds < 0) {
					t.Fatalf("decoder passed bad seconds %v", o.Seconds)
				}
				// Fidelity must be validated even on skips — a malformed
				// fidelity must never reach the journal.
				for _, v := range [...]float64{o.FidelityInput, o.FidelityStage} {
					if math.IsNaN(v) || v < 0 || v > 1 {
						t.Fatalf("decoder passed bad fidelity %v", v)
					}
				}
				if !o.Skipped && (math.IsNaN(o.Cap) || math.IsInf(o.Cap, 0) || o.Cap < 0) {
					t.Fatalf("decoder passed bad cap %v", o.Cap)
				}
			}
		}

		// Protocol-level: replay the raw bytes against a live session
		// that has exactly one pending proposal. The server must answer
		// with *some* status — never crash, never corrupt the session.
		srv := server.New(server.Options{})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		cl := client.New(ts.URL)
		sess, cerr := cl.Create(spec("randomsearch", 4, 1))
		if cerr != nil {
			t.Fatal(cerr)
		}
		props, _, perr := sess.Propose(1)
		if perr != nil || len(props) != 1 {
			t.Fatalf("propose: %v %v", props, perr)
		}
		evalsBefore := srv.Metrics().Observations.Load()

		resp, herr := http.Post(ts.URL+"/v1/sessions/"+sess.ID+"/observe", "application/json", bytes.NewReader(data))
		if herr != nil {
			t.Fatal(herr)
		}
		resp.Body.Close()
		if resp.StatusCode >= 500 {
			t.Fatalf("hostile observe body produced a %d", resp.StatusCode)
		}
		if err != nil && resp.StatusCode != 400 {
			t.Fatalf("decoder rejected the body but the server answered %d", resp.StatusCode)
		}

		// The session must still be intact: status serves, and the
		// pending proposal is still observable (unless this very body
		// legitimately observed or skipped it).
		st, serr := sess.Status()
		if serr != nil {
			t.Fatalf("status after hostile observe: %v", serr)
		}
		if st.Trials < 0 || st.Evals < 0 || st.Evals > st.Trials {
			t.Fatalf("session counters corrupted: %+v", st)
		}
		if resp.StatusCode != 200 {
			if got := srv.Metrics().Observations.Load(); got != evalsBefore {
				t.Fatalf("rejected request moved the observation counter %d -> %d", evalsBefore, got)
			}
			if _, oerr := sess.Observe(client.Observation{Config: props[0].Config, Seconds: 2, Completed: true}); oerr != nil {
				t.Fatalf("pending proposal unobservable after rejected body: %v", oerr)
			}
		}
	})
}

// FuzzStatusRoundTrip: every status document the server can emit must
// be valid JSON that round-trips through the client types. (Cheap, but
// it pins the +Inf-in-JSON class of bug: a session with no completed
// trial must not try to marshal its infinite incumbent.)
func FuzzStatusRoundTrip(f *testing.F) {
	f.Add(uint64(1), false)
	f.Add(uint64(42), true)
	f.Fuzz(func(t *testing.T, seed uint64, complete bool) {
		srv := server.New(server.Options{})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		cl := client.New(ts.URL)
		sess, err := cl.Create(spec("randomsearch", 3, seed))
		if err != nil {
			t.Fatal(err)
		}
		props, _, err := sess.Propose(1)
		if err != nil || len(props) != 1 {
			t.Fatalf("propose: %v %v", props, err)
		}
		// A failed-only history leaves the incumbent at +Inf internally.
		if _, err := sess.Observe(client.Observation{Config: props[0].Config, Seconds: 480, Completed: complete}); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Get(ts.URL + "/v1/sessions/" + sess.ID)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st client.StatusResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("status is not valid JSON: %v", err)
		}
		if st.Found != complete {
			t.Fatalf("found=%v after a completed=%v trial", st.Found, complete)
		}
		if res, err := sess.Finish(); err != nil {
			t.Fatalf("finish: %v", err)
		} else if res.Found != complete {
			t.Fatalf("result found=%v, want %v", res.Found, complete)
		}
	})
}
