package server_test

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"repro/client"
	"repro/internal/server"
)

// TestDrainRejectsNewSessions: a draining server turns away creates
// with 503 code "draining" but keeps serving its live sessions — the
// shutdown window lets clients finish what they started.
func TestDrainRejectsNewSessions(t *testing.T) {
	env := newEnv(t, server.Options{JournalDir: t.TempDir()})

	sess, err := env.cl.Create(spec("random", 8, 3))
	if err != nil {
		t.Fatal(err)
	}

	env.srv.StartDrain()
	if !env.srv.Draining() {
		t.Fatal("Draining() false after StartDrain")
	}

	if _, err := env.cl.Create(spec("random", 8, 4)); err == nil {
		t.Fatal("create succeeded on a draining server")
	} else {
		var ae *client.APIError
		if !asAPIError(err, &ae) || ae.Status != 503 || ae.Code != "draining" {
			t.Fatalf("create on draining server: %v, want 503 draining", err)
		}
	}

	// The live session still works end to end through the drain.
	delivered := drive(t, sess)
	if delivered != 8 {
		t.Fatalf("draining server delivered %d observations, want 8", delivered)
	}
	if _, err := sess.Finish(); err != nil {
		t.Fatalf("finish during drain: %v", err)
	}
}

// TestDrainHealthz: /healthz flips to 503 with a draining marker so
// load balancers stop routing, and the session gauge stays visible.
func TestDrainHealthz(t *testing.T) {
	env := newEnv(t, server.Options{})

	if err := env.cl.Health(); err != nil {
		t.Fatalf("healthy server: %v", err)
	}
	env.srv.StartDrain()

	resp, err := http.Get(env.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz status %d, want 503", resp.StatusCode)
	}
	var doc struct {
		OK       bool `json:"ok"`
		Draining bool `json:"draining"`
	}
	data, _ := io.ReadAll(resp.Body)
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("healthz body %q: %v", data, err)
	}
	if doc.OK || !doc.Draining {
		t.Fatalf("draining /healthz body %q, want ok=false draining=true", data)
	}
	if err := env.cl.Health(); err == nil {
		t.Fatal("client Health() reported a draining server healthy")
	}
}

// TestDrainInFlightGauge: the handler's in-flight gauge returns to
// zero once traffic stops — the daemon polls it before closing
// journals, so a leak would stall every shutdown.
func TestDrainInFlightGauge(t *testing.T) {
	env := newEnv(t, server.Options{JournalDir: t.TempDir()})
	sess, err := env.cl.Create(spec("bestconfig", 6, 9))
	if err != nil {
		t.Fatal(err)
	}
	drive(t, sess)
	if _, err := sess.Finish(); err != nil {
		t.Fatal(err)
	}
	if n := env.srv.InFlight(); n != 0 {
		t.Fatalf("%d requests still counted in flight after traffic stopped", n)
	}
}

func asAPIError(err error, out **client.APIError) bool {
	ae, ok := err.(*client.APIError)
	if ok {
		*out = ae
	}
	return ok
}
