package server_test

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/internal/cli"
	"repro/internal/server"
)

// testSpaceJSON is a small 3-parameter space so sessions complete in
// milliseconds.
func testSpaceJSON() json.RawMessage {
	return json.RawMessage(`{
	  "system": "cache",
	  "params": [
	    {"name": "size_mb", "type": "int", "min": 64, "max": 4096, "log": true, "default": 256},
	    {"name": "ttl", "type": "float", "min": 0.1, "max": 60, "default": 5},
	    {"name": "policy", "type": "categorical", "choices": ["lru", "lfu", "arc"], "default": "lru"}
	  ]
	}`)
}

// objective is the test stand-in cluster: a deterministic function of
// the configuration alone, so re-evaluating a config after a crash or
// an eviction reproduces the same measurement.
func objective(cfg map[string]float64) (seconds float64, completed bool) {
	s := 10 + math.Abs(cfg["size_mb"]-1500)/100 + math.Abs(cfg["ttl"]-30) + 3*cfg["policy"]
	return s, true
}

type testEnv struct {
	srv *server.Server
	ts  *httptest.Server
	cl  *client.Client
}

func newEnv(t *testing.T, opts server.Options) *testEnv {
	t.Helper()
	srv := server.New(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Shutdown()
	})
	return &testEnv{srv: srv, ts: ts, cl: client.New(ts.URL)}
}

func spec(tuner string, budget int, seed uint64) client.SessionSpec {
	return client.SessionSpec{
		Tuner:  tuner,
		Space:  testSpaceJSON(),
		Budget: budget,
		Seed:   seed,
		Options: client.SpecOptions{
			// Small ROBOTune models so the robotune kind stays fast; the
			// baselines ignore this.
			GenericSamples: 10, TuningSamples: 5, PermuteRepeats: 2, Workers: 1,
		},
	}
}

// drive runs a session to completion through the wire protocol and
// returns the number of observations delivered.
func drive(t *testing.T, sess *client.Session) int {
	t.Helper()
	delivered := 0
	for i := 0; i < 10_000; i++ {
		props, done, err := sess.Propose(0)
		if err != nil {
			t.Fatalf("propose: %v", err)
		}
		// done can arrive alongside a final batch (batch steppers hand
		// out their whole budget before the first observation): process
		// proposals first, stop only on an empty done response.
		if len(props) == 0 {
			if done {
				return delivered
			}
			t.Fatalf("stepper idle with nothing outstanding after %d observations", delivered)
		}
		for _, p := range props {
			sec, ok := objective(p.Config)
			// A reduced-fidelity proposal runs a scaled-down workload:
			// shrink the measurement accordingly and echo the fidelity
			// back, as the protocol requires.
			if p.FidelityInput > 0 && p.FidelityInput < 1 {
				sec *= p.FidelityInput
			}
			obs := client.Observation{
				Config: p.Config, Seconds: sec, Completed: ok,
				Cap: p.Cap, FidelityInput: p.FidelityInput, FidelityStage: p.FidelityStage,
			}
			if _, err := sess.Observe(obs); err != nil {
				t.Fatalf("observe: %v", err)
			}
			delivered++
		}
	}
	t.Fatal("session did not finish within 10000 rounds")
	return delivered
}

// TestLifecycleAllTuners runs every tuner kind through the full wire
// lifecycle: create, propose/observe to completion, status, finish.
func TestLifecycleAllTuners(t *testing.T) {
	env := newEnv(t, server.Options{JournalDir: t.TempDir()})
	for _, kind := range cli.TunerKinds() {
		t.Run(kind, func(t *testing.T) {
			sess, err := env.cl.Create(spec(kind, 12, 7))
			if err != nil {
				t.Fatal(err)
			}
			n := drive(t, sess)
			if n == 0 {
				t.Fatal("no observations delivered")
			}
			st, err := sess.Status()
			if err != nil {
				t.Fatal(err)
			}
			if !st.Done || !st.Found {
				t.Fatalf("status after completion: done=%v found=%v", st.Done, st.Found)
			}
			if st.Trials != n {
				t.Fatalf("trials=%d, delivered %d observations", st.Trials, n)
			}
			res, err := sess.Finish()
			if err != nil {
				t.Fatal(err)
			}
			if !res.Found || res.BestSeconds <= 0 {
				t.Fatalf("result: %+v", res)
			}
			if res.BestSeconds != st.BestSeconds {
				t.Fatalf("finish best %v != status best %v", res.BestSeconds, st.BestSeconds)
			}
		})
	}
}

// TestSpecValidation rejects malformed session specs with 400s.
func TestSpecValidation(t *testing.T) {
	env := newEnv(t, server.Options{})
	bad := []string{
		``,
		`{`,
		`{"tuner":"robotune"}`, // no space, no budget
		`{"tuner":"nope","space":"spark","budget":5}`,          // unknown tuner
		`{"tuner":"randomsearch","space":"mars","budget":5}`,   // unknown space
		`{"tuner":"randomsearch","space":"spark","budget":0}`,  // zero budget
		`{"tuner":"randomsearch","space":"spark","budget":-3}`, // negative budget
		`{"tuner":"randomsearch","space":"spark","budget":99999999999}`,
		`{"tuner":"randomsearch","space":"spark","budget":5,"sync":"sometimes"}`,
		`{"tuner":"randomsearch","space":"spark","budget":5,"bogus":1}`, // unknown field
		`{"tuner":"randomsearch","space":{"system":"x","params":[]},"budget":5}`,
		`{"tuner":"randomsearch","space":"spark","budget":5,"options":{"workers":-1}}`,
		`{"tuner":"robotune","space":"spark","budget":5,"options":{"refit_budget":1}}`,    // budget fraction must be < 1
		`{"tuner":"robotune","space":"spark","budget":5,"options":{"refit_budget":-0.1}}`, // ... and non-negative
		`{"tuner":"robotune","space":"spark","budget":5,"options":{"sparse_threshold":-1}}`,
	}
	for _, body := range bad {
		resp, err := http.Post(env.ts.URL+"/v1/sessions", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("spec %q: got %d, want 400", body, resp.StatusCode)
		}
	}
	if got := env.srv.Metrics().SessionsCreated.Load(); got != 0 {
		t.Fatalf("%d sessions created from invalid specs", got)
	}
}

// TestObserveProtocolErrors: observations that violate the ask/tell
// protocol 4xx and leave the session usable.
func TestObserveProtocolErrors(t *testing.T) {
	env := newEnv(t, server.Options{})
	sess, err := env.cl.Create(spec("randomsearch", 8, 3))
	if err != nil {
		t.Fatal(err)
	}

	// Observe without any proposal: 409.
	_, err = sess.Observe(client.Observation{Config: map[string]float64{"size_mb": 256, "ttl": 5, "policy": 0}, Seconds: 1, Completed: true})
	if !client.IsConflict(err) {
		t.Fatalf("observe-without-propose: %v, want conflict", err)
	}

	props, _, err := sess.Propose(1)
	if err != nil || len(props) != 1 {
		t.Fatalf("propose: %v %v", props, err)
	}
	p := props[0]

	// Out-of-space config: 400.
	_, err = sess.Observe(client.Observation{Config: map[string]float64{"nope": 1}, Seconds: 1, Completed: true})
	var ae *client.APIError
	if err == nil {
		t.Fatal("out-of-space observe accepted")
	}
	if ae = err.(*client.APIError); ae.Status != 400 && ae.Status != 409 {
		t.Fatalf("out-of-space observe: %v", err)
	}

	// Raw malformed bodies: NaN/Inf, negative seconds, empty batches.
	for _, body := range []string{
		`{"observations":[]}`,
		`{"observations":[{"config":{},"seconds":1,"completed":true}]}`,
		`{"observations":[{"config":{"size_mb":256,"ttl":5,"policy":0},"seconds":-1,"completed":true}]}`,
		`{"observations":[{"config":{"size_mb":256,"ttl":5,"policy":0},"seconds":1e999,"completed":true}]}`,
		`{"observations":[{"config":{"size_mb":NaN,"ttl":5,"policy":0},"seconds":1,"completed":true}]}`,
		`not json`,
	} {
		resp, err := http.Post(env.ts.URL+"/v1/sessions/"+sess.ID+"/observe", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("body %q: got %d, want 400", body, resp.StatusCode)
		}
	}

	// The pending proposal is still observable after all that abuse.
	sec, ok := objective(p.Config)
	if _, err := sess.Observe(client.Observation{Config: p.Config, Seconds: sec, Completed: ok}); err != nil {
		t.Fatalf("valid observe after protocol abuse: %v", err)
	}
	// ... exactly once: the duplicate 409s.
	_, err = sess.Observe(client.Observation{Config: p.Config, Seconds: sec, Completed: ok})
	if !client.IsConflict(err) {
		t.Fatalf("double observe: %v, want conflict", err)
	}
}

// TestFinishedSession: a sealed session stays queryable, rejects
// observations with 410, and survives rehydration as sealed.
func TestFinishedSession(t *testing.T) {
	dir := t.TempDir()
	env := newEnv(t, server.Options{JournalDir: dir})
	sess, err := env.cl.Create(spec("randomsearch", 20, 5))
	if err != nil {
		t.Fatal(err)
	}
	props, _, err := sess.Propose(2)
	if err != nil || len(props) < 1 {
		t.Fatalf("propose: %v %v", props, err)
	}
	sec, ok := objective(props[0].Config)
	if _, err := sess.Observe(client.Observation{Config: props[0].Config, Seconds: sec, Completed: ok}); err != nil {
		t.Fatal(err)
	}
	// Early finish, mid-campaign: the client owns the decision.
	res, err := sess.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Trials != 1 {
		t.Fatalf("early finish result: %+v", res)
	}

	// The session rehydrates sealed from its journal's done record.
	st, err := sess.Status()
	if err != nil {
		t.Fatalf("status after finish: %v", err)
	}
	if !st.Done || !st.Resumed {
		t.Fatalf("rehydrated finished session: done=%v resumed=%v", st.Done, st.Resumed)
	}
	// Observing into it is 410, not a resurrection.
	_, err = sess.Observe(client.Observation{Config: props[1].Config, Seconds: 1, Completed: true})
	if !client.IsFinished(err) {
		t.Fatalf("observe after finish: %v, want 410", err)
	}
	// A second finish returns the same sealed result.
	res2, err := sess.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Found != res.Found || res2.BestSeconds != res.BestSeconds || res2.Evals != res.Evals {
		t.Fatalf("re-finish drifted: %+v vs %+v", res2, res)
	}
}

// TestSkippedProposals: a skip advances the tuner without charging an
// evaluation, and the session still completes.
func TestSkippedProposals(t *testing.T) {
	env := newEnv(t, server.Options{JournalDir: t.TempDir()})
	sess, err := env.cl.Create(spec("randomsearch", 6, 11))
	if err != nil {
		t.Fatal(err)
	}
	skipped, observed := 0, 0
	for i := 0; i < 1000; i++ {
		props, done, err := sess.Propose(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(props) == 0 {
			if !done {
				t.Fatal("stepper idle with nothing outstanding")
			}
			break
		}
		for j, p := range props {
			if j%2 == 1 {
				if _, err := sess.Skip(p.Config); err != nil {
					t.Fatalf("skip: %v", err)
				}
				skipped++
				continue
			}
			sec, ok := objective(p.Config)
			if _, err := sess.Observe(client.Observation{Config: p.Config, Seconds: sec, Completed: ok}); err != nil {
				t.Fatal(err)
			}
			observed++
		}
	}
	if skipped == 0 {
		t.Fatal("nothing was skipped")
	}
	st, err := sess.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Evals != observed {
		t.Fatalf("evals=%d, want %d (skips must not be charged)", st.Evals, observed)
	}
	if st.Trials != observed {
		t.Fatalf("trials=%d, want %d (skips are not trials)", st.Trials, observed)
	}
}

// TestTenantSessionCap: the per-tenant live-session cap 429s, and is
// per tenant.
func TestTenantSessionCap(t *testing.T) {
	env := newEnv(t, server.Options{TenantSessions: 2})
	a := client.New(env.ts.URL)
	a.Tenant = "alice"
	if _, err := a.Create(spec("randomsearch", 5, 1)); err != nil {
		t.Fatal(err)
	}
	s2, err := a.Create(spec("randomsearch", 5, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Create(spec("randomsearch", 5, 3)); !client.IsThrottled(err) {
		t.Fatalf("third session: %v, want 429", err)
	}
	b := client.New(env.ts.URL)
	b.Tenant = "bob"
	if _, err := b.Create(spec("randomsearch", 5, 4)); err != nil {
		t.Fatalf("other tenant throttled: %v", err)
	}
	// Finishing frees a slot.
	if _, err := s2.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Create(spec("randomsearch", 5, 5)); err != nil {
		t.Fatalf("create after finish: %v", err)
	}
}

// TestMaxSessionsCap: the global cap 429s across tenants.
func TestMaxSessionsCap(t *testing.T) {
	env := newEnv(t, server.Options{MaxSessions: 2})
	for i := 0; i < 2; i++ {
		if _, err := env.cl.Create(spec("randomsearch", 5, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	other := client.New(env.ts.URL)
	other.Tenant = "someone-else"
	if _, err := other.Create(spec("randomsearch", 5, 9)); !client.IsThrottled(err) {
		t.Fatalf("create past global cap: %v, want 429", err)
	}
}

// TestTenantEvalRate: the observation token bucket throttles whole
// batches and refills with the (injected) clock.
func TestTenantEvalRate(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	env := newEnv(t, server.Options{TenantEvalsPerSec: 2, TenantBurst: 3, Now: clock})
	sess, err := env.cl.Create(spec("randomsearch", 50, 1))
	if err != nil {
		t.Fatal(err)
	}
	props, _, err := sess.Propose(10)
	if err != nil || len(props) < 8 {
		t.Fatalf("propose: %d proposals, %v", len(props), err)
	}
	obs := func(i int) client.Observation {
		sec, ok := objective(props[i].Config)
		return client.Observation{Config: props[i].Config, Seconds: sec, Completed: ok}
	}
	// A batch over the burst is rejected whole — nothing applied.
	if _, err := sess.Observe(obs(0), obs(1), obs(2), obs(3)); !client.IsThrottled(err) {
		t.Fatalf("burst-exceeding batch: %v, want 429", err)
	}
	// The burst itself fits.
	if _, err := sess.Observe(obs(0), obs(1), obs(2)); err != nil {
		t.Fatalf("burst-sized batch after throttle: %v", err)
	}
	// The bucket is empty now.
	if _, err := sess.Observe(obs(3)); !client.IsThrottled(err) {
		t.Fatalf("observe on empty bucket: %v, want 429", err)
	}
	// The (fake) clock refills it at 2 tokens/s.
	advance(time.Second)
	if _, err := sess.Observe(obs(3), obs(4)); err != nil {
		t.Fatalf("observe after refill: %v", err)
	}
	if got := env.srv.Metrics().Throttled.Load(); got != 2 {
		t.Fatalf("throttled counter = %d, want 2", got)
	}
}

// TestEvictionAndRehydration: an idle session is evicted (journal
// closed, memory released) and the next touch rebuilds it from disk —
// including proposals that were in flight when it was evicted.
func TestEvictionAndRehydration(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	env := newEnv(t, server.Options{JournalDir: t.TempDir(), IdleTTL: time.Minute, Now: clock})
	sess, err := env.cl.Create(spec("randomsearch", 10, 21))
	if err != nil {
		t.Fatal(err)
	}
	// Deliver three observations, then leave one proposal in flight.
	for i := 0; i < 3; i++ {
		props, _, err := sess.Propose(1)
		if err != nil || len(props) != 1 {
			t.Fatalf("propose: %v %v", props, err)
		}
		sec, ok := objective(props[0].Config)
		if _, err := sess.Observe(client.Observation{Config: props[0].Config, Seconds: sec, Completed: ok}); err != nil {
			t.Fatal(err)
		}
	}
	// Two proposals in flight; only the second gets observed. The
	// first is exactly the shape a crash leaves behind: handed out,
	// never answered, and absent from the journal.
	inflight, _, err := sess.Propose(2)
	if err != nil || len(inflight) != 2 {
		t.Fatalf("propose in-flight: %v %v", inflight, err)
	}
	sec2, ok2 := objective(inflight[1].Config)
	if _, err := sess.Observe(client.Observation{Config: inflight[1].Config, Seconds: sec2, Completed: ok2}); err != nil {
		t.Fatal(err)
	}

	advance(2 * time.Minute)
	if n := env.srv.Store().EvictIdle(time.Minute); n != 1 {
		t.Fatalf("evicted %d sessions, want 1", n)
	}
	if live := env.srv.Metrics().SessionsLive.Load(); live != 0 {
		t.Fatalf("sessions live after eviction: %d", live)
	}

	// Touching the session rehydrates it from the journal.
	st, err := sess.Status()
	if err != nil {
		t.Fatalf("status after eviction: %v", err)
	}
	if !st.Resumed || st.Trials != 4 {
		t.Fatalf("rehydrated: resumed=%v trials=%d, want resumed with 4 trials", st.Resumed, st.Trials)
	}
	if st.Unclaimed != 1 {
		t.Fatalf("unclaimed=%d, want 1 (the unanswered in-flight proposal)", st.Unclaimed)
	}
	// The next propose re-serves the lost in-flight proposal first.
	again, _, err := sess.Propose(1)
	if err != nil || len(again) != 1 {
		t.Fatalf("propose after rehydration: %v %v", again, err)
	}
	if fmt.Sprint(again[0].Config) != fmt.Sprint(inflight[0].Config) {
		t.Fatalf("reclaimed proposal %v != lost in-flight proposal %v", again[0].Config, inflight[0].Config)
	}
	// The observation that crashed with the old handout still lands.
	sec, ok := objective(again[0].Config)
	if _, err := sess.Observe(client.Observation{Config: again[0].Config, Seconds: sec, Completed: ok}); err != nil {
		t.Fatal(err)
	}
	drive(t, sess)
	if _, err := sess.Finish(); err != nil {
		t.Fatal(err)
	}
	if got := env.srv.Metrics().SessionsRehydrated.Load(); got != 1 {
		t.Fatalf("rehydrated counter = %d, want 1", got)
	}
}

// TestRestartResume: shutting the server down and starting a fresh one
// on the same journal directory resumes the session; the stitched
// trace is bit-identical to an uninterrupted run of the same spec.
func TestRestartResume(t *testing.T) {
	sp := spec("cmaes", 16, 33)

	// Uninterrupted baseline.
	base := newEnv(t, server.Options{JournalDir: t.TempDir()})
	bs, err := base.cl.Create(sp)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, bs)
	baseSt, err := bs.FullStatus()
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: half the campaign, then a full server restart.
	dir := t.TempDir()
	envA := newEnv(t, server.Options{JournalDir: dir})
	sa, err := envA.cl.Create(sp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		props, done, err := sa.Propose(1)
		if err != nil {
			t.Fatal(err)
		}
		if done || len(props) == 0 {
			break
		}
		sec, ok := objective(props[0].Config)
		if _, err := sa.Observe(client.Observation{Config: props[0].Config, Seconds: sec, Completed: ok}); err != nil {
			t.Fatal(err)
		}
	}
	envA.ts.Close()
	envA.srv.Shutdown()

	envB := newEnv(t, server.Options{JournalDir: dir})
	sb, err := envB.cl.Attach(sa.ID)
	if err != nil {
		t.Fatalf("attach after restart: %v", err)
	}
	st, err := sb.Status()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Resumed || st.Trials != 8 {
		t.Fatalf("after restart: resumed=%v trials=%d, want resumed with 8", st.Resumed, st.Trials)
	}
	if st.Diverged != "" {
		t.Fatalf("replay diverged: %s", st.Diverged)
	}
	drive(t, sb)
	resSt, err := sb.FullStatus()
	if err != nil {
		t.Fatal(err)
	}

	// Bit-identical: every observed objective value, in order.
	if len(resSt.Trace) != len(baseSt.Trace) {
		t.Fatalf("trace lengths: restarted %d vs baseline %d", len(resSt.Trace), len(baseSt.Trace))
	}
	for i := range resSt.Trace {
		if resSt.Trace[i] != baseSt.Trace[i] {
			t.Fatalf("trace[%d]: restarted %x vs baseline %x", i, resSt.Trace[i], baseSt.Trace[i])
		}
	}
	if resSt.BestSeconds != baseSt.BestSeconds || resSt.Evals != baseSt.Evals {
		t.Fatalf("result drifted: best %x/%d vs baseline %x/%d",
			resSt.BestSeconds, resSt.Evals, baseSt.BestSeconds, baseSt.Evals)
	}
}

// TestStatusTraceTail: the default status carries a bounded tail, the
// explicit forms carry what was asked.
func TestStatusTraceTail(t *testing.T) {
	env := newEnv(t, server.Options{})
	sess, err := env.cl.Create(spec("randomsearch", 40, 2))
	if err != nil {
		t.Fatal(err)
	}
	drive(t, sess)
	full, err := sess.FullStatus()
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Trace) != full.Trials || full.TraceStart != 0 {
		t.Fatalf("full trace: %d entries start %d, want %d from 0", len(full.Trace), full.TraceStart, full.Trials)
	}
	st, err := sess.Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Trace) != 32 || st.TraceStart != full.Trials-32 {
		t.Fatalf("default tail: %d entries start %d", len(st.Trace), st.TraceStart)
	}
	var tailed client.StatusResponse
	resp, err := http.Get(env.ts.URL + "/v1/sessions/" + sess.ID + "?trace=5")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&tailed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(tailed.Trace) != 5 || tailed.Trace[4] != full.Trace[full.Trials-1] {
		t.Fatalf("?trace=5 tail wrong: %v", tailed.Trace)
	}
}

// TestUnknownSessionAndBadIDs: 404s and 400s, never 500s.
func TestUnknownSessionAndBadIDs(t *testing.T) {
	env := newEnv(t, server.Options{JournalDir: t.TempDir()})
	for _, id := range []string{"sdeadbeef", "no-such-session"} {
		if _, err := env.cl.Attach(id); !client.IsNotFound(err) {
			t.Errorf("attach %q: %v, want 404", id, err)
		}
	}
	// Path-escaping ids must be rejected outright.
	resp, err := http.Get(env.ts.URL + "/v1/sessions/" + "%2e%2e%2fetc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 && resp.StatusCode != 404 {
		t.Fatalf("traversal id: %d, want 4xx", resp.StatusCode)
	}
}

// TestHealthAndMetrics: the monitoring endpoints serve and count.
func TestHealthAndMetrics(t *testing.T) {
	env := newEnv(t, server.Options{})
	sess, err := env.cl.Create(spec("randomsearch", 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	drive(t, sess)

	resp, err := http.Get(env.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		OK           bool  `json:"ok"`
		SessionsLive int64 `json:"sessions_live"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !health.OK || health.SessionsLive != 1 {
		t.Fatalf("health: %+v", health)
	}

	resp, err = http.Get(env.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mv server.MetricsView
	if err := json.NewDecoder(resp.Body).Decode(&mv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if mv.Trials.Observations != 5 || mv.Trials.Proposals != 5 {
		t.Fatalf("metrics trials: %+v", mv.Trials)
	}
	if mv.ObserveLatency.Count != 5 {
		t.Fatalf("latency histogram count: %d", mv.ObserveLatency.Count)
	}
}
