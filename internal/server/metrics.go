package server

import (
	"encoding/json"
	"sync/atomic"
	"time"

	"repro/internal/schedule"
)

// Metrics is the server's expvar-style counter set. Everything is a
// plain atomic — the hot path (propose/observe) touches two or three
// counters per request and must never contend on a lock.
type Metrics struct {
	SessionsCreated    atomic.Int64
	SessionsLive       atomic.Int64
	SessionsEvicted    atomic.Int64
	SessionsRehydrated atomic.Int64
	SessionsFinished   atomic.Int64

	Requests  atomic.Int64
	Errors4xx atomic.Int64
	Errors5xx atomic.Int64
	Throttled atomic.Int64
	Conflicts atomic.Int64
	// ObsCapped counts observations rejected by Options.MaxObservations
	// (code "max_observations"; not folded into Conflicts even though
	// both are 409s — a capped session is an operator signal, not a
	// protocol hiccup).
	ObsCapped atomic.Int64

	Proposals    atomic.Int64
	Observations atomic.Int64
	Skips        atomic.Int64

	ObserveLatency Histogram
}

// latencyBucketsUS are the observe-latency histogram bucket upper
// bounds, in microseconds; the final implicit bucket is +Inf.
var latencyBucketsUS = []int64{
	50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000,
	25_000, 50_000, 100_000, 250_000,
	500_000, 1_000_000,
}

// Histogram is a fixed-bucket latency histogram with atomic counters.
type Histogram struct {
	counts [15]atomic.Int64 // len(latencyBucketsUS) + 1 overflow bucket
	sumUS  atomic.Int64
	count  atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	i := 0
	for i < len(latencyBucketsUS) && us > latencyBucketsUS[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumUS.Add(us)
	h.count.Add(1)
}

// histogramView is the JSON rendering of a Histogram.
type histogramView struct {
	Count   int64            `json:"count"`
	SumUS   int64            `json:"sum_us"`
	MeanUS  float64          `json:"mean_us"`
	Buckets []map[string]any `json:"buckets"`
}

func (h *Histogram) view() histogramView {
	v := histogramView{Count: h.count.Load(), SumUS: h.sumUS.Load()}
	if v.Count > 0 {
		v.MeanUS = float64(v.SumUS) / float64(v.Count)
	}
	cum := int64(0)
	for i := range h.counts {
		c := h.counts[i].Load()
		cum += c
		if c == 0 && i == len(latencyBucketsUS) {
			continue // drop an empty overflow bucket
		}
		b := map[string]any{"count": c, "cum": cum}
		if i < len(latencyBucketsUS) {
			b["le_us"] = latencyBucketsUS[i]
		} else {
			b["le_us"] = "inf"
		}
		v.Buckets = append(v.Buckets, b)
	}
	return v
}

// MetricsView is the GET /metrics document.
type MetricsView struct {
	Sessions struct {
		Created    int64 `json:"created"`
		Live       int64 `json:"live"`
		Evicted    int64 `json:"evicted"`
		Rehydrated int64 `json:"rehydrated"`
		Finished   int64 `json:"finished"`
	} `json:"sessions"`
	Requests struct {
		Total     int64 `json:"total"`
		Errors4xx int64 `json:"errors_4xx"`
		Errors5xx int64 `json:"errors_5xx"`
		Throttled int64 `json:"throttled"`
		Conflicts int64 `json:"conflicts"`
		ObsCapped int64 `json:"observations_capped"`
	} `json:"requests"`
	Trials struct {
		Proposals    int64 `json:"proposals"`
		Observations int64 `json:"observations"`
		Skips        int64 `json:"skips"`
	} `json:"trials"`
	ObserveLatency histogramView `json:"observe_latency"`
}

// SurrogateView is the /metrics "surrogate" section: refit-cadence
// accounting summed across every live session whose stepper exposes it
// (ROBOTune sessions with a fitted surrogate). Unlike the atomic
// counters it is computed on demand by walking the session table —
// /metrics is cold-path, so the walk is fine.
type SurrogateView struct {
	Sessions        int     `json:"sessions"`
	SparseSessions  int     `json:"sparse_sessions"`
	HyperRefits     int     `json:"hyper_refits"`
	PosteriorRefits int     `json:"posterior_refits"`
	Extends         int     `json:"extends"`
	RefitSeconds    float64 `json:"refit_seconds"`
	Observations    int     `json:"observations"`
	// ActivePoints is the summed surrogate working-set size: the sparse
	// active set where the sparse path is on, the full history where it
	// is not. ActivePoints << Observations means the local-subset path
	// is doing its job.
	ActivePoints int `json:"active_points"`
}

// PoolView is the /metrics "pool" section: the propose-compute
// pool's slot occupancy, queue-jump count and per-class wait
// accounting. Absent when the server runs without a pool.
type PoolView struct {
	Capacity int `json:"capacity"`
	InUse    int `json:"in_use"`
	// Preemptions counts latency-over-bulk queue jumps at slot
	// hand-off.
	Preemptions int64                `json:"preemptions"`
	Classes     map[string]ClassView `json:"classes"`
}

// ClassView is one priority class's slot history.
type ClassView struct {
	Acquires    int64   `json:"acquires"`
	Waited      int64   `json:"waited"`
	WaitSeconds float64 `json:"wait_seconds"`
}

// poolView snapshots a pool (nil in, nil out).
func poolView(p *schedule.Pool) *PoolView {
	if p == nil {
		return nil
	}
	st := p.Stats()
	v := &PoolView{
		Capacity:    p.Capacity(),
		InUse:       p.InUse(),
		Preemptions: st.Preemptions,
		Classes:     make(map[string]ClassView, 2),
	}
	for _, c := range []schedule.Class{schedule.Bulk, schedule.Latency} {
		cs := st.PerClass[c]
		v.Classes[c.String()] = ClassView{
			Acquires:    cs.Acquires,
			Waited:      cs.Waited,
			WaitSeconds: cs.WaitSeconds,
		}
	}
	return v
}

// View snapshots the counters. Reads are not mutually atomic — this is
// monitoring, not accounting.
func (m *Metrics) View() MetricsView {
	var v MetricsView
	v.Sessions.Created = m.SessionsCreated.Load()
	v.Sessions.Live = m.SessionsLive.Load()
	v.Sessions.Evicted = m.SessionsEvicted.Load()
	v.Sessions.Rehydrated = m.SessionsRehydrated.Load()
	v.Sessions.Finished = m.SessionsFinished.Load()
	v.Requests.Total = m.Requests.Load()
	v.Requests.Errors4xx = m.Errors4xx.Load()
	v.Requests.Errors5xx = m.Errors5xx.Load()
	v.Requests.Throttled = m.Throttled.Load()
	v.Requests.Conflicts = m.Conflicts.Load()
	v.Requests.ObsCapped = m.ObsCapped.Load()
	v.Trials.Proposals = m.Proposals.Load()
	v.Trials.Observations = m.Observations.Load()
	v.Trials.Skips = m.Skips.Load()
	v.ObserveLatency = m.ObserveLatency.view()
	return v
}

// MarshalJSON renders the snapshot, so a *Metrics can be encoded
// directly.
func (m *Metrics) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.View())
}
