// Package server implements robotuned: a long-running HTTP daemon
// hosting many concurrent journal-backed tuning sessions behind the
// ask/tell wire protocol. Clients create a session from a JSON spec,
// pull proposals, run them on whatever system they are tuning, and
// report observations back; every observation is journaled before the
// tuner acts on it, so a killed daemon restarted on the same journal
// directory resumes every session bit-identically.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Options configures a Server. The zero value is a usable ephemeral
// server: no journal directory (sessions die with the process), no
// tenant caps, no eviction.
type Options struct {
	// JournalDir is where session specs and journals live; "" disables
	// durability (and therefore eviction and restart recovery).
	JournalDir string
	// Shards is the session-table stripe count (default 16).
	Shards int
	// MaxSessions caps live (in-memory) sessions across all tenants;
	// 0 = unlimited.
	MaxSessions int
	// TenantSessions caps live sessions per tenant; 0 = unlimited.
	TenantSessions int
	// MaxObservations caps each session's applied observation history;
	// past the cap new observations answer 409 with code
	// "max_observations" until the client finishes the session.
	// 0 = unlimited. The cap bounds server-side memory and surrogate
	// cost per session regardless of the spec's nominal budget.
	MaxObservations int
	// TenantEvalsPerSec rate-limits observations per tenant (token
	// bucket, burst TenantBurst); 0 = unlimited.
	TenantEvalsPerSec float64
	// TenantBurst is the observation token-bucket depth (default
	// 2×TenantEvalsPerSec, minimum MaxBatch, when a rate is set).
	TenantBurst int
	// IdleTTL evicts sessions untouched this long (journal-backed
	// servers only); 0 disables eviction.
	IdleTTL time.Duration
	// EvictEvery is the janitor period (default IdleTTL/4, floor 1s).
	EvictEvery time.Duration
	// ProposeSlots bounds concurrent stepper Propose computations
	// across all sessions (ROBOTune's surrogate refit + acquisition
	// search — the CPU-heavy part of hosting a session). Sessions
	// whose spec asks priority "latency" overtake queued "bulk"
	// proposes at every slot hand-off; /metrics reports the
	// preemption and per-class wait accounting. 0 = unbounded.
	ProposeSlots int
	// Now is the clock (default time.Now); tests inject a fake one to
	// drive eviction and rate limiting deterministically.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 16
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.TenantEvalsPerSec > 0 && o.TenantBurst <= 0 {
		o.TenantBurst = int(2 * o.TenantEvalsPerSec)
		if o.TenantBurst < MaxBatch {
			o.TenantBurst = MaxBatch
		}
	}
	if o.EvictEvery <= 0 {
		o.EvictEvery = o.IdleTTL / 4
		if o.EvictEvery < time.Second {
			o.EvictEvery = time.Second
		}
	}
	return o
}

// Server is the robotuned HTTP service.
type Server struct {
	opts    Options
	store   *Store
	metrics *Metrics
	mux     *http.ServeMux

	draining atomic.Bool
	inflight atomic.Int64
}

// New builds a server. Call Handler for its http.Handler, Janitor to
// run idle eviction, and Shutdown before exit.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{opts: opts, metrics: &Metrics{}}
	s.store = newStore(opts, s.metrics)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("POST /v1/sessions/{id}/propose", s.handlePropose)
	mux.HandleFunc("POST /v1/sessions/{id}/observe", s.handleObserve)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// Handler returns the HTTP handler (request counting included).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		s.metrics.Requests.Add(1)
		s.mux.ServeHTTP(w, r)
	})
}

// StartDrain puts the server into draining mode: session creation
// answers 503 with code "draining", /healthz flips to 503 so load
// balancers stop routing here, and everything else keeps working —
// live sessions can still propose, observe, and finish, so clients
// get a window to checkpoint before the process exits. Idempotent.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// InFlight is the number of requests currently inside the handler;
// the shutdown path polls it to zero before closing journals.
func (s *Server) InFlight() int64 { return s.inflight.Load() }

// Metrics exposes the counter set (tests and the load harness read
// it directly).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Store exposes the session store (the janitor and tests).
func (s *Server) Store() *Store { return s.store }

// Janitor evicts idle sessions until ctx is cancelled. A server with
// no IdleTTL or no journal directory needs no janitor.
func (s *Server) Janitor(ctx context.Context) {
	if s.opts.IdleTTL <= 0 || s.opts.JournalDir == "" {
		return
	}
	t := time.NewTicker(s.opts.EvictEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.store.EvictIdle(s.opts.IdleTTL)
		}
	}
}

// Shutdown snapshots and closes every live session; the server
// rejects traffic afterwards. Safe to call once the HTTP listener has
// stopped accepting (or concurrently — in-flight requests either
// finish first or see 503).
func (s *Server) Shutdown() {
	s.store.Shutdown()
}

// --- Handlers --------------------------------------------------------

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeErr(w, errDraining("server is draining; create the session elsewhere"))
		return
	}
	body, aerr := readBody(w, r)
	if aerr != nil {
		s.writeErr(w, aerr)
		return
	}
	ps, err := DecodeSessionSpec(body)
	if err != nil {
		s.writeErr(w, errBadRequest("%v", err))
		return
	}
	tenant := tenantOf(r.Header.Get("X-Robotune-Tenant"))
	// The global cap reads the live gauge without store locks; a
	// slight overshoot under a create storm is acceptable.
	if s.opts.MaxSessions > 0 && s.metrics.SessionsLive.Load() >= int64(s.opts.MaxSessions) {
		s.metrics.Throttled.Add(1)
		s.writeErr(w, errThrottled("server at its %d-session capacity", s.opts.MaxSessions))
		return
	}
	sess, aerr := s.store.Create(tenant, ps)
	if aerr != nil {
		s.writeErr(w, aerr)
		return
	}
	sess.mu.Lock()
	st := sess.status(0)
	sess.mu.Unlock()
	writeJSON(w, http.StatusCreated, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"sessions": s.store.List()})
}

func (s *Server) handlePropose(w http.ResponseWriter, r *http.Request) {
	body, aerr := readBody(w, r)
	if aerr != nil {
		s.writeErr(w, aerr)
		return
	}
	req, err := DecodeProposeRequest(body)
	if err != nil {
		s.writeErr(w, errBadRequest("%v", err))
		return
	}
	sess, aerr := s.store.Touch(r.PathValue("id"))
	if aerr != nil {
		s.writeErr(w, aerr)
		return
	}
	resp, aerr := sess.propose(req.N)
	sess.mu.Unlock()
	if aerr != nil {
		s.writeErr(w, aerr)
		return
	}
	s.metrics.Proposals.Add(int64(len(resp.Proposals)))
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	body, aerr := readBody(w, r)
	if aerr != nil {
		s.writeErr(w, aerr)
		return
	}
	req, err := DecodeObserveBody(body)
	if err != nil {
		s.writeErr(w, errBadRequest("%v", err))
		return
	}
	tenant := tenantOf(r.Header.Get("X-Robotune-Tenant"))
	// Backpressure before any state changes: a throttled batch is
	// rejected whole, never half-applied.
	if aerr := s.store.chargeEvals(tenant, len(req.Observations)); aerr != nil {
		s.writeErr(w, aerr)
		return
	}
	sess, aerr := s.store.Touch(r.PathValue("id"))
	if aerr != nil {
		s.writeErr(w, aerr)
		return
	}
	applied, skips := 0, 0
	for _, o := range req.Observations {
		if oerr := sess.observe(o); oerr != nil {
			sess.mu.Unlock()
			s.metrics.Observations.Add(int64(applied))
			s.metrics.Skips.Add(int64(skips))
			if applied > 0 {
				oerr = &apiErr{status: oerr.status, code: oerr.code,
					message: fmt.Sprintf("%s (first %d observations of the batch were applied)", oerr.message, applied)}
			}
			s.writeErr(w, oerr)
			return
		}
		applied++
		if o.Skipped {
			skips++
		}
	}
	resp := ObserveResponse{
		Applied: applied,
		Trials:  len(sess.trace),
		Done:    sess.finished || sess.st.Done(),
		Found:   sess.found,
	}
	if sess.found {
		resp.BestSeconds = sess.bestSec
	}
	sess.mu.Unlock()
	s.metrics.Observations.Add(int64(applied))
	s.metrics.Skips.Add(int64(skips))
	s.metrics.ObserveLatency.Observe(time.Since(start))
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	tail := 32
	switch t := r.URL.Query().Get("trace"); t {
	case "":
	case "all":
		tail = 0
	default:
		n, err := strconv.Atoi(t)
		if err != nil || n < 0 {
			s.writeErr(w, errBadRequest("trace must be a non-negative integer or \"all\", got %q", t))
			return
		}
		tail = n
	}
	sess, aerr := s.store.Touch(r.PathValue("id"))
	if aerr != nil {
		s.writeErr(w, aerr)
		return
	}
	st := sess.status(tail)
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	sess, aerr := s.store.Touch(r.PathValue("id"))
	if aerr != nil {
		s.writeErr(w, aerr)
		return
	}
	res, aerr := sess.finish()
	sess.mu.Unlock()
	if aerr != nil {
		s.writeErr(w, aerr)
		return
	}
	s.store.Remove(sess)
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"ok":            false,
			"draining":      true,
			"sessions_live": s.metrics.SessionsLive.Load(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":            true,
		"sessions_live": s.metrics.SessionsLive.Load(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	doc := struct {
		MetricsView
		Surrogate SurrogateView `json:"surrogate"`
		Pool      *PoolView     `json:"pool,omitempty"`
	}{MetricsView: s.metrics.View(), Surrogate: s.store.SurrogateStats(), Pool: poolView(s.store.Pool())}
	writeJSON(w, http.StatusOK, doc)
}

// --- Plumbing --------------------------------------------------------

// readBody reads a capped request body. Oversize bodies 400 before a
// byte past the cap is buffered.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, *apiErr) {
	if r.Body == nil {
		return nil, nil
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	if err != nil {
		return nil, errBadRequest("read body: %v", err)
	}
	return body, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func (s *Server) writeErr(w http.ResponseWriter, e *apiErr) {
	switch {
	case e.status >= 500:
		s.metrics.Errors5xx.Add(1)
	case e.status >= 400:
		s.metrics.Errors4xx.Add(1)
	}
	switch e.code {
	case "conflict":
		s.metrics.Conflicts.Add(1)
	case "max_observations":
		s.metrics.ObsCapped.Add(1)
	}
	writeJSON(w, e.status, ErrorBody{Error: ErrorDetail{Code: e.code, Message: e.message}})
}
