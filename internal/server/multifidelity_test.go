package server_test

import (
	"math"
	"testing"

	"repro/client"
	"repro/internal/server"
)

// bohbSpec is a wire spec for a multi-fidelity session: a BOHB tuner
// with an explicit three-rung ladder and cost-aware acquisition.
func bohbSpec(budget int, seed uint64) client.SessionSpec {
	sp := spec("bohb", budget, seed)
	sp.Options.FidelityLadder = []float64{0.25, 0.5, 1}
	sp.Options.CostAware = true
	return sp
}

// TestBOHBOverWire drives a multi-fidelity session through the wire
// protocol end to end: proposals carry the rung fidelity, observations
// echo it, the trace marks proxies, and the incumbent only ever comes
// from a full-fidelity completion.
func TestBOHBOverWire(t *testing.T) {
	env := newEnv(t, server.Options{JournalDir: t.TempDir()})
	sess, err := env.cl.Create(bohbSpec(20, 5))
	if err != nil {
		t.Fatal(err)
	}

	ladder := map[float64]bool{0.25: true, 0.5: true}
	proxies, fulls := 0, 0
	for i := 0; i < 10_000; i++ {
		props, done, err := sess.Propose(0)
		if err != nil {
			t.Fatalf("propose: %v", err)
		}
		if len(props) == 0 {
			if done {
				break
			}
			t.Fatal("stepper idle with nothing outstanding")
		}
		for _, p := range props {
			if p.FidelityStage != 0 {
				t.Fatalf("unexpected stage fidelity %v on the wire", p.FidelityStage)
			}
			sec, ok := objective(p.Config)
			if p.FidelityInput > 0 && p.FidelityInput < 1 {
				if !ladder[p.FidelityInput] {
					t.Fatalf("proposal fidelity %v is not a ladder rung", p.FidelityInput)
				}
				sec *= p.FidelityInput
				proxies++
			} else {
				fulls++
			}
			obs := client.Observation{
				Config: p.Config, Seconds: sec, Completed: ok,
				FidelityInput: p.FidelityInput, FidelityStage: p.FidelityStage,
			}
			if _, err := sess.Observe(obs); err != nil {
				t.Fatalf("observe: %v", err)
			}
		}
	}
	if proxies == 0 || fulls == 0 {
		t.Fatalf("want a mix of fidelities, got %d proxies / %d full", proxies, fulls)
	}

	st, err := sess.FullStatus()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.TraceProxy) != st.Trials || len(st.Trace) != st.Trials {
		t.Fatalf("trace_proxy has %d entries for %d trials", len(st.TraceProxy), st.Trials)
	}
	gotProxies := 0
	bestFull := math.Inf(1)
	for i, isProxy := range st.TraceProxy {
		if isProxy {
			gotProxies++
		} else if st.Completed[i] && st.Trace[i] < bestFull {
			bestFull = st.Trace[i]
		}
	}
	if gotProxies != proxies {
		t.Fatalf("trace_proxy marks %d proxies, client ran %d", gotProxies, proxies)
	}
	if !st.Found || st.BestSeconds != bestFull {
		t.Fatalf("incumbent %v (found=%v), want best full-fidelity completion %v",
			st.BestSeconds, st.Found, bestFull)
	}
	if _, err := sess.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestBOHBStageAxisOverWire: with options.fidelity_axis "stage" the
// proposals carry stage-fraction fidelities on the wire (input scale
// zero), and a bad axis is rejected at session creation.
func TestBOHBStageAxisOverWire(t *testing.T) {
	env := newEnv(t, server.Options{})

	bad := bohbSpec(10, 3)
	bad.Options.FidelityAxis = "volume"
	if _, err := env.cl.Create(bad); err == nil {
		t.Fatal("bad fidelity axis accepted")
	}

	sp := bohbSpec(20, 5)
	sp.Options.FidelityAxis = "stage"
	sess, err := env.cl.Create(sp)
	if err != nil {
		t.Fatal(err)
	}
	stages := 0
	for i := 0; i < 10_000; i++ {
		props, done, err := sess.Propose(0)
		if err != nil {
			t.Fatalf("propose: %v", err)
		}
		if len(props) == 0 {
			if done {
				break
			}
			t.Fatal("stepper idle with nothing outstanding")
		}
		for _, p := range props {
			if p.FidelityInput != 0 {
				t.Fatalf("stage-axis proposal carries input scale %v", p.FidelityInput)
			}
			sec, ok := objective(p.Config)
			if p.FidelityStage > 0 && p.FidelityStage < 1 {
				sec *= p.FidelityStage
				stages++
			}
			obs := client.Observation{
				Config: p.Config, Seconds: sec, Completed: ok,
				FidelityInput: p.FidelityInput, FidelityStage: p.FidelityStage,
			}
			if _, err := sess.Observe(obs); err != nil {
				t.Fatalf("observe: %v", err)
			}
		}
	}
	if stages == 0 {
		t.Fatal("no stage-fraction proxies proposed")
	}
	st, err := sess.FullStatus()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Found {
		t.Fatal("no incumbent")
	}
}

// TestObserveRejectsMalformedFidelity: fidelity fields outside [0, 1]
// are rejected with a 400 before they can reach the journal, and the
// pending proposal stays observable.
func TestObserveRejectsMalformedFidelity(t *testing.T) {
	env := newEnv(t, server.Options{})
	sess, err := env.cl.Create(spec("randomsearch", 4, 9))
	if err != nil {
		t.Fatal(err)
	}
	props, _, err := sess.Propose(1)
	if err != nil || len(props) != 1 {
		t.Fatalf("propose: %v %v", props, err)
	}
	bad := []client.Observation{
		{Config: props[0].Config, Seconds: 5, Completed: true, FidelityInput: 1.5},
		{Config: props[0].Config, Seconds: 5, Completed: true, FidelityStage: -0.25},
		{Config: props[0].Config, Skipped: true, FidelityInput: 2},
		{Config: props[0].Config, Seconds: 5, Completed: true, Cap: -1},
	}
	for _, o := range bad {
		if _, err := sess.Observe(o); err == nil {
			t.Fatalf("malformed observation accepted: %+v", o)
		}
	}
	if _, err := sess.Observe(client.Observation{Config: props[0].Config, Seconds: 5, Completed: true}); err != nil {
		t.Fatalf("pending proposal unobservable after rejections: %v", err)
	}
}

// TestBOHBWireRestartResume: a server restart mid-bracket resumes the
// multi-fidelity session bit-identically — same trace, same proxy
// flags, same incumbent — because the journal records each trial's
// fidelity and replay rebuilds the bracket state from it.
func TestBOHBWireRestartResume(t *testing.T) {
	sp := bohbSpec(17, 12)

	// Uninterrupted baseline.
	base := newEnv(t, server.Options{JournalDir: t.TempDir()})
	bs, err := base.cl.Create(sp)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, bs)
	baseSt, err := bs.FullStatus()
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: seven observations (mid-rung for the 3^2-trial
	// first rung of a 3-rung bracket), then a full server restart.
	dir := t.TempDir()
	envA := newEnv(t, server.Options{JournalDir: dir})
	sa, err := envA.cl.Create(sp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		props, done, err := sa.Propose(1)
		if err != nil {
			t.Fatal(err)
		}
		if done || len(props) == 0 {
			break
		}
		p := props[0]
		sec, ok := objective(p.Config)
		if p.FidelityInput > 0 && p.FidelityInput < 1 {
			sec *= p.FidelityInput
		}
		obs := client.Observation{
			Config: p.Config, Seconds: sec, Completed: ok,
			FidelityInput: p.FidelityInput, FidelityStage: p.FidelityStage,
		}
		if _, err := sa.Observe(obs); err != nil {
			t.Fatal(err)
		}
	}
	envA.ts.Close()
	envA.srv.Shutdown()

	envB := newEnv(t, server.Options{JournalDir: dir})
	sb, err := envB.cl.Attach(sa.ID)
	if err != nil {
		t.Fatalf("attach after restart: %v", err)
	}
	st, err := sb.Status()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Resumed || st.Trials != 7 {
		t.Fatalf("after restart: resumed=%v trials=%d, want resumed with 7", st.Resumed, st.Trials)
	}
	if st.Diverged != "" {
		t.Fatalf("replay diverged: %s", st.Diverged)
	}
	drive(t, sb)
	resSt, err := sb.FullStatus()
	if err != nil {
		t.Fatal(err)
	}

	if len(resSt.Trace) != len(baseSt.Trace) {
		t.Fatalf("trace lengths: restarted %d vs baseline %d", len(resSt.Trace), len(baseSt.Trace))
	}
	for i := range resSt.Trace {
		if resSt.Trace[i] != baseSt.Trace[i] || resSt.TraceProxy[i] != baseSt.TraceProxy[i] {
			t.Fatalf("trial %d drifted: %x/proxy=%v vs baseline %x/proxy=%v",
				i, resSt.Trace[i], resSt.TraceProxy[i], baseSt.Trace[i], baseSt.TraceProxy[i])
		}
	}
	if resSt.BestSeconds != baseSt.BestSeconds || resSt.Evals != baseSt.Evals {
		t.Fatalf("result drifted: best %x/%d vs baseline %x/%d",
			resSt.BestSeconds, resSt.Evals, baseSt.BestSeconds, baseSt.Evals)
	}
}
