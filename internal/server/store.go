package server

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/bo"
	"repro/internal/schedule"
)

// Store is the sharded in-memory session table. Lookups hash the
// session id onto one of N mutex-striped shards, so concurrent
// traffic on different sessions never serializes on a global lock;
// per-tenant accounting lives behind its own small mutex because it
// is touched once per request, not once per trial.
type Store struct {
	opts    Options
	shards  []shard
	metrics *Metrics
	// pool is the shared propose-compute pool (nil when Options
	// .ProposeSlots is 0); every session built by this store charges
	// its Propose calls against it in the session's priority class.
	pool *schedule.Pool

	tenantMu sync.Mutex
	tenants  map[string]*tenantState

	closedMu sync.RWMutex
	closed   bool
}

type shard struct {
	mu sync.Mutex
	m  map[string]*session
	// flight serializes rehydration per session id so two concurrent
	// touches of an evicted session open its journal exactly once.
	flight map[string]chan struct{}
}

type tenantState struct {
	live   int
	tokens float64
	last   time.Time
}

// newStore builds the store; opts must already have defaults applied.
func newStore(opts Options, m *Metrics) *Store {
	st := &Store{opts: opts, metrics: m, tenants: make(map[string]*tenantState)}
	if opts.ProposeSlots > 0 {
		st.pool = schedule.NewPool(opts.ProposeSlots)
	}
	st.shards = make([]shard, opts.Shards)
	for i := range st.shards {
		st.shards[i].m = make(map[string]*session)
		st.shards[i].flight = make(map[string]chan struct{})
	}
	return st
}

func (st *Store) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &st.shards[h.Sum32()%uint32(len(st.shards))]
}

// newID returns a fresh session id, unique across restarts (ids are
// random, and the spec file on disk is created with O_EXCL).
func newID() (string, error) {
	var b [9]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return "s" + hex.EncodeToString(b[:]), nil
}

// validID rejects ids that could escape the journal directory.
func validID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, r := range id {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '-' || r == '_') {
			return false
		}
	}
	return true
}

func (st *Store) specPath(id string) string {
	return filepath.Join(st.opts.JournalDir, id+".spec.json")
}

func (st *Store) journalPath(id string) string {
	return filepath.Join(st.opts.JournalDir, id+".jnl")
}

// persistedSpec is the on-disk session record: the validated spec
// plus the owning tenant, so rehydration restores accounting too.
type persistedSpec struct {
	Tenant string      `json:"tenant"`
	Spec   SessionSpec `json:"spec"`
}

// Create builds a new session, persists its spec (when the server is
// durable) and registers it.
func (st *Store) Create(tenant string, ps ParsedSpec) (*session, *apiErr) {
	if err := st.checkClosed(); err != nil {
		return nil, err
	}
	if aerr := st.admitSession(tenant); aerr != nil {
		return nil, aerr
	}
	id, err := newID()
	if err != nil {
		st.releaseSession(tenant)
		return nil, errInternal("id generation failed: %v", err)
	}
	jnlPath := ""
	if st.opts.JournalDir != "" {
		if err := os.MkdirAll(st.opts.JournalDir, 0o755); err != nil {
			st.releaseSession(tenant)
			return nil, errInternal("journal dir: %v", err)
		}
		if err := writeSpecFile(st.specPath(id), persistedSpec{Tenant: tenant, Spec: ps.Spec}); err != nil {
			st.releaseSession(tenant)
			return nil, errInternal("persist spec: %v", err)
		}
		jnlPath = st.journalPath(id)
	}
	s, err := newSession(id, tenant, ps, jnlPath, st.opts.Now().Unix(), st.opts.MaxObservations, st.pool)
	if err != nil {
		st.releaseSession(tenant)
		if st.opts.JournalDir != "" {
			os.Remove(st.specPath(id))
		}
		return nil, errInternal("build session: %v", err)
	}
	sh := st.shardFor(id)
	sh.mu.Lock()
	sh.m[id] = s
	sh.mu.Unlock()
	st.metrics.SessionsCreated.Add(1)
	st.metrics.SessionsLive.Add(1)
	return s, nil
}

// writeSpecFile persists the spec atomically (temp + rename), failing
// if a session with this id already exists on disk.
func writeSpecFile(path string, ps persistedSpec) error {
	if _, err := os.Stat(path); err == nil {
		return fmt.Errorf("session spec %s already exists", path)
	}
	data, err := json.MarshalIndent(ps, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Get returns the live session for id, rehydrating it from disk when
// it was evicted or the server restarted. The returned session is
// registered; callers lock it before use and must re-check evicted
// (Touch does this loop for them).
func (st *Store) Get(id string) (*session, *apiErr) {
	if !validID(id) {
		return nil, errBadRequest("invalid session id")
	}
	if err := st.checkClosed(); err != nil {
		return nil, err
	}
	sh := st.shardFor(id)
	for attempt := 0; attempt < 100; attempt++ {
		sh.mu.Lock()
		if s, ok := sh.m[id]; ok {
			sh.mu.Unlock()
			return s, nil
		}
		if st.opts.JournalDir == "" {
			sh.mu.Unlock()
			return nil, errNotFound("unknown session %q", id)
		}
		// Miss: rehydrate, serialized per id.
		if ch, inFlight := sh.flight[id]; inFlight {
			sh.mu.Unlock()
			<-ch
			continue // re-check the map
		}
		ch := make(chan struct{})
		sh.flight[id] = ch
		sh.mu.Unlock()

		s, aerr := st.rehydrate(id)

		sh.mu.Lock()
		delete(sh.flight, id)
		close(ch)
		if aerr != nil {
			sh.mu.Unlock()
			return nil, aerr
		}
		sh.m[id] = s
		sh.mu.Unlock()
		st.metrics.SessionsRehydrated.Add(1)
		st.metrics.SessionsLive.Add(1)
		return s, nil
	}
	return nil, errInternal("session %q thrashing between eviction and rehydration", id)
}

// rehydrate rebuilds a session from its persisted spec and journal.
func (st *Store) rehydrate(id string) (*session, *apiErr) {
	data, err := os.ReadFile(st.specPath(id))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, errNotFound("unknown session %q", id)
		}
		return nil, errInternal("read spec: %v", err)
	}
	var ps persistedSpec
	if err := json.Unmarshal(data, &ps); err != nil {
		return nil, errInternal("corrupt spec for session %q: %v", id, err)
	}
	parsed, err := ValidateSessionSpec(ps.Spec)
	if err != nil {
		return nil, errInternal("persisted spec for session %q no longer validates: %v", id, err)
	}
	tenant := ps.Tenant
	if tenant == "" {
		tenant = "default"
	}
	s, err := newSession(id, tenant, parsed, st.journalPath(id), st.opts.Now().Unix(), st.opts.MaxObservations, st.pool)
	if err != nil {
		return nil, errInternal("rehydrate session %q: %v", id, err)
	}
	st.bumpTenantLive(tenant, 1)
	return s, nil
}

// Touch returns the session locked and time-stamped, retrying when an
// eviction races the lookup. Callers must Unlock it.
func (st *Store) Touch(id string) (*session, *apiErr) {
	for {
		s, aerr := st.Get(id)
		if aerr != nil {
			return nil, aerr
		}
		s.mu.Lock()
		if s.evicted {
			s.mu.Unlock()
			continue // janitor won the race; rehydrate on the next Get
		}
		s.lastTouch.Store(st.opts.Now().Unix())
		return s, nil
	}
}

// Remove unregisters a finished session (its journal is already
// closed). The spec and journal stay on disk: a later touch
// rehydrates the sealed session and serves its recorded result.
func (st *Store) Remove(s *session) {
	sh := st.shardFor(s.id)
	sh.mu.Lock()
	if cur, ok := sh.m[s.id]; ok && cur == s {
		delete(sh.m, s.id)
		st.metrics.SessionsLive.Add(-1)
		st.metrics.SessionsFinished.Add(1)
	}
	sh.mu.Unlock()
	st.bumpTenantLive(s.tenant, -1)
}

// EvictIdle suspends sessions untouched for longer than ttl: their
// journals get a shutdown snapshot and are closed, and the next touch
// rehydrates them from disk. Returns how many sessions were evicted.
// On an ephemeral server (no journal dir) nothing is ever evicted —
// there would be nothing to rehydrate from.
func (st *Store) EvictIdle(ttl time.Duration) int {
	if st.opts.JournalDir == "" || ttl <= 0 {
		return 0
	}
	cutoff := st.opts.Now().Add(-ttl).Unix()
	evicted := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		for id, s := range sh.m {
			if s.lastTouch.Load() > cutoff {
				continue
			}
			s.mu.Lock()
			if s.lastTouch.Load() > cutoff { // touched while we waited
				s.mu.Unlock()
				continue
			}
			s.evicted = true
			s.suspend("evict")
			s.mu.Unlock()
			delete(sh.m, id)
			st.bumpTenantLive(s.tenant, -1)
			st.metrics.SessionsLive.Add(-1)
			st.metrics.SessionsEvicted.Add(1)
			evicted++
		}
		sh.mu.Unlock()
	}
	return evicted
}

// Shutdown snapshots and closes every live session. The store rejects
// all traffic afterwards.
func (st *Store) Shutdown() {
	st.closedMu.Lock()
	st.closed = true
	st.closedMu.Unlock()
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		for id, s := range sh.m {
			s.mu.Lock()
			s.evicted = true
			s.suspend("shutdown")
			s.mu.Unlock()
			delete(sh.m, id)
			st.metrics.SessionsLive.Add(-1)
		}
		sh.mu.Unlock()
	}
}

func (st *Store) checkClosed() *apiErr {
	st.closedMu.RLock()
	defer st.closedMu.RUnlock()
	if st.closed {
		return &apiErr{status: 503, code: "shutting_down", message: "server is shutting down"}
	}
	return nil
}

// List returns the ids of live (in-memory) sessions, most recently
// touched last; informational only.
// SurrogateStats sums the refit-cadence accounting of every live
// session whose stepper exposes it. Sessions are collected under the
// shard locks, then each is sampled under its own lock — never both at
// once, matching the lock order everywhere else in the store.
func (st *Store) SurrogateStats() SurrogateView {
	type statser interface {
		SurrogateStats() (bo.RefitStats, bool)
	}
	var live []*session
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		for _, s := range sh.m {
			live = append(live, s)
		}
		sh.mu.Unlock()
	}
	var v SurrogateView
	for _, s := range live {
		s.mu.Lock()
		ss, ok := s.st.(statser)
		var rs bo.RefitStats
		if ok {
			rs, ok = ss.SurrogateStats()
		}
		s.mu.Unlock()
		if !ok {
			continue
		}
		v.Sessions++
		v.HyperRefits += rs.HyperRefits
		v.PosteriorRefits += rs.PosteriorRefits
		v.Extends += rs.Extends
		v.RefitSeconds += rs.RefitSeconds
		v.Observations += rs.Observations
		if rs.Sparse {
			v.SparseSessions++
			v.ActivePoints += rs.ActiveSize
		} else {
			v.ActivePoints += rs.Observations
		}
	}
	return v
}

// Pool exposes the propose-compute pool (nil when unbounded); the
// metrics endpoint snapshots its preemption and wait accounting.
func (st *Store) Pool() *schedule.Pool { return st.pool }

func (st *Store) List() []string {
	var ids []string
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		for id := range sh.m {
			ids = append(ids, id)
		}
		sh.mu.Unlock()
	}
	return ids
}

// --- Per-tenant budgets ----------------------------------------------

func tenantOf(header string) string {
	t := strings.TrimSpace(header)
	if t == "" {
		return "default"
	}
	if len(t) > 128 {
		t = t[:128]
	}
	return t
}

// admitSession charges one live session against the tenant's cap.
func (st *Store) admitSession(tenant string) *apiErr {
	st.tenantMu.Lock()
	defer st.tenantMu.Unlock()
	ts := st.tenant(tenant)
	if st.opts.TenantSessions > 0 && ts.live >= st.opts.TenantSessions {
		st.metrics.Throttled.Add(1)
		return errThrottled("tenant %q has %d live sessions (cap %d); finish or wait for eviction",
			tenant, ts.live, st.opts.TenantSessions)
	}
	ts.live++
	return nil
}

func (st *Store) releaseSession(tenant string) { st.bumpTenantLive(tenant, -1) }

func (st *Store) bumpTenantLive(tenant string, delta int) {
	st.tenantMu.Lock()
	defer st.tenantMu.Unlock()
	ts := st.tenant(tenant)
	ts.live += delta
	if ts.live < 0 {
		ts.live = 0
	}
}

// chargeEvals spends n observation tokens from the tenant's bucket
// (refilled at TenantEvalsPerSec, burst TenantBurst). Zero rate means
// unlimited. This is backpressure, not billing: a 429 tells the
// client to slow down, nothing is partially applied.
func (st *Store) chargeEvals(tenant string, n int) *apiErr {
	if st.opts.TenantEvalsPerSec <= 0 {
		return nil
	}
	st.tenantMu.Lock()
	defer st.tenantMu.Unlock()
	ts := st.tenant(tenant)
	now := st.opts.Now()
	burst := float64(st.opts.TenantBurst)
	ts.tokens += now.Sub(ts.last).Seconds() * st.opts.TenantEvalsPerSec
	ts.last = now
	if ts.tokens > burst {
		ts.tokens = burst
	}
	if ts.tokens < float64(n) {
		st.metrics.Throttled.Add(1)
		return errThrottled("tenant %q exceeded %g observations/s (burst %d); retry later",
			tenant, st.opts.TenantEvalsPerSec, st.opts.TenantBurst)
	}
	ts.tokens -= float64(n)
	return nil
}

func (st *Store) tenant(name string) *tenantState {
	ts, ok := st.tenants[name]
	if !ok {
		ts = &tenantState{tokens: float64(st.opts.TenantBurst), last: st.opts.Now()}
		st.tenants[name] = ts
	}
	return ts
}
