package server

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/backend"
	"repro/internal/cli"
	"repro/internal/conf"
	"repro/internal/journal"
	"repro/internal/schedule"
	"repro/internal/tuners"
)

// session is one hosted tuning session: a stepper, its journal, and
// the protocol bookkeeping that turns the in-process ask/tell
// contract into a crash-safe wire protocol. All fields below mu are
// guarded by it; lastTouch is atomic so the eviction janitor can scan
// without taking session locks.
type session struct {
	id     string
	tenant string
	spec   SessionSpec
	space  *conf.Space

	created   int64
	lastTouch atomic.Int64
	// maxObs caps the applied observation history (Options
	// .MaxObservations); 0 = unlimited.
	maxObs int

	mu sync.Mutex
	st tuners.Stepper
	jn *journal.Journal // nil on an ephemeral (journal-less) server

	// pool gates the stepper's propose computation when the server runs
	// with a bounded compute pool (nil = ungated); class is the spec's
	// slot priority.
	pool  *schedule.Pool
	class schedule.Class

	// pending counts proposed-but-unobserved configurations by
	// Config.Key — the server-side mirror of the stepper's Protocol
	// state, checked before Observe so protocol misuse surfaces as a
	// 409 instead of a panic.
	pending map[string]int
	// unclaimed holds proposals regenerated during journal replay that
	// no live client has received yet (their original handout died with
	// the previous process). They are served before new stepper
	// proposals so a reattaching client picks up exactly where the
	// crashed conversation stopped.
	unclaimed []unclaimedProposal

	// Incumbent / history (mirrors tuners.tracker; the generic
	// steppers do not expose theirs).
	trace     []float64
	completed []bool
	proxy     []bool
	best      conf.Config
	bestSec   float64
	found     bool
	evals     int
	cost      float64
	failed    int
	skipped   int

	resumed  bool
	evicted  bool
	finished bool
	sealed   bool // done record appended
	poisoned error
	result   *ResultResponse
}

type unclaimedProposal struct {
	prop tuners.Proposal
	key  string
}

// apiErr is an error with an HTTP mapping.
type apiErr struct {
	status  int
	code    string
	message string
}

func (e *apiErr) Error() string { return e.message }

func errBadRequest(format string, args ...any) *apiErr {
	return &apiErr{status: 400, code: "bad_request", message: fmt.Sprintf(format, args...)}
}

func errConflict(format string, args ...any) *apiErr {
	return &apiErr{status: 409, code: "conflict", message: fmt.Sprintf(format, args...)}
}

func errNotFound(format string, args ...any) *apiErr {
	return &apiErr{status: 404, code: "not_found", message: fmt.Sprintf(format, args...)}
}

func errThrottled(format string, args ...any) *apiErr {
	return &apiErr{status: 429, code: "throttled", message: fmt.Sprintf(format, args...)}
}

func errInternal(format string, args ...any) *apiErr {
	return &apiErr{status: 500, code: "internal", message: fmt.Sprintf(format, args...)}
}

func errGone(format string, args ...any) *apiErr {
	return &apiErr{status: 410, code: "finished", message: fmt.Sprintf(format, args...)}
}

// errDraining is the shutdown signal: the server still serves its
// live sessions but accepts no new ones.
func errDraining(format string, args ...any) *apiErr {
	return &apiErr{status: 503, code: "draining", message: fmt.Sprintf(format, args...)}
}

// errMaxObservations shares the 409 status with errConflict but keeps
// a distinct code so clients can tell "resend/dedupe" (conflict) from
// "this session is full, stop sending" (max_observations).
func errMaxObservations(format string, args ...any) *apiErr {
	return &apiErr{status: 409, code: "max_observations", message: fmt.Sprintf(format, args...)}
}

// journalMeta derives the journal identity from a spec. A rehydration
// whose journal was recorded under different parameters is rejected by
// the journal's own meta validation.
func journalMeta(spec SessionSpec, space *conf.Space) journal.Meta {
	return journal.Meta{
		Seed:      spec.Seed,
		Budget:    spec.Budget,
		Workload:  spec.Workload,
		Dataset:   spec.Dataset,
		Tuner:     spec.Tuner,
		SpaceHash: space.Fingerprint(),
	}
}

// newSession builds (or rebuilds) a session from its validated spec.
// journalPath == "" makes the session ephemeral. When the journal
// already holds records, they are replayed through a fresh stepper —
// the bit-identical resume path — and any proposals regenerated along
// the way that the journal never saw observed become the unclaimed
// queue.
func newSession(id, tenant string, ps ParsedSpec, journalPath string, nowUnix int64, maxObs int, pool *schedule.Pool) (*session, error) {
	st, err := cli.BuildStepper(ps.Spec.Tuner, ps.Space, ps.Spec.Budget, ps.Spec.Seed,
		ps.Spec.Workload, ps.Spec.Dataset, ps.Spec.Options.coreOptions())
	if err != nil {
		return nil, err
	}
	s := &session{
		id:      id,
		tenant:  tenant,
		spec:    ps.Spec,
		space:   ps.Space,
		created: nowUnix,
		maxObs:  maxObs,
		st:      st,
		pool:    pool,
		class:   ps.Spec.Class(),
		pending: make(map[string]int),
		bestSec: math.Inf(1),
	}
	s.lastTouch.Store(nowUnix)
	if journalPath != "" {
		policy := journal.SyncAlways
		if ps.Spec.Sync == "none" {
			policy = journal.SyncNone
		}
		jn, err := journal.Open(journalPath, journalMeta(ps.Spec, ps.Space), policy)
		if err != nil {
			return nil, err
		}
		s.jn = jn
		if jn.Resumed() {
			s.resumed = true
			s.replay()
		}
	}
	return s, nil
}

// stepperPropose calls Propose with panics converted to errors; a
// panic poisons nothing by itself (Propose panics only on
// propose-after-done, before mutating state). On a server with a
// bounded compute pool the call holds one slot in the session's
// priority class — Propose is where ROBOTune refits its surrogate and
// searches the acquisition, the expensive part of hosting a session —
// so "latency" sessions overtake queued "bulk" refits.
func (s *session) stepperPropose(n int) (props []tuners.Proposal, err error) {
	if s.pool != nil {
		s.pool.Acquire(s.class)
		defer s.pool.Release()
	}
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("propose: %v", p)
		}
	}()
	return s.st.Propose(n), nil
}

// stepperObserve calls Observe with panics converted to errors.
// Protocol.Observed panics before any stepper state changes, so a
// recovered panic leaves the session consistent.
func (s *session) stepperObserve(c conf.Config, rec backend.EvalRecord) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("observe: %v", p)
		}
	}()
	s.st.Observe(c, rec)
	return nil
}

// register adds freshly proposed trials to the pending ledger.
func (s *session) register(props []tuners.Proposal) {
	for _, p := range props {
		s.pending[p.Config.Key()]++
	}
}

// replay feeds the journal's recovered records through the fresh
// stepper: for each journaled observation, proposals are drawn one at
// a time until the journaled configuration is pending (steppers
// propose deterministically, so the regenerated stream matches the
// original), then the recorded outcome is observed. A mismatch —
// corrupt record, diverged stepper — aborts replay, truncating the
// stale tail exactly like the in-process resume path.
func (s *session) replay() {
	jn := s.jn
	// Bounds the propose loop against a diverged stepper that keeps
	// emitting non-matching proposals.
	guard := s.spec.Budget*4 + 256
	for {
		e, ok := jn.PeekReplay()
		if !ok {
			break
		}
		cfg, err := s.space.FromRaw(e.Config)
		if err != nil {
			jn.AbortReplay(fmt.Sprintf("trial %d: journaled config invalid for the session space: %v", e.Trial, err))
			break
		}
		key := cfg.Key()
		diverged := false
		for s.pending[key] == 0 {
			if guard <= 0 || s.st.Done() {
				jn.AbortReplay(fmt.Sprintf("trial %d: stepper never re-proposed the journaled config", e.Trial))
				diverged = true
				break
			}
			guard--
			props, perr := s.stepperPropose(1)
			if perr != nil || len(props) == 0 {
				jn.AbortReplay(fmt.Sprintf("trial %d: stepper stopped proposing before the journaled config", e.Trial))
				diverged = true
				break
			}
			s.register(props)
			for _, p := range props {
				s.unclaimed = append(s.unclaimed, unclaimedProposal{prop: p, key: p.Config.Key()})
			}
		}
		if diverged {
			break
		}
		jn.NextReplay()
		rec := backend.EvalRecord{
			Config:     cfg,
			Seconds:    e.Seconds,
			Raw:        e.Raw,
			Completed:  e.Completed,
			OOM:        e.OOM,
			Infeasible: e.Infeasible,
			Transient:  e.Transient,
			Skipped:    e.Skipped,
			Fidelity:   backend.Fidelity{InputScale: e.FidelityInput, StageFrac: e.FidelityStage},
		}
		if oerr := s.stepperObserve(cfg, rec); oerr != nil {
			jn.AbortReplay(fmt.Sprintf("trial %d: replayed observation rejected by the stepper: %v", e.Trial, oerr))
			break
		}
		s.consumePending(key)
		s.note(cfg, rec, e.ObjEvals, e.ObjCost)
	}
	if d, ok := jn.Done(); ok {
		// A done record is authoritative: the session was sealed (to
		// completion, or early by an explicit finish) and must come back
		// sealed — reproduce its recorded result without spending
		// anything. The stepper may disagree (an early finish leaves it
		// mid-campaign); the seal wins.
		s.finished, s.sealed = true, true
		s.result = s.resultFromDone(d)
	}
}

// consumePending removes one pending count for key and drops the
// first matching unclaimed proposal, if any (an observation may race
// ahead of the client re-claiming it).
func (s *session) consumePending(key string) {
	if s.pending[key] <= 1 {
		delete(s.pending, key)
	} else {
		s.pending[key]--
	}
	for i := range s.unclaimed {
		if s.unclaimed[i].key == key {
			s.unclaimed = append(s.unclaimed[:i], s.unclaimed[i+1:]...)
			break
		}
	}
}

// note updates the incumbent, trace and counters for one observation.
// evalsAfter/costAfter are the post-trial counter values (from the
// journal during replay, computed live otherwise).
func (s *session) note(c conf.Config, rec backend.EvalRecord, evalsAfter int, costAfter float64) {
	if rec.Skipped {
		s.skipped++
		return
	}
	s.trace = append(s.trace, rec.Seconds)
	s.completed = append(s.completed, rec.Completed)
	s.proxy = append(s.proxy, !rec.Fidelity.Full())
	if !rec.Completed {
		s.failed++
	}
	// Only full-fidelity completions can take the incumbent: a
	// reduced-fidelity run's seconds measure a scaled-down workload and
	// are incomparable with full-fidelity observations.
	if rec.Completed && rec.Fidelity.Full() && rec.Seconds < s.bestSec {
		s.best, s.bestSec, s.found = c, rec.Seconds, true
	}
	s.evals = evalsAfter
	s.cost = costAfter
}

// propose hands out up to n trials (n <= 0 or > MaxBatch means
// MaxBatch): first the unclaimed queue left behind by a resume, then
// fresh stepper proposals.
func (s *session) propose(n int) (ProposeResponse, *apiErr) {
	if s.poisoned != nil {
		return ProposeResponse{}, errInternal("session is poisoned: %v", s.poisoned)
	}
	want := n
	if want <= 0 || want > MaxBatch {
		want = MaxBatch
	}
	out := make([]WireProposal, 0, min(want, 16))
	for len(s.unclaimed) > 0 && len(out) < want {
		u := s.unclaimed[0]
		s.unclaimed = s.unclaimed[1:]
		out = append(out, wireProposal(u.prop))
	}
	if len(out) < want && !s.finished && !s.st.Done() {
		props, err := s.stepperPropose(want - len(out))
		if err != nil {
			return ProposeResponse{}, errConflict("%v", err)
		}
		s.register(props)
		for _, p := range props {
			out = append(out, wireProposal(p))
		}
	}
	return ProposeResponse{
		Proposals:   out,
		Done:        s.finished || s.st.Done(),
		Outstanding: s.outstanding(),
	}, nil
}

// wireProposal maps an in-process proposal onto its wire form,
// including the fidelity the client must evaluate (and echo back) at.
func wireProposal(p tuners.Proposal) WireProposal {
	return WireProposal{
		Config:        p.Config.ToMap(),
		Cap:           p.Cap,
		FidelityInput: p.Fidelity.InputScale,
		FidelityStage: p.Fidelity.StageFrac,
	}
}

func (s *session) outstanding() int {
	total := 0
	for _, c := range s.pending {
		total += c
	}
	return total
}

// observe applies one client-reported outcome: it must match a
// pending proposal (409 otherwise), is committed to the journal
// before the stepper acts on it, and then advances the stepper.
func (s *session) observe(o Observation) *apiErr {
	if s.poisoned != nil {
		return errInternal("session is poisoned: %v", s.poisoned)
	}
	if s.finished {
		return errGone("session already finished")
	}
	cfg, err := s.space.FromRaw(o.Config)
	if err != nil {
		return errBadRequest("%v", err)
	}
	key := cfg.Key()
	if s.pending[key] == 0 {
		return errConflict("no matching pending proposal for the observed config (never proposed, already observed, or lost to a restart)")
	}
	rec := backend.EvalRecord{
		Config:     cfg,
		Seconds:    o.Seconds,
		Raw:        o.Raw,
		Completed:  o.Completed,
		OOM:        o.OOM,
		Infeasible: o.Infeasible,
		Transient:  o.Transient,
		Skipped:    o.Skipped,
		Fidelity:   backend.Fidelity{InputScale: o.FidelityInput, StageFrac: o.FidelityStage},
	}
	// The cap counts evaluated (non-skipped) observations — the ones
	// that grow the surrogate and the replayable history. Skips stay
	// exempt so a client at the cap can still resolve its outstanding
	// proposals before finishing. Checked before the journal append, so
	// a rejected observation leaves no state anywhere.
	if s.maxObs > 0 && !rec.Skipped && s.evals >= s.maxObs {
		return errMaxObservations("session at its %d-observation cap; skip outstanding proposals and finish the session (DELETE)", s.maxObs)
	}
	evalsAfter, costAfter := s.evals, s.cost
	if !rec.Skipped {
		evalsAfter++
		costAfter += math.Min(rec.Raw, rec.Seconds)
	}
	if s.jn != nil {
		// Durability before action, exactly like the in-process session:
		// the observation is on disk before the tuner state advances, so
		// a crash immediately after loses nothing a client paid for.
		_ = s.jn.Append(journal.EvalEntry{
			Config:        cfg.ToMap(),
			Seconds:       rec.Seconds,
			Raw:           rec.Raw,
			Completed:     rec.Completed,
			OOM:           rec.OOM,
			Infeasible:    rec.Infeasible,
			Transient:     rec.Transient,
			Skipped:       rec.Skipped,
			FidelityInput: rec.Fidelity.InputScale,
			FidelityStage: rec.Fidelity.StageFrac,
			ObjEvals:      evalsAfter,
			ObjCost:       costAfter,
			Stats:         journal.FailureCounts{Failed: s.failed, Skipped: s.skipped},
		})
	}
	if oerr := s.stepperObserve(cfg, rec); oerr != nil {
		// Cannot happen after the pending precheck; if it does, the
		// journal and stepper disagree — stop serving rather than let
		// them drift further apart.
		s.poisoned = oerr
		return errInternal("stepper rejected a prechecked observation: %v", oerr)
	}
	s.consumePending(key)
	s.note(cfg, rec, evalsAfter, costAfter)
	// Done means "will never propose again", not "nothing pending":
	// batch steppers hand out their whole budget before the first
	// observation lands. Seal only once every handout is answered.
	if s.st.Done() && s.outstanding() == 0 {
		s.seal()
	}
	return nil
}

// seal records the session outcome: the stepper's own sealed result
// when it has one (ROBOTune's Result memoizes and carries the
// selection), the generic incumbent otherwise, plus the journal done
// record that lets a resume reproduce the result without spending
// evaluations.
func (s *session) seal() {
	if s.sealed {
		return
	}
	s.sealed, s.finished = true, true
	res := tuners.Result{
		Best:        s.best,
		BestSeconds: s.bestSec,
		Found:       s.found,
		Evals:       s.evals,
		SearchCost:  s.cost,
		Trace:       s.trace,
		Completed:   s.completed,
		Proxy:       s.proxy,
	}
	if rm, ok := s.st.(interface{ Result() tuners.Result }); ok {
		sealed := rm.Result()
		res.SelectedParams = sealed.SelectedParams
	}
	tuners.AppendDone(s.jn, res)
	s.result = &ResultResponse{
		ID:             s.id,
		Found:          s.found,
		BestSeconds:    s.bestSec,
		Trials:         len(s.trace),
		Evals:          s.evals,
		Cost:           s.cost,
		SelectedParams: res.SelectedParams,
	}
	if s.found {
		s.result.Best = s.best.ToMap()
	} else {
		s.result.BestSeconds = 0
	}
}

// resultFromDone rebuilds a sealed result from a journal done record
// (the resume-of-a-completed-session path).
func (s *session) resultFromDone(d journal.DoneEntry) *ResultResponse {
	r := &ResultResponse{
		ID:     s.id,
		Found:  d.Found,
		Trials: len(s.trace),
		Evals:  d.Evals,
		Cost:   d.SearchCost,
	}
	if d.Found {
		r.Best = d.Best
		r.BestSeconds = d.BestSeconds
	}
	return r
}

// finish seals the session (even mid-campaign — the client owns the
// decision to stop early) and closes the journal.
func (s *session) finish() (ResultResponse, *apiErr) {
	if s.poisoned != nil {
		return ResultResponse{}, errInternal("session is poisoned: %v", s.poisoned)
	}
	s.seal()
	if s.jn != nil {
		_ = s.jn.Close()
		s.jn = nil
	}
	return *s.result, nil
}

// suspend writes an advisory shutdown snapshot and closes the
// journal; the session can be rebuilt from disk on the next touch.
// Called by the eviction janitor and by server shutdown.
func (s *session) suspend(phase string) {
	if s.jn == nil {
		return
	}
	if !s.sealed {
		_ = s.jn.WriteSnapshot(journal.Snapshot{
			Phase:  phase,
			Trials: s.jn.Trials(),
			Stats:  journal.FailureCounts{Failed: s.failed, Skipped: s.skipped},
		})
	}
	_ = s.jn.Close()
	s.jn = nil
}

// status reports the session's current state. traceTail <= 0 returns
// the full trace.
func (s *session) status(traceTail int) StatusResponse {
	st := StatusResponse{
		ID:            s.id,
		Tuner:         s.spec.Tuner,
		Tenant:        s.tenant,
		Workload:      s.spec.Workload,
		Dataset:       s.spec.Dataset,
		Budget:        s.spec.Budget,
		Seed:          s.spec.Seed,
		Done:          s.finished || s.st.Done(),
		Found:         s.found,
		Trials:        len(s.trace),
		Outstanding:   s.outstanding(),
		Unclaimed:     len(s.unclaimed),
		Evals:         s.evals,
		Cost:          s.cost,
		Failed:        s.failed,
		Resumed:       s.resumed,
		CreatedUnix:   s.created,
		LastTouchUnix: s.lastTouch.Load(),
	}
	if s.jn != nil {
		st.Diverged = s.jn.Diverged()
	}
	if s.found {
		st.Best = s.best.ToMap()
		st.BestSeconds = s.bestSec
	}
	start := 0
	if traceTail > 0 && len(s.trace) > traceTail {
		start = len(s.trace) - traceTail
	}
	st.Trace = append([]float64(nil), s.trace[start:]...)
	st.Completed = append([]bool(nil), s.completed[start:]...)
	st.TraceProxy = append([]bool(nil), s.proxy[start:]...)
	st.TraceStart = start
	return st
}
