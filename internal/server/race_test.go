package server_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/client"
	"repro/internal/server"
)

// TestConcurrentSessions hammers the sharded store from many
// goroutines at once: each worker runs its own session end-to-end
// (create, propose/observe to completion, status, finish) while
// sharing the server with everyone else. Run under -race (make race /
// the CI server job) this is the data-race suite for the session
// table, the tenant ledger and the metrics counters.
func TestConcurrentSessions(t *testing.T) {
	env := newEnv(t, server.Options{JournalDir: t.TempDir(), Shards: 4})
	const workers = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := client.New(env.ts.URL)
			cl.Tenant = fmt.Sprintf("tenant-%d", w%3)
			sp := spec("randomsearch", 8, uint64(w))
			sp.Sync = "none" // throughput over durability in the stress loop
			sess, err := cl.Create(sp)
			if err != nil {
				t.Errorf("worker %d create: %v", w, err)
				return
			}
			for i := 0; i < 1000; i++ {
				props, done, err := sess.Propose(2)
				if err != nil {
					t.Errorf("worker %d propose: %v", w, err)
					return
				}
				if len(props) == 0 {
					if done {
						break
					}
					t.Errorf("worker %d: idle without done", w)
					return
				}
				for _, p := range props {
					sec, ok := objective(p.Config)
					if _, err := sess.Observe(client.Observation{Config: p.Config, Seconds: sec, Completed: ok}); err != nil {
						t.Errorf("worker %d observe: %v", w, err)
						return
					}
				}
				if i%3 == 0 {
					if _, err := sess.Status(); err != nil {
						t.Errorf("worker %d status: %v", w, err)
						return
					}
				}
			}
			if _, err := sess.Finish(); err != nil {
				t.Errorf("worker %d finish: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
	m := env.srv.Metrics()
	if created, finished := m.SessionsCreated.Load(), m.SessionsFinished.Load(); created != workers || finished != workers {
		t.Fatalf("created=%d finished=%d, want %d of each", created, finished, workers)
	}
	if live := m.SessionsLive.Load(); live != 0 {
		t.Fatalf("sessions still live after all finished: %d", live)
	}
}

// TestEvictionTouchRace races the eviction janitor against live
// traffic on the same sessions: every touch must either hit the live
// session or transparently rehydrate it — never a 404, never a lost
// observation, never a double-open journal.
func TestEvictionTouchRace(t *testing.T) {
	var fake atomic.Int64
	fake.Store(1_700_000_000)
	clock := func() time.Time { return time.Unix(fake.Load(), 0) }

	env := newEnv(t, server.Options{JournalDir: t.TempDir(), Shards: 2, Now: clock})
	const nSessions = 6
	sessions := make([]*client.Session, nSessions)
	for i := range sessions {
		sp := spec("randomsearch", 200, uint64(100+i))
		sp.Sync = "none"
		s, err := env.cl.Create(sp)
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}

	stop := make(chan struct{})
	var wg, jwg sync.WaitGroup

	// The janitor, sped up: the fake clock gains a second every couple
	// of real milliseconds and anything idle for three fake seconds is
	// evicted — so a driver that keeps its session busy usually
	// survives, and one the scheduler pauses gets evicted mid-
	// conversation. (A janitor that evicts unconditionally on every
	// pass livelocks the drivers: each propose/observe pair would race
	// a guaranteed eviction and nothing would ever complete.)
	jwg.Add(1)
	go func() {
		defer jwg.Done()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				fake.Add(1)
				env.srv.Store().EvictIdle(3 * time.Second)
			}
		}
	}()

	// The traffic: one driver per session racing the janitor.
	for i, sess := range sessions {
		wg.Add(1)
		go func(i int, sess *client.Session) {
			defer wg.Done()
			delivered := 0
			for attempt := 0; delivered < 40; attempt++ {
				if attempt > 50_000 {
					t.Errorf("session %d livelocked: %d observations after %d attempts", i, delivered, attempt)
					return
				}
				props, done, err := sess.Propose(1)
				if err != nil {
					t.Errorf("session %d propose: %v", i, err)
					return
				}
				if len(props) == 0 {
					if done {
						break
					}
					continue
				}
				sec, ok := objective(props[0].Config)
				if _, err := sess.Observe(client.Observation{Config: props[0].Config, Seconds: sec, Completed: ok}); err != nil {
					// A conflict is legal here: eviction between our propose
					// and observe can resurface the proposal as unclaimed and
					// a previous delivery attempt may have landed. Anything
					// else is a bug.
					if client.IsConflict(err) {
						continue
					}
					t.Errorf("session %d observe: %v", i, err)
					return
				}
				delivered++
			}
		}(i, sess)
	}
	wg.Wait()
	close(stop)
	jwg.Wait()

	// Every session must have exactly its delivered observations —
	// rehydration replayed them, nothing lost, nothing duplicated.
	for i, sess := range sessions {
		st, err := sess.FullStatus()
		if err != nil {
			t.Fatalf("session %d final status: %v", i, err)
		}
		if st.Trials < 40 {
			t.Errorf("session %d: %d trials, want >= 40", i, st.Trials)
		}
		if st.Diverged != "" {
			t.Errorf("session %d diverged: %s", i, st.Diverged)
		}
	}
}

// TestConcurrentObservesSameSession: many goroutines proposing and
// observing against one session must serialize cleanly — every
// accepted observation matched a proposal, and the books balance.
func TestConcurrentObservesSameSession(t *testing.T) {
	env := newEnv(t, server.Options{JournalDir: t.TempDir()})
	sp := spec("randomsearch", 64, 9)
	sp.Sync = "none"
	sess, err := env.cl.Create(sp)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var delivered atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				props, done, err := sess.Propose(2)
				if err != nil {
					t.Errorf("propose: %v", err)
					return
				}
				if len(props) == 0 {
					if done {
						return
					}
					continue
				}
				for _, p := range props {
					sec, ok := objective(p.Config)
					if _, err := sess.Observe(client.Observation{Config: p.Config, Seconds: sec, Completed: ok}); err != nil {
						if client.IsConflict(err) || client.IsFinished(err) {
							continue
						}
						t.Errorf("observe: %v", err)
						return
					}
					delivered.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	st, err := sess.FullStatus()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done {
		t.Fatalf("session not done after workers drained it: %+v trials=%d", st.Done, st.Trials)
	}
	if int64(st.Trials) != delivered.Load() {
		t.Fatalf("trials=%d but %d observations were acknowledged", st.Trials, delivered.Load())
	}
	if st.Trials != 64 {
		t.Fatalf("trials=%d, want the full 64 budget", st.Trials)
	}
}
