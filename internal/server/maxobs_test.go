package server_test

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/client"
	"repro/internal/server"
)

// TestMaxObservationsCap: past the per-session cap, evaluated
// observations answer 409 max_observations; skips stay accepted so a
// client can wind down its outstanding proposals, and the session
// still finishes cleanly.
func TestMaxObservationsCap(t *testing.T) {
	env := newEnv(t, server.Options{MaxObservations: 3})
	sess, err := env.cl.Create(spec("randomsearch", 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	props, _, err := sess.Propose(5)
	if err != nil || len(props) != 5 {
		t.Fatalf("propose: %v %v", props, err)
	}
	for i := 0; i < 3; i++ {
		sec, ok := objective(props[i].Config)
		if _, err := sess.Observe(client.Observation{Config: props[i].Config, Seconds: sec, Completed: ok}); err != nil {
			t.Fatalf("observe %d under cap: %v", i, err)
		}
	}

	// The 4th evaluated observation hits the cap.
	sec, ok := objective(props[3].Config)
	_, err = sess.Observe(client.Observation{Config: props[3].Config, Seconds: sec, Completed: ok})
	if !client.IsMaxObservations(err) {
		t.Fatalf("observe past cap: %v, want max_observations", err)
	}
	// The cap shares 409 with conflicts on the wire, but carries its
	// own code; both predicates must agree on the status.
	if !client.IsConflict(err) {
		t.Fatalf("capped observe should still be a 409: %v", err)
	}
	if got := env.srv.Metrics().ObsCapped.Load(); got != 1 {
		t.Fatalf("ObsCapped=%d, want 1", got)
	}
	// A plain pending-mismatch conflict must NOT read as the cap.
	_, err = sess.Observe(client.Observation{Config: map[string]float64{"size_mb": 256, "ttl": 5, "policy": 0}, Seconds: 1, Completed: true})
	if !client.IsConflict(err) || client.IsMaxObservations(err) {
		t.Fatalf("unproposed observe at cap: %v, want plain conflict", err)
	}

	// Rejected observations leave no state: still 3 trials, and the
	// proposal is still pending — a skip resolves it.
	st, err := sess.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Trials != 3 {
		t.Fatalf("trials=%d after capped observe, want 3", st.Trials)
	}
	for i := 3; i < 5; i++ {
		if _, err := sess.Observe(client.Observation{Config: props[i].Config, Skipped: true}); err != nil {
			t.Fatalf("skip %d at cap: %v", i, err)
		}
	}
	if _, err := sess.Finish(); err != nil {
		t.Fatalf("finish at cap: %v", err)
	}
}

// TestMetricsSurrogateSection: /metrics aggregates refit-cadence
// accounting across live ROBOTune sessions (and counts capped
// observations in the requests section).
func TestMetricsSurrogateSection(t *testing.T) {
	env := newEnv(t, server.Options{})
	sp := spec("robotune", 25, 7)
	sp.Options.RefitBudget = 0.5
	sess, err := env.cl.Create(sp)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, sess) // completes but the session stays live until DELETE

	resp, err := http.Get(env.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Requests struct {
			ObsCapped int64 `json:"observations_capped"`
		} `json:"requests"`
		Surrogate server.SurrogateView `json:"surrogate"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Surrogate.Sessions != 1 {
		t.Fatalf("surrogate sessions=%d, want 1: %+v", doc.Surrogate.Sessions, doc.Surrogate)
	}
	if doc.Surrogate.HyperRefits < 1 || doc.Surrogate.Observations < 10 {
		t.Fatalf("implausible surrogate aggregation: %+v", doc.Surrogate)
	}
	if doc.Surrogate.ActivePoints != doc.Surrogate.Observations {
		t.Fatalf("exact session must have active == observations: %+v", doc.Surrogate)
	}
	if doc.Requests.ObsCapped != 0 {
		t.Fatalf("ObsCapped=%d on an uncapped server", doc.Requests.ObsCapped)
	}
}
