// Wire types and JSON decoders of the robotuned protocol. Every
// request body that crosses the trust boundary is decoded and
// validated here — the fuzz suite (FuzzSessionSpec, FuzzObserveBody)
// hammers these functions with hostile bytes, and nothing past them
// may panic or corrupt a session. Numbers are re-checked for
// NaN/Inf even though JSON cannot encode them directly: a decoder
// swap or a future format must not weaken the invariant that only
// finite observations reach a tuner.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"repro/internal/backend"
	"repro/internal/cli"
	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/schedule"
	"repro/internal/tuners"
)

// Limits bound what a single request may carry; they are generous for
// real clients and tight enough that a hostile body cannot balloon
// memory.
const (
	// MaxBodyBytes caps any request body.
	MaxBodyBytes = 4 << 20
	// MaxBatch caps proposals returned (and observations accepted) per
	// request. A client wanting more simply calls again.
	MaxBatch = 1024
	// MaxBudget caps a session's evaluation budget.
	MaxBudget = 10_000_000
	// MaxSpaceDim caps the dimensionality of a client-supplied space.
	MaxSpaceDim = 4096
)

// SessionSpec is the body of POST /v1/sessions: everything needed to
// build (and, after a crash, rebuild) a tuning session. It is
// persisted verbatim next to the session's journal, so every field
// must be sufficient to reconstruct the stepper deterministically.
type SessionSpec struct {
	// Tuner is the tuner kind (cli.TunerKinds: robotune, randomsearch,
	// bestconfig, gunther, successivehalving, cmaes).
	Tuner string `json:"tuner"`
	// Space is either a JSON string naming a built-in backend space —
	// "spark" (the 44-parameter Spark space) or any other registered
	// backend such as "clustersim" — or an inline space definition in
	// the conf.ParseSpace schema ({"system": ..., "params": [...]}).
	Space json.RawMessage `json:"space"`
	// Budget is the evaluation budget.
	Budget int `json:"budget"`
	// Seed drives the tuner's randomness; the same spec and the same
	// observation sequence reproduce the same proposals bit-for-bit.
	Seed uint64 `json:"seed"`
	// Workload and Dataset key ROBOTune's memoization; optional.
	Workload string `json:"workload,omitempty"`
	Dataset  string `json:"dataset,omitempty"`
	// Priority is the session's slot class on a server running with a
	// bounded propose-compute pool: "latency" sessions overtake queued
	// "bulk" (default) work at every slot hand-off. Ignored by servers
	// without a pool.
	Priority string `json:"priority,omitempty"`
	// Sync selects the journal fsync policy: "always" (default — an
	// observation is durable before the tuner acts on it) or "none"
	// (the OS flushes on its own schedule; a kernel crash may lose
	// trailing observations, a process crash does not).
	Sync string `json:"sync,omitempty"`
	// Options tunes ROBOTune-specific knobs; ignored by the baselines.
	Options SpecOptions `json:"options,omitempty"`
}

// SpecOptions is the wire subset of core.Options. Zero values select
// the paper defaults.
type SpecOptions struct {
	GenericSamples      int     `json:"generic_samples,omitempty"`
	TuningSamples       int     `json:"tuning_samples,omitempty"`
	PermuteRepeats      int     `json:"permute_repeats,omitempty"`
	MinSelected         int     `json:"min_selected,omitempty"`
	MaxSelected         int     `json:"max_selected,omitempty"`
	ImportanceThreshold float64 `json:"importance_threshold,omitempty"`
	GuardMultiple       float64 `json:"guard_multiple,omitempty"`
	EarlyStopPatience   int     `json:"early_stop_patience,omitempty"`
	EarlyStopEpsilon    float64 `json:"early_stop_epsilon,omitempty"`
	Workers             int     `json:"workers,omitempty"`
	// RefitBudget caps GP hyperparameter-refit time at this fraction
	// of session wall clock (0 = fixed every-5 cadence).
	RefitBudget float64 `json:"refit_budget,omitempty"`
	// Sparse switches the surrogate to the bounded local-subset path
	// past SparseThreshold observations (default threshold 512).
	Sparse          bool `json:"sparse,omitempty"`
	SparseThreshold int  `json:"sparse_threshold,omitempty"`
	// FidelityLadder is the fidelity ladder for the bohb tuner: 1-16
	// finite values, strictly ascending, each in (0, 1], ending at
	// exactly 1. Empty selects the default ladder; other tuners
	// ignore it.
	FidelityLadder []float64 `json:"fidelity_ladder,omitempty"`
	// FidelityAxis is the workload dimension the ladder scales:
	// "input" (data volumes; the default when empty) or "stage"
	// (stage-plan prefix). bohb-only, like the ladder.
	FidelityAxis string `json:"fidelity_axis,omitempty"`
	// CostAware divides positive acquisition scores by predicted
	// evaluation cost (EI-per-second); applies to robotune and bohb.
	CostAware bool `json:"cost_aware,omitempty"`
}

// coreOptions maps the wire knobs onto core.Options.
func (o SpecOptions) coreOptions() core.Options {
	return core.Options{
		GenericSamples:      o.GenericSamples,
		TuningSamples:       o.TuningSamples,
		PermuteRepeats:      o.PermuteRepeats,
		MinSelected:         o.MinSelected,
		MaxSelected:         o.MaxSelected,
		ImportanceThreshold: o.ImportanceThreshold,
		GuardMultiple:       o.GuardMultiple,
		EarlyStopPatience:   o.EarlyStopPatience,
		EarlyStopEpsilon:    o.EarlyStopEpsilon,
		Workers:             o.Workers,
		RefitBudget:         o.RefitBudget,
		SparseSurrogate:     o.Sparse,
		SparseThreshold:     o.SparseThreshold,
		FidelityLadder:      o.FidelityLadder,
		FidelityAxis:        o.FidelityAxis,
		CostAware:           o.CostAware,
	}
}

// validate bounds every numeric knob; hostile specs must not smuggle
// NaN/Inf or absurd sizes into the tuner.
func (o SpecOptions) validate() error {
	ints := map[string]int{
		"generic_samples": o.GenericSamples, "tuning_samples": o.TuningSamples,
		"permute_repeats": o.PermuteRepeats, "min_selected": o.MinSelected,
		"max_selected": o.MaxSelected, "early_stop_patience": o.EarlyStopPatience,
		"workers": o.Workers, "sparse_threshold": o.SparseThreshold,
	}
	for name, v := range ints {
		if v < 0 || v > 1_000_000 {
			return fmt.Errorf("options.%s out of range: %d", name, v)
		}
	}
	floats := map[string]float64{
		"importance_threshold": o.ImportanceThreshold,
		"guard_multiple":       o.GuardMultiple,
		"early_stop_epsilon":   o.EarlyStopEpsilon,
	}
	for name, v := range floats {
		if !finite(v) || v < 0 || v > 1e9 {
			return fmt.Errorf("options.%s must be finite and in [0, 1e9], got %v", name, v)
		}
	}
	// The refit budget is a fraction of wall clock; anything at or
	// above 1 would let the surrogate monopolize the session.
	if !finite(o.RefitBudget) || o.RefitBudget < 0 || o.RefitBudget >= 1 {
		return fmt.Errorf("options.refit_budget must be finite and in [0, 1), got %v", o.RefitBudget)
	}
	if len(o.FidelityLadder) > 0 {
		if err := tuners.ValidFidelityLadder(o.FidelityLadder); err != nil {
			return fmt.Errorf("options.fidelity_ladder: %v", err)
		}
	}
	if _, err := cli.ParseFidelityAxis(o.FidelityAxis); err != nil {
		return fmt.Errorf("options.fidelity_axis: %v", err)
	}
	return nil
}

// ParsedSpec is a validated SessionSpec with its space resolved.
type ParsedSpec struct {
	Spec  SessionSpec
	Space *conf.Space
	// SpaceName is the backend name when Spec.Space named a built-in
	// space ("spark", "clustersim"); empty for inline definitions.
	SpaceName string
}

// Class maps the spec's priority onto a schedule class.
func (spec SessionSpec) Class() schedule.Class {
	if strings.EqualFold(spec.Priority, "latency") {
		return schedule.Latency
	}
	return schedule.Bulk
}

// DecodeSessionSpec parses and validates a session spec. The returned
// error is safe to surface to clients (no internal state leaks).
func DecodeSessionSpec(data []byte) (ParsedSpec, error) {
	if len(data) > MaxBodyBytes {
		return ParsedSpec{}, fmt.Errorf("body exceeds %d bytes", MaxBodyBytes)
	}
	var spec SessionSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return ParsedSpec{}, fmt.Errorf("parse spec: %v", err)
	}
	if dec.More() {
		return ParsedSpec{}, fmt.Errorf("trailing data after spec")
	}
	return ValidateSessionSpec(spec)
}

// ValidateSessionSpec checks an already-parsed spec and resolves its
// space. Shared by the HTTP handler and the rehydration path (which
// re-reads persisted specs from disk).
func ValidateSessionSpec(spec SessionSpec) (ParsedSpec, error) {
	if spec.Tuner == "" {
		return ParsedSpec{}, fmt.Errorf("tuner is required")
	}
	if !knownTuner(spec.Tuner) {
		return ParsedSpec{}, fmt.Errorf("unknown tuner %q", spec.Tuner)
	}
	if spec.Budget <= 0 || spec.Budget > MaxBudget {
		return ParsedSpec{}, fmt.Errorf("budget must be in [1, %d], got %d", MaxBudget, spec.Budget)
	}
	switch spec.Sync {
	case "", "always", "none":
		// ok
	default:
		return ParsedSpec{}, fmt.Errorf("sync must be \"always\" or \"none\", got %q", spec.Sync)
	}
	switch strings.ToLower(spec.Priority) {
	case "", "bulk", "latency":
		// ok
	default:
		return ParsedSpec{}, fmt.Errorf("priority must be \"bulk\" or \"latency\", got %q", spec.Priority)
	}
	if len(spec.Workload) > 256 || len(spec.Dataset) > 256 {
		return ParsedSpec{}, fmt.Errorf("workload/dataset names are capped at 256 bytes")
	}
	if err := spec.Options.validate(); err != nil {
		return ParsedSpec{}, err
	}
	space, name, err := resolveSpace(spec.Space)
	if err != nil {
		return ParsedSpec{}, err
	}
	return ParsedSpec{Spec: spec, Space: space, SpaceName: name}, nil
}

// resolveSpace turns the spec's space field into a conf.Space: a
// string names a built-in backend space ("spark" always works; any
// other name is resolved through the backend registry, so a binary
// that links the clustersim backend accepts "clustersim" too), and an
// object is parsed as an inline space definition.
func resolveSpace(raw json.RawMessage) (*conf.Space, string, error) {
	trimmed := bytes.TrimSpace(raw)
	if len(trimmed) == 0 {
		return nil, "", fmt.Errorf("space is required (\"spark\" or a space definition object)")
	}
	if trimmed[0] == '"' {
		var name string
		if err := json.Unmarshal(trimmed, &name); err != nil {
			return nil, "", fmt.Errorf("parse space name: %v", err)
		}
		// "spark" resolves without the registry, so the wire layer
		// validates identically whether or not the binary linked any
		// backend implementations.
		if strings.EqualFold(name, "spark") {
			return conf.SparkSpace(), "spark", nil
		}
		if b, err := backend.Lookup(strings.ToLower(name)); err == nil {
			return b.Space(), b.Name(), nil
		}
		return nil, "", fmt.Errorf("unknown space %q (built-in spaces: %s; send a space definition object otherwise)",
			name, strings.Join(builtinSpaces(), ", "))
	}
	space, err := conf.ParseSpace(trimmed)
	if err != nil {
		return nil, "", fmt.Errorf("invalid space definition: %v", err)
	}
	if space.Dim() > MaxSpaceDim {
		return nil, "", fmt.Errorf("space has %d parameters, cap is %d", space.Dim(), MaxSpaceDim)
	}
	return space, "", nil
}

// builtinSpaces lists the space names a string Space field may carry:
// "spark" plus every registered backend.
func builtinSpaces() []string {
	names := backend.Names()
	for _, n := range names {
		if n == "spark" {
			return names
		}
	}
	return append([]string{"spark"}, names...)
}

func knownTuner(name string) bool {
	switch strings.ToLower(name) {
	case "robotune", "bestconfig", "gunther", "randomsearch", "rs", "random",
		"successivehalving", "sha", "cmaes", "cma-es", "bohb":
		return true
	}
	return false
}

// ProposeRequest is the body of POST /v1/sessions/{id}/propose. An
// empty body is equivalent to {"n": 0}.
type ProposeRequest struct {
	// N is the maximum number of proposals wanted; <= 0 means "as many
	// as the tuner can usefully emit", capped at MaxBatch.
	N int `json:"n"`
}

// DecodeProposeRequest parses a propose body (empty means defaults).
func DecodeProposeRequest(data []byte) (ProposeRequest, error) {
	if len(bytes.TrimSpace(data)) == 0 {
		return ProposeRequest{}, nil
	}
	var req ProposeRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return ProposeRequest{}, fmt.Errorf("parse propose request: %v", err)
	}
	if req.N > MaxBatch {
		req.N = MaxBatch
	}
	return req, nil
}

// WireProposal is one trial handed to a client: the configuration (as
// a name → raw-value map), the tuner's stopping cap for the run
// (0 = none), and the fidelity the trial should run at. FidelityInput
// is the input-scale fraction, FidelityStage the stage-truncation
// fraction; 0 (omitted) means full — a multi-fidelity tuner (bohb)
// asks the client to run a proportionally scaled-down workload on its
// lower rungs, and the client must report the observation back with
// the same fidelity.
type WireProposal struct {
	Config        map[string]float64 `json:"config"`
	Cap           float64            `json:"cap,omitempty"`
	FidelityInput float64            `json:"fidelity_input,omitempty"`
	FidelityStage float64            `json:"fidelity_stage,omitempty"`
}

// ProposeResponse answers a propose call.
type ProposeResponse struct {
	Proposals []WireProposal `json:"proposals"`
	// Done is true when the tuner will never propose again.
	Done bool `json:"done"`
	// Outstanding counts proposals awaiting observation (including the
	// ones in this response).
	Outstanding int `json:"outstanding"`
}

// Observation is one evaluated trial reported back by a client.
type Observation struct {
	// Config must exactly match a previously proposed configuration.
	Config map[string]float64 `json:"config"`
	// Seconds is the observed objective value (capped execution time).
	Seconds float64 `json:"seconds"`
	// Raw is the uncapped (or consumed-before-failure) duration; it
	// defaults to Seconds when omitted.
	Raw float64 `json:"raw,omitempty"`
	// Completed is true when the run finished (Seconds is a
	// measurement, not a floor).
	Completed bool `json:"completed"`
	// OOM / Infeasible / Transient mirror sparksim.EvalRecord.
	OOM        bool `json:"oom,omitempty"`
	Infeasible bool `json:"infeasible,omitempty"`
	Transient  bool `json:"transient,omitempty"`
	// Skipped abandons the proposal without an observation: the tuner
	// advances past it and no evaluation is charged.
	Skipped bool `json:"skipped,omitempty"`
	// Cap echoes the stopping cap the trial actually ran under (0 =
	// none). Advisory: the server records it nowhere, but an explicit
	// echo keeps request logs self-describing.
	Cap float64 `json:"cap,omitempty"`
	// FidelityInput/FidelityStage report the fidelity the trial ran
	// at (0 = full). They must match the proposal's fidelity — the
	// incumbent only advances on full-fidelity completions, and a
	// proxy observation mislabeled as full would corrupt it.
	FidelityInput float64 `json:"fidelity_input,omitempty"`
	FidelityStage float64 `json:"fidelity_stage,omitempty"`
}

// ObserveRequest is the body of POST /v1/sessions/{id}/observe.
type ObserveRequest struct {
	Observations []Observation `json:"observations"`
}

// DecodeObserveBody parses and validates an observe body. Every
// numeric field must be finite and non-negative; configs must be
// non-empty. Matching against pending proposals happens later, under
// the session lock.
func DecodeObserveBody(data []byte) (ObserveRequest, error) {
	if len(data) > MaxBodyBytes {
		return ObserveRequest{}, fmt.Errorf("body exceeds %d bytes", MaxBodyBytes)
	}
	var req ObserveRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return ObserveRequest{}, fmt.Errorf("parse observe request: %v", err)
	}
	if dec.More() {
		return ObserveRequest{}, fmt.Errorf("trailing data after request")
	}
	if len(req.Observations) == 0 {
		return ObserveRequest{}, fmt.Errorf("observations must not be empty")
	}
	if len(req.Observations) > MaxBatch {
		return ObserveRequest{}, fmt.Errorf("at most %d observations per request, got %d", MaxBatch, len(req.Observations))
	}
	for i := range req.Observations {
		o := &req.Observations[i]
		if len(o.Config) == 0 {
			return ObserveRequest{}, fmt.Errorf("observation %d: config is required", i)
		}
		for name, v := range o.Config {
			if !finite(v) {
				return ObserveRequest{}, fmt.Errorf("observation %d: config value %s is not finite", i, name)
			}
		}
		// Fidelity is validated even on skips: a skip still consumes the
		// pending proposal, and a malformed fidelity must never enter
		// the journal.
		for _, f := range [...]struct {
			name string
			v    float64
		}{{"fidelity_input", o.FidelityInput}, {"fidelity_stage", o.FidelityStage}} {
			if !finite(f.v) || f.v < 0 || f.v > 1 {
				return ObserveRequest{}, fmt.Errorf("observation %d: %s must be finite and in [0, 1], got %v", i, f.name, f.v)
			}
		}
		if o.Skipped {
			continue // no measurement to validate
		}
		if !finite(o.Seconds) || o.Seconds < 0 {
			return ObserveRequest{}, fmt.Errorf("observation %d: seconds must be finite and >= 0, got %v", i, o.Seconds)
		}
		if !finite(o.Raw) || o.Raw < 0 {
			return ObserveRequest{}, fmt.Errorf("observation %d: raw must be finite and >= 0, got %v", i, o.Raw)
		}
		if !finite(o.Cap) || o.Cap < 0 {
			return ObserveRequest{}, fmt.Errorf("observation %d: cap must be finite and >= 0, got %v", i, o.Cap)
		}
		if o.Raw == 0 {
			o.Raw = o.Seconds
		}
	}
	return req, nil
}

// ObserveResponse answers an observe call.
type ObserveResponse struct {
	// Applied counts observations accepted by this call.
	Applied int `json:"applied"`
	// Trials is the session's total observed-trial count.
	Trials int  `json:"trials"`
	Done   bool `json:"done"`
	Found  bool `json:"found"`
	// BestSeconds is the incumbent objective value (present once
	// Found).
	BestSeconds float64 `json:"best_seconds,omitempty"`
}

// StatusResponse answers GET /v1/sessions/{id}.
type StatusResponse struct {
	ID       string `json:"id"`
	Tuner    string `json:"tuner"`
	Tenant   string `json:"tenant,omitempty"`
	Workload string `json:"workload,omitempty"`
	Dataset  string `json:"dataset,omitempty"`
	Budget   int    `json:"budget"`
	Seed     uint64 `json:"seed"`

	Done        bool               `json:"done"`
	Found       bool               `json:"found"`
	Best        map[string]float64 `json:"best,omitempty"`
	BestSeconds float64            `json:"best_seconds,omitempty"`

	// Trials counts observed trials; Outstanding counts proposed but
	// unobserved ones; Unclaimed counts proposals regenerated by a
	// resume and not yet handed to any client.
	Trials      int `json:"trials"`
	Outstanding int `json:"outstanding"`
	Unclaimed   int `json:"unclaimed"`
	// Evals and Cost are the charged evaluation counter and the
	// accumulated cost in (client-reported) seconds.
	Evals  int     `json:"evals"`
	Cost   float64 `json:"cost"`
	Failed int     `json:"failed,omitempty"`

	// Resumed is true when the session was rehydrated from its journal
	// (after an eviction or a server restart); Diverged carries the
	// replay-divergence reason when the journal tail had to be cut.
	Resumed  bool   `json:"resumed,omitempty"`
	Diverged string `json:"diverged,omitempty"`

	// Trace is the tail (or, with ?trace=all, the whole) of observed
	// objective values; Completed and TraceProxy parallel it.
	// TraceProxy[i] is true when observation i ran at reduced fidelity
	// (its seconds measure a scaled-down workload).
	Trace      []float64 `json:"trace,omitempty"`
	Completed  []bool    `json:"trace_completed,omitempty"`
	TraceProxy []bool    `json:"trace_proxy,omitempty"`
	// TraceStart is the index of Trace[0] in the full history.
	TraceStart int `json:"trace_start"`

	CreatedUnix   int64 `json:"created_unix"`
	LastTouchUnix int64 `json:"last_touch_unix"`
}

// ResultResponse answers DELETE /v1/sessions/{id}: the sealed session
// outcome.
type ResultResponse struct {
	ID             string             `json:"id"`
	Found          bool               `json:"found"`
	Best           map[string]float64 `json:"best,omitempty"`
	BestSeconds    float64            `json:"best_seconds,omitempty"`
	Trials         int                `json:"trials"`
	Evals          int                `json:"evals"`
	Cost           float64            `json:"cost"`
	SelectedParams []string           `json:"selected_params,omitempty"`
}

// ErrorBody is the uniform error envelope.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail names the failure class and describes it.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
