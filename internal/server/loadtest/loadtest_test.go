package loadtest

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestLoadSmoke is the always-on sanity check: a short direct-dispatch
// burst must clear a conservative floor. The real acceptance number
// (>= 10k round trips/s in-process) comes from the full run below.
func TestLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke skipped in -short")
	}
	rep, err := Run(Options{
		Sessions:  4,
		Duration:  500 * time.Millisecond,
		Transport: "direct",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("direct: %d round trips in %.2fs = %.0f/s (observe mean %.0fus)",
		rep.RoundTrips, rep.Seconds, rep.PerSecond, rep.ObserveMeanUS)
	// Deliberately far below the acceptance criterion: this floor only
	// catches order-of-magnitude regressions on loaded CI machines.
	if rep.PerSecond < 500 {
		t.Fatalf("direct throughput %.0f/s below the 500/s smoke floor", rep.PerSecond)
	}
}

// TestLoadFull is the acceptance run (`make load-test`): both
// transports with journaling on, the in-process number checked against
// the >= 10,000 round trips/s criterion, and the results written to
// BENCH_robotuned.json at the repo root.
func TestLoadFull(t *testing.T) {
	if os.Getenv("ROBOTUNE_LOADTEST") == "" {
		t.Skip("set ROBOTUNE_LOADTEST=1 (or run `make load-test`) to enable")
	}
	// At least 8 sessions even on small machines, so the sharded store
	// and tenant ledger see real concurrency rather than a single
	// goroutine per shard.
	sessions := max(8, 2*runtime.GOMAXPROCS(0))
	runs := []Options{
		{Sessions: sessions, Duration: 5 * time.Second, Transport: "direct", JournalDir: t.TempDir()},
		{Sessions: sessions, Duration: 5 * time.Second, Transport: "tcp", JournalDir: t.TempDir()},
	}
	reports := make([]Report, 0, len(runs))
	for _, opts := range runs {
		rep, err := Run(opts)
		if err != nil {
			t.Fatalf("%s run: %v", opts.Transport, err)
		}
		t.Logf("%s: %d sessions, %d round trips in %.2fs = %.0f/s (observe mean %.0fus)",
			rep.Transport, rep.Sessions, rep.RoundTrips, rep.Seconds, rep.PerSecond, rep.ObserveMeanUS)
		reports = append(reports, rep)
	}
	if direct := reports[0]; direct.PerSecond < 10_000 {
		t.Errorf("in-process throughput %.0f/s below the 10,000/s acceptance criterion", direct.PerSecond)
	}
	writeBench(t, reports)
}

// writeBench records the run in BENCH_robotuned.json, mirroring the
// layout of the other BENCH_*.json files at the repo root.
func writeBench(t *testing.T, reports []Report) {
	type doc struct {
		Description string         `json:"description"`
		Environment map[string]any `json:"environment"`
		Notes       []string       `json:"notes"`
		Benchmarks  []Report       `json:"benchmarks"`
	}
	d := doc{
		Description: "robotuned service throughput: concurrent journaled sessions (randomsearch, sync=none), one propose(1)+observe round trip per count. direct = handler dispatch without sockets, tcp = real HTTP over loopback. Reproduce with `make load-test`.",
		Environment: map[string]any{
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
			"cpu":        cpuModel(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"date":       time.Now().UTC().Format("2006-01-02"),
		},
		Notes: []string{
			"Acceptance criterion: the direct (in-process) transport must sustain >= 10,000 propose/observe round trips per second aggregate.",
			"Every round trip journals its observation (journal sync policy \"none\": buffered appends, snapshot on eviction/shutdown).",
			"observe_mean_us is the server-side observe handler latency from the /metrics histogram, not client-perceived latency.",
		},
		Benchmarks: reports,
	}
	out, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(repoRoot(t), "BENCH_robotuned.json")
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}

// repoRoot walks up from the package directory to the go.mod.
func repoRoot(t *testing.T) string {
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above the loadtest package")
		}
		dir = parent
	}
}

// cpuModel best-effort reads the CPU model name (Linux only).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return fmt.Sprintf("unknown (%d cores)", runtime.NumCPU())
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return fmt.Sprintf("unknown (%d cores)", runtime.NumCPU())
}
