// Package loadtest is the robotuned throughput harness: it stands up
// a server, fans out concurrent driver sessions, and measures
// propose/observe round trips per second over two transports — real
// HTTP over loopback TCP (httptest), and direct handler dispatch
// (httptest.ResponseRecorder, no sockets), which isolates the
// service's own cost from kernel networking. `make load-test` runs it
// and records the numbers in BENCH_robotuned.json.
package loadtest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

// Options sizes a load run.
type Options struct {
	// Sessions is the number of concurrent tuning sessions, each with
	// a dedicated driver goroutine.
	Sessions int
	// Duration is how long the drivers hammer the server.
	Duration time.Duration
	// Transport is "tcp" (httptest server over loopback) or "direct"
	// (handler dispatch, no sockets).
	Transport string
	// Journal enables a journal directory with sync "none" (the
	// realistic service configuration); without it sessions are
	// ephemeral.
	JournalDir string
}

// Report is one transport's measured throughput.
type Report struct {
	Transport  string  `json:"transport"`
	Sessions   int     `json:"sessions"`
	Journaled  bool    `json:"journaled"`
	Seconds    float64 `json:"seconds"`
	RoundTrips int64   `json:"round_trips"`
	PerSecond  float64 `json:"per_second"`
	// Observe latency distribution from the server's own histogram.
	ObserveMeanUS float64 `json:"observe_mean_us"`
}

// oneRoundTrip drives a single propose(1)+observe pair; the config
// comes back from the server, the "measurement" is synthetic.
type driver struct {
	post func(path string, body []byte) (int, []byte, error)
	id   string
}

func (d *driver) roundTrip() (done bool, err error) {
	status, body, err := d.post("/v1/sessions/"+d.id+"/propose", []byte(`{"n":1}`))
	if err != nil {
		return false, err
	}
	if status != 200 {
		return false, fmt.Errorf("propose: HTTP %d: %s", status, body)
	}
	var pr struct {
		Proposals []struct {
			Config map[string]float64 `json:"config"`
		} `json:"proposals"`
		Done bool `json:"done"`
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		return false, err
	}
	if len(pr.Proposals) == 0 {
		return pr.Done, nil
	}
	obs, _ := json.Marshal(map[string]any{
		"observations": []map[string]any{{
			"config":    pr.Proposals[0].Config,
			"seconds":   42.0,
			"completed": true,
		}},
	})
	status, body, err = d.post("/v1/sessions/"+d.id+"/observe", obs)
	if err != nil {
		return false, err
	}
	if status != 200 {
		return false, fmt.Errorf("observe: HTTP %d: %s", status, body)
	}
	return false, nil
}

// Run executes one load test and returns its report.
func Run(opts Options) (Report, error) {
	if opts.Sessions <= 0 {
		opts.Sessions = 2 * runtime.GOMAXPROCS(0)
	}
	if opts.Duration <= 0 {
		opts.Duration = 3 * time.Second
	}
	srv := server.New(server.Options{JournalDir: opts.JournalDir, Shards: 32})
	defer srv.Shutdown()
	handler := srv.Handler()

	var post func(path string, body []byte) (int, []byte, error)
	switch opts.Transport {
	case "direct":
		post = func(path string, body []byte) (int, []byte, error) {
			req := httptest.NewRequest("POST", path, bytes.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, req)
			return rec.Code, rec.Body.Bytes(), nil
		}
	case "tcp", "":
		opts.Transport = "tcp"
		ts := httptest.NewServer(handler)
		defer ts.Close()
		hc := &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: opts.Sessions + 4,
		}}
		post = func(path string, body []byte) (int, []byte, error) {
			resp, err := hc.Post(ts.URL+path, "application/json", bytes.NewReader(body))
			if err != nil {
				return 0, nil, err
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				return 0, nil, err
			}
			return resp.StatusCode, buf.Bytes(), nil
		}
	default:
		return Report{}, fmt.Errorf("unknown transport %q", opts.Transport)
	}

	// One session per driver: random search with an effectively
	// unbounded budget, a small inline space, journal sync "none".
	specBody := func(seed int) []byte {
		b, _ := json.Marshal(map[string]any{
			"tuner": "randomsearch",
			"space": json.RawMessage(`{
			  "system": "loadtest",
			  "params": [
			    {"name": "a", "type": "int", "min": 1, "max": 1000, "default": 10},
			    {"name": "b", "type": "float", "min": 0, "max": 1, "default": 0.5},
			    {"name": "c", "type": "categorical", "choices": ["x", "y", "z"], "default": "x"}
			  ]
			}`),
			"budget": server.MaxBudget,
			"seed":   seed,
			"sync":   "none",
		})
		return b
	}
	drivers := make([]*driver, opts.Sessions)
	for i := range drivers {
		status, body, err := post("/v1/sessions", specBody(i+1))
		if err != nil {
			return Report{}, err
		}
		if status != 201 {
			return Report{}, fmt.Errorf("create: HTTP %d: %s", status, body)
		}
		var st struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			return Report{}, err
		}
		drivers[i] = &driver{post: post, id: st.ID}
	}

	var trips atomic.Int64
	var firstErr atomic.Value
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, d := range drivers {
		wg.Add(1)
		go func(d *driver) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				done, err := d.roundTrip()
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				if done {
					return
				}
				trips.Add(1)
			}
		}(d)
	}
	start := time.Now()
	time.Sleep(opts.Duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return Report{}, err
	}

	mv := srv.Metrics().View()
	return Report{
		Transport:     opts.Transport,
		Sessions:      opts.Sessions,
		Journaled:     opts.JournalDir != "",
		Seconds:       elapsed,
		RoundTrips:    trips.Load(),
		PerSecond:     float64(trips.Load()) / elapsed,
		ObserveMeanUS: mv.ObserveLatency.MeanUS,
	}, nil
}
