package server_test

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/client"
	"repro/internal/server"
)

// The wire-level kill/resume harness: the test binary re-executes
// itself as a robotuned server child, the parent drives a campaign
// against it over real TCP, SIGKILLs the child at escalating depths,
// restarts it on the same journal directory, reattaches, and keeps
// driving. The completed history must be bit-identical to an
// uninterrupted run of the same spec. Gated like the in-process
// crash-stress suite so tier-1 `go test ./...` stays fast; `make
// crash-stress` (and the CI server job) enable it.
const (
	wireStressEnv = "ROBOTUNE_CRASH_STRESS"
	wireChildEnv  = "ROBOTUNED_CHILD"
	wireDirEnv    = "ROBOTUNED_DIR"
)

// wireSpec is the campaign both the baseline and the stressed run use:
// the real ROBOTune pipeline (probe, selection, BO) with small models,
// so kills land in every phase while a full run stays fast.
func wireSpec() client.SessionSpec {
	sp := spec("robotune", 60, 1234)
	sp.Options.GenericSamples = 24
	sp.Options.TuningSamples = 12
	sp.Workload = "wire-stress"
	sp.Dataset = "D1"
	return sp
}

// TestRobotunedChild is the subprocess body, not a standalone test: it
// serves robotuned on a random port against the journal dir from the
// environment and blocks until the parent kills it.
func TestRobotunedChild(t *testing.T) {
	if os.Getenv(wireChildEnv) != "1" {
		t.Skip("robotuned child body; run via TestWireKillResume")
	}
	srv := server.New(server.Options{JournalDir: os.Getenv(wireDirEnv)})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// The parent parses this exact line for the port.
	fmt.Printf("CHILD_ADDR http://%s\n", ln.Addr())
	os.Stdout.Sync()
	t.Fatal(http.Serve(ln, srv.Handler())) // only SIGKILL ends this
}

// isNetErr reports an error that means "the server died mid-request",
// as opposed to an API-level rejection (which is an *APIError).
func isNetErr(err error) bool {
	var ae *client.APIError
	return err != nil && !errors.As(err, &ae)
}

// stressRig owns the child process and the session handle, and knows
// how to restart and reattach after a kill.
type stressRig struct {
	t     *testing.T
	dir   string
	id    string
	cmd   *exec.Cmd
	cl    *client.Client
	sess  *client.Session
	kills int
	delay time.Duration
}

func (r *stressRig) startChild() {
	t := r.t
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestRobotunedChild$", "-test.v")
	cmd.Env = append(os.Environ(), wireChildEnv+"=1", wireDirEnv+"="+r.dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "CHILD_ADDR "); ok {
			// Drain the rest of the child's output so it never blocks on
			// a full pipe.
			go func() {
				for sc.Scan() {
				}
			}()
			r.cmd = cmd
			r.cl.BaseURL = addr
			return
		}
	}
	_ = cmd.Process.Kill()
	t.Fatal("child exited without printing CHILD_ADDR")
}

func (r *stressRig) killChild() {
	if r.cmd != nil && r.cmd.Process != nil {
		_ = r.cmd.Process.Signal(syscall.SIGKILL)
		_, _ = r.cmd.Process.Wait()
	}
}

// recover kills whatever is left of the child, restarts it on the
// same journal directory and reattaches the session.
func (r *stressRig) recover() {
	t := r.t
	t.Helper()
	r.killChild()
	r.kills++
	r.delay += 10 * time.Millisecond
	r.startChild()
	for attempt := 0; ; attempt++ {
		sess, err := r.cl.Attach(r.id)
		if err == nil {
			r.sess = sess
			return
		}
		if attempt > 50 {
			t.Fatalf("reattach after restart: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWireKillResume: drive a campaign against a robotuned child,
// SIGKILL it at escalating depths, restart on the same journal dir,
// reattach, continue. The stitched history must match an
// uninterrupted baseline bit-for-bit.
func TestWireKillResume(t *testing.T) {
	if os.Getenv(wireStressEnv) == "" {
		t.Skip("set " + wireStressEnv + "=1 (or run `make crash-stress`) to enable")
	}

	// Uninterrupted baseline, in-process.
	base := newEnv(t, server.Options{JournalDir: t.TempDir()})
	bs, err := base.cl.Create(wireSpec())
	if err != nil {
		t.Fatal(err)
	}
	drive(t, bs)
	baseSt, err := bs.FullStatus()
	if err != nil {
		t.Fatal(err)
	}
	if !baseSt.Found {
		t.Fatal("baseline found nothing")
	}

	// Stressed run: a real child process, killed and restarted. The
	// parent kills synchronously at a per-round deadline rather than
	// from a timer goroutine, so every kill lands between two requests
	// of a known round — the depth still walks through the whole
	// campaign as the delay escalates.
	rig := &stressRig{t: t, dir: t.TempDir(), cl: client.New(""), delay: 10 * time.Millisecond}
	rig.startChild()
	defer rig.killChild()
	sess, err := rig.cl.Create(wireSpec())
	if err != nil {
		t.Fatal(err)
	}
	rig.id, rig.sess = sess.ID, sess

	complete := false
	roundStart := time.Now()
	for round := 0; !complete; round++ {
		if round > 5000 {
			t.Fatal("campaign did not complete within 5000 rounds")
		}
		// The kill: once this round has run past the current depth, the
		// child dies mid-conversation and the next request hits a dead
		// server.
		if time.Since(roundStart) > rig.delay {
			rig.killChild()
			roundStart = time.Now()
		}
		props, done, err := rig.sess.Propose(0)
		if err != nil {
			if !isNetErr(err) {
				t.Fatalf("propose: %v", err)
			}
			rig.recover()
			roundStart = time.Now()
			continue
		}
		if len(props) == 0 && done {
			complete = true
			break
		}
		for _, p := range props {
			sec, ok := objective(p.Config)
			for {
				_, oerr := rig.sess.Observe(client.Observation{Config: p.Config, Seconds: sec, Completed: ok})
				if oerr == nil {
					break
				}
				if client.IsConflict(oerr) {
					// The observation was journaled before a crash but the
					// response never reached us; the server already has it.
					break
				}
				if !isNetErr(oerr) {
					t.Fatalf("observe: %v", oerr)
				}
				rig.recover()
				roundStart = time.Now()
			}
		}
	}
	t.Logf("campaign completed after %d SIGKILLs", rig.kills)
	if rig.kills == 0 {
		t.Log("no kill landed mid-campaign; widen the campaign or shrink the first delay")
	}

	st, err := rig.sess.FullStatus()
	if err != nil {
		t.Fatal(err)
	}
	if st.Diverged != "" {
		t.Fatalf("stitched journal diverged: %s", st.Diverged)
	}
	if len(st.Trace) != len(baseSt.Trace) {
		t.Fatalf("trace lengths: stressed %d vs baseline %d", len(st.Trace), len(baseSt.Trace))
	}
	for i := range st.Trace {
		if st.Trace[i] != baseSt.Trace[i] {
			t.Fatalf("trace[%d]: stressed %x vs baseline %x", i, st.Trace[i], baseSt.Trace[i])
		}
	}
	if st.BestSeconds != baseSt.BestSeconds || st.Evals != baseSt.Evals {
		t.Fatalf("result drifted: best %x evals %d vs baseline best %x evals %d",
			st.BestSeconds, st.Evals, baseSt.BestSeconds, baseSt.Evals)
	}

	res, err := rig.sess.Finish()
	if err != nil {
		t.Fatalf("finish after stitched campaign: %v", err)
	}
	if !res.Found || res.BestSeconds != baseSt.BestSeconds {
		t.Fatalf("final result: %+v, want best %v", res, baseSt.BestSeconds)
	}
}
