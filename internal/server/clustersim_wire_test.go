package server_test

import (
	"encoding/json"
	"net/http"
	"sync"
	"testing"

	"repro/client"
	"repro/internal/backend"
	_ "repro/internal/backend/backends"
	"repro/internal/server"
)

// clusterEval builds a clustersim evaluator through the registry, the
// way a real remote agent tuning its scheduler would.
func clusterEval(t *testing.T, seed uint64) (backend.Evaluator, *backend.Backend) {
	t.Helper()
	bk, err := backend.Lookup("clustersim")
	if err != nil {
		t.Fatal(err)
	}
	w, err := bk.Workload("CIBuild", 0)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := bk.NewEvaluator(w, seed, 0, backend.FaultPlan{})
	if err != nil {
		t.Fatal(err)
	}
	return ev, &bk
}

// driveCluster runs a session to completion, evaluating every
// proposal on a live clustersim evaluator.
func driveCluster(t *testing.T, sess *client.Session, bk backend.Backend, ev backend.Evaluator) (trials int, best float64) {
	t.Helper()
	space := bk.Space()
	best = -1
	for i := 0; i < 10_000; i++ {
		props, done, err := sess.Propose(0)
		if err != nil {
			t.Fatalf("propose: %v", err)
		}
		if len(props) == 0 {
			if done {
				return trials, best
			}
			t.Fatalf("stepper idle with nothing outstanding after %d trials", trials)
		}
		for _, p := range props {
			cfg, err := space.FromRaw(p.Config)
			if err != nil {
				t.Fatalf("proposal outside the clustersim space: %v", err)
			}
			rec := ev.EvaluateSpec(cfg, backend.EvalSpec{Cap: p.Cap})
			res, err := sess.Observe(client.Observation{
				Config: p.Config, Seconds: rec.Seconds, Raw: rec.Raw,
				Completed: rec.Completed, OOM: rec.OOM,
				Infeasible: rec.Infeasible, Cap: p.Cap,
			})
			if err != nil {
				t.Fatalf("observe: %v", err)
			}
			trials++
			if res.Found {
				best = res.BestSeconds
			}
		}
	}
	t.Fatal("session did not finish within 10000 rounds")
	return
}

// TestClusterSimSessionOverWire is the second backend's wire
// acceptance test: a session created with the built-in "clustersim"
// space name runs the full ask/tell lifecycle against a live cluster
// simulator, and the same seed reproduces the same result.
func TestClusterSimSessionOverWire(t *testing.T) {
	env := newEnv(t, server.Options{JournalDir: t.TempDir()})
	run := func(seed uint64) (int, float64) {
		sess, err := env.cl.Create(client.SessionSpec{
			Tuner:    "randomsearch",
			Space:    json.RawMessage(`"clustersim"`),
			Budget:   8,
			Seed:     seed,
			Workload: "CIBuild",
			Dataset:  "D1",
		})
		if err != nil {
			t.Fatal(err)
		}
		ev, bk := clusterEval(t, seed)
		trials, best := driveCluster(t, sess, *bk, ev)
		if _, err := sess.Finish(); err != nil {
			t.Fatalf("finish: %v", err)
		}
		return trials, best
	}
	trials, best := run(11)
	if trials != 8 {
		t.Fatalf("delivered %d observations, want the full budget of 8", trials)
	}
	if best <= 0 {
		t.Fatalf("no completing configuration found (best %v)", best)
	}
	trials2, best2 := run(11)
	if trials2 != trials || best2 != best {
		t.Fatalf("same seed not reproducible over the wire: %d/%v vs %d/%v", trials, best, trials2, best2)
	}
}

// TestSpecPriorityValidation: only "", "bulk" and "latency" pass the
// spec decoder.
func TestSpecPriorityValidation(t *testing.T) {
	if _, err := server.DecodeSessionSpec([]byte(`{"tuner":"randomsearch","space":"spark","budget":5,"priority":"latency"}`)); err != nil {
		t.Fatalf("latency priority rejected: %v", err)
	}
	if _, err := server.DecodeSessionSpec([]byte(`{"tuner":"randomsearch","space":"spark","budget":5,"priority":"urgent"}`)); err == nil {
		t.Fatal("bogus priority accepted")
	}
}

// TestProposePoolMetrics: with a 1-slot propose pool, concurrent
// sessions serialize their propose computations and /metrics reports
// the pool's class accounting.
func TestProposePoolMetrics(t *testing.T) {
	env := newEnv(t, server.Options{ProposeSlots: 1})
	var wg sync.WaitGroup
	for i, prio := range []string{"bulk", "latency", "bulk", "latency"} {
		sp := spec("randomsearch", 6, uint64(20+i))
		sp.Priority = prio
		sess, err := env.cl.Create(sp)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			drive(t, sess)
		}()
	}
	wg.Wait()

	resp, err := http.Get(env.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Pool *server.PoolView `json:"pool"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Pool == nil {
		t.Fatal("/metrics misses the pool section on a pooled server")
	}
	if doc.Pool.Capacity != 1 {
		t.Fatalf("pool capacity %d, want 1", doc.Pool.Capacity)
	}
	if doc.Pool.InUse != 0 {
		t.Fatalf("pool reports %d slots in use after every session finished", doc.Pool.InUse)
	}
	total := int64(0)
	for _, cls := range []string{"bulk", "latency"} {
		cv, ok := doc.Pool.Classes[cls]
		if !ok {
			t.Fatalf("pool metrics miss class %q", cls)
		}
		if cv.Acquires == 0 {
			t.Errorf("class %q recorded no acquires", cls)
		}
		total += cv.Acquires
	}
	if total == 0 {
		t.Fatal("no propose computations charged against the pool")
	}
}

// TestPoolAbsentWithoutSlots: a server without ProposeSlots reports no
// pool section.
func TestPoolAbsentWithoutSlots(t *testing.T) {
	env := newEnv(t, server.Options{})
	sess, err := env.cl.Create(spec("randomsearch", 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	drive(t, sess)
	resp, err := http.Get(env.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["pool"]; ok {
		t.Fatal("/metrics carries a pool section on an unpooled server")
	}
}
