package cli

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/conf"
)

func TestParseRaw(t *testing.T) {
	space := conf.SparkSpace()
	intP, _ := space.Param(conf.ExecutorCores)
	floatP, _ := space.Param(conf.MemoryFraction)
	boolP, _ := space.Param(conf.ShuffleCompress)
	catP, _ := space.Param(conf.Serializer)

	cases := []struct {
		p      conf.Param
		in     string
		want   float64
		hasErr bool
	}{
		{intP, "8", 8, false},
		{intP, "abc", 0, true},
		{floatP, "0.7", 0.7, false},
		{boolP, "true", 1, false},
		{boolP, "false", 0, false},
		{boolP, "maybe", 0, true},
		{catP, "kryo", 1, false},
		{catP, "java", 0, false},
		{catP, "protobuf", 0, true},
	}
	for _, c := range cases {
		got, err := ParseRaw(c.p, c.in)
		if (err != nil) != c.hasErr {
			t.Errorf("%s %q: err=%v want hasErr=%v", c.p.Name, c.in, err, c.hasErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("%s %q = %v, want %v", c.p.Name, c.in, got, c.want)
		}
	}
}

func TestParseSet(t *testing.T) {
	n, v, err := ParseSet("a.b=3")
	if err != nil || n != "a.b" || v != "3" {
		t.Errorf("ParseSet = %q %q %v", n, v, err)
	}
	if _, _, err := ParseSet("noequals"); err == nil {
		t.Error("missing = accepted")
	}
	if _, _, err := ParseSet("=v"); err == nil {
		t.Error("empty name accepted")
	}
	// Values may contain '='.
	n, v, err = ParseSet("k=a=b")
	if err != nil || n != "k" || v != "a=b" {
		t.Errorf("ParseSet with = in value: %q %q %v", n, v, err)
	}
}

func TestApplySets(t *testing.T) {
	space := conf.SparkSpace()
	c, err := ApplySets(space, space.Default(), map[string]string{
		conf.ExecutorCores: "12",
		conf.Serializer:    "kryo",
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Int(conf.ExecutorCores) != 12 || c.Choice(conf.Serializer) != "kryo" {
		t.Errorf("overrides not applied: %d %s", c.Int(conf.ExecutorCores), c.Choice(conf.Serializer))
	}
	if _, err := ApplySets(space, space.Default(), map[string]string{"bogus": "1"}); err == nil {
		t.Error("unknown parameter accepted")
	}
	if _, err := ApplySets(space, space.Default(), map[string]string{conf.ExecutorCores: "x"}); err == nil {
		t.Error("bad value accepted")
	}
}

func TestConfigValuesRoundTrip(t *testing.T) {
	space := conf.SparkSpace()
	c := space.Default().With(conf.ExecutorMemory, 32768)
	path := filepath.Join(t.TempDir(), "cfg.json")
	if err := SaveConfigValues(c, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadConfigValues(space, path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Equal(c) {
		t.Error("round trip changed the config")
	}
}

func TestLoadConfigValuesErrors(t *testing.T) {
	space := conf.SparkSpace()
	if _, err := LoadConfigValues(space, filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := LoadConfigValues(space, bad); err == nil {
		t.Error("corrupt file accepted")
	}
	unknown := filepath.Join(t.TempDir(), "unknown.json")
	os.WriteFile(unknown, []byte(`{"bogus": 1}`), 0o644)
	if _, err := LoadConfigValues(space, unknown); err == nil {
		t.Error("unknown parameter accepted")
	}
}

func TestBuildTuner(t *testing.T) {
	for name, want := range map[string]string{
		"ROBOTune":     "ROBOTune",
		"robotune":     "ROBOTune",
		"BestConfig":   "BestConfig",
		"gunther":      "Gunther",
		"rs":           "RandomSearch",
		"RandomSearch": "RandomSearch",
		"sha":          "SuccessiveHalving",
		"cmaes":        "CMAES",
	} {
		tn, err := BuildTuner(name, nil, 0)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if tn.Name() != want {
			t.Errorf("%s → %s, want %s", name, tn.Name(), want)
		}
	}
	if _, err := BuildTuner("simulated-annealing", nil, 0); err == nil {
		t.Error("unknown tuner accepted")
	}
}
