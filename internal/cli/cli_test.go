package cli

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/conf"
	"repro/internal/sparksim"
	"repro/internal/tuners"
)

func TestParseRaw(t *testing.T) {
	space := conf.SparkSpace()
	intP, _ := space.Param(conf.ExecutorCores)
	floatP, _ := space.Param(conf.MemoryFraction)
	boolP, _ := space.Param(conf.ShuffleCompress)
	catP, _ := space.Param(conf.Serializer)

	cases := []struct {
		p      conf.Param
		in     string
		want   float64
		hasErr bool
	}{
		{intP, "8", 8, false},
		{intP, "abc", 0, true},
		{floatP, "0.7", 0.7, false},
		{boolP, "true", 1, false},
		{boolP, "false", 0, false},
		{boolP, "maybe", 0, true},
		{catP, "kryo", 1, false},
		{catP, "java", 0, false},
		{catP, "protobuf", 0, true},
	}
	for _, c := range cases {
		got, err := ParseRaw(c.p, c.in)
		if (err != nil) != c.hasErr {
			t.Errorf("%s %q: err=%v want hasErr=%v", c.p.Name, c.in, err, c.hasErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("%s %q = %v, want %v", c.p.Name, c.in, got, c.want)
		}
	}
}

func TestParseSet(t *testing.T) {
	n, v, err := ParseSet("a.b=3")
	if err != nil || n != "a.b" || v != "3" {
		t.Errorf("ParseSet = %q %q %v", n, v, err)
	}
	if _, _, err := ParseSet("noequals"); err == nil {
		t.Error("missing = accepted")
	}
	if _, _, err := ParseSet("=v"); err == nil {
		t.Error("empty name accepted")
	}
	// Values may contain '='.
	n, v, err = ParseSet("k=a=b")
	if err != nil || n != "k" || v != "a=b" {
		t.Errorf("ParseSet with = in value: %q %q %v", n, v, err)
	}
}

func TestApplySets(t *testing.T) {
	space := conf.SparkSpace()
	c, err := ApplySets(space, space.Default(), map[string]string{
		conf.ExecutorCores: "12",
		conf.Serializer:    "kryo",
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Int(conf.ExecutorCores) != 12 || c.Choice(conf.Serializer) != "kryo" {
		t.Errorf("overrides not applied: %d %s", c.Int(conf.ExecutorCores), c.Choice(conf.Serializer))
	}
	if _, err := ApplySets(space, space.Default(), map[string]string{"bogus": "1"}); err == nil {
		t.Error("unknown parameter accepted")
	}
	if _, err := ApplySets(space, space.Default(), map[string]string{conf.ExecutorCores: "x"}); err == nil {
		t.Error("bad value accepted")
	}
}

func TestConfigValuesRoundTrip(t *testing.T) {
	space := conf.SparkSpace()
	c := space.Default().With(conf.ExecutorMemory, 32768)
	path := filepath.Join(t.TempDir(), "cfg.json")
	if err := SaveConfigValues(c, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadConfigValues(space, path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Equal(c) {
		t.Error("round trip changed the config")
	}
}

func TestLoadConfigValuesErrors(t *testing.T) {
	space := conf.SparkSpace()
	if _, err := LoadConfigValues(space, filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := LoadConfigValues(space, bad); err == nil {
		t.Error("corrupt file accepted")
	}
	unknown := filepath.Join(t.TempDir(), "unknown.json")
	os.WriteFile(unknown, []byte(`{"bogus": 1}`), 0o644)
	if _, err := LoadConfigValues(space, unknown); err == nil {
		t.Error("unknown parameter accepted")
	}
}

func TestBuildTuner(t *testing.T) {
	for name, want := range map[string]string{
		"ROBOTune":     "ROBOTune",
		"robotune":     "ROBOTune",
		"BestConfig":   "BestConfig",
		"gunther":      "Gunther",
		"rs":           "RandomSearch",
		"RandomSearch": "RandomSearch",
		"sha":          "SuccessiveHalving",
		"cmaes":        "CMAES",
	} {
		tn, err := BuildTuner(name, nil, 0)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if tn.Name() != want {
			t.Errorf("%s → %s, want %s", name, tn.Name(), want)
		}
	}
	if _, err := BuildTuner("simulated-annealing", nil, 0); err == nil {
		t.Error("unknown tuner accepted")
	}
}

func TestParseFidelityAxis(t *testing.T) {
	for spec, want := range map[string]tuners.FidelityAxis{
		"": tuners.AxisInput, "input": tuners.AxisInput, " Input ": tuners.AxisInput,
		"stage": tuners.AxisStage, "STAGE": tuners.AxisStage,
	} {
		got, err := ParseFidelityAxis(spec)
		if err != nil || got != want {
			t.Errorf("ParseFidelityAxis(%q) = %v, %v; want %v", spec, got, err, want)
		}
	}
	if _, err := ParseFidelityAxis("volume"); err == nil {
		t.Error("bad axis accepted")
	}
}

func TestParseFaultPlan(t *testing.T) {
	for _, spec := range []string{"", "off", "none", " "} {
		p, err := ParseFaultPlan(spec)
		if err != nil || p.Enabled() {
			t.Errorf("%q: plan %v err %v, want disabled", spec, p, err)
		}
	}

	p, err := ParseFaultPlan("execloss=0.2, transient=0.1, seed=9")
	if err != nil {
		t.Fatal(err)
	}
	if p.ExecutorLossProb != 0.2 || p.TransientErrProb != 0.1 || p.Seed != 9 {
		t.Errorf("parsed %+v", p)
	}
	if !p.Enabled() {
		t.Error("plan with probabilities not enabled")
	}

	// "default" starts from the stock plan; later fields override.
	p, err = ParseFaultPlan("default,transient=0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := sparksim.DefaultFaultPlan()
	if p.ExecutorLossProb != want.ExecutorLossProb || p.TransientErrProb != 0.5 {
		t.Errorf("default+override parsed %+v", p)
	}

	// An active plan gets a non-zero seed so the fault stream is set.
	p, err = ParseFaultPlan("oom=0.3")
	if err != nil || p.Seed == 0 {
		t.Errorf("plan %+v err %v, want defaulted seed", p, err)
	}

	for _, bad := range []string{"bogus=1", "execloss", "transient=x", "seed=-1"} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestExitCode(t *testing.T) {
	if got := ExitCode(tuners.Result{Found: true}); got != 0 {
		t.Errorf("found result exits %d, want 0", got)
	}
	if got := ExitCode(tuners.Result{Found: false}); got != 1 {
		t.Errorf("not-found result exits %d, want 1", got)
	}
}
