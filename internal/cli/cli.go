// Package cli holds the shared, testable plumbing behind the
// command-line tools: parsing parameter overrides, assembling
// configurations from files and flags, and constructing tuners by
// name.
package cli

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/memo"
	"repro/internal/tuners"
)

// ParseRaw converts a textual parameter value ("8", "0.6", "true",
// "kryo") into the parameter's raw encoding.
func ParseRaw(p conf.Param, value string) (float64, error) {
	switch p.Kind {
	case conf.Bool:
		b, err := strconv.ParseBool(value)
		if err != nil {
			return 0, err
		}
		if b {
			return 1, nil
		}
		return 0, nil
	case conf.Categorical:
		for i, ch := range p.Choices {
			if ch == value {
				return float64(i), nil
			}
		}
		return 0, fmt.Errorf("choice %q not in %v", value, p.Choices)
	default:
		return strconv.ParseFloat(value, 64)
	}
}

// ParseSet splits a "name=value" override.
func ParseSet(v string) (name, value string, err error) {
	name, value, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return "", "", fmt.Errorf("want name=value, got %q", v)
	}
	return name, value, nil
}

// ApplySets layers name=value overrides onto a configuration.
func ApplySets(space *conf.Space, c conf.Config, sets map[string]string) (conf.Config, error) {
	for name, value := range sets {
		p, ok := space.Param(name)
		if !ok {
			return conf.Config{}, fmt.Errorf("unknown parameter %q", name)
		}
		raw, err := ParseRaw(p, value)
		if err != nil {
			return conf.Config{}, fmt.Errorf("%s: %w", name, err)
		}
		c = c.With(name, raw)
	}
	return c, nil
}

// LoadConfigValues reads a JSON {name: rawValue} file (the format the
// memo store and session traces use) into a Config.
func LoadConfigValues(space *conf.Space, path string) (conf.Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return conf.Config{}, err
	}
	var values map[string]float64
	if err := json.Unmarshal(data, &values); err != nil {
		return conf.Config{}, fmt.Errorf("parse %s: %w", path, err)
	}
	return space.FromRaw(values)
}

// SaveConfigValues writes a Config as the JSON {name: rawValue} file
// LoadConfigValues reads.
func SaveConfigValues(c conf.Config, path string) error {
	data, err := json.MarshalIndent(c.ToMap(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// BuildTuner constructs a tuner by (case-insensitive) name. ROBOTune
// is backed by the given store (nil for in-memory) and runs its
// internal math on `workers` goroutines (0 = GOMAXPROCS, 1 = serial;
// results are identical either way).
func BuildTuner(name string, store *memo.Store, workers int) (tuners.Tuner, error) {
	switch strings.ToLower(name) {
	case "robotune":
		return core.New(store, core.Options{Workers: workers}), nil
	case "bestconfig":
		return tuners.BestConfig{}, nil
	case "gunther":
		return tuners.Gunther{}, nil
	case "randomsearch", "rs", "random":
		return tuners.RandomSearch{}, nil
	case "successivehalving", "sha":
		return tuners.SuccessiveHalving{}, nil
	case "cmaes", "cma-es":
		return tuners.CMAES{}, nil
	}
	return nil, fmt.Errorf("unknown tuner %q (have ROBOTune, BestConfig, Gunther, RandomSearch, SuccessiveHalving, CMAES)", name)
}
