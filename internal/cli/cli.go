// Package cli holds the shared, testable plumbing behind the
// command-line tools: parsing parameter overrides, assembling
// configurations from files and flags, and constructing tuners by
// name.
package cli

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/backend"
	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/memo"
	"repro/internal/tuners"
)

// ParseRaw converts a textual parameter value ("8", "0.6", "true",
// "kryo") into the parameter's raw encoding.
func ParseRaw(p conf.Param, value string) (float64, error) {
	switch p.Kind {
	case conf.Bool:
		b, err := strconv.ParseBool(value)
		if err != nil {
			return 0, err
		}
		if b {
			return 1, nil
		}
		return 0, nil
	case conf.Categorical:
		for i, ch := range p.Choices {
			if ch == value {
				return float64(i), nil
			}
		}
		return 0, fmt.Errorf("choice %q not in %v", value, p.Choices)
	default:
		return strconv.ParseFloat(value, 64)
	}
}

// ParseSet splits a "name=value" override.
func ParseSet(v string) (name, value string, err error) {
	name, value, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return "", "", fmt.Errorf("want name=value, got %q", v)
	}
	return name, value, nil
}

// ApplySets layers name=value overrides onto a configuration.
func ApplySets(space *conf.Space, c conf.Config, sets map[string]string) (conf.Config, error) {
	for name, value := range sets {
		p, ok := space.Param(name)
		if !ok {
			return conf.Config{}, fmt.Errorf("unknown parameter %q", name)
		}
		raw, err := ParseRaw(p, value)
		if err != nil {
			return conf.Config{}, fmt.Errorf("%s: %w", name, err)
		}
		c = c.With(name, raw)
	}
	return c, nil
}

// LoadConfigValues reads a JSON {name: rawValue} file (the format the
// memo store and session traces use) into a Config.
func LoadConfigValues(space *conf.Space, path string) (conf.Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return conf.Config{}, err
	}
	var values map[string]float64
	if err := json.Unmarshal(data, &values); err != nil {
		return conf.Config{}, fmt.Errorf("parse %s: %w", path, err)
	}
	return space.FromRaw(values)
}

// SaveConfigValues writes a Config as the JSON {name: rawValue} file
// LoadConfigValues reads.
func SaveConfigValues(c conf.Config, path string) error {
	data, err := json.MarshalIndent(c.ToMap(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// BuildTuner constructs a tuner by (case-insensitive) name. ROBOTune
// is backed by the given store (nil for in-memory) and runs its
// internal math on `workers` goroutines (0 = GOMAXPROCS, 1 = serial;
// results are identical either way). Every tuner is a SessionTuner,
// so callers can attach a context, deadline and retry policy via
// tuners.NewSession.
func BuildTuner(name string, store *memo.Store, workers int) (tuners.SessionTuner, error) {
	return BuildTunerOpts(name, store, core.Options{Workers: workers})
}

// BuildTunerOpts is BuildTuner taking full ROBOTune options, for
// callers that thread scaling knobs (refit budget, sparse surrogate)
// beyond the worker count. opts only applies to ROBOTune; the
// baselines ignore it.
func BuildTunerOpts(name string, store *memo.Store, opts core.Options) (tuners.SessionTuner, error) {
	switch strings.ToLower(name) {
	case "robotune":
		return core.New(store, opts), nil
	case "bestconfig":
		return tuners.BestConfig{}, nil
	case "gunther":
		return tuners.Gunther{}, nil
	case "randomsearch", "rs", "random":
		return tuners.RandomSearch{}, nil
	case "successivehalving", "sha":
		return tuners.SuccessiveHalving{}, nil
	case "cmaes", "cma-es":
		return tuners.CMAES{}, nil
	case "bohb":
		b, err := buildBOHB(opts)
		if err != nil {
			return nil, err
		}
		return b, nil
	}
	return nil, fmt.Errorf("unknown tuner %q (have ROBOTune, BestConfig, Gunther, RandomSearch, SuccessiveHalving, CMAES, BOHB)", name)
}

// buildBOHB maps the shared Options onto the multi-fidelity tuner:
// the fidelity ladder, axis and cost-aware toggle come straight from
// Options, Parallel becomes the rung-wave worker count, and Workers
// drives the engine's internal math like everywhere else.
func buildBOHB(opts core.Options) (tuners.BOHB, error) {
	if opts.FidelityLadder != nil {
		if err := tuners.ValidFidelityLadder(opts.FidelityLadder); err != nil {
			return tuners.BOHB{}, fmt.Errorf("fidelity ladder: %w", err)
		}
	}
	axis, err := ParseFidelityAxis(opts.FidelityAxis)
	if err != nil {
		return tuners.BOHB{}, err
	}
	bocfg := opts.BO
	bocfg.CostAware = bocfg.CostAware || opts.CostAware
	if bocfg.Workers == 0 {
		bocfg.Workers = opts.Workers
	}
	return tuners.BOHB{Ladder: opts.FidelityLadder, Axis: axis, BO: bocfg, Workers: opts.Parallel}, nil
}

// ParseFidelityAxis maps the textual fidelity axis ("", "input",
// "stage") onto the tuner constant.
func ParseFidelityAxis(s string) (tuners.FidelityAxis, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "input":
		return tuners.AxisInput, nil
	case "stage":
		return tuners.AxisStage, nil
	}
	return tuners.AxisInput, fmt.Errorf("fidelity axis %q: want \"input\" or \"stage\"", s)
}

// ParseFidelityLadder parses a comma-separated fidelity ladder —
// ascending input-scale fractions ending at 1, e.g. "0.111,0.333,1"
// — and validates it. "" returns nil (the tuner's default ladder).
func ParseFidelityLadder(spec string) ([]float64, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("fidelity ladder: bad rung %q", p)
		}
		out = append(out, v)
	}
	if err := tuners.ValidFidelityLadder(out); err != nil {
		return nil, err
	}
	return out, nil
}

// TunerKinds lists the canonical tuner names BuildTuner and
// BuildStepper accept, for error messages and wire-spec validation.
func TunerKinds() []string {
	return []string{"robotune", "bestconfig", "gunther", "randomsearch", "successivehalving", "cmaes", "bohb"}
}

// BuildStepper constructs the ask/tell (externally driven) form of a
// tuner by name — the factory behind the robotuned wire server, where
// every session is a stepper fed observations from remote clients.
// opts only applies to ROBOTune; the baselines ignore it. Each call
// builds an isolated tuner (ROBOTune gets a private memo store), so
// two sessions never couple through shared selection caches — a
// rehydrated session must re-derive exactly what the original did.
func BuildStepper(name string, space *conf.Space, budget int, seed uint64, workload, dataset string, opts core.Options) (tuners.Stepper, error) {
	switch strings.ToLower(name) {
	case "robotune":
		return core.New(nil, opts).Stepper(space, budget, seed, workload, dataset), nil
	case "bestconfig":
		return tuners.BestConfig{}.Stepper(space, budget, seed), nil
	case "gunther":
		return tuners.Gunther{}.Stepper(space, budget, seed), nil
	case "randomsearch", "rs", "random":
		return tuners.RandomSearch{}.Stepper(space, budget, seed), nil
	case "successivehalving", "sha":
		return tuners.SuccessiveHalving{}.Stepper(space, budget, seed), nil
	case "cmaes", "cma-es":
		return tuners.CMAES{}.Stepper(space, budget, seed), nil
	case "bohb":
		b, err := buildBOHB(opts)
		if err != nil {
			return nil, err
		}
		return b.Stepper(space, budget, seed), nil
	}
	return nil, fmt.Errorf("unknown tuner %q (have %s)", name, strings.Join(TunerKinds(), ", "))
}

// ParseFaultPlan parses a fault-injection spec of the form
//
//	execloss=0.1,straggler=0.08,stragglerfactor=3,transient=0.12,oom=0.04,seed=7
//
// Fields may appear in any order and default to zero (seed defaults
// to 1 when any probability is set, so the plan is active). The
// keyword "default" (alone or as a leading field) starts from
// backend.DefaultFaultPlan(); "" and "off" return the zero plan.
func ParseFaultPlan(spec string) (backend.FaultPlan, error) {
	var plan backend.FaultPlan
	spec = strings.TrimSpace(spec)
	if spec == "" || strings.EqualFold(spec, "off") || strings.EqualFold(spec, "none") {
		return plan, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		if strings.EqualFold(field, "default") {
			plan = backend.DefaultFaultPlan()
			continue
		}
		name, value, ok := strings.Cut(field, "=")
		if !ok {
			return backend.FaultPlan{}, fmt.Errorf("fault plan: want name=value, got %q", field)
		}
		name = strings.ToLower(strings.TrimSpace(name))
		value = strings.TrimSpace(value)
		if name == "seed" {
			seed, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				return backend.FaultPlan{}, fmt.Errorf("fault plan: seed: %w", err)
			}
			plan.Seed = seed
			continue
		}
		f, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return backend.FaultPlan{}, fmt.Errorf("fault plan: %s: %w", name, err)
		}
		switch name {
		case "execloss", "executorloss":
			plan.ExecutorLossProb = f
		case "straggler":
			plan.StragglerProb = f
		case "stragglerfactor":
			plan.StragglerFactor = f
		case "transient":
			plan.TransientErrProb = f
		case "oom":
			plan.SpuriousOOMProb = f
		default:
			return backend.FaultPlan{}, fmt.Errorf("fault plan: unknown field %q (have execloss, straggler, stragglerfactor, transient, oom, seed)", name)
		}
	}
	if plan.Enabled() && plan.Seed == 0 {
		plan.Seed = 1
	}
	return plan, nil
}

// ExitCode maps a tuning result to a process exit status: 0 when a
// completing configuration was found, 1 otherwise. Scripts drive the
// CLI tools with this contract — a tuner that exhausts its budget
// without one completing run is a failure, even though the process
// itself ran fine.
func ExitCode(res tuners.Result) int {
	if res.Found {
		return 0
	}
	return 1
}
