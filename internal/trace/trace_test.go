package trace

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/backend"
	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/memo"
	"repro/internal/sparksim"
	"repro/internal/tuners"
)

func newRecorder(t *testing.T) *Recorder {
	t.Helper()
	ev := sparksim.NewEvaluator(sparksim.PaperCluster(), sparksim.TeraSort(20), 1, 480)
	return NewRecorder(ev)
}

func TestRecorderLogsEvaluations(t *testing.T) {
	r := newRecorder(t)
	space := conf.SparkSpace()
	c := space.Default().With(conf.ExecutorMemory, 32768).With(conf.ExecutorCores, 8)
	r.EvaluateSpec(c, backend.EvalSpec{})
	r.EvaluateSpec(c, backend.EvalSpec{Cap: 200})
	recs := r.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Index != 0 || recs[1].Index != 1 {
		t.Error("indices wrong")
	}
	if recs[0].Values[conf.ExecutorMemory] != 32768 {
		t.Error("config values not captured")
	}
	if r.Evals() != 2 || r.SearchCost() <= 0 {
		t.Error("objective forwarding broken")
	}
	if r.WorkloadName() != "TeraSort" || r.DatasetName() != "20GB" {
		t.Error("identity forwarding broken")
	}
}

func TestRecorderThroughROBOTuneAndRoundTrip(t *testing.T) {
	ev := sparksim.NewEvaluator(sparksim.PaperCluster(), sparksim.TeraSort(20), 2, 480)
	rec := NewRecorder(ev)
	opts := core.Options{GenericSamples: 40, PermuteRepeats: 2}
	rt := core.New(nil, opts)
	res := rt.Tune(rec, conf.SparkSpace(), 20, 2)
	if !res.Found {
		t.Fatal("tuning failed")
	}
	// Selection (40) + tuning (20) evaluations all logged.
	if got := len(rec.Records()); got != 60 {
		t.Fatalf("recorded %d evaluations, want 60", got)
	}
	// ROBOTune saw the identity through the wrapper → memoization ran.
	if len(res.SelectedParams) == 0 {
		t.Error("selection did not run through the recorder")
	}

	sess := rec.Finish("ROBOTune", 20, 2, res)
	if sess.Workload != "TeraSort" || sess.Tuner != "ROBOTune" || !sess.Found {
		t.Fatalf("session summary: %+v", sess)
	}

	path := filepath.Join(t.TempDir(), "session.json")
	if err := sess.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Records) != 60 || loaded.BestSeconds != sess.BestSeconds {
		t.Fatalf("round trip lost data: %d records, best %v", len(loaded.Records), loaded.BestSeconds)
	}

	// Convergence curve is non-increasing.
	curve := loaded.RunningMin()
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1] {
			t.Fatalf("running min increased at %d", i)
		}
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSanitize(t *testing.T) {
	if sanitize(math.NaN()) != -1 || sanitize(math.Inf(1)) != -1 {
		t.Error("non-finite values should map to -1")
	}
	if sanitize(3.5) != 3.5 {
		t.Error("finite values must pass through")
	}
}

func TestRecorderSatisfiesObjective(t *testing.T) {
	var _ tuners.Objective = newRecorder(t)
}

func TestSeedStoreRecoversSession(t *testing.T) {
	// Simulate a session that crashed after its evaluations were
	// logged: the trace seeds a fresh store, and the next session
	// starts warm (selection cached, memo configs present).
	ev := sparksim.NewEvaluator(sparksim.PaperCluster(), sparksim.TeraSort(20), 5, 480)
	rec := NewRecorder(ev)
	rt := core.New(nil, core.Options{GenericSamples: 40, PermuteRepeats: 2})
	res := rt.Tune(rec, conf.SparkSpace(), 20, 5)
	sess := rec.Finish("ROBOTune", 20, 5, res)

	store := memo.NewStore()
	n := sess.SeedStore(store, 8)
	if n == 0 {
		t.Fatal("nothing recovered from the trace")
	}
	if _, hit := store.Selection("TeraSort"); !hit {
		t.Error("selection not recovered")
	}
	best := store.BestConfigs("TeraSort", 4)
	if len(best) == 0 {
		t.Fatal("memo buffer empty after recovery")
	}
	// Best recovered config matches the session's best.
	if best[0].Seconds != res.BestSeconds {
		t.Errorf("recovered best %v != session best %v", best[0].Seconds, res.BestSeconds)
	}

	// A new tuner over the recovered store skips selection.
	rt2 := core.New(store, core.Options{GenericSamples: 40, PermuteRepeats: 2})
	ev2 := sparksim.NewEvaluator(sparksim.PaperCluster(), sparksim.TeraSort(30), 6, 480)
	res2 := rt2.Tune(ev2, conf.SparkSpace(), 15, 6)
	if res2.SelectionEvals != 0 {
		t.Errorf("recovered store did not give a cache hit: %d selection evals", res2.SelectionEvals)
	}
}

func TestSeedStoreEmptySession(t *testing.T) {
	store := memo.NewStore()
	if n := (Session{}).SeedStore(store, 4); n != 0 {
		t.Errorf("empty session seeded %d configs", n)
	}
}
