// Package trace records tuning sessions as structured, serializable
// logs — every evaluated configuration with its outcome, plus the
// session summary — so runs can be archived, diffed and analyzed
// outside the process (robotune's -trace flag writes these).
package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sync"

	"repro/internal/backend"
	"repro/internal/conf"
	"repro/internal/memo"
	"repro/internal/tuners"
)

// Record is one evaluated configuration.
type Record struct {
	// Index is the evaluation's 0-based position in the session.
	Index int `json:"index"`
	// Values holds the configuration's raw parameter values.
	Values map[string]float64 `json:"values"`
	// Seconds is the objective value observed (capped for failures).
	Seconds float64 `json:"seconds"`
	// Raw is the uncapped simulated duration.
	Raw float64 `json:"raw"`
	// Completed/OOM/Infeasible/Transient classify the outcome.
	Completed  bool `json:"completed"`
	OOM        bool `json:"oom,omitempty"`
	Infeasible bool `json:"infeasible,omitempty"`
	Transient  bool `json:"transient,omitempty"`
	// FidelityInput/FidelityStage mirror the run's backend.Fidelity
	// (omitted at full fidelity): proxy observations are marked so
	// offline analysis never mistakes their seconds for full-workload
	// measurements.
	FidelityInput float64 `json:"fidelityInput,omitempty"`
	FidelityStage float64 `json:"fidelityStage,omitempty"`
}

// Session is a complete tuning session log.
type Session struct {
	Workload string   `json:"workload"`
	Dataset  string   `json:"dataset"`
	Tuner    string   `json:"tuner"`
	Budget   int      `json:"budget"`
	Seed     uint64   `json:"seed"`
	Records  []Record `json:"records"`
	// Summary fields copied from the tuner result.
	BestSeconds    float64  `json:"bestSeconds"`
	Found          bool     `json:"found"`
	SearchCost     float64  `json:"searchCost"`
	SelectionEvals int      `json:"selectionEvals,omitempty"`
	SelectionCost  float64  `json:"selectionCost,omitempty"`
	SelectedParams []string `json:"selectedParams,omitempty"`
	// Failures summarizes the session's robustness counters; Cancelled
	// marks a session that was aborted via its context.
	Failures  tuners.FailureStats `json:"failures,omitempty"`
	Cancelled bool                `json:"cancelled,omitempty"`
}

// Recorder wraps a backend evaluator (any backend.Evaluator that also
// identifies its workload, e.g. *sparksim.Evaluator or a clustersim
// evaluator) and logs every evaluation. It satisfies tuners.Objective
// and forwards the optional capabilities ROBOTune probes for.
type Recorder struct {
	inner innerEvaluator

	mu      sync.Mutex
	records []Record
}

// innerEvaluator is the capability set Recorder requires: the unified
// evaluation entry point plus the memoization identity.
type innerEvaluator interface {
	backend.Evaluator
	backend.Identifiable
}

// NewRecorder wraps an evaluator.
func NewRecorder(inner innerEvaluator) *Recorder {
	return &Recorder{inner: inner}
}

// EvaluateSpec implements tuners.Objective, logging the evaluation.
func (r *Recorder) EvaluateSpec(c conf.Config, spec backend.EvalSpec) backend.EvalRecord {
	rec := r.inner.EvaluateSpec(c, spec)
	r.log(c, rec)
	return rec
}

// EvaluateSpecCtx forwards the batch capability
// (backend.BatchEvaluator), degrading to a sequential loop when the
// wrapped evaluator lacks it. Cancellation marks the unevaluated tail
// Skipped, and skipped entries are not logged (they were never run).
func (r *Recorder) EvaluateSpecCtx(ctx context.Context, cfgs []conf.Config, spec backend.EvalSpec) []backend.EvalRecord {
	var recs []backend.EvalRecord
	if be, ok := r.inner.(backend.BatchEvaluator); ok {
		recs = be.EvaluateSpecCtx(ctx, cfgs, spec)
	} else {
		recs = make([]backend.EvalRecord, len(cfgs))
		one := backend.EvalSpec{Cap: spec.Cap, Fidelity: spec.Fidelity}
		for i, c := range cfgs {
			if ctx != nil && ctx.Err() != nil {
				recs[i] = backend.EvalRecord{Config: c, Skipped: true}
				continue
			}
			recs[i] = r.inner.EvaluateSpec(c, one)
		}
	}
	for i, rec := range recs {
		if rec.Skipped {
			continue
		}
		r.log(cfgs[i], rec)
	}
	return recs
}

// SupportsFidelity forwards the proxy-run capability
// (backend.FidelitySupporter) so multi-fidelity sessions behave
// identically under tracing.
func (r *Recorder) SupportsFidelity() bool {
	if fs, ok := r.inner.(backend.FidelitySupporter); ok {
		return fs.SupportsFidelity()
	}
	return false
}

// RestoreStream forwards the resume capability (tuners.StreamRestorer)
// when the wrapped evaluator supports it, so journaled sessions stay
// bit-identical under tracing.
func (r *Recorder) RestoreStream(evals int, cost float64) {
	if sr, ok := r.inner.(backend.StreamRestorer); ok {
		sr.RestoreStream(evals, cost)
	}
}

// SearchCost implements tuners.Objective.
func (r *Recorder) SearchCost() float64 { return r.inner.SearchCost() }

// Evals implements tuners.Objective.
func (r *Recorder) Evals() int { return r.inner.Evals() }

// WorkloadName forwards the memoization identity.
func (r *Recorder) WorkloadName() string { return r.inner.WorkloadName() }

// DatasetName forwards the memoization identity.
func (r *Recorder) DatasetName() string { return r.inner.DatasetName() }

func (r *Recorder) log(c conf.Config, rec backend.EvalRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.records = append(r.records, Record{
		Index:         len(r.records),
		Values:        c.ToMap(),
		Seconds:       sanitize(rec.Seconds),
		Raw:           sanitize(rec.Raw),
		Completed:     rec.Completed,
		OOM:           rec.OOM,
		Infeasible:    rec.Infeasible,
		Transient:     rec.Transient,
		FidelityInput: rec.Fidelity.InputScale,
		FidelityStage: rec.Fidelity.StageFrac,
	})
}

func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return -1
	}
	return v
}

// Records returns a copy of the evaluation log so far.
func (r *Recorder) Records() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Record(nil), r.records...)
}

// Finish assembles the session log from the recorder and the tuner's
// result.
func (r *Recorder) Finish(tunerName string, budget int, seed uint64, res tuners.Result) Session {
	return Session{
		Workload:       r.WorkloadName(),
		Dataset:        r.DatasetName(),
		Tuner:          tunerName,
		Budget:         budget,
		Seed:           seed,
		Records:        r.Records(),
		BestSeconds:    sanitize(res.BestSeconds),
		Found:          res.Found,
		SearchCost:     res.SearchCost,
		SelectionEvals: res.SelectionEvals,
		SelectionCost:  res.SelectionCost,
		SelectedParams: res.SelectedParams,
		Failures:       res.Failures,
		Cancelled:      res.Cancelled,
	}
}

// Save writes the session as indented JSON.
func (s Session) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("trace: marshal: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("trace: write: %w", err)
	}
	return os.Rename(tmp, path)
}

// Load reads a session written by Save.
func Load(path string) (Session, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Session{}, fmt.Errorf("trace: read: %w", err)
	}
	var s Session
	if err := json.Unmarshal(data, &s); err != nil {
		return Session{}, fmt.Errorf("trace: parse %s: %w", path, err)
	}
	return s, nil
}

// FullFidelity reports whether the record measured the full workload
// (proxy runs from a multi-fidelity session report reduced-scale
// seconds).
func (r Record) FullFidelity() bool {
	return (r.FidelityInput == 0 || r.FidelityInput == 1) &&
		(r.FidelityStage == 0 || r.FidelityStage == 1)
}

// RunningMin returns the running minimum of the completed records'
// objective values — the Figure 6 convergence curve of a saved
// session. Proxy (reduced-fidelity) observations are excluded: their
// seconds measure a smaller workload and would fake convergence.
func (s Session) RunningMin() []float64 {
	out := make([]float64, len(s.Records))
	best := math.Inf(1)
	for i, rec := range s.Records {
		if rec.Seconds > 0 && rec.Seconds < best && rec.FullFidelity() {
			best = rec.Seconds
		}
		out[i] = best
	}
	return out
}

// SeedStore replays the session's completed observations into a memo
// store: the best K configurations enter the workload's memoization
// buffer. This recovers a crashed or interrupted session's knowledge
// — the next Tune for the family warm-starts from everything the lost
// session learned.
func (s Session) SeedStore(store *memo.Store, keep int) int {
	if keep <= 0 {
		keep = 16
	}
	var saved []memo.SavedConfig
	for _, rec := range s.Records {
		if !rec.Completed || rec.Seconds <= 0 || !rec.FullFidelity() {
			continue
		}
		saved = append(saved, memo.SavedConfig{
			Values:  rec.Values,
			Seconds: rec.Seconds,
			Dataset: s.Dataset,
		})
	}
	if len(saved) == 0 || s.Workload == "" {
		return 0
	}
	store.AddConfigs(s.Workload, saved, keep)
	if len(s.SelectedParams) > 0 {
		if _, hit := store.Selection(s.Workload); !hit {
			store.PutSelection(s.Workload, s.SelectedParams)
		}
	}
	return len(saved)
}
