package sample

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLHSStratification(t *testing.T) {
	rng := NewRNG(1)
	for _, tc := range []struct{ n, dim int }{
		{1, 1}, {2, 3}, {10, 5}, {20, 8}, {100, 44}, {7, 2},
	} {
		d := LHS(tc.n, tc.dim, rng)
		if len(d) != tc.n || d.Dim() != tc.dim {
			t.Fatalf("LHS(%d,%d) shape = (%d,%d)", tc.n, tc.dim, len(d), d.Dim())
		}
		if !Stratified(d) {
			t.Errorf("LHS(%d,%d) not stratified", tc.n, tc.dim)
		}
		if err := Validate(d); err != nil {
			t.Errorf("LHS(%d,%d): %v", tc.n, tc.dim, err)
		}
	}
}

func TestLHSStratificationProperty(t *testing.T) {
	f := func(seed uint64, n8, dim8 uint8) bool {
		n := int(n8%64) + 1
		dim := int(dim8%16) + 1
		d := LHS(n, dim, NewRNG(seed))
		return Stratified(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLHSDeterministic(t *testing.T) {
	a := LHS(25, 6, NewRNG(42))
	b := LHS(25, 6, NewRNG(42))
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("same seed produced different designs at (%d,%d)", i, j)
			}
		}
	}
}

func TestLHSDifferentSeedsDiffer(t *testing.T) {
	a := LHS(25, 6, NewRNG(1))
	b := LHS(25, 6, NewRNG(2))
	same := true
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical designs")
	}
}

func TestMaximinLHSKeepsStratification(t *testing.T) {
	rng := NewRNG(7)
	d := MaximinLHS(30, 4, 0, rng)
	if !Stratified(d) {
		t.Fatal("maximin refinement broke stratification")
	}
}

func TestMaximinImprovesOrMatchesMinDistance(t *testing.T) {
	// The maximin design's minimum pairwise distance should on average
	// be at least that of the plain LHS design with the same seed.
	var plain, maximin float64
	for seed := uint64(0); seed < 10; seed++ {
		p := LHS(20, 3, NewRNG(seed))
		m := MaximinLHS(20, 3, 2000, NewRNG(seed))
		plain += math.Sqrt(minPairDistance(p))
		maximin += math.Sqrt(minPairDistance(m))
	}
	if maximin < plain {
		t.Errorf("maximin mean min-dist %.4f < plain %.4f", maximin/10, plain/10)
	}
}

func TestUniform(t *testing.T) {
	rng := NewRNG(3)
	d := Uniform(50, 10, rng)
	if len(d) != 50 || d.Dim() != 10 {
		t.Fatalf("shape = (%d,%d)", len(d), d.Dim())
	}
	if err := Validate(d); err != nil {
		t.Fatal(err)
	}
}

func TestUniformCoverage(t *testing.T) {
	// With enough points every decile on axis 0 should be populated.
	rng := NewRNG(4)
	d := Uniform(2000, 1, rng)
	var buckets [10]int
	for _, p := range d {
		buckets[int(p[0]*10)]++
	}
	for i, c := range buckets {
		if c == 0 {
			t.Errorf("decile %d empty after 2000 uniform draws", i)
		}
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	if d := LHS(0, 5, NewRNG(1)); d != nil {
		t.Error("LHS(0,5) should be nil")
	}
	if d := LHS(5, 0, NewRNG(1)); d != nil {
		t.Error("LHS(5,0) should be nil")
	}
	if d := Uniform(-1, 5, NewRNG(1)); d != nil {
		t.Error("Uniform(-1,5) should be nil")
	}
	if !Stratified(nil) {
		t.Error("empty design is trivially stratified")
	}
	one := LHS(1, 1, NewRNG(1))
	if !Stratified(one) {
		t.Error("single point design should be stratified")
	}
}

func TestValidateCatchesBadRows(t *testing.T) {
	d := Design{{0.5, 0.5}, {0.5}}
	if err := Validate(d); err == nil {
		t.Error("ragged design not rejected")
	}
	d = Design{{0.5, 1.5}}
	if err := Validate(d); err == nil {
		t.Error("out-of-range coordinate not rejected")
	}
	d = Design{{math.NaN(), 0.1}}
	if err := Validate(d); err == nil {
		t.Error("NaN coordinate not rejected")
	}
}

func TestStratifiedRejectsClumpedDesign(t *testing.T) {
	d := Design{{0.1, 0.1}, {0.15, 0.9}} // both in first half of axis 0
	if Stratified(d) {
		t.Error("clumped design reported as stratified")
	}
}

func TestClone(t *testing.T) {
	d := LHS(5, 2, NewRNG(9))
	c := d.Clone()
	c[0][0] = 0.999
	if d[0][0] == 0.999 {
		t.Error("Clone shares backing storage")
	}
}
