// Package sample provides the sampling strategies ROBOTune uses to
// generate initial configuration designs: Latin Hypercube Sampling
// (optionally refined toward a maximin space-filling design) and plain
// uniform random sampling. All samplers produce points in the unit
// hypercube [0,1)^d; the conf package maps unit points to concrete
// configurations.
package sample

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Design is a set of points in the unit hypercube. Design[i] is the
// i-th sample; all samples share the same dimension.
type Design [][]float64

// Dim returns the dimensionality of the design, or 0 if it is empty.
func (d Design) Dim() int {
	if len(d) == 0 {
		return 0
	}
	return len(d[0])
}

// Clone returns a deep copy of the design.
func (d Design) Clone() Design {
	out := make(Design, len(d))
	for i, p := range d {
		out[i] = append([]float64(nil), p...)
	}
	return out
}

// NewRNG returns a deterministic PCG-based random source for the given
// seed. Every component in the repository derives its randomness from
// seeds so experiments are reproducible.
func NewRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// Uniform draws n independent uniform points in [0,1)^dim.
func Uniform(n, dim int, rng *rand.Rand) Design {
	if n <= 0 || dim <= 0 {
		return nil
	}
	d := make(Design, n)
	for i := range d {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.Float64()
		}
		d[i] = p
	}
	return d
}

// LHS generates an n-point Latin Hypercube design in [0,1)^dim.
//
// Each axis is divided into n equally probable intervals and exactly
// one sample lands in each interval per axis (the defining LHS
// property), with an independent random permutation per axis and a
// uniform jitter within each interval.
func LHS(n, dim int, rng *rand.Rand) Design {
	if n <= 0 || dim <= 0 {
		return nil
	}
	d := make(Design, n)
	for i := range d {
		d[i] = make([]float64, dim)
	}
	for j := 0; j < dim; j++ {
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			cell := float64(perm[i])
			d[i][j] = (cell + rng.Float64()) / float64(n)
		}
	}
	return d
}

// MaximinLHS generates an LHS design and then improves its minimum
// pairwise distance with a fixed budget of random column-swap moves,
// yielding a space-filling ("maximin") design while preserving the
// Latin property on every axis. iters is the number of candidate swaps
// to try; 50*n is a reasonable default when iters <= 0.
func MaximinLHS(n, dim, iters int, rng *rand.Rand) Design {
	d := LHS(n, dim, rng)
	if n < 2 || dim < 1 {
		return d
	}
	if iters <= 0 {
		iters = 50 * n
	}
	best := minPairDistance(d)
	for it := 0; it < iters; it++ {
		i := rng.IntN(n)
		k := rng.IntN(n)
		if i == k {
			continue
		}
		j := rng.IntN(dim)
		d[i][j], d[k][j] = d[k][j], d[i][j]
		cur := minPairDistanceTouching(d, i, k)
		if cur >= best {
			// Accept: recompute the global minimum only when the
			// local bound says the swap may have improved it.
			g := minPairDistance(d)
			if g >= best {
				best = g
				continue
			}
		}
		// Revert.
		d[i][j], d[k][j] = d[k][j], d[i][j]
	}
	return d
}

func minPairDistance(d Design) float64 {
	best := math.Inf(1)
	for i := 0; i < len(d); i++ {
		for k := i + 1; k < len(d); k++ {
			if v := sqDist(d[i], d[k]); v < best {
				best = v
			}
		}
	}
	return best
}

// minPairDistanceTouching returns the minimum squared distance between
// rows i or k and every other row — a cheap lower-bound check after a
// swap touching only those rows.
func minPairDistanceTouching(d Design, i, k int) float64 {
	best := math.Inf(1)
	for r := 0; r < len(d); r++ {
		if r != i {
			if v := sqDist(d[r], d[i]); v < best {
				best = v
			}
		}
		if r != k && r != i {
			if v := sqDist(d[r], d[k]); v < best {
				best = v
			}
		}
	}
	return best
}

func sqDist(a, b []float64) float64 {
	var s float64
	for j := range a {
		t := a[j] - b[j]
		s += t * t
	}
	return s
}

// Stratified reports whether the design satisfies the Latin Hypercube
// stratification property: on every axis, each of the len(d) equal
// intervals contains exactly one point. It is used by tests and by
// callers that accept externally supplied designs.
func Stratified(d Design) bool {
	n := len(d)
	if n == 0 {
		return true
	}
	dim := len(d[0])
	seen := make([]bool, n)
	for j := 0; j < dim; j++ {
		for i := range seen {
			seen[i] = false
		}
		for i := 0; i < n; i++ {
			if len(d[i]) != dim {
				return false
			}
			v := d[i][j]
			if v < 0 || v >= 1 {
				return false
			}
			cell := int(v * float64(n))
			if cell >= n {
				cell = n - 1
			}
			if seen[cell] {
				return false
			}
			seen[cell] = true
		}
	}
	return true
}

// Validate returns an error describing the first structural problem
// with the design (ragged rows or out-of-range coordinates), or nil.
func Validate(d Design) error {
	dim := d.Dim()
	for i, p := range d {
		if len(p) != dim {
			return fmt.Errorf("sample: row %d has dim %d, want %d", i, len(p), dim)
		}
		for j, v := range p {
			if math.IsNaN(v) || v < 0 || v >= 1 {
				return fmt.Errorf("sample: point %d coordinate %d out of [0,1): %v", i, j, v)
			}
		}
	}
	return nil
}
