package sample

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHaltonBasics(t *testing.T) {
	rng := NewRNG(1)
	d := Halton(128, 10, rng)
	if len(d) != 128 || d.Dim() != 10 {
		t.Fatalf("shape (%d,%d)", len(d), d.Dim())
	}
	if err := Validate(d); err != nil {
		t.Fatal(err)
	}
}

func TestHaltonDegenerate(t *testing.T) {
	if Halton(0, 5, NewRNG(1)) != nil {
		t.Error("n=0 should be nil")
	}
	if Halton(5, 0, NewRNG(1)) != nil {
		t.Error("dim=0 should be nil")
	}
}

func TestHaltonDimLimit(t *testing.T) {
	if d := Halton(4, MaxHaltonDim, NewRNG(1)); len(d) != 4 {
		t.Error("max dim should work")
	}
	defer func() {
		if recover() == nil {
			t.Error("dim > MaxHaltonDim should panic")
		}
	}()
	Halton(4, MaxHaltonDim+1, NewRNG(1))
}

func TestHaltonUniformCoverage(t *testing.T) {
	// Each axis's marginal distribution should cover every decile —
	// in fact more evenly than random sampling.
	d := Halton(500, 5, NewRNG(2))
	for j := 0; j < 5; j++ {
		var buckets [10]int
		for _, p := range d {
			buckets[int(p[j]*10)]++
		}
		for k, c := range buckets {
			if c < 30 || c > 70 {
				t.Errorf("axis %d decile %d count %d, want ~50", j, k, c)
			}
		}
	}
}

func TestHaltonLowerDiscrepancyThanUniform(t *testing.T) {
	// Star-discrepancy proxy: max deviation of the empirical CDF over
	// random anchored boxes. Halton should beat uniform sampling.
	disc := func(d Design, seed uint64) float64 {
		rng := NewRNG(seed)
		n := float64(len(d))
		worst := 0.0
		for trial := 0; trial < 200; trial++ {
			box := make([]float64, d.Dim())
			vol := 1.0
			for j := range box {
				box[j] = rng.Float64()
				vol *= box[j]
			}
			count := 0
			for _, p := range d {
				inside := true
				for j, v := range p {
					if v >= box[j] {
						inside = false
						break
					}
				}
				if inside {
					count++
				}
			}
			if dev := math.Abs(float64(count)/n - vol); dev > worst {
				worst = dev
			}
		}
		return worst
	}
	var haltonSum, uniformSum float64
	for seed := uint64(0); seed < 5; seed++ {
		haltonSum += disc(Halton(200, 4, NewRNG(seed)), 99)
		uniformSum += disc(Uniform(200, 4, NewRNG(seed)), 99)
	}
	if haltonSum >= uniformSum {
		t.Errorf("halton discrepancy %v should beat uniform %v", haltonSum/5, uniformSum/5)
	}
}

func TestHaltonScramblingVariesWithSeed(t *testing.T) {
	a := Halton(16, 3, NewRNG(1))
	b := Halton(16, 3, NewRNG(2))
	same := true
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical scrambled sequences")
	}
	c := Halton(16, 3, NewRNG(1))
	for i := range a {
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				t.Fatal("same seed should reproduce the sequence")
			}
		}
	}
}

func TestHaltonValidProperty(t *testing.T) {
	f := func(seed uint64, n8, d8 uint8) bool {
		n := int(n8%100) + 1
		dim := int(d8%44) + 1
		d := Halton(n, dim, NewRNG(seed))
		return Validate(d) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestScrambledRadicalInverseRange(t *testing.T) {
	perm := []int{0, 1}
	for k := 1; k < 1000; k++ {
		v := scrambledRadicalInverse(k, 2, perm)
		if v < 0 || v >= 1 {
			t.Fatalf("k=%d: %v out of [0,1)", k, v)
		}
	}
}
