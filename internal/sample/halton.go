package sample

import "math/rand/v2"

// primes holds the first 64 primes, one radical-inverse base per
// dimension — enough for the 44-parameter Spark space with room to
// spare.
var primes = []int{
	2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53,
	59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131,
	137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
	227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307, 311,
}

// MaxHaltonDim is the largest dimensionality Halton supports (the
// number of prime bases above).
const MaxHaltonDim = 64

// Halton generates an n-point scrambled Halton quasi-random sequence
// in [0,1)^dim — a low-discrepancy alternative to LHS used by the
// sampling ablation. Each dimension uses the radical inverse in a
// distinct prime base with a random digit permutation (Owen-style
// scrambling per base), which repairs the correlation artifacts plain
// Halton exhibits in high dimensions. It panics if dim exceeds
// MaxHaltonDim.
func Halton(n, dim int, rng *rand.Rand) Design {
	if n <= 0 || dim <= 0 {
		return nil
	}
	if dim > MaxHaltonDim {
		panic("sample: Halton supports at most 64 dimensions")
	}
	// One digit permutation per base (fixing perm[0] would bias the
	// sequence away from 0; full permutations keep uniformity because
	// the scrambling is applied at every digit level).
	perms := make([][]int, dim)
	for j := 0; j < dim; j++ {
		perms[j] = rng.Perm(primes[j])
	}
	// A random leap offset decorrelates successive calls.
	offset := rng.IntN(1 << 16)

	d := make(Design, n)
	for i := 0; i < n; i++ {
		p := make([]float64, dim)
		for j := 0; j < dim; j++ {
			p[j] = scrambledRadicalInverse(i+1+offset, primes[j], perms[j])
		}
		d[i] = p
	}
	return d
}

// scrambledRadicalInverse computes the base-b radical inverse of k
// with the digit permutation applied at every level.
func scrambledRadicalInverse(k, b int, perm []int) float64 {
	inv := 0.0
	f := 1.0 / float64(b)
	scale := f
	for k > 0 {
		digit := perm[k%b]
		inv += float64(digit) * scale
		scale *= f
		k /= b
	}
	// Guard the half-open interval.
	if inv >= 1 {
		inv = 1 - 1e-12
	}
	return inv
}
