package sample_test

import (
	"fmt"

	"repro/internal/sample"
)

// LHS designs stratify every axis: with n samples, each of the n
// equal intervals on each axis holds exactly one point.
func ExampleLHS() {
	design := sample.LHS(5, 2, sample.NewRNG(1))
	fmt.Println("points:", len(design), "dims:", design.Dim())
	fmt.Println("stratified:", sample.Stratified(design))
	// Output:
	// points: 5 dims: 2
	// stratified: true
}

// MaximinLHS keeps the Latin property while pushing points apart.
func ExampleMaximinLHS() {
	design := sample.MaximinLHS(8, 3, 0, sample.NewRNG(2))
	fmt.Println("stratified:", sample.Stratified(design))
	fmt.Println("valid:", sample.Validate(design) == nil)
	// Output:
	// stratified: true
	// valid: true
}
