package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/backend"
	"repro/internal/tuners"
)

// Campaign runs ROBOTune as a long-lived tuning service over a queue
// of workloads — the usage §2.2 motivates ("most data analytics
// workloads recur in a cluster"). One ROBOTune instance carries the
// selection cache, the memoization buffer and (optionally) the
// workload mapper across all sessions, so repeated families get
// cheaper and better over time.
type Campaign struct {
	// Tuner is the shared ROBOTune instance (its store accumulates
	// knowledge across sessions).
	Tuner *ROBOTune
	// Backend supplies each session's evaluator and search space; nil
	// looks up the registered "spark" backend (importers must link the
	// backends shim for that fallback to resolve).
	Backend backend.Backend
	// Cap is the per-evaluation time limit (<= 0 → the backend's
	// DefaultCap).
	Cap float64
	// Budget is the per-session evaluation budget (default 100).
	Budget int
	// MeasureReps verifies each session's best configuration
	// (default 3).
	MeasureReps int
	// Ctx cancels the campaign: the running session unwinds with its
	// best-so-far and no further sessions start. nil = no cancellation.
	Ctx context.Context
	// Faults injects the plan's cluster misbehavior into every
	// session's evaluator (off when zero; Measure stays fault-free).
	Faults backend.FaultPlan
	// Deadline is a per-evaluation limit in simulated seconds layered
	// under the guard cap (<= 0 = none).
	Deadline float64
	// Retry bounds re-evaluation of transient failures per session.
	Retry tuners.RetryPolicy
}

// CampaignSession is one completed tuning session within a campaign.
type CampaignSession struct {
	Workload backend.Workload
	Result   tuners.Result
	// CacheHit is true when the session reused a cached selection
	// (zero selection evaluations).
	CacheHit bool
	// Quality is the verified execution time of the best
	// configuration.
	Quality float64
}

// CampaignResult aggregates a campaign's sessions.
type CampaignResult struct {
	Sessions []CampaignSession
}

// Run tunes the workloads in order. Sessions are deterministic in
// (seed, position).
func (c *Campaign) Run(workloads []backend.Workload, seed uint64) CampaignResult {
	if c.Tuner == nil {
		c.Tuner = New(nil, Options{})
	}
	b := c.Backend
	if b == nil {
		var err error
		if b, err = backend.Lookup("spark"); err != nil {
			panic(fmt.Sprintf("core: campaign has no backend and none registered as spark: %v", err))
		}
	}
	budget := c.Budget
	if budget <= 0 {
		budget = 100
	}
	reps := c.MeasureReps
	if reps <= 0 {
		reps = 3
	}
	ctx := c.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	space := b.Space()
	var out CampaignResult
	for i, w := range workloads {
		if ctx.Err() != nil {
			break
		}
		sseed := seed + uint64(i)*701
		ev, err := b.NewEvaluator(w, sseed, c.Cap, c.Faults)
		if err != nil {
			panic(fmt.Sprintf("core: campaign evaluator for %s: %v", w.WorkloadName(), err))
		}
		res := c.Tuner.Run(tuners.NewSession(ev, space, tuners.Request{
			Ctx:      ctx,
			Budget:   budget,
			Seed:     sseed,
			Deadline: c.Deadline,
			Retry:    c.Retry,
		}))
		session := CampaignSession{
			Workload: w,
			Result:   res,
			CacheHit: res.SelectionEvals == 0,
		}
		if res.Found {
			if m, ok := ev.(backend.Measurer); ok {
				session.Quality = m.Measure(res.Best, reps, sseed*3+11)
			} else {
				session.Quality = res.BestSeconds
			}
		}
		out.Sessions = append(out.Sessions, session)
	}
	return out
}

// TotalSearchCost sums the tuning-phase cost across sessions.
func (r CampaignResult) TotalSearchCost() float64 {
	var s float64
	for _, sess := range r.Sessions {
		s += sess.Result.SearchCost
	}
	return s
}

// TotalSelectionCost sums the one-time selection cost across
// sessions — amortized by cache hits, the §5.5 argument for tuning
// multiple datasets of a workload.
func (r CampaignResult) TotalSelectionCost() float64 {
	var s float64
	for _, sess := range r.Sessions {
		s += sess.Result.SelectionCost
	}
	return s
}

// CacheHitRate is the fraction of sessions that skipped selection.
func (r CampaignResult) CacheHitRate() float64 {
	if len(r.Sessions) == 0 {
		return 0
	}
	hits := 0
	for _, sess := range r.Sessions {
		if sess.CacheHit {
			hits++
		}
	}
	return float64(hits) / float64(len(r.Sessions))
}

// Render prints the campaign summary table.
func (r CampaignResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-36s %10s %10s %10s %6s\n",
		"workload", "best(s)", "search(s)", "select(s)", "cache")
	sb.WriteString(strings.Repeat("-", 78))
	sb.WriteByte('\n')
	for _, sess := range r.Sessions {
		cache := "MISS"
		if sess.CacheHit {
			cache = "hit"
		}
		best := "-"
		if sess.Result.Found {
			best = fmt.Sprintf("%.1f", sess.Quality)
		}
		id := sess.Workload.WorkloadName() + "/" + sess.Workload.DatasetName()
		fmt.Fprintf(&sb, "%-36s %10s %10.0f %10.0f %6s\n",
			id, best, sess.Result.SearchCost, sess.Result.SelectionCost, cache)
	}
	fmt.Fprintf(&sb, "\ntotals: search %.0f s, one-time selection %.0f s, cache hit rate %.0f%%\n",
		r.TotalSearchCost(), r.TotalSelectionCost(), 100*r.CacheHitRate())
	return sb.String()
}
