package core

import (
	"testing"

	"repro/internal/conf"
	"repro/internal/sparksim"
	"repro/internal/tuners"
)

// TestTuneWorkersParity is the end-to-end determinism contract: a full
// campaign (selection forest, permutation importance, GP fits,
// acquisition multistarts) must be bit-identical whether the tuner's
// internal math runs serially or on many goroutines. Every parallel
// path derives per-item RNGs from the seed and reduces in index order,
// so the worker count can never leak into the results.
func TestTuneWorkersParity(t *testing.T) {
	space := conf.SparkSpace()
	run := func(workers int) tuners.Result {
		o := fastOptions()
		o.Workers = workers
		o.GenericSamples = 30
		o.Forest.Trees = 20
		o.PermuteRepeats = 2
		r := New(nil, o)
		ev := newEvaluator(sparksim.TeraSort(20), 17)
		return r.Tune(ev, space, 25, 17)
	}
	serial := run(1)
	if !serial.Found {
		t.Fatal("serial campaign found nothing")
	}
	for _, w := range []int{2, 8} {
		got := run(w)
		if got.BestSeconds != serial.BestSeconds || got.SearchCost != serial.SearchCost {
			t.Errorf("workers=%d: best %v / cost %v, serial %v / %v",
				w, got.BestSeconds, got.SearchCost, serial.BestSeconds, serial.SearchCost)
		}
		if len(got.Trace) != len(serial.Trace) {
			t.Fatalf("workers=%d: trace length %d, serial %d", w, len(got.Trace), len(serial.Trace))
		}
		for i := range serial.Trace {
			if got.Trace[i] != serial.Trace[i] {
				t.Fatalf("workers=%d: trace[%d] = %v, serial %v", w, i, got.Trace[i], serial.Trace[i])
			}
		}
		if len(got.SelectedParams) != len(serial.SelectedParams) {
			t.Fatalf("workers=%d: selection %v, serial %v", w, got.SelectedParams, serial.SelectedParams)
		}
		for i := range serial.SelectedParams {
			if got.SelectedParams[i] != serial.SelectedParams[i] {
				t.Errorf("workers=%d: selected[%d] = %s, serial %s",
					w, i, got.SelectedParams[i], serial.SelectedParams[i])
			}
		}
		if !got.Best.Equal(serial.Best) {
			t.Errorf("workers=%d: best config differs from serial", w)
		}
	}
}

// TestWorkersPropagateThroughOptions asserts the single -workers knob
// reaches every layer unless a layer pins its own value.
func TestWorkersPropagateThroughOptions(t *testing.T) {
	o := Options{Workers: 6}.withDefaults()
	if o.Forest.Workers != 6 {
		t.Errorf("Forest.Workers = %d, want 6", o.Forest.Workers)
	}
	if o.BO.Workers != 6 {
		t.Errorf("BO.Workers = %d, want 6", o.BO.Workers)
	}
	o2 := Options{Workers: 6}
	o2.Forest.Trees = 10
	o2.Forest.Workers = 2
	o2 = o2.withDefaults()
	if o2.Forest.Workers != 2 {
		t.Errorf("explicit Forest.Workers overridden: %d", o2.Forest.Workers)
	}
}
