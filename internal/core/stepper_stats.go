package core

import "repro/internal/bo"

// SurrogateStats returns the BO engine's refit-cadence accounting —
// which fit paths Surrogate took, refit time against wall clock, and
// whether the sparse active-set path is live. ok is false before the
// session reaches its BO phase (no engine yet). The server's /metrics
// endpoint aggregates this across sessions.
func (st *Stepper) SurrogateStats() (stats bo.RefitStats, ok bool) {
	if st.engine == nil {
		return bo.RefitStats{}, false
	}
	return st.engine.RefitStats(), true
}
