// Package core implements ROBOTune itself — the Random-FOrests and
// Bayesian-Optimization based tuner of the paper. It wires together
// the memoized-sampling state (internal/memo), the Random-Forest
// parameter selection (internal/forest), the Latin-Hypercube sampler
// (internal/sample) and the GP-Hedge Bayesian-Optimization engine
// (internal/bo), following Figure 1 and Algorithm 1:
//
//   - On a parameter-selection-cache miss, 100 generic LHS samples
//     over all 44 parameters train a Random Forest whose MDA
//     (permutation) importances — with collinear parameters permuted
//     jointly — select the high-impact parameters (≥ 0.05 drop in
//     OOB R², averaged over 10 permutations).
//   - The BO engine then searches the selected low-dimensional
//     subspace, initialized with 20 LHS tuning samples — or, for a
//     repeated workload, 16 LHS samples plus 4 Best Recent Configs
//     from the configuration memoization buffer.
//   - A guard stops imbalanced configurations at a configurable
//     multiple of the median observed execution time.
package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/backend"
	"repro/internal/bo"
	"repro/internal/conf"
	"repro/internal/forest"
	"repro/internal/mapping"
	"repro/internal/memo"
	"repro/internal/sample"
	"repro/internal/stats"
	"repro/internal/tuners"
)

// Options are the ROBOTune knobs; zero values select the paper's
// constants.
type Options struct {
	// GenericSamples is the LHS sample count for parameter selection
	// on a cache miss (paper: 100, validated in §5.5/Figure 7).
	GenericSamples int
	// TuningSamples is the size of the BO initial training set
	// (paper: 20).
	TuningSamples int
	// MemoConfigs is how many Best Recent Configs replace LHS samples
	// for repeated workloads (paper: 4, so 16 LHS + 4 memoized).
	MemoConfigs int
	// ImportanceThreshold is the minimum mean OOB-R² drop for a
	// parameter group to be selected (paper: 0.05).
	ImportanceThreshold float64
	// PermuteRepeats is the number of permutations averaged per group
	// (paper: 10).
	PermuteRepeats int
	// MinSelected pads the selection with the next-ranked groups when
	// fewer clear the threshold, keeping BO viable (default 6).
	MinSelected int
	// MaxSelected caps the subspace dimensionality (default 14,
	// keeping the GP in its comfortable regime; §3.1).
	MaxSelected int
	// GuardMultiple stops a configuration once it runs this multiple
	// of the median completed time (paper §4; default 3, ≤0 disables).
	GuardMultiple float64
	// Parallel evaluates the independent parameter-selection samples
	// on this many concurrent workers when the objective supports
	// batch evaluation (a real cluster would run them side by side).
	// <= 1 keeps everything sequential. Observations are identical to
	// the sequential order, so results do not depend on this setting.
	Parallel int
	// Workers is the compute parallelism of the tuner itself: forest
	// training, permutation importance, and the acquisition/GP
	// multistarts run on this many goroutines (0 selects GOMAXPROCS,
	// 1 forces serial). Unlike Parallel, which concerns objective
	// evaluations, Workers only affects tuner-internal math; results
	// are bit-identical for any value under the same seed.
	Workers int
	// BOBatch, when > 1, runs the BO loop in parallel rounds: each
	// round asks the engine for BOBatch constant-liar suggestions and
	// evaluates them concurrently (requires batch evaluation support).
	// Wall-clock per round shrinks; per-step adaptivity is traded
	// away, so expect slightly weaker per-evaluation efficiency.
	BOBatch int
	// EarlyStopPatience ends the tuning session early when the best
	// observed time has not improved by at least EarlyStopEpsilon
	// (relative) for this many consecutive BO iterations — the
	// "automated early stopping" customization of §4. 0 disables it
	// (the paper's evaluation runs the full budget).
	EarlyStopPatience int
	// EarlyStopEpsilon is the relative improvement that resets the
	// patience counter (default 0.01 when patience is enabled).
	EarlyStopEpsilon float64
	// Forest configures the selection model.
	Forest forest.Config
	// BO configures the Bayesian-Optimization engine.
	BO bo.Config
	// Mapper, when set, enables OtterTune-style workload mapping (an
	// extension; see internal/mapping): on a selection-cache miss the
	// new workload is characterized with a small probe set, and if a
	// previously tuned family's signature correlates at or above
	// MapThreshold, its parameter selection is inherited instead of
	// running the full 100-sample selection.
	Mapper *mapping.Mapper
	// MapThreshold is the minimum signature correlation for adopting
	// another family's selection (default 0.9).
	MapThreshold float64
	// RefitBudget, when > 0, switches the BO engine's hyperparameter
	// refits from the fixed every-5-observations cadence to a
	// cost-budgeted one: refit only while cumulative refit time stays
	// at or below this fraction of session wall clock (e.g. 0.2),
	// extending the cached Cholesky factor otherwise. Long sessions
	// keep a bounded surrogate overhead at the price of bit-exact
	// journal-replay reproducibility.
	RefitBudget float64
	// SparseSurrogate gates the GP's local-subset approximation: past
	// SparseThreshold observations the surrogate is fitted on the
	// points nearest the incumbent plus a uniform reservoir, bounding
	// per-iteration cost by the subset size.
	SparseSurrogate bool
	// SparseThreshold is the observation count past which the sparse
	// surrogate engages (default 512; only meaningful with
	// SparseSurrogate set).
	SparseThreshold int
	// CostAware divides positive acquisition scores by the engine's
	// predicted evaluation cost (EI-per-second): among equally
	// promising configurations the search prefers the cheaper one.
	// The BOHB multi-fidelity tuner shares the toggle via the cli.
	CostAware bool
	// FidelityLadder is the fidelity ladder for the BOHB multi-fidelity
	// tuner (see tuners.BOHB); ROBOTune itself ignores it. The cli
	// threads it here so one Options value configures whichever tuner
	// -tuner selects. nil selects the default ladder.
	FidelityLadder []float64
	// FidelityAxis selects the workload dimension the ladder scales:
	// "input" (data volumes, the default) or "stage" (stage-plan
	// prefix — usually the better proxy for iterative workloads).
	// Empty means "input". BOHB-only, like FidelityLadder.
	FidelityAxis string
}

func (o Options) withDefaults() Options {
	if o.GenericSamples <= 0 {
		o.GenericSamples = 100
	}
	if o.TuningSamples <= 0 {
		o.TuningSamples = 20
	}
	if o.MemoConfigs <= 0 {
		o.MemoConfigs = 4
	}
	if o.ImportanceThreshold <= 0 {
		o.ImportanceThreshold = 0.05
	}
	if o.PermuteRepeats <= 0 {
		o.PermuteRepeats = 10
	}
	if o.MinSelected <= 0 {
		o.MinSelected = 6
	}
	if o.MaxSelected <= 0 {
		o.MaxSelected = 14
	}
	if o.GuardMultiple == 0 {
		o.GuardMultiple = 3
	}
	if o.EarlyStopPatience > 0 && o.EarlyStopEpsilon <= 0 {
		o.EarlyStopEpsilon = 0.01
	}
	if o.MapThreshold <= 0 {
		o.MapThreshold = 0.9
	}
	if o.Forest.Trees == 0 {
		o.Forest = forest.RFDefaults()
	}
	if len(o.BO.Portfolio) == 0 && o.BO.CandidatePool == 0 {
		o.BO = bo.DefaultConfig()
	}
	if o.Forest.Workers == 0 {
		o.Forest.Workers = o.Workers
	}
	if o.BO.Workers == 0 {
		o.BO.Workers = o.Workers
	}
	// The scaling knobs live on Options (not o.BO) so they survive the
	// BO-defaulting block above; map them onto the engine config last.
	if o.RefitBudget > 0 {
		o.BO.RefitBudget = o.RefitBudget
	}
	if o.SparseSurrogate {
		o.BO.Sparse = true
		if o.SparseThreshold > 0 {
			o.BO.SparseThreshold = o.SparseThreshold
		}
	}
	if o.CostAware {
		o.BO.CostAware = true
	}
	return o
}

// ROBOTune is the tuner. It satisfies tuners.Tuner. A single value
// may run many sessions; the memo.Store carries knowledge across
// them.
type ROBOTune struct {
	store *memo.Store
	opts  Options

	// Inspection hooks populated by the most recent Tune call (not
	// safe for concurrent Tune calls): the BO engine and subspace,
	// used by the response-surface experiment (Figure 9), and the
	// selection outcome when this session ran it (nil on cache hits).
	LastEngine    *bo.Engine
	LastSubspace  *conf.Subspace
	LastSelection *Selection
}

// New builds a ROBOTune instance backed by the given memoization
// store (nil for a fresh in-memory store).
func New(store *memo.Store, opts Options) *ROBOTune {
	if store == nil {
		store = memo.NewStore()
	}
	return &ROBOTune{store: store, opts: opts.withDefaults()}
}

// Name implements tuners.Tuner.
func (*ROBOTune) Name() string { return "ROBOTune" }

// Store returns the backing memoization store.
func (r *ROBOTune) Store() *memo.Store { return r.store }

// identifiable is the optional capability ROBOTune uses to key its
// caches; backend evaluators implement it (backend.Identifiable).
type identifiable = backend.Identifiable

// Tune implements tuners.Tuner; it is Run under a request with no
// cancellation, deadline or retries — the legacy positional surface.
func (r *ROBOTune) Tune(obj tuners.Objective, space *conf.Space, budget int, seed uint64) tuners.Result {
	return r.Run(tuners.NewSession(obj, space, tuners.Request{Budget: budget, Seed: seed}))
}

// Run implements tuners.SessionTuner: it runs parameter selection (or
// a cache hit), then the memoized-sampling + BO pipeline, spending at
// most the session budget in the tuning phase. Selection evaluations
// on a cache miss are reported separately in the Result, matching
// §5.3's cost accounting. The session supplies the robustness
// envelope: its context aborts selection sampling, the BO loop and
// batch evaluation between evaluations (the result carries the
// best-so-far), its deadline tightens the guard cap, and transient
// evaluation failures are retried per its policy. Failed observations
// reach the surrogate as censored tells, never as measurements.
//
// Run is a thin driver over the ask/tell Stepper (see stepper.go):
// prepare performs the cache check and snapshot fast-skip, and
// tuners.Drive owns every evaluation, retry, journal commit and
// replay substitution.
func (r *ROBOTune) Run(s *tuners.Session) tuners.Result {
	return tuners.Drive(r.prepare(s), s)
}

// Selection is the outcome of the Random-Forest parameter selection.
type Selection struct {
	// Params are the selected parameter names in descending
	// importance order, including MinSelected padding.
	Params []string
	// ThresholdParams are the parameters whose groups cleared the
	// importance threshold on their own (no padding) — the paper's
	// selection criterion, used by the Figure 7 recall experiment.
	ThresholdParams []string
	// Ranking is the full group ranking with importances.
	Ranking []GroupRank
	// OOBR2 is the forest's out-of-bag fit quality.
	OOBR2 float64
	// Samples is the number of LHS samples used.
	Samples int
	// BestSample is the best completed configuration observed while
	// collecting selection samples (zero Config if none completed);
	// ROBOTune memoizes it and uses it as the base for unselected
	// parameters, so the subspace is anchored at a viable point
	// rather than the (often catastrophic) framework default.
	BestSample  conf.Config
	BestSeconds float64
}

// GroupRank names one collinearity group and its MDA importance.
type GroupRank struct {
	Name    string
	Members []string
	Drop    float64
}

// SelectParameters runs the cache-miss path standalone: evaluates
// `samples` LHS configurations over the full space, trains a Random
// Forest, and selects parameter groups whose joint permutation drops
// the OOB R² by at least the threshold. Exposed for the selection
// experiments (Figures 2 and 7).
func (r *ROBOTune) SelectParameters(obj tuners.Objective, space *conf.Space, samples int, seed uint64) (Selection, error) {
	return r.selectParameters(tuners.NewSession(obj, space, tuners.Request{Seed: seed}), samples)
}

// selectParameters is SelectParameters under a session: the session's
// context aborts the LHS sweep between evaluations, and its retry and
// deadline policies apply to each sample.
func (r *ROBOTune) selectParameters(s *tuners.Session, samples int) (Selection, error) {
	opts := r.opts
	space, seed := s.Space(), s.Seed()
	if samples <= 0 {
		samples = opts.GenericSamples
	}
	rng := sample.NewRNG(seed ^ 0x5e1ec7)
	design := sample.LHS(samples, space.Dim(), rng)
	cfgs := make([]conf.Config, len(design))
	for i, u := range design {
		cfgs[i] = space.Decode(u)
	}
	var recs []backend.EvalRecord
	if opts.Parallel > 1 {
		recs = s.Eval(backend.EvalSpec{Workers: opts.Parallel}, cfgs...)
	} else {
		recs = make([]backend.EvalRecord, 0, len(cfgs))
		for _, c := range cfgs {
			if s.Done() {
				break
			}
			recs = append(recs, s.Eval(backend.EvalSpec{}, c)[0])
		}
	}
	x := make([][]float64, 0, samples)
	y := make([]float64, 0, samples)
	bestSec := math.Inf(1)
	var bestCfg conf.Config
	for i, rec := range recs {
		if rec.Skipped { // batch entry cancelled before dispatch
			continue
		}
		x = append(x, append([]float64(nil), design[i]...))
		y = append(y, rec.Seconds)
		if rec.Completed && rec.Seconds < bestSec {
			bestSec, bestCfg = rec.Seconds, cfgs[i]
		}
	}
	sel, err := r.selectFromData(space, x, y, seed)
	if err != nil {
		return sel, err
	}
	sel.BestSample = bestCfg
	sel.BestSeconds = bestSec
	return sel, nil
}

// SelectFromData runs selection on pre-collected observations (unit
// points and objective values) without charging new evaluations.
func (r *ROBOTune) SelectFromData(space *conf.Space, x [][]float64, y []float64, seed uint64) (Selection, error) {
	return r.selectFromData(space, x, y, seed)
}

func (r *ROBOTune) selectFromData(space *conf.Space, x [][]float64, y []float64, seed uint64) (Selection, error) {
	if len(x) < 10 {
		return Selection{}, fmt.Errorf("core: need >= 10 selection samples, have %d", len(x))
	}
	opts := r.opts
	fcfg := opts.Forest
	fcfg.Seed = seed ^ 0xf02e57
	// MDA importance is computed out-of-bag; selection is meaningless
	// without bootstrap, so enforce it regardless of configuration.
	fcfg.Bootstrap = true
	f := forest.Train(x, y, fcfg)

	groups := space.Groups()
	imps := f.PermutationImportance(groups, opts.PermuteRepeats, seed^0x9e247, opts.Workers)

	ranking := make([]GroupRank, len(imps))
	for i, gi := range imps {
		members := make([]string, len(gi.Group))
		for k, idx := range gi.Group {
			members[k] = space.Params()[idx].Name
		}
		ranking[i] = GroupRank{Name: space.GroupName(gi.Group), Members: members, Drop: gi.Drop}
	}
	sort.SliceStable(ranking, func(a, b int) bool { return ranking[a].Drop > ranking[b].Drop })

	var params, thresholdParams []string
	var picked int
	for _, gr := range ranking {
		clears := gr.Drop >= opts.ImportanceThreshold
		take := clears || picked < opts.MinSelected
		if !take {
			break
		}
		if len(params)+len(gr.Members) > opts.MaxSelected && picked >= opts.MinSelected {
			break
		}
		params = append(params, gr.Members...)
		if clears {
			thresholdParams = append(thresholdParams, gr.Members...)
		}
		picked++
	}
	return Selection{
		Params:          params,
		ThresholdParams: thresholdParams,
		Ranking:         ranking,
		OOBR2:           f.OOBR2(),
		Samples:         len(x),
	}, nil
}

// runTracker tracks incumbents and the top-K configurations for
// memoization.
type runTracker struct {
	best      conf.Config
	bestSec   float64
	found     bool
	trace     []float64
	completed []bool
	entries   []trackEntry
}

type trackEntry struct {
	cfg conf.Config
	sec float64
}

func (t *runTracker) observe(c conf.Config, rec backend.EvalRecord) {
	t.trace = append(t.trace, rec.Seconds)
	t.completed = append(t.completed, rec.Completed)
	if !rec.Completed {
		return
	}
	t.entries = append(t.entries, trackEntry{cfg: c, sec: rec.Seconds})
	if rec.Seconds < t.bestSec {
		t.best, t.bestSec, t.found = c, rec.Seconds, true
	}
}

// medianCompleted returns the median completed execution time, or 0
// when nothing has completed yet — the all-failed session must yield
// "guard disabled", never a NaN cap.
func (t *runTracker) medianCompleted() float64 {
	if len(t.entries) == 0 {
		return 0
	}
	xs := make([]float64, len(t.entries))
	for i, e := range t.entries {
		xs[i] = e.sec
	}
	return stats.Median(xs)
}

func (t *runTracker) topK(k int) []trackEntry {
	es := append([]trackEntry(nil), t.entries...)
	sort.SliceStable(es, func(a, b int) bool { return es[a].sec < es[b].sec })
	if len(es) > k {
		es = es[:k]
	}
	return es
}

// diverseConfigs greedily selects up to k configurations from the
// best-first candidate list, always keeping the best and then
// maximizing the minimum pairwise distance in the unit cube.
func diverseConfigs(space *conf.Space, cands []memo.SavedConfig, k int) []memo.SavedConfig {
	if len(cands) <= 1 || k <= 1 {
		if len(cands) > k {
			return cands[:k]
		}
		return cands
	}
	units := make([][]float64, len(cands))
	for i, sc := range cands {
		c, err := space.FromRaw(sc.Values)
		if err != nil {
			continue
		}
		units[i] = space.Encode(c)
	}
	chosen := []int{0}
	for len(chosen) < k && len(chosen) < len(cands) {
		bestIdx, bestDist := -1, -1.0
		for i := range cands {
			if units[i] == nil || contains(chosen, i) {
				continue
			}
			minD := math.Inf(1)
			for _, j := range chosen {
				if units[j] == nil {
					continue
				}
				var d float64
				for t := range units[i] {
					diff := units[i][t] - units[j][t]
					d += diff * diff
				}
				if d < minD {
					minD = d
				}
			}
			if minD > bestDist {
				bestDist, bestIdx = minD, i
			}
		}
		if bestIdx < 0 {
			break
		}
		chosen = append(chosen, bestIdx)
	}
	out := make([]memo.SavedConfig, 0, len(chosen))
	for _, i := range chosen {
		out = append(out, cands[i])
	}
	return out
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func withSeed(cfg bo.Config, seed uint64) bo.Config {
	cfg.Seed = seed
	return cfg
}

func randomUnit(d int, rng interface{ Float64() float64 }) []float64 {
	u := make([]float64, d)
	for i := range u {
		u[i] = rng.Float64()
	}
	return u
}

// Explain renders a human-readable account of the most recent Tune
// call: how the subspace was chosen, how the Hedge portfolio ended
// up weighted, and how the best configuration differs from the
// framework default. It reads the Last* inspection hooks, so call it
// right after Tune (robotune's -explain flag does).
func (r *ROBOTune) Explain(space *conf.Space, res tuners.Result) string {
	var sb strings.Builder

	if r.LastSelection != nil {
		oob := "n/a" // undefined when every selection sample failed
		if !math.IsNaN(r.LastSelection.OOBR2) {
			oob = fmt.Sprintf("%.3f", r.LastSelection.OOBR2)
		}
		fmt.Fprintf(&sb, "parameter selection (%d samples, forest OOB R² %s):\n",
			r.LastSelection.Samples, oob)
		for i, g := range r.LastSelection.Ranking {
			if i >= 10 {
				fmt.Fprintf(&sb, "  ... %d more groups\n", len(r.LastSelection.Ranking)-i)
				break
			}
			mark := " "
			if g.Drop >= r.opts.ImportanceThreshold {
				mark = "*"
			}
			fmt.Fprintf(&sb, "  %s %-30s drop %.4f\n", mark, g.Name, g.Drop)
		}
	} else {
		sb.WriteString("parameter selection: cache hit (selection reused)\n")
	}

	if r.LastEngine != nil {
		names := r.LastEngine.PortfolioNames()
		probs := r.LastEngine.Probabilities()
		sb.WriteString("acquisition portfolio (final Hedge weights):\n")
		for i, n := range names {
			fmt.Fprintf(&sb, "  %-4s %.2f\n", n, probs[i])
		}
	}

	if r.LastEngine != nil {
		if n := r.LastEngine.JitterRetries(); n > 0 {
			fmt.Fprintf(&sb, "numerical health: %d escalating-jitter Cholesky retries across surrogate fits\n", n)
		}
		if st := r.LastEngine.RefitStats(); st.RefitBudget > 0 || st.Sparse {
			fmt.Fprintf(&sb, "surrogate cadence: %d hyper refits, %d incremental extends, %d posterior refits",
				st.HyperRefits, st.Extends, st.PosteriorRefits)
			if st.RefitBudget > 0 {
				fmt.Fprintf(&sb, " (refit time %.2fs of %.2fs elapsed, budget %.0f%%)",
					st.RefitSeconds, st.ElapsedSeconds, 100*st.RefitBudget)
			}
			sb.WriteString("\n")
			if st.Sparse {
				fmt.Fprintf(&sb, "sparse surrogate: active set %d of %d observations (incumbent-local subset + uniform reservoir)\n",
					st.ActiveSize, st.Observations)
			}
		}
	}
	if r.opts.BO.CostAware && r.LastEngine != nil {
		fmt.Fprintf(&sb, "cost-aware acquisition: positive scores divided by predicted spend (%d cost observations)\n",
			r.LastEngine.CostObservations())
	}
	if res.SurrogateFallbacks > 0 {
		fmt.Fprintf(&sb, "surrogate degraded: %d BO iterations fell back to random suggestions\n", res.SurrogateFallbacks)
	}

	if f := res.Failures; f.Failed > 0 || f.Retries > 0 || f.Skipped > 0 {
		fmt.Fprintf(&sb, "robustness: %d failed (%d OOM, %d infeasible), %d transient, %d retries (%.0f s backoff), %d skipped\n",
			f.Failed, f.OOM, f.Infeasible, f.Transient, f.Retries, f.BackoffSeconds, f.Skipped)
	}
	if res.Cancelled {
		sb.WriteString("session cancelled: result is the best-so-far at cancellation\n")
	}
	if !res.Found {
		sb.WriteString("no configuration completed within budget (Found=false)\n")
	}

	if res.Found {
		sb.WriteString("best configuration vs framework default (tuned parameters):\n")
		def := space.Default()
		for _, name := range res.SelectedParams {
			p, ok := space.Param(name)
			if !ok {
				continue
			}
			fmt.Fprintf(&sb, "  %-44s %s  (default %s)\n",
				name, p.FormatRaw(res.Best.Raw(name)), p.FormatRaw(def.Raw(name)))
		}
	}
	return sb.String()
}
