// The ask/tell form of ROBOTune: Run's probe → selection → init → BO
// pipeline decomposed into an explicit phase machine that emits the
// trials it wants evaluated and consumes their outcomes. The
// tuners.Session driver (tuners.Drive) owns evaluation, retries,
// deadlines, cancellation, journaling and replay; external systems
// can drive the same stepper against a real cluster with no Objective
// at all. The phase boundaries, rng consumption and journal phase
// stamps are identical to the old blocking loop, so every existing
// parity and resume suite holds bit-for-bit.
package core

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/backend"
	"repro/internal/bo"
	"repro/internal/conf"
	"repro/internal/journal"
	"repro/internal/mapping"
	"repro/internal/memo"
	"repro/internal/sample"
	"repro/internal/tuners"
)

type phase int

const (
	phProbe phase = iota
	phSelection
	phInit
	phBO
	phDone
)

// snapEvery bounds how much BO progress a crash can lose beyond what
// the per-evaluation journal records already preserve.
const snapEvery = 5

// Stepper is ROBOTune as a resumable ask/tell state machine. Build
// one with ROBOTune.Stepper (external evaluation) or let Run drive
// one under a session. A Stepper is single-use and not safe for
// concurrent calls.
type Stepper struct {
	r    *ROBOTune
	opts Options

	s        *tuners.Session  // nil in external-evaluation mode
	obj      tuners.Objective // nil in external-evaluation mode
	space    *conf.Space
	budget   int
	seed     uint64
	workload string
	dataset  string
	jn       *journal.Journal
	canBatch bool

	proto     tuners.Protocol
	phase     phase
	finished  bool
	exhausted bool        // phDone was caused by remaining<=0, not early stop
	slot      map[int]int // proposal sequence → current-phase slot index

	selected []string
	selEvals int
	selCost  float64

	// Phase-entry objective counters for the selection accounting.
	evalsBefore int
	costBefore  float64

	// Probe phase (workload mapping).
	probeCfgs []conf.Config
	probeSecs []float64
	probeNext int
	probeSeen int

	// Selection phase.
	selDesign   [][]float64
	selCfgs     []conf.Config
	selRecs     []backend.EvalRecord
	selObserved []bool
	selNext     int
	selSeen     int

	// Tuning state (init + BO), built by sealSelection.
	selTrialsBoundary int
	memoBytes         []byte
	ss                *conf.Subspace
	tr                *runTracker
	engine            *bo.Engine
	remaining         int
	rng               *rand.Rand
	tuneEvalsBefore   int
	tuneCostBefore    float64
	surrFallbacks     int

	initCfgs        []conf.Config
	initNext        int
	initOutstanding bool

	sinceSnap int
	stale     int
	lastBest  float64

	roundUs           [][]float64
	roundPending      int
	singleOutstanding bool
}

// Stepper builds the external-evaluation form of ROBOTune: the caller
// evaluates each Proposal (honoring its Cap as a stopping threshold
// when possible) and feeds the outcome back via Observe, then reads
// Result. workload and dataset key the memoization store and may be
// empty. Without an Objective the Result's Evals/SearchCost and
// selection-cost fields are zero — the caller owns that accounting —
// and there is no journaling, batching or workload-mapping fast-skip.
func (r *ROBOTune) Stepper(space *conf.Space, budget int, seed uint64, workload, dataset string) *Stepper {
	st := &Stepper{
		r:        r,
		opts:     r.opts,
		space:    space,
		budget:   budget,
		seed:     seed,
		workload: workload,
		dataset:  dataset,
		slot:     make(map[int]int),
	}
	if workload != "" {
		if cached, hit := r.store.Selection(workload); hit {
			st.selected = cached
		}
	}
	st.start()
	return st
}

// prepare builds the session-backed stepper Run drives: it performs
// the selection-cache check and the snapshot fast-skip (consuming the
// journaled selection prefix in one step) before any trial is
// proposed, exactly like the head of the old blocking Run.
func (r *ROBOTune) prepare(s *tuners.Session) *Stepper {
	opts := r.opts
	obj := s.Objective()
	st := &Stepper{
		r:      r,
		opts:   opts,
		s:      s,
		obj:    obj,
		space:  s.Space(),
		budget: s.Budget(),
		seed:   s.Seed(),
		jn:     s.Journal(),
		slot:   make(map[int]int),
	}
	_, st.canBatch = obj.(tuners.BatchEvaluator)
	if id, ok := obj.(identifiable); ok {
		st.workload, st.dataset = id.WorkloadName(), id.DatasetName()
	}

	// --- Parameter selection (cache check, Figure 1) -------------------
	if st.workload != "" {
		if cached, hit := r.store.Selection(st.workload); hit {
			st.selected = cached
		}
	}
	// Resume fast-skip: when the recovered snapshot carries the
	// selection outcome (and the memo state it produced), consume the
	// leading selection records in one step instead of re-training the
	// forest on the replayed samples. Disabled under workload mapping,
	// whose probe side effects the snapshot does not capture; replay
	// then re-derives the selection, which is equally bit-identical,
	// just slower.
	jn := st.jn
	if st.selected == nil && jn != nil && opts.Mapper == nil && jn.Replayed() == 0 {
		if snap, ok := jn.Snapshot(); ok && len(snap.Selection) > 0 && snap.SelTrials > 0 &&
			jn.ReplayPending() >= snap.SelTrials {
			memoOK := len(snap.Memo) == 0 || json.Unmarshal(snap.Memo, r.store) == nil
			if memoOK {
				evalsBefore, costBefore := obj.Evals(), obj.SearchCost()
				s.SetPhase("selection")
				if _, err := s.FastForward(snap.SelTrials); err == nil {
					st.selected = append([]string(nil), snap.Selection...)
					st.selEvals += obj.Evals() - evalsBefore
					st.selCost += obj.SearchCost() - costBefore
					if st.workload != "" {
						r.store.PutSelection(st.workload, st.selected)
					}
				}
			}
		}
	}
	st.start()
	return st
}

// start picks the opening phase: straight to tuning on a cached (or
// fast-skipped) selection, the mapping probe when a Mapper can try to
// inherit one, or the full LHS selection sweep.
func (st *Stepper) start() {
	switch {
	case st.selected != nil:
		st.sealSelection()
	case st.opts.Mapper != nil && st.workload != "" && !st.sessionDone():
		st.enterProbe()
	default:
		st.enterSelection()
	}
}

func (st *Stepper) sessionDone() bool {
	return st.s != nil && st.s.Done()
}

func (st *Stepper) setPhase(phase string) {
	if st.s != nil {
		st.s.SetPhase(phase)
	}
}

// Done implements tuners.Stepper.
func (st *Stepper) Done() bool { return st.phase == phDone }

// EvalParallel implements tuners.Batcher: the selection sweep runs
// under Options.Parallel, BO rounds under Options.BOBatch, everything
// else sequentially.
func (st *Stepper) EvalParallel() int {
	switch st.phase {
	case phSelection:
		return st.opts.Parallel
	case phBO:
		return st.opts.BOBatch
	}
	return 1
}

// --- Probe phase (workload mapping, extension) -----------------------

func (st *Stepper) enterProbe() {
	st.phase = phProbe
	st.setPhase("probe")
	if st.obj != nil {
		st.evalsBefore, st.costBefore = st.obj.Evals(), st.obj.SearchCost()
	}
	st.probeCfgs = st.opts.Mapper.ProbeConfigs()
	st.probeSecs = make([]float64, len(st.probeCfgs))
	if len(st.probeCfgs) == 0 {
		st.endProbe()
	}
}

func (st *Stepper) endProbe() {
	// The signature arithmetic of Mapper.Characterize, applied to the
	// observed probe times in probe order. A probe cut short by
	// cancellation characterizes with zero entries for the missing
	// probes; the forced selection that follows falls back anyway.
	sig := mapping.Signature{LogTimes: make([]float64, len(st.probeCfgs))}
	for i, sec := range st.probeSecs {
		if sec <= 0 {
			sec = 1e-3
		}
		sig.LogTimes[i] = math.Log(sec)
	}
	if match, ok := st.opts.Mapper.BestMatch(sig); ok && match.Similarity >= st.opts.MapThreshold {
		if sel, hit := st.r.store.Selection(match.Workload); hit {
			st.selected = sel
			st.r.store.PutSelection(st.workload, st.selected)
		}
	}
	_ = st.opts.Mapper.Register(st.workload, sig)
	if st.obj != nil {
		st.selEvals += st.obj.Evals() - st.evalsBefore
		st.selCost += st.obj.SearchCost() - st.costBefore
	}
	if st.selected != nil {
		st.sealSelection()
		return
	}
	st.enterSelection()
}

// --- Selection phase (Random-Forest parameter selection) -------------

func (st *Stepper) enterSelection() {
	st.phase = phSelection
	if st.obj != nil {
		st.evalsBefore, st.costBefore = st.obj.Evals(), st.obj.SearchCost()
	}
	st.setPhase("selection")
	samples := st.opts.GenericSamples
	rng := sample.NewRNG(st.seed ^ 0x5e1ec7)
	st.selDesign = sample.LHS(samples, st.space.Dim(), rng)
	st.selCfgs = make([]conf.Config, len(st.selDesign))
	for i, u := range st.selDesign {
		st.selCfgs[i] = st.space.Decode(u)
	}
	st.selRecs = make([]backend.EvalRecord, len(st.selCfgs))
	st.selObserved = make([]bool, len(st.selCfgs))
	if len(st.selCfgs) == 0 {
		st.endSelection()
	}
}

func (st *Stepper) endSelection() {
	x := make([][]float64, 0, len(st.selCfgs))
	y := make([]float64, 0, len(st.selCfgs))
	bestSec := math.Inf(1)
	var bestCfg conf.Config
	for i, rec := range st.selRecs {
		if !st.selObserved[i] || rec.Skipped {
			continue
		}
		x = append(x, append([]float64(nil), st.selDesign[i]...))
		y = append(y, rec.Seconds)
		if rec.Completed && rec.Seconds < bestSec {
			bestSec, bestCfg = rec.Seconds, st.selCfgs[i]
		}
	}
	sel, err := st.r.selectFromData(st.space, x, y, st.seed)
	if err == nil {
		sel.BestSample = bestCfg
		sel.BestSeconds = bestSec
		st.selected = sel.Params
		st.r.LastSelection = &sel
	}
	if st.obj != nil {
		st.selEvals += st.obj.Evals() - st.evalsBefore
		st.selCost += st.obj.SearchCost() - st.costBefore
	}
	if st.workload != "" && st.selected != nil {
		st.r.store.PutSelection(st.workload, st.selected)
	}
	// The best configuration observed during selection is a valid
	// tuning observation: memoize it so this and future sessions start
	// from a viable anchor.
	if st.workload != "" && sel.BestSample.Valid() {
		st.r.store.AddConfigs(st.workload, []memo.SavedConfig{{
			Values:  sel.BestSample.ToMap(),
			Seconds: sel.BestSeconds,
			Dataset: st.dataset,
		}}, st.opts.MemoConfigs*4)
	}
	st.sealSelection()
}

// --- Tuning setup (subspace + memoized sampling, §3.2) ---------------

// sealSelection fixes the selection outcome (falling back to the
// executor-size trio when selection failed entirely), snapshots the
// selection boundary, builds the subspace and BO engine, and queues
// the initial training set.
func (st *Stepper) sealSelection() {
	opts, space := st.opts, st.space
	if len(st.selected) == 0 {
		// Selection failed entirely (e.g. every sample failed): fall
		// back to the executor-size joint parameter, always relevant.
		st.selected = []string{conf.ExecutorCores, conf.ExecutorMemory, conf.ExecutorInstances}
	}
	// selTrialsBoundary is the journal record count at the end of the
	// selection stage — the prefix a future resume may fast-skip.
	if st.jn != nil {
		st.selTrialsBoundary = st.jn.Trials()
		// The memo bytes in every snapshot are the post-selection state,
		// captured once here: a resume that fast-skips the selection
		// prefix restores this state and re-derives everything after it
		// by replay (including the end-of-run AddConfigs). Snapshotting a
		// later store state would make the replayed init phase pull
		// different memo configurations than the original run did.
		if m, err := json.Marshal(st.r.store); err == nil {
			st.memoBytes = m
		}
	}
	st.writeSnap("selection", nil, 0)

	// Unselected parameters are frozen to the best configuration seen
	// so far for this workload (from the memo buffer, which includes
	// the best selection sample); the framework default is only the
	// last resort. Freezing at a viable anchor matters: the Spark
	// default would OOM several workloads regardless of the tuned
	// subspace values.
	base := space.Default()
	if st.workload != "" {
		if anchors := st.r.store.BestConfigs(st.workload, 1); len(anchors) > 0 {
			if c, err := space.FromRaw(anchors[0].Values); err == nil {
				base = c
			}
		}
	}
	ss, err := space.Sub(st.selected, base)
	if err != nil {
		// Defensive: unknown names in a stale cache entry.
		ss, _ = space.Sub([]string{conf.ExecutorCores, conf.ExecutorMemory}, base)
	}
	st.ss = ss
	st.r.LastSubspace = ss

	if st.obj != nil {
		st.tuneEvalsBefore, st.tuneCostBefore = st.obj.Evals(), st.obj.SearchCost()
	}
	st.tr = &runTracker{bestSec: math.Inf(1)}
	st.engine = bo.New(ss.Dim(), withSeed(opts.BO, st.seed))
	st.r.LastEngine = st.engine
	st.remaining = st.budget

	var memoCfgs []memo.SavedConfig
	if st.workload != "" {
		// Pull a wider slate and keep a diverse subset: the top
		// configurations of one session are near-duplicates, and seeding
		// the GP with four copies of the same point over-anchors
		// exploitation on the previous dataset's optimum.
		memoCfgs = diverseConfigs(space, st.r.store.BestConfigs(st.workload, opts.MemoConfigs*4), opts.MemoConfigs)
	}
	lhsCount := opts.TuningSamples - len(memoCfgs)
	if lhsCount < 0 {
		lhsCount = 0
	}
	st.rng = sample.NewRNG(st.seed ^ 0x0b07e2e)
	design := sample.MaximinLHS(lhsCount, ss.Dim(), 0, st.rng)

	st.initCfgs = st.initCfgs[:0]
	for _, saved := range memoCfgs {
		c, err := space.FromRaw(saved.Values)
		if err != nil {
			continue
		}
		st.initCfgs = append(st.initCfgs, c)
	}
	for _, u := range design {
		st.initCfgs = append(st.initCfgs, ss.Decode(u))
	}
	st.phase = phInit
	st.setPhase("init")
	if st.remaining <= 0 || len(st.initCfgs) == 0 {
		st.sealInit()
	}
}

// sealInit snapshots the trained initial surrogate and opens the BO
// loop.
func (st *Stepper) sealInit() {
	st.writeSnap("init", st.engine, st.budget-st.remaining)
	st.phase = phBO
	st.setPhase("bo")
	st.sinceSnap = 0
	st.stale = 0
	st.lastBest = st.tr.bestSec
	if st.remaining <= 0 {
		st.phase = phDone
		st.exhausted = true
	}
}

// guard is the median-multiple stopping cap (0 while nothing has
// completed — an all-failed prefix must not manufacture a cap).
func (st *Stepper) guard() float64 {
	if st.opts.GuardMultiple <= 0 {
		return 0
	}
	return st.tr.medianCompleted() * st.opts.GuardMultiple
}

// tellEngine feeds one observation to the surrogate. The GP models
// log execution time: the 480 s evaluation cap saturates much of the
// space, and the log transform keeps the surviving region
// discriminable. Failed runs are censored — their capped value is a
// floor, not a measurement — so the surrogate treats them as "at
// least this bad" instead of trusting junk observations.
func (st *Stepper) tellEngine(u []float64, rec backend.EvalRecord) {
	if rec.Completed {
		st.engine.Tell(u, math.Log(rec.Seconds))
	} else {
		st.engine.TellCensored(u, math.Log(rec.Seconds))
	}
	// The cost model (consulted only under Options.CostAware) learns
	// the uncapped spend of every trial, completed or not.
	if rec.Raw > 0 {
		st.engine.ObserveCost(u, rec.Raw)
	}
}

// suggest shields the campaign from a surrogate that cannot be fit
// even at maximum jitter (or that panics deep in the linear algebra):
// the iteration falls back to a random point and the session keeps
// running — an evaluation budget already paid for must never be
// abandoned over one degenerate fit.
func (st *Stepper) suggest() []float64 {
	u, err := func() (u []float64, err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("bo: suggest panicked: %v", p)
			}
		}()
		return st.engine.Suggest()
	}()
	if err != nil {
		if st.engine.N() >= 2 {
			// A genuine fit failure, not the normal "too few
			// observations" stage of extreme budgets.
			st.surrFallbacks++
		}
		u = randomUnit(st.ss.Dim(), st.rng)
	}
	return u
}

// --- Ask/tell surface ------------------------------------------------

// Propose implements tuners.Stepper. The selection sweep (and each BO
// batch round) comes out as a multi-trial batch; the probe, init and
// single-step BO phases propose one trial at a time because each
// proposal depends on the previous observation (the guard cap and the
// surrogate posterior).
func (st *Stepper) Propose(n int) []tuners.Proposal {
	st.proto.CheckPropose(st.Done())
	switch st.phase {
	case phProbe:
		if st.probeNext > st.probeSeen {
			return nil // waiting for the outstanding probe
		}
		props := []tuners.Proposal{{Config: st.probeCfgs[st.probeNext]}}
		st.slot[st.proto.Proposed(props)] = st.probeNext
		st.probeNext++
		return props
	case phSelection:
		if st.selNext >= len(st.selCfgs) {
			return nil // waiting for outstanding selection samples
		}
		k := len(st.selCfgs) - st.selNext
		if n > 0 && n < k {
			k = n
		}
		props := make([]tuners.Proposal, k)
		for i := 0; i < k; i++ {
			props[i] = tuners.Proposal{Config: st.selCfgs[st.selNext+i]}
		}
		first := st.proto.Proposed(props)
		for i := 0; i < k; i++ {
			st.slot[first+i] = st.selNext + i
		}
		st.selNext += k
		return props
	case phInit:
		if st.initOutstanding {
			return nil
		}
		st.initOutstanding = true
		props := []tuners.Proposal{{Config: st.initCfgs[st.initNext], Cap: st.guard()}}
		st.proto.Proposed(props)
		return props
	case phBO:
		if st.roundPending > 0 || st.singleOutstanding {
			return nil
		}
		// Parallel rounds: q constant-liar suggestions evaluated
		// concurrently, then told back with the real observations.
		if st.opts.BOBatch > 1 && st.canBatch && st.remaining >= st.opts.BOBatch {
			if us, err := st.engine.BatchSuggest(st.opts.BOBatch); err == nil && len(us) > 1 {
				props := make([]tuners.Proposal, len(us))
				for i, u := range us {
					props[i] = tuners.Proposal{Config: st.ss.Decode(u)}
				}
				first := st.proto.Proposed(props)
				for i := range props {
					st.slot[first+i] = i
				}
				st.roundUs = us
				st.roundPending = len(us)
				return props
			}
		}
		u := st.suggest()
		st.singleOutstanding = true
		props := []tuners.Proposal{{Config: st.ss.Decode(u), Cap: st.guard()}}
		st.proto.Proposed(props)
		return props
	}
	return nil
}

// Observe implements tuners.Stepper.
func (st *Stepper) Observe(c conf.Config, rec backend.EvalRecord) {
	seq := st.proto.Observed(c)
	idx, hasSlot := st.slot[seq]
	delete(st.slot, seq)
	switch st.phase {
	case phProbe:
		if !rec.Skipped {
			st.probeSecs[idx] = rec.Seconds
		}
		st.probeSeen++
		if st.probeSeen == len(st.probeCfgs) {
			st.endProbe()
		}
	case phSelection:
		st.selRecs[idx] = rec
		st.selObserved[idx] = true
		st.selSeen++
		if st.selSeen == len(st.selCfgs) && st.selNext >= len(st.selCfgs) {
			st.endSelection()
		}
	case phInit:
		st.initOutstanding = false
		st.remaining--
		st.tr.observe(c, rec)
		st.tellEngine(st.ss.Encode(c), rec)
		st.initNext++
		if st.initNext >= len(st.initCfgs) || st.remaining <= 0 {
			st.sealInit()
		}
	case phBO:
		if st.roundPending > 0 && hasSlot {
			st.roundPending--
			if !rec.Skipped { // cancelled before dispatch
				st.remaining--
				st.sinceSnap++
				st.tr.observe(c, rec)
				st.tellEngine(st.roundUs[idx], rec)
			}
			if st.roundPending == 0 {
				st.roundUs = nil
				st.endRound()
			}
			return
		}
		st.singleOutstanding = false
		st.remaining--
		rec2 := rec
		st.tr.observe(c, rec2)
		st.tellEngine(st.ss.Encode(c), rec2)
		st.sinceSnap++
		st.endRound()
	}
}

// endRound runs the per-round bookkeeping of the BO loop: periodic
// snapshots and the automated early stopping of §4.
func (st *Stepper) endRound() {
	if st.sinceSnap >= snapEvery {
		st.writeSnap("bo", st.engine, st.budget-st.remaining)
		st.sinceSnap = 0
	}
	if st.opts.EarlyStopPatience > 0 {
		if st.tr.bestSec < st.lastBest*(1-st.opts.EarlyStopEpsilon) {
			st.stale = 0
			st.lastBest = st.tr.bestSec
		} else {
			st.stale++
			if st.stale >= st.opts.EarlyStopPatience {
				st.phase = phDone
				return
			}
		}
	}
	if st.remaining <= 0 {
		st.phase = phDone
		st.exhausted = true
	}
}

// CanExtend implements tuners.Extender: ROBOTune can absorb a
// campaign budget grant while its BO loop is live or when it stopped
// purely on budget exhaustion. A deliberate stop — early-stop
// patience, a sealed session — declines, so the grant stays in the
// pool for a session that will actually spend it.
func (st *Stepper) CanExtend() bool {
	if st.finished {
		return false
	}
	return st.phase == phBO || (st.phase == phDone && st.exhausted)
}

// ExtendBudget implements tuners.Extender: the grant grows the budget
// and remaining counters and, when exhaustion had closed the BO loop,
// reopens it. Snapshot arithmetic (BudgetSpent = budget - remaining)
// and the early-stop staleness counter carry over unchanged, so an
// extended run behaves exactly like one started with the larger
// budget from the beginning of the BO phase.
func (st *Stepper) ExtendBudget(n int) {
	if n <= 0 || !st.CanExtend() {
		return
	}
	st.budget += n
	st.remaining += n
	if st.phase == phDone {
		st.phase = phBO
		st.exhausted = false
	}
}

// writeSnap atomically replaces the journal's snapshot side file with
// the current session state. Skipped while replay is pending (the
// recovered snapshot is still ahead of, or equal to, the replayed
// position) and after cancellation — a cancelled phase may have
// recorded a degraded outcome (e.g. the fallback selection of an
// aborted LHS sweep) that must not masquerade as campaign state;
// resume replays the per-evaluation records instead.
func (st *Stepper) writeSnap(phase string, eng *bo.Engine, spent int) {
	if st.jn == nil || st.jn.Replaying() || st.sessionDone() {
		return
	}
	snap := journal.Snapshot{
		Phase:       phase,
		Trials:      st.jn.Trials(),
		SelTrials:   st.selTrialsBoundary,
		BudgetSpent: spent,
		Selection:   append([]string(nil), st.selected...),
		Stats:       st.s.Stats().Counts(),
		Memo:        st.memoBytes,
	}
	if eng != nil {
		if em, err := json.Marshal(eng.State()); err == nil {
			snap.Engine = em
		}
	}
	_ = st.jn.WriteSnapshot(snap)
}

// Finish implements tuners.Finisher: it forces the remaining phase
// transitions of an interrupted pipeline (a cancelled sweep still
// falls back, builds the subspace and engine, and reports — exactly
// like the blocking loop, whose tail always ran), memoizes the best
// configurations for future sessions, and writes the final snapshot.
func (st *Stepper) Finish(*tuners.Session) { st.finish() }

func (st *Stepper) finish() {
	if st.finished {
		return
	}
	st.finished = true
	if st.phase == phProbe {
		st.endProbe()
	}
	if st.phase == phSelection {
		st.endSelection()
	}
	if st.phase == phInit {
		st.sealInit()
	}
	if st.phase == phBO {
		st.phase = phDone
	}

	// Memoize the best configurations for future sessions. The buffer
	// retains a wider slate (4x) than the per-session pull so the
	// diverse subset has real choices.
	if st.workload != "" && st.tr.found {
		top := st.tr.topK(st.opts.MemoConfigs)
		saved := make([]memo.SavedConfig, 0, len(top))
		for _, e := range top {
			saved = append(saved, memo.SavedConfig{
				Values:  e.cfg.ToMap(),
				Seconds: e.sec,
				Dataset: st.dataset,
			})
		}
		st.r.store.AddConfigs(st.workload, saved, st.opts.MemoConfigs*4)
	}
	st.writeSnap("done", st.engine, st.budget-st.remaining)
}

// SessionResult implements tuners.ResultMaker: ROBOTune's Result
// carries the tuning-phase trace and the selection accounting, not
// the session's generic whole-run view.
func (st *Stepper) SessionResult(s *tuners.Session) tuners.Result {
	res := tuners.Result{
		Best:               st.tr.best,
		BestSeconds:        st.tr.bestSec,
		Found:              st.tr.found,
		Trace:              st.tr.trace,
		Completed:          st.tr.completed,
		SelectedParams:     append([]string(nil), st.selected...),
		SelectionEvals:     st.selEvals,
		SelectionCost:      st.selCost,
		SurrogateFallbacks: st.surrFallbacks,
	}
	if st.obj != nil {
		res.Evals = st.obj.Evals() - st.tuneEvalsBefore
		res.SearchCost = st.obj.SearchCost() - st.tuneCostBefore
	}
	if s != nil {
		res.Failures = s.Stats()
		res.Cancelled = s.Cancelled()
	}
	return res
}

// Result seals an externally driven stepper and returns its outcome.
// (Session-driven steppers get their Result from tuners.Drive.)
func (st *Stepper) Result() tuners.Result {
	st.finish()
	return st.SessionResult(st.s)
}
