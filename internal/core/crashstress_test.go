package core

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/conf"
	"repro/internal/journal"
	"repro/internal/tuners"
)

// The crash-stress harness re-executes this test binary as a child
// running a journaled campaign, SIGKILLs it at escalating depths, and
// resumes until completion — then checks the stitched-together result
// against an uninterrupted in-process run. Gated behind an env var so
// tier-1 `go test ./...` stays fast; `make crash-stress` (and the CI
// job) enable it.
const (
	crashStressEnv  = "ROBOTUNE_CRASH_STRESS"
	crashChildEnv   = "ROBOTUNE_CRASH_CHILD"
	crashJournalEnv = "ROBOTUNE_CRASH_JOURNAL"
)

func crashStressSetup() resumeSetup {
	o := resumeOptions()
	// A larger campaign than the in-process sweeps, so SIGKILL lands at
	// genuinely arbitrary points (including mid-forest-training and
	// mid-GP-fit), while one full run still takes well under a minute.
	o.GenericSamples = 60
	o.Forest.Trees = 50
	o.PermuteRepeats = 8
	o.BO.CandidatePool = 256
	o.BO.Starts = 4
	o.BO.GP.Restarts = 3
	return resumeSetup{opts: o, space: conf.SparkSpace(), faults: true, retries: 1, budget: 80, seed: 97}
}

// TestCrashStressChild is the subprocess body, not a standalone test:
// it runs (or resumes) the journaled campaign at the shared setup and
// reports the result on stdout for the parent to compare.
func TestCrashStressChild(t *testing.T) {
	if os.Getenv(crashChildEnv) != "1" {
		t.Skip("crash-stress child body; run via TestKillResumeStress")
	}
	rs := crashStressSetup()
	res, _ := rs.run(t, os.Getenv(crashJournalEnv))
	fmt.Printf("CHILD_RESULT found=%v best=%x cost=%x evals=%d trace=%d\n",
		res.Found, res.BestSeconds, res.SearchCost, res.Evals, len(res.Trace))
}

// TestKillResumeStress: SIGKILL the journaled campaign at escalating
// depths — no graceful unwinding, no deferred cleanup — and resume
// each time. The final completed run must be bit-identical to the
// uninterrupted baseline.
func TestKillResumeStress(t *testing.T) {
	if os.Getenv(crashStressEnv) == "" {
		t.Skip("set " + crashStressEnv + "=1 (or run `make crash-stress`) to enable")
	}
	rs := crashStressSetup()
	baseline, _ := rs.run(t, "")
	if !baseline.Found {
		t.Fatal("baseline found nothing")
	}

	jnl := tempJournalPath(t)
	kills := 0
	delay := 100 * time.Millisecond
	for round := 0; ; round++ {
		if round > 50 {
			t.Fatal("campaign did not complete within 50 kill/resume rounds")
		}
		cmd := exec.Command(os.Args[0], "-test.run=^TestCrashStressChild$", "-test.v")
		cmd.Env = append(os.Environ(), crashChildEnv+"=1", crashJournalEnv+"="+jnl)
		out, killed := runAndKill(t, cmd, delay)
		if killed {
			kills++
			delay += 100 * time.Millisecond // walk the kill point through the campaign
			continue
		}
		if !strings.Contains(out, "CHILD_RESULT") {
			t.Fatalf("child exited cleanly without a result:\n%s", out)
		}
		break
	}
	if kills == 0 {
		t.Log("no round was killed mid-run; parity check still meaningful but widen the campaign")
	}
	t.Logf("campaign completed after %d SIGKILLs", kills)

	// The journal now holds the stitched run; replaying it end-to-end
	// must reproduce the uninterrupted baseline bit-for-bit.
	jn, err := journal.Open(jnl, resumeMeta(rs.seed, rs.budget, rs.faultsName()), journal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := jn.Done(); !ok {
		t.Fatal("completed campaign left no done record")
	}
	r := New(nil, rs.opts)
	res := r.Run(tuners.NewSession(rs.evaluator(), rs.space, tuners.Request{
		Budget: rs.budget, Seed: rs.seed,
		Retry:   tuners.RetryPolicy{MaxRetries: rs.retries},
		Journal: jn,
	}))
	if reason := jn.Diverged(); reason != "" {
		t.Fatalf("replay of the stitched journal diverged: %s", reason)
	}
	jn.Close()
	assertSameResult(t, "kill-resume", res, baseline)
}

// runAndKill starts the child, SIGKILLs it after the delay, and
// reports its combined output and whether the kill landed before exit.
func runAndKill(t *testing.T, cmd *exec.Cmd, delay time.Duration) (string, bool) {
	t.Helper()
	var buf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &buf, &buf
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting child: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-done:
		return buf.String(), false
	case <-time.After(delay):
		_ = cmd.Process.Signal(syscall.SIGKILL)
		<-done
		return buf.String(), true
	}
}

func tempJournalPath(t *testing.T) string {
	t.Helper()
	return t.TempDir() + "/stress.jnl"
}
