package core

import (
	"testing"

	"repro/internal/conf"
	"repro/internal/sparksim"
	"repro/internal/tuners"
)

// TestTuneIncrementalSurrogateParity is the campaign-level guarantee
// for the GP fast path: a full tuning run must be bit-identical
// whether the BO engine extends its cached Cholesky factor between
// hyperparameter refits or refits the surrogate from scratch every
// iteration. The incremental path changes iteration cost from O(n³)
// to O(n²); it must never change a single suggested configuration.
func TestTuneIncrementalSurrogateParity(t *testing.T) {
	space := conf.SparkSpace()
	run := func(disable bool) tuners.Result {
		o := fastOptions()
		o.GenericSamples = 30
		o.Forest.Trees = 20
		o.PermuteRepeats = 2
		o.BO.DisableIncremental = disable
		r := New(nil, o)
		ev := newEvaluator(sparksim.TeraSort(20), 29)
		return r.Tune(ev, space, 25, 29)
	}
	inc := run(false)
	full := run(true)
	if !inc.Found || !full.Found {
		t.Fatal("campaign found nothing")
	}
	if inc.BestSeconds != full.BestSeconds || inc.SearchCost != full.SearchCost {
		t.Errorf("best %v / cost %v with incremental, %v / %v with full refits",
			inc.BestSeconds, inc.SearchCost, full.BestSeconds, full.SearchCost)
	}
	if len(inc.Trace) != len(full.Trace) {
		t.Fatalf("trace length %d with incremental, %d with full refits", len(inc.Trace), len(full.Trace))
	}
	for i := range full.Trace {
		if inc.Trace[i] != full.Trace[i] {
			t.Fatalf("trace[%d] = %v with incremental, %v with full refits", i, inc.Trace[i], full.Trace[i])
		}
	}
	if !inc.Best.Equal(full.Best) {
		t.Error("best config differs between incremental and full refits")
	}
}
