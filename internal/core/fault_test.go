package core

import (
	"context"
	"math"
	"repro/internal/backend"
	"strings"
	"sync"
	"testing"

	"repro/internal/conf"
	"repro/internal/sparksim"
	"repro/internal/tuners"
)

func faultyEvaluator(w sparksim.Workload, seed uint64) *sparksim.Evaluator {
	ev := newEvaluator(w, seed)
	ev.Faults = backend.DefaultFaultPlan()
	return ev
}

// TestTuneUnderFaultsCompletes is the headline acceptance test: with
// executor loss, stragglers, transient errors and spurious OOMs
// injected on TeraSort, ROBOTune must run its full budget, retry
// transients, and return a clean result — no panic, no NaN.
func TestTuneUnderFaultsCompletes(t *testing.T) {
	r := New(nil, fastOptions())
	ev := faultyEvaluator(sparksim.TeraSort(20), 3)
	res := r.Run(tuners.NewSession(ev, conf.SparkSpace(), tuners.Request{
		Budget: 40,
		Seed:   3,
		Retry:  tuners.RetryPolicy{MaxRetries: 2},
	}))

	if !res.Found {
		t.Fatal("no configuration completed under the moderate fault plan")
	}
	if len(res.Trace) != 40 {
		t.Fatalf("trace length %d, want the full budget of 40 trials", len(res.Trace))
	}
	for i, v := range res.Trace {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("trace[%d] = %v", i, v)
		}
	}
	if math.IsNaN(res.BestSeconds) {
		t.Fatal("BestSeconds is NaN")
	}
	// The default plan injects ~12% transient errors; across 100
	// selection + 40+ tuning trials some must have been observed and
	// retried.
	if res.Failures.Transient == 0 {
		t.Error("no transient failures observed under a 12% transient plan")
	}
	if res.Failures.Retries == 0 {
		t.Error("transient failures present but nothing was retried")
	}
	if res.Cancelled {
		t.Error("result marked cancelled without a cancelled context")
	}
	if out := r.Explain(conf.SparkSpace(), res); strings.Contains(out, "NaN") {
		t.Errorf("Explain contains NaN:\n%s", out)
	} else if !strings.Contains(out, "robustness:") {
		t.Errorf("Explain misses the robustness line:\n%s", out)
	}
}

// TestTuneFaultPlanParity: same seed + same fault plan must be
// bit-identical across tuner worker counts and evaluation modes —
// the PR 1 determinism contract extended to faulty clusters.
func TestTuneFaultPlanParity(t *testing.T) {
	space := conf.SparkSpace()
	run := func(workers, parallel int) tuners.Result {
		o := fastOptions()
		o.Workers = workers
		o.Parallel = parallel
		o.GenericSamples = 30
		o.Forest.Trees = 20
		o.PermuteRepeats = 2
		r := New(nil, o)
		ev := faultyEvaluator(sparksim.TeraSort(20), 17)
		return r.Run(tuners.NewSession(ev, space, tuners.Request{Budget: 25, Seed: 17}))
	}
	serial := run(1, 1)
	if !serial.Found {
		t.Fatal("serial faulty campaign found nothing")
	}
	for _, w := range []int{2, 8} {
		got := run(w, 4)
		if got.BestSeconds != serial.BestSeconds || got.SearchCost != serial.SearchCost {
			t.Errorf("workers=%d: best %v / cost %v, serial %v / %v",
				w, got.BestSeconds, got.SearchCost, serial.BestSeconds, serial.SearchCost)
		}
		if len(got.Trace) != len(serial.Trace) {
			t.Fatalf("workers=%d: trace length %d vs %d", w, len(got.Trace), len(serial.Trace))
		}
		for i := range serial.Trace {
			if got.Trace[i] != serial.Trace[i] {
				t.Fatalf("workers=%d: trace[%d] = %v, serial %v", w, i, got.Trace[i], serial.Trace[i])
			}
		}
		if got.Failures != serial.Failures {
			t.Errorf("workers=%d: failure stats %+v, serial %+v", w, got.Failures, serial.Failures)
		}
		if !got.Best.Equal(serial.Best) {
			t.Errorf("workers=%d: best config differs", w)
		}
	}
}

// cancellingObjective wraps an evaluator and cancels the context
// after a fixed number of evaluations.
type cancellingObjective struct {
	*sparksim.Evaluator
	mu     sync.Mutex
	after  int
	count  int
	cancel context.CancelFunc
}

func (c *cancellingObjective) tick() {
	c.mu.Lock()
	c.count++
	if c.count == c.after {
		c.cancel()
	}
	c.mu.Unlock()
}

// EvaluateSpec keeps the cancel hook on the unified entry point the
// session actually routes through.
func (c *cancellingObjective) EvaluateSpec(cfg conf.Config, spec sparksim.EvalSpec) sparksim.EvalRecord {
	defer c.tick()
	return c.Evaluator.EvaluateSpec(cfg, spec)
}

// TestTuneCancelledReturnsBestSoFar: a context cancelled mid-session
// must stop the tuner within one evaluation and surface the
// best-so-far.
func TestTuneCancelledReturnsBestSoFar(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ev := newEvaluator(sparksim.TeraSort(20), 5)
	obj := &cancellingObjective{Evaluator: ev, after: 70, cancel: cancel}
	r := New(nil, fastOptions())
	res := r.Run(tuners.NewSession(obj, conf.SparkSpace(), tuners.Request{
		Ctx:    ctx,
		Budget: 40,
		Seed:   5,
	}))

	if !res.Cancelled {
		t.Fatal("result not marked cancelled")
	}
	// 60 selection + 40 tuning trials were requested; cancellation at
	// evaluation 70 must stop the session within one more evaluation.
	total := obj.Evals()
	if total > 71 {
		t.Fatalf("session kept evaluating after cancel: %d evals", total)
	}
	if !res.Found {
		t.Fatal("best-so-far lost on cancellation")
	}
	if math.IsNaN(res.BestSeconds) {
		t.Fatal("BestSeconds is NaN after cancellation")
	}
	if out := r.Explain(conf.SparkSpace(), res); !strings.Contains(out, "cancelled") {
		t.Errorf("Explain misses the cancellation note:\n%s", out)
	}
}

// TestTunePreCancelledSession: a context cancelled before Run starts
// must come back immediately with a usable (empty) result.
func TestTunePreCancelledSession(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ev := newEvaluator(sparksim.TeraSort(20), 6)
	r := New(nil, fastOptions())
	res := r.Run(tuners.NewSession(ev, conf.SparkSpace(), tuners.Request{Ctx: ctx, Budget: 40, Seed: 6}))
	if res.Found || !res.Cancelled {
		t.Fatalf("pre-cancelled session: %+v", res)
	}
	if ev.Evals() != 0 {
		t.Fatalf("pre-cancelled session charged %d evaluations", ev.Evals())
	}
}

// TestTuneAllFailuresGraceful: when every evaluation fails, ROBOTune
// must degrade gracefully — Found=false, non-NaN trace, clean
// Explain — instead of feeding junk into the GP or dividing by zero
// in the guard.
func TestTuneAllFailuresGraceful(t *testing.T) {
	obj := &tuners.FuncObjective{
		Fn:       func(c conf.Config) (float64, bool) { return 480, false },
		Workload: "doomed", Dataset: "d1",
	}
	r := New(nil, fastOptions())
	res := r.Run(tuners.NewSession(obj, conf.SparkSpace(), tuners.Request{Budget: 30, Seed: 7}))

	if res.Found {
		t.Fatal("Found=true with zero completed evaluations")
	}
	if len(res.Trace) != 30 {
		t.Fatalf("trace length %d, want 30", len(res.Trace))
	}
	for i, v := range res.Trace {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("trace[%d] = %v", i, v)
		}
	}
	if res.Failures.Failed != 30+res.SelectionEvals {
		t.Errorf("Failed=%d, want every evaluation (%d)", res.Failures.Failed, 30+res.SelectionEvals)
	}
	out := r.Explain(conf.SparkSpace(), res)
	if strings.Contains(out, "NaN") {
		t.Errorf("Explain contains NaN:\n%s", out)
	}
	if !strings.Contains(out, "no configuration completed") {
		t.Errorf("Explain misses the all-failed note:\n%s", out)
	}
}

// TestCampaignWithFaultsDeterministic: Campaign threads the fault
// plan, deadline and retry policy into every session, and stays
// reproducible under them.
func TestCampaignWithFaultsDeterministic(t *testing.T) {
	run := func() CampaignResult {
		c := &Campaign{
			Tuner:   New(nil, fastOptions()),
			Backend: sparksim.Backend{},
			Budget:  15,
			Faults:  backend.DefaultFaultPlan(),
			Retry:   tuners.RetryPolicy{MaxRetries: 1},
		}
		return c.Run([]backend.Workload{sparksim.TeraSort(20), sparksim.TeraSort(30)}, 21)
	}
	a, b := run(), run()
	if len(a.Sessions) != 2 || len(b.Sessions) != 2 {
		t.Fatalf("session counts %d/%d", len(a.Sessions), len(b.Sessions))
	}
	for i := range a.Sessions {
		ra, rb := a.Sessions[i].Result, b.Sessions[i].Result
		if ra.BestSeconds != rb.BestSeconds || ra.SearchCost != rb.SearchCost || ra.Failures != rb.Failures {
			t.Errorf("session %d not reproducible: %+v vs %+v", i, ra.Failures, rb.Failures)
		}
		if a.Sessions[i].Quality != b.Sessions[i].Quality {
			t.Errorf("session %d quality %v vs %v", i, a.Sessions[i].Quality, b.Sessions[i].Quality)
		}
	}
}

// TestCampaignCancelledStopsSessions: a cancelled campaign context
// stops starting new sessions.
func TestCampaignCancelledStopsSessions(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := &Campaign{
		Tuner:   New(nil, fastOptions()),
		Backend: sparksim.Backend{},
		Budget:  10,
		Ctx:     ctx,
	}
	out := c.Run([]backend.Workload{sparksim.TeraSort(20)}, 1)
	if len(out.Sessions) != 0 {
		t.Fatalf("cancelled campaign ran %d sessions", len(out.Sessions))
	}
}
