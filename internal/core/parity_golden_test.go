package core

// Golden parity pin for the Spark backend: a full robotune trace (and
// a BOHB multi-fidelity trace) captured before the backend-interface
// extraction, compared byte-for-byte against the refactored stack.
// The golden file was generated on the pre-refactor tree; regenerating
// it (ROBOTUNE_UPDATE_GOLDEN=1) is only legitimate when a PR
// deliberately changes tuning behavior, never as part of a refactor
// that claims bit-identical results.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/conf"
	"repro/internal/journal"
	"repro/internal/sparksim"
	"repro/internal/tuners"
)

// paritySnapshot is the JSON image of everything a tuning session
// observed: the full trace, the incumbent, costs, selection, failure
// accounting and the final measured quality. JSON round-trips float64
// bit-exactly, so byte equality of snapshots is bit equality of runs.
type paritySnapshot struct {
	Best           map[string]float64    `json:"best,omitempty"`
	BestSeconds    float64               `json:"best_seconds,omitempty"`
	Found          bool                  `json:"found"`
	Evals          int                   `json:"evals"`
	SearchCost     float64               `json:"search_cost"`
	Trace          []float64             `json:"trace"`
	Completed      []bool                `json:"completed"`
	Proxy          []bool                `json:"proxy,omitempty"`
	SelectedParams []string              `json:"selected_params,omitempty"`
	SelectionEvals int                   `json:"selection_evals,omitempty"`
	SelectionCost  float64               `json:"selection_cost,omitempty"`
	Failures       journal.FailureCounts `json:"failures"`
	Measured       float64               `json:"measured,omitempty"`
	ObjEvals       int                   `json:"obj_evals"`
	ObjCost        float64               `json:"obj_cost"`
}

func snapshotOf(res tuners.Result, ev *sparksim.Evaluator, measureSeed uint64) paritySnapshot {
	snap := paritySnapshot{
		Found:          res.Found,
		Evals:          res.Evals,
		SearchCost:     res.SearchCost,
		Trace:          res.Trace,
		Completed:      res.Completed,
		Proxy:          res.Proxy,
		SelectedParams: res.SelectedParams,
		SelectionEvals: res.SelectionEvals,
		SelectionCost:  res.SelectionCost,
		Failures:       res.Failures.Counts(),
		ObjEvals:       ev.Evals(),
		ObjCost:        ev.SearchCost(),
	}
	if res.Found {
		snap.Best = res.Best.ToMap()
		snap.BestSeconds = res.BestSeconds
		snap.Measured = ev.Measure(res.Best, 3, measureSeed)
	}
	return snap
}

func TestSparkBackendParityGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full tuning runs; skipped in -short mode")
	}
	got := map[string]paritySnapshot{}

	// Scenario 1: the full ROBOTune pipeline (probe → selection → LHS
	// → GP-BO with guard caps) under deterministic fault injection.
	{
		w, err := sparksim.WorkloadByName("KMeans", 1)
		if err != nil {
			t.Fatal(err)
		}
		ev := sparksim.NewEvaluator(sparksim.PaperCluster(), w, 42, 480)
		plan := sparksim.DefaultFaultPlan()
		plan.Seed = 99
		ev.Faults = plan
		r := New(nil, fastOptions())
		res := r.Run(tuners.NewSession(ev, conf.SparkSpace(), tuners.Request{Budget: 40, Seed: 42}))
		got["robotune-faults"] = snapshotOf(res, ev, 42*31+7)
	}

	// Scenario 2: BOHB on the fidelity ladder — pins the proxy
	// workload derivation, the per-index noise streams across
	// fidelities and the cap/fidelity plumbing.
	{
		w, err := sparksim.WorkloadByName("PageRank", 0)
		if err != nil {
			t.Fatal(err)
		}
		ev := sparksim.NewEvaluator(sparksim.PaperCluster(), w, 7, 480)
		tn := tuners.BOHB{Ladder: tuners.DefaultLadder()}
		res := tn.Run(tuners.NewSession(ev, conf.SparkSpace(), tuners.Request{Budget: 27, Seed: 7}))
		got["bohb-ladder"] = snapshotOf(res, ev, 7*31+7)
	}

	buf, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')

	golden := filepath.Join("testdata", "spark_parity_golden.json")
	if os.Getenv("ROBOTUNE_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden missing (run with ROBOTUNE_UPDATE_GOLDEN=1 on a known-good tree): %v", err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatalf("spark backend diverged from the pre-refactor golden trace\ngot:\n%s\nwant:\n%s", buf, want)
	}
}
