package core

import (
	"repro/internal/backend"
	"strings"
	"testing"

	"repro/internal/sparksim"
)

func TestCampaignAccumulatesKnowledge(t *testing.T) {
	camp := &Campaign{
		Tuner:       New(nil, fastOptions()),
		Backend:     sparksim.Backend{},
		Budget:      25,
		MeasureReps: 2,
	}
	res := camp.Run([]backend.Workload{
		sparksim.PageRank(5),
		sparksim.PageRank(7.5),
		sparksim.KMeans(200),
		sparksim.PageRank(10),
		sparksim.KMeans(300),
	}, 71)

	if len(res.Sessions) != 5 {
		t.Fatalf("sessions = %d", len(res.Sessions))
	}
	// First PageRank and first KMeans miss; the other three hit.
	wantHits := []bool{false, true, false, true, true}
	for i, sess := range res.Sessions {
		if sess.CacheHit != wantHits[i] {
			t.Errorf("session %d (%s): hit=%v want %v", i, sess.Workload.WorkloadName()+"/"+sess.Workload.DatasetName(), sess.CacheHit, wantHits[i])
		}
		if !sess.Result.Found {
			t.Errorf("session %d found nothing", i)
		}
		if sess.Quality <= 0 || sess.Quality > 480 {
			t.Errorf("session %d quality %v", i, sess.Quality)
		}
	}
	if got := res.CacheHitRate(); got != 0.6 {
		t.Errorf("hit rate = %v, want 0.6", got)
	}
	if res.TotalSearchCost() <= 0 {
		t.Error("no search cost accumulated")
	}
	// Selection ran exactly twice.
	if res.TotalSelectionCost() <= 0 {
		t.Error("no selection cost recorded")
	}
	out := res.Render()
	for _, want := range []string{"PageRank/5M pages", "hit", "MISS", "cache hit rate 60%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestCampaignDefaults(t *testing.T) {
	camp := &Campaign{Backend: sparksim.Backend{}, Budget: 20}
	res := camp.Run([]backend.Workload{sparksim.TeraSort(20)}, 3)
	if len(res.Sessions) != 1 || !res.Sessions[0].Result.Found {
		t.Fatalf("default campaign failed: %+v", res.Sessions)
	}
	if camp.Tuner == nil {
		t.Error("tuner not defaulted")
	}
}
