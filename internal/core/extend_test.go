package core

import (
	"testing"

	"repro/internal/conf"
	"repro/internal/sparksim"
	"repro/internal/tuners"
)

// scriptedGrants answers a fixed grant sequence and records when it
// was asked.
type scriptedGrants struct {
	grants  []int
	askedAt []int
}

func (g *scriptedGrants) Grant(trials int) int {
	g.askedAt = append(g.askedAt, trials)
	if len(g.grants) == 0 {
		return 0
	}
	n := g.grants[0]
	g.grants = g.grants[1:]
	return n
}

// TestROBOTuneBudgetExtension: a ROBOTune session that exhausts its
// tuning budget is revived by a campaign grant and keeps optimizing —
// the trace grows by exactly the granted trials and the result can
// only improve.
func TestROBOTuneBudgetExtension(t *testing.T) {
	space := conf.SparkSpace()
	baseRes := New(nil, fastOptions()).Run(tuners.NewSession(
		newEvaluator(sparksim.TeraSort(20), 7), space, tuners.Request{Budget: 20, Seed: 7}))
	if !baseRes.Found || len(baseRes.Trace) != 20 {
		t.Fatalf("baseline: found=%v trace=%d", baseRes.Found, len(baseRes.Trace))
	}

	gs := &scriptedGrants{grants: []int{6}}
	res := New(nil, fastOptions()).Run(tuners.NewSession(
		newEvaluator(sparksim.TeraSort(20), 7), space, tuners.Request{Budget: 20, Seed: 7, Grants: gs}))
	if got := len(res.Trace); got != 26 {
		t.Fatalf("extended trace = %d trials, want 26 (20 base + 6 granted)", got)
	}
	if res.Evals != 26 {
		t.Fatalf("extended evals = %d, want 26", res.Evals)
	}
	// First draw at base exhaustion, second after the grant is spent.
	// The reported trial counts include the 60 selection evaluations
	// (Session.Trials counts the whole session, not just tuning).
	if len(gs.askedAt) != 2 || gs.askedAt[0] != 80 || gs.askedAt[1] != 86 {
		t.Fatalf("grant draws at %v, want [80 86]", gs.askedAt)
	}
	if res.BestSeconds > baseRes.BestSeconds {
		t.Fatalf("extra budget made the result worse: %v vs %v", res.BestSeconds, baseRes.BestSeconds)
	}
}

// TestROBOTuneEarlyStopDeclinesGrants: a session that stopped on
// patience (not exhaustion) must not absorb grants — the budget it
// deliberately declined to spend stays in the campaign pool.
func TestROBOTuneEarlyStopDeclinesGrants(t *testing.T) {
	opts := fastOptions()
	opts.EarlyStopPatience = 8
	gs := &scriptedGrants{grants: []int{50}}
	res := New(nil, opts).Run(tuners.NewSession(
		newEvaluator(sparksim.TeraSort(20), 15), conf.SparkSpace(),
		tuners.Request{Budget: 100, Seed: 15, Grants: gs}))
	if !res.Found {
		t.Fatal("nothing found")
	}
	if res.Evals >= 100 {
		t.Fatalf("early stopping never fired: %d evals", res.Evals)
	}
	if len(gs.askedAt) != 0 {
		t.Fatalf("early-stopped session drew from the grant pool at %v", gs.askedAt)
	}
	if len(gs.grants) != 1 {
		t.Fatal("grant consumed despite the early stop")
	}
}
