package core

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/conf"
	"repro/internal/journal"
	"repro/internal/sparksim"
	"repro/internal/tuners"
)

// resumeOptions keeps the kill/resume sweep fast while still crossing
// every phase boundary: selection (12 samples), init (6) and a BO tail
// long enough to hit the periodic snapshot cadence.
func resumeOptions() Options {
	o := fastOptions()
	o.GenericSamples = 12
	o.TuningSamples = 6
	o.Forest.Trees = 15
	o.PermuteRepeats = 2
	o.BO.CandidatePool = 32
	return o
}

func resumeMeta(seed uint64, budget int, faults string) journal.Meta {
	return journal.Meta{
		Seed:      seed,
		Budget:    budget,
		Workload:  "TeraSort",
		Dataset:   "D20GB",
		Tuner:     "ROBOTune",
		Cap:       480,
		Faults:    faults,
		SpaceHash: conf.SparkSpace().Fingerprint(),
	}
}

// evalFrameCuts parses the journal's on-disk frames and returns the
// byte offset just past the meta frame and past each eval frame — the
// clean truncation points simulating a crash after exactly k committed
// evaluations.
func evalFrameCuts(t *testing.T, data []byte) []int64 {
	t.Helper()
	var cuts []int64
	off := int64(8) // magic
	for off < int64(len(data)) {
		rest := data[off:]
		n := binary.LittleEndian.Uint32(rest[:4])
		payload := rest[8 : 8+int64(n)]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[4:8]) {
			t.Fatalf("corrupt frame at %d in a freshly written journal", off)
		}
		var fr struct {
			T string `json:"t"`
		}
		if err := json.Unmarshal(payload, &fr); err != nil {
			t.Fatalf("unparsable frame at %d: %v", off, err)
		}
		off += 8 + int64(n)
		switch fr.T {
		case "meta", "eval":
			cuts = append(cuts, off)
		}
	}
	return cuts
}

type resumeSetup struct {
	opts    Options
	space   *conf.Space // shared: Config.Equal requires one Space instance
	faults  bool
	retries int
	budget  int
	seed    uint64
}

func (rs resumeSetup) evaluator() *sparksim.Evaluator {
	ev := newEvaluator(sparksim.TeraSort(20), rs.seed)
	if rs.faults {
		ev.Faults = sparksim.DefaultFaultPlan()
	}
	return ev
}

func (rs resumeSetup) faultsName() string {
	if rs.faults {
		return sparksim.DefaultFaultPlan().String()
	}
	return sparksim.FaultPlan{}.String()
}

// run executes one campaign on a fresh evaluator and fresh store,
// journaled when path != "".
func (rs resumeSetup) run(t *testing.T, path string) (tuners.Result, *journal.Journal) {
	t.Helper()
	var jn *journal.Journal
	if path != "" {
		var err error
		jn, err = journal.Open(path, resumeMeta(rs.seed, rs.budget, rs.faultsName()), journal.SyncNone)
		if err != nil {
			t.Fatalf("journal.Open: %v", err)
		}
	}
	r := New(nil, rs.opts)
	res := r.Run(tuners.NewSession(rs.evaluator(), rs.space, tuners.Request{
		Budget:  rs.budget,
		Seed:    rs.seed,
		Retry:   tuners.RetryPolicy{MaxRetries: rs.retries},
		Journal: jn,
	}))
	if jn != nil {
		if err := jn.Close(); err != nil {
			t.Fatalf("journal.Close: %v", err)
		}
	}
	return res, jn
}

func assertSameResult(t *testing.T, label string, got, want tuners.Result) {
	t.Helper()
	if got.Found != want.Found || got.BestSeconds != want.BestSeconds {
		t.Fatalf("%s: best %v/%v, want %v/%v", label, got.Found, got.BestSeconds, want.Found, want.BestSeconds)
	}
	if want.Found && !got.Best.Equal(want.Best) {
		t.Fatalf("%s: best config differs", label)
	}
	if got.Evals != want.Evals || got.SearchCost != want.SearchCost {
		t.Fatalf("%s: evals/cost %d/%v, want %d/%v", label, got.Evals, got.SearchCost, want.Evals, want.SearchCost)
	}
	if got.SelectionEvals != want.SelectionEvals || got.SelectionCost != want.SelectionCost {
		t.Fatalf("%s: selection %d/%v, want %d/%v",
			label, got.SelectionEvals, got.SelectionCost, want.SelectionEvals, want.SelectionCost)
	}
	if len(got.Trace) != len(want.Trace) {
		t.Fatalf("%s: trace length %d, want %d", label, len(got.Trace), len(want.Trace))
	}
	for i := range want.Trace {
		if got.Trace[i] != want.Trace[i] {
			t.Fatalf("%s: trace[%d] = %v, want %v", label, i, got.Trace[i], want.Trace[i])
		}
	}
	if got.Failures != want.Failures {
		t.Fatalf("%s: failures %+v, want %+v", label, got.Failures, want.Failures)
	}
	if len(got.SelectedParams) != len(want.SelectedParams) {
		t.Fatalf("%s: selected %v, want %v", label, got.SelectedParams, want.SelectedParams)
	}
	for i := range want.SelectedParams {
		if got.SelectedParams[i] != want.SelectedParams[i] {
			t.Fatalf("%s: selected %v, want %v", label, got.SelectedParams, want.SelectedParams)
		}
	}
	if got.Cancelled {
		t.Fatalf("%s: resumed result marked cancelled", label)
	}
}

// resumeFromPrefix truncates the full journal to its first k committed
// evaluations (no snapshot file — the pure replay path), resumes, and
// checks the result against the uninterrupted baseline.
func sweepEveryK(t *testing.T, rs resumeSetup, data []byte, cuts []int64, baseline tuners.Result, stride int) {
	t.Helper()
	for k := 0; k < len(cuts); k += stride {
		path := filepath.Join(t.TempDir(), "resume.jnl")
		if err := os.WriteFile(path, data[:cuts[k]], 0o644); err != nil {
			t.Fatal(err)
		}
		jn, err := journal.Open(path, resumeMeta(rs.seed, rs.budget, rs.faultsName()), journal.SyncNone)
		if err != nil {
			t.Fatalf("k=%d: reopen: %v", k, err)
		}
		if got := jn.ReplayPending(); got != k {
			t.Fatalf("k=%d: %d records pending", k, got)
		}
		r := New(nil, rs.opts)
		res := r.Run(tuners.NewSession(rs.evaluator(), rs.space, tuners.Request{
			Budget:  rs.budget,
			Seed:    rs.seed,
			Retry:   tuners.RetryPolicy{MaxRetries: rs.retries},
			Journal: jn,
		}))
		if reason := jn.Diverged(); reason != "" {
			t.Fatalf("k=%d: replay diverged: %s", k, reason)
		}
		jn.Close()
		assertSameResult(t, "k="+itoa(k), res, baseline)
	}
}

func itoa(k int) string {
	if k == 0 {
		return "0"
	}
	var b []byte
	for k > 0 {
		b = append([]byte{byte('0' + k%10)}, b...)
		k /= 10
	}
	return string(b)
}

// TestResumeBitIdenticalEveryK is the headline durability guarantee:
// kill the campaign after any k committed evaluations, resume from the
// journal alone, and the final result is bit-identical to the
// uninterrupted run at the same seed.
func TestResumeBitIdenticalEveryK(t *testing.T) {
	rs := resumeSetup{opts: resumeOptions(), space: conf.SparkSpace(), budget: 14, seed: 11}
	baseline, _ := rs.run(t, "")
	if !baseline.Found {
		t.Fatal("baseline found nothing")
	}

	full := filepath.Join(t.TempDir(), "full.jnl")
	journaled, jn := rs.run(t, full)
	assertSameResult(t, "journaled-uninterrupted", journaled, baseline)
	if _, ok := jn.Done(); !ok {
		t.Fatal("finished journaled run left no done record")
	}

	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	cuts := evalFrameCuts(t, data)
	wantRecords := baseline.SelectionEvals + len(baseline.Trace) - baseline.Failures.Retries
	if len(cuts)-1 != wantRecords {
		t.Fatalf("journal holds %d eval records, want %d", len(cuts)-1, wantRecords)
	}
	sweepEveryK(t, rs, data, cuts, baseline, 1)
}

// TestResumeUnderFaults repeats the sweep on a faulty cluster with
// retries enabled: the journaled stream positions must carry the
// multi-attempt index consumption across the crash.
func TestResumeUnderFaults(t *testing.T) {
	rs := resumeSetup{opts: resumeOptions(), space: conf.SparkSpace(), faults: true, retries: 2, budget: 12, seed: 23}
	baseline, _ := rs.run(t, "")
	full := filepath.Join(t.TempDir(), "full.jnl")
	journaled, _ := rs.run(t, full)
	assertSameResult(t, "journaled-uninterrupted", journaled, baseline)
	if baseline.Failures.Transient == 0 {
		t.Fatal("fault plan injected no transients; sweep is not exercising retries")
	}

	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	sweepEveryK(t, rs, data, evalFrameCuts(t, data), baseline, 3)
}

// TestResumeParallelBatch repeats the sweep with concurrent selection
// evaluation, parallel BO rounds and tuner worker parallelism: a crash
// mid-batch replays the committed prefix and lands the live remainder
// on exactly the evaluation indices the original batch reserved.
func TestResumeParallelBatch(t *testing.T) {
	o := resumeOptions()
	o.Parallel = 4
	o.BOBatch = 3
	o.Workers = 4
	rs := resumeSetup{opts: o, space: conf.SparkSpace(), budget: 12, seed: 31}
	// Note: BOBatch rounds legitimately differ from the serial loop
	// (constant-liar lookahead trades per-step adaptivity), so the
	// sweep compares against the parallel pipeline's own baseline.
	baseline, _ := rs.run(t, "")
	if !baseline.Found {
		t.Fatal("parallel baseline found nothing")
	}

	full := filepath.Join(t.TempDir(), "full.jnl")
	journaled, _ := rs.run(t, full)
	assertSameResult(t, "journaled-uninterrupted", journaled, baseline)

	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	sweepEveryK(t, rs, data, evalFrameCuts(t, data), baseline, 2)
}

// countingEvaluator counts live objective calls; a resume of a
// completed journal must make none.
type countingEvaluator struct {
	*sparksim.Evaluator
	calls int
}

// EvaluateSpec keeps the call counter on the unified entry point the
// session actually routes through.
func (c *countingEvaluator) EvaluateSpec(cfg conf.Config, spec sparksim.EvalSpec) sparksim.EvalRecord {
	c.calls++
	return c.Evaluator.EvaluateSpec(cfg, spec)
}

// TestResumeCompletedJournal replays a finished session end-to-end:
// same result, zero new objective evaluations, and the snapshot
// fast-skip path (selection forest never re-trained) engaged.
func TestResumeCompletedJournal(t *testing.T) {
	rs := resumeSetup{opts: resumeOptions(), space: conf.SparkSpace(), budget: 10, seed: 41}
	full := filepath.Join(t.TempDir(), "full.jnl")
	baseline, _ := rs.run(t, full)
	if !baseline.Found {
		t.Fatal("baseline found nothing")
	}

	jn, err := journal.Open(full, resumeMeta(rs.seed, rs.budget, rs.faultsName()), journal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := jn.Snapshot(); !ok {
		t.Fatal("finished run left no snapshot")
	}
	ce := &countingEvaluator{Evaluator: rs.evaluator()}
	r := New(nil, rs.opts)
	res := r.Run(tuners.NewSession(ce, rs.space, tuners.Request{
		Budget: rs.budget, Seed: rs.seed, Journal: jn,
	}))
	jn.Close()
	assertSameResult(t, "completed-resume", res, baseline)
	if ce.calls != 0 {
		t.Fatalf("resuming a completed journal ran %d live evaluations", ce.calls)
	}
	// Fast-skip leaves no selection outcome to re-derive.
	if r.LastSelection != nil {
		t.Fatal("resume re-ran parameter selection despite the snapshot")
	}
}

// TestResumeAfterGracefulCancel interrupts a journaled session via its
// context (the SIGINT path) at several depths, then resumes with the
// snapshot the interrupted run left behind.
func TestResumeAfterGracefulCancel(t *testing.T) {
	rs := resumeSetup{opts: resumeOptions(), space: conf.SparkSpace(), budget: 12, seed: 53}
	baseline, _ := rs.run(t, "")
	for _, after := range []int{3, 9, 14, 16} {
		path := filepath.Join(t.TempDir(), "cancel.jnl")
		jn, err := journal.Open(path, resumeMeta(rs.seed, rs.budget, rs.faultsName()), journal.SyncNone)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		obj := &cancellingObjective{Evaluator: rs.evaluator(), after: after, cancel: cancel}
		r := New(nil, rs.opts)
		partial := r.Run(tuners.NewSession(obj, rs.space, tuners.Request{
			Ctx: ctx, Budget: rs.budget, Seed: rs.seed, Journal: jn,
		}))
		if !partial.Cancelled {
			t.Fatalf("after=%d: session was not cancelled", after)
		}
		if _, ok := jn.Done(); ok {
			t.Fatalf("after=%d: cancelled session wrote a done record", after)
		}
		jn.Close()
		cancel()

		jn2, err := journal.Open(path, resumeMeta(rs.seed, rs.budget, rs.faultsName()), journal.SyncNone)
		if err != nil {
			t.Fatalf("after=%d: reopen: %v", after, err)
		}
		r2 := New(nil, rs.opts)
		res := r2.Run(tuners.NewSession(rs.evaluator(), rs.space, tuners.Request{
			Budget: rs.budget, Seed: rs.seed, Journal: jn2,
		}))
		if reason := jn2.Diverged(); reason != "" {
			t.Fatalf("after=%d: replay diverged: %s", after, reason)
		}
		jn2.Close()
		assertSameResult(t, "cancel-after-"+itoa(after), res, baseline)
	}
}

// TestResumeDivergenceRecovers: resuming with different tuner options
// (not covered by the journal meta) must not replay a stale tail — the
// session detects the mismatch, truncates it, and finishes live.
func TestResumeDivergenceRecovers(t *testing.T) {
	rs := resumeSetup{opts: resumeOptions(), space: conf.SparkSpace(), budget: 10, seed: 61}
	full := filepath.Join(t.TempDir(), "full.jnl")
	rs.run(t, full)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	cuts := evalFrameCuts(t, data)
	path := filepath.Join(t.TempDir(), "diverge.jnl")
	if err := os.WriteFile(path, data[:cuts[5]], 0o644); err != nil {
		t.Fatal(err)
	}
	jn, err := journal.Open(path, resumeMeta(rs.seed, rs.budget, rs.faultsName()), journal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	altered := rs
	altered.opts.GenericSamples = 11 // different LHS design → different configs
	r := New(nil, altered.opts)
	res := r.Run(tuners.NewSession(rs.evaluator(), rs.space, tuners.Request{
		Budget: rs.budget, Seed: rs.seed, Journal: jn,
	}))
	if jn.Diverged() == "" {
		t.Fatal("differing options replayed without detecting divergence")
	}
	jn.Close()
	if !res.Found {
		t.Fatal("diverged session did not finish live")
	}
	// The stale tail is gone: a fresh open replays only what the live
	// session committed, and the next resume is clean.
	jn2, err := journal.Open(path, resumeMeta(rs.seed, rs.budget, rs.faultsName()), journal.SyncNone)
	if err != nil {
		t.Fatalf("reopen after divergence: %v", err)
	}
	defer jn2.Close()
	if jn2.ReplayPending() == 0 {
		t.Fatal("diverged session committed nothing")
	}
}
