package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/conf"
	"repro/internal/mapping"
	"repro/internal/memo"
	"repro/internal/sparksim"
	"repro/internal/tuners"
)

// fastOptions shrinks the expensive knobs so unit tests stay quick
// while exercising the full pipeline.
func fastOptions() Options {
	o := Options{}
	o = o.withDefaults()
	o.GenericSamples = 60
	o.Forest.Trees = 40
	o.PermuteRepeats = 3
	o.BO.CandidatePool = 64
	o.BO.Starts = 1
	o.BO.GP.Restarts = 1
	return o
}

func newEvaluator(w sparksim.Workload, seed uint64) *sparksim.Evaluator {
	return sparksim.NewEvaluator(sparksim.PaperCluster(), w, seed, 480)
}

func TestTuneEndToEnd(t *testing.T) {
	r := New(nil, fastOptions())
	ev := newEvaluator(sparksim.TeraSort(20), 1)
	res := r.Tune(ev, conf.SparkSpace(), 40, 1)

	if !res.Found {
		t.Fatal("ROBOTune found no completing configuration")
	}
	if res.BestSeconds > 300 {
		t.Errorf("best = %v, want well under the 480 cap", res.BestSeconds)
	}
	if res.Evals != 40 {
		t.Errorf("tuning evals = %d, want exactly the budget", res.Evals)
	}
	if res.SelectionEvals != 60 {
		t.Errorf("selection evals = %d, want 60 (cache miss)", res.SelectionEvals)
	}
	if res.SelectionCost <= 0 || res.SearchCost <= 0 {
		t.Errorf("costs: selection=%v search=%v", res.SelectionCost, res.SearchCost)
	}
	if len(res.SelectedParams) == 0 {
		t.Fatal("no parameters selected")
	}
	if len(res.Trace) != 40 {
		t.Errorf("trace length %d", len(res.Trace))
	}
}

func TestSelectionCacheHitSkipsSelection(t *testing.T) {
	r := New(nil, fastOptions())
	space := conf.SparkSpace()

	ev1 := newEvaluator(sparksim.PageRank(5), 2)
	res1 := r.Tune(ev1, space, 30, 2)
	if res1.SelectionEvals == 0 {
		t.Fatal("first session should run selection")
	}

	// Same workload family, different dataset: cache hit.
	ev2 := newEvaluator(sparksim.PageRank(10), 3)
	res2 := r.Tune(ev2, space, 30, 3)
	if res2.SelectionEvals != 0 || res2.SelectionCost != 0 {
		t.Errorf("repeat session ran selection: evals=%d cost=%v",
			res2.SelectionEvals, res2.SelectionCost)
	}
	// And the same parameters were reused.
	if len(res1.SelectedParams) != len(res2.SelectedParams) {
		t.Errorf("selection changed across sessions: %v vs %v",
			res1.SelectedParams, res2.SelectedParams)
	}
}

func TestSelectionFindsExecutorSizing(t *testing.T) {
	// Executor cores/memory dominate every workload in the simulator
	// (as in Figure 8); selection must find at least one of the
	// executor resource parameters.
	r := New(nil, fastOptions())
	ev := newEvaluator(sparksim.PageRank(5), 4)
	sel, err := r.SelectParameters(ev, conf.SparkSpace(), 80, 4)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range sel.Params {
		if p == conf.ExecutorCores || p == conf.ExecutorMemory || p == conf.ExecutorInstances {
			found = true
		}
	}
	if !found {
		t.Errorf("executor sizing not selected: %v", sel.Params)
	}
	if len(sel.Ranking) == 0 {
		t.Error("empty ranking")
	}
	// Ranking is sorted by importance.
	for i := 1; i < len(sel.Ranking); i++ {
		if sel.Ranking[i].Drop > sel.Ranking[i-1].Drop {
			t.Errorf("ranking not sorted at %d", i)
		}
	}
}

func TestMemoizationSeedsRepeatSessions(t *testing.T) {
	r := New(nil, fastOptions())
	space := conf.SparkSpace()

	ev1 := newEvaluator(sparksim.KMeans(200), 5)
	res1 := r.Tune(ev1, space, 40, 5)
	if !res1.Found {
		t.Fatal("session 1 failed")
	}
	// The buffer now holds configurations for KMeans.
	if got := r.Store().BestConfigs("KMeans", 4); len(got) == 0 {
		t.Fatal("memoization buffer empty after session")
	}

	// Second session on a different dataset: the memoized configs are
	// evaluated first, so an early observation should already be
	// competitive (§5.4: memoized sampling reaches ~10% of best fast).
	ev2 := newEvaluator(sparksim.KMeans(300), 6)
	res2 := r.Tune(ev2, space, 40, 6)
	if !res2.Found {
		t.Fatal("session 2 failed")
	}
	earlyBest := math.Inf(1)
	for _, v := range res2.Trace[:4] {
		if v < earlyBest {
			earlyBest = v
		}
	}
	if earlyBest > res2.BestSeconds*1.6 {
		t.Errorf("memoized warm start ineffective: early best %v vs final %v",
			earlyBest, res2.BestSeconds)
	}
}

func TestGuardCapsLongRuns(t *testing.T) {
	// With the guard on, no tuning-phase evaluation after the first
	// should run materially past GuardMultiple x the current median;
	// verify the total cost is lower than with the guard disabled.
	base := fastOptions()
	withGuard := New(nil, base)
	evA := newEvaluator(sparksim.KMeans(400), 7)
	resA := withGuard.Tune(evA, conf.SparkSpace(), 30, 7)

	noGuard := base
	noGuard.GuardMultiple = -1
	without := New(nil, noGuard)
	evB := newEvaluator(sparksim.KMeans(400), 7)
	resB := without.Tune(evB, conf.SparkSpace(), 30, 7)

	if !resA.Found || !resB.Found {
		t.Fatalf("found: guard=%v noguard=%v", resA.Found, resB.Found)
	}
	if resA.SearchCost >= resB.SearchCost*1.05 {
		t.Errorf("guarded cost %v should not exceed unguarded %v",
			resA.SearchCost, resB.SearchCost)
	}
}

func TestSelectFromDataValidation(t *testing.T) {
	r := New(nil, fastOptions())
	if _, err := r.SelectFromData(conf.SparkSpace(), nil, nil, 1); err == nil {
		t.Error("empty data accepted")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.GenericSamples != 100 || o.TuningSamples != 20 || o.MemoConfigs != 4 {
		t.Errorf("sampling defaults: %+v", o)
	}
	if o.ImportanceThreshold != 0.05 || o.PermuteRepeats != 10 {
		t.Errorf("selection defaults: %+v", o)
	}
	if o.GuardMultiple != 3 {
		t.Errorf("guard default: %v", o.GuardMultiple)
	}
}

func TestTunerInterfaceCompliance(t *testing.T) {
	var _ tuners.Tuner = New(nil, Options{})
}

func TestDeterministicTune(t *testing.T) {
	run := func() tuners.Result {
		r := New(nil, fastOptions())
		ev := newEvaluator(sparksim.TeraSort(20), 9)
		return r.Tune(ev, conf.SparkSpace(), 25, 9)
	}
	a, b := run(), run()
	if a.BestSeconds != b.BestSeconds || a.SearchCost != b.SearchCost {
		t.Errorf("same seeds, different results: %v/%v vs %v/%v",
			a.BestSeconds, a.SearchCost, b.BestSeconds, b.SearchCost)
	}
}

func TestInspectionHooksPopulated(t *testing.T) {
	r := New(nil, fastOptions())
	ev := newEvaluator(sparksim.TeraSort(20), 10)
	r.Tune(ev, conf.SparkSpace(), 25, 10)
	if r.LastEngine == nil || r.LastSubspace == nil {
		t.Fatal("inspection hooks not populated")
	}
	if r.LastEngine.N() != 25 {
		t.Errorf("engine holds %d observations, want 25", r.LastEngine.N())
	}
	if r.LastSubspace.Dim() < 2 {
		t.Errorf("subspace dim %d", r.LastSubspace.Dim())
	}
}

func TestMemoStorePersistenceAcrossInstances(t *testing.T) {
	store := memo.NewStore()
	r1 := New(store, fastOptions())
	ev := newEvaluator(sparksim.ConnectedComponents(5), 11)
	r1.Tune(ev, conf.SparkSpace(), 25, 11)

	// A new ROBOTune sharing the store inherits the caches.
	r2 := New(store, fastOptions())
	ev2 := newEvaluator(sparksim.ConnectedComponents(10), 12)
	res := r2.Tune(ev2, conf.SparkSpace(), 25, 12)
	if res.SelectionEvals != 0 {
		t.Error("shared store should give a selection cache hit")
	}
}

func TestTuneRespectsWallClockSanity(t *testing.T) {
	// Guard against pathological slowdowns in the BO stack: a small
	// session must finish quickly.
	start := time.Now()
	r := New(nil, fastOptions())
	ev := newEvaluator(sparksim.LogisticRegression(100), 13)
	r.Tune(ev, conf.SparkSpace(), 30, 13)
	if el := time.Since(start); el > 30*time.Second {
		t.Errorf("tiny session took %v", el)
	}
}

func TestEarlyStoppingSavesBudget(t *testing.T) {
	opts := fastOptions()
	opts.EarlyStopPatience = 8
	r := New(nil, opts)
	ev := newEvaluator(sparksim.TeraSort(20), 15)
	res := r.Tune(ev, conf.SparkSpace(), 100, 15)
	if !res.Found {
		t.Fatal("nothing found")
	}
	if res.Evals >= 100 {
		t.Errorf("early stopping never fired: %d evals", res.Evals)
	}
	// The full run with the same seed finds at most marginally better.
	full := New(nil, fastOptions())
	evFull := newEvaluator(sparksim.TeraSort(20), 15)
	resFull := full.Tune(evFull, conf.SparkSpace(), 100, 15)
	if res.BestSeconds > resFull.BestSeconds*1.25 {
		t.Errorf("early-stopped best %v much worse than full-budget %v",
			res.BestSeconds, resFull.BestSeconds)
	}
}

func TestEarlyStoppingDisabledByDefault(t *testing.T) {
	o := Options{}.withDefaults()
	if o.EarlyStopPatience != 0 {
		t.Errorf("early stopping should default off (paper runs full budgets), got %d", o.EarlyStopPatience)
	}
	o2 := Options{EarlyStopPatience: 5}.withDefaults()
	if o2.EarlyStopEpsilon != 0.01 {
		t.Errorf("epsilon default = %v", o2.EarlyStopEpsilon)
	}
}

func TestWorkloadMappingInheritsSelection(t *testing.T) {
	opts := fastOptions()
	opts.Mapper = mapping.NewMapper(conf.SparkSpace(), 8, 99)
	opts.MapThreshold = 0.9
	r := New(nil, opts)
	space := conf.SparkSpace()

	// Tune PageRank: full selection runs, signature gets registered.
	ev1 := newEvaluator(sparksim.PageRank(5), 21)
	res1 := r.Tune(ev1, space, 25, 21)
	if res1.SelectionEvals <= opts.Mapper.ProbeCount() {
		t.Fatalf("first session should probe AND select, spent %d", res1.SelectionEvals)
	}

	// A renamed PageRank (fresh cache key) should map to PageRank and
	// inherit its selection after only the probe evaluations.
	w := sparksim.PageRank(7.5)
	w.Name = "WebGraphRank"
	ev2 := newEvaluator(w, 22)
	res2 := r.Tune(ev2, space, 25, 22)
	if res2.SelectionEvals != opts.Mapper.ProbeCount() {
		t.Errorf("mapped session spent %d selection evals, want just the %d probes",
			res2.SelectionEvals, opts.Mapper.ProbeCount())
	}
	if len(res2.SelectedParams) != len(res1.SelectedParams) {
		t.Errorf("mapped selection %v differs from source %v",
			res2.SelectedParams, res1.SelectedParams)
	}
	// The adopted selection is now cached under the new family name.
	if _, hit := r.Store().Selection("WebGraphRank"); !hit {
		t.Error("mapped selection not cached for the new family")
	}
}

func TestWorkloadMappingFallsBackBelowThreshold(t *testing.T) {
	opts := fastOptions()
	opts.Mapper = mapping.NewMapper(conf.SparkSpace(), 8, 99)
	opts.MapThreshold = 0.999999 // nothing is this similar
	r := New(nil, opts)
	space := conf.SparkSpace()

	ev1 := newEvaluator(sparksim.PageRank(5), 23)
	r.Tune(ev1, space, 25, 23)

	w := sparksim.KMeans(200)
	ev2 := newEvaluator(w, 24)
	res := r.Tune(ev2, space, 25, 24)
	// Probes + full selection: mapping tried but did not match.
	want := opts.Mapper.ProbeCount() + opts.GenericSamples
	if res.SelectionEvals != want {
		t.Errorf("selection evals = %d, want %d (probes + full selection)",
			res.SelectionEvals, want)
	}
}

func TestParallelSelectionMatchesSequential(t *testing.T) {
	space := conf.SparkSpace()
	seqOpts := fastOptions()
	parOpts := fastOptions()
	parOpts.Parallel = 8

	seq := New(nil, seqOpts)
	evA := newEvaluator(sparksim.TeraSort(20), 33)
	selSeq, err := seq.SelectParameters(evA, space, 60, 33)
	if err != nil {
		t.Fatal(err)
	}
	par := New(nil, parOpts)
	evB := newEvaluator(sparksim.TeraSort(20), 33)
	selPar, err := par.SelectParameters(evB, space, 60, 33)
	if err != nil {
		t.Fatal(err)
	}
	if len(selSeq.Params) != len(selPar.Params) {
		t.Fatalf("parallel selection differs: %v vs %v", selPar.Params, selSeq.Params)
	}
	for i := range selSeq.Params {
		if selSeq.Params[i] != selPar.Params[i] {
			t.Fatalf("parallel selection differs at %d: %v vs %v", i, selPar.Params, selSeq.Params)
		}
	}
	if evA.SearchCost() != evB.SearchCost() {
		t.Errorf("costs differ: %v vs %v", evA.SearchCost(), evB.SearchCost())
	}
}

func TestExplain(t *testing.T) {
	r := New(nil, fastOptions())
	space := conf.SparkSpace()
	ev := newEvaluator(sparksim.TeraSort(20), 61)
	res := r.Tune(ev, space, 25, 61)
	out := r.Explain(space, res)
	for _, want := range []string{"parameter selection", "acquisition portfolio", "default"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
	// A cache-hit session explains the hit.
	ev2 := newEvaluator(sparksim.TeraSort(30), 62)
	res2 := r.Tune(ev2, space, 25, 62)
	_ = res2
	r.LastSelection = nil // simulate hit path (selection was cached)
	out2 := r.Explain(space, res2)
	if !strings.Contains(out2, "cache hit") {
		t.Errorf("cache-hit explanation missing:\n%s", out2)
	}
}

func TestBOBatchRounds(t *testing.T) {
	opts := fastOptions()
	opts.BOBatch = 4
	r := New(nil, opts)
	ev := newEvaluator(sparksim.TeraSort(20), 81)
	res := r.Tune(ev, conf.SparkSpace(), 40, 81)
	if !res.Found {
		t.Fatal("batched BO found nothing")
	}
	if res.Evals != 40 {
		t.Errorf("evals = %d, want exactly the budget", res.Evals)
	}
	// Quality stays in the same league as sequential BO.
	seq := New(nil, fastOptions())
	evSeq := newEvaluator(sparksim.TeraSort(20), 81)
	resSeq := seq.Tune(evSeq, conf.SparkSpace(), 40, 81)
	if res.BestSeconds > resSeq.BestSeconds*1.4 {
		t.Errorf("batched best %v much worse than sequential %v",
			res.BestSeconds, resSeq.BestSeconds)
	}
}
