// Package linmodel implements the regularized linear regressors
// (Lasso and ElasticNet, via cyclic coordinate descent on
// standardized features) that Figure 2 of the paper compares against
// the tree-based models for parameter-importance estimation — and
// finds wanting on small samples and non-linear responses.
package linmodel

import (
	"fmt"
	"math"
)

// Config controls model fitting. The objective follows scikit-learn:
//
//	(1/2n)·‖y − Xβ‖² + Alpha·L1Ratio·‖β‖₁ + ½·Alpha·(1−L1Ratio)·‖β‖²
//
// L1Ratio = 1 is the Lasso; 0 < L1Ratio < 1 is the ElasticNet.
type Config struct {
	Alpha   float64 // overall regularization strength (default 0.1)
	L1Ratio float64 // L1/L2 mix (default 1: Lasso)
	MaxIter int     // coordinate-descent sweeps (default 1000)
	Tol     float64 // convergence tolerance on max coef change (default 1e-6)
}

func (c Config) withDefaults() Config {
	if c.Alpha <= 0 {
		c.Alpha = 0.1
	}
	if c.L1Ratio <= 0 || c.L1Ratio > 1 {
		c.L1Ratio = 1
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 1000
	}
	if c.Tol <= 0 {
		c.Tol = 1e-6
	}
	return c
}

// LassoDefaults returns the Lasso configuration used in the Figure 2
// comparison.
func LassoDefaults() Config { return Config{Alpha: 0.1, L1Ratio: 1} }

// ElasticNetDefaults returns the ElasticNet configuration used in the
// Figure 2 comparison.
func ElasticNetDefaults() Config { return Config{Alpha: 0.1, L1Ratio: 0.5} }

// Model is a fitted linear regressor in the original feature scale.
type Model struct {
	// Coef holds the coefficients on standardized features.
	Coef []float64
	// Intercept completes predictions on standardized features.
	Intercept float64
	// feature standardization recorded at fit time
	mean, scale []float64
	cfg         Config
	iters       int
}

// Fit trains the model on x (rows = samples) and y by cyclic
// coordinate descent. It panics on bad shapes.
func Fit(x [][]float64, y []float64, cfg Config) *Model {
	n := len(x)
	if n == 0 || n != len(y) {
		panic(fmt.Sprintf("linmodel: bad training shape: %d samples, %d targets", n, len(y)))
	}
	d := len(x[0])
	cfg = cfg.withDefaults()

	// Standardize columns; constant columns get scale 1 (their
	// coefficient will stay 0).
	mean := make([]float64, d)
	scale := make([]float64, d)
	for j := 0; j < d; j++ {
		var s float64
		for i := 0; i < n; i++ {
			s += x[i][j]
		}
		mean[j] = s / float64(n)
		var ss float64
		for i := 0; i < n; i++ {
			dv := x[i][j] - mean[j]
			ss += dv * dv
		}
		scale[j] = math.Sqrt(ss / float64(n))
		if scale[j] == 0 {
			scale[j] = 1
		}
	}
	xs := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for j := 0; j < d; j++ {
			row[j] = (x[i][j] - mean[j]) / scale[j]
		}
		xs[i] = row
	}
	var ymean float64
	for _, v := range y {
		ymean += v
	}
	ymean /= float64(n)
	yc := make([]float64, n)
	for i, v := range y {
		yc[i] = v - ymean
	}

	// Precompute column squared norms (z_j = Σ x_ij² / n = 1 after
	// standardization, but compute exactly to be safe).
	z := make([]float64, d)
	for j := 0; j < d; j++ {
		var s float64
		for i := 0; i < n; i++ {
			s += xs[i][j] * xs[i][j]
		}
		z[j] = s / float64(n)
	}

	beta := make([]float64, d)
	resid := append([]float64(nil), yc...) // resid = yc - Xβ
	l1 := cfg.Alpha * cfg.L1Ratio
	l2 := cfg.Alpha * (1 - cfg.L1Ratio)
	iters := 0
	for it := 0; it < cfg.MaxIter; it++ {
		iters++
		maxDelta := 0.0
		for j := 0; j < d; j++ {
			if z[j] == 0 {
				continue
			}
			// rho_j = (1/n) Σ x_ij (resid_i + x_ij β_j)
			var rho float64
			for i := 0; i < n; i++ {
				rho += xs[i][j] * resid[i]
			}
			rho = rho/float64(n) + z[j]*beta[j]
			newB := softThreshold(rho, l1) / (z[j] + l2)
			if delta := newB - beta[j]; delta != 0 {
				for i := 0; i < n; i++ {
					resid[i] -= delta * xs[i][j]
				}
				if ad := math.Abs(delta); ad > maxDelta {
					maxDelta = ad
				}
				beta[j] = newB
			}
		}
		if maxDelta < cfg.Tol {
			break
		}
	}
	return &Model{Coef: beta, Intercept: ymean, mean: mean, scale: scale, cfg: cfg, iters: iters}
}

func softThreshold(v, t float64) float64 {
	switch {
	case v > t:
		return v - t
	case v < -t:
		return v + t
	default:
		return 0
	}
}

// Predict returns the model's prediction for one feature vector in
// the original (unstandardized) scale.
func (m *Model) Predict(xr []float64) float64 {
	if len(xr) != len(m.Coef) {
		panic(fmt.Sprintf("linmodel: predict dim %d, model has %d", len(xr), len(m.Coef)))
	}
	s := m.Intercept
	for j, b := range m.Coef {
		if b != 0 {
			s += b * (xr[j] - m.mean[j]) / m.scale[j]
		}
	}
	return s
}

// PredictAll returns predictions for a batch of feature vectors.
func (m *Model) PredictAll(xs [][]float64) []float64 {
	out := make([]float64, len(xs))
	for i, xr := range xs {
		out[i] = m.Predict(xr)
	}
	return out
}

// NonZero returns the count of active (non-zero) coefficients.
func (m *Model) NonZero() int {
	c := 0
	for _, b := range m.Coef {
		if b != 0 {
			c++
		}
	}
	return c
}

// Iters returns the number of coordinate-descent sweeps performed.
func (m *Model) Iters() int { return m.iters }
