package linmodel

import (
	"math"
	"testing"

	"repro/internal/sample"
	"repro/internal/stats"
)

// linearData generates y = 3 x0 - 2 x1 + 1 + noise with d-2 inert
// features.
func linearData(n, d int, seed uint64, noise float64) ([][]float64, []float64) {
	rng := sample.NewRNG(seed)
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64() * 2
		}
		x[i] = row
		y[i] = 3*row[0] - 2*row[1] + 1 + noise*rng.NormFloat64()
	}
	return x, y
}

func TestLassoRecoversLinearSignal(t *testing.T) {
	x, y := linearData(200, 6, 1, 0.05)
	m := Fit(x, y, Config{Alpha: 0.01, L1Ratio: 1})
	pred := m.PredictAll(x)
	if r2 := stats.R2(y, pred); r2 < 0.97 {
		t.Errorf("Lasso R2 = %v on near-noiseless linear data", r2)
	}
}

func TestLassoSparsity(t *testing.T) {
	// With strong regularization only the true signals survive.
	x, y := linearData(200, 10, 2, 0.1)
	m := Fit(x, y, Config{Alpha: 0.2, L1Ratio: 1})
	if nz := m.NonZero(); nz > 4 {
		t.Errorf("Lasso kept %d coefficients, want sparse (<=4)", nz)
	}
	// The two signal coefficients must be among the survivors.
	if m.Coef[0] == 0 || m.Coef[1] == 0 {
		t.Errorf("Lasso dropped signal features: coefs %v", m.Coef[:3])
	}
}

func TestStrongAlphaZeroesEverything(t *testing.T) {
	x, y := linearData(100, 5, 3, 0.1)
	m := Fit(x, y, Config{Alpha: 1e6, L1Ratio: 1})
	if m.NonZero() != 0 {
		t.Errorf("alpha=1e6 should zero all coefficients, kept %d", m.NonZero())
	}
	// Predictions fall back to the mean.
	want := stats.Mean(y)
	if got := m.Predict(x[0]); math.Abs(got-want) > 1e-9 {
		t.Errorf("all-zero model predicts %v, want mean %v", got, want)
	}
}

func TestElasticNetHandlesCollinearity(t *testing.T) {
	// Two identical columns: Lasso picks one arbitrarily; ElasticNet
	// spreads weight across both. Both should predict well.
	rng := sample.NewRNG(4)
	n := 150
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := rng.Float64()
		x[i] = []float64{v, v, rng.Float64()}
		y[i] = 4*v + 0.05*rng.NormFloat64()
	}
	en := Fit(x, y, Config{Alpha: 0.05, L1Ratio: 0.5})
	if r2 := stats.R2(y, en.PredictAll(x)); r2 < 0.95 {
		t.Errorf("ElasticNet R2 = %v on collinear data", r2)
	}
	// ElasticNet's grouping effect: both twins get similar weight.
	a, b := en.Coef[0], en.Coef[1]
	if a == 0 || b == 0 {
		t.Errorf("ElasticNet should keep both collinear twins, coefs %v %v", a, b)
	}
	if math.Abs(a-b) > 0.2*math.Abs(a+b) {
		t.Errorf("ElasticNet twins should have similar weights: %v vs %v", a, b)
	}
}

func TestLinearModelsFailOnNonlinearResponse(t *testing.T) {
	// The Figure 2 premise: linear models cannot explain a strongly
	// nonlinear configuration-performance response.
	rng := sample.NewRNG(5)
	n := 200
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := rng.Float64()
		x[i] = []float64{v, rng.Float64()}
		// Non-monotone, mean-zero-slope response.
		y[i] = math.Cos(2*math.Pi*v) * 5
	}
	m := Fit(x, y, Config{Alpha: 0.01, L1Ratio: 1})
	if r2 := stats.R2(y, m.PredictAll(x)); r2 > 0.3 {
		t.Errorf("Lasso R2 = %v on cosine response, expected poor fit", r2)
	}
}

func TestFitDeterministic(t *testing.T) {
	x, y := linearData(100, 5, 6, 0.1)
	a := Fit(x, y, LassoDefaults())
	b := Fit(x, y, LassoDefaults())
	for j := range a.Coef {
		if a.Coef[j] != b.Coef[j] {
			t.Fatal("coordinate descent is not deterministic")
		}
	}
}

func TestConstantColumnIsIgnoredSafely(t *testing.T) {
	x, y := linearData(80, 3, 7, 0.1)
	for i := range x {
		x[i][2] = 5 // constant
	}
	m := Fit(x, y, Config{Alpha: 0.01, L1Ratio: 1})
	if m.Coef[2] != 0 {
		t.Errorf("constant column got coefficient %v", m.Coef[2])
	}
	if r2 := stats.R2(y, m.PredictAll(x)); r2 < 0.9 {
		t.Errorf("R2 = %v with constant column present", r2)
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Alpha != 0.1 || cfg.L1Ratio != 1 || cfg.MaxIter != 1000 || cfg.Tol != 1e-6 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestFitPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched shapes should panic")
		}
	}()
	Fit([][]float64{{1, 2}}, []float64{1, 2}, LassoDefaults())
}

func TestPredictPanicsOnBadDim(t *testing.T) {
	x, y := linearData(30, 3, 8, 0.1)
	m := Fit(x, y, LassoDefaults())
	defer func() {
		if recover() == nil {
			t.Error("wrong-dim Predict should panic")
		}
	}()
	m.Predict([]float64{1})
}

func TestConvergenceReported(t *testing.T) {
	x, y := linearData(100, 5, 9, 0.1)
	m := Fit(x, y, Config{Alpha: 0.01, L1Ratio: 1, MaxIter: 500})
	if m.Iters() < 1 || m.Iters() > 500 {
		t.Errorf("iters = %d", m.Iters())
	}
}
