package bo_test

import (
	"fmt"

	"repro/internal/bo"
	"repro/internal/sample"
)

// The engine implements Algorithm 1: seed it with initial
// observations, then loop Suggest → evaluate → Tell.
func ExampleEngine() {
	f := func(x []float64) float64 {
		return (x[0]-0.7)*(x[0]-0.7) + (x[1]-0.3)*(x[1]-0.3)
	}
	cfg := bo.DefaultConfig()
	cfg.Seed = 1
	engine := bo.New(2, cfg)
	for _, u := range sample.LHS(8, 2, sample.NewRNG(1)) {
		engine.Tell(u, f(u))
	}
	for i := 0; i < 15; i++ {
		x, err := engine.Suggest()
		if err != nil {
			panic(err)
		}
		engine.Tell(x, f(x))
	}
	_, best, _ := engine.Best()
	fmt.Println("found the optimum region:", best < 0.01)
	fmt.Println("portfolio:", engine.PortfolioNames())
	// Output:
	// found the optimum region: true
	// portfolio: [PI EI LCB]
}
