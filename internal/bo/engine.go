package bo

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/gp"
	"repro/internal/optimize"
	"repro/internal/sample"
)

// predictScratch pools posterior-evaluation buffers: the acquisition
// multistart calls the GP posterior thousands of times per Suggest
// from several goroutines, and a pooled scratch makes those calls
// allocation-free without coupling the engine to the worker count.
var predictScratch = sync.Pool{New: func() any { return new(gp.PredictScratch) }}

// Config controls the BO engine.
type Config struct {
	// Portfolio lists the acquisition functions in the Hedge
	// portfolio. Empty selects DefaultPortfolio. A single entry
	// disables hedging (used by the hedge-vs-single ablation).
	Portfolio []Acquisition
	// Eta is the Hedge learning rate for the softmax over gains.
	Eta float64
	// GP configures the surrogate fit.
	GP gp.Config
	// CandidatePool is the size of the LHS pool scored to seed the
	// local optimizer (default 256).
	CandidatePool int
	// Starts is the number of L-BFGS-B starts per acquisition
	// (default 3, plus the top pool candidates).
	Starts int
	// Seed makes the engine deterministic.
	Seed uint64
	// Workers runs the acquisition multistart (and the GP
	// hyperparameter refit) on this many goroutines (<= 0 selects
	// GOMAXPROCS). Suggestions are bit-identical for any worker count.
	Workers int
	// DisableIncremental forces a full surrogate refit on every
	// Suggest instead of extending the cached Cholesky factor between
	// hyperparameter refits. Results are identical either way; this
	// exists for parity testing and ablation.
	DisableIncremental bool
	// Sparse gates the GP's local-subset approximation: past
	// SparseThreshold observations the surrogate is fitted exactly on
	// the observations nearest the incumbent plus a uniform reservoir
	// of the rest, bounding per-iteration cost by the subset size.
	// Off by default — the exact surrogate is used at every size.
	Sparse bool
	// SparseThreshold is the observation count past which the sparse
	// path engages (default 512; only meaningful with Sparse set).
	SparseThreshold int
	// CostAware divides positive acquisition scores by the predicted
	// evaluation cost (a k-nearest-neighbor model over the costs fed
	// via ObserveCost), implementing EI-per-second: among equally
	// promising points, prefer the cheaper one. Without cost
	// observations the engine behaves exactly as with CostAware off.
	CostAware bool
	// RefitBudget, when > 0, replaces the fixed every-5-observations
	// hyperparameter-refit cadence with a cost-budgeted one: the
	// hyperparameters are refit only while cumulative refit time stays
	// at or below RefitBudget as a fraction of the engine's wall clock
	// (e.g. 0.2 = spend at most ~20% of elapsed time refitting);
	// otherwise the cached Cholesky factor is extended at the last
	// fitted hyperparameters. 0 keeps the fixed cadence, bit-identical
	// to the pre-budget engine. Budgeted cadence makes decisions from
	// the wall clock, so exact journal-replay bit-reproducibility is
	// traded for bounded surrogate overhead.
	RefitBudget float64
	// Now overrides the clock used for refit budgeting (tests inject a
	// fake clock). nil = time.Now.
	Now func() time.Time
}

// DefaultConfig returns the engine configuration used by ROBOTune.
func DefaultConfig() Config {
	return Config{
		Portfolio:     DefaultPortfolio(),
		Eta:           1.0,
		GP:            gp.DefaultConfig(),
		CandidatePool: 256,
		Starts:        3,
	}
}

// Engine runs Algorithm 1: it accumulates (x, y) observations in the
// unit hypercube, fits a GP, and proposes the next point via the
// GP-Hedge portfolio.
type Engine struct {
	dim int
	cfg Config
	rng *rand.Rand
	x   [][]float64
	y   []float64
	// cens flags observations told via TellCensored: failed or
	// guard-killed runs whose y is a floor, not a measurement.
	cens []bool
	g    *gp.GP
	// gN is the observation count e.g was fitted on; e.g is stale (and
	// eligible for incremental extension) when gN < len(x).
	gN   int
	gain []float64
	// Hyperparameter refits are expensive (multistart Nelder-Mead
	// over the marginal likelihood); the engine refits every
	// hyperRefitEvery observations and reuses the last fitted
	// hyperparameters in between.
	lastHyper   gp.Params
	hyperFitAtN int
	// nominees holds each acquisition's last proposal, pending its
	// Hedge reward once the GP is refit with the new observation.
	nominees [][]float64
	// chosen is the index of the portfolio member whose proposal was
	// returned by the last Suggest.
	chosen int
	// costX/costY hold the cost model's observations (unit-cube point,
	// evaluation cost in seconds), fed via ObserveCost and consulted by
	// Suggest when CostAware is set.
	costX [][]float64
	costY []float64
	// jitterRetries accumulates, across all surrogate fits this
	// session, how many escalating-jitter retries the Cholesky
	// factorizations needed. A non-zero value flags a numerically
	// delicate kernel matrix; Explain surfaces it.
	jitterRetries int
	// Refit-cadence bookkeeping: now is the (injectable) clock, start
	// anchors the engine's wall clock, refitSeconds accumulates time
	// spent in hyperparameter refits, and the counters record which
	// path each Surrogate call took.
	now             func() time.Time
	start           time.Time
	refitSeconds    float64
	hyperRefits     int
	posteriorRefits int
	extends         int
}

// New builds an engine over the unit hypercube of the given
// dimension.
func New(dim int, cfg Config) *Engine {
	if dim < 1 {
		panic("bo: dimension must be >= 1")
	}
	if len(cfg.Portfolio) == 0 {
		cfg.Portfolio = DefaultPortfolio()
	}
	if cfg.Eta <= 0 {
		cfg.Eta = 1.0
	}
	if cfg.CandidatePool <= 0 {
		cfg.CandidatePool = 256
	}
	if cfg.Starts <= 0 {
		cfg.Starts = 3
	}
	cfg.GP.Seed = cfg.Seed
	if cfg.GP.Workers == 0 {
		cfg.GP.Workers = cfg.Workers
	}
	if cfg.Sparse {
		if cfg.SparseThreshold <= 0 {
			cfg.SparseThreshold = DefaultSparseThreshold
		}
		cfg.GP.SparseThreshold = cfg.SparseThreshold
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Engine{
		dim:   dim,
		cfg:   cfg,
		rng:   sample.NewRNG(cfg.Seed ^ 0xb0b0b0b0),
		gain:  make([]float64, len(cfg.Portfolio)),
		now:   now,
		start: now(),
	}
}

// DefaultSparseThreshold is the observation count past which
// Config.Sparse switches the surrogate to the local-subset path when
// no explicit threshold is configured.
const DefaultSparseThreshold = 512

// Tell adds an observation. x must be in the unit cube of the
// engine's dimension. Non-finite observations are rejected: a single
// NaN poisons every downstream Cholesky solve, so it is cheaper to
// refuse it here with a clear error than to diagnose a corrupted
// surrogate later.
func (e *Engine) Tell(x []float64, y float64) error {
	if len(x) != e.dim {
		panic(fmt.Sprintf("bo: Tell dim %d, engine dim %d", len(x), e.dim))
	}
	if math.IsNaN(y) || math.IsInf(y, 0) {
		return fmt.Errorf("bo: Tell rejects non-finite observation y = %v", y)
	}
	for j, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("bo: Tell rejects non-finite coordinate x[%d] = %v", j, v)
		}
	}
	e.x = append(e.x, append([]float64(nil), x...))
	e.y = append(e.y, y)
	e.cens = append(e.cens, false)
	// The surrogate is now stale (gN < len(x)) but deliberately kept:
	// between hyperparameter refits Surrogate extends its cached
	// Cholesky factor in O(n²) instead of refitting in O(n³).
	return nil
}

// TellCensored adds a failed or guard-killed observation: y is only a
// lower bound on the true objective ("at least this bad"), not a
// measurement. The engine floors it at the worst value observed so
// far, so a failure can never look better to the surrogate than any
// real measurement, and flags the point as censored. The adjusted
// observation stays append-only, which keeps the incremental Cholesky
// extension between hyperparameter refits valid.
func (e *Engine) TellCensored(x []float64, y float64) error {
	if math.IsNaN(y) || math.IsInf(y, 0) {
		// Validate before flooring: a non-finite bound is garbage input,
		// not a legitimate "at least this bad" observation, and flooring
		// first would silently launder it into a finite value.
		return fmt.Errorf("bo: TellCensored rejects non-finite bound y = %v", y)
	}
	for _, v := range e.y {
		if v > y {
			y = v
		}
	}
	if err := e.Tell(x, y); err != nil {
		return err
	}
	e.cens[len(e.cens)-1] = true
	return nil
}

// Censored returns how many observations were told as censored.
func (e *Engine) Censored() int {
	n := 0
	for _, c := range e.cens {
		if c {
			n++
		}
	}
	return n
}

// ObserveCost feeds the cost model one (point, evaluation cost)
// pair. Costs are what the evaluation *spent* (full-fidelity-
// equivalent seconds for multi-fidelity tuners), independent of the
// objective value; non-finite or non-positive costs are ignored. The
// model only influences Suggest when Config.CostAware is set.
func (e *Engine) ObserveCost(x []float64, cost float64) {
	if len(x) != e.dim {
		panic(fmt.Sprintf("bo: ObserveCost dim %d, engine dim %d", len(x), e.dim))
	}
	if math.IsNaN(cost) || math.IsInf(cost, 0) || cost <= 0 {
		return
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return
		}
	}
	e.costX = append(e.costX, append([]float64(nil), x...))
	e.costY = append(e.costY, cost)
}

// CostObservations returns how many points the cost model holds.
func (e *Engine) CostObservations() int { return len(e.costX) }

// predictCost estimates the evaluation cost at x as the mean cost of
// the k=3 nearest observed points (squared Euclidean distance in the
// unit cube), floored well above zero so a cost division can never
// blow an acquisition score up to infinity. Read-only: safe to call
// concurrently from the acquisition multistart.
func (e *Engine) predictCost(x []float64) float64 {
	const k = 3
	var dist [k]float64
	var cost [k]float64
	n := 0
	for i, xi := range e.costX {
		d := 0.0
		for j, v := range xi {
			dv := v - x[j]
			d += dv * dv
		}
		if n < k {
			dist[n], cost[n] = d, e.costY[i]
			n++
			continue
		}
		// Replace the farthest of the current k if this one is nearer.
		far := 0
		for m := 1; m < k; m++ {
			if dist[m] > dist[far] {
				far = m
			}
		}
		if d < dist[far] {
			dist[far], cost[far] = d, e.costY[i]
		}
	}
	if n == 0 {
		return 1
	}
	sum := 0.0
	for m := 0; m < n; m++ {
		sum += cost[m]
	}
	mean := sum / float64(n)
	if mean < 1e-6 {
		mean = 1e-6
	}
	return mean
}

// N returns the number of observations.
func (e *Engine) N() int { return len(e.x) }

// Best returns the incumbent: the observed point with minimal y.
func (e *Engine) Best() (x []float64, y float64, ok bool) {
	if len(e.x) == 0 {
		return nil, 0, false
	}
	bi := 0
	for i := 1; i < len(e.y); i++ {
		if e.y[i] < e.y[bi] {
			bi = i
		}
	}
	return append([]float64(nil), e.x[bi]...), e.y[bi], true
}

// Gains returns a copy of the Hedge cumulative gains, one per
// portfolio member.
func (e *Engine) Gains() []float64 { return append([]float64(nil), e.gain...) }

// Probabilities returns the current Hedge selection distribution.
func (e *Engine) Probabilities() []float64 {
	p := make([]float64, len(e.gain))
	softmax(e.gain, e.cfg.Eta, p)
	return p
}

// Surrogate returns the current fitted GP, fitting it first if
// observations changed. It returns an error with fewer than two
// observations or on factorization failure.
func (e *Engine) Surrogate() (*gp.GP, error) {
	if len(e.x) < 2 {
		return nil, fmt.Errorf("bo: need >= 2 observations, have %d", len(e.x))
	}
	if e.g != nil && e.gN == len(e.x) {
		return e.g, nil
	}
	const hyperRefitEvery = 5
	cfg := e.cfg.GP
	reuseHyper := false
	if e.hyperFitAtN > 0 {
		if e.cfg.RefitBudget > 0 {
			// Budgeted cadence: refit only while observed refit time
			// stays at or below the target share of wall clock.
			elapsed := e.now().Sub(e.start).Seconds()
			reuseHyper = e.refitSeconds > e.cfg.RefitBudget*elapsed
		} else {
			// Fixed cadence (the pre-budget behavior): refit every
			// hyperRefitEvery observations.
			reuseHyper = len(e.x)-e.hyperFitAtN < hyperRefitEvery
		}
	}
	if reuseHyper {
		// Reuse the last fitted hyperparameters; only the posterior
		// (Cholesky + weights) changes for the new data.
		cfg.FitHyper = false
		cfg.Init = e.lastHyper
		if !e.cfg.DisableIncremental && e.g != nil && e.gN < len(e.x) &&
			e.g.Params().Equal(e.lastHyper) {
			// Extend the cached factor by the new observations in
			// O(n²) per point; the result is identical to a full
			// refit at the same hyperparameters. Extend falls back
			// to a full factorization internally if the appended
			// pivot goes non-positive, so an error here means the
			// data itself is degenerate — surface it via the full
			// fit below for a consistent error path.
			if g, err := e.g.Extend(e.x, e.y); err == nil {
				e.g = g
				e.gN = len(e.x)
				e.jitterRetries += g.JitterRetries()
				e.extends++
				return g, nil
			}
		}
	}
	t0 := e.now()
	g, err := gp.Fit(e.x, e.y, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.FitHyper {
		// Only hyperparameter searches count against the refit
		// budget; posterior-only refits are part of the floor cost.
		e.refitSeconds += e.now().Sub(t0).Seconds()
		e.hyperRefits++
		e.lastHyper = g.Params()
		e.hyperFitAtN = len(e.x)
	} else {
		e.posteriorRefits++
	}
	e.g = g
	e.gN = len(e.x)
	e.jitterRetries += g.JitterRetries()
	return g, nil
}

// RefitStats describes how the engine has been spending its surrogate
// budget: which of the three fit paths (hyperparameter refit,
// posterior-only refit, incremental extension) each Surrogate call
// took, the cumulative hyper-refit time against the wall clock, and
// whether the sparse path is active. Explain and the server's /metrics
// endpoint surface it.
type RefitStats struct {
	HyperRefits     int     `json:"hyper_refits"`
	PosteriorRefits int     `json:"posterior_refits"`
	Extends         int     `json:"extends"`
	RefitSeconds    float64 `json:"refit_seconds"`
	ElapsedSeconds  float64 `json:"elapsed_seconds"`
	RefitBudget     float64 `json:"refit_budget,omitempty"`
	Sparse          bool    `json:"sparse,omitempty"`
	ActiveSize      int     `json:"active_size,omitempty"`
	Observations    int     `json:"observations"`
}

// RefitStats returns the engine's surrogate-cadence accounting.
func (e *Engine) RefitStats() RefitStats {
	st := RefitStats{
		HyperRefits:     e.hyperRefits,
		PosteriorRefits: e.posteriorRefits,
		Extends:         e.extends,
		RefitSeconds:    e.refitSeconds,
		ElapsedSeconds:  e.now().Sub(e.start).Seconds(),
		RefitBudget:     e.cfg.RefitBudget,
		Observations:    len(e.x),
	}
	if e.g != nil {
		st.Sparse = e.g.Sparse()
		st.ActiveSize = e.g.ActiveSize()
	}
	return st
}

// JitterRetries reports the cumulative number of escalating-jitter
// Cholesky retries across every surrogate fit this engine performed.
// Zero means every kernel matrix factorized cleanly.
func (e *Engine) JitterRetries() int { return e.jitterRetries }

// Suggest proposes the next point to evaluate (Algorithm 1 lines
// 9-13): it refits the GP, settles pending Hedge rewards, lets every
// acquisition nominate its optimum, and picks one nominee with
// probability softmax(η·gains).
func (e *Engine) Suggest() ([]float64, error) {
	g, err := e.Surrogate()
	if err != nil {
		return nil, err
	}

	// Settle Hedge rewards for the previous round's nominees: the
	// reward of acquisition i is −μ(x_i) under the updated posterior
	// (Hoffman et al.), normalized to the GP's target scale.
	if e.nominees != nil {
		s := predictScratch.Get().(*gp.PredictScratch)
		for i, xi := range e.nominees {
			mu, _ := g.PredictInto(s, xi)
			e.gain[i] += -e.normalize(mu)
		}
		predictScratch.Put(s)
		e.nominees = nil
	}

	_, fBest, _ := e.Best()

	// Shared candidate pool: LHS + the incumbent's neighborhood.
	pool := sample.LHS(e.cfg.CandidatePool, e.dim, e.rng)
	bestX, _, _ := e.Best()
	for k := 0; k < 8; k++ {
		p := make([]float64, e.dim)
		for j := range p {
			p[j] = clamp01(bestX[j] + 0.05*e.rng.NormFloat64())
		}
		pool = append(pool, p)
	}

	bounds := optimize.UnitBox(e.dim)
	costAware := e.cfg.CostAware && len(e.costX) > 0
	nominees := make([][]float64, len(e.cfg.Portfolio))
	for i, acq := range e.cfg.Portfolio {
		// neg is called concurrently by Multistart, so each call
		// borrows a scratch from the pool rather than sharing one.
		neg := func(x []float64) float64 {
			s := predictScratch.Get().(*gp.PredictScratch)
			mu, v := g.PredictInto(s, x)
			predictScratch.Put(s)
			score := acq.Score(mu, math.Sqrt(v), fBest)
			// Cost-aware acquisition (EI-per-second): positive promise
			// is discounted by predicted cost; non-positive scores are
			// left alone so dividing by cost cannot make a bad point
			// look less bad.
			if costAware && score > 0 {
				score /= e.predictCost(x)
			}
			return -score
		}
		// Seed local search with the best pool candidates.
		type cand struct {
			x []float64
			f float64
		}
		best1, best2 := cand{f: math.Inf(1)}, cand{f: math.Inf(1)}
		for _, p := range pool {
			f := neg(p)
			switch {
			case f < best1.f:
				best2 = best1
				best1 = cand{x: p, f: f}
			case f < best2.f:
				best2 = cand{x: p, f: f}
			}
		}
		seeds := [][]float64{best1.x}
		if best2.x != nil {
			seeds = append(seeds, best2.x)
		}
		res := optimize.Multistart(neg, bounds, e.cfg.Starts, seeds, e.rng, e.cfg.Workers,
			func(f optimize.Objective, x0 []float64, b optimize.Bounds) optimize.Result {
				return optimize.LBFGSB(f, x0, b, 40)
			})
		nominees[i] = res.X
	}

	// Hedge: choose a nominee with probability softmax(η·g).
	probs := make([]float64, len(e.gain))
	softmax(e.gain, e.cfg.Eta, probs)
	r := e.rng.Float64()
	idx := 0
	acc := 0.0
	for i, p := range probs {
		acc += p
		if r <= acc {
			idx = i
			break
		}
		idx = i
	}
	e.nominees = nominees
	e.chosen = idx
	return append([]float64(nil), nominees[idx]...), nil
}

// Chosen returns the portfolio index selected by the last Suggest.
func (e *Engine) Chosen() int { return e.chosen }

// PortfolioNames returns the acquisition names in portfolio order.
func (e *Engine) PortfolioNames() []string {
	out := make([]string, len(e.cfg.Portfolio))
	for i, a := range e.cfg.Portfolio {
		out[i] = a.Name()
	}
	return out
}

// normalize maps a target-scale value onto the engine's observation
// scale (z-score) so Hedge gains are comparable across problems.
func (e *Engine) normalize(v float64) float64 {
	var mean, sd float64
	for _, y := range e.y {
		mean += y
	}
	mean /= float64(len(e.y))
	for _, y := range e.y {
		d := y - mean
		sd += d * d
	}
	sd = math.Sqrt(sd / float64(len(e.y)))
	if sd < 1e-12 {
		return 0
	}
	return (v - mean) / sd
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v >= 1 {
		return math.Nextafter(1, 0)
	}
	return v
}

// Fork returns an independent copy of the engine: same observations,
// gains, configuration and RNG seedline, but future Tells and
// Suggests do not affect the original. BatchSuggest uses forks for
// constant-liar lookahead.
func (e *Engine) Fork() *Engine {
	f := New(e.dim, e.cfg)
	f.x = make([][]float64, len(e.x))
	for i, xi := range e.x {
		f.x[i] = append([]float64(nil), xi...)
	}
	f.y = append([]float64(nil), e.y...)
	f.cens = append([]bool(nil), e.cens...)
	f.costX = make([][]float64, len(e.costX))
	for i, xi := range e.costX {
		f.costX[i] = append([]float64(nil), xi...)
	}
	f.costY = append([]float64(nil), e.costY...)
	copy(f.gain, e.gain)
	f.lastHyper = e.lastHyper
	f.hyperFitAtN = e.hyperFitAtN
	f.jitterRetries = e.jitterRetries
	f.start = e.start
	f.refitSeconds = e.refitSeconds
	f.hyperRefits = e.hyperRefits
	f.posteriorRefits = e.posteriorRefits
	f.extends = e.extends
	// The fitted GP is immutable, so the fork shares it; the fork's
	// first Tell then extends it incrementally instead of refitting
	// from scratch (the constant-liar loop in BatchSuggest leans on
	// this).
	f.g = e.g
	f.gN = e.gN
	return f
}

// BatchSuggest proposes q distinct points for parallel evaluation
// using the constant-liar heuristic: after each suggestion the fork
// is told the GP's own mean prediction at that point (the "lie"), so
// subsequent suggestions move elsewhere instead of piling onto the
// same optimum. The engine itself is not modified; call Tell with the
// real observations when they arrive.
func (e *Engine) BatchSuggest(q int) ([][]float64, error) {
	if q < 1 {
		q = 1
	}
	fork := e.Fork()
	out := make([][]float64, 0, q)
	for k := 0; k < q; k++ {
		u, err := fork.Suggest()
		if err != nil {
			if k == 0 {
				return nil, err
			}
			break
		}
		out = append(out, u)
		g, err := fork.Surrogate()
		if err != nil {
			break
		}
		s := predictScratch.Get().(*gp.PredictScratch)
		lie, _ := g.PredictInto(s, u)
		predictScratch.Put(s)
		if err := fork.Tell(u, lie); err != nil {
			// A non-finite lie means the surrogate itself is degenerate;
			// stop the lookahead with the suggestions gathered so far.
			break
		}
	}
	return out, nil
}

// State captures the engine's observation set and Hedge bookkeeping in
// a JSON-serializable form for journal snapshots. It is diagnostic:
// resume rebuilds the engine by deterministic replay of the recorded
// Tells (which also replays RNG consumption), so State is never fed
// back into an engine — it lets tooling inspect what the surrogate
// knew at snapshot time.
type State struct {
	Dim           int         `json:"dim"`
	X             [][]float64 `json:"x"`
	Y             []float64   `json:"y"`
	Censored      []bool      `json:"censored"`
	Gains         []float64   `json:"gains"`
	HyperFitAtN   int         `json:"hyper_fit_at_n"`
	JitterRetries int         `json:"jitter_retries"`
}

// State returns a deep-copied snapshot of the engine's durable state.
func (e *Engine) State() State {
	st := State{
		Dim:           e.dim,
		X:             make([][]float64, len(e.x)),
		Y:             append([]float64(nil), e.y...),
		Censored:      append([]bool(nil), e.cens...),
		Gains:         append([]float64(nil), e.gain...),
		HyperFitAtN:   e.hyperFitAtN,
		JitterRetries: e.jitterRetries,
	}
	for i, xi := range e.x {
		st.X[i] = append([]float64(nil), xi...)
	}
	return st
}
