package bo

import (
	"math"
	"testing"
)

// TestTellRejectsNonFinite: NaN/Inf observations must be refused at
// the engine boundary, never reach the GP, and never panic.
func TestTellRejectsNonFinite(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 3
	e := New(2, cfg)
	seedEngine(e, 6, 3)
	n := e.N()
	for _, y := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := e.Tell([]float64{0.5, 0.5}, y); err == nil {
			t.Errorf("Tell accepted y = %v", y)
		}
		if err := e.TellCensored([]float64{0.5, 0.5}, y); err == nil {
			t.Errorf("TellCensored accepted y = %v", y)
		}
	}
	for _, v := range []float64{math.NaN(), math.Inf(1)} {
		if err := e.Tell([]float64{v, 0.5}, 1); err == nil {
			t.Errorf("Tell accepted x with %v", v)
		}
	}
	if e.N() != n {
		t.Fatalf("rejected observations changed N: %d -> %d", n, e.N())
	}
	// The engine must still be fully functional afterwards.
	if _, err := e.Suggest(); err != nil {
		t.Fatalf("Suggest after rejected tells: %v", err)
	}
}

// TestEngineStateSnapshot: State must deep-copy the observation set so
// later Tells don't mutate a written snapshot.
func TestEngineStateSnapshot(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 5
	e := New(2, cfg)
	seedEngine(e, 5, 5)
	st := e.State()
	if st.Dim != 2 || len(st.X) != 5 || len(st.Y) != 5 || len(st.Censored) != 5 {
		t.Fatalf("state shape: %+v", st)
	}
	x0 := st.X[0][0]
	e.Tell([]float64{0.9, 0.9}, 2)
	e.TellCensored([]float64{0.1, 0.1}, 3)
	if len(st.X) != 5 || st.X[0][0] != x0 {
		t.Fatal("State aliases live engine buffers")
	}
	if got := e.State(); len(got.X) != 7 || !got.Censored[6] {
		t.Fatalf("post-tell state: n=%d censored=%v", len(got.X), got.Censored)
	}
}

// TestJitterRetriesMonotone: the counter only accumulates, and a
// healthy fit sequence reports zero.
func TestJitterRetriesMonotone(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 7
	e := New(2, cfg)
	seedEngine(e, 8, 7)
	if _, err := e.Suggest(); err != nil {
		t.Fatal(err)
	}
	healthy := e.JitterRetries()
	if healthy < 0 {
		t.Fatalf("negative retry count %d", healthy)
	}
	// Duplicate points force a singular kernel matrix: the escalating
	// jitter ladder must rescue the factorization (no error, no panic)
	// and account its retries.
	dup := New(2, cfg)
	for i := 0; i < 10; i++ {
		if err := dup.Tell([]float64{0.5, 0.5}, 1.0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := dup.Surrogate(); err != nil {
		t.Fatalf("surrogate on duplicate observations: %v", err)
	}
	first := dup.JitterRetries()
	if _, err := dup.Surrogate(); err != nil {
		t.Fatal(err)
	}
	if dup.JitterRetries() < first {
		t.Fatalf("retry counter decreased: %d -> %d", first, dup.JitterRetries())
	}
}
