// Package bo implements ROBOTune's Bayesian-Optimization engine
// (§3.4, Algorithm 1): a Gaussian-Process surrogate searched through
// an adaptive GP-Hedge portfolio of three acquisition functions —
// Probability of Improvement, Expected Improvement and Lower
// Confidence Bound — each adapted to minimization as in equations
// (2)–(4) of the paper. Acquisition surfaces are optimized with
// multistart L-BFGS-B (§4).
package bo

import (
	"math"

	"repro/internal/stats"
)

// Acquisition scores a candidate's posterior (μ, σ) against the
// incumbent best observation. Higher scores are more desirable. All
// three functions are minimization-adapted per §3.4.
type Acquisition interface {
	Name() string
	Score(mu, sigma, fBest float64) float64
}

// PI is the Probability of Improvement (eq. 2):
// PI(x) = P(f(x) <= f(x+) − ξ) = Φ(d/σ), d = f(x+) − μ(x) − ξ.
type PI struct {
	// Xi is the exploration knob ξ (the paper uses 0.01).
	Xi float64
}

// Name implements Acquisition.
func (PI) Name() string { return "PI" }

// Score implements Acquisition.
func (a PI) Score(mu, sigma, fBest float64) float64 {
	d := fBest - mu - a.Xi
	if sigma <= 0 {
		if d > 0 {
			return 1
		}
		return 0
	}
	return stats.NormCDF(d / sigma)
}

// EI is the Expected Improvement (eq. 3):
// EI(x) = d·Φ(d/σ) + σ·φ(d/σ) for σ > 0, else 0.
type EI struct {
	// Xi is the exploration knob ξ (the paper uses 0.01).
	Xi float64
}

// Name implements Acquisition.
func (EI) Name() string { return "EI" }

// Score implements Acquisition.
func (a EI) Score(mu, sigma, fBest float64) float64 {
	if sigma <= 0 {
		return 0
	}
	d := fBest - mu - a.Xi
	if math.IsInf(d, -1) || math.IsNaN(d) {
		return 0
	}
	if math.IsInf(d, 1) {
		return math.MaxFloat64
	}
	z := d / sigma
	v := d*stats.NormCDF(z) + sigma*stats.NormPDF(z)
	if v < 0 || math.IsNaN(v) {
		// Guard against catastrophic cancellation far below the
		// incumbent.
		return 0
	}
	return v
}

// LCB is the Lower Confidence Bound (eq. 4): LCB(x) = μ(x) − κσ(x).
// As an acquisition score (higher better) it is negated.
type LCB struct {
	// Kappa is the confidence knob κ (the paper uses 1.96).
	Kappa float64
}

// Name implements Acquisition.
func (LCB) Name() string { return "LCB" }

// Score implements Acquisition.
func (a LCB) Score(mu, sigma, _ float64) float64 {
	return -(mu - a.Kappa*sigma)
}

// DefaultPortfolio returns the paper's three-function portfolio with
// ξ = 0.01 and κ = 1.96 (§4: "they perform well in most cases").
func DefaultPortfolio() []Acquisition {
	return []Acquisition{PI{Xi: 0.01}, EI{Xi: 0.01}, LCB{Kappa: 1.96}}
}

// softmax fills out with softmax(η·g), guarding overflow.
func softmax(g []float64, eta float64, out []float64) {
	maxG := math.Inf(-1)
	for _, v := range g {
		if v > maxG {
			maxG = v
		}
	}
	var sum float64
	for i, v := range g {
		out[i] = math.Exp(eta * (v - maxG))
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
}
