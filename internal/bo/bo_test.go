package bo

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sample"
)

func TestPIMonotoneInImprovement(t *testing.T) {
	a := PI{Xi: 0.01}
	// Lower predicted mean (bigger improvement) → higher PI.
	if a.Score(0.2, 0.1, 1.0) <= a.Score(0.8, 0.1, 1.0) {
		t.Error("PI should prefer lower means")
	}
	// Degenerate σ=0: 1 when strictly better, 0 otherwise.
	if a.Score(0.5, 0, 1.0) != 1 || a.Score(1.5, 0, 1.0) != 0 {
		t.Error("PI σ=0 edge cases wrong")
	}
	// Probability bounds.
	if s := a.Score(0.5, 0.3, 1.0); s < 0 || s > 1 {
		t.Errorf("PI out of [0,1]: %v", s)
	}
}

func TestEIProperties(t *testing.T) {
	a := EI{Xi: 0.01}
	if a.Score(0.5, 0, 1.0) != 0 {
		t.Error("EI with σ=0 must be 0 (eq. 3)")
	}
	if a.Score(0.2, 0.1, 1.0) <= a.Score(0.8, 0.1, 1.0) {
		t.Error("EI should prefer lower means")
	}
	// More uncertainty → more expected improvement when means equal.
	if a.Score(1.0, 0.5, 1.0) <= a.Score(1.0, 0.1, 1.0) {
		t.Error("EI should grow with σ at equal mean")
	}
	// EI is nonnegative.
	f := func(mu, sigma, best float64) bool {
		s := a.Score(mu, math.Abs(sigma), best)
		return s >= 0 && !math.IsNaN(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLCBTradeoff(t *testing.T) {
	a := LCB{Kappa: 1.96}
	// Lower mean is better...
	if a.Score(0.2, 0.1, 0) <= a.Score(0.8, 0.1, 0) {
		t.Error("LCB should prefer lower means")
	}
	// ...and higher variance is better (exploration).
	if a.Score(0.5, 0.5, 0) <= a.Score(0.5, 0.1, 0) {
		t.Error("LCB should prefer higher uncertainty")
	}
}

func TestSoftmax(t *testing.T) {
	out := make([]float64, 3)
	softmax([]float64{0, 0, 0}, 1, out)
	for _, p := range out {
		if math.Abs(p-1.0/3) > 1e-12 {
			t.Errorf("uniform gains should give uniform probs: %v", out)
		}
	}
	softmax([]float64{10, 0, -10}, 1, out)
	if !(out[0] > out[1] && out[1] > out[2]) {
		t.Errorf("softmax ordering wrong: %v", out)
	}
	var sum float64
	for _, p := range out {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("softmax sums to %v", sum)
	}
	// Large gains must not overflow.
	softmax([]float64{1e5, 0, 0}, 1, out)
	if math.IsNaN(out[0]) || out[0] < 0.999 {
		t.Errorf("softmax overflow handling: %v", out)
	}
}

func TestSoftmaxSumProperty(t *testing.T) {
	f := func(a, b, c float64, etaRaw uint8) bool {
		g := []float64{norm(a), norm(b), norm(c)}
		eta := 0.1 + float64(etaRaw)/64
		out := make([]float64, 3)
		softmax(g, eta, out)
		var sum float64
		for _, p := range out {
			if p < 0 || math.IsNaN(p) {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func norm(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 100)
}

// quadratic is a 2-d test objective with minimum at (0.7, 0.3).
func quadratic(x []float64) float64 {
	a := x[0] - 0.7
	b := x[1] - 0.3
	return a*a + b*b
}

func seedEngine(e *Engine, n int, seed uint64) {
	rng := sample.NewRNG(seed)
	for _, p := range sample.LHS(n, 2, rng) {
		e.Tell(p, quadratic(p))
	}
}

func TestEngineConvergesOnQuadratic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 1
	e := New(2, cfg)
	seedEngine(e, 8, 1)
	for i := 0; i < 20; i++ {
		x, err := e.Suggest()
		if err != nil {
			t.Fatal(err)
		}
		e.Tell(x, quadratic(x))
	}
	_, best, ok := e.Best()
	if !ok || best > 0.01 {
		t.Errorf("BO best = %v after 20 iterations, want < 0.01", best)
	}
}

func TestEngineBeatsRandomSearchOnMultimodal(t *testing.T) {
	// A smooth bimodal surface: a shallow optimum near (0.2, 0.8) and
	// the global one near (0.75, 0.25). BO with 40 evaluations should
	// reliably reach a better value than pure random search with the
	// same budget, because it can descend into the global basin.
	gauss := func(x []float64, cx, cy, w float64) float64 {
		d2 := (x[0]-cx)*(x[0]-cx) + (x[1]-cy)*(x[1]-cy)
		return math.Exp(-d2 / (2 * w * w))
	}
	f := func(x []float64) float64 {
		return 1 - 0.6*gauss(x, 0.2, 0.8, 0.2) - 1.0*gauss(x, 0.75, 0.25, 0.1)
	}
	var boTotal, rsTotal float64
	const trials = 3
	for trial := uint64(0); trial < trials; trial++ {
		cfg := DefaultConfig()
		cfg.Seed = trial
		e := New(2, cfg)
		rng := sample.NewRNG(trial * 7)
		for _, p := range sample.LHS(10, 2, rng) {
			e.Tell(p, f(p))
		}
		for i := 0; i < 30; i++ {
			x, err := e.Suggest()
			if err != nil {
				t.Fatal(err)
			}
			e.Tell(x, f(x))
		}
		_, boBest, _ := e.Best()

		rsBest := math.Inf(1)
		for _, p := range sample.Uniform(40, 2, sample.NewRNG(trial*13+5)) {
			if v := f(p); v < rsBest {
				rsBest = v
			}
		}
		boTotal += boBest
		rsTotal += rsBest
	}
	if boTotal >= rsTotal {
		t.Errorf("BO mean best %.4f should beat RS mean best %.4f", boTotal/trials, rsTotal/trials)
	}
}

func TestSuggestRequiresObservations(t *testing.T) {
	e := New(2, DefaultConfig())
	if _, err := e.Suggest(); err == nil {
		t.Error("Suggest with no data should error")
	}
	e.Tell([]float64{0.5, 0.5}, 1)
	if _, err := e.Suggest(); err == nil {
		t.Error("Suggest with one point should error")
	}
}

func TestSuggestInUnitCube(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 3
	e := New(3, cfg)
	rng := sample.NewRNG(3)
	for _, p := range sample.LHS(6, 3, rng) {
		e.Tell(p, p[0]+p[1]*p[2])
	}
	for i := 0; i < 5; i++ {
		x, err := e.Suggest()
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range x {
			if v < 0 || v > 1 {
				t.Fatalf("suggestion coordinate %d out of box: %v", j, x)
			}
		}
		e.Tell(x, x[0])
	}
}

func TestHedgeGainsUpdate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 4
	e := New(2, cfg)
	seedEngine(e, 6, 4)
	if g := e.Gains(); g[0] != 0 || g[1] != 0 || g[2] != 0 {
		t.Fatalf("initial gains %v", g)
	}
	x, err := e.Suggest()
	if err != nil {
		t.Fatal(err)
	}
	e.Tell(x, quadratic(x))
	if _, err := e.Suggest(); err != nil {
		t.Fatal(err)
	}
	g := e.Gains()
	nonzero := false
	for _, v := range g {
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Errorf("gains never updated: %v", g)
	}
	p := e.Probabilities()
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestSingleAcquisitionPortfolio(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Portfolio = []Acquisition{EI{Xi: 0.01}}
	cfg.Seed = 5
	e := New(2, cfg)
	seedEngine(e, 8, 5)
	for i := 0; i < 10; i++ {
		x, err := e.Suggest()
		if err != nil {
			t.Fatal(err)
		}
		if e.Chosen() != 0 {
			t.Fatal("single-member portfolio must always choose index 0")
		}
		e.Tell(x, quadratic(x))
	}
	_, best, _ := e.Best()
	if best > 0.05 {
		t.Errorf("EI-only best = %v", best)
	}
}

func TestEngineDeterministic(t *testing.T) {
	run := func() []float64 {
		cfg := DefaultConfig()
		cfg.Seed = 6
		e := New(2, cfg)
		seedEngine(e, 6, 6)
		x, err := e.Suggest()
		if err != nil {
			t.Fatal(err)
		}
		return x
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed suggested %v and %v", a, b)
		}
	}
}

func TestPortfolioNames(t *testing.T) {
	e := New(2, DefaultConfig())
	names := e.PortfolioNames()
	if len(names) != 3 || names[0] != "PI" || names[1] != "EI" || names[2] != "LCB" {
		t.Errorf("names = %v", names)
	}
}

func TestBestTracksMinimum(t *testing.T) {
	e := New(1, DefaultConfig())
	e.Tell([]float64{0.1}, 5)
	e.Tell([]float64{0.2}, 2)
	e.Tell([]float64{0.3}, 7)
	x, y, ok := e.Best()
	if !ok || y != 2 || x[0] != 0.2 {
		t.Errorf("Best = %v %v %v", x, y, ok)
	}
}

func TestNewPanicsOnZeroDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New(0, DefaultConfig())
}

func TestHedgeProbabilitiesShiftFromUniform(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 10
	e := New(2, cfg)
	seedEngine(e, 8, 10)
	for i := 0; i < 12; i++ {
		x, err := e.Suggest()
		if err != nil {
			t.Fatal(err)
		}
		e.Tell(x, quadratic(x))
	}
	p := e.Probabilities()
	uniform := true
	for _, v := range p {
		if math.Abs(v-1.0/3) > 0.02 {
			uniform = false
		}
	}
	if uniform {
		t.Errorf("hedge probabilities still uniform after 12 rounds: %v", p)
	}
}

func TestSurrogateReusesHyperparametersBetweenRefits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 11
	e := New(2, cfg)
	seedEngine(e, 10, 11)
	g1, err := e.Surrogate()
	if err != nil {
		t.Fatal(err)
	}
	// One new observation: within the refit window the hyperparameters
	// must be identical (only the posterior is recomputed).
	e.Tell([]float64{0.5, 0.5}, quadratic([]float64{0.5, 0.5}))
	g2, err := e.Surrogate()
	if err != nil {
		t.Fatal(err)
	}
	if !g1.Params().Equal(g2.Params()) {
		t.Error("hyperparameters refit despite being within the reuse window")
	}
	if g2.N() != g1.N()+1 {
		t.Errorf("posterior not updated: N %d -> %d", g1.N(), g2.N())
	}
}

func TestSuggestAfterManyIdenticalObservations(t *testing.T) {
	// Degenerate data (identical ys) must not break the engine.
	cfg := DefaultConfig()
	cfg.Seed = 12
	e := New(2, cfg)
	rng := sample.NewRNG(12)
	for _, p := range sample.LHS(10, 2, rng) {
		e.Tell(p, 42)
	}
	x, err := e.Suggest()
	if err != nil {
		t.Fatalf("Suggest on constant data: %v", err)
	}
	for _, v := range x {
		if math.IsNaN(v) {
			t.Fatal("NaN suggestion")
		}
	}
}

func TestForkIsIndependent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 20
	e := New(2, cfg)
	seedEngine(e, 8, 20)
	f := e.Fork()
	if f.N() != e.N() {
		t.Fatalf("fork N = %d, want %d", f.N(), e.N())
	}
	f.Tell([]float64{0.5, 0.5}, 1)
	if f.N() != e.N()+1 {
		t.Error("fork Tell did not grow the fork")
	}
	if e.N() != 8 {
		t.Error("fork Tell leaked into the original")
	}
	_, by, _ := f.Best()
	_, ey, _ := e.Best()
	_ = by
	_ = ey
}

func TestBatchSuggestDiversity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 21
	e := New(2, cfg)
	seedEngine(e, 10, 21)
	batch, err := e.BatchSuggest(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 4 {
		t.Fatalf("batch size = %d", len(batch))
	}
	// The constant liar should spread the batch: no two points
	// essentially identical.
	for i := 0; i < len(batch); i++ {
		for j := i + 1; j < len(batch); j++ {
			d := math.Hypot(batch[i][0]-batch[j][0], batch[i][1]-batch[j][1])
			if d < 1e-4 {
				t.Errorf("batch points %d and %d coincide: %v %v", i, j, batch[i], batch[j])
			}
		}
	}
	// The engine itself is untouched.
	if e.N() != 10 {
		t.Errorf("BatchSuggest modified the engine: N=%d", e.N())
	}
}

func TestBatchSuggestNeedsData(t *testing.T) {
	e := New(2, DefaultConfig())
	if _, err := e.BatchSuggest(3); err == nil {
		t.Error("BatchSuggest without observations should error")
	}
}
