package bo

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/sample"
)

// TestSparseQualityRegression is the sparse-vs-exact quality gate CI
// runs: on a small suite of smooth objectives, a sparse engine (tiny
// threshold so the approximation is actually exercised) at a matched
// evaluation budget must find a best value within noise of the exact
// engine's. It guards against the local-subset path silently wrecking
// search quality, not against tiny metric differences — the tolerance
// is the noise band observed across seeds.
func TestSparseQualityRegression(t *testing.T) {
	type objective struct {
		name string
		f    func(u []float64) float64
	}
	suite := []objective{
		{"sphere", func(u []float64) float64 {
			s := 0.0
			for j := range u {
				d := u[j] - 0.6
				s += d * d
			}
			return s
		}},
		{"rippled-bowl", func(u []float64) float64 {
			s := 0.0
			for j := range u {
				d := u[j] - 0.35
				s += d*d + 0.02*math.Sin(9*u[j])
			}
			return s
		}},
	}
	const (
		dim    = 4
		budget = 60
	)
	run := func(f func([]float64) float64, sparse bool) float64 {
		cfg := DefaultConfig()
		cfg.Seed = 17
		cfg.CandidatePool = 96
		cfg.Starts = 1
		cfg.GP.Restarts = 1
		if sparse {
			cfg.Sparse = true
			cfg.SparseThreshold = 24
		}
		e := New(dim, cfg)
		rng := sample.NewRNG(2)
		for _, u := range sample.LHS(8, dim, rng) {
			if err := e.Tell(u, f(u)); err != nil {
				panic(err)
			}
		}
		for i := 0; i < budget; i++ {
			u, err := e.Suggest()
			if err != nil {
				panic(err)
			}
			if err := e.Tell(u, f(u)); err != nil {
				panic(err)
			}
		}
		_, best, _ := e.Best()
		return best
	}
	for _, obj := range suite {
		t.Run(obj.name, func(t *testing.T) {
			exact := run(obj.f, false)
			sparse := run(obj.f, true)
			// Objectives are O(1) in scale with optimum near 0; 0.05
			// is well inside the run-to-run noise of the search itself.
			if sparse > exact+0.05 {
				t.Fatalf("sparse best %g regressed past exact best %g (+%g)",
					sparse, exact, sparse-exact)
			}
			t.Log(fmt.Sprintf("exact best %.5f, sparse best %.5f", exact, sparse))
		})
	}
}
