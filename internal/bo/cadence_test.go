package bo

import (
	"math"
	"testing"
	"time"

	"repro/internal/sample"
)

// stepClock is a deterministic fake clock: every Now() call advances
// it by one fixed step, so elapsed time is a pure function of how many
// times the engine consulted the clock.
type stepClock struct {
	t    time.Time
	step time.Duration
}

func (c *stepClock) Now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

func cadenceObjective(u []float64) float64 {
	s := 0.0
	for j := range u {
		d := u[j] - 0.5
		s += d * d
	}
	return s + 0.1*math.Sin(5*u[0])
}

// TestRefitBudgetZeroMatchesFixedCadence: with RefitBudget unset the
// engine must behave bit-identically to the pre-budget fixed cadence —
// the clock instrumentation must not perturb a single suggestion.
func TestRefitBudgetZeroMatchesFixedCadence(t *testing.T) {
	mk := func(withClock bool) *Engine {
		cfg := DefaultConfig()
		cfg.Seed = 21
		cfg.CandidatePool = 64
		cfg.Starts = 1
		cfg.GP.Restarts = 1
		if withClock {
			cfg.Now = (&stepClock{t: time.Unix(0, 0), step: time.Second}).Now
		}
		return New(3, cfg)
	}
	a, b := mk(false), mk(true)
	rng := sample.NewRNG(4)
	for _, u := range sample.LHS(4, 3, rng) {
		if err := a.Tell(u, cadenceObjective(u)); err != nil {
			t.Fatal(err)
		}
		if err := b.Tell(u, cadenceObjective(u)); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 10; round++ {
		ua, err := a.Suggest()
		if err != nil {
			t.Fatal(err)
		}
		ub, err := b.Suggest()
		if err != nil {
			t.Fatal(err)
		}
		for j := range ua {
			if ua[j] != ub[j] {
				t.Fatalf("round %d: suggestion differs at dim %d: %v vs %v", round, j, ua[j], ub[j])
			}
		}
		a.Tell(ua, cadenceObjective(ua))
		b.Tell(ub, cadenceObjective(ub))
	}
	sa, sb := a.RefitStats(), b.RefitStats()
	if sa.HyperRefits != sb.HyperRefits || sa.Extends != sb.Extends {
		t.Fatalf("cadence diverged: %+v vs %+v", sa, sb)
	}
	if sa.HyperRefits != 2 {
		t.Fatalf("fixed cadence made %d hyper refits over n=4..13, want 2 (n=4 and n=9)", sa.HyperRefits)
	}
}

// TestRefitBudgetCadence drives the budgeted cadence with a step
// clock: one hyper refit costs a fixed 1s of fake time, so with a 10%
// budget the engine must switch to incremental extensions until
// enough wall clock accumulates, then refit again.
func TestRefitBudgetCadence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 33
	cfg.CandidatePool = 64
	cfg.Starts = 1
	cfg.GP.Restarts = 1
	cfg.RefitBudget = 0.1
	cfg.Now = (&stepClock{t: time.Unix(0, 0), step: time.Second}).Now
	e := New(3, cfg)
	rng := sample.NewRNG(5)
	for _, u := range sample.LHS(3, 3, rng) {
		if err := e.Tell(u, cadenceObjective(u)); err != nil {
			t.Fatal(err)
		}
	}
	var afterFirst RefitStats
	for round := 0; round < 12; round++ {
		u, err := e.Suggest()
		if err != nil {
			t.Fatal(err)
		}
		e.Tell(u, cadenceObjective(u))
		if round == 0 {
			afterFirst = e.RefitStats()
		}
	}
	if afterFirst.HyperRefits != 1 || afterFirst.Extends != 0 {
		t.Fatalf("first Surrogate must hyper-refit: %+v", afterFirst)
	}
	st := e.RefitStats()
	if st.PosteriorRefits != 0 {
		t.Fatalf("budgeted cadence fell back to posterior-only refits: %+v", st)
	}
	if st.Extends < 5 {
		t.Fatalf("budgeted cadence extended only %d times over 12 rounds at a 10%% budget", st.Extends)
	}
	if st.HyperRefits < 2 {
		t.Fatalf("budget never released a second hyper refit: %+v", st)
	}
	if st.HyperRefits >= 12 {
		t.Fatalf("budget did not throttle refits at all: %+v", st)
	}
	if st.RefitSeconds <= 0 || st.ElapsedSeconds <= st.RefitSeconds {
		t.Fatalf("implausible timing accounting: %+v", st)
	}
}

// TestSparseEngineSurrogate: with Sparse set, the fitted surrogate
// past the threshold must be the bounded local-subset GP and the
// cadence stats must surface it.
func TestSparseEngineSurrogate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 9
	cfg.CandidatePool = 64
	cfg.Starts = 1
	cfg.GP.Restarts = 1
	cfg.Sparse = true
	cfg.SparseThreshold = 16
	e := New(4, cfg)
	rng := sample.NewRNG(6)
	for _, u := range sample.LHS(40, 4, rng) {
		if err := e.Tell(u, cadenceObjective(u)); err != nil {
			t.Fatal(err)
		}
	}
	g, err := e.Surrogate()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Sparse() {
		t.Fatalf("surrogate not sparse past threshold")
	}
	if g.ActiveSize() != 16 || g.N() != 40 {
		t.Fatalf("active=%d n=%d, want 16/40", g.ActiveSize(), g.N())
	}
	st := e.RefitStats()
	if !st.Sparse || st.ActiveSize != 16 || st.Observations != 40 {
		t.Fatalf("stats do not surface sparse state: %+v", st)
	}
	if _, err := e.Suggest(); err != nil {
		t.Fatalf("Suggest on sparse surrogate: %v", err)
	}
}
