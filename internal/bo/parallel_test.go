package bo

import "testing"

// TestSuggestWorkersParity asserts the acquisition optimization is
// bit-identical for any worker count: multistart draws every start
// serially from the engine RNG and reduces the argmin in run order, so
// scheduling cannot change the suggestion.
func TestSuggestWorkersParity(t *testing.T) {
	run := func(workers int) [][]float64 {
		cfg := DefaultConfig()
		cfg.Seed = 9
		cfg.Workers = workers
		e := New(2, cfg)
		seedEngine(e, 8, 9)
		var xs [][]float64
		for i := 0; i < 3; i++ {
			x, err := e.Suggest()
			if err != nil {
				t.Fatal(err)
			}
			e.Tell(x, quadratic(x))
			xs = append(xs, x)
		}
		return xs
	}
	serial := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		for i := range serial {
			for j := range serial[i] {
				if got[i][j] != serial[i][j] {
					t.Errorf("workers=%d: suggestion %d = %v, serial %v", w, i, got[i], serial[i])
				}
			}
		}
	}
}

// TestWorkersPropagatesToGP asserts the engine forwards its worker
// budget to the GP hyperparameter optimizer unless the GP sets its own.
func TestWorkersPropagatesToGP(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 4
	e := New(2, cfg)
	if e.cfg.GP.Workers != 4 {
		t.Errorf("GP.Workers = %d, want 4", e.cfg.GP.Workers)
	}
	cfg = DefaultConfig()
	cfg.Workers = 4
	cfg.GP.Workers = 2
	e = New(2, cfg)
	if e.cfg.GP.Workers != 2 {
		t.Errorf("explicit GP.Workers overridden: %d, want 2", e.cfg.GP.Workers)
	}
}
