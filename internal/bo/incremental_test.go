package bo

import (
	"testing"
)

// TestIncrementalMatchesFullRefit runs the same campaign through two
// engines — one extending the cached Cholesky factor between
// hyperparameter refits, one refitting from scratch every iteration —
// and requires bit-identical suggestions, gains, and surrogate state
// at every step. This is the contract that lets the incremental path
// be the default: it changes the cost of an iteration, never its
// result.
func TestIncrementalMatchesFullRefit(t *testing.T) {
	run := func(disable bool) ([][]float64, []float64, float64) {
		cfg := DefaultConfig()
		cfg.Seed = 5
		cfg.CandidatePool = 64
		cfg.Starts = 1
		cfg.DisableIncremental = disable
		e := New(2, cfg)
		seedEngine(e, 6, 5)
		var xs [][]float64
		// Long enough to cross two hyperparameter refits (every 5
		// observations), so the run exercises full fit → extend ×4 →
		// full fit → extend again.
		for i := 0; i < 12; i++ {
			x, err := e.Suggest()
			if err != nil {
				t.Fatal(err)
			}
			e.Tell(x, quadratic(x))
			xs = append(xs, x)
		}
		g, err := e.Surrogate()
		if err != nil {
			t.Fatal(err)
		}
		return xs, e.Gains(), g.LogMarginalLikelihood()
	}

	incXs, incGains, incLML := run(false)
	fullXs, fullGains, fullLML := run(true)

	for i := range fullXs {
		for j := range fullXs[i] {
			if incXs[i][j] != fullXs[i][j] {
				t.Errorf("suggestion %d differs: incremental %v, full %v", i, incXs[i], fullXs[i])
			}
		}
	}
	for i := range fullGains {
		if incGains[i] != fullGains[i] {
			t.Errorf("gain %d differs: incremental %v, full %v", i, incGains[i], fullGains[i])
		}
	}
	if incLML != fullLML {
		t.Errorf("final surrogate LML differs: incremental %v, full %v", incLML, fullLML)
	}
}

// TestIncrementalBatchSuggestParity: the constant-liar batch loop
// (fork + lie-Tell + re-suggest) must produce the same batch whether
// the fork extends the shared GP or refits from scratch.
func TestIncrementalBatchSuggestParity(t *testing.T) {
	build := func(disable bool) *Engine {
		cfg := DefaultConfig()
		cfg.Seed = 8
		cfg.CandidatePool = 64
		cfg.Starts = 1
		cfg.DisableIncremental = disable
		e := New(2, cfg)
		seedEngine(e, 8, 8)
		// Advance past a hyper refit so the forks start inside the
		// reuse window with a cached surrogate.
		for i := 0; i < 3; i++ {
			x, err := e.Suggest()
			if err != nil {
				t.Fatal(err)
			}
			e.Tell(x, quadratic(x))
		}
		return e
	}
	inc, err := build(false).BatchSuggest(4)
	if err != nil {
		t.Fatal(err)
	}
	full, err := build(true).BatchSuggest(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(inc) != len(full) {
		t.Fatalf("batch sizes differ: %d vs %d", len(inc), len(full))
	}
	for i := range full {
		for j := range full[i] {
			if inc[i][j] != full[i][j] {
				t.Errorf("batch point %d differs: incremental %v, full %v", i, inc[i], full[i])
			}
		}
	}
}

// TestSurrogateExtendsBetweenRefits asserts the mechanism itself: in
// the hyperparameter-reuse window the engine keeps the same GP lineage
// (extends rather than refits), and fitting counts as refit only every
// hyperRefitEvery observations.
func TestSurrogateExtendsBetweenRefits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 3
	e := New(2, cfg)
	seedEngine(e, 6, 3)
	g0, err := e.Surrogate()
	if err != nil {
		t.Fatal(err)
	}
	// Inside the reuse window the extended surrogate keeps the exact
	// fitted hyperparameters.
	e.Tell([]float64{0.25, 0.75}, quadratic([]float64{0.25, 0.75}))
	g1, err := e.Surrogate()
	if err != nil {
		t.Fatal(err)
	}
	if g1 == g0 {
		t.Fatal("surrogate not refreshed after Tell")
	}
	if !g1.Params().Equal(g0.Params()) {
		t.Fatal("extension changed hyperparameters inside the reuse window")
	}
	if g1.N() != g0.N()+1 {
		t.Fatalf("extended surrogate has %d observations, want %d", g1.N(), g0.N()+1)
	}
	// A cached surrogate is returned as-is when nothing changed.
	g2, err := e.Surrogate()
	if err != nil {
		t.Fatal(err)
	}
	if g2 != g1 {
		t.Fatal("unchanged engine refit its surrogate")
	}
}

// TestForkSharesSurrogate: forking must not drop the fitted GP — the
// fork serves the identical posterior without refitting, and its
// Tells leave the parent's surrogate untouched.
func TestForkSharesSurrogate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 4
	e := New(2, cfg)
	seedEngine(e, 6, 4)
	g, err := e.Surrogate()
	if err != nil {
		t.Fatal(err)
	}
	f := e.Fork()
	fg, err := f.Surrogate()
	if err != nil {
		t.Fatal(err)
	}
	if fg != g {
		t.Fatal("fork refit instead of sharing the immutable surrogate")
	}
	f.Tell([]float64{0.5, 0.5}, 0.1)
	if _, err := f.Surrogate(); err != nil {
		t.Fatal(err)
	}
	pg, err := e.Surrogate()
	if err != nil {
		t.Fatal(err)
	}
	if pg != g {
		t.Fatal("fork's Tell invalidated the parent surrogate")
	}
}
