package bo

import (
	"testing"

	"repro/internal/sample"
)

// TestTellCensoredFloorsAtWorst: a censored observation must never
// look better to the surrogate than a real measurement.
func TestTellCensoredFloorsAtWorst(t *testing.T) {
	e := New(2, Config{Seed: 1})
	e.Tell([]float64{0.2, 0.2}, 10)
	e.Tell([]float64{0.8, 0.8}, 50)
	// Censored at 5 "observed seconds" — but it failed, so the true
	// value is unknown and at least as bad as anything seen.
	e.TellCensored([]float64{0.5, 0.5}, 5)
	if e.y[2] != 50 {
		t.Fatalf("censored y = %v, want floored to worst observed 50", e.y[2])
	}
	if e.Censored() != 1 {
		t.Fatalf("Censored() = %d, want 1", e.Censored())
	}
	// The incumbent must stay the real measurement.
	_, y, ok := e.Best()
	if !ok || y != 10 {
		t.Fatalf("Best = %v/%v, want 10", y, ok)
	}
}

// TestTellCensoredAboveWorstKept: a censored value already worse than
// everything observed passes through unchanged.
func TestTellCensoredAboveWorstKept(t *testing.T) {
	e := New(2, Config{Seed: 1})
	e.Tell([]float64{0.2, 0.2}, 10)
	e.TellCensored([]float64{0.6, 0.6}, 480)
	if e.y[1] != 480 {
		t.Fatalf("censored y = %v, want 480", e.y[1])
	}
}

// TestCensoredSuggestStillWorks: the engine must keep suggesting
// (and extending its surrogate incrementally) with censored points in
// the history, and a fork must carry the flags.
func TestCensoredSuggestStillWorks(t *testing.T) {
	e := New(2, Config{Seed: 3})
	rng := sample.NewRNG(9)
	for i := 0; i < 8; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		y := (x[0]-0.3)*(x[0]-0.3) + (x[1]-0.7)*(x[1]-0.7)
		if i%3 == 2 {
			e.TellCensored(x, 1.0)
		} else {
			e.Tell(x, y)
		}
	}
	for k := 0; k < 3; k++ {
		u, err := e.Suggest()
		if err != nil {
			t.Fatalf("Suggest with censored history: %v", err)
		}
		if len(u) != 2 {
			t.Fatalf("suggestion dim %d", len(u))
		}
		e.TellCensored(u, 2.0)
	}
	f := e.Fork()
	if f.Censored() != e.Censored() {
		t.Fatalf("fork lost censored flags: %d vs %d", f.Censored(), e.Censored())
	}
}
