package forest

import (
	"testing"
)

// TestTrainWorkersParity asserts the determinism contract of parallel
// training: workers=1 and workers=8 grow the bit-identical forest
// under the same seed (every tree draws from its own split-off RNG,
// so scheduling cannot change the ensemble).
func TestTrainWorkersParity(t *testing.T) {
	x, y := synth(150, 8, 41, 0.3)
	train := func(workers int, extra bool) *Forest {
		cfg := Config{Trees: 40, Bootstrap: !extra, Seed: 17, Workers: workers}
		if extra {
			cfg.Tree.Extra = true
		}
		return Train(x, y, cfg)
	}
	probes, _ := synth(30, 8, 42, 0.3)
	for _, extra := range []bool{false, true} {
		serial := train(1, extra)
		for _, w := range []int{2, 8} {
			parF := train(w, extra)
			for i, p := range probes {
				if got, want := parF.Predict(p), serial.Predict(p); got != want {
					t.Fatalf("extra=%v workers=%d: probe %d predicts %v, serial %v", extra, w, i, got, want)
				}
			}
			for ti := range serial.trees {
				if len(parF.trees[ti].nodes) != len(serial.trees[ti].nodes) {
					t.Fatalf("extra=%v workers=%d: tree %d has %d nodes, serial %d",
						extra, w, ti, len(parF.trees[ti].nodes), len(serial.trees[ti].nodes))
				}
			}
		}
	}
	// OOB scoring must agree too (the in-bag masks are part of the
	// contract, not just the trees).
	if a, b := train(1, false).OOBR2(), train(8, false).OOBR2(); a != b {
		t.Errorf("OOB R² differs: serial %v, workers=8 %v", a, b)
	}
}

// TestPermutationImportanceWorkersParity asserts that importance drops
// are bit-identical for any worker count: each (group, repeat) cell is
// seeded independently and the reduction sums repeats in order.
func TestPermutationImportanceWorkersParity(t *testing.T) {
	x, y := synth(200, 8, 43, 0.3)
	f := Train(x, y, Config{Trees: 40, Bootstrap: true, Seed: 19, Workers: 1})
	groups := [][]int{{0}, {1, 2}, {3}, {4, 5, 6}, {7}}
	serial := f.PermutationImportance(groups, 4, 23, 1)
	for _, w := range []int{2, 8} {
		got := f.PermutationImportance(groups, 4, 23, w)
		for g := range serial {
			if got[g].Drop != serial[g].Drop {
				t.Errorf("workers=%d: group %d drop %v, serial %v", w, g, got[g].Drop, serial[g].Drop)
			}
		}
	}
}

// TestPermutationImportanceSeeded asserts the seed is the only source
// of randomness: same seed → same drops, different seed → different
// permutations (and with high probability different drops).
func TestPermutationImportanceSeeded(t *testing.T) {
	x, y := synth(150, 6, 44, 0.5)
	f := Train(x, y, Config{Trees: 30, Bootstrap: true, Seed: 3})
	groups := [][]int{{0}, {1}, {2}}
	a := f.PermutationImportance(groups, 3, 100, 0)
	b := f.PermutationImportance(groups, 3, 100, 0)
	for g := range a {
		if a[g].Drop != b[g].Drop {
			t.Errorf("same seed: group %d drops differ (%v vs %v)", g, a[g].Drop, b[g].Drop)
		}
	}
	c := f.PermutationImportance(groups, 3, 101, 0)
	same := true
	for g := range a {
		if a[g].Drop != c[g].Drop {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical drops for every group")
	}
}
