package forest

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sample"
	"repro/internal/stats"
)

// synth generates n samples of a nonlinear function of the first few
// of d features; the remaining features are noise.
func synth(n, d int, seed uint64, noise float64) ([][]float64, []float64) {
	rng := sample.NewRNG(seed)
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()
		}
		x[i] = row
		y[i] = 10*math.Sin(3*row[0]) + 5*row[1]*row[1] + 3*row[2] + noise*rng.NormFloat64()
	}
	return x, y
}

func TestTreeFitsTrainingData(t *testing.T) {
	x, y := synth(80, 5, 1, 0)
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	rng := sample.NewRNG(2)
	tree := growTree(x, y, idx, TreeConfig{MinLeaf: 1}.withDefaults(5), rng)
	// With MinLeaf 1 and no depth cap, an unpruned CART should fit
	// training data almost perfectly.
	pred := make([]float64, len(x))
	for i := range x {
		pred[i] = tree.Predict(x[i])
	}
	if r2 := stats.R2(y, pred); r2 < 0.95 {
		t.Errorf("training R2 = %v, want near 1", r2)
	}
	if tree.Leaves() < 2 {
		t.Error("tree did not split")
	}
	if tree.Depth() < 1 {
		t.Error("tree has no depth")
	}
}

func TestTreeMaxDepth(t *testing.T) {
	x, y := synth(200, 5, 3, 0)
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	tree := growTree(x, y, idx, TreeConfig{MinLeaf: 1, MaxDepth: 3}.withDefaults(5), sample.NewRNG(4))
	if d := tree.Depth(); d > 3 {
		t.Errorf("depth = %d, want <= 3", d)
	}
}

func TestTreeConstantTarget(t *testing.T) {
	x := [][]float64{{0}, {0.5}, {1}}
	y := []float64{7, 7, 7}
	idx := []int{0, 1, 2}
	tree := growTree(x, y, idx, TreeConfig{}.withDefaults(1), sample.NewRNG(5))
	if tree.Leaves() != 1 {
		t.Errorf("constant target should not split, leaves = %d", tree.Leaves())
	}
	if tree.Predict([]float64{0.3}) != 7 {
		t.Error("constant prediction wrong")
	}
}

func TestForestGeneralizes(t *testing.T) {
	xtr, ytr := synth(300, 8, 10, 0.5)
	xte, yte := synth(100, 8, 11, 0.5)
	f := Train(xtr, ytr, Config{Trees: 100, Bootstrap: true, Seed: 1})
	pred := f.PredictAll(xte)
	if r2 := stats.R2(yte, pred); r2 < 0.8 {
		t.Errorf("test R2 = %v, want > 0.8", r2)
	}
}

func TestExtraTreesGeneralize(t *testing.T) {
	xtr, ytr := synth(300, 8, 12, 0.5)
	xte, yte := synth(100, 8, 13, 0.5)
	f := Train(xtr, ytr, func() Config { c := ETDefaults(); c.Seed = 2; return c }())
	pred := f.PredictAll(xte)
	if r2 := stats.R2(yte, pred); r2 < 0.7 {
		t.Errorf("ET test R2 = %v, want > 0.7", r2)
	}
}

func TestForestDeterministicGivenSeed(t *testing.T) {
	x, y := synth(100, 5, 20, 0.2)
	a := Train(x, y, Config{Trees: 30, Bootstrap: true, Seed: 7})
	b := Train(x, y, Config{Trees: 30, Bootstrap: true, Seed: 7})
	probe := []float64{0.3, 0.6, 0.1, 0.9, 0.5}
	if a.Predict(probe) != b.Predict(probe) {
		t.Error("same seed gave different forests")
	}
	c := Train(x, y, Config{Trees: 30, Bootstrap: true, Seed: 8})
	if a.Predict(probe) == c.Predict(probe) {
		t.Error("different seeds gave identical forests")
	}
}

func TestOOBR2Reasonable(t *testing.T) {
	x, y := synth(300, 8, 30, 0.5)
	f := Train(x, y, Config{Trees: 100, Bootstrap: true, Seed: 3})
	oob := f.OOBR2()
	if math.IsNaN(oob) || oob < 0.6 || oob > 1 {
		t.Errorf("OOB R2 = %v, want in (0.6, 1)", oob)
	}
}

func TestOOBNaNWithoutBootstrap(t *testing.T) {
	x, y := synth(50, 4, 31, 0.1)
	f := Train(x, y, Config{Trees: 10, Bootstrap: false, Seed: 3})
	if !math.IsNaN(f.OOBR2()) {
		t.Error("OOB R2 should be NaN without bootstrap")
	}
}

func TestPermutationImportanceRanksSignalAboveNoise(t *testing.T) {
	// y depends on features 0..2; features 3..7 are pure noise.
	x, y := synth(250, 8, 40, 0.3)
	f := Train(x, y, Config{Trees: 100, Bootstrap: true, Seed: 4})
	groups := [][]int{{0}, {1}, {2}, {3}, {4}, {5}, {6}, {7}}
	imp := f.PermutationImportance(groups, 5, 5, 1)
	// Feature 0 (the dominant sine term) must beat all noise features.
	for j := 3; j < 8; j++ {
		if imp[0].Drop <= imp[j].Drop {
			t.Errorf("signal feature 0 drop %.4f <= noise feature %d drop %.4f", imp[0].Drop, j, imp[j].Drop)
		}
	}
	// Noise features should be near zero.
	for j := 3; j < 8; j++ {
		if imp[j].Drop > 0.05 {
			t.Errorf("noise feature %d drop %.4f > 0.05 threshold", j, imp[j].Drop)
		}
	}
}

func TestGroupedPermutationCapturesSharedSignal(t *testing.T) {
	// Two perfectly collinear features share the signal; permuting
	// them jointly reveals the full importance.
	rng := sample.NewRNG(50)
	n := 200
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := rng.Float64()
		x[i] = []float64{v, v, rng.Float64()}
		y[i] = 8 * v
	}
	f := Train(x, y, Config{Trees: 100, Bootstrap: true, Seed: 6})
	joint := f.PermutationImportance([][]int{{0, 1}, {2}}, 5, 7, 1)
	if joint[0].Drop < 0.3 {
		t.Errorf("joint collinear drop %.4f too small", joint[0].Drop)
	}
	if joint[1].Drop > 0.1 {
		t.Errorf("noise drop %.4f too large", joint[1].Drop)
	}
	// The joint drop should exceed each individual drop: permuting
	// one collinear twin leaves the other carrying the signal.
	solo := f.PermutationImportance([][]int{{0}, {1}}, 5, 8, 1)
	if joint[0].Drop <= solo[0].Drop || joint[0].Drop <= solo[1].Drop {
		t.Errorf("joint drop %.4f should exceed solo drops %.4f/%.4f",
			joint[0].Drop, solo[0].Drop, solo[1].Drop)
	}
}

func TestMDIImportance(t *testing.T) {
	x, y := synth(250, 8, 60, 0.3)
	f := Train(x, y, Config{Trees: 100, Bootstrap: true, Seed: 9})
	mdi := f.MDIImportance()
	if len(mdi) != 8 {
		t.Fatalf("MDI length %d", len(mdi))
	}
	var sum float64
	for _, v := range mdi {
		if v < 0 {
			t.Errorf("negative MDI %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("MDI sums to %v, want 1", sum)
	}
	if mdi[0] < mdi[5] {
		t.Errorf("signal MDI %.4f below noise MDI %.4f", mdi[0], mdi[5])
	}
}

func TestForestPredictionWithinRangeProperty(t *testing.T) {
	// A regression forest's prediction is an average of leaf means,
	// so it can never leave [min(y), max(y)].
	x, y := synth(120, 5, 70, 0.5)
	f := Train(x, y, Config{Trees: 50, Bootstrap: true, Seed: 10})
	lo, hi := stats.Min(y), stats.Max(y)
	check := func(a, b, c, d, e float64) bool {
		clamp := func(v float64) float64 { return math.Mod(math.Abs(v), 1) }
		p := f.Predict([]float64{clamp(a), clamp(b), clamp(c), clamp(d), clamp(e)})
		return p >= lo-1e-9 && p <= hi+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTrainPanicsOnBadInput(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":    func() { Train(nil, nil, RFDefaults()) },
		"mismatch": func() { Train([][]float64{{1}}, []float64{1, 2}, RFDefaults()) },
		"ragged":   func() { Train([][]float64{{1, 2}, {3}}, []float64{1, 2}, RFDefaults()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPredictDimPanic(t *testing.T) {
	x, y := synth(30, 3, 80, 0)
	f := Train(x, y, Config{Trees: 5, Bootstrap: true, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Error("wrong-dimension Predict should panic")
		}
	}()
	f.Predict([]float64{0.1})
}

func TestRFBeatsSingleTreeOnNoisyData(t *testing.T) {
	xtr, ytr := synth(200, 8, 90, 2.0)
	xte, yte := synth(100, 8, 91, 2.0)
	forest := Train(xtr, ytr, Config{Trees: 100, Bootstrap: true, Seed: 11})
	single := Train(xtr, ytr, Config{Trees: 1, Bootstrap: false, Seed: 11,
		Tree: TreeConfig{MaxFeatures: 8}})
	rf := stats.R2(yte, forest.PredictAll(xte))
	st := stats.R2(yte, single.PredictAll(xte))
	if rf <= st {
		t.Errorf("forest R2 %.4f should beat single tree %.4f on noisy data", rf, st)
	}
}

func TestPartialDependenceTracksSignal(t *testing.T) {
	// y = 10·sin(3·x0) + noise-features: the PD curve along x0 should
	// follow the sine shape, and a noise feature's curve should stay
	// nearly flat.
	x, y := synth(300, 6, 101, 0.2)
	f := Train(x, y, Config{Trees: 80, Bootstrap: true, Seed: 7})
	grid := []float64{0.05, 0.25, 0.5, 0.75, 0.95}
	pd0 := f.PartialDependence(0, grid)
	pd4 := f.PartialDependence(4, grid)
	span := func(v []float64) float64 {
		lo, hi := v[0], v[0]
		for _, x := range v {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return hi - lo
	}
	if span(pd0) < 4 {
		t.Errorf("signal PD span %v too flat: %v", span(pd0), pd0)
	}
	if span(pd4) > span(pd0)/4 {
		t.Errorf("noise PD span %v should be far below signal %v", span(pd4), span(pd0))
	}
	// The sine rises from x=0.05 to its peak near x=0.5 (sin peaks at
	// 3x = π/2, x ≈ 0.52).
	if !(pd0[2] > pd0[0]) {
		t.Errorf("PD curve shape wrong: %v", pd0)
	}
}

func TestPartialDependencePanicsOutOfRange(t *testing.T) {
	x, y := synth(30, 3, 102, 0)
	f := Train(x, y, Config{Trees: 10, Bootstrap: true, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Error("out-of-range feature should panic")
		}
	}()
	f.PartialDependence(7, []float64{0.5})
}
