package forest

import (
	"fmt"
	"math"

	"repro/internal/par"
	"repro/internal/sample"
	"repro/internal/stats"
)

// Config controls forest training.
type Config struct {
	// Trees is the ensemble size (default 100).
	Trees int
	// Tree configures individual tree growth.
	Tree TreeConfig
	// Bootstrap draws each tree's training set with replacement
	// (Random Forest). Extremely Randomized Trees conventionally use
	// the full sample (set Bootstrap=false, Tree.Extra=true).
	Bootstrap bool
	// Seed makes training deterministic.
	Seed uint64
	// Workers trains trees on this many goroutines (<= 0 selects
	// GOMAXPROCS). Each tree draws from its own RNG split off the seed,
	// so any worker count yields the bit-identical forest.
	Workers int
}

// RFDefaults returns the Random-Forest configuration used by
// ROBOTune's parameter selection.
func RFDefaults() Config {
	return Config{Trees: 100, Bootstrap: true, Tree: TreeConfig{MinLeaf: 1}}
}

// ETDefaults returns the Extremely-Randomized-Trees configuration
// compared in Figure 2.
func ETDefaults() Config {
	return Config{Trees: 100, Bootstrap: false, Tree: TreeConfig{MinLeaf: 1, Extra: true}}
}

// Forest is a trained ensemble of regression trees.
type Forest struct {
	trees []*Tree
	inBag [][]bool // inBag[t][i]: sample i used to train tree t
	x     [][]float64
	y     []float64
	cfg   Config
}

// Train grows a forest on x (rows = samples) and y. It panics on
// empty or ragged input so misuse fails loudly during development.
func Train(x [][]float64, y []float64, cfg Config) *Forest {
	if len(x) == 0 || len(x) != len(y) {
		panic(fmt.Sprintf("forest: bad training shape: %d samples, %d targets", len(x), len(y)))
	}
	d := len(x[0])
	for i, r := range x {
		if len(r) != d {
			panic(fmt.Sprintf("forest: ragged row %d", i))
		}
	}
	if cfg.Trees <= 0 {
		cfg.Trees = 100
	}
	cfg.Tree = cfg.Tree.withDefaults(d)

	f := &Forest{
		trees: make([]*Tree, cfg.Trees),
		inBag: make([][]bool, cfg.Trees),
		x:     x,
		y:     y,
		cfg:   cfg,
	}
	n := len(x)
	par.ForEach(cfg.Workers, cfg.Trees, func(t int) {
		rng := sample.NewRNG(par.SplitSeed(cfg.Seed, uint64(t)))
		idx := make([]int, n)
		bag := make([]bool, n)
		if cfg.Bootstrap {
			for i := range idx {
				j := rng.IntN(n)
				idx[i] = j
				bag[j] = true
			}
		} else {
			for i := range idx {
				idx[i] = i
				bag[i] = true
			}
		}
		f.trees[t] = growTree(x, y, idx, cfg.Tree, rng)
		f.inBag[t] = bag
	})
	return f
}

// Predict returns the ensemble mean prediction for one feature vector.
func (f *Forest) Predict(xr []float64) float64 {
	var s float64
	for _, t := range f.trees {
		s += t.Predict(xr)
	}
	return s / float64(len(f.trees))
}

// PredictAll returns predictions for a batch of feature vectors.
func (f *Forest) PredictAll(xs [][]float64) []float64 {
	out := make([]float64, len(xs))
	for i, xr := range xs {
		out[i] = f.Predict(xr)
	}
	return out
}

// Trees returns the ensemble size.
func (f *Forest) Trees() int { return len(f.trees) }

// OOBR2 returns the out-of-bag R² of the forest: each training sample
// is predicted only by trees whose bootstrap excluded it. Samples
// that are in-bag everywhere are skipped. Returns NaN when no sample
// has OOB coverage (e.g. Bootstrap=false).
func (f *Forest) OOBR2() float64 {
	pred, obs := f.oobPredictions(nil, nil)
	if len(obs) == 0 {
		return math.NaN()
	}
	return stats.R2(obs, pred)
}

// oobPredictions computes OOB predictions, optionally permuting the
// feature columns in permCols using permutation perm (perm[i] gives
// the row whose value replaces row i's). perm == nil means no
// permutation.
func (f *Forest) oobPredictions(permCols []int, perm []int) (pred, obs []float64) {
	n := len(f.x)
	sums := make([]float64, n)
	counts := make([]int, n)
	row := make([]float64, len(f.x[0]))
	for t, tree := range f.trees {
		bag := f.inBag[t]
		for i := 0; i < n; i++ {
			if bag[i] {
				continue
			}
			xr := f.x[i]
			if perm != nil {
				copy(row, xr)
				for _, c := range permCols {
					row[c] = f.x[perm[i]][c]
				}
				xr = row
			}
			sums[i] += tree.Predict(xr)
			counts[i]++
		}
	}
	for i := 0; i < n; i++ {
		if counts[i] == 0 {
			continue
		}
		pred = append(pred, sums[i]/float64(counts[i]))
		obs = append(obs, f.y[i])
	}
	return pred, obs
}

// GroupImportance holds one permutation-importance result.
type GroupImportance struct {
	// Group is the parameter indices permuted jointly.
	Group []int
	// Drop is the mean decrease in OOB R² across repeats — the MDA
	// importance of §3.3 ("record a baseline using the OOB R² score
	// ... then each of the feature columns is permuted").
	Drop float64
}

// PermutationImportance computes MDA importances for the given
// feature groups. Collinear parameters appear in one group and are
// permuted together (§3.3 "Handling Collinearity"). Each group is
// permuted `repeats` times (the paper uses 10) and the R² drops are
// averaged. Results are in the same order as groups.
//
// Every (group, repeat) cell draws its permutation from an RNG split
// off the seed and runs on the worker pool (workers <= 0 selects
// GOMAXPROCS); the per-group drops are then summed in repeat order,
// so any worker count produces bit-identical importances.
func (f *Forest) PermutationImportance(groups [][]int, repeats int, seed uint64, workers int) []GroupImportance {
	if repeats < 1 {
		repeats = 1
	}
	basePred, baseObs := f.oobPredictions(nil, nil)
	baseline := stats.R2(baseObs, basePred)

	n := len(f.x)
	drops := make([]float64, len(groups)*repeats)
	par.ForEach(workers, len(drops), func(job int) {
		g := job / repeats
		rng := sample.NewRNG(par.SplitSeed(seed, uint64(job)))
		perm := rng.Perm(n)
		pred, obs := f.oobPredictions(groups[g], perm)
		drops[job] = baseline - stats.R2(obs, pred)
	})

	out := make([]GroupImportance, len(groups))
	for g, cols := range groups {
		var totalDrop float64
		for r := 0; r < repeats; r++ {
			totalDrop += drops[g*repeats+r]
		}
		out[g] = GroupImportance{Group: cols, Drop: totalDrop / float64(repeats)}
	}
	return out
}

// MDIImportance returns the Mean-Decrease-in-Impurity importance per
// feature (normalized to sum to 1), the conventional RF importance
// the paper rejects as unreliable for mixed-scale parameters (§3.3).
// It is retained for the MDI-vs-MDA ablation.
func (f *Forest) MDIImportance() []float64 {
	d := len(f.x[0])
	imp := make([]float64, d)
	for _, t := range f.trees {
		for i := range t.nodes {
			nd := &t.nodes[i]
			if nd.feature >= 0 {
				imp[nd.feature] += nd.impurityDec
			}
		}
	}
	var total float64
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}

// PartialDependence returns the model's average prediction as the
// given feature sweeps across grid values with all other features
// held at their observed joint distribution (Friedman's partial
// dependence). It is the model-side counterpart of an empirical
// parameter sweep: selection says *whether* a parameter matters, the
// PD curve says *how*.
func (f *Forest) PartialDependence(feature int, grid []float64) []float64 {
	if feature < 0 || feature >= len(f.x[0]) {
		panic(fmt.Sprintf("forest: feature %d out of range", feature))
	}
	out := make([]float64, len(grid))
	row := make([]float64, len(f.x[0]))
	for gi, v := range grid {
		var sum float64
		for _, xr := range f.x {
			copy(row, xr)
			row[feature] = v
			sum += f.Predict(row)
		}
		out[gi] = sum / float64(len(f.x))
	}
	return out
}
