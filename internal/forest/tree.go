// Package forest implements the tree-based regressors ROBOTune uses
// for parameter selection (§3.3): CART regression trees, bagged
// Random Forests with out-of-bag scoring, Extremely Randomized Trees,
// and both Mean-Decrease-in-Accuracy (permutation, with collinear
// groups permuted jointly) and Mean-Decrease-in-Impurity importances.
package forest

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// TreeConfig controls individual tree growth.
type TreeConfig struct {
	// MaxFeatures is the number of candidate features examined per
	// split; <= 0 selects all features, scikit-learn's regression
	// default.
	MaxFeatures int
	// MinLeaf is the minimum samples per leaf (default 1).
	MinLeaf int
	// MinSplit is the minimum samples required to split (default 2).
	MinSplit int
	// MaxDepth limits tree depth; 0 means unlimited.
	MaxDepth int
	// Extra switches to Extremely-Randomized splits: one uniformly
	// random threshold per candidate feature instead of an exhaustive
	// scan.
	Extra bool
}

func (c TreeConfig) withDefaults(d int) TreeConfig {
	if c.MaxFeatures <= 0 {
		c.MaxFeatures = d
	}
	if c.MaxFeatures > d {
		c.MaxFeatures = d
	}
	if c.MinLeaf < 1 {
		c.MinLeaf = 1
	}
	if c.MinSplit < 2 {
		c.MinSplit = 2
	}
	return c
}

// node is one tree node in a flattened array representation.
type node struct {
	feature     int32 // -1 for leaves
	left, right int32
	threshold   float64
	value       float64 // mean target at the node (prediction for leaves)
	impurityDec float64 // weighted SSE decrease of the split (for MDI)
}

// Tree is a grown CART regression tree.
type Tree struct {
	nodes []node
	dim   int
}

// growTree builds a tree on the sample indices idx of (x, y).
func growTree(x [][]float64, y []float64, idx []int, cfg TreeConfig, rng *rand.Rand) *Tree {
	t := &Tree{dim: len(x[0])}
	t.build(x, y, idx, cfg, rng, 0)
	return t
}

func (t *Tree) build(x [][]float64, y []float64, idx []int, cfg TreeConfig, rng *rand.Rand, depth int) int32 {
	me := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{feature: -1})

	n := len(idx)
	var sum float64
	for _, i := range idx {
		sum += y[i]
	}
	mean := sum / float64(n)
	t.nodes[me].value = mean

	if n < cfg.MinSplit || (cfg.MaxDepth > 0 && depth >= cfg.MaxDepth) || constantTarget(y, idx) {
		return me
	}

	feat, thr, dec, ok := t.bestSplit(x, y, idx, mean, cfg, rng)
	if !ok {
		return me
	}
	left := make([]int, 0, n/2)
	right := make([]int, 0, n/2)
	for _, i := range idx {
		if x[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < cfg.MinLeaf || len(right) < cfg.MinLeaf {
		return me
	}
	t.nodes[me].feature = int32(feat)
	t.nodes[me].threshold = thr
	t.nodes[me].impurityDec = dec
	l := t.build(x, y, left, cfg, rng, depth+1)
	t.nodes[me].left = l
	r := t.build(x, y, right, cfg, rng, depth+1)
	t.nodes[me].right = r
	return me
}

func constantTarget(y []float64, idx []int) bool {
	first := y[idx[0]]
	for _, i := range idx[1:] {
		if y[i] != first {
			return false
		}
	}
	return true
}

// bestSplit searches candidate features for the split with the
// greatest SSE reduction. For Extra trees a single random threshold
// per feature is evaluated instead of every midpoint.
func (t *Tree) bestSplit(x [][]float64, y []float64, idx []int, mean float64, cfg TreeConfig, rng *rand.Rand) (feat int, thr, dec float64, ok bool) {
	n := float64(len(idx))
	var parentSSE float64
	for _, i := range idx {
		d := y[i] - mean
		parentSSE += d * d
	}

	features := rng.Perm(t.dim)[:cfg.MaxFeatures]
	bestDec := 0.0
	for _, f := range features {
		if cfg.Extra {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, i := range idx {
				v := x[i][f]
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if lo == hi {
				continue
			}
			cand := lo + rng.Float64()*(hi-lo)
			if d, good := splitSSEDec(x, y, idx, f, cand, parentSSE, cfg.MinLeaf); good && d > bestDec {
				bestDec, feat, thr, ok = d, f, cand, true
			}
			continue
		}
		// Exhaustive scan over sorted unique values via prefix sums.
		order := make([]int, len(idx))
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return x[order[a]][f] < x[order[b]][f] })
		var sumL, sumSqL float64
		var sumT, sumSqT float64
		for _, i := range order {
			sumT += y[i]
			sumSqT += y[i] * y[i]
		}
		for k := 0; k < len(order)-1; k++ {
			i := order[k]
			sumL += y[i]
			sumSqL += y[i] * y[i]
			if x[order[k]][f] == x[order[k+1]][f] {
				continue
			}
			nl := float64(k + 1)
			nr := n - nl
			if int(nl) < cfg.MinLeaf || int(nr) < cfg.MinLeaf {
				continue
			}
			sseL := sumSqL - sumL*sumL/nl
			sumR := sumT - sumL
			sseR := (sumSqT - sumSqL) - sumR*sumR/nr
			d := parentSSE - sseL - sseR
			if d > bestDec {
				bestDec = d
				feat = f
				thr = (x[order[k]][f] + x[order[k+1]][f]) / 2
				ok = true
			}
		}
	}
	return feat, thr, bestDec, ok
}

// splitSSEDec evaluates one candidate (feature, threshold) split.
func splitSSEDec(x [][]float64, y []float64, idx []int, f int, thr, parentSSE float64, minLeaf int) (float64, bool) {
	var sumL, sumSqL, sumR, sumSqR float64
	var nl, nr float64
	for _, i := range idx {
		v := y[i]
		if x[i][f] <= thr {
			sumL += v
			sumSqL += v * v
			nl++
		} else {
			sumR += v
			sumSqR += v * v
			nr++
		}
	}
	if int(nl) < minLeaf || int(nr) < minLeaf {
		return 0, false
	}
	sseL := sumSqL - sumL*sumL/nl
	sseR := sumSqR - sumR*sumR/nr
	return parentSSE - sseL - sseR, true
}

// Predict returns the tree's prediction for a feature vector.
func (t *Tree) Predict(xr []float64) float64 {
	if len(xr) != t.dim {
		panic(fmt.Sprintf("forest: predict dim %d, tree trained on %d", len(xr), t.dim))
	}
	i := int32(0)
	for {
		nd := &t.nodes[i]
		if nd.feature < 0 {
			return nd.value
		}
		if xr[nd.feature] <= nd.threshold {
			i = nd.left
		} else {
			i = nd.right
		}
	}
}

// Depth returns the maximum depth of the tree (root = 0).
func (t *Tree) Depth() int {
	var walk func(i int32) int
	walk = func(i int32) int {
		nd := &t.nodes[i]
		if nd.feature < 0 {
			return 0
		}
		l, r := walk(nd.left), walk(nd.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(0)
}

// Leaves returns the number of leaf nodes.
func (t *Tree) Leaves() int {
	c := 0
	for i := range t.nodes {
		if t.nodes[i].feature < 0 {
			c++
		}
	}
	return c
}
