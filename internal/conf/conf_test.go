package conf

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sample"
)

func testSpace(t *testing.T) *Space {
	t.Helper()
	s, err := NewSpace([]Param{
		{Name: "cores", Kind: Int, Min: 1, Max: 32, Default: 4},
		{Name: "mem", Kind: Int, Min: 1024, Max: 65536, Log: true, Default: 2048, Unit: "MB"},
		{Name: "frac", Kind: Float, Min: 0.1, Max: 0.9, Default: 0.6},
		{Name: "flag", Kind: Bool, Default: 1},
		{Name: "codec", Kind: Categorical, Choices: []string{"a", "b", "c"}, Default: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSpaceBasics(t *testing.T) {
	s := testSpace(t)
	if s.Dim() != 5 {
		t.Fatalf("Dim = %d", s.Dim())
	}
	if p, ok := s.Param("mem"); !ok || p.Unit != "MB" {
		t.Fatal("Param lookup failed")
	}
	if _, ok := s.Param("nope"); ok {
		t.Fatal("unknown param found")
	}
	if s.IndexOf("frac") != 2 || s.IndexOf("nope") != -1 {
		t.Fatal("IndexOf wrong")
	}
	names := s.Names()
	if names[0] != "cores" || names[4] != "codec" {
		t.Fatalf("Names = %v", names)
	}
}

func TestNewSpaceRejectsBadParams(t *testing.T) {
	cases := [][]Param{
		{{Name: "", Kind: Int, Min: 0, Max: 1}},
		{{Name: "x", Kind: Int, Min: 5, Max: 5}},
		{{Name: "x", Kind: Float, Min: 0, Max: 1, Log: true}},
		{{Name: "x", Kind: Categorical, Choices: []string{"only"}}},
		{{Name: "x", Kind: Categorical, Choices: []string{"a", "b"}, Default: 5}},
		{{Name: "x", Kind: Int, Min: 0, Max: 1}, {Name: "x", Kind: Int, Min: 0, Max: 1}},
		{{Name: "x", Kind: Kind(99), Min: 0, Max: 1}},
	}
	for i, ps := range cases {
		if _, err := NewSpace(ps); err == nil {
			t.Errorf("case %d: invalid space accepted", i)
		}
	}
}

func TestDecodeKinds(t *testing.T) {
	s := testSpace(t)
	c := s.Decode([]float64{0, 0, 0, 0, 0})
	if c.Int("cores") != 1 || c.Float("frac") != 0.1 || c.Bool("flag") || c.Choice("codec") != "a" {
		t.Fatalf("low decode: %s", c)
	}
	c = s.Decode([]float64{0.9999, 0.9999, 0.9999, 0.9999, 0.9999})
	if c.Int("cores") != 32 || c.Choice("codec") != "c" || !c.Bool("flag") {
		t.Fatalf("high decode: %s", c)
	}
	if c.Float("frac") > 0.9 {
		t.Fatalf("frac exceeded max: %v", c.Float("frac"))
	}
	if c.Int("mem") > 65536 || c.Int("mem") < 1024 {
		t.Fatalf("mem out of range: %v", c.Int("mem"))
	}
}

func TestDecodeClampsOutOfRangeUnit(t *testing.T) {
	s := testSpace(t)
	c := s.Decode([]float64{-0.5, 1.5, 2, -1, 7})
	if c.Int("cores") != 1 || c.Int("mem") != 65536 {
		t.Fatalf("clamp failed: %s", c)
	}
	if c.Choice("codec") != "c" {
		t.Fatalf("categorical clamp failed: %s", c.Choice("codec"))
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	s := SparkSpace()
	f := func(seed uint64) bool {
		rng := sample.NewRNG(seed)
		u := make([]float64, s.Dim())
		for i := range u {
			u[i] = rng.Float64()
		}
		c := s.Decode(u)
		u2 := s.Encode(c)
		c2 := s.Decode(u2)
		return c.Equal(c2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestLogScaleDistribution(t *testing.T) {
	s := testSpace(t)
	// Midpoint of a log-scaled 1024..65536 range should be near the
	// geometric mean (8192), not the arithmetic mean (~33280).
	c := s.Decode([]float64{0.5, 0.5, 0.5, 0.5, 0.5})
	mem := float64(c.Int("mem"))
	if math.Abs(mem-8192) > 100 {
		t.Fatalf("log midpoint = %v, want ~8192", mem)
	}
}

func TestDefaultOutsideRangeSurvives(t *testing.T) {
	s := SparkSpace()
	def := s.Default()
	if def.Int(ExecutorMemory) != 1024 {
		t.Fatalf("default executor memory = %d, want Spark's 1024", def.Int(ExecutorMemory))
	}
	// Encoding clamps it into the tuning range.
	u := s.Encode(def)
	c := s.Decode(u)
	if c.Int(ExecutorMemory) < 8192 {
		t.Fatalf("encoded default should clamp to range, got %d", c.Int(ExecutorMemory))
	}
}

func TestConfigAccessorsAndWith(t *testing.T) {
	s := testSpace(t)
	c := s.Default()
	c2 := c.With("cores", 16)
	if c.Int("cores") != 4 || c2.Int("cores") != 16 {
		t.Fatal("With mutated the original or failed")
	}
	if c.Equal(c2) {
		t.Fatal("Equal should be false after With")
	}
	if !c.Equal(c.Clone()) {
		t.Fatal("clone should be Equal")
	}
	if c.Key() == c2.Key() {
		t.Fatal("Key should differ for different configs")
	}
	m := c2.ToMap()
	if m["cores"] != 16 {
		t.Fatalf("ToMap = %v", m)
	}
	rt, err := s.FromRaw(m)
	if err != nil {
		t.Fatal(err)
	}
	if !rt.Equal(c2) {
		t.Fatal("FromRaw(ToMap) round trip failed")
	}
}

func TestFromRawUnknown(t *testing.T) {
	s := testSpace(t)
	if _, err := s.FromRaw(map[string]float64{"bogus": 1}); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestConfigPanicsOnUnknown(t *testing.T) {
	s := testSpace(t)
	c := s.Default()
	defer func() {
		if recover() == nil {
			t.Error("Raw of unknown parameter should panic")
		}
	}()
	c.Raw("bogus")
}

func TestChoicePanicsOnNonCategorical(t *testing.T) {
	s := testSpace(t)
	c := s.Default()
	defer func() {
		if recover() == nil {
			t.Error("Choice on an int parameter should panic")
		}
	}()
	c.Choice("cores")
}

func TestSparkSpaceShape(t *testing.T) {
	s := SparkSpace()
	if s.Dim() != 44 {
		t.Fatalf("Spark space has %d parameters, the paper tunes 44", s.Dim())
	}
	// Spot-check §5.1's example plane: cores 1-32, memory up to 180 GB.
	p, _ := s.Param(ExecutorCores)
	if p.Min != 1 || p.Max != 32 {
		t.Errorf("executor cores range %v-%v", p.Min, p.Max)
	}
	p, _ = s.Param(ExecutorMemory)
	if p.Max != 184320 {
		t.Errorf("executor memory max %v, want 180 GB", p.Max)
	}
	// The executor size joint parameter from §4.
	if p.Group != "executor.size" {
		t.Errorf("executor memory group = %q", p.Group)
	}
}

func TestSparkSpaceGroups(t *testing.T) {
	s := SparkSpace()
	groups := s.Groups()
	// Each parameter appears in exactly one group.
	seen := make(map[int]bool)
	for _, g := range groups {
		for _, i := range g {
			if seen[i] {
				t.Fatalf("parameter %d in two groups", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != s.Dim() {
		t.Fatalf("groups cover %d of %d parameters", len(seen), s.Dim())
	}
	// The executor-size group has exactly cores+memory.
	var execGroup []int
	for _, g := range groups {
		if s.GroupName(g) == "executor.size" {
			execGroup = g
		}
	}
	if len(execGroup) != 2 {
		t.Fatalf("executor.size group = %v", execGroup)
	}
	// The serializer group bundles the Kryo dependents (§3.3).
	var serGroup []int
	for _, g := range groups {
		if s.GroupName(g) == "serializer" {
			serGroup = g
		}
	}
	if len(serGroup) != 4 {
		t.Fatalf("serializer group has %d members, want 4", len(serGroup))
	}
}

func TestSubspace(t *testing.T) {
	s := SparkSpace()
	base := s.Default()
	ss, err := s.Sub([]string{ExecutorCores, ExecutorMemory, MemoryFraction}, base)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Dim() != 3 {
		t.Fatalf("subspace dim = %d", ss.Dim())
	}
	c := ss.Decode([]float64{0.5, 0.5, 0.5})
	// Free parameters move; frozen ones keep base values.
	if c.Int(ExecutorCores) == base.Int(ExecutorCores) && c.Int(ExecutorMemory) == base.Int(ExecutorMemory) {
		t.Error("free parameters did not move from defaults")
	}
	if c.Int(DriverMemory) != base.Int(DriverMemory) || c.Bool(ShuffleCompress) != base.Bool(ShuffleCompress) {
		t.Error("frozen parameters changed")
	}
	// Round trip through the subspace encoder.
	u := ss.Encode(c)
	c2 := ss.Decode(u)
	if !c.Equal(c2) {
		t.Error("subspace encode/decode round trip failed")
	}
}

func TestSubspaceErrors(t *testing.T) {
	s := SparkSpace()
	base := s.Default()
	if _, err := s.Sub([]string{"bogus"}, base); err == nil {
		t.Error("unknown name accepted")
	}
	if _, err := s.Sub(nil, base); err == nil {
		t.Error("empty subspace accepted")
	}
	if _, err := s.Sub([]string{ExecutorCores, ExecutorCores}, base); err == nil {
		t.Error("duplicate name accepted")
	}
	other := testSpace(t)
	if _, err := s.Sub([]string{ExecutorCores}, other.Default()); err == nil {
		t.Error("foreign base config accepted")
	}
}

func TestFormatRaw(t *testing.T) {
	s := testSpace(t)
	c := s.Default()
	if got := c.String(); got == "" || got == "<nil config>" {
		t.Fatalf("String = %q", got)
	}
	p, _ := s.Param("mem")
	if got := p.FormatRaw(2048); got != "2048MB" {
		t.Fatalf("FormatRaw = %q", got)
	}
	p, _ = s.Param("flag")
	if p.FormatRaw(1) != "true" || p.FormatRaw(0) != "false" {
		t.Fatal("bool formatting")
	}
	p, _ = s.Param("codec")
	if p.FormatRaw(1) != "b" {
		t.Fatal("categorical formatting")
	}
}

func TestDecodeDimensionPanics(t *testing.T) {
	s := testSpace(t)
	defer func() {
		if recover() == nil {
			t.Error("Decode with wrong dimension should panic")
		}
	}()
	s.Decode([]float64{0.5})
}

func TestLHSThroughSpace(t *testing.T) {
	// Integration: LHS designs decode to valid in-range configs.
	s := SparkSpace()
	rng := sample.NewRNG(5)
	design := sample.LHS(100, s.Dim(), rng)
	for _, u := range design {
		c := s.Decode(u)
		for i, p := range s.Params() {
			v := c.RawAt(i)
			switch p.Kind {
			case Int, Float:
				if v < p.Min || v > p.Max {
					t.Fatalf("%s = %v out of [%v,%v]", p.Name, v, p.Min, p.Max)
				}
			case Bool:
				if v != 0 && v != 1 {
					t.Fatalf("%s = %v not boolean", p.Name, v)
				}
			case Categorical:
				if int(v) < 0 || int(v) >= len(p.Choices) {
					t.Fatalf("%s choice %v out of range", p.Name, v)
				}
			}
		}
	}
}

func TestDecodeUnitMonotoneProperty(t *testing.T) {
	// For numeric parameters (linear or log), DecodeUnit must be
	// non-decreasing in u — the sampler relies on stratification
	// surviving the decode.
	s := SparkSpace()
	f := func(seed uint64, pIdx uint8, a, b uint16) bool {
		p := s.Params()[int(pIdx)%s.Dim()]
		if p.Kind == Bool || p.Kind == Categorical {
			return true
		}
		ua := float64(a) / 65536
		ub := float64(b) / 65536
		if ua > ub {
			ua, ub = ub, ua
		}
		return p.DecodeUnit(ua) <= p.DecodeUnit(ub)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestEncodeRawMonotoneProperty(t *testing.T) {
	s := SparkSpace()
	f := func(seed uint64, pIdx uint8, a, b uint16) bool {
		p := s.Params()[int(pIdx)%s.Dim()]
		if p.Kind == Bool || p.Kind == Categorical {
			return true
		}
		va := p.Min + float64(a)/65536*(p.Max-p.Min)
		vb := p.Min + float64(b)/65536*(p.Max-p.Min)
		if va > vb {
			va, vb = vb, va
		}
		return p.EncodeRaw(va) <= p.EncodeRaw(vb)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestSubspaceEncodeDecodeProperty(t *testing.T) {
	s := SparkSpace()
	ss, err := s.Sub([]string{ExecutorCores, ExecutorMemory, MemoryFraction, Serializer}, s.Default())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		rng := sample.NewRNG(seed)
		u := make([]float64, ss.Dim())
		for i := range u {
			u[i] = rng.Float64()
		}
		c := ss.Decode(u)
		c2 := ss.Decode(ss.Encode(c))
		return c.Equal(c2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSpaceDescribe(t *testing.T) {
	out := SparkSpace().Describe()
	for _, want := range []string{
		"44 parameters", ExecutorMemory, "8192MB .. 184320MB (log)",
		"java, kryo", "executor.size", "false / true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q", want)
		}
	}
}
