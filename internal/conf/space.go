package conf

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Space is an ordered collection of parameters defining a
// configuration search space.
type Space struct {
	params []Param
	index  map[string]int
}

// NewSpace builds a Space from parameter definitions. It returns an
// error if any definition is invalid or a name is duplicated.
func NewSpace(params []Param) (*Space, error) {
	s := &Space{
		params: append([]Param(nil), params...),
		index:  make(map[string]int, len(params)),
	}
	for i := range s.params {
		p := &s.params[i]
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if _, dup := s.index[p.Name]; dup {
			return nil, fmt.Errorf("conf: duplicate parameter %q", p.Name)
		}
		s.index[p.Name] = i
	}
	return s, nil
}

// MustNewSpace is NewSpace that panics on error, for static spaces.
func MustNewSpace(params []Param) *Space {
	s, err := NewSpace(params)
	if err != nil {
		panic(err)
	}
	return s
}

// Dim returns the number of parameters.
func (s *Space) Dim() int { return len(s.params) }

// Params returns the parameter definitions in order.
func (s *Space) Params() []Param { return s.params }

// Names returns the parameter names in order.
func (s *Space) Names() []string {
	out := make([]string, len(s.params))
	for i := range s.params {
		out[i] = s.params[i].Name
	}
	return out
}

// Param returns the definition of the named parameter and whether it
// exists.
func (s *Space) Param(name string) (Param, bool) {
	i, ok := s.index[name]
	if !ok {
		return Param{}, false
	}
	return s.params[i], true
}

// IndexOf returns the position of the named parameter, or -1.
func (s *Space) IndexOf(name string) int {
	i, ok := s.index[name]
	if !ok {
		return -1
	}
	return i
}

// Decode maps a unit-cube point to a Config. It panics if the point's
// dimension does not match the space.
func (s *Space) Decode(u []float64) Config {
	if len(u) != len(s.params) {
		panic(fmt.Sprintf("conf: Decode dimension %d, space has %d", len(u), len(s.params)))
	}
	raw := make([]float64, len(u))
	for i := range u {
		raw[i] = s.params[i].DecodeUnit(u[i])
	}
	return Config{space: s, raw: raw}
}

// Encode maps a Config from this space back to the unit cube.
func (s *Space) Encode(c Config) []float64 {
	if c.space != s {
		panic("conf: Encode of config from a different space")
	}
	u := make([]float64, len(s.params))
	for i := range s.params {
		u[i] = s.params[i].EncodeRaw(c.raw[i])
	}
	return u
}

// Default returns the framework's out-of-the-box configuration. Raw
// defaults are used verbatim even when they fall outside tuning
// ranges (Spark's 1 GB default executor memory is the canonical
// example — §5.2 of the paper shows it OOMing large workloads).
func (s *Space) Default() Config {
	raw := make([]float64, len(s.params))
	for i := range s.params {
		raw[i] = s.params[i].Default
	}
	return Config{space: s, raw: raw}
}

// FromRaw builds a Config from a name→raw-value map, starting at the
// defaults. Unknown names are reported as an error.
func (s *Space) FromRaw(values map[string]float64) (Config, error) {
	c := s.Default()
	for name, v := range values {
		i, ok := s.index[name]
		if !ok {
			return Config{}, fmt.Errorf("conf: unknown parameter %q", name)
		}
		c.raw[i] = v
	}
	return c, nil
}

// Groups returns the collinearity groups as slices of parameter
// indices. Parameters with a shared non-empty Group tag form one
// group; every other parameter is a singleton group. Groups are
// ordered by first member index, so the result is deterministic.
func (s *Space) Groups() [][]int {
	byTag := make(map[string][]int)
	var order []string
	for i := range s.params {
		tag := s.params[i].Group
		if tag == "" {
			tag = fmt.Sprintf("\x00singleton-%d", i)
		}
		if _, seen := byTag[tag]; !seen {
			order = append(order, tag)
		}
		byTag[tag] = append(byTag[tag], i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return byTag[order[a]][0] < byTag[order[b]][0]
	})
	out := make([][]int, 0, len(order))
	for _, tag := range order {
		out = append(out, byTag[tag])
	}
	return out
}

// GroupName returns a display name for a group of parameter indices:
// the Group tag when present, otherwise the single member's name.
func (s *Space) GroupName(group []int) string {
	if len(group) == 1 {
		return s.params[group[0]].Name
	}
	tag := s.params[group[0]].Group
	if tag != "" {
		return tag
	}
	names := make([]string, len(group))
	for i, gi := range group {
		names[i] = s.params[gi].Name
	}
	return strings.Join(names, "+")
}

// Sub builds a Subspace over the named parameters. Values of the
// remaining parameters are frozen to those of base. It returns an
// error for unknown names or a base from another space.
func (s *Space) Sub(names []string, base Config) (*Subspace, error) {
	if base.space != s {
		return nil, fmt.Errorf("conf: Sub base config belongs to a different space")
	}
	sel := make([]int, 0, len(names))
	seen := make(map[int]bool)
	for _, n := range names {
		i, ok := s.index[n]
		if !ok {
			return nil, fmt.Errorf("conf: unknown parameter %q", n)
		}
		if seen[i] {
			return nil, fmt.Errorf("conf: duplicate parameter %q in subspace", n)
		}
		seen[i] = true
		sel = append(sel, i)
	}
	if len(sel) == 0 {
		return nil, fmt.Errorf("conf: empty subspace")
	}
	return &Subspace{parent: s, sel: sel, base: base.Clone()}, nil
}

// Subspace is a low-dimensional view of a Space over selected
// parameters; the rest are frozen to a base configuration. ROBOTune's
// BO engine searches a Subspace produced by parameter selection.
type Subspace struct {
	parent *Space
	sel    []int
	base   Config
}

// Dim returns the number of free parameters.
func (ss *Subspace) Dim() int { return len(ss.sel) }

// Parent returns the full space.
func (ss *Subspace) Parent() *Space { return ss.parent }

// Names returns the free parameter names in order.
func (ss *Subspace) Names() []string {
	out := make([]string, len(ss.sel))
	for i, idx := range ss.sel {
		out[i] = ss.parent.params[idx].Name
	}
	return out
}

// Decode maps a low-dimensional unit point to a full Config: selected
// parameters take decoded values, the rest keep the base values.
func (ss *Subspace) Decode(u []float64) Config {
	if len(u) != len(ss.sel) {
		panic(fmt.Sprintf("conf: Subspace.Decode dimension %d, subspace has %d", len(u), len(ss.sel)))
	}
	c := ss.base.Clone()
	for i, idx := range ss.sel {
		c.raw[idx] = ss.parent.params[idx].DecodeUnit(u[i])
	}
	return c
}

// Encode projects a full Config onto the subspace's unit cube.
func (ss *Subspace) Encode(c Config) []float64 {
	if c.space != ss.parent {
		panic("conf: Subspace.Encode of config from a different space")
	}
	u := make([]float64, len(ss.sel))
	for i, idx := range ss.sel {
		u[i] = ss.parent.params[idx].EncodeRaw(c.raw[idx])
	}
	return u
}

// Fingerprint returns a short stable hash of the space's structure —
// parameter names, kinds, bounds, scales and choices in order. Durable
// session journals store it so a resume against a space with different
// parameters or bounds (which would silently remap every recorded
// config) is rejected up front instead of producing garbage.
func (s *Space) Fingerprint() string {
	h := fnv.New64a()
	for i := range s.params {
		p := &s.params[i]
		fmt.Fprintf(h, "%s|%d|%g|%g|%t|%g|%s|", p.Name, p.Kind, p.Min, p.Max, p.Log, p.Default, p.Group)
		for _, c := range p.Choices {
			fmt.Fprintf(h, "%s,", c)
		}
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Describe renders the space as a fixed-width reference table: every
// parameter with its type, range/choices, default and collinearity
// group (robosim's -params flag).
func (s *Space) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d parameters\n", s.Dim())
	fmt.Fprintf(&sb, "%-44s %-12s %-24s %-14s %s\n", "name", "type", "range / choices", "default", "group")
	sb.WriteString(strings.Repeat("-", 110))
	sb.WriteByte('\n')
	for i := range s.params {
		p := &s.params[i]
		var rng string
		switch p.Kind {
		case Bool:
			rng = "false / true"
		case Categorical:
			rng = strings.Join(p.Choices, ", ")
		default:
			scale := ""
			if p.Log {
				scale = " (log)"
			}
			rng = fmt.Sprintf("%s .. %s%s", p.FormatRaw(p.Min), p.FormatRaw(p.Max), scale)
		}
		fmt.Fprintf(&sb, "%-44s %-12s %-24s %-14s %s\n",
			p.Name, p.Kind.String(), rng, p.FormatRaw(p.Default), p.Group)
	}
	return sb.String()
}
