package conf

import (
	"fmt"
	"sort"
	"strings"
)

// Config is a concrete assignment of raw values to every parameter of
// a Space. Configs are immutable from the caller's perspective; use
// With to derive modified copies.
type Config struct {
	space *Space
	raw   []float64
}

// Space returns the space the config belongs to.
func (c Config) Space() *Space { return c.space }

// Valid reports whether the config is non-zero (belongs to a space).
func (c Config) Valid() bool { return c.space != nil }

// Clone returns a deep copy of the config.
func (c Config) Clone() Config {
	return Config{space: c.space, raw: append([]float64(nil), c.raw...)}
}

// Raw returns the raw value of the named parameter. It panics on an
// unknown name so misconfigured simulators fail loudly.
func (c Config) Raw(name string) float64 {
	i, ok := c.space.index[name]
	if !ok {
		panic(fmt.Sprintf("conf: unknown parameter %q", name))
	}
	return c.raw[i]
}

// RawAt returns the raw value at parameter index i.
func (c Config) RawAt(i int) float64 { return c.raw[i] }

// Int returns the named parameter as an int64.
func (c Config) Int(name string) int64 { return int64(c.Raw(name)) }

// Float returns the named parameter as a float64.
func (c Config) Float(name string) float64 { return c.Raw(name) }

// Bool returns the named parameter as a bool.
func (c Config) Bool(name string) bool { return c.Raw(name) >= 0.5 }

// Choice returns the named categorical parameter's selected string.
func (c Config) Choice(name string) string {
	i, ok := c.space.index[name]
	if !ok {
		panic(fmt.Sprintf("conf: unknown parameter %q", name))
	}
	p := &c.space.params[i]
	if p.Kind != Categorical {
		panic(fmt.Sprintf("conf: parameter %q is %v, not categorical", name, p.Kind))
	}
	idx := int(c.raw[i])
	if idx < 0 || idx >= len(p.Choices) {
		panic(fmt.Sprintf("conf: parameter %q choice index %d out of range", name, idx))
	}
	return p.Choices[idx]
}

// With returns a copy of the config with the named parameter set to
// the given raw value.
func (c Config) With(name string, raw float64) Config {
	i, ok := c.space.index[name]
	if !ok {
		panic(fmt.Sprintf("conf: unknown parameter %q", name))
	}
	out := c.Clone()
	out.raw[i] = raw
	return out
}

// ToMap returns the config as a name→raw-value map, for persistence.
func (c Config) ToMap() map[string]float64 {
	m := make(map[string]float64, len(c.raw))
	for i := range c.space.params {
		m[c.space.params[i].Name] = c.raw[i]
	}
	return m
}

// Equal reports whether two configs from the same space hold
// identical raw values.
func (c Config) Equal(o Config) bool {
	if c.space != o.space || len(c.raw) != len(o.raw) {
		return false
	}
	for i := range c.raw {
		if c.raw[i] != o.raw[i] {
			return false
		}
	}
	return true
}

// Key returns a deterministic string fingerprint of the config,
// usable as a map key for memoization.
func (c Config) Key() string {
	var b strings.Builder
	for i := range c.raw {
		fmt.Fprintf(&b, "%g|", c.raw[i])
	}
	return b.String()
}

// String renders the config as "name=value" pairs sorted by name.
func (c Config) String() string {
	if c.space == nil {
		return "<nil config>"
	}
	parts := make([]string, 0, len(c.raw))
	for i := range c.space.params {
		p := &c.space.params[i]
		parts = append(parts, fmt.Sprintf("%s=%s", p.Name, p.FormatRaw(c.raw[i])))
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}
