package conf_test

import (
	"fmt"

	"repro/internal/conf"
)

// The Spark space decodes unit-cube points (from the samplers and the
// BO engine) into typed configurations.
func ExampleSpace_Decode() {
	space := conf.SparkSpace()
	u := make([]float64, space.Dim())
	for i := range u {
		u[i] = 0.5
	}
	c := space.Decode(u)
	fmt.Println("cores:", c.Int(conf.ExecutorCores))
	fmt.Println("serializer:", c.Choice(conf.Serializer))
	fmt.Println("compress:", c.Bool(conf.ShuffleCompress))
	// Output:
	// cores: 17
	// serializer: kryo
	// compress: true
}

// Subspaces freeze unselected parameters — the output of ROBOTune's
// parameter selection becomes a low-dimensional search space.
func ExampleSpace_Sub() {
	space := conf.SparkSpace()
	sub, err := space.Sub([]string{conf.ExecutorCores, conf.ExecutorMemory}, space.Default())
	if err != nil {
		panic(err)
	}
	c := sub.Decode([]float64{0.999, 0.999})
	fmt.Println("dims:", sub.Dim())
	fmt.Println("cores:", c.Int(conf.ExecutorCores))
	fmt.Println("parallelism stays default:", c.Int(conf.DefaultParallelism))
	// Output:
	// dims: 2
	// cores: 32
	// parallelism stays default: 160
}

// Spaces for other systems load from JSON (§4's portability hook).
func ExampleParseSpace() {
	space, err := conf.ParseSpace([]byte(`{
	  "system": "cache",
	  "params": [
	    {"name": "size_mb", "type": "int", "min": 64, "max": 4096, "log": true, "default": 256},
	    {"name": "policy", "type": "categorical", "choices": ["lru", "lfu"], "default": "lru"}
	  ]
	}`))
	if err != nil {
		panic(err)
	}
	def := space.Default()
	fmt.Println(def.Int("size_mb"), def.Choice("policy"))
	// Output:
	// 256 lru
}
