// Package conf models the configuration space of a cluster-based data
// analytics framework. It defines typed parameters (integer, float,
// boolean, categorical) with ranges, units, defaults and collinearity
// groups; a Space of such parameters; a bidirectional encoder between
// the unit hypercube used by the samplers/optimizers and concrete
// configurations; and subspaces over a selected subset of parameters
// (the output of ROBOTune's parameter selection).
package conf

import (
	"fmt"
	"math"
)

// Kind is the value type of a parameter.
type Kind int

const (
	// Int parameters take integer values in [Min, Max].
	Int Kind = iota
	// Float parameters take real values in [Min, Max].
	Float
	// Bool parameters are switches; Min/Max are ignored.
	Bool
	// Categorical parameters take one of Choices.
	Categorical
)

func (k Kind) String() string {
	switch k {
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	case Categorical:
		return "categorical"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Param describes one tunable parameter.
type Param struct {
	// Name is the full parameter key, e.g. "spark.executor.memory".
	Name string
	// Kind is the value type.
	Kind Kind
	// Min and Max bound numeric parameters (inclusive).
	Min, Max float64
	// Log requests logarithmic interpolation across [Min, Max]; it is
	// only meaningful for numeric parameters with Min > 0.
	Log bool
	// Choices enumerates the values of a categorical parameter.
	Choices []string
	// Default is the framework's out-of-the-box raw value: the numeric
	// value for Int/Float, 0/1 for Bool, and the choice index for
	// Categorical. Defaults may lie outside [Min, Max] (Spark's 1 GB
	// default executor memory is below any sensible tuning range).
	Default float64
	// Unit is a display suffix such as "MB", "KB", "ms".
	Unit string
	// Group names a collinearity group. Parameters sharing a non-empty
	// Group are permuted jointly during importance calculation (§3.3
	// "Handling Collinearity"). An empty Group means the parameter is
	// independent.
	Group string
	// Desc is a one-line human description.
	Desc string
}

// Validate checks the parameter definition for internal consistency.
func (p *Param) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("conf: parameter with empty name")
	}
	switch p.Kind {
	case Int, Float:
		if !(p.Min < p.Max) {
			return fmt.Errorf("conf: %s: Min %v must be < Max %v", p.Name, p.Min, p.Max)
		}
		if p.Log && p.Min <= 0 {
			return fmt.Errorf("conf: %s: log scale requires Min > 0, got %v", p.Name, p.Min)
		}
	case Bool:
		// no range to check
	case Categorical:
		if len(p.Choices) < 2 {
			return fmt.Errorf("conf: %s: categorical needs >= 2 choices", p.Name)
		}
		if p.Default < 0 || int(p.Default) >= len(p.Choices) {
			return fmt.Errorf("conf: %s: default choice index %v out of range", p.Name, p.Default)
		}
	default:
		return fmt.Errorf("conf: %s: unknown kind %d", p.Name, int(p.Kind))
	}
	return nil
}

// DecodeUnit maps a unit-cube coordinate u in [0,1) to the parameter's
// raw value. Int values are uniformly distributed over the integer
// range; Log parameters interpolate geometrically.
func (p *Param) DecodeUnit(u float64) float64 {
	if u < 0 {
		u = 0
	}
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	switch p.Kind {
	case Bool:
		if u < 0.5 {
			return 0
		}
		return 1
	case Categorical:
		idx := int(u * float64(len(p.Choices)))
		if idx >= len(p.Choices) {
			idx = len(p.Choices) - 1
		}
		return float64(idx)
	case Int:
		v := p.interp(u)
		r := math.Floor(v + 0.5)
		if r < p.Min {
			r = math.Ceil(p.Min)
		}
		if r > p.Max {
			r = math.Floor(p.Max)
		}
		return r
	default: // Float
		return p.interp(u)
	}
}

func (p *Param) interp(u float64) float64 {
	if p.Log {
		lo, hi := math.Log(p.Min), math.Log(p.Max)
		return math.Exp(lo + u*(hi-lo))
	}
	return p.Min + u*(p.Max-p.Min)
}

// EncodeRaw maps a raw value back to a unit-cube coordinate. Values
// outside the range are clamped. It is the (approximate, for Int)
// inverse of DecodeUnit: DecodeUnit(EncodeRaw(v)) == v for in-range
// values on the parameter's grid.
func (p *Param) EncodeRaw(v float64) float64 {
	switch p.Kind {
	case Bool:
		if v >= 0.5 {
			return 0.75
		}
		return 0.25
	case Categorical:
		n := float64(len(p.Choices))
		idx := math.Floor(v)
		if idx < 0 {
			idx = 0
		}
		if idx > n-1 {
			idx = n - 1
		}
		return (idx + 0.5) / n
	default:
		if v < p.Min {
			v = p.Min
		}
		if v > p.Max {
			v = p.Max
		}
		var u float64
		if p.Log {
			lo, hi := math.Log(p.Min), math.Log(p.Max)
			u = (math.Log(v) - lo) / (hi - lo)
		} else {
			u = (v - p.Min) / (p.Max - p.Min)
		}
		if u >= 1 {
			u = math.Nextafter(1, 0)
		}
		if u < 0 {
			u = 0
		}
		return u
	}
}

// FormatRaw renders a raw value with the parameter's unit for display.
func (p *Param) FormatRaw(v float64) string {
	switch p.Kind {
	case Bool:
		if v >= 0.5 {
			return "true"
		}
		return "false"
	case Categorical:
		idx := int(v)
		if idx < 0 || idx >= len(p.Choices) {
			return fmt.Sprintf("choice(%d)", idx)
		}
		return p.Choices[idx]
	case Int:
		if p.Unit != "" {
			return fmt.Sprintf("%d%s", int64(v), p.Unit)
		}
		return fmt.Sprintf("%d", int64(v))
	default:
		if p.Unit != "" {
			return fmt.Sprintf("%.4g%s", v, p.Unit)
		}
		return fmt.Sprintf("%.4g", v)
	}
}
