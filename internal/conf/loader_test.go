package conf

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const pgSpace = `{
  "system": "postgres",
  "params": [
    {"name": "shared_buffers", "type": "int", "min": 128, "max": 65536,
     "log": true, "default": 1024, "unit": "MB"},
    {"name": "wal_level", "type": "categorical",
     "choices": ["minimal", "replica", "logical"], "default": "replica"},
    {"name": "autovacuum", "type": "bool", "default": true},
    {"name": "checkpoint_completion_target", "type": "float",
     "min": 0.1, "max": 0.9, "default": 0.5, "group": "checkpoint"}
  ]
}`

func TestParseSpace(t *testing.T) {
	s, err := ParseSpace([]byte(pgSpace))
	if err != nil {
		t.Fatal(err)
	}
	if s.Dim() != 4 {
		t.Fatalf("dim = %d", s.Dim())
	}
	def := s.Default()
	if def.Int("shared_buffers") != 1024 {
		t.Errorf("shared_buffers default = %d", def.Int("shared_buffers"))
	}
	if def.Choice("wal_level") != "replica" {
		t.Errorf("wal_level default = %q", def.Choice("wal_level"))
	}
	if !def.Bool("autovacuum") {
		t.Error("autovacuum default should be true")
	}
	if def.Float("checkpoint_completion_target") != 0.5 {
		t.Error("float default wrong")
	}
	p, _ := s.Param("shared_buffers")
	if !p.Log || p.Unit != "MB" {
		t.Errorf("shared_buffers attrs: %+v", p)
	}
	p, _ = s.Param("checkpoint_completion_target")
	if p.Group != "checkpoint" {
		t.Error("group lost")
	}
	// The loaded space works with the unit-cube machinery.
	c := s.Decode([]float64{0.5, 0.5, 0.5, 0.5})
	if c.Int("shared_buffers") < 128 || c.Int("shared_buffers") > 65536 {
		t.Error("decode out of range")
	}
}

func TestParseSpaceErrors(t *testing.T) {
	cases := map[string]string{
		"not json":        `{nope`,
		"empty":           `{"params": []}`,
		"missing range":   `{"params": [{"name": "x", "type": "int"}]}`,
		"bad type":        `{"params": [{"name": "x", "type": "enum"}]}`,
		"bad default":     `{"params": [{"name": "x", "type": "int", "min": 0, "max": 1, "default": "huh"}]}`,
		"bad bool":        `{"params": [{"name": "x", "type": "bool", "default": 3}]}`,
		"unknown choice":  `{"params": [{"name": "x", "type": "categorical", "choices": ["a","b"], "default": "c"}]}`,
		"one choice":      `{"params": [{"name": "x", "type": "categorical", "choices": ["a"]}]}`,
		"duplicate names": `{"params": [{"name": "x", "type": "bool"}, {"name": "x", "type": "bool"}]}`,
	}
	for label, src := range cases {
		if _, err := ParseSpace([]byte(src)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}

func TestLoadSpaceFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "space.json")
	if err := os.WriteFile(path, []byte(pgSpace), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadSpace(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dim() != 4 {
		t.Fatalf("dim = %d", s.Dim())
	}
	if _, err := LoadSpace(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestDumpSpaceRoundTrip(t *testing.T) {
	orig := SparkSpace()
	data, err := DumpSpace(orig, "spark-2.4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "spark.executor.memory") {
		t.Fatal("dump missing parameters")
	}
	loaded, err := ParseSpace(data)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Dim() != orig.Dim() {
		t.Fatalf("round trip dim %d != %d", loaded.Dim(), orig.Dim())
	}
	// Defaults and kinds survive.
	for i, p := range orig.Params() {
		q := loaded.Params()[i]
		if p.Name != q.Name || p.Kind != q.Kind || p.Default != q.Default ||
			p.Min != q.Min || p.Max != q.Max || p.Log != q.Log || p.Group != q.Group {
			t.Errorf("param %s changed in round trip:\n  orig %+v\n  load %+v", p.Name, p, q)
		}
	}
	// And the collinearity groups are identical.
	og, lg := orig.Groups(), loaded.Groups()
	if len(og) != len(lg) {
		t.Fatalf("group count %d != %d", len(lg), len(og))
	}
}
