package conf

// Spark parameter names used throughout the repository. Keeping them
// as constants catches typos at compile time in the simulator and the
// experiment harnesses.
const (
	ExecutorCores          = "spark.executor.cores"
	ExecutorMemory         = "spark.executor.memory"
	ExecutorInstances      = "spark.executor.instances"
	ExecutorMemoryOverhead = "spark.executor.memoryOverhead"
	DriverCores            = "spark.driver.cores"
	DriverMemory           = "spark.driver.memory"
	DefaultParallelism     = "spark.default.parallelism"
	MemoryFraction         = "spark.memory.fraction"
	MemoryStorageFraction  = "spark.memory.storageFraction"
	OffHeapEnabled         = "spark.memory.offHeap.enabled"
	OffHeapSize            = "spark.memory.offHeap.size"
	ShuffleCompress        = "spark.shuffle.compress"
	ShuffleSpillCompress   = "spark.shuffle.spill.compress"
	ShuffleFileBuffer      = "spark.shuffle.file.buffer"
	ShuffleBypassThreshold = "spark.shuffle.sort.bypassMergeThreshold"
	ShuffleIOMaxRetries    = "spark.shuffle.io.maxRetries"
	ShuffleIORetryWait     = "spark.shuffle.io.retryWait"
	ShuffleIOConnections   = "spark.shuffle.io.numConnectionsPerPeer"
	ShuffleIODirectBufs    = "spark.shuffle.io.preferDirectBufs"
	ReducerMaxSizeInFlight = "spark.reducer.maxSizeInFlight"
	ShuffleServiceEnabled  = "spark.shuffle.service.enabled"
	Serializer             = "spark.serializer"
	KryoBuffer             = "spark.kryoserializer.buffer"
	KryoBufferMax          = "spark.kryoserializer.buffer.max"
	KryoReferenceTracking  = "spark.kryo.referenceTracking"
	RDDCompress            = "spark.rdd.compress"
	IOCompressionCodec     = "spark.io.compression.codec"
	LZ4BlockSize           = "spark.io.compression.lz4.blockSize"
	BroadcastCompress      = "spark.broadcast.compress"
	BroadcastBlockSize     = "spark.broadcast.blockSize"
	LocalityWait           = "spark.locality.wait"
	SchedulerReviveInt     = "spark.scheduler.revive.interval"
	TaskCPUs               = "spark.task.cpus"
	TaskMaxFailures        = "spark.task.maxFailures"
	Speculation            = "spark.speculation"
	SpeculationInterval    = "spark.speculation.interval"
	SpeculationMultiplier  = "spark.speculation.multiplier"
	SpeculationQuantile    = "spark.speculation.quantile"
	NetworkTimeout         = "spark.network.timeout"
	MemoryMapThreshold     = "spark.storage.memoryMapThreshold"
	PeriodicGCInterval     = "spark.cleaner.periodicGC.interval"
	ShuffleSortInitBuffer  = "spark.shuffle.sort.initialBufferSize"
	RPCMessageMaxSize      = "spark.rpc.message.maxSize"
	MaxPartitionBytes      = "spark.files.maxPartitionBytes"
)

// SparkSpace returns the 44-parameter Spark 2.4 configuration space
// tuned in the paper (§5.1: "a total of 44 performance-related"
// parameters, a superset of prior Spark-tuning work minus deprecated
// and unsuitable ones). Ranges follow the Spark 2.4 documentation and
// the paper's cluster (32-core, 192 GB nodes; e.g. executor cores
// 1-32, executor memory 8-180 GB per the §5.1 example).
//
// Collinearity groups mirror §3.3/§4: spark.executor.cores and
// spark.executor.memory form the "executor size" joint parameter; the
// Kryo sub-parameters are only meaningful when the Kryo serializer is
// active; the speculation sub-parameters depend on spark.speculation;
// off-heap size depends on the off-heap switch; the two shuffle
// compression switches share the shuffle-compression group.
func SparkSpace() *Space {
	return MustNewSpace(SparkParams())
}

// SparkParams returns the raw definitions behind SparkSpace, exposed
// so tests and tools can inspect or modify them.
func SparkParams() []Param {
	return []Param{
		{Name: ExecutorCores, Kind: Int, Min: 1, Max: 32, Default: 32, Group: "executor.size",
			Desc: "Cores per executor JVM (standalone default: all cores of the worker)"},
		{Name: ExecutorMemory, Kind: Int, Min: 8192, Max: 184320, Log: true, Default: 1024, Unit: "MB", Group: "executor.size",
			Desc: "Heap memory per executor (Spark default 1024MB lies below the tuning range)"},
		{Name: ExecutorInstances, Kind: Int, Min: 1, Max: 40, Default: 5,
			Desc: "Requested executor count"},
		{Name: ExecutorMemoryOverhead, Kind: Int, Min: 384, Max: 8192, Log: true, Default: 384, Unit: "MB",
			Desc: "Off-heap overhead per executor"},
		{Name: DriverCores, Kind: Int, Min: 1, Max: 8, Default: 1,
			Desc: "Cores for the driver process"},
		{Name: DriverMemory, Kind: Int, Min: 1024, Max: 16384, Log: true, Default: 1024, Unit: "MB",
			Desc: "Heap memory for the driver"},
		{Name: DefaultParallelism, Kind: Int, Min: 8, Max: 1024, Log: true, Default: 160,
			Desc: "Default number of partitions for shuffles"},
		{Name: MemoryFraction, Kind: Float, Min: 0.3, Max: 0.9, Default: 0.6, Group: "memory.mgmt",
			Desc: "Fraction of heap for execution+storage"},
		{Name: MemoryStorageFraction, Kind: Float, Min: 0.1, Max: 0.9, Default: 0.5, Group: "memory.mgmt",
			Desc: "Fraction of unified memory immune to eviction"},
		{Name: OffHeapEnabled, Kind: Bool, Default: 0, Group: "offheap",
			Desc: "Use off-heap memory for execution"},
		{Name: OffHeapSize, Kind: Int, Min: 512, Max: 16384, Log: true, Default: 2048, Unit: "MB", Group: "offheap",
			Desc: "Off-heap memory size (requires offHeap.enabled)"},
		{Name: ShuffleCompress, Kind: Bool, Default: 1, Group: "shuffle.compression",
			Desc: "Compress shuffle outputs"},
		{Name: ShuffleSpillCompress, Kind: Bool, Default: 1, Group: "shuffle.compression",
			Desc: "Compress data spilled during shuffles"},
		{Name: ShuffleFileBuffer, Kind: Int, Min: 16, Max: 512, Log: true, Default: 32, Unit: "KB",
			Desc: "In-memory buffer per shuffle file output stream"},
		{Name: ShuffleBypassThreshold, Kind: Int, Min: 50, Max: 1000, Default: 200,
			Desc: "Max reduce partitions for bypass merge sort"},
		{Name: ShuffleIOMaxRetries, Kind: Int, Min: 1, Max: 10, Default: 3,
			Desc: "Shuffle fetch retry attempts"},
		{Name: ShuffleIORetryWait, Kind: Int, Min: 1000, Max: 30000, Log: true, Default: 5000, Unit: "ms",
			Desc: "Wait between shuffle fetch retries"},
		{Name: ShuffleIOConnections, Kind: Int, Min: 1, Max: 8, Default: 1,
			Desc: "Connections per peer host for shuffle"},
		{Name: ShuffleIODirectBufs, Kind: Bool, Default: 1,
			Desc: "Prefer direct NIO buffers in shuffle transport"},
		{Name: ReducerMaxSizeInFlight, Kind: Int, Min: 8, Max: 128, Log: true, Default: 48, Unit: "MB",
			Desc: "Max simultaneous shuffle fetch per reduce task"},
		{Name: ShuffleServiceEnabled, Kind: Bool, Default: 0,
			Desc: "External shuffle service"},
		{Name: Serializer, Kind: Categorical, Choices: []string{"java", "kryo"}, Default: 0, Group: "serializer",
			Desc: "Object serializer implementation"},
		{Name: KryoBuffer, Kind: Int, Min: 16, Max: 512, Log: true, Default: 64, Unit: "KB", Group: "serializer",
			Desc: "Initial Kryo buffer per core"},
		{Name: KryoBufferMax, Kind: Int, Min: 8, Max: 128, Log: true, Default: 64, Unit: "MB", Group: "serializer",
			Desc: "Max Kryo buffer size"},
		{Name: KryoReferenceTracking, Kind: Bool, Default: 1, Group: "serializer",
			Desc: "Track references for cyclic objects in Kryo"},
		{Name: RDDCompress, Kind: Bool, Default: 0,
			Desc: "Compress serialized cached RDD partitions"},
		{Name: IOCompressionCodec, Kind: Categorical, Choices: []string{"lz4", "lzf", "snappy", "zstd"}, Default: 0,
			Desc: "Codec for internal data compression"},
		{Name: LZ4BlockSize, Kind: Int, Min: 16, Max: 512, Log: true, Default: 32, Unit: "KB",
			Desc: "Block size for the LZ4 codec"},
		{Name: BroadcastCompress, Kind: Bool, Default: 1,
			Desc: "Compress broadcast variables"},
		{Name: BroadcastBlockSize, Kind: Int, Min: 1, Max: 16, Default: 4, Unit: "MB",
			Desc: "TorrentBroadcast block size"},
		{Name: LocalityWait, Kind: Int, Min: 0, Max: 10000, Default: 3000, Unit: "ms",
			Desc: "Wait for locality-preferred scheduling"},
		{Name: SchedulerReviveInt, Kind: Int, Min: 100, Max: 5000, Log: true, Default: 1000, Unit: "ms",
			Desc: "Interval between scheduler offer revives"},
		{Name: TaskCPUs, Kind: Int, Min: 1, Max: 4, Default: 1,
			Desc: "CPUs reserved per task"},
		{Name: TaskMaxFailures, Kind: Int, Min: 1, Max: 8, Default: 4,
			Desc: "Task failures tolerated before aborting the job"},
		{Name: Speculation, Kind: Bool, Default: 0, Group: "speculation",
			Desc: "Re-launch slow tasks speculatively"},
		{Name: SpeculationInterval, Kind: Int, Min: 10, Max: 1000, Log: true, Default: 100, Unit: "ms", Group: "speculation",
			Desc: "How often to check for speculatable tasks"},
		{Name: SpeculationMultiplier, Kind: Float, Min: 1.1, Max: 5, Default: 1.5, Group: "speculation",
			Desc: "How much slower than median a task must be"},
		{Name: SpeculationQuantile, Kind: Float, Min: 0.3, Max: 0.95, Default: 0.75, Group: "speculation",
			Desc: "Fraction of tasks finished before speculating"},
		{Name: NetworkTimeout, Kind: Int, Min: 30000, Max: 600000, Log: true, Default: 120000, Unit: "ms",
			Desc: "Default network interaction timeout"},
		{Name: MemoryMapThreshold, Kind: Int, Min: 1, Max: 16, Default: 2, Unit: "MB",
			Desc: "Min block size for memory-mapping from disk"},
		{Name: PeriodicGCInterval, Kind: Int, Min: 5, Max: 120, Log: true, Default: 30, Unit: "min",
			Desc: "Context cleaner periodic GC interval"},
		{Name: ShuffleSortInitBuffer, Kind: Int, Min: 1024, Max: 65536, Log: true, Default: 4096, Unit: "B",
			Desc: "Initial size of the shuffle in-memory sorter"},
		{Name: RPCMessageMaxSize, Kind: Int, Min: 32, Max: 512, Log: true, Default: 128, Unit: "MB",
			Desc: "Max RPC message size"},
		{Name: MaxPartitionBytes, Kind: Int, Min: 16, Max: 512, Log: true, Default: 128, Unit: "MB",
			Desc: "Max bytes per partition when reading input files"},
	}
}
