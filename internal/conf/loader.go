package conf

import (
	"encoding/json"
	"fmt"
	"os"
)

// This file implements loading configuration spaces from JSON, the
// hook for applying ROBOTune to systems other than Spark (§4: "some
// modifications are needed in the parameter selection and
// configuration encoder to apply ROBOTune to other systems, while
// other components can be mostly reused"). A space definition file
// replaces the built-in 44-parameter Spark space; everything else —
// sampling, selection, BO, memoization — works unchanged.

// paramSpec is the JSON schema for one parameter.
type paramSpec struct {
	Name    string   `json:"name"`
	Type    string   `json:"type"` // "int" | "float" | "bool" | "categorical"
	Min     *float64 `json:"min,omitempty"`
	Max     *float64 `json:"max,omitempty"`
	Log     bool     `json:"log,omitempty"`
	Choices []string `json:"choices,omitempty"`
	// Default is the raw numeric default for int/float, true/false
	// for bool, or the choice string for categorical.
	Default json.RawMessage `json:"default,omitempty"`
	Unit    string          `json:"unit,omitempty"`
	Group   string          `json:"group,omitempty"`
	Desc    string          `json:"desc,omitempty"`
}

type spaceSpec struct {
	// System names the tuned system (informational).
	System string      `json:"system,omitempty"`
	Params []paramSpec `json:"params"`
}

// ParseSpace builds a Space from a JSON definition. See LoadSpace for
// the schema.
func ParseSpace(data []byte) (*Space, error) {
	var spec spaceSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("conf: parse space: %w", err)
	}
	if len(spec.Params) == 0 {
		return nil, fmt.Errorf("conf: space defines no parameters")
	}
	params := make([]Param, 0, len(spec.Params))
	for i, ps := range spec.Params {
		p, err := ps.toParam()
		if err != nil {
			return nil, fmt.Errorf("conf: param %d (%q): %w", i, ps.Name, err)
		}
		params = append(params, p)
	}
	return NewSpace(params)
}

// LoadSpace reads a JSON space definition file:
//
//	{
//	  "system": "postgres",
//	  "params": [
//	    {"name": "shared_buffers", "type": "int", "min": 128, "max": 65536,
//	     "log": true, "default": 1024, "unit": "MB"},
//	    {"name": "wal_level", "type": "categorical",
//	     "choices": ["minimal", "replica", "logical"], "default": "replica"},
//	    {"name": "autovacuum", "type": "bool", "default": true},
//	    {"name": "checkpoint_completion_target", "type": "float",
//	     "min": 0.1, "max": 0.9, "default": 0.5}
//	  ]
//	}
func LoadSpace(path string) (*Space, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("conf: read space: %w", err)
	}
	return ParseSpace(data)
}

func (ps paramSpec) toParam() (Param, error) {
	p := Param{Name: ps.Name, Unit: ps.Unit, Group: ps.Group, Desc: ps.Desc, Log: ps.Log}
	switch ps.Type {
	case "int", "float":
		if ps.Type == "int" {
			p.Kind = Int
		} else {
			p.Kind = Float
		}
		if ps.Min == nil || ps.Max == nil {
			return p, fmt.Errorf("numeric parameter needs min and max")
		}
		p.Min, p.Max = *ps.Min, *ps.Max
		if len(ps.Default) > 0 {
			var d float64
			if err := json.Unmarshal(ps.Default, &d); err != nil {
				return p, fmt.Errorf("numeric default: %w", err)
			}
			p.Default = d
		} else {
			p.Default = p.Min
		}
	case "bool":
		p.Kind = Bool
		if len(ps.Default) > 0 {
			var d bool
			if err := json.Unmarshal(ps.Default, &d); err != nil {
				return p, fmt.Errorf("bool default: %w", err)
			}
			if d {
				p.Default = 1
			}
		}
	case "categorical":
		p.Kind = Categorical
		p.Choices = ps.Choices
		if len(ps.Default) > 0 {
			var d string
			if err := json.Unmarshal(ps.Default, &d); err != nil {
				return p, fmt.Errorf("categorical default: %w", err)
			}
			idx := -1
			for i, ch := range ps.Choices {
				if ch == d {
					idx = i
				}
			}
			if idx < 0 {
				return p, fmt.Errorf("default %q not among choices %v", d, ps.Choices)
			}
			p.Default = float64(idx)
		}
	default:
		return p, fmt.Errorf("unknown type %q (want int, float, bool or categorical)", ps.Type)
	}
	return p, p.Validate()
}

// DumpSpace serializes a Space back to the JSON schema, so the
// built-in Spark space can be exported, edited and reloaded.
func DumpSpace(s *Space, system string) ([]byte, error) {
	spec := spaceSpec{System: system}
	for _, p := range s.Params() {
		ps := paramSpec{
			Name:  p.Name,
			Log:   p.Log,
			Unit:  p.Unit,
			Group: p.Group,
			Desc:  p.Desc,
		}
		switch p.Kind {
		case Int:
			ps.Type = "int"
		case Float:
			ps.Type = "float"
		case Bool:
			ps.Type = "bool"
		case Categorical:
			ps.Type = "categorical"
			ps.Choices = p.Choices
		}
		if p.Kind == Int || p.Kind == Float {
			mn, mx := p.Min, p.Max
			ps.Min, ps.Max = &mn, &mx
			ps.Default, _ = json.Marshal(p.Default)
		}
		if p.Kind == Bool {
			ps.Default, _ = json.Marshal(p.Default >= 0.5)
		}
		if p.Kind == Categorical {
			ps.Default, _ = json.Marshal(p.Choices[int(p.Default)])
		}
		spec.Params = append(spec.Params, ps)
	}
	return json.MarshalIndent(spec, "", "  ")
}
