package conf

import (
	"testing"
)

// FuzzDecodeUnit drives the unit-cube decoder with arbitrary
// coordinates: whatever the input, decoded values must respect the
// parameter's domain and re-encode into [0,1).
func FuzzDecodeUnit(f *testing.F) {
	s := SparkSpace()
	f.Add(0.0, 0)
	f.Add(0.5, 7)
	f.Add(0.999999, 43)
	f.Add(-3.5, 12)
	f.Add(7.25, 21)
	f.Fuzz(func(t *testing.T, u float64, pIdx int) {
		if pIdx < 0 {
			pIdx = -pIdx
		}
		p := s.Params()[pIdx%s.Dim()]
		v := p.DecodeUnit(u)
		switch p.Kind {
		case Int:
			if v != float64(int64(v)) {
				t.Fatalf("%s: non-integer %v", p.Name, v)
			}
			if v < p.Min || v > p.Max {
				t.Fatalf("%s: %v out of [%v,%v]", p.Name, v, p.Min, p.Max)
			}
		case Float:
			if v < p.Min || v > p.Max {
				t.Fatalf("%s: %v out of [%v,%v]", p.Name, v, p.Min, p.Max)
			}
		case Bool:
			if v != 0 && v != 1 {
				t.Fatalf("%s: %v not boolean", p.Name, v)
			}
		case Categorical:
			if int(v) < 0 || int(v) >= len(p.Choices) {
				t.Fatalf("%s: choice %v out of range", p.Name, v)
			}
		}
		u2 := p.EncodeRaw(v)
		if u2 < 0 || u2 >= 1 {
			t.Fatalf("%s: re-encode %v out of [0,1)", p.Name, u2)
		}
		// Idempotence on the grid: decode(encode(decode(u))) == decode(u).
		if got := p.DecodeUnit(u2); got != v {
			t.Fatalf("%s: decode/encode not idempotent: %v -> %v", p.Name, v, got)
		}
	})
}

// FuzzParseSpace throws arbitrary bytes at the JSON space loader: it
// must never panic, and successfully parsed spaces must be usable.
func FuzzParseSpace(f *testing.F) {
	f.Add([]byte(`{"params": [{"name": "x", "type": "int", "min": 1, "max": 5}]}`))
	f.Add([]byte(`{"params": [{"name": "c", "type": "categorical", "choices": ["a","b"]}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpace(data)
		if err != nil {
			return
		}
		// A space that parses must round-trip its default.
		def := s.Default()
		u := s.Encode(def)
		_ = s.Decode(u)
	})
}
