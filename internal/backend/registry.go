package backend

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/conf"
)

// Backend is one registered evaluation substrate: a named search
// space, a catalog of workloads, and an evaluator factory. The CLI,
// the server and the experiments select backends by name through the
// registry, which is what keeps every layer above the seam free of
// implementation imports.
type Backend interface {
	// Name is the registry key ("spark", "clustersim").
	Name() string
	// Description is a one-line summary for -h output and docs.
	Description() string
	// Space returns the backend's tunable configuration space.
	Space() *conf.Space
	// Workloads lists the workload family names, sorted.
	Workloads() []string
	// Workload resolves a workload family at a dataset scale index
	// (0-based; each family defines at least 3 scales, matching the
	// paper's D1-D3 convention).
	Workload(name string, dataset int) (Workload, error)
	// NewEvaluator builds an evaluator for one tuning session: w at
	// the given noise seed, per-evaluation cap (<= 0 selects the
	// backend default) and fault plan.
	NewEvaluator(w Workload, seed uint64, capSeconds float64, faults FaultPlan) (Evaluator, error)
	// DefaultCap is the backend's default per-evaluation limit in
	// simulated seconds.
	DefaultCap() float64
}

var (
	regMu    sync.RWMutex
	registry = map[string]Backend{}
)

// Register adds a backend under its Name. Implementations register
// from internal/backend/backends (the one package allowed to import
// them); registering two backends under one name panics — it is a
// wiring bug, not a runtime condition.
func Register(b Backend) {
	regMu.Lock()
	defer regMu.Unlock()
	name := b.Name()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("backend: duplicate registration of %q", name))
	}
	registry[name] = b
}

// Lookup resolves a registered backend by name.
func Lookup(name string) (Backend, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("backend: unknown backend %q (registered: %v)", name, namesLocked())
	}
	return b, nil
}

// Names lists the registered backends, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
