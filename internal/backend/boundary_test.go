package backend_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// implementations are the backend implementation packages the seam
// hides. Nothing above the seam may import them directly — everything
// reaches a concrete backend through the registry.
var implementations = []string{
	"repro/internal/sparksim",
	"repro/internal/clustersim",
}

// allowedImporters maps each implementation import to the directories
// (module-relative, "/"-separated) whose non-test files may import it.
var allowedImporters = map[string]map[string]string{
	"repro/internal/sparksim": {
		// The registration shim: the one production package that wires
		// implementations into the registry.
		"internal/backend/backends": "registration shim",
		// The simulator's own inspection tool (stage plans, executor
		// packing, single runs) — it exists to poke the Spark simulator
		// specifically, not to tune through the seam.
		"cmd/robosim": "simulator inspection tool",
	},
	"repro/internal/clustersim": {
		"internal/backend/backends": "registration shim",
	},
}

// TestArchBoundary is the dependency gate of the backend seam: it
// parses the imports of every non-test .go file in the module and
// fails when anything outside a backend implementation (or its
// explicit allowlist) imports an implementation package directly.
// Test files are exempt (tests may pick a concrete backend to drive),
// and examples/ is exempt as teaching material — each example states
// which side of the seam it demonstrates.
func TestArchBoundary(t *testing.T) {
	root := moduleRoot(t)
	fset := token.NewFileSet()
	var violations []string

	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == "examples" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		dir := filepath.ToSlash(filepath.Dir(rel))

		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			target, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if !isImplementation(target) {
				continue
			}
			if strings.HasPrefix(dir, strings.TrimPrefix(target, "repro/")) {
				continue // an implementation package's own files
			}
			if _, ok := allowedImporters[target][dir]; ok {
				continue
			}
			violations = append(violations, rel+" imports "+target)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) > 0 {
		t.Errorf("backend-implementation imports outside the seam (use the backend registry, or extend the allowlist in boundary_test.go with a reason):\n  %s",
			strings.Join(violations, "\n  "))
	}
}

// TestArchBoundaryAllowlistLive fails when an allowlist entry goes
// stale — a directory that no longer imports the implementation should
// lose its exemption rather than silently keep it.
func TestArchBoundaryAllowlistLive(t *testing.T) {
	root := moduleRoot(t)
	fset := token.NewFileSet()
	for target, dirs := range allowedImporters {
		for dir := range dirs {
			abs := filepath.Join(root, filepath.FromSlash(dir))
			entries, err := os.ReadDir(abs)
			if err != nil {
				t.Errorf("allowlisted directory %s does not exist: %v", dir, err)
				continue
			}
			found := false
			for _, e := range entries {
				if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
					continue
				}
				f, err := parser.ParseFile(fset, filepath.Join(abs, e.Name()), nil, parser.ImportsOnly)
				if err != nil {
					t.Fatal(err)
				}
				for _, imp := range f.Imports {
					if p, _ := strconv.Unquote(imp.Path.Value); p == target {
						found = true
					}
				}
			}
			if !found {
				t.Errorf("allowlist entry stale: %s no longer imports %s; remove the exemption", dir, target)
			}
		}
	}
}

func isImplementation(path string) bool {
	for _, impl := range implementations {
		if path == impl || strings.HasPrefix(path, impl+"/") {
			return true
		}
	}
	return false
}

// moduleRoot walks up from the package directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found above the test directory")
		}
		dir = parent
	}
}
