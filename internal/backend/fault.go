package backend

import "fmt"

// FaultPlan describes the infrastructure misbehavior injected into
// simulated runs — the failures a real deployment throws at a tuner
// that per-run noise does not capture: workers lost mid-run,
// straggler tasks an order of magnitude slower than their peers,
// transient evaluation errors (lost heartbeats, fetch storms) and
// spurious OOM kills from co-tenant memory pressure. Each backend
// maps the classes onto its own substrate (sparksim loses executors
// at a stage boundary, clustersim crashes a node mid-trace); the
// probabilities and the stream discipline are shared.
//
// The zero value disables injection entirely: a zero plan consumes no
// randomness and leaves every run bit-identical to an un-faulted one.
// All draws come from a dedicated fault stream derived from Seed and
// the evaluation index, never from the run's noise stream, so enabling
// faults perturbs outcomes only through the injected events — and the
// same (seed, plan) always reproduces the same faults, whether runs
// execute sequentially or in a parallel batch.
type FaultPlan struct {
	// ExecutorLossProb is the per-run probability that one worker is
	// lost partway through: its in-flight work is recomputed and the
	// rest of the run proceeds with less capacity.
	ExecutorLossProb float64
	// StragglerProb is the per-unit probability of straggler
	// amplification: the affected unit takes StragglerFactor times
	// longer (a severe straggler beyond modeled skew and speculation).
	StragglerProb float64
	// StragglerFactor is the amplification multiple (default 3).
	StragglerFactor float64
	// TransientErrProb is the per-run probability of a transient
	// evaluation error: the run aborts and reports Transient=true —
	// the class of failure a retry can cure.
	TransientErrProb float64
	// SpuriousOOMProb is the per-run probability of a spurious OOM
	// kill: the run aborts with OOM=true even though the configuration
	// was viable. Indistinguishable from a config-caused OOM, so it is
	// not flagged transient — tuners must absorb it as a worst-case
	// observation.
	SpuriousOOMProb float64
	// Seed mixes into the per-evaluation fault stream so campaigns can
	// vary the fault sequence independently of the noise seed.
	Seed uint64
}

// Enabled reports whether the plan injects anything.
func (p FaultPlan) Enabled() bool {
	return p.ExecutorLossProb > 0 || p.StragglerProb > 0 ||
		p.TransientErrProb > 0 || p.SpuriousOOMProb > 0
}

// EffectiveStragglerFactor returns the amplification multiple with
// the default applied (values <= 1 read as 3).
func (p FaultPlan) EffectiveStragglerFactor() float64 {
	if p.StragglerFactor <= 1 {
		return 3
	}
	return p.StragglerFactor
}

// String renders the plan compactly for logs and CLI output.
func (p FaultPlan) String() string {
	if !p.Enabled() {
		return "off"
	}
	return fmt.Sprintf("execloss=%.2g straggler=%.2gx%.2g transient=%.2g oom=%.2g seed=%d",
		p.ExecutorLossProb, p.StragglerProb, p.EffectiveStragglerFactor(),
		p.TransientErrProb, p.SpuriousOOMProb, p.Seed)
}

// DefaultFaultPlan returns the moderate plan the fault-injection
// stress suite runs under: roughly one injected incident every few
// runs of each class.
func DefaultFaultPlan() FaultPlan {
	return FaultPlan{
		ExecutorLossProb: 0.10,
		StragglerProb:    0.08,
		StragglerFactor:  3,
		TransientErrProb: 0.12,
		SpuriousOOMProb:  0.04,
	}
}
