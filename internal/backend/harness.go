package backend

import (
	"context"
	"math"
	"runtime"
	"sync"

	"repro/internal/conf"
)

// Outcome is what one run of a backend's simulator reports to the
// harness. Backends with richer outcome types (events, per-stage
// breakdowns) convert down to this before handing the run back.
type Outcome struct {
	// Seconds is the simulated execution time; for failed or truncated
	// runs, the time consumed up to that point.
	Seconds float64
	// Completed is true when the run finished successfully.
	Completed bool
	// OOM, Transient and Infeasible classify the failure.
	OOM        bool
	Transient  bool
	Infeasible bool
}

// RunFunc executes one run of the backend's workload: configuration c
// at evaluation index idx, under the given noise seed, fault plan,
// stopping cap and fidelity. The harness guarantees idx is unique per
// charged evaluation and reserved in dispatch order, so a RunFunc that
// derives its noise and fault streams from (seed, idx) alone is
// bit-identical whether runs execute sequentially or in a batch.
type RunFunc func(c conf.Config, seed uint64, idx int, plan FaultPlan, cap float64, fid Fidelity) Outcome

// Harness is the accounting core shared by backend evaluators: index
// reservation, cost/history commit ordering, batch dispatch with
// cancellation, and the stream-restore half of durable resume. A
// backend embeds a Harness and supplies its RunFunc; the harness
// turns it into the full Evaluator + BatchEvaluator + StreamRestorer
// surface with the exact commit arithmetic the journal and the parity
// suites pin.
//
// Harness is safe for concurrent use. Faults may be set before the
// evaluator is shared; mutating it concurrently with evaluations is
// not supported.
type Harness struct {
	// CapSeconds is the global per-evaluation limit: the worst-case
	// objective value charged to failed runs and the clamp on any
	// tuner-chosen cap.
	CapSeconds float64
	// Faults, when enabled, injects the plan's incidents into every
	// charged evaluation. Faults for a given evaluation index are
	// drawn from a dedicated stream, so the same (seed, plan)
	// reproduces the same incidents sequentially or in a parallel
	// batch.
	Faults FaultPlan

	run RunFunc

	mu      sync.Mutex
	seed    uint64
	evals   int
	cost    float64
	history []EvalRecord
}

// Init prepares the harness in place (a constructor would copy the
// mutex). cap <= 0 selects the paper's 480 s limit.
func (h *Harness) Init(seed uint64, cap float64, run RunFunc) {
	if cap <= 0 {
		cap = 480
	}
	h.CapSeconds = cap
	h.seed = seed
	h.run = run
}

// record converts an outcome into the charged observation.
func (h *Harness) record(c conf.Config, out Outcome, cap float64, fid Fidelity) EvalRecord {
	rec := EvalRecord{
		Config:     c,
		Raw:        out.Seconds,
		Completed:  out.Completed,
		OOM:        out.OOM,
		Infeasible: out.Infeasible,
		Transient:  out.Transient,
	}
	if !fid.Full() {
		rec.Fidelity = fid
	}
	if out.Completed {
		rec.Seconds = math.Min(out.Seconds, cap)
	} else {
		// Failed, infeasible or truncated runs are worth the global
		// cap to the optimizer (worst case) but only charge what they
		// actually burned before the guard stopped them.
		rec.Seconds = h.CapSeconds
	}
	return rec
}

// EvaluateSpec is the unified single-run entry point: one run under
// the spec's cap and fidelity. A non-full fidelity runs the derived
// proxy workload; the search cost is charged what the proxy actually
// consumed, which is the whole point of multi-fidelity tuning.
func (h *Harness) EvaluateSpec(c conf.Config, spec EvalSpec) EvalRecord {
	cap := spec.Cap
	if cap <= 0 || cap > h.CapSeconds {
		cap = h.CapSeconds
	}
	// Read the seed under the same lock that reserves the evaluation
	// index: Reset may rewrite it concurrently, and an unlocked read
	// here is a data race.
	h.mu.Lock()
	n := h.evals
	h.evals++
	seed := h.seed
	plan := h.Faults
	h.mu.Unlock()

	out := h.run(c, seed, n, plan, cap, spec.Fidelity)
	rec := h.record(c, out, cap, spec.Fidelity)
	consumed := math.Min(out.Seconds, cap)

	h.mu.Lock()
	h.cost += consumed
	h.history = append(h.history, rec)
	h.mu.Unlock()
	return rec
}

// EvaluateSpecCtx is the unified batch entry point: every
// configuration runs under the same spec (cap and fidelity), on up to
// spec.Workers goroutines (default GOMAXPROCS), while reproducing the
// exact observations sequential EvaluateSpec calls would have
// produced: evaluation indices — which seed the per-run noise and
// fault streams — are assigned up front, and cost/history are
// committed in index order. Once ctx is done, no further
// configurations are dispatched; in-flight runs finish and are
// charged normally, and never-dispatched entries come back with
// Skipped=true (no observation, no cost). A nil ctx means no
// cancellation.
func (h *Harness) EvaluateSpecCtx(ctx context.Context, cfgs []conf.Config, spec EvalSpec) []EvalRecord {
	workers := spec.Workers
	cap := spec.Cap
	if cap <= 0 || cap > h.CapSeconds {
		cap = h.CapSeconds
	}
	n := len(cfgs)
	if n == 0 {
		return nil
	}
	skipAll := func() []EvalRecord {
		recs := make([]EvalRecord, n)
		for i := range recs {
			recs[i] = EvalRecord{Config: cfgs[i], Skipped: true}
		}
		return recs
	}
	if ctx != nil {
		select {
		case <-ctx.Done():
			return skipAll()
		default:
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	// Reserve the index block and snapshot the seed in one critical
	// section; the workers below must not read h.seed directly, since
	// a concurrent Reset writes it under the lock.
	h.mu.Lock()
	base := h.evals
	h.evals += n
	seed := h.seed
	plan := h.Faults
	h.mu.Unlock()

	recs := make([]EvalRecord, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out := h.run(cfgs[i], seed, base+i, plan, cap, spec.Fidelity)
				recs[i] = h.record(cfgs[i], out, cap, spec.Fidelity)
			}
		}()
	}
	// The dispatch loop is the single cancellation point: indices past
	// the first observed cancellation are marked skipped below.
	dispatched := n
dispatch:
	for i := 0; i < n; i++ {
		if ctx != nil {
			select {
			case <-ctx.Done():
				dispatched = i
				break dispatch
			case next <- i:
				continue
			}
		}
		next <- i
	}
	close(next)
	wg.Wait()
	for i := dispatched; i < n; i++ {
		recs[i] = EvalRecord{Config: cfgs[i], Skipped: true}
	}

	h.mu.Lock()
	for _, rec := range recs {
		if rec.Skipped {
			continue
		}
		h.cost += math.Min(rec.Raw, cap)
		h.history = append(h.history, rec)
	}
	h.mu.Unlock()
	return recs
}

// Evals returns the number of charged evaluations so far.
func (h *Harness) Evals() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.evals
}

// SearchCost returns the accumulated simulated seconds consumed by
// charged evaluations.
func (h *Harness) SearchCost() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.cost
}

// History returns a copy of all charged observations in order.
func (h *Harness) History() []EvalRecord {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]EvalRecord(nil), h.history...)
}

// Best returns the completed observation with the lowest objective
// value, or ok=false if nothing completed yet.
func (h *Harness) Best() (EvalRecord, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	best := EvalRecord{Seconds: math.Inf(1)}
	ok := false
	for _, r := range h.history {
		if r.Completed && r.Seconds < best.Seconds {
			best = r
			ok = true
		}
	}
	return best, ok
}

// RestoreStream moves the evaluation counter and accumulated search
// cost to a journaled position (StreamRestorer). The per-run noise
// and fault streams are derived from the evaluation index, so a
// resumed session that restores the counter hands its post-replay
// live evaluations exactly the streams the uninterrupted run would
// have consumed. History is not rebuilt — replayed observations live
// in the session's trace, not here.
func (h *Harness) RestoreStream(evals int, cost float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.evals = evals
	h.cost = cost
}

// Reset clears evaluation counters and history (the workload, noise
// seed and fault plan stay), so one evaluator can serve several tuner
// runs.
func (h *Harness) Reset(seed uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.seed = seed
	h.evals = 0
	h.cost = 0
	h.history = nil
}

// NoiseSeed returns the current noise seed (as set by Init or Reset).
func (h *Harness) NoiseSeed() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.seed
}

// SupportsFidelity implements FidelitySupporter: harness-backed
// evaluators hand EvalSpec.Fidelity to their RunFunc, which derives
// the proxy workload.
func (h *Harness) SupportsFidelity() bool { return true }
