// Package backends links every backend implementation and registers
// it with the backend registry. It is the one package outside the
// implementations themselves that may import them: binaries, servers
// and experiments blank-import it to make backend.Lookup resolve, and
// everything else stays on the backend interfaces (the architectural
// boundary test enforces this).
package backends

import (
	"repro/internal/backend"
	"repro/internal/clustersim"
	"repro/internal/sparksim"
)

func init() {
	backend.Register(sparksim.Backend{})
	backend.Register(clustersim.Backend{})
}
