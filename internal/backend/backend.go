// Package backend defines the contracts between the tuner stack and
// an evaluation substrate. The tuning pipeline (probe → parameter
// selection → GP-BO with guard caps) is not Spark-specific: tuners,
// the session machinery, tracing, journaling, scheduling and the wire
// protocol all operate on the types in this package, and a concrete
// backend — internal/sparksim (Spark analytics jobs on a cluster),
// internal/clustersim (a multi-tenant cluster manager's scheduling
// policy) — plugs in underneath by implementing Evaluator.
//
// The dependency rule, enforced by TestArchBoundary: nothing outside a
// backend implementation imports a backend implementation. Everything
// above the seam — including cmd binaries — reaches concrete backends
// through the Registry.
package backend

import (
	"context"

	"repro/internal/conf"
)

// Evaluator is the expensive black box a tuner optimizes: one run of
// the backend's workload under a configuration, driven by an EvalSpec
// (cap + fidelity), with bookkeeping of evaluation count and search
// cost. It must be safe for concurrent use.
//
// EvaluateSpec is the single evaluation entry point — there is
// deliberately no plain Evaluate or EvaluateWithCap surface; the zero
// EvalSpec means "full fidelity, global cap".
type Evaluator interface {
	EvaluateSpec(c conf.Config, spec EvalSpec) EvalRecord
	// SearchCost returns the accumulated evaluation cost in seconds.
	SearchCost() float64
	// Evals returns the number of evaluations charged so far.
	Evals() int
}

// BatchEvaluator is the optional concurrent-evaluation capability:
// every configuration runs under the same spec, on up to spec.Workers
// goroutines, bit-identical to sequential EvaluateSpec calls in the
// same order. Once ctx is done, no further configurations are
// dispatched; never-dispatched entries come back Skipped (no
// observation, no cost). Its presence changes which algorithm path a
// tuner picks, so wrappers must only claim it when their inner
// objective does.
type BatchEvaluator interface {
	EvaluateSpecCtx(ctx context.Context, cfgs []conf.Config, spec EvalSpec) []EvalRecord
}

// StreamRestorer is the optional capability a durable session needs
// from its objective for bit-identical resume: restoring the
// evaluation counter and accumulated search cost to a journaled
// position. The per-run noise and fault streams are derived from the
// evaluation index, so an objective that can restore the counter will
// hand post-replay live evaluations exactly the streams the
// uninterrupted run would have consumed.
type StreamRestorer interface {
	RestoreStream(evals int, cost float64)
}

// Identifiable is the optional workload-identity capability ROBOTune
// keys its memoization and selection caches on.
type Identifiable interface {
	WorkloadName() string
	DatasetName() string
}

// Measurer is the optional final-quality capability: estimate a
// configuration's true performance by averaging reps fresh runs
// without charging search cost (and, for fault-injecting backends,
// without faults — Measure reports what the configuration is worth,
// not what a faulty session observed).
type Measurer interface {
	Measure(c conf.Config, reps int, seed uint64) float64
}

// FidelitySupporter marks evaluators whose EvaluateSpec honors
// EvalSpec.Fidelity by deriving a cheap proxy run. The session
// degrades proxy requests to full fidelity for objectives without
// the capability (or whose SupportsFidelity reports false), keeping
// the journal honest about what actually ran.
type FidelitySupporter interface {
	SupportsFidelity() bool
}

// Workload identifies one tunable job of a backend: a named workload
// family on a named input dataset. Concrete backends carry the actual
// plan (Spark stage DAGs, cluster job traces) in their own types;
// everything above the seam needs only identity and a description.
type Workload interface {
	WorkloadName() string
	DatasetName() string
	// Describe renders a human-readable summary of the plan.
	Describe() string
}
