package backend

import (
	"fmt"
	"math"
)

// Fidelity selects how faithfully an evaluation runs the workload.
// The zero value is full fidelity — the exact workload the evaluator
// was built with. Lower fidelities deterministically derive a cheap
// proxy workload (reduced input scale and/or a truncated work prefix)
// from the full plan: the proxy costs a fraction of the simulated
// seconds while preserving the configuration-sensitivity structure
// that multi-fidelity tuners exploit (MFTune; BOHB).
//
// Fidelity is a pure value: backends derive the proxy without
// mutating the source workload, and the same (workload, fidelity)
// pair always yields the same proxy, so journaled evaluations replay
// bit-identically. What the two axes scale is backend-defined —
// sparksim scales stage data volumes and truncates the stage prefix,
// clustersim thins the job arrival trace and truncates its tail — but
// the contract (deterministic, cheaper, sensitivity-preserving) is
// shared.
type Fidelity struct {
	// InputScale scales the workload's data or load volume by this
	// fraction in (0, 1]. 0 means 1 (full scale).
	InputScale float64 `json:"input_scale,omitempty"`
	// StageFrac truncates the plan to its first ceil(frac·len) units
	// (stages, trace entries), frac in (0, 1]. 0 means 1 (everything).
	StageFrac float64 `json:"stage_frac,omitempty"`
}

// FullFidelity is the explicit full-scale value; identical to the
// zero Fidelity.
var FullFidelity = Fidelity{}

// Full reports whether f denotes the unmodified workload.
func (f Fidelity) Full() bool {
	return (f.InputScale == 0 || f.InputScale == 1) &&
		(f.StageFrac == 0 || f.StageFrac == 1)
}

// Scale returns the effective input-scale fraction (0 reads as 1).
func (f Fidelity) Scale() float64 {
	if f.InputScale == 0 {
		return 1
	}
	return f.InputScale
}

// Frac returns the effective stage fraction (0 reads as 1).
func (f Fidelity) Frac() float64 {
	if f.StageFrac == 0 {
		return 1
	}
	return f.StageFrac
}

// Validate rejects fidelities outside (0, 1] (zero fields excepted:
// they read as full scale).
func (f Fidelity) Validate() error {
	check := func(name string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
			return fmt.Errorf("backend: fidelity %s %v outside (0, 1]", name, v)
		}
		return nil
	}
	if err := check("input scale", f.InputScale); err != nil {
		return err
	}
	return check("stage fraction", f.StageFrac)
}

// String renders the fidelity compactly for logs and Explain output.
func (f Fidelity) String() string {
	if f.Full() {
		return "full"
	}
	if f.Frac() == 1 {
		return fmt.Sprintf("scale=%.3g", f.Scale())
	}
	return fmt.Sprintf("scale=%.3g,stages=%.3g", f.Scale(), f.Frac())
}
