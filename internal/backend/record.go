package backend

import "repro/internal/conf"

// EvalRecord is one observation of the black-box objective.
type EvalRecord struct {
	Config conf.Config
	// Seconds is the objective value: execution time (or the backend's
	// chosen metric), capped at the evaluation limit. Failed
	// configurations report the limit.
	Seconds float64
	// Raw is the uncapped simulated duration (or time consumed before
	// failure/truncation).
	Raw float64
	// Completed, OOM and Infeasible mirror the run outcome.
	Completed  bool
	OOM        bool
	Infeasible bool
	// Transient marks a retryable failure (lost heartbeat, fetch
	// storm): re-running the same configuration may succeed.
	Transient bool
	// Skipped marks an evaluation that never ran because its batch was
	// cancelled: it carries no observation and was charged no cost.
	Skipped bool
	// Fidelity records the proxy scale the run executed at. The zero
	// value is full fidelity; lower fidelities mean Seconds measures a
	// deterministically derived cheap proxy workload, not the full
	// job, and is comparable only with observations at the same
	// fidelity.
	Fidelity Fidelity
}

// EvalSpec bundles every per-evaluation control into one value: the
// guard cap, the fidelity, and the batch parallelism. The zero value
// means full fidelity, the evaluator's global cap, sequential
// execution. It is the single argument of the unified evaluation
// entry points (Evaluator.EvaluateSpec / BatchEvaluator.EvaluateSpecCtx
// and tuners.Session.Eval).
type EvalSpec struct {
	// Cap is the per-run stopping threshold in simulated seconds;
	// <= 0 or above the evaluator's global limit selects the limit.
	Cap float64
	// Fidelity selects the proxy scale (zero = full workload).
	Fidelity Fidelity
	// Workers bounds batch parallelism (<= 0 = GOMAXPROCS). Ignored
	// for single evaluations.
	Workers int
}
