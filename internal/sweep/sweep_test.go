package sweep

import (
	"math"
	"strings"
	"testing"

	"repro/internal/conf"
	"repro/internal/sparksim"
)

func base(t *testing.T) conf.Config {
	t.Helper()
	c, err := conf.SparkSpace().FromRaw(map[string]float64{
		conf.ExecutorCores:      8,
		conf.ExecutorMemory:     24576,
		conf.ExecutorInstances:  20,
		conf.DefaultParallelism: 200,
		conf.Serializer:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSweepNumericParameter(t *testing.T) {
	res, err := Run(sparksim.Backend{}, sparksim.TeraSort(30), base(t),
		conf.ExecutorMemory, Config{Steps: 7, Reps: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 5 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Raw values ascend and stay in range.
	for i, pt := range res.Points {
		if pt.Raw < 8192 || pt.Raw > 184320 {
			t.Errorf("point %d raw %v out of range", i, pt.Raw)
		}
		if i > 0 && pt.Raw <= res.Points[i-1].Raw {
			t.Errorf("grid not ascending at %d", i)
		}
	}
	if res.BaseSeconds <= 0 {
		t.Error("base seconds missing")
	}
	if s := res.Sensitivity(); math.IsNaN(s) || s < 1 {
		t.Errorf("sensitivity = %v", s)
	}
	best := res.Best()
	if best.Failed || best.Seconds <= 0 {
		t.Errorf("best = %+v", best)
	}
	if out := res.Render(); !strings.Contains(out, conf.ExecutorMemory) {
		t.Error("render missing parameter name")
	}
}

func TestSweepCategoricalEnumeratesChoices(t *testing.T) {
	res, err := Run(sparksim.Backend{}, sparksim.TeraSort(20), base(t),
		conf.IOCompressionCodec, Config{Reps: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("codec sweep points = %d, want 4", len(res.Points))
	}
	labels := map[string]bool{}
	for _, pt := range res.Points {
		labels[pt.Label] = true
	}
	for _, want := range []string{"lz4", "lzf", "snappy", "zstd"} {
		if !labels[want] {
			t.Errorf("missing choice %q", want)
		}
	}
}

func TestSweepBool(t *testing.T) {
	res, err := Run(sparksim.Backend{}, sparksim.TeraSort(30), base(t),
		conf.ShuffleCompress, Config{Reps: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("bool sweep points = %d", len(res.Points))
	}
	// Compression on should beat off for shuffle-heavy TeraSort.
	if res.Points[1].Seconds >= res.Points[0].Seconds {
		t.Errorf("compress on (%v) should beat off (%v)",
			res.Points[1].Seconds, res.Points[0].Seconds)
	}
}

func TestSweepDetectsFailureRegion(t *testing.T) {
	// Sweeping executor memory down from a graph workload's base
	// should hit the OOM cliff at the low end.
	// A high cap separates genuine OOM failures from merely-slow
	// configurations (huge executors leave few slots).
	// 32-core executors: low heap shares execution memory across many
	// slots (OOM at the cliff), high heap keeps all 160 slots fast.
	wide := base(t).With(conf.MaxPartitionBytes, 512).With(conf.ExecutorCores, 32)
	res, err := Run(sparksim.Backend{}, sparksim.PageRank(10), wide,
		conf.ExecutorMemory, Config{Steps: 9, Reps: 1, Seed: 4, CapSeconds: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Points[0].Failed {
		t.Errorf("lowest memory point should fail: %+v", res.Points[0])
	}
	// The very top of the range is infeasible too (heap + 10%
	// overhead exceeds the 192 GB node); the middle completes.
	if !res.Points[len(res.Points)-1].Failed {
		t.Errorf("180GB executors should be infeasible on 192GB nodes")
	}
	completed := 0
	for _, pt := range res.Points {
		if !pt.Failed {
			completed++
		}
	}
	if completed == 0 {
		t.Error("no sweep point completed")
	}
	if out := res.Render(); !strings.Contains(out, "FAILS") {
		t.Error("render missing failure marker")
	}
}

func TestSweepUnknownParameter(t *testing.T) {
	if _, err := Run(sparksim.Backend{}, sparksim.TeraSort(20), base(t),
		"bogus", Config{}); err == nil {
		t.Error("unknown parameter accepted")
	}
}

func TestSweepIntGridDeduplicates(t *testing.T) {
	// task.cpus spans 1..4; a 9-step grid must deduplicate to 4 points.
	res, err := Run(sparksim.Backend{}, sparksim.TeraSort(20), base(t),
		conf.TaskCPUs, Config{Steps: 9, Reps: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("task.cpus sweep points = %d, want 4 deduplicated", len(res.Points))
	}
}
