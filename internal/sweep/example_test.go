package sweep_test

import (
	"fmt"

	"repro/internal/conf"
	"repro/internal/sparksim"
	"repro/internal/sweep"
)

// A sweep shows the shape the tuners search: hold a good
// configuration fixed and move one parameter across its range.
func ExampleRun() {
	base, err := conf.SparkSpace().FromRaw(map[string]float64{
		conf.ExecutorCores:     8,
		conf.ExecutorMemory:    24576,
		conf.ExecutorInstances: 20,
	})
	if err != nil {
		panic(err)
	}
	res, err := sweep.Run(sparksim.Backend{}, sparksim.TeraSort(30), base,
		conf.ShuffleCompress, sweep.Config{Reps: 2, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("points:", len(res.Points))
	fmt.Println("compression helps:", res.Points[1].Seconds < res.Points[0].Seconds)
	// Output:
	// points: 2
	// compression helps: true
}
