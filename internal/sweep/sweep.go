// Package sweep produces one-dimensional sensitivity curves: hold a
// configuration fixed, move a single parameter across its range, and
// record the objective at each point. Sweeps are how you *look at*
// the response surface the tuners search — robosim's -sweep flag
// renders them as ASCII curves.
package sweep

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/backend"
	"repro/internal/conf"
)

// Point is one sweep sample.
type Point struct {
	// Raw is the parameter's raw value at this point.
	Raw float64
	// Label renders the value with its unit / choice name.
	Label string
	// Seconds is the mean objective over Reps runs (capped values for
	// failures).
	Seconds float64
	// Failed is true when every rep failed (OOM/infeasible).
	Failed bool
}

// Result is a full single-parameter sweep.
type Result struct {
	Param  conf.Param
	Points []Point
	// BaseSeconds is the unswept configuration's time, for reference.
	BaseSeconds float64
}

// Config controls a sweep.
type Config struct {
	// Steps is the number of grid points for numeric parameters
	// (default 9). Bool and categorical parameters enumerate all
	// values regardless.
	Steps int
	// Reps averages this many runs per point (default 3).
	Reps int
	// Seed drives the simulator noise.
	Seed uint64
	// CapSeconds truncates runs (0 = the backend's default cap).
	CapSeconds float64
}

func (c Config) withDefaults() Config {
	if c.Steps < 2 {
		c.Steps = 9
	}
	if c.Reps < 1 {
		c.Reps = 3
	}
	return c
}

// Run sweeps the named parameter of base across its range on the
// given backend workload.
func Run(b backend.Backend, w backend.Workload, base conf.Config, name string, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	space := base.Space()
	p, ok := space.Param(name)
	if !ok {
		return Result{}, fmt.Errorf("sweep: unknown parameter %q", name)
	}

	measure := func(c conf.Config) (float64, bool, error) {
		var sum float64
		failures := 0
		for r := 0; r < cfg.Reps; r++ {
			ev, err := b.NewEvaluator(w, cfg.Seed+uint64(r)*131, cfg.CapSeconds, backend.FaultPlan{})
			if err != nil {
				return 0, false, err
			}
			rec := ev.EvaluateSpec(c, backend.EvalSpec{})
			sum += rec.Seconds
			if !rec.Completed {
				failures++
			}
		}
		return sum / float64(cfg.Reps), failures == cfg.Reps, nil
	}

	res := Result{Param: p}
	var err error
	if res.BaseSeconds, _, err = measure(base); err != nil {
		return Result{}, err
	}

	for _, raw := range gridFor(p, cfg.Steps) {
		c := base.With(name, raw)
		sec, failed, err := measure(c)
		if err != nil {
			return Result{}, err
		}
		res.Points = append(res.Points, Point{
			Raw:     raw,
			Label:   p.FormatRaw(raw),
			Seconds: sec,
			Failed:  failed,
		})
	}
	return res, nil
}

// gridFor enumerates sweep values for a parameter: all values for
// bool/categorical, an even unit-cube grid (so log parameters get a
// geometric grid) for numerics.
func gridFor(p conf.Param, steps int) []float64 {
	switch p.Kind {
	case conf.Bool:
		return []float64{0, 1}
	case conf.Categorical:
		out := make([]float64, len(p.Choices))
		for i := range p.Choices {
			out[i] = float64(i)
		}
		return out
	default:
		var out []float64
		seen := map[float64]bool{}
		for i := 0; i < steps; i++ {
			u := float64(i) / float64(steps-1)
			if u >= 1 {
				u = math.Nextafter(1, 0)
			}
			raw := p.DecodeUnit(u)
			if !seen[raw] { // Int grids can collide on small ranges
				seen[raw] = true
				out = append(out, raw)
			}
		}
		return out
	}
}

// Best returns the sweep point with the lowest objective.
func (r Result) Best() Point {
	best := Point{Seconds: math.Inf(1)}
	for _, pt := range r.Points {
		if !pt.Failed && pt.Seconds < best.Seconds {
			best = pt
		}
	}
	return best
}

// Sensitivity returns max/min of the completed points — how much this
// parameter alone can swing the objective around the base config.
func (r Result) Sensitivity() float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, pt := range r.Points {
		if pt.Failed {
			continue
		}
		lo = math.Min(lo, pt.Seconds)
		hi = math.Max(hi, pt.Seconds)
	}
	if lo <= 0 || math.IsInf(lo, 1) {
		return math.NaN()
	}
	return hi / lo
}

// Render prints the sweep as a labeled ASCII bar curve.
func (r Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "sweep of %s (base config: %.1f s; sensitivity %.2fx)\n",
		r.Param.Name, r.BaseSeconds, r.Sensitivity())
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, pt := range r.Points {
		if !pt.Failed {
			lo = math.Min(lo, pt.Seconds)
			hi = math.Max(hi, pt.Seconds)
		}
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	const width = 40
	for _, pt := range r.Points {
		if pt.Failed {
			fmt.Fprintf(&sb, "  %12s | FAILS\n", pt.Label)
			continue
		}
		bars := int((pt.Seconds - lo) / span * width)
		fmt.Fprintf(&sb, "  %12s | %7.1fs %s\n", pt.Label, pt.Seconds, strings.Repeat("#", bars+1))
	}
	return sb.String()
}
