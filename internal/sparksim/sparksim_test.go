package sparksim

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/conf"
	"repro/internal/sample"
)

func space() *conf.Space { return conf.SparkSpace() }

// tunedConfig is a reasonable hand-tuned configuration used across
// tests: balanced executors, Kryo, healthy parallelism.
func tunedConfig(t *testing.T) conf.Config {
	t.Helper()
	c, err := space().FromRaw(map[string]float64{
		conf.ExecutorCores:      8,
		conf.ExecutorMemory:     24576,
		conf.ExecutorInstances:  20,
		conf.DefaultParallelism: 200,
		conf.MemoryFraction:     0.75,
		conf.Serializer:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPackExecutorsBasics(t *testing.T) {
	cl := PaperCluster()
	c := tunedConfig(t)
	ex, ok := PackExecutors(cl, c)
	if !ok {
		t.Fatal("tuned config should be feasible")
	}
	// 8-core executors: 4 per node by cores; memory allows more, so 4.
	if ex.PerNode != 4 {
		t.Errorf("PerNode = %d, want 4", ex.PerNode)
	}
	if ex.Count != 20 {
		t.Errorf("Count = %d, want 20 (requested instances)", ex.Count)
	}
	if ex.SlotsEach != 8 || ex.TotalSlots != 160 {
		t.Errorf("slots = %d/%d, want 8/160", ex.SlotsEach, ex.TotalSlots)
	}
	if ex.UsableMB <= 0 || ex.StorageMB <= 0 || ex.ExecutionMB <= 0 {
		t.Errorf("memory regions: %+v", ex)
	}
	// Unified memory: usable = (heap-300)*fraction.
	want := (24576.0 - 300) * 0.75
	if math.Abs(ex.UsableMB-want) > 1 {
		t.Errorf("UsableMB = %v, want %v", ex.UsableMB, want)
	}
}

func TestPackExecutorsInstancesCap(t *testing.T) {
	cl := PaperCluster()
	c := tunedConfig(t).With(conf.ExecutorInstances, 1000)
	// Physically capped at 4 per node * 5 nodes = 20... but the
	// parameter max is 40; use With to exceed and verify the cap.
	ex, ok := PackExecutors(cl, c)
	if !ok || ex.Count != 20 {
		t.Errorf("Count = %d, want physical cap 20", ex.Count)
	}
}

func TestPackExecutorsInfeasible(t *testing.T) {
	cl := PaperCluster()
	// An executor bigger than a node cannot be placed.
	c := tunedConfig(t).
		With(conf.ExecutorMemory, 184320).
		With(conf.ExecutorMemoryOverhead, 8192).
		With(conf.OffHeapEnabled, 1).
		With(conf.OffHeapSize, 16384)
	if _, ok := PackExecutors(cl, c); ok {
		t.Error("oversized executor should be infeasible")
	}
	// task.cpus > executor cores gives zero slots.
	c2 := tunedConfig(t).With(conf.ExecutorCores, 2).With(conf.TaskCPUs, 4)
	if _, ok := PackExecutors(cl, c2); ok {
		t.Error("task.cpus > cores should be infeasible")
	}
}

func TestPackExecutorsTaskCPUs(t *testing.T) {
	cl := PaperCluster()
	c := tunedConfig(t).With(conf.TaskCPUs, 2)
	ex, ok := PackExecutors(cl, c)
	if !ok || ex.SlotsEach != 4 {
		t.Errorf("SlotsEach = %d, want 4 with task.cpus=2", ex.SlotsEach)
	}
}

// TestDefaultConfigOutcomes checks the §5.2 findings: the default
// 1 GB-executor configuration OOMs PageRank and ConnectedComponents,
// survives KMeans/LogisticRegression/TeraSort-20GB (slowly), and hits
// runtime errors on the larger TeraSort datasets.
func TestDefaultConfigOutcomes(t *testing.T) {
	cl := PaperCluster()
	def := space().Default()
	cases := []struct {
		w       Workload
		wantOOM bool
	}{
		{PageRank(5), true},
		{PageRank(10), true},
		{ConnectedComponents(5), true},
		{ConnectedComponents(10), true},
		{KMeans(200), false},
		{LogisticRegression(100), false},
		{TeraSort(20), false},
		{TeraSort(30), true},
		{TeraSort(40), true},
	}
	for _, tc := range cases {
		out := Run(cl, tc.w, def, sample.NewRNG(1), math.Inf(1))
		if out.OOM != tc.wantOOM {
			t.Errorf("%s default: OOM = %v, want %v (events: %v)", tc.w.ID(), out.OOM, tc.wantOOM, out.Events)
		}
		if !tc.wantOOM && out.Seconds <= 0 {
			t.Errorf("%s default: nonpositive time %v", tc.w.ID(), out.Seconds)
		}
	}
}

// TestTunedBeatsDefault mirrors §5.2's speedups over the default
// configuration for the workloads that complete.
func TestTunedBeatsDefault(t *testing.T) {
	cl := PaperCluster()
	def := space().Default()
	tuned := tunedConfig(t)
	cases := []struct {
		w        Workload
		minRatio float64
	}{
		{KMeans(200), 5},               // paper: 27.1x on average
		{LogisticRegression(100), 1.5}, // paper: 2.17x
		{TeraSort(20), 2},              // paper: 4.16x
	}
	for _, tc := range cases {
		d := Run(cl, tc.w, def, sample.NewRNG(1), math.Inf(1))
		u := Run(cl, tc.w, tuned, sample.NewRNG(1), math.Inf(1))
		if !d.Completed || !u.Completed {
			t.Fatalf("%s: unexpected failure d=%+v u=%+v", tc.w.ID(), d, u)
		}
		if ratio := d.Seconds / u.Seconds; ratio < tc.minRatio {
			t.Errorf("%s: default/tuned = %.2f, want >= %.1f", tc.w.ID(), ratio, tc.minRatio)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	cl := PaperCluster()
	w := PageRank(5)
	c := tunedConfig(t)
	a := Run(cl, w, c, sample.NewRNG(7), math.Inf(1))
	b := Run(cl, w, c, sample.NewRNG(7), math.Inf(1))
	if a.Seconds != b.Seconds || a.Completed != b.Completed {
		t.Fatalf("same seed, different outcomes: %v vs %v", a.Seconds, b.Seconds)
	}
}

func TestRunNoisy(t *testing.T) {
	cl := PaperCluster()
	w := KMeans(200)
	c := tunedConfig(t)
	a := Run(cl, w, c, sample.NewRNG(1), math.Inf(1))
	b := Run(cl, w, c, sample.NewRNG(2), math.Inf(1))
	if a.Seconds == b.Seconds {
		t.Fatal("different seeds should produce different observations")
	}
	// But not wildly different: multiplicative noise is a few percent.
	ratio := a.Seconds / b.Seconds
	if ratio < 0.7 || ratio > 1.5 {
		t.Errorf("noise too large: %v vs %v", a.Seconds, b.Seconds)
	}
}

func TestRunTruncation(t *testing.T) {
	cl := PaperCluster()
	w := KMeans(400)
	def := space().Default() // very slow for KMeans
	out := Run(cl, w, def, sample.NewRNG(1), 100)
	if out.Completed {
		t.Fatal("default KMeans-400M should not complete within 100s")
	}
	found := false
	for _, e := range out.Events {
		if strings.Contains(e, "truncated") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected truncation event, got %v", out.Events)
	}
}

func TestMoreDataTakesLonger(t *testing.T) {
	cl := PaperCluster()
	// Use a modest config so stages have multiple waves and data
	// volume shows up in wall time.
	c := tunedConfig(t).With(conf.ExecutorInstances, 5)
	small := Run(cl, TeraSort(20), c, sample.NewRNG(3), math.Inf(1))
	large := Run(cl, TeraSort(40), c, sample.NewRNG(3), math.Inf(1))
	if large.Seconds <= small.Seconds {
		t.Errorf("TeraSort 40GB (%v) should exceed 20GB (%v)", large.Seconds, small.Seconds)
	}
}

func TestTinyParallelismHurts(t *testing.T) {
	cl := PaperCluster()
	base := tunedConfig(t)
	tiny := base.With(conf.DefaultParallelism, 8)
	wb := Run(cl, TeraSort(20), base, sample.NewRNG(4), math.Inf(1))
	wt := Run(cl, TeraSort(20), tiny, sample.NewRNG(4), math.Inf(1))
	if !wt.OOM && wt.Seconds < wb.Seconds {
		t.Errorf("parallelism=8 (%v s, oom=%v) should be worse than 200 (%v s)", wt.Seconds, wt.OOM, wb.Seconds)
	}
}

func TestKryoHelpsShuffleHeavyWorkload(t *testing.T) {
	cl := PaperCluster()
	java := tunedConfig(t).With(conf.Serializer, 0)
	kryo := tunedConfig(t).With(conf.Serializer, 1)
	j := Run(cl, TeraSort(30), java, sample.NewRNG(5), math.Inf(1))
	k := Run(cl, TeraSort(30), kryo, sample.NewRNG(5), math.Inf(1))
	if k.Seconds >= j.Seconds {
		t.Errorf("kryo (%v) should beat java (%v) on TeraSort", k.Seconds, j.Seconds)
	}
}

func TestCompressionHelpsTeraSort(t *testing.T) {
	cl := PaperCluster()
	on := tunedConfig(t).With(conf.ShuffleCompress, 1)
	off := tunedConfig(t).With(conf.ShuffleCompress, 0)
	a := Run(cl, TeraSort(30), on, sample.NewRNG(6), math.Inf(1))
	b := Run(cl, TeraSort(30), off, sample.NewRNG(6), math.Inf(1))
	if a.Seconds >= b.Seconds {
		t.Errorf("shuffle compression on (%v) should beat off (%v) for TeraSort", a.Seconds, b.Seconds)
	}
}

func TestCachePressureEventForSmallMemoryKMeans(t *testing.T) {
	cl := PaperCluster()
	c := tunedConfig(t).
		With(conf.ExecutorMemory, 8192).
		With(conf.ExecutorInstances, 3).
		With(conf.MemoryStorageFraction, 0.2)
	out := Run(cl, KMeans(400), c, sample.NewRNG(8), math.Inf(1))
	found := false
	for _, e := range out.Events {
		if strings.Contains(e, "cache pressure") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected cache pressure, events = %v", out.Events)
	}
}

func TestCacheEvictionCostsTime(t *testing.T) {
	cl := PaperCluster()
	roomy := tunedConfig(t)
	cramped := tunedConfig(t).
		With(conf.ExecutorMemory, 8192).
		With(conf.ExecutorInstances, 3)
	a := Run(cl, KMeans(400), roomy, sample.NewRNG(9), math.Inf(1))
	b := Run(cl, KMeans(400), cramped, sample.NewRNG(9), math.Inf(1))
	if b.Seconds < a.Seconds*1.5 {
		t.Errorf("evicting config (%v) should be much slower than roomy (%v)", b.Seconds, a.Seconds)
	}
}

func TestAllPaperWorkloadsRunUnderSomeConfig(t *testing.T) {
	cl := PaperCluster()
	c := tunedConfig(t)
	for name, wls := range PaperWorkloads() {
		for i, w := range wls {
			out := Run(cl, w, c, sample.NewRNG(uint64(i)), math.Inf(1))
			if !out.Completed {
				t.Errorf("%s D%d did not complete under tuned config: %+v", name, i+1, out)
			}
			if out.Seconds < 5 || out.Seconds > 2000 {
				t.Errorf("%s D%d implausible duration %v", name, i+1, out.Seconds)
			}
		}
	}
}

func TestWorkloadByName(t *testing.T) {
	w, err := WorkloadByName("PageRank", 2)
	if err != nil || w.Dataset != "10M pages" {
		t.Errorf("WorkloadByName = %v, %v", w.Dataset, err)
	}
	if _, err := WorkloadByName("Nope", 0); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := WorkloadByName("KMeans", 3); err == nil {
		t.Error("dataset index 3 accepted")
	}
}

func TestRunNeverNegativeProperty(t *testing.T) {
	cl := PaperCluster()
	s := space()
	w := TeraSort(20)
	f := func(seed uint64) bool {
		rng := sample.NewRNG(seed)
		u := make([]float64, s.Dim())
		for i := range u {
			u[i] = rng.Float64()
		}
		out := Run(cl, w, s.Decode(u), sample.NewRNG(seed), 480)
		return out.Seconds > 0 && !math.IsNaN(out.Seconds) && !math.IsInf(out.Seconds, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEvaluatorAccounting(t *testing.T) {
	ev := NewEvaluator(PaperCluster(), KMeans(200), 1, 480)
	c := tunedConfig(t)
	r1 := ev.EvaluateSpec(c, EvalSpec{})
	r2 := ev.EvaluateSpec(c, EvalSpec{})
	if ev.Evals() != 2 {
		t.Fatalf("Evals = %d", ev.Evals())
	}
	if r1.Seconds == r2.Seconds {
		t.Error("per-evaluation noise missing (identical observations)")
	}
	cost := ev.SearchCost()
	if math.Abs(cost-(math.Min(r1.Raw, 480)+math.Min(r2.Raw, 480))) > 1e-9 {
		t.Errorf("SearchCost = %v, want sum of consumed time", cost)
	}
	if len(ev.History()) != 2 {
		t.Errorf("History len = %d", len(ev.History()))
	}
	best, ok := ev.Best()
	if !ok || best.Seconds > r1.Seconds && best.Seconds > r2.Seconds {
		t.Errorf("Best = %+v ok=%v", best, ok)
	}
}

func TestEvaluatorFailureChargesOnlyConsumedTime(t *testing.T) {
	ev := NewEvaluator(PaperCluster(), PageRank(10), 3, 480)
	def := space().Default() // OOMs quickly
	r := ev.EvaluateSpec(def, EvalSpec{})
	if !r.OOM {
		t.Fatalf("default PageRank should OOM, got %+v", r)
	}
	if r.Seconds != 480 {
		t.Errorf("failed eval objective = %v, want cap 480", r.Seconds)
	}
	if ev.SearchCost() >= 480 {
		t.Errorf("failed eval should charge only consumed time, charged %v", ev.SearchCost())
	}
}

func TestEvaluatorCapDefaults(t *testing.T) {
	ev := NewEvaluator(PaperCluster(), KMeans(200), 1, 0)
	if ev.CapSeconds != 480 {
		t.Errorf("default cap = %v, want the paper's 480", ev.CapSeconds)
	}
}

func TestEvaluatorReset(t *testing.T) {
	ev := NewEvaluator(PaperCluster(), KMeans(200), 1, 480)
	ev.EvaluateSpec(tunedConfig(t), EvalSpec{})
	ev.Reset(2)
	if ev.Evals() != 0 || ev.SearchCost() != 0 || len(ev.History()) != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestEvaluatorMeasureDoesNotChargeCost(t *testing.T) {
	ev := NewEvaluator(PaperCluster(), KMeans(200), 1, 480)
	m := ev.Measure(tunedConfig(t), 3, 99)
	if m <= 0 {
		t.Fatalf("Measure = %v", m)
	}
	if ev.SearchCost() != 0 || ev.Evals() != 0 {
		t.Error("Measure charged search cost")
	}
}

func TestEvaluatorConcurrent(t *testing.T) {
	ev := NewEvaluator(PaperCluster(), TeraSort(20), 1, 480)
	c := tunedConfig(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				ev.EvaluateSpec(c, EvalSpec{})
			}
		}()
	}
	wg.Wait()
	if ev.Evals() != 40 || len(ev.History()) != 40 {
		t.Errorf("Evals=%d history=%d, want 40", ev.Evals(), len(ev.History()))
	}
}

func TestInfeasibleConfigFailsFast(t *testing.T) {
	ev := NewEvaluator(PaperCluster(), KMeans(200), 1, 480)
	bad := tunedConfig(t).
		With(conf.ExecutorMemory, 184320).
		With(conf.ExecutorMemoryOverhead, 8192).
		With(conf.OffHeapEnabled, 1).
		With(conf.OffHeapSize, 16384)
	r := ev.EvaluateSpec(bad, EvalSpec{})
	if !r.Infeasible {
		t.Fatal("expected infeasible")
	}
	if r.Seconds != 480 {
		t.Errorf("objective for infeasible = %v, want cap", r.Seconds)
	}
	if ev.SearchCost() > 30 {
		t.Errorf("infeasible should be cheap to discover, cost %v", ev.SearchCost())
	}
}

func TestExecutorCoresMemoryBalanceMatters(t *testing.T) {
	// Figure 8's premise: imbalanced cores:memory performs poorly.
	cl := PaperCluster()
	w := PageRank(10)
	balanced := tunedConfig(t)
	starvedMem := tunedConfig(t).With(conf.ExecutorMemory, 8192).With(conf.ExecutorCores, 32)
	b := Run(cl, w, balanced, sample.NewRNG(11), math.Inf(1))
	s := Run(cl, w, starvedMem, sample.NewRNG(11), math.Inf(1))
	if !b.Completed {
		t.Fatal("balanced config failed")
	}
	if s.Completed && s.Seconds < b.Seconds {
		t.Errorf("32 cores + 8GB (%v) should not beat balanced (%v)", s.Seconds, b.Seconds)
	}
}

func TestEvaluateBatchMatchesSequential(t *testing.T) {
	space := space()
	design := sample.LHS(24, space.Dim(), sample.NewRNG(31))
	cfgs := make([]conf.Config, len(design))
	for i, u := range design {
		cfgs[i] = space.Decode(u)
	}

	seq := NewEvaluator(PaperCluster(), TeraSort(20), 99, 480)
	var seqRecs []EvalRecord
	for _, c := range cfgs {
		seqRecs = append(seqRecs, seq.EvaluateSpec(c, EvalSpec{}))
	}

	par := NewEvaluator(PaperCluster(), TeraSort(20), 99, 480)
	parRecs := par.EvaluateSpecCtx(context.Background(), cfgs, EvalSpec{Workers: 8})

	if len(parRecs) != len(seqRecs) {
		t.Fatalf("record counts differ: %d vs %d", len(parRecs), len(seqRecs))
	}
	for i := range seqRecs {
		if parRecs[i].Seconds != seqRecs[i].Seconds || parRecs[i].Completed != seqRecs[i].Completed {
			t.Fatalf("record %d differs: parallel %+v vs sequential %+v", i, parRecs[i], seqRecs[i])
		}
	}
	if par.SearchCost() != seq.SearchCost() {
		t.Errorf("cost differs: %v vs %v", par.SearchCost(), seq.SearchCost())
	}
	if par.Evals() != seq.Evals() {
		t.Errorf("evals differ: %d vs %d", par.Evals(), seq.Evals())
	}
	// History committed in index order.
	h := par.History()
	for i := range h {
		if h[i].Seconds != seqRecs[i].Seconds {
			t.Fatalf("history order broken at %d", i)
		}
	}
}

func TestEvaluateBatchEmpty(t *testing.T) {
	ev := NewEvaluator(PaperCluster(), TeraSort(20), 1, 480)
	if got := ev.EvaluateSpecCtx(context.Background(), nil, EvalSpec{Workers: 4}); got != nil {
		t.Errorf("empty batch = %v", got)
	}
	if ev.Evals() != 0 {
		t.Error("empty batch charged evaluations")
	}
}

func TestCrossClusterOptimaDiffer(t *testing.T) {
	// A configuration tuned for one cluster should lose to native
	// tuning on the other: executor sizing depends on node shape.
	space := space()
	w := TeraSort(30)

	bestOn := func(cl Cluster, seed uint64) (conf.Config, float64) {
		ev := NewEvaluator(cl, w, seed, 480)
		best := math.Inf(1)
		var bestCfg conf.Config
		for _, u := range sample.LHS(120, space.Dim(), sample.NewRNG(seed)) {
			rec := ev.EvaluateSpec(space.Decode(u), EvalSpec{})
			if rec.Completed && rec.Seconds < best {
				best, bestCfg = rec.Seconds, rec.Config
			}
		}
		return bestCfg, best
	}
	paperBest, _ := bestOn(PaperCluster(), 7)
	cloudBest, _ := bestOn(CloudCluster(), 7)

	cloudEv := NewEvaluator(CloudCluster(), w, 99, 480)
	transferred := cloudEv.Measure(paperBest, 5, 3)
	native := cloudEv.Measure(cloudBest, 5, 3)
	if native >= transferred {
		t.Errorf("native cloud tuning (%v) should beat transferred config (%v)", native, transferred)
	}
}

func TestCloudClusterFeasibilityDiffers(t *testing.T) {
	// A 100 GB executor fits the paper cluster's 192 GB nodes but not
	// a 64 GB cloud VM.
	big := tunedConfig(t).With(conf.ExecutorMemory, 102400)
	if _, ok := PackExecutors(PaperCluster(), big); !ok {
		t.Fatal("100GB executor should fit the paper cluster")
	}
	if _, ok := PackExecutors(CloudCluster(), big); ok {
		t.Fatal("100GB executor should not fit a 64GB cloud VM")
	}
}
