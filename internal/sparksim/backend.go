package sparksim

import (
	"fmt"
	"sort"

	"repro/internal/backend"
	"repro/internal/conf"
	"repro/internal/sample"
)

// WorkloadName implements backend.Workload.
func (w Workload) WorkloadName() string { return w.Name }

// DatasetName implements backend.Workload.
func (w Workload) DatasetName() string { return w.Dataset }

// Backend exposes the Spark simulator through the backend registry:
// the 44-parameter Spark space, the SparkBench workload catalog and
// the fault-injecting Evaluator. The zero value uses PaperCluster;
// set Cluster to tune against a different layout.
type Backend struct {
	// Cluster is the hardware the workloads run on; the zero value
	// selects PaperCluster().
	Cluster Cluster
}

// Name implements backend.Backend.
func (Backend) Name() string { return "spark" }

// Description implements backend.Backend.
func (Backend) Description() string {
	return "Spark analytics jobs on a cluster (SparkBench workloads, 44-parameter space)"
}

// Space implements backend.Backend.
func (Backend) Space() *conf.Space { return conf.SparkSpace() }

// DefaultCap implements backend.Backend: the paper's 480 s limit.
func (Backend) DefaultCap() float64 { return 480 }

// Workloads implements backend.Backend.
func (Backend) Workloads() []string {
	names := make([]string, 0, 8)
	for name := range PaperWorkloads() {
		names = append(names, name)
	}
	names = append(names, "WordCount", "SQLAggregation", "TriangleCount")
	sort.Strings(names)
	return names
}

// Workload implements backend.Backend via WorkloadByName.
func (Backend) Workload(name string, dataset int) (backend.Workload, error) {
	return WorkloadByName(name, dataset)
}

func (b Backend) cluster() Cluster {
	if b.Cluster.Workers == 0 {
		return PaperCluster()
	}
	return b.Cluster
}

// NewEvaluator implements backend.Backend. w must be a sparksim
// Workload (the value this backend's Workload method returns).
func (b Backend) NewEvaluator(w backend.Workload, seed uint64, capSeconds float64, faults backend.FaultPlan) (backend.Evaluator, error) {
	sw, ok := w.(Workload)
	if !ok {
		return nil, fmt.Errorf("sparksim: workload %T is not a sparksim.Workload", w)
	}
	ev := NewEvaluator(b.cluster(), sw, seed, capSeconds)
	ev.Faults = faults
	return ev, nil
}

// ScaledWorkload implements the optional scaled-workload capability
// (probed via interface assertion by the paper experiments): a
// workload family at an arbitrary scale in the family's natural unit
// (GB, iterations). Only the families with scale constructors are
// reachable; the catalog surface is Workload/Workloads.
func (Backend) ScaledWorkload(name string, scale float64) (backend.Workload, error) {
	switch name {
	case "PageRank":
		return PageRank(scale), nil
	case "KMeans":
		return KMeans(scale), nil
	case "ConnectedComponents":
		return ConnectedComponents(scale), nil
	case "LogisticRegression":
		return LogisticRegression(scale), nil
	case "TeraSort":
		return TeraSort(scale), nil
	case "WordCount":
		return WordCount(scale), nil
	case "SQLAggregation":
		return SQLAggregation(scale), nil
	case "TriangleCount":
		return TriangleCount(scale), nil
	}
	return nil, fmt.Errorf("sparksim: no scale constructor for workload %q", name)
}

// RunOnce implements the optional raw-run capability: one simulated
// run of a configuration outside any evaluator — no search-cost
// accounting, no fault injection, an arbitrary cap (Inf allowed). The
// default-comparison experiment uses it to time the untuned default.
func (b Backend) RunOnce(w backend.Workload, c conf.Config, seed uint64, capSeconds float64) (backend.Outcome, error) {
	sw, ok := w.(Workload)
	if !ok {
		return backend.Outcome{}, fmt.Errorf("sparksim: workload %T is not a sparksim.Workload", w)
	}
	out := Run(b.cluster(), sw, c, sample.NewRNG(seed), capSeconds)
	return backend.Outcome{
		Seconds:    out.Seconds,
		Completed:  out.Completed,
		OOM:        out.OOM,
		Transient:  out.Transient,
		Infeasible: out.Infeasible,
	}, nil
}

// RenamedWorkload implements the optional rename capability: the same
// trace under a fresh name, giving it a distinct memoization and
// workload-mapping identity (the mapping experiment tunes a renamed
// PageRank to test lookalike routing).
func (Backend) RenamedWorkload(w backend.Workload, name string) (backend.Workload, error) {
	sw, ok := w.(Workload)
	if !ok {
		return nil, fmt.Errorf("sparksim: workload %T is not a sparksim.Workload", w)
	}
	sw.Name = name
	return sw, nil
}
