package sparksim

import (
	"context"
	"strings"
	"testing"

	"repro/internal/conf"
	"repro/internal/sample"
)

// sampleConfigs draws n valid configurations for fault tests.
func sampleConfigs(n int, seed uint64) []conf.Config {
	sp := conf.SparkSpace()
	rng := sample.NewRNG(seed)
	cfgs := make([]conf.Config, n)
	u := make([]float64, sp.Dim())
	for i := range cfgs {
		for j := range u {
			u[j] = rng.Float64()
		}
		cfgs[i] = sp.Decode(u)
	}
	return cfgs
}

// recEq compares the observation payload of two records (Config is
// not comparable; identical indices imply identical configs here).
func recEq(a, b EvalRecord) bool {
	return a.Seconds == b.Seconds && a.Raw == b.Raw &&
		a.Completed == b.Completed && a.OOM == b.OOM &&
		a.Infeasible == b.Infeasible && a.Transient == b.Transient &&
		a.Skipped == b.Skipped
}

// TestZeroPlanConsumesNoRandomness: a disabled plan must leave runs
// bit-identical to plain Run — same noise stream, same outcome.
func TestZeroPlanConsumesNoRandomness(t *testing.T) {
	cl := PaperCluster()
	w := TeraSort(300)
	for _, c := range sampleConfigs(20, 11) {
		a := Run(cl, w, c, sample.NewRNG(42), 480)
		b := RunWithFaults(cl, w, c, sample.NewRNG(42), 480, FaultPlan{}, sample.NewRNG(7))
		if a.Seconds != b.Seconds || a.Completed != b.Completed || a.OOM != b.OOM {
			t.Fatalf("zero plan changed outcome: %+v vs %+v", a, b)
		}
	}
}

// TestFaultPlanDeterministic: the same (seed, plan) must reproduce the
// same fault sequence; a different plan seed must not.
func TestFaultPlanDeterministic(t *testing.T) {
	cl := PaperCluster()
	w := TeraSort(300)
	plan := DefaultFaultPlan()
	cfgs := sampleConfigs(40, 3)

	runAll := func(planSeed uint64) []EvalRecord {
		p := plan
		p.Seed = planSeed
		ev := NewEvaluator(cl, w, 9, 480)
		ev.Faults = p
		for _, c := range cfgs {
			ev.EvaluateSpec(c, EvalSpec{})
		}
		return ev.History()
	}
	a, b := runAll(5), runAll(5)
	for i := range a {
		if !recEq(a[i], b[i]) {
			t.Fatalf("record %d differs under identical plan: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := runAll(6)
	same := true
	for i := range a {
		if !recEq(a[i], c[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("changing the fault seed left every record identical")
	}
}

// TestFaultKindsAllStrike: under aggressive probabilities every fault
// class must show up in the event logs across a batch of runs.
func TestFaultKindsAllStrike(t *testing.T) {
	cl := PaperCluster()
	w := TeraSort(300)
	plan := FaultPlan{
		ExecutorLossProb: 0.5,
		StragglerProb:    0.3,
		StragglerFactor:  3,
		TransientErrProb: 0.3,
		SpuriousOOMProb:  0.3,
		Seed:             1,
	}
	seen := map[string]bool{}
	var transients, ooms int
	for i, c := range sampleConfigs(60, 17) {
		rng := sample.NewRNG(100 + uint64(i))
		frng := sample.NewRNG(900 + uint64(i))
		out := RunWithFaults(cl, w, c, rng, 480, plan, frng)
		for _, ev := range out.Events {
			for _, kind := range []string{"straggler amplification", "executor lost", "spurious OOM", "transient failure"} {
				if strings.Contains(ev, kind) {
					seen[kind] = true
				}
			}
		}
		if out.Transient {
			transients++
			if out.Completed {
				t.Fatalf("transient run reported Completed: %+v", out)
			}
		}
		if out.OOM {
			ooms++
		}
	}
	for _, kind := range []string{"straggler amplification", "executor lost", "spurious OOM", "transient failure"} {
		if !seen[kind] {
			t.Errorf("fault kind %q never observed in 60 runs", kind)
		}
	}
	if transients == 0 || ooms == 0 {
		t.Errorf("want transient and OOM outcomes, got %d transient / %d OOM", transients, ooms)
	}
}

// TestFaultBatchSequentialParity: with faults on, a parallel batch
// must commit bit-identical records to sequential evaluation.
func TestFaultBatchSequentialParity(t *testing.T) {
	cl := PaperCluster()
	w := TeraSort(300)
	cfgs := sampleConfigs(24, 23)

	seq := NewEvaluator(cl, w, 77, 480)
	seq.Faults = DefaultFaultPlan()
	for _, c := range cfgs {
		seq.EvaluateSpec(c, EvalSpec{})
	}
	par := NewEvaluator(cl, w, 77, 480)
	par.Faults = DefaultFaultPlan()
	par.EvaluateSpecCtx(context.Background(), cfgs, EvalSpec{Workers: 4})

	a, b := seq.History(), par.History()
	if len(a) != len(b) {
		t.Fatalf("history length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !recEq(a[i], b[i]) {
			t.Fatalf("record %d: sequential %+v vs batch %+v", i, a[i], b[i])
		}
	}
	if seq.SearchCost() != par.SearchCost() {
		t.Fatalf("search cost %v vs %v", seq.SearchCost(), par.SearchCost())
	}
}

// TestEvaluateBatchCtxPreCancelled: a cancelled context must skip the
// whole batch — no observations, no cost, no charged evaluations.
func TestEvaluateBatchCtxPreCancelled(t *testing.T) {
	ev := NewEvaluator(PaperCluster(), TeraSort(300), 5, 480)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	recs := ev.EvaluateSpecCtx(ctx, sampleConfigs(8, 2), EvalSpec{Workers: 4})
	if len(recs) != 8 {
		t.Fatalf("want 8 records, got %d", len(recs))
	}
	for i, r := range recs {
		if !r.Skipped || r.Completed || r.Seconds != 0 {
			t.Fatalf("record %d not cleanly skipped: %+v", i, r)
		}
	}
	if ev.Evals() != 0 || ev.SearchCost() != 0 || len(ev.History()) != 0 {
		t.Fatalf("cancelled batch charged work: evals=%d cost=%v hist=%d",
			ev.Evals(), ev.SearchCost(), len(ev.History()))
	}
}

// TestExecutorLossShrinksLayout: losing an executor must reduce the
// slot count for the remaining stages, never below one executor.
func TestExecutorLossShrinksLayout(t *testing.T) {
	cl := PaperCluster()
	c := conf.SparkSpace().Default()
	ex, ok := PackExecutors(cl, c)
	if !ok {
		t.Fatal("default config must be feasible")
	}
	e := &engine{cl: cl, ex: ex}
	want := ex.Count - 1
	e.loseExecutor()
	if e.ex.Count != want || e.ex.TotalSlots != want*ex.SlotsEach {
		t.Fatalf("after loss: %+v, want count %d", e.ex, want)
	}
	e.ex.Count = 1
	e.loseExecutor()
	if e.ex.Count != 1 {
		t.Fatal("loseExecutor went below one executor")
	}
}
