package sparksim

import (
	"fmt"
	"strings"
)

// Source says where a stage reads its input from.
type Source int

const (
	// FromHDFS stages scan input files; their task count follows
	// spark.files.maxPartitionBytes.
	FromHDFS Source = iota
	// FromCache stages read a previously cached RDD; missing cached
	// fractions are recomputed from the origin.
	FromCache
	// FromShuffle stages read the previous stage's shuffle output;
	// their task count follows spark.default.parallelism.
	FromShuffle
)

// Stage describes one unit of the simulated job DAG. Iterative
// workloads unroll their loop into repeated stages at plan time.
type Stage struct {
	// Name identifies the stage in events and logs.
	Name string
	// Source determines the input location and the task count rule.
	Source Source
	// InputMB is the logical (uncompressed, serialized) data volume
	// the stage consumes.
	InputMB float64
	// CacheKey names the cached RDD read when Source == FromCache.
	CacheKey string
	// CostFactor scales per-MB CPU work relative to the cluster's
	// core speed (1.0 ≈ simple parsing; >1 compute-heavy).
	CostFactor float64
	// ExpandFactor is the in-memory expansion of the working set over
	// the serialized bytes (JVM object overhead); it multiplies with
	// the serializer's own expansion.
	ExpandFactor float64
	// ShuffleOutMB is the serialized volume shuffled to the next stage.
	ShuffleOutMB float64
	// WriteHDFSMB is output persisted to HDFS at the end of the stage.
	WriteHDFSMB float64
	// MemHungry is the fraction of the working set that must be
	// memory-resident for the stage's operators (hash/cogroup
	// structures, graph adjacency arrays); it cannot spill, so it
	// drives OOM failures. Streaming map stages are near zero.
	MemHungry float64
	// SpillFrac is the fraction of the working set that flows through
	// spillable operator buffers (sorts, aggregations, joins); demand
	// beyond the task's execution-memory share spills to disk.
	SpillFrac float64
	// CacheOutMB, if > 0, is the deserialized size of an RDD this
	// stage materializes into the block store under CacheOutKey.
	CacheOutMB  float64
	CacheOutKey string
	// CacheDiskFallback marks the cached RDD as MEMORY_AND_DISK:
	// evicted partitions are read back from disk instead of being
	// recomputed from lineage (MEMORY_ONLY).
	CacheDiskFallback bool
	// BroadcastMB is driver-to-executor broadcast data (model
	// centroids, weight vectors).
	BroadcastMB float64
	// Skew is the relative slowdown of the slowest task over the
	// median (data skew / stragglers).
	Skew float64
}

// Workload is a named job plan over a specific input dataset.
type Workload struct {
	// Name is the workload family, e.g. "PageRank".
	Name string
	// Dataset describes the input scale, e.g. "5M pages".
	Dataset string
	// Stages is the unrolled stage plan.
	Stages []Stage
}

// ID returns "Name/Dataset" for use as a cache key across tuning
// sessions of the same workload family.
func (w Workload) ID() string { return w.Name + "/" + w.Dataset }

// graphExpand is the in-memory expansion of graph structures
// (adjacency lists, vertex maps) relative to their serialized size;
// primitive-heavy ML data expands far less.
const (
	graphExpand = 3.5
	mlExpand    = 1.2
	rowExpand   = 2.6
)

// PageRank builds the SparkBench PageRank plan for the given input
// scale in millions of pages (§5.1 Table 1 uses 5, 7.5 and 10M).
// Structure: load & cache the link graph, then iterations of
// contribution generation (cogroup with ranks, shuffle) and rank
// aggregation.
func PageRank(millionPages float64) Workload {
	dataMB := millionPages * 1200 // edge list, ~75 edges/page at ~16 B/edge
	const iters = 8
	stages := []Stage{{
		Name:         "load-links",
		Source:       FromHDFS,
		InputMB:      dataMB,
		CostFactor:   1.1, // parse edges, build adjacency
		ExpandFactor: graphExpand,
		MemHungry:    0.6, // adjacency arrays built whole
		SpillFrac:    0.2,
		CacheOutMB:   dataMB * graphExpand,
		CacheOutKey:  "links",
		ShuffleOutMB: dataMB * 0.25, // initial ranks partitioning
		Skew:         0.5,           // power-law degree distribution
	}}
	for i := 0; i < iters; i++ {
		stages = append(stages,
			Stage{
				Name:         fmt.Sprintf("contrib-%d", i),
				Source:       FromCache,
				CacheKey:     "links",
				InputMB:      dataMB * 1.05, // links + ranks
				CostFactor:   0.9,           // cogroup + contribution flatMap
				ExpandFactor: graphExpand,
				MemHungry:    0.6, // cogroup hash structures
				SpillFrac:    0.3,
				ShuffleOutMB: dataMB * 0.45,
				Skew:         0.5,
			},
			Stage{
				Name:         fmt.Sprintf("ranks-%d", i),
				Source:       FromShuffle,
				InputMB:      dataMB * 0.45,
				CostFactor:   0.4, // reduceByKey sum
				ExpandFactor: rowExpand,
				MemHungry:    0.12, // sort-based aggregation spills
				SpillFrac:    0.8,
				ShuffleOutMB: dataMB * 0.06, // updated compact ranks
				Skew:         0.35,
			})
	}
	return Workload{
		Name:    "PageRank",
		Dataset: fmt.Sprintf("%gM pages", millionPages),
		Stages:  stages,
	}
}

// KMeans builds the SparkBench KMeans plan for the given input scale
// in millions of points (Table 1 uses 200, 300, 400M). Structure:
// load, parse and cache the points, then iterations of assignment
// (broadcast centroids, compute-heavy map, tiny shuffle) and centroid
// update. All RDDs are cached (§5.3: "KM caches all RDDs in memory"),
// so configurations that cause evictions recompute aggressively.
func KMeans(millionPoints float64) Workload {
	dataMB := millionPoints * 50.0 / 1000 * 1024 // ~50 bytes per point
	const iters = 8
	stages := []Stage{{
		Name:         "load-points",
		Source:       FromHDFS,
		InputMB:      dataMB,
		CostFactor:   1.0, // parse text into vectors
		ExpandFactor: mlExpand,
		MemHungry:    0.05, // streaming map
		SpillFrac:    0.05,
		CacheOutMB:   dataMB * mlExpand,
		CacheOutKey:  "points",
		Skew:         0.15,
	}}
	// SparkBench KMeans caches all RDDs (§5.3): intermediate
	// assignment RDDs are cached MEMORY_ONLY, chaining lineage so
	// that evictions cascade into recursive recomputation.
	prevKey := "points"
	for i := 0; i < iters; i++ {
		assign := Stage{
			Name:         fmt.Sprintf("assign-%d", i),
			Source:       FromCache,
			CacheKey:     prevKey,
			InputMB:      dataMB,
			CostFactor:   1.0, // distance computations dominate
			ExpandFactor: mlExpand,
			MemHungry:    0.05,
			SpillFrac:    0.05,
			ShuffleOutMB: 2, // per-partition partial sums
			BroadcastMB:  4, // centroid matrix
			Skew:         0.15,
		}
		if i%2 == 0 {
			key := fmt.Sprintf("points-%d", i)
			assign.CacheOutMB = dataMB * mlExpand
			assign.CacheOutKey = key
			prevKey = key
		}
		stages = append(stages,
			assign,
			Stage{
				Name:         fmt.Sprintf("update-%d", i),
				Source:       FromShuffle,
				InputMB:      2,
				CostFactor:   0.3,
				ExpandFactor: rowExpand,
				MemHungry:    0.1,
				SpillFrac:    0.8,
				Skew:         0.1,
			})
	}
	return Workload{
		Name:    "KMeans",
		Dataset: fmt.Sprintf("%gM points", millionPoints),
		Stages:  stages,
	}
}

// ConnectedComponents builds the graph label-propagation plan for the
// given scale in millions of pages (Table 1 uses 5, 7.5, 10M).
// Similar shape to PageRank but with shrinking per-iteration message
// volume as components converge.
func ConnectedComponents(millionPages float64) Workload {
	dataMB := millionPages * 1200
	const iters = 7
	stages := []Stage{{
		Name:         "load-graph",
		Source:       FromHDFS,
		InputMB:      dataMB,
		CostFactor:   1.1,
		ExpandFactor: graphExpand,
		MemHungry:    0.6,
		SpillFrac:    0.2,
		CacheOutMB:   dataMB * graphExpand,
		CacheOutKey:  "graph",
		ShuffleOutMB: dataMB * 0.2,
		Skew:         0.5,
	}}
	shrink := 1.0
	for i := 0; i < iters; i++ {
		stages = append(stages,
			Stage{
				Name:         fmt.Sprintf("messages-%d", i),
				Source:       FromCache,
				CacheKey:     "graph",
				InputMB:      dataMB * (0.9 + 0.15*shrink),
				CostFactor:   0.8,
				ExpandFactor: graphExpand,
				MemHungry:    0.6,
				SpillFrac:    0.3,
				ShuffleOutMB: dataMB * 0.4 * shrink,
				Skew:         0.5,
			},
			Stage{
				Name:         fmt.Sprintf("labels-%d", i),
				Source:       FromShuffle,
				InputMB:      dataMB * 0.4 * shrink,
				CostFactor:   0.4,
				ExpandFactor: rowExpand,
				MemHungry:    0.12,
				SpillFrac:    0.8,
				ShuffleOutMB: dataMB * 0.05 * shrink,
				Skew:         0.35,
			})
		shrink *= 0.7
	}
	return Workload{
		Name:    "ConnectedComponents",
		Dataset: fmt.Sprintf("%gM pages", millionPages),
		Stages:  stages,
	}
}

// LogisticRegression builds the gradient-descent LR plan for the
// given scale in millions of examples (Table 1 uses 100, 200, 300M).
// Load & cache the examples, then iterations of gradient computation
// with a broadcast weight vector and a tree-aggregated result.
func LogisticRegression(millionExamples float64) Workload {
	dataMB := millionExamples * 100.0 / 1000 * 1024 // ~100 bytes per example
	const iters = 8
	stages := []Stage{{
		Name:              "load-examples",
		Source:            FromHDFS,
		InputMB:           dataMB,
		CostFactor:        0.9,
		ExpandFactor:      mlExpand,
		MemHungry:         0.05,
		SpillFrac:         0.05,
		CacheOutMB:        dataMB * mlExpand,
		CacheOutKey:       "examples",
		CacheDiskFallback: true, // MLlib caches MEMORY_AND_DISK
		Skew:              0.15,
	}}
	for i := 0; i < iters; i++ {
		stages = append(stages,
			Stage{
				Name:         fmt.Sprintf("gradient-%d", i),
				Source:       FromCache,
				CacheKey:     "examples",
				InputMB:      dataMB,
				CostFactor:   1.1, // dot products + exp
				ExpandFactor: mlExpand,
				MemHungry:    0.05,
				SpillFrac:    0.05,
				ShuffleOutMB: 1, // aggregated gradient
				BroadcastMB:  2, // weight vector
				Skew:         0.15,
			},
			Stage{
				Name:         fmt.Sprintf("step-%d", i),
				Source:       FromShuffle,
				InputMB:      1,
				CostFactor:   0.3,
				ExpandFactor: rowExpand,
				MemHungry:    0.1,
				SpillFrac:    0.8,
				Skew:         0.1,
			})
	}
	return Workload{
		Name:    "LogisticRegression",
		Dataset: fmt.Sprintf("%gM examples", millionExamples),
		Stages:  stages,
	}
}

// TeraSort builds the sort micro-benchmark plan for the given input
// size in GB (Table 1 uses 20, 30, 40 GB): a range-partitioning map
// stage that shuffles the entire dataset, then a sort-and-write
// reduce stage. Shuffle compression and serialization dominate.
func TeraSort(gb float64) Workload {
	dataMB := gb * 1024
	return Workload{
		Name:    "TeraSort",
		Dataset: fmt.Sprintf("%gGB", gb),
		Stages: []Stage{
			{
				Name:         "partition-map",
				Source:       FromHDFS,
				InputMB:      dataMB,
				CostFactor:   0.5,
				ExpandFactor: rowExpand,
				MemHungry:    0.05,
				SpillFrac:    0.5,    // map-side sort buffers
				ShuffleOutMB: dataMB, // everything moves
				Skew:         0.4,
			},
			{
				Name:         "sort-reduce",
				Source:       FromShuffle,
				InputMB:      dataMB,
				CostFactor:   0.8, // merge sort
				ExpandFactor: rowExpand,
				MemHungry:    0.14, // pinned sort runs
				SpillFrac:    0.86, // the rest sorts through spills
				WriteHDFSMB:  dataMB,
				Skew:         0.4,
			},
		},
	}
}

// PaperWorkloads returns the 5×3 workload/dataset grid of Table 1:
// D1, D2, D3 for each of the five SparkBench workloads.
func PaperWorkloads() map[string][3]Workload {
	return map[string][3]Workload{
		"PageRank":            {PageRank(5), PageRank(7.5), PageRank(10)},
		"KMeans":              {KMeans(200), KMeans(300), KMeans(400)},
		"ConnectedComponents": {ConnectedComponents(5), ConnectedComponents(7.5), ConnectedComponents(10)},
		"LogisticRegression":  {LogisticRegression(100), LogisticRegression(200), LogisticRegression(300)},
		"TeraSort":            {TeraSort(20), TeraSort(30), TeraSort(40)},
	}
}

// WorkloadByName constructs the named workload at dataset index 0..2
// (D1..D3): the five paper workloads of Table 1, plus the extra
// workloads from workload_extra.go at three scales each. It returns
// an error for unknown names or indices.
func WorkloadByName(name string, dataset int) (Workload, error) {
	if dataset < 0 || dataset > 2 {
		return Workload{}, fmt.Errorf("sparksim: dataset index %d out of range 0..2", dataset)
	}
	if wls, ok := PaperWorkloads()[name]; ok {
		return wls[dataset], nil
	}
	extras := map[string][3]Workload{
		"WordCount":      {WordCount(20), WordCount(40), WordCount(60)},
		"SQLAggregation": {SQLAggregation(30), SQLAggregation(60), SQLAggregation(90)},
		"TriangleCount":  {TriangleCount(2), TriangleCount(3), TriangleCount(4)},
	}
	if wls, ok := extras[name]; ok {
		return wls[dataset], nil
	}
	return Workload{}, fmt.Errorf("sparksim: unknown workload %q (have PageRank, KMeans, ConnectedComponents, LogisticRegression, TeraSort, WordCount, SQLAggregation, TriangleCount)", name)
}

// Describe renders the workload's stage plan as a fixed-width table —
// stage names, sources, data volumes and model knobs — for
// understanding what a workload does before tuning it (robosim's
// -plan flag).
func (w Workload) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %d stages\n", w.ID(), len(w.Stages))
	fmt.Fprintf(&sb, "%-16s %-8s %10s %10s %10s %6s %6s %6s\n",
		"stage", "source", "input", "shuffle", "cache", "cost", "skew", "pin")
	sb.WriteString(strings.Repeat("-", 80))
	sb.WriteByte('\n')
	src := map[Source]string{FromHDFS: "hdfs", FromCache: "cache", FromShuffle: "shuffle"}
	fmtMB := func(mb float64) string {
		switch {
		case mb <= 0:
			return "-"
		case mb >= 1024:
			return fmt.Sprintf("%.1fGB", mb/1024)
		default:
			return fmt.Sprintf("%.0fMB", mb)
		}
	}
	for _, st := range w.Stages {
		fmt.Fprintf(&sb, "%-16s %-8s %10s %10s %10s %6.1f %6.2f %6.2f\n",
			st.Name, src[st.Source], fmtMB(st.InputMB), fmtMB(st.ShuffleOutMB),
			fmtMB(st.CacheOutMB), st.CostFactor, st.Skew, st.MemHungry)
	}
	return sb.String()
}

// TotalInputMB sums the data volume entering the plan from HDFS.
func (w Workload) TotalInputMB() float64 {
	var s float64
	for _, st := range w.Stages {
		if st.Source == FromHDFS {
			s += st.InputMB
		}
	}
	return s
}

// Validate reports structural problems in a user-defined workload
// plan: empty plans, non-positive inputs, cache reads that precede
// any cache write of that key, or missing expansion factors.
func (w Workload) Validate() error {
	if len(w.Stages) == 0 {
		return fmt.Errorf("sparksim: workload %q has no stages", w.Name)
	}
	written := map[string]bool{}
	for i, st := range w.Stages {
		if st.InputMB <= 0 {
			return fmt.Errorf("sparksim: %s stage %d (%s): InputMB must be > 0", w.Name, i, st.Name)
		}
		if st.ExpandFactor <= 0 {
			return fmt.Errorf("sparksim: %s stage %d (%s): ExpandFactor must be > 0", w.Name, i, st.Name)
		}
		if st.CostFactor < 0 || st.Skew < 0 || st.MemHungry < 0 || st.SpillFrac < 0 {
			return fmt.Errorf("sparksim: %s stage %d (%s): negative model knob", w.Name, i, st.Name)
		}
		if st.Source == FromCache && st.CacheKey == "" {
			return fmt.Errorf("sparksim: %s stage %d (%s): FromCache without CacheKey", w.Name, i, st.Name)
		}
		if st.Source == FromCache && !written[st.CacheKey] {
			return fmt.Errorf("sparksim: %s stage %d (%s): cache %q read before any stage writes it",
				w.Name, i, st.Name, st.CacheKey)
		}
		if st.CacheOutMB > 0 && st.CacheOutKey == "" {
			return fmt.Errorf("sparksim: %s stage %d (%s): CacheOutMB without CacheOutKey", w.Name, i, st.Name)
		}
		if st.CacheOutKey != "" {
			written[st.CacheOutKey] = true
		}
	}
	return nil
}
