package sparksim

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/conf"
)

// Outcome is the result of simulating one workload execution under a
// configuration.
type Outcome struct {
	// Seconds is the simulated wall-clock execution time. When the
	// run fails or is truncated it holds the time consumed up to that
	// point (capped at the limit by the Evaluator).
	Seconds float64
	// Completed is true when the job finished successfully.
	Completed bool
	// OOM is true when the job aborted with out-of-memory /
	// GC-overhead task failures.
	OOM bool
	// Transient is true when the run aborted on an injected transient
	// error (lost heartbeat, fetch storm): a retry of the same
	// configuration may well succeed, unlike OOM or infeasibility.
	Transient bool
	// Infeasible is true when no executor of the configured size fits
	// on the cluster (resource negotiation fails immediately).
	Infeasible bool
	// Events records notable incidents (OOM stages, heavy spills,
	// cache pressure) for diagnostics.
	Events []string
	// Breakdown holds per-stage timings when the run was started with
	// RunDetailed; nil otherwise.
	Breakdown []StageBreakdown
}

// StageBreakdown is the per-stage accounting RunDetailed collects.
type StageBreakdown struct {
	Name    string
	Seconds float64
	Tasks   int
	Waves   int
	// PerTask decomposition, in seconds per task.
	ComputeSec float64 // CPU including GC and codec/serde work
	DiskSec    float64
	NetSec     float64
	// SpillPerTaskMB is serialized bytes spilled per task (0 = fits).
	SpillPerTaskMB float64
	// CacheMissSec is stage-level time servicing cache misses.
	CacheMissSec float64
}

// codec models a compression codec's ratio and per-core throughput.
type codec struct {
	ratio             float64 // compressed size / raw size
	compMBps, decMBps float64
}

var codecs = map[string]codec{
	"lz4":    {ratio: 0.50, compMBps: 420, decMBps: 850},
	"lzf":    {ratio: 0.55, compMBps: 300, decMBps: 620},
	"snappy": {ratio: 0.52, compMBps: 460, decMBps: 900},
	"zstd":   {ratio: 0.36, compMBps: 130, decMBps: 420},
}

// serde models a serializer's CPU cost and serialized-size factor.
// In-memory (deserialized) object sizes do not depend on the
// serializer; shuffle/spill/broadcast bytes do.
type serde struct {
	serMBps, desMBps float64 // per-core throughput
	sizeFactor       float64 // serialized bytes / java-serialized bytes
}

var serdes = map[string]serde{
	"java": {serMBps: 55, desMBps: 75, sizeFactor: 1.00},
	"kryo": {serMBps: 240, desMBps: 300, sizeFactor: 0.65},
}

// oomHeadroom: a task whose unspillable working set exceeds this
// multiple of its execution-memory share dies with OOM / "GC overhead
// limit exceeded" instead of spilling through.
const oomHeadroom = 4.0

// gcThrash multiplies recompute cost of evicted MEMORY_ONLY cache
// partitions: lineage re-execution allocates and garbage-collects the
// whole partition each pass.
const gcThrash = 3.0

// perTaskLaunchSec is the scheduler+deserialization overhead per task.
const perTaskLaunchSec = 0.004

// cacheEntry tracks a materialized RDD in the simulated block store.
type cacheEntry struct {
	demandMB     float64 // bytes the RDD wants resident
	fraction     float64 // fraction actually resident cluster-wide
	rebuildSec   float64 // wall time to rebuild the RDD from its parent
	partitions   int
	diskFallback bool   // MEMORY_AND_DISK: misses read disk, no recompute
	parent       string // parent cached RDD for lineage cascades
	inputMB      float64
}

// effCodec returns the codec adjusted for the configured LZ4 block
// size: larger blocks improve the ratio slightly at a small
// throughput cost (only the lz4 codec reads this knob).
func effCodec(c conf.Config, base codec) codec {
	if c.Choice(conf.IOCompressionCodec) != "lz4" {
		return base
	}
	blockKB := float64(c.Int(conf.LZ4BlockSize))
	shift := math.Log2(blockKB/32) / 4 // -1..+1 over 16..512 KB
	base.ratio *= 1 - 0.03*shift
	base.compMBps *= 1 - 0.05*math.Abs(shift)
	return base
}

// engine carries per-run state.
type engine struct {
	cl    Cluster
	cfg   conf.Config
	ex    Executors
	cache map[string]*cacheEntry
	// derived config knobs
	ser         serde
	cdc         codec
	parallelism int
	maxPartMB   float64
	out         Outcome
	// collect enables per-stage breakdown accounting.
	collect bool
}

// Run simulates one execution of the workload under the configuration
// on the cluster. rng drives observation noise; pass a seeded source
// for reproducibility. capSeconds truncates runs that exceed it
// (pass +Inf for no cap — the Evaluator applies the paper's 480 s).
func Run(cl Cluster, w Workload, c conf.Config, rng *rand.Rand, capSeconds float64) Outcome {
	return run(cl, w, c, rng, capSeconds, false, FaultPlan{}, nil)
}

// RunDetailed is Run with per-stage accounting: the returned
// Outcome.Breakdown lists every executed stage's duration and cost
// decomposition (robosim's -stages flag).
func RunDetailed(cl Cluster, w Workload, c conf.Config, rng *rand.Rand, capSeconds float64) Outcome {
	return run(cl, w, c, rng, capSeconds, true, FaultPlan{}, nil)
}

// RunWithFaults is Run with fault injection: the plan's incidents are
// drawn from frng (a dedicated stream, so the run's noise sequence is
// untouched) and applied at stage boundaries. A zero plan or nil frng
// reduces to Run exactly.
func RunWithFaults(cl Cluster, w Workload, c conf.Config, rng *rand.Rand, capSeconds float64, plan FaultPlan, frng *rand.Rand) Outcome {
	return run(cl, w, c, rng, capSeconds, false, plan, frng)
}

func run(cl Cluster, w Workload, c conf.Config, rng *rand.Rand, capSeconds float64, collect bool, plan FaultPlan, frng *rand.Rand) Outcome {
	ex, ok := PackExecutors(cl, c)
	if !ok {
		return Outcome{Infeasible: true, Seconds: 15, Events: []string{"resource negotiation failed: executor does not fit"}}
	}
	e := &engine{
		cl:          cl,
		cfg:         c,
		ex:          ex,
		cache:       make(map[string]*cacheEntry),
		ser:         serdes[c.Choice(conf.Serializer)],
		cdc:         effCodec(c, codecs[c.Choice(conf.IOCompressionCodec)]),
		parallelism: int(c.Int(conf.DefaultParallelism)),
		maxPartMB:   float64(c.Int(conf.MaxPartitionBytes)),
		collect:     collect,
	}
	if e.ser.serMBps == 0 {
		panic(fmt.Sprintf("sparksim: unknown serializer %q", c.Choice(conf.Serializer)))
	}
	if e.cdc.compMBps == 0 {
		panic(fmt.Sprintf("sparksim: unknown codec %q", c.Choice(conf.IOCompressionCodec)))
	}

	var fs faultSchedule
	if plan.Enabled() && frng != nil {
		fs = scheduleFaults(plan, frng, len(w.Stages))
	}

	total := 2.0 // app submission, driver startup, executor registration
	for i := range w.Stages {
		st := &w.Stages[i]
		sec, failed := e.stageTime(st)
		// Per-stage noise models run-to-run variance of a shared
		// cluster (§2.2: contention and noise on network/storage).
		sec *= math.Exp(rng.NormFloat64() * 0.035)
		if fs.active {
			if m := fs.straggler[i]; m > 1 {
				sec *= m
				e.out.Events = append(e.out.Events,
					fmt.Sprintf("%s: fault: straggler amplification x%.1f", st.Name, m))
			}
			if i == fs.execLossStage && e.ex.Count > 1 {
				// One executor dies mid-stage: its in-flight partitions
				// are recomputed (~one executor's share of the stage),
				// and the remaining stages run on fewer slots.
				sec *= 1 + 1.5/float64(e.ex.Count)
				e.loseExecutor()
				e.out.Events = append(e.out.Events,
					fmt.Sprintf("%s: fault: executor lost (%d remain)", st.Name, e.ex.Count))
			}
		}
		total += sec
		if failed {
			e.out.OOM = true
			e.out.Seconds = total
			return e.out
		}
		if fs.active && i == fs.oomStage {
			// Spurious OOM: co-tenant memory pressure kills a task past
			// spark.task.maxFailures. Indistinguishable from a
			// config-caused OOM, so not flagged transient.
			e.out.OOM = true
			e.out.Seconds = total
			e.out.Events = append(e.out.Events,
				fmt.Sprintf("%s: fault: spurious OOM kill", st.Name))
			return e.out
		}
		if fs.active && i == fs.transientStage {
			e.out.Transient = true
			e.out.Seconds = total
			e.out.Events = append(e.out.Events,
				fmt.Sprintf("%s: fault: transient failure (lost heartbeat)", st.Name))
			return e.out
		}
		if total > capSeconds {
			e.out.Seconds = total
			e.out.Events = append(e.out.Events, "truncated: exceeded evaluation cap")
			return e.out
		}
	}
	// Rare cluster-level contention spike.
	if rng.Float64() < 0.015 {
		total *= 1.15 + 0.25*rng.Float64()
	}
	e.out.Seconds = total
	e.out.Completed = total <= capSeconds
	return e.out
}

// loseExecutor removes one executor from the layout (fault injection:
// node or JVM loss); the remaining stages see fewer slots and
// per-node contention recomputed over the survivors.
func (e *engine) loseExecutor() {
	if e.ex.Count <= 1 {
		return
	}
	e.ex.Count--
	e.ex.TotalSlots = e.ex.Count * e.ex.SlotsEach
	e.ex.PerNode = (e.ex.Count + e.cl.Workers - 1) / e.cl.Workers
}

// stageTime computes the simulated duration of one stage and whether
// it aborted the job.
func (e *engine) stageTime(st *Stage) (float64, bool) {
	numTasks := e.taskCount(st)
	partMB := st.InputMB / float64(numTasks)
	wsMB := partMB * st.ExpandFactor

	// --- Memory accounting --------------------------------------------------
	// Execution memory per task: the execution region plus whatever
	// storage space the resident cache is not using (unified memory
	// borrowing), divided by the executor's concurrent tasks, plus
	// off-heap.
	cacheResidentPerExec := e.cacheResidentMB() / float64(e.ex.Count)
	storageFree := math.Max(0, e.ex.StorageMB-cacheResidentPerExec)
	perTaskExecMB := (e.ex.ExecutionMB + storageFree + e.ex.OffHeapMB) / float64(e.ex.SlotsEach)
	if perTaskExecMB < 8 {
		perTaskExecMB = 8
	}

	// OOM / GC-overhead death: the unspillable share of the working
	// set (hash structures, graph adjacency arrays, sort runs pinned
	// by the operator) exceeds any headroom. Retried tasks burn time
	// and then abort the job (spark.task.maxFailures).
	if wsMB*st.MemHungry > oomHeadroom*perTaskExecMB {
		retries := float64(e.cfg.Int(conf.TaskMaxFailures))
		attempt := partMB * st.CostFactor / e.cl.CoreSpeedMBps * 1.5
		e.out.Events = append(e.out.Events,
			fmt.Sprintf("%s: OOM (unspillable %.0fMB vs %.0fMB execution share)",
				st.Name, wsMB*st.MemHungry, perTaskExecMB))
		return 2 + attempt*retries, true
	}

	// --- Per-task cost components -------------------------------------------
	coreSec := partMB * st.CostFactor / e.cl.CoreSpeedMBps
	var diskMB, netMB, extraCPU, stageExtraSec float64

	// GC pressure: utilization of the task's memory share; very large
	// heaps pay full-GC pauses; Kryo reference tracking adds a little.
	util := wsMB * (st.MemHungry + st.SpillFrac) / perTaskExecMB
	gc := 0.03
	if util > 0.7 {
		gc += 0.30 * math.Min(1, (util-0.7)/1.5)
	}
	if e.ex.HeapMB > 98304 { // >96 GB heaps: long full-GC pauses
		gc += 0.15 * (e.ex.HeapMB - 98304) / 98304
	}
	// Very high memory.fraction starves the JVM's unmanaged region
	// (user objects, netty buffers): GC churn rises steeply.
	if frac := e.cfg.Float(conf.MemoryFraction); frac > 0.75 {
		gc += 2.0 * (frac - 0.75)
	}
	if e.cfg.Choice(conf.Serializer) == "kryo" {
		if e.cfg.Bool(conf.KryoReferenceTracking) {
			gc += 0.008
		}
		// Undersized Kryo buffers resize while serializing large
		// records; tiny max buffers force stream flushes.
		bufKB := float64(e.cfg.Int(conf.KryoBuffer))
		extraCPU += 0.003 * math.Max(0, math.Log2(64/bufKB))
		maxMB := float64(e.cfg.Int(conf.KryoBufferMax))
		extraCPU += 0.002 * math.Max(0, math.Log2(32/maxMB))
	}
	// A long periodic-GC interval lets weak references from old
	// stages pile up in long jobs (slightly more collection work).
	gc += 0.004 * math.Min(2, float64(e.cfg.Int(conf.PeriodicGCInterval))/60)
	coreSec *= 1 + gc

	// Spill: the spillable operator's buffer demand beyond the
	// execution share streams through disk, possibly in multiple
	// merge passes. Streaming map stages have tiny operator buffers.
	opMB := wsMB * (st.MemHungry + st.SpillFrac)
	if opMB > perTaskExecMB {
		spillMB := (opMB - perTaskExecMB) / st.ExpandFactor * e.ser.sizeFactor
		passes := math.Min(8, opMB/perTaskExecMB-1)
		bytes := spillMB * (1 + passes) // write once + re-read per pass
		if e.cfg.Bool(conf.ShuffleSpillCompress) {
			extraCPU += bytes / e.cdc.compMBps / 2
			bytes *= e.cdc.ratio
		}
		extraCPU += spillMB / e.ser.serMBps // re-serialization
		diskMB += bytes
		if spillMB > partMB {
			e.out.Events = append(e.out.Events,
				fmt.Sprintf("%s: heavy spill (%.0fMB per task)", st.Name, spillMB))
		}
	}

	// Input-side IO.
	switch st.Source {
	case FromHDFS:
		diskMB += partMB // local HDFS read
	case FromShuffle:
		// Shuffle read: transfer + decompress + deserialize.
		readMB := partMB * e.ser.sizeFactor
		if e.cfg.Bool(conf.ShuffleCompress) {
			extraCPU += readMB * e.cdc.ratio / e.cdc.decMBps
			readMB *= e.cdc.ratio
		}
		extraCPU += partMB * e.ser.sizeFactor / e.ser.desMBps
		remote := float64(e.cl.Workers-1) / float64(e.cl.Workers)
		netMB += readMB * remote
		diskMB += readMB * (1 - remote) // local fetches hit disk
		// Small in-flight windows add fetch round-trip stalls.
		inflight := float64(e.cfg.Int(conf.ReducerMaxSizeInFlight))
		extraCPU += 0.010 * math.Max(0, math.Log2(48/inflight))
		conns := float64(e.cfg.Int(conf.ShuffleIOConnections))
		extraCPU += 0.004 / conns * math.Max(1, readMB/32)
		if !e.cfg.Bool(conf.ShuffleIODirectBufs) {
			extraCPU += readMB / 2500 // extra copy through heap buffers
		}
		// Transient fetch failures: a busy cluster drops ~1% of
		// fetches; each retry waits spark.shuffle.io.retryWait, and a
		// single-retry budget risks a full block re-request.
		retryWait := float64(e.cfg.Int(conf.ShuffleIORetryWait)) / 1000
		stageExtraSec += 0.01 * retryWait
		if e.cfg.Int(conf.ShuffleIOMaxRetries) < 2 {
			stageExtraSec += 0.02 * st.InputMB * e.ser.sizeFactor / e.cl.NetMBps
		}
		// Aggressively low network timeouts abort slow fetches and
		// force re-requests.
		if timeout := float64(e.cfg.Int(conf.NetworkTimeout)); timeout < 60000 {
			stageExtraSec += (60000 - timeout) / 60000 * 1.5
		}
		// An external shuffle service isolates fetch serving from
		// executor GC pauses (slightly steadier reads) at a small
		// registration cost per stage.
		if e.cfg.Bool(conf.ShuffleServiceEnabled) {
			netMB *= 0.97
			stageExtraSec += 0.05
		}
	case FromCache:
		ce := e.cache[st.CacheKey]
		if ce == nil {
			// Reading a never-cached RDD: recompute on every access.
			ce = &cacheEntry{fraction: 0, inputMB: st.InputMB,
				rebuildSec: st.InputMB * st.CostFactor / e.cl.CoreSpeedMBps / float64(e.ex.TotalSlots)}
		}
		if e.cfg.Bool(conf.RDDCompress) {
			// Serialized+compressed cache: smaller footprint (already
			// reflected in demandMB) but every read pays CPU.
			extraCPU += partMB*e.ser.sizeFactor/e.ser.desMBps +
				partMB*e.ser.sizeFactor*e.cdc.ratio/e.cdc.decMBps
		}
		stageExtraSec += e.missCost(ce, 0)
	}

	// Output-side IO: shuffle write.
	if st.ShuffleOutMB > 0 {
		outPerTask := st.ShuffleOutMB / float64(numTasks)
		serMB := outPerTask * e.ser.sizeFactor
		extraCPU += serMB / e.ser.serMBps
		writeMB := serMB
		if e.cfg.Bool(conf.ShuffleCompress) {
			extraCPU += serMB / e.cdc.compMBps
			writeMB *= e.cdc.ratio
		}
		// Small file buffers flush more often (effective bandwidth
		// loss); the sort path costs extra CPU unless bypassed.
		bufKB := float64(e.cfg.Int(conf.ShuffleFileBuffer))
		ioEff := math.Min(1, 0.75+0.25*math.Log2(bufKB/16+1)/5)
		diskMB += writeMB / ioEff
		if e.parallelism > int(e.cfg.Int(conf.ShuffleBypassThreshold)) {
			extraCPU += serMB / 900 // sort-based merge CPU
		}
		initBuf := float64(e.cfg.Int(conf.ShuffleSortInitBuffer))
		extraCPU += 0.002 * math.Max(0, math.Log2(4096/initBuf)) * math.Max(1, serMB/64)
	}
	if st.WriteHDFSMB > 0 {
		diskMB += st.WriteHDFSMB / float64(numTasks) * 1.2 // replication share
	}

	// Broadcast: torrent distribution to every executor, once per stage.
	var bcastSec float64
	if st.BroadcastMB > 0 {
		b := st.BroadcastMB * e.ser.sizeFactor
		if e.cfg.Bool(conf.BroadcastCompress) {
			bcastSec += b / e.cdc.compMBps
			b *= e.cdc.ratio
		}
		blocks := math.Ceil(b / float64(e.cfg.Int(conf.BroadcastBlockSize)))
		bcastSec += b/e.cl.NetMBps*math.Log2(float64(e.cl.Workers)+1) + blocks*0.002
	}

	// --- Assemble stage time --------------------------------------------
	// Disk and NIC are shared by the tasks actually running
	// concurrently on a node (a stage smaller than the cluster leaves
	// slots idle and contends less).
	tasksPerNode := math.Min(
		float64(e.ex.PerNode*e.ex.SlotsEach),
		math.Ceil(float64(numTasks)/float64(e.cl.Workers)))
	if tasksPerNode < 1 {
		tasksPerNode = 1
	}
	// Memory-mapping very small blocks adds page-table churn on reads.
	if thMB := float64(e.cfg.Int(conf.MemoryMapThreshold)); thMB < 2 && diskMB > 0 {
		extraCPU += 0.004 * (2 - thMB)
	}
	diskShare := e.cl.DiskMBps / tasksPerNode
	netShare := e.cl.NetMBps / tasksPerNode
	taskSec := coreSec + extraCPU + diskMB/diskShare + netMB/netShare

	waves := math.Ceil(float64(numTasks) / float64(e.ex.TotalSlots))
	// Straggler tail on the last wave; speculation claws most of it
	// back at a small resource cost.
	skewTail := taskSec * st.Skew
	if e.cfg.Bool(conf.Speculation) {
		mult := e.cfg.Float(conf.SpeculationMultiplier)
		q := e.cfg.Float(conf.SpeculationQuantile)
		save := 0.65 * math.Min(1, 2/mult) * (1 - math.Abs(q-0.75))
		// Checking too rarely delays re-launches; checking constantly
		// burns driver time.
		intervalS := float64(e.cfg.Int(conf.SpeculationInterval)) / 1000
		save *= 1 - math.Min(0.3, intervalS/3)
		skewTail *= 1 - math.Max(0.1, save)
		taskSec *= 1.02 + 0.002/math.Max(intervalS, 0.01)*0.1 // duplicate + polling overhead
	}

	// Scheduling: task launch through the driver, locality waits when
	// the stage over-subscribes the cluster, revive-interval latency
	// per wave.
	driverCores := math.Min(float64(e.cfg.Int(conf.DriverCores)), 4)
	launch := float64(numTasks) * perTaskLaunchSec / driverCores / math.Max(1, float64(e.ex.TotalSlots)/8)
	// A cramped driver heap slows task bookkeeping and result
	// aggregation; small RPC frames fragment large task descriptors.
	if driverMB := float64(e.cfg.Int(conf.DriverMemory)); driverMB < 2048 {
		launch *= 1 + (2048-driverMB)/2048
	}
	launch *= 1 + 0.05*math.Max(0, math.Log2(128/float64(e.cfg.Int(conf.RPCMessageMaxSize))))/2
	locality := 0.0
	if st.Source == FromHDFS && waves > 1 {
		locality = float64(e.cfg.Int(conf.LocalityWait)) / 1000 * 0.4 * math.Min(waves, 4)
	}
	revive := float64(e.cfg.Int(conf.SchedulerReviveInt)) / 1000 * 0.45 * waves

	stageSec := waves*taskSec + skewTail + launch + locality + revive + bcastSec + stageExtraSec + 0.15

	if e.collect {
		spillSer := 0.0
		if opMB > perTaskExecMB {
			spillSer = (opMB - perTaskExecMB) / st.ExpandFactor * e.ser.sizeFactor
		}
		e.out.Breakdown = append(e.out.Breakdown, StageBreakdown{
			Name:           st.Name,
			Seconds:        stageSec,
			Tasks:          numTasks,
			Waves:          int(waves),
			ComputeSec:     coreSec + extraCPU,
			DiskSec:        diskMB / diskShare,
			NetSec:         netMB / netShare,
			SpillPerTaskMB: spillSer,
			CacheMissSec:   stageExtraSec,
		})
	}

	// Register cache output after the stage that materializes it.
	// The rebuild cost recorded is the stage's own cost, excluding
	// time spent servicing other RDDs' misses (no compounding).
	if st.CacheOutMB > 0 {
		e.registerCache(st, numTasks, stageSec-stageExtraSec)
	}
	return stageSec, false
}

// missCost returns the stage-level seconds spent servicing cache
// misses of entry: MEMORY_AND_DISK reads the missing fraction back
// from disk; MEMORY_ONLY recomputes it from lineage, cascading
// through evicted ancestors (§5.3: "configurations that cause RDD
// evictions take significantly more time").
func (e *engine) missCost(ce *cacheEntry, depth int) float64 {
	if ce == nil || depth > 16 {
		return 0
	}
	miss := 1 - ce.fraction
	if miss <= 0 {
		return 0
	}
	if ce.diskFallback {
		// Serialized spill files on local disks, all nodes in parallel.
		bytes := miss * ce.inputMB * e.ser.sizeFactor
		return bytes / (e.cl.DiskMBps * float64(e.cl.Workers))
	}
	parentCost := e.missCost(e.cache[ce.parent], depth+1)
	return miss * (ce.rebuildSec*gcThrash + parentCost)
}

// taskCount applies Spark's partitioning rules for the stage source.
func (e *engine) taskCount(st *Stage) int {
	switch st.Source {
	case FromHDFS:
		n := int(math.Ceil(st.InputMB / e.maxPartMB))
		if n < 1 {
			n = 1
		}
		return n
	case FromCache:
		if ce := e.cache[st.CacheKey]; ce != nil && ce.partitions > 0 {
			return ce.partitions
		}
		n := int(math.Ceil(st.InputMB / e.maxPartMB))
		if n < 1 {
			n = 1
		}
		return n
	default: // FromShuffle
		if e.parallelism < 1 {
			return 1
		}
		return e.parallelism
	}
}

// registerCache materializes an RDD into the simulated block store
// and resolves cluster-wide LRU eviction across all cached RDDs.
func (e *engine) registerCache(st *Stage, partitions int, buildSec float64) {
	demand := st.CacheOutMB
	if e.cfg.Bool(conf.RDDCompress) {
		// Serialized + compressed storage shrinks the footprint.
		demand = st.CacheOutMB / st.ExpandFactor * e.ser.sizeFactor * e.cdc.ratio
	}
	e.cache[st.CacheOutKey] = &cacheEntry{
		demandMB:     demand,
		rebuildSec:   buildSec,
		partitions:   partitions,
		diskFallback: st.CacheDiskFallback,
		parent:       st.CacheKey,
		inputMB:      st.CacheOutMB / st.ExpandFactor,
	}
	// Storage available cluster-wide: the guaranteed storage region
	// plus half the execution region (the long-run equilibrium of
	// unified-memory borrowing under execution pressure).
	perExec := e.ex.StorageMB + 0.6*e.ex.ExecutionMB
	available := perExec * float64(e.ex.Count)
	var totalDemand float64
	for _, ce := range e.cache {
		totalDemand += ce.demandMB
	}
	frac := 1.0
	if totalDemand > available {
		frac = available / totalDemand
	}
	for _, ce := range e.cache {
		ce.fraction = frac
	}
	if frac < 0.999 {
		e.out.Events = append(e.out.Events,
			fmt.Sprintf("%s: cache pressure, %.0f%% of cached data resident", st.Name, frac*100))
	}
}

// cacheResidentMB returns the cluster-wide bytes currently held by
// the block store.
func (e *engine) cacheResidentMB() float64 {
	var s float64
	for _, ce := range e.cache {
		s += ce.demandMB * ce.fraction
	}
	return s
}
