package sparksim

import (
	"context"
	"math"

	"repro/internal/conf"
)

// ResourceCostEvaluator wraps an Evaluator to optimize monetary-style
// resource cost instead of wall-clock time (§5.1 notes ROBOTune
// adapts to other metrics by replacing the objective). The objective
// becomes
//
//	cost = seconds × (occupied cores + MemoryWeight × occupied GB)
//
// so configurations that finish marginally faster by hogging the
// whole cluster lose to right-sized ones. Search-cost accounting
// (SearchCost, Evals) still measures simulated time, as in the paper.
type ResourceCostEvaluator struct {
	*Evaluator
	// MemoryWeight converts occupied memory GB into core-equivalents
	// (default 0.1: 10 GB of RAM prices like one core).
	MemoryWeight float64
}

// NewResourceCostEvaluator wraps ev with the resource-cost objective.
func NewResourceCostEvaluator(ev *Evaluator, memoryWeight float64) *ResourceCostEvaluator {
	if memoryWeight <= 0 {
		memoryWeight = 0.1
	}
	return &ResourceCostEvaluator{Evaluator: ev, MemoryWeight: memoryWeight}
}

// rate returns the per-second resource price of a configuration's
// executor layout, in core-equivalents.
func (r *ResourceCostEvaluator) rate(c conf.Config) float64 {
	ex, ok := PackExecutors(r.Cluster, c)
	if !ok {
		// Infeasible layouts are priced as the whole cluster so their
		// capped objective stays the worst case.
		return float64(r.Cluster.Workers*r.Cluster.CoresPerNode) +
			r.MemoryWeight*float64(r.Cluster.Workers)*r.Cluster.MemPerNodeMB/1024
	}
	cores := float64(ex.Count * ex.CoresEach)
	memGB := float64(ex.Count) * ex.HeapMB / 1024
	return cores + r.MemoryWeight*memGB
}

func (r *ResourceCostEvaluator) price(c conf.Config, rec EvalRecord) EvalRecord {
	rec.Seconds = rec.Seconds * r.rate(c)
	return rec
}

// EvaluateSpec forwards the unified spec entry point and prices the
// result; low-fidelity proxy runs are priced at the same per-second
// rate (the layout occupies the cluster either way).
func (r *ResourceCostEvaluator) EvaluateSpec(c conf.Config, spec EvalSpec) EvalRecord {
	return r.price(c, r.Evaluator.EvaluateSpec(c, spec))
}

// EvaluateSpecCtx forwards the unified batch entry point; skipped
// entries carry no observation and are left unpriced.
func (r *ResourceCostEvaluator) EvaluateSpecCtx(ctx context.Context, cfgs []conf.Config, spec EvalSpec) []EvalRecord {
	recs := r.Evaluator.EvaluateSpecCtx(ctx, cfgs, spec)
	for i := range recs {
		if recs[i].Skipped {
			continue
		}
		recs[i] = r.price(cfgs[i], recs[i])
	}
	return recs
}

// MeasureCost estimates a configuration's true resource cost without
// charging search cost.
func (r *ResourceCostEvaluator) MeasureCost(c conf.Config, reps int, seed uint64) float64 {
	return r.Evaluator.Measure(c, reps, seed) * r.rate(c)
}

// OccupiedCores reports how many cores a configuration's layout
// holds, for reporting.
func (r *ResourceCostEvaluator) OccupiedCores(c conf.Config) int {
	ex, ok := PackExecutors(r.Cluster, c)
	if !ok {
		return 0
	}
	return ex.Count * ex.CoresEach
}

// CapObjective returns the worst-case objective value under this
// metric (the time cap priced at the full-cluster rate), useful for
// normalizing failed sessions in reports.
func (r *ResourceCostEvaluator) CapObjective() float64 {
	full := float64(r.Cluster.Workers*r.Cluster.CoresPerNode) +
		r.MemoryWeight*float64(r.Cluster.Workers)*r.Cluster.MemPerNodeMB/1024
	return math.Min(r.CapSeconds, math.Inf(1)) * full
}
