// Package sparksim is an analytic simulator of a Spark 2.4 cluster —
// the expensive black-box objective function the tuners in this
// repository search over.
//
// The paper evaluates tuners on a real 6-node Spark cluster. That
// hardware (and Spark itself) is not available in this reproduction,
// so sparksim models the dominant mechanisms that couple Spark's
// configuration parameters to workload execution time:
//
//   - executor packing: how many executor JVMs of the configured size
//     fit on each node, and how many task slots they provide;
//   - the unified memory manager: execution/storage split, spilling
//     when working sets exceed execution memory, RDD cache eviction
//     when cached data exceeds storage memory, and OOM failures when a
//     single partition cannot fit at all;
//   - shuffle: serialization and compression CPU costs, disk writes
//     through a shared per-node disk, cross-node network transfer;
//   - scheduling: task waves over the available slots, per-task launch
//     overhead, locality wait, stragglers and speculative execution;
//   - garbage collection pressure as heaps fill or grow very large;
//   - multiplicative observation noise, making the objective
//     stochastic like a real shared cluster.
//
// The result is a high-dimensional, multi-modal, noisy response
// surface in which a small subset of the 44 parameters dominates —
// the properties the paper's techniques are designed to exploit.
package sparksim

import (
	"math"

	"repro/internal/conf"
)

// Cluster describes the simulated hardware platform.
type Cluster struct {
	// Workers is the number of worker nodes (the master is not
	// modeled; it only runs the driver).
	Workers int
	// CoresPerNode is the number of CPU cores per worker.
	CoresPerNode int
	// MemPerNodeMB is the RAM per worker available to executors.
	MemPerNodeMB float64
	// DiskMBps is the sequential bandwidth of each worker's disk,
	// shared by all executors on the node.
	DiskMBps float64
	// NetMBps is each worker's network bandwidth, shared by all
	// executors on the node.
	NetMBps float64
	// CoreSpeedMBps expresses per-core compute throughput as the
	// number of "work units" (MB of workload data at unit cost) a
	// core processes per second.
	CoreSpeedMBps float64
}

// PaperCluster returns the evaluation platform of §5.1: five workers,
// each with 32 cores (2×16-core Xeon Gold 6130), 192 GB of RAM, one
// 7200-RPM hard disk, and 10-gigabit Ethernet.
func PaperCluster() Cluster {
	return Cluster{
		Workers:       5,
		CoresPerNode:  32,
		MemPerNodeMB:  192 * 1024,
		DiskMBps:      160,  // 7200-RPM sequential
		NetMBps:       1100, // 10 GbE minus protocol overhead
		CoreSpeedMBps: 18,
	}
}

// Executors describes the executor layout derived from a
// configuration: how Spark's resource negotiation plays out on the
// cluster.
type Executors struct {
	// Count is the number of executor JVMs actually launched.
	Count int
	// PerNode is the number of executors co-resident on each node
	// (the maximum across nodes; used for disk/network contention).
	PerNode int
	// CoresEach and HeapMB are the per-executor resources.
	CoresEach int
	HeapMB    float64
	// SlotsEach is the number of concurrent tasks per executor
	// (cores / task.cpus).
	SlotsEach int
	// TotalSlots is Count * SlotsEach.
	TotalSlots int
	// UsableMB is the unified memory region per executor:
	// (heap - reserved) * spark.memory.fraction, plus off-heap.
	UsableMB float64
	// StorageMB is the eviction-immune storage region per executor.
	StorageMB float64
	// ExecutionMB is the execution region per executor (may borrow
	// from storage at runtime; this is the guaranteed floor).
	ExecutionMB float64
	// OffHeapMB is additional execution memory outside the heap.
	OffHeapMB float64
}

// reservedHeapMB mirrors Spark's RESERVED_SYSTEM_MEMORY_BYTES.
const reservedHeapMB = 300

// PackExecutors computes the executor layout for a configuration on a
// cluster. It returns ok=false when the configuration is infeasible:
// no executor fits on a node, or an executor provides zero task slots.
func PackExecutors(cl Cluster, c conf.Config) (Executors, bool) {
	cores := int(c.Int(conf.ExecutorCores))
	heapMB := float64(c.Int(conf.ExecutorMemory))
	overheadMB := math.Max(float64(c.Int(conf.ExecutorMemoryOverhead)), 0.1*heapMB)
	offHeapMB := 0.0
	if c.Bool(conf.OffHeapEnabled) {
		offHeapMB = float64(c.Int(conf.OffHeapSize))
	}
	footprintMB := heapMB + overheadMB + offHeapMB
	taskCPUs := int(c.Int(conf.TaskCPUs))
	instances := int(c.Int(conf.ExecutorInstances))

	if cores < 1 || heapMB < 1 || taskCPUs < 1 {
		return Executors{}, false
	}
	byCores := cl.CoresPerNode / cores
	byMem := int(cl.MemPerNodeMB / footprintMB)
	perNode := byCores
	if byMem < perNode {
		perNode = byMem
	}
	if perNode < 1 {
		return Executors{}, false
	}
	count := perNode * cl.Workers
	if instances < count {
		count = instances
	}
	if count < 1 {
		return Executors{}, false
	}
	// Executors spread round-robin across nodes; contention is set by
	// the busiest node.
	perNodeActual := (count + cl.Workers - 1) / cl.Workers
	slots := cores / taskCPUs
	if slots < 1 {
		return Executors{}, false
	}

	usable := (heapMB - reservedHeapMB) * c.Float(conf.MemoryFraction)
	if usable <= 0 {
		return Executors{}, false
	}
	storage := usable * c.Float(conf.MemoryStorageFraction)
	execution := usable - storage

	return Executors{
		Count:       count,
		PerNode:     perNodeActual,
		CoresEach:   cores,
		HeapMB:      heapMB,
		SlotsEach:   slots,
		TotalSlots:  count * slots,
		UsableMB:    usable,
		StorageMB:   storage,
		ExecutionMB: execution,
		OffHeapMB:   offHeapMB,
	}, true
}

// CloudCluster returns an alternative platform with a different
// resource balance — ten smaller cloud VMs with fast NVMe storage and
// a faster network but fewer, slower cores per node. Optimal
// configurations differ materially from PaperCluster's, which is the
// §1 motivation for search-based re-tuning over cluster-specific
// learned models.
func CloudCluster() Cluster {
	return Cluster{
		Workers:       10,
		CoresPerNode:  16,
		MemPerNodeMB:  64 * 1024,
		DiskMBps:      900,  // NVMe
		NetMBps:       2800, // 25 GbE
		CoreSpeedMBps: 14,   // lower base clock
	}
}
