package sparksim

import "fmt"

// This file defines workloads beyond the paper's five — useful for
// exercising the tuners on differently shaped jobs and as templates
// for users onboarding their own applications (see
// examples/customworkload).

// WordCount builds the classic two-stage aggregation benchmark for
// the given input size in GB: tokenize a text corpus and count words.
// Shuffle volume is small relative to input (map-side combining), so
// the job is scan- and CPU-bound.
func WordCount(gb float64) Workload {
	dataMB := gb * 1024
	return Workload{
		Name:    "WordCount",
		Dataset: fmt.Sprintf("%gGB text", gb),
		Stages: []Stage{
			{
				Name:         "tokenize-combine",
				Source:       FromHDFS,
				InputMB:      dataMB,
				CostFactor:   1.5, // string splitting dominates
				ExpandFactor: rowExpand,
				MemHungry:    0.08, // map-side combine hash
				SpillFrac:    0.25,
				ShuffleOutMB: dataMB * 0.12,
				Skew:         0.25,
			},
			{
				Name:         "count-reduce",
				Source:       FromShuffle,
				InputMB:      dataMB * 0.12,
				CostFactor:   0.5,
				ExpandFactor: rowExpand,
				MemHungry:    0.1,
				SpillFrac:    0.8,
				WriteHDFSMB:  dataMB * 0.02,
				Skew:         0.5, // stop-word keys are hot
			},
		},
	}
}

// SQLAggregation models a star-schema aggregation query over the
// given fact-table size in GB: scan + filter the fact table with a
// broadcast dimension join, partially aggregate, then finalize a
// small result. IO-bound scan, tiny shuffles.
func SQLAggregation(gb float64) Workload {
	dataMB := gb * 1024
	return Workload{
		Name:    "SQLAggregation",
		Dataset: fmt.Sprintf("%gGB facts", gb),
		Stages: []Stage{
			{
				Name:         "scan-filter-join",
				Source:       FromHDFS,
				InputMB:      dataMB,
				CostFactor:   0.7, // predicate + hash probe per row
				ExpandFactor: rowExpand,
				MemHungry:    0.12, // broadcast hash table share
				SpillFrac:    0.3,
				ShuffleOutMB: dataMB * 0.05, // partial aggregates
				BroadcastMB:  96,            // dimension table
				Skew:         0.2,
			},
			{
				Name:         "final-aggregate",
				Source:       FromShuffle,
				InputMB:      dataMB * 0.05,
				CostFactor:   0.4,
				ExpandFactor: rowExpand,
				MemHungry:    0.1,
				SpillFrac:    0.8,
				WriteHDFSMB:  8,
				Skew:         0.15,
			},
		},
	}
}

// TriangleCount builds the triangle-counting graph benchmark for the
// given scale in millions of vertices: materialize and cache the
// adjacency sets, then a heavy self-join that shuffles candidate
// wedges and verifies closure. The most shuffle- and memory-intensive
// workload in the suite.
func TriangleCount(millionVertices float64) Workload {
	dataMB := millionVertices * 900 // denser undirected edge list
	return Workload{
		Name:    "TriangleCount",
		Dataset: fmt.Sprintf("%gM vertices", millionVertices),
		Stages: []Stage{
			{
				Name:         "build-adjacency",
				Source:       FromHDFS,
				InputMB:      dataMB,
				CostFactor:   1.2,
				ExpandFactor: graphExpand,
				MemHungry:    0.6,
				SpillFrac:    0.2,
				CacheOutMB:   dataMB * graphExpand,
				CacheOutKey:  "adjacency",
				ShuffleOutMB: dataMB * 0.3,
				Skew:         0.6,
			},
			{
				Name:         "emit-wedges",
				Source:       FromCache,
				CacheKey:     "adjacency",
				InputMB:      dataMB,
				CostFactor:   1.8, // neighborhood cross products
				ExpandFactor: graphExpand,
				MemHungry:    0.55,
				SpillFrac:    0.4,
				ShuffleOutMB: dataMB * 1.6, // wedges blow up
				Skew:         0.7,          // power-law hubs
			},
			{
				Name:         "close-triangles",
				Source:       FromShuffle,
				InputMB:      dataMB * 1.6,
				CostFactor:   0.9,
				ExpandFactor: rowExpand,
				MemHungry:    0.2,
				SpillFrac:    0.8,
				ShuffleOutMB: 4,
				Skew:         0.5,
			},
			{
				Name:         "sum-counts",
				Source:       FromShuffle,
				InputMB:      4,
				CostFactor:   0.3,
				ExpandFactor: rowExpand,
				MemHungry:    0.1,
				SpillFrac:    0.5,
				Skew:         0.1,
			},
		},
	}
}

// ExtraWorkloads returns the non-paper workloads at representative
// scales, for tests and demos.
func ExtraWorkloads() []Workload {
	return []Workload{WordCount(40), SQLAggregation(60), TriangleCount(3)}
}
