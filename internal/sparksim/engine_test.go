package sparksim

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/conf"
)

// newEngine builds an engine for white-box tests of the internal
// mechanics.
func newEngine(t *testing.T, c conf.Config) *engine {
	t.Helper()
	cl := PaperCluster()
	ex, ok := PackExecutors(cl, c)
	if !ok {
		t.Fatal("config infeasible")
	}
	return &engine{
		cl:          cl,
		cfg:         c,
		ex:          ex,
		cache:       make(map[string]*cacheEntry),
		ser:         serdes[c.Choice(conf.Serializer)],
		cdc:         effCodec(c, codecs[c.Choice(conf.IOCompressionCodec)]),
		parallelism: int(c.Int(conf.DefaultParallelism)),
		maxPartMB:   float64(c.Int(conf.MaxPartitionBytes)),
	}
}

func TestTaskCountRules(t *testing.T) {
	c := tunedConfig(t).
		With(conf.DefaultParallelism, 300).
		With(conf.MaxPartitionBytes, 64)
	e := newEngine(t, c)

	// HDFS: ceil(input / maxPartitionBytes).
	if n := e.taskCount(&Stage{Source: FromHDFS, InputMB: 1000}); n != 16 {
		t.Errorf("HDFS tasks = %d, want ceil(1000/64)=16", n)
	}
	if n := e.taskCount(&Stage{Source: FromHDFS, InputMB: 1}); n != 1 {
		t.Errorf("tiny input tasks = %d, want 1", n)
	}
	// Shuffle: spark.default.parallelism.
	if n := e.taskCount(&Stage{Source: FromShuffle, InputMB: 1000}); n != 300 {
		t.Errorf("shuffle tasks = %d, want 300", n)
	}
	// Cache: the cached RDD's partition count.
	e.cache["rdd"] = &cacheEntry{partitions: 77, fraction: 1}
	if n := e.taskCount(&Stage{Source: FromCache, CacheKey: "rdd", InputMB: 1000}); n != 77 {
		t.Errorf("cache tasks = %d, want 77", n)
	}
	// Unknown cache key falls back to input partitioning.
	if n := e.taskCount(&Stage{Source: FromCache, CacheKey: "nope", InputMB: 640}); n != 10 {
		t.Errorf("unknown-cache tasks = %d, want 10", n)
	}
}

func TestRegisterCacheEviction(t *testing.T) {
	c := tunedConfig(t)
	e := newEngine(t, c)
	// Available storage: (storage + 0.6*execution) * count.
	avail := (e.ex.StorageMB + 0.6*e.ex.ExecutionMB) * float64(e.ex.Count)

	// A cache that fits stays fully resident.
	e.registerCache(&Stage{CacheOutMB: avail * 0.5, CacheOutKey: "small"}, 10, 5)
	if f := e.cache["small"].fraction; f != 1 {
		t.Errorf("fitting cache fraction = %v", f)
	}
	// Adding demand beyond capacity evicts proportionally.
	e.registerCache(&Stage{CacheOutMB: avail, CacheOutKey: "big"}, 10, 5)
	want := avail / (avail * 1.5)
	for _, key := range []string{"small", "big"} {
		if f := e.cache[key].fraction; math.Abs(f-want) > 1e-9 {
			t.Errorf("%s fraction = %v, want %v", key, f, want)
		}
	}
	// Events recorded the pressure.
	found := false
	for _, ev := range e.out.Events {
		if len(ev) > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no cache pressure event")
	}
}

func TestRDDCompressShrinksCacheDemand(t *testing.T) {
	plain := newEngine(t, tunedConfig(t).With(conf.RDDCompress, 0))
	comp := newEngine(t, tunedConfig(t).With(conf.RDDCompress, 1))
	st := &Stage{CacheOutMB: 10000, CacheOutKey: "x", ExpandFactor: 2.5}
	plain.registerCache(st, 10, 5)
	comp.registerCache(st, 10, 5)
	if comp.cache["x"].demandMB >= plain.cache["x"].demandMB {
		t.Errorf("compressed cache demand %v should be below plain %v",
			comp.cache["x"].demandMB, plain.cache["x"].demandMB)
	}
}

func TestMissCostMechanics(t *testing.T) {
	e := newEngine(t, tunedConfig(t))

	// Fully resident: no miss cost.
	full := &cacheEntry{fraction: 1, rebuildSec: 100}
	if got := e.missCost(full, 0); got != 0 {
		t.Errorf("full cache miss cost = %v", got)
	}

	// MEMORY_ONLY: recompute with GC thrash.
	half := &cacheEntry{fraction: 0.5, rebuildSec: 100}
	want := 0.5 * 100 * gcThrash
	if got := e.missCost(half, 0); math.Abs(got-want) > 1e-9 {
		t.Errorf("half-resident miss cost = %v, want %v", got, want)
	}

	// Lineage cascade: a parent's misses compound the child's.
	e.cache["parent"] = &cacheEntry{fraction: 0.5, rebuildSec: 100}
	child := &cacheEntry{fraction: 0.5, rebuildSec: 100, parent: "parent"}
	wantChild := 0.5 * (100*gcThrash + want)
	if got := e.missCost(child, 0); math.Abs(got-wantChild) > 1e-9 {
		t.Errorf("cascaded miss cost = %v, want %v", got, wantChild)
	}

	// MEMORY_AND_DISK: bounded by disk bandwidth, no recompute.
	disk := &cacheEntry{fraction: 0, inputMB: 8000, diskFallback: true}
	wantDisk := 8000.0 * e.ser.sizeFactor / (e.cl.DiskMBps * float64(e.cl.Workers))
	if got := e.missCost(disk, 0); math.Abs(got-wantDisk) > 1e-9 {
		t.Errorf("disk fallback miss cost = %v, want %v", got, wantDisk)
	}
	if e.missCost(disk, 0) >= e.missCost(&cacheEntry{fraction: 0, rebuildSec: 100, inputMB: 8000}, 0) {
		t.Error("disk fallback should be cheaper than recompute for this size")
	}

	// Recursion depth is bounded (self-referential lineage).
	e.cache["loop"] = &cacheEntry{fraction: 0.5, rebuildSec: 1, parent: "loop"}
	got := e.missCost(e.cache["loop"], 0)
	if math.IsInf(got, 1) || math.IsNaN(got) || got > 100 {
		t.Errorf("looped lineage cost = %v, want bounded", got)
	}

	// Nil entry is free.
	if e.missCost(nil, 0) != 0 {
		t.Error("nil cache entry should cost nothing")
	}
}

func TestEffCodecLZ4BlockSize(t *testing.T) {
	base := codecs["lz4"]
	small := effCodec(tunedConfig(t).With(conf.LZ4BlockSize, 16), base)
	big := effCodec(tunedConfig(t).With(conf.LZ4BlockSize, 512), base)
	if !(big.ratio < base.ratio && small.ratio > base.ratio) {
		t.Errorf("block size should move ratio: small=%v base=%v big=%v",
			small.ratio, base.ratio, big.ratio)
	}
	// Other codecs are untouched.
	z := effCodec(tunedConfig(t).With(conf.IOCompressionCodec, 3).With(conf.LZ4BlockSize, 512), codecs["zstd"])
	if z != codecs["zstd"] {
		t.Error("zstd affected by lz4 block size")
	}
}

func TestOOMChargesRetries(t *testing.T) {
	// More allowed task failures burn more time before the job dies.
	cl := PaperCluster()
	w := PageRank(10)
	few := conf.SparkSpace().Default().With(conf.TaskMaxFailures, 1)
	many := conf.SparkSpace().Default().With(conf.TaskMaxFailures, 8)
	a := Run(cl, w, few, seededTestRNG(1), math.Inf(1))
	b := Run(cl, w, many, seededTestRNG(1), math.Inf(1))
	if !a.OOM || !b.OOM {
		t.Fatalf("both should OOM: %v %v", a.OOM, b.OOM)
	}
	if b.Seconds <= a.Seconds {
		t.Errorf("8 retries (%v) should burn more than 1 retry (%v)", b.Seconds, a.Seconds)
	}
}

// seededTestRNG avoids importing sample twice in call sites above.
func seededTestRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

func TestRunDetailedBreakdown(t *testing.T) {
	cl := PaperCluster()
	w := PageRank(5)
	c := tunedConfig(t)
	out := RunDetailed(cl, w, c, seededTestRNG(3), math.Inf(1))
	if !out.Completed {
		t.Fatalf("run failed: %+v", out)
	}
	if len(out.Breakdown) != len(w.Stages) {
		t.Fatalf("breakdown stages = %d, want %d", len(out.Breakdown), len(w.Stages))
	}
	var sum float64
	for _, sb := range out.Breakdown {
		if sb.Seconds <= 0 || sb.Tasks < 1 || sb.Waves < 1 {
			t.Errorf("%s: implausible breakdown %+v", sb.Name, sb)
		}
		sum += sb.Seconds
	}
	// Stage times (pre-noise) should roughly account for the total
	// minus startup.
	if sum < out.Seconds*0.8 || sum > out.Seconds*1.2 {
		t.Errorf("breakdown sum %v vs total %v", sum, out.Seconds)
	}
	// Plain Run must not pay the breakdown cost.
	plain := Run(cl, w, c, seededTestRNG(3), math.Inf(1))
	if plain.Breakdown != nil {
		t.Error("plain Run should not collect breakdowns")
	}
	if plain.Seconds != out.Seconds {
		t.Error("collection changed the simulated time")
	}
}
