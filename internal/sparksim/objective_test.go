package sparksim

import (
	"testing"

	"repro/internal/conf"
)

func TestResourceCostObjectiveScalesWithFootprint(t *testing.T) {
	ev := NewEvaluator(PaperCluster(), KMeans(200), 1, 480)
	rc := NewResourceCostEvaluator(ev, 0.1)

	big := tunedConfig(t) // 20 executors x 8 cores
	small := tunedConfig(t).With(conf.ExecutorInstances, 5)

	recBig := rc.EvaluateSpec(big, EvalSpec{})
	recSmall := rc.EvaluateSpec(small, EvalSpec{})
	if !recBig.Completed || !recSmall.Completed {
		t.Fatalf("runs failed: %+v %+v", recBig, recSmall)
	}
	// The big layout is faster in wall-clock...
	if recBig.Raw >= recSmall.Raw {
		t.Fatalf("premise broken: big layout (%v) not faster than small (%v)", recBig.Raw, recSmall.Raw)
	}
	// ...but its objective reflects 4x the resources.
	ratio := recBig.Seconds / recBig.Raw / (recSmall.Seconds / recSmall.Raw)
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("rate ratio = %v, want ~4 (4x executors)", ratio)
	}
}

func TestResourceCostEvaluatorKeepsTimeAccounting(t *testing.T) {
	ev := NewEvaluator(PaperCluster(), TeraSort(20), 2, 480)
	rc := NewResourceCostEvaluator(ev, 0.1)
	rec := rc.EvaluateSpec(tunedConfig(t), EvalSpec{})
	// Search cost stays in simulated seconds (the paper's metric),
	// not in priced units.
	if rc.SearchCost() != min(rec.Raw, 480) {
		t.Errorf("search cost %v, want raw time %v", rc.SearchCost(), rec.Raw)
	}
	if rc.Evals() != 1 {
		t.Errorf("evals = %d", rc.Evals())
	}
	if rc.WorkloadName() != "TeraSort" {
		t.Errorf("identity lost: %q", rc.WorkloadName())
	}
}

func TestResourceCostInfeasiblePricedAtWorstCase(t *testing.T) {
	ev := NewEvaluator(PaperCluster(), TeraSort(20), 3, 480)
	rc := NewResourceCostEvaluator(ev, 0.1)
	bad := tunedConfig(t).
		With(conf.ExecutorMemory, 184320).
		With(conf.ExecutorMemoryOverhead, 8192).
		With(conf.OffHeapEnabled, 1).
		With(conf.OffHeapSize, 16384)
	rec := rc.EvaluateSpec(bad, EvalSpec{})
	if !rec.Infeasible {
		t.Fatal("expected infeasible")
	}
	if rec.Seconds < 480*160 {
		t.Errorf("infeasible objective %v should be priced at full cluster", rec.Seconds)
	}
	if rc.OccupiedCores(bad) != 0 {
		t.Error("infeasible layout should occupy no cores")
	}
}

func TestMeasureCostConsistent(t *testing.T) {
	ev := NewEvaluator(PaperCluster(), TeraSort(20), 4, 480)
	rc := NewResourceCostEvaluator(ev, 0.1)
	c := tunedConfig(t)
	timeOnly := ev.Measure(c, 3, 9)
	priced := rc.MeasureCost(c, 3, 9)
	if priced <= timeOnly {
		t.Errorf("priced cost %v should exceed bare seconds %v", priced, timeOnly)
	}
	if rc.SearchCost() != 0 {
		t.Error("MeasureCost charged search cost")
	}
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
