package sparksim

import (
	"math"

	"repro/internal/backend"
)

// Fidelity is the backend-neutral proxy-scale selector; sparksim
// interprets InputScale as a per-stage data-volume fraction and
// StageFrac as a stage-prefix truncation. See ApplyFidelity.
type Fidelity = backend.Fidelity

// FullFidelity is the explicit full-scale value; identical to the
// zero Fidelity.
var FullFidelity = backend.FullFidelity

// ApplyFidelity derives the proxy workload f selects from w. Full
// fidelity returns w unchanged (no copy). Otherwise every retained
// stage's data volumes are scaled by f.Scale() — broadcast traffic
// excepted: model state shipped to executors does not shrink with the
// input — and the plan is cut to its first ceil(f.Frac()·len) stages.
// A prefix always remains a valid plan: cached RDDs are written before
// they are read, so truncation can only drop readers, never producers.
// The result satisfies Workload.Validate whenever w does, and the same
// (workload, fidelity) pair always yields the same proxy, so journaled
// evaluations replay bit-identically.
func ApplyFidelity(f Fidelity, w Workload) Workload {
	if f.Full() {
		return w
	}
	keep := len(w.Stages)
	if frac := f.Frac(); frac < 1 {
		keep = int(math.Ceil(frac * float64(len(w.Stages))))
		if keep < 1 {
			keep = 1
		}
	}
	s := f.Scale()
	stages := make([]Stage, keep)
	for i := 0; i < keep; i++ {
		st := w.Stages[i]
		st.InputMB *= s
		st.ShuffleOutMB *= s
		st.WriteHDFSMB *= s
		st.CacheOutMB *= s
		stages[i] = st
	}
	w.Stages = stages
	return w
}
