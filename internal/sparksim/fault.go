package sparksim

import (
	"fmt"
	"math/rand/v2"
)

// FaultPlan describes the cluster misbehavior injected into simulated
// runs — the failures a real Spark deployment throws at a tuner that
// per-run noise does not capture: executors lost mid-stage, straggler
// tasks an order of magnitude slower than their peers, transient
// evaluation errors (lost heartbeats, fetch storms) and spurious OOM
// kills from co-tenant memory pressure.
//
// The zero value disables injection entirely: a zero plan consumes no
// randomness and leaves every run bit-identical to an un-faulted one.
// All draws come from a dedicated fault stream derived from Seed and
// the evaluation index, never from the run's noise stream, so enabling
// faults perturbs outcomes only through the injected events — and the
// same (seed, plan) always reproduces the same faults, whether runs
// execute sequentially or in a parallel batch.
type FaultPlan struct {
	// ExecutorLossProb is the per-run probability that one executor is
	// lost at a random stage: its in-flight work is recomputed and the
	// rest of the job runs with fewer slots.
	ExecutorLossProb float64
	// StragglerProb is the per-stage probability of straggler
	// amplification: the stage takes StragglerFactor times longer
	// (a severe straggler dominating the last wave, beyond what the
	// modeled skew tail and speculation account for).
	StragglerProb float64
	// StragglerFactor is the amplification multiple (default 3).
	StragglerFactor float64
	// TransientErrProb is the per-run probability of a transient
	// evaluation error at a random stage: the run aborts and reports
	// Transient=true — the class of failure a retry can cure.
	TransientErrProb float64
	// SpuriousOOMProb is the per-run probability of a spurious OOM
	// kill: the run aborts with OOM=true even though the configuration
	// was viable. Indistinguishable from a config-caused OOM, so it is
	// not flagged transient — tuners must absorb it as a worst-case
	// observation.
	SpuriousOOMProb float64
	// Seed mixes into the per-evaluation fault stream so campaigns can
	// vary the fault sequence independently of the noise seed.
	Seed uint64
}

// Enabled reports whether the plan injects anything.
func (p FaultPlan) Enabled() bool {
	return p.ExecutorLossProb > 0 || p.StragglerProb > 0 ||
		p.TransientErrProb > 0 || p.SpuriousOOMProb > 0
}

func (p FaultPlan) stragglerFactor() float64 {
	if p.StragglerFactor <= 1 {
		return 3
	}
	return p.StragglerFactor
}

// String renders the plan compactly for logs and CLI output.
func (p FaultPlan) String() string {
	if !p.Enabled() {
		return "off"
	}
	return fmt.Sprintf("execloss=%.2g straggler=%.2gx%.2g transient=%.2g oom=%.2g seed=%d",
		p.ExecutorLossProb, p.StragglerProb, p.stragglerFactor(),
		p.TransientErrProb, p.SpuriousOOMProb, p.Seed)
}

// DefaultFaultPlan returns the moderate plan the fault-injection
// stress suite runs under: roughly one injected incident every few
// runs of each class.
func DefaultFaultPlan() FaultPlan {
	return FaultPlan{
		ExecutorLossProb: 0.10,
		StragglerProb:    0.08,
		StragglerFactor:  3,
		TransientErrProb: 0.12,
		SpuriousOOMProb:  0.04,
	}
}

// faultSchedule is the per-run realization of a FaultPlan: which
// faults strike, and at which stage.
type faultSchedule struct {
	active         bool
	transientStage int
	execLossStage  int
	oomStage       int
	straggler      []float64 // per-stage multiplier; 1 = untouched
}

// schedule draws one run's faults. Every class is drawn
// unconditionally and in a fixed order, so the randomness consumed per
// run is constant and the schedule is a pure function of the stream —
// the property that keeps batch and sequential evaluation bit-equal.
func (p FaultPlan) schedule(frng *rand.Rand, nStages int) faultSchedule {
	fs := faultSchedule{active: true, transientStage: -1, execLossStage: -1, oomStage: -1}
	if nStages < 1 {
		nStages = 1
	}
	tp, ti := frng.Float64(), frng.IntN(nStages)
	ep, ei := frng.Float64(), frng.IntN(nStages)
	op, oi := frng.Float64(), frng.IntN(nStages)
	if tp < p.TransientErrProb {
		fs.transientStage = ti
	}
	if ep < p.ExecutorLossProb {
		fs.execLossStage = ei
	}
	if op < p.SpuriousOOMProb {
		fs.oomStage = oi
	}
	fs.straggler = make([]float64, nStages)
	for i := range fs.straggler {
		fs.straggler[i] = 1
		if frng.Float64() < p.StragglerProb {
			fs.straggler[i] = p.stragglerFactor()
		}
	}
	return fs
}
