package sparksim

import (
	"math/rand/v2"

	"repro/internal/backend"
)

// FaultPlan is the backend-neutral fault-injection plan; sparksim
// realizes its classes as executor loss at a stage boundary, per-stage
// straggler amplification, transient run aborts and spurious OOM
// kills. See backend.FaultPlan for the stream discipline.
type FaultPlan = backend.FaultPlan

// DefaultFaultPlan returns backend.DefaultFaultPlan — the moderate
// plan the fault-injection stress suite runs under.
func DefaultFaultPlan() FaultPlan { return backend.DefaultFaultPlan() }

// faultSchedule is the per-run realization of a FaultPlan: which
// faults strike, and at which stage.
type faultSchedule struct {
	active         bool
	transientStage int
	execLossStage  int
	oomStage       int
	straggler      []float64 // per-stage multiplier; 1 = untouched
}

// scheduleFaults draws one run's faults. Every class is drawn
// unconditionally and in a fixed order, so the randomness consumed per
// run is constant and the schedule is a pure function of the stream —
// the property that keeps batch and sequential evaluation bit-equal.
func scheduleFaults(p FaultPlan, frng *rand.Rand, nStages int) faultSchedule {
	fs := faultSchedule{active: true, transientStage: -1, execLossStage: -1, oomStage: -1}
	if nStages < 1 {
		nStages = 1
	}
	tp, ti := frng.Float64(), frng.IntN(nStages)
	ep, ei := frng.Float64(), frng.IntN(nStages)
	op, oi := frng.Float64(), frng.IntN(nStages)
	if tp < p.TransientErrProb {
		fs.transientStage = ti
	}
	if ep < p.ExecutorLossProb {
		fs.execLossStage = ei
	}
	if op < p.SpuriousOOMProb {
		fs.oomStage = oi
	}
	fs.straggler = make([]float64, nStages)
	for i := range fs.straggler {
		fs.straggler[i] = 1
		if frng.Float64() < p.StragglerProb {
			fs.straggler[i] = p.EffectiveStragglerFactor()
		}
	}
	return fs
}
