package sparksim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/conf"
	"repro/internal/sample"
)

func TestExtraWorkloadsRunUnderTunedConfig(t *testing.T) {
	cl := PaperCluster()
	c := tunedConfig(t)
	for _, w := range ExtraWorkloads() {
		out := Run(cl, w, c, sample.NewRNG(3), math.Inf(1))
		if !out.Completed {
			t.Errorf("%s did not complete under tuned config: %+v", w.ID(), out)
			continue
		}
		if out.Seconds < 5 || out.Seconds > 2500 {
			t.Errorf("%s implausible duration %v", w.ID(), out.Seconds)
		}
	}
}

func TestTriangleCountIsMemoryHungry(t *testing.T) {
	// The wedge join should OOM under the Spark default like the
	// paper's graph workloads do.
	cl := PaperCluster()
	def := conf.SparkSpace().Default()
	out := Run(cl, TriangleCount(3), def, sample.NewRNG(4), math.Inf(1))
	if !out.OOM {
		t.Errorf("TriangleCount under default should OOM, got %+v", out)
	}
}

func TestWordCountIsScanBound(t *testing.T) {
	// Doubling input should roughly double tuned execution time for a
	// scan-bound job on a saturated cluster (unlike cached iterative
	// jobs).
	cl := PaperCluster()
	c := tunedConfig(t).With(conf.ExecutorInstances, 5)
	small := Run(cl, WordCount(30), c, sample.NewRNG(5), math.Inf(1))
	large := Run(cl, WordCount(60), c, sample.NewRNG(5), math.Inf(1))
	ratio := large.Seconds / small.Seconds
	if ratio < 1.5 || ratio > 2.6 {
		t.Errorf("WordCount 60GB/30GB time ratio %v, want ~2", ratio)
	}
}

func TestSQLAggregationBroadcastSensitivity(t *testing.T) {
	// The broadcast dimension table makes broadcast compression and
	// block size matter more than for the paper workloads.
	cl := PaperCluster()
	base := tunedConfig(t)
	on := Run(cl, SQLAggregation(60), base.With(conf.BroadcastCompress, 1), sample.NewRNG(6), math.Inf(1))
	off := Run(cl, SQLAggregation(60), base.With(conf.BroadcastCompress, 0), sample.NewRNG(6), math.Inf(1))
	if on.Seconds == off.Seconds {
		t.Error("broadcast compression has no effect on SQLAggregation")
	}
}

func TestExtraWorkloadsTunable(t *testing.T) {
	// Integration: ROBOTune-style subspace search is exercised in
	// core tests; here just confirm random search finds completing
	// configurations so the workloads are usable objectives.
	cl := PaperCluster()
	space := conf.SparkSpace()
	for _, w := range ExtraWorkloads() {
		ev := NewEvaluator(cl, w, 9, 480)
		found := false
		for i, u := range sample.LHS(25, space.Dim(), sample.NewRNG(9)) {
			_ = i
			if rec := ev.EvaluateSpec(space.Decode(u), EvalSpec{}); rec.Completed {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: no completing config in 25 LHS samples", w.ID())
		}
	}
}

func TestDescribeAndValidate(t *testing.T) {
	for _, w := range append(ExtraWorkloads(), PageRank(5), KMeans(200), TeraSort(20)) {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.ID(), err)
		}
		out := w.Describe()
		if out == "" || !containsAll(out, w.Name, "stage", "source") {
			t.Errorf("%s: bad Describe output", w.ID())
		}
		if w.TotalInputMB() <= 0 {
			t.Errorf("%s: TotalInputMB = %v", w.ID(), w.TotalInputMB())
		}
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !strings.Contains(s, sub) {
			return false
		}
	}
	return true
}

func TestValidateCatchesBadPlans(t *testing.T) {
	bad := []Workload{
		{Name: "empty"},
		{Name: "noInput", Stages: []Stage{{Name: "a", InputMB: 0, ExpandFactor: 1}}},
		{Name: "noExpand", Stages: []Stage{{Name: "a", InputMB: 10}}},
		{Name: "negKnob", Stages: []Stage{{Name: "a", InputMB: 10, ExpandFactor: 1, Skew: -1}}},
		{Name: "cacheNoKey", Stages: []Stage{{Name: "a", Source: FromCache, InputMB: 10, ExpandFactor: 1}}},
		{Name: "cacheBeforeWrite", Stages: []Stage{
			{Name: "a", Source: FromCache, CacheKey: "x", InputMB: 10, ExpandFactor: 1}}},
		{Name: "cacheOutNoKey", Stages: []Stage{
			{Name: "a", InputMB: 10, ExpandFactor: 1, CacheOutMB: 5}}},
	}
	for _, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("%s: invalid plan accepted", w.Name)
		}
	}
}
