package sparksim

import (
	"math"

	"repro/internal/backend"
	"repro/internal/conf"
	"repro/internal/sample"
)

// EvalRecord, EvalSpec and the evaluation entry points are the
// backend-neutral contracts; sparksim is their first implementation.
type (
	EvalRecord = backend.EvalRecord
	EvalSpec   = backend.EvalSpec
)

// Evaluator exposes the simulator as the expensive black-box
// objective f(x) of §3.1, with the paper's per-evaluation time limit
// (§5.1 uses 480 s) and bookkeeping of search cost — "the total time
// to generate and evaluate configurations" (§5.3). The embedded
// backend.Harness owns index reservation, cost/history commit
// ordering and batch dispatch; sparksim supplies the per-run
// simulation (noise stream, fault realization, fidelity-derived proxy
// workload).
//
// Evaluator is safe for concurrent use. Faults may be set before the
// evaluator is shared; mutating it concurrently with evaluations is
// not supported.
type Evaluator struct {
	backend.Harness
	Cluster  Cluster
	Workload Workload
}

// NewEvaluator builds an evaluator for a workload on a cluster. seed
// makes the noise sequence reproducible; cap <= 0 selects the paper's
// 480 s limit.
func NewEvaluator(cl Cluster, w Workload, seed uint64, cap float64) *Evaluator {
	ev := &Evaluator{Cluster: cl, Workload: w}
	ev.Init(seed, cap, ev.runAt)
	return ev
}

// WorkloadName returns the workload family being tuned (used as the
// memoization key by ROBOTune).
func (ev *Evaluator) WorkloadName() string { return ev.Workload.Name }

// DatasetName returns the input dataset description.
func (ev *Evaluator) DatasetName() string { return ev.Workload.Dataset }

// runAt executes one simulated run at the given evaluation index,
// injecting the plan's faults when enabled. The noise and fault
// streams are seeded by the index alone, so a proxy run at index i
// consumes exactly the stream a full-fidelity run at i would have —
// fidelity never shifts the randomness of later evaluations.
func (ev *Evaluator) runAt(c conf.Config, seed uint64, idx int, plan FaultPlan, cap float64, fid Fidelity) backend.Outcome {
	w := ApplyFidelity(fid, ev.Workload)
	rng := sample.NewRNG(seed*1e9 + uint64(idx))
	var out Outcome
	if !plan.Enabled() {
		out = Run(ev.Cluster, w, c, rng, cap)
	} else {
		frng := sample.NewRNG(plan.Seed ^ (seed*1e9 + uint64(idx)) ^ 0xfa1175ee)
		out = RunWithFaults(ev.Cluster, w, c, rng, cap, plan, frng)
	}
	return backend.Outcome{
		Seconds:    out.Seconds,
		Completed:  out.Completed,
		OOM:        out.OOM,
		Transient:  out.Transient,
		Infeasible: out.Infeasible,
	}
}

// Measure estimates a configuration's true performance by averaging
// reps fresh runs without charging search cost — used when reporting
// the quality of each tuner's final choice. Fault injection does not
// apply: Measure reports what the configuration is worth, not what a
// faulty session observed.
func (ev *Evaluator) Measure(c conf.Config, reps int, seed uint64) float64 {
	if reps < 1 {
		reps = 1
	}
	var sum float64
	for i := 0; i < reps; i++ {
		rng := sample.NewRNG(seed*31 + uint64(i) + 7)
		out := Run(ev.Cluster, ev.Workload, c, rng, ev.CapSeconds)
		s := math.Min(out.Seconds, ev.CapSeconds)
		if !out.Completed {
			s = ev.CapSeconds
		}
		sum += s
	}
	return sum / float64(reps)
}
