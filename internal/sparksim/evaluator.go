package sparksim

import (
	"context"
	"math"
	"runtime"
	"sync"

	"repro/internal/conf"
	"repro/internal/sample"
)

// EvalRecord is one observation of the black-box objective.
type EvalRecord struct {
	Config conf.Config
	// Seconds is the objective value: execution time, capped at the
	// evaluation limit. Failed configurations report the limit.
	Seconds float64
	// Raw is the uncapped simulated duration (or time consumed before
	// failure/truncation).
	Raw float64
	// Completed, OOM and Infeasible mirror the simulation outcome.
	Completed  bool
	OOM        bool
	Infeasible bool
	// Transient marks a retryable failure (injected lost heartbeat /
	// fetch storm): re-running the same configuration may succeed.
	Transient bool
	// Skipped marks an evaluation that never ran because its batch was
	// cancelled: it carries no observation and was charged no cost.
	Skipped bool
	// Fidelity records the proxy scale the run executed at. The zero
	// value is full fidelity; lower fidelities mean Seconds measures a
	// deterministically derived cheap proxy workload, not the full
	// job, and is comparable only with observations at the same
	// fidelity.
	Fidelity Fidelity
}

// EvalSpec bundles every per-evaluation control into one value: the
// guard cap, the fidelity, and the batch parallelism. The zero value
// reproduces a plain Evaluate call — full fidelity, global cap,
// sequential. It is the single argument of the unified evaluation
// entry points (Evaluator.EvaluateSpec / EvaluateSpecCtx and
// tuners.Session.Eval); the older Evaluate / EvaluateWithCap /
// EvaluateBatch surfaces are thin wrappers over it.
type EvalSpec struct {
	// Cap is the per-run stopping threshold in simulated seconds;
	// <= 0 or above the evaluator's global limit selects the limit.
	Cap float64
	// Fidelity selects the proxy scale (zero = full workload).
	Fidelity Fidelity
	// Workers bounds batch parallelism (<= 0 = GOMAXPROCS). Ignored
	// for single evaluations.
	Workers int
}

// Evaluator exposes the simulator as the expensive black-box
// objective f(x) of §3.1, with the paper's per-evaluation time limit
// (§5.1 uses 480 s) and bookkeeping of search cost — "the total time
// to generate and evaluate configurations" (§5.3).
//
// Evaluator is safe for concurrent use. Faults may be set before the
// evaluator is shared; mutating it concurrently with evaluations is
// not supported.
type Evaluator struct {
	Cluster    Cluster
	Workload   Workload
	CapSeconds float64
	// Faults, when enabled, injects the plan's incidents into every
	// charged evaluation (Measure stays fault-free so final-config
	// quality reports are not polluted). Faults for a given evaluation
	// index are drawn from a dedicated stream, so the same
	// (seed, plan) reproduces the same incidents sequentially or in a
	// parallel batch.
	Faults FaultPlan

	mu      sync.Mutex
	seed    uint64
	evals   int
	cost    float64
	history []EvalRecord
}

// NewEvaluator builds an evaluator for a workload on a cluster. seed
// makes the noise sequence reproducible; cap <= 0 selects the paper's
// 480 s limit.
func NewEvaluator(cl Cluster, w Workload, seed uint64, cap float64) *Evaluator {
	if cap <= 0 {
		cap = 480
	}
	return &Evaluator{Cluster: cl, Workload: w, CapSeconds: cap, seed: seed}
}

// WorkloadName returns the workload family being tuned (used as the
// memoization key by ROBOTune).
func (ev *Evaluator) WorkloadName() string { return ev.Workload.Name }

// DatasetName returns the input dataset description.
func (ev *Evaluator) DatasetName() string { return ev.Workload.Dataset }

// faultRun executes one simulated run of w at the given evaluation
// index, injecting the plan's faults when enabled. The noise and
// fault streams are seeded by the index alone, so a proxy run at
// index i consumes exactly the stream a full-fidelity run at i would
// have — fidelity never shifts the randomness of later evaluations.
func (ev *Evaluator) faultRun(w Workload, c conf.Config, seed uint64, idx int, plan FaultPlan, cap float64) Outcome {
	rng := sample.NewRNG(seed*1e9 + uint64(idx))
	if !plan.Enabled() {
		return Run(ev.Cluster, w, c, rng, cap)
	}
	frng := sample.NewRNG(plan.Seed ^ (seed*1e9 + uint64(idx)) ^ 0xfa1175ee)
	return RunWithFaults(ev.Cluster, w, c, rng, cap, plan, frng)
}

// record converts an outcome into the charged observation.
func (ev *Evaluator) record(c conf.Config, out Outcome, cap float64, fid Fidelity) EvalRecord {
	rec := EvalRecord{
		Config:     c,
		Raw:        out.Seconds,
		Completed:  out.Completed,
		OOM:        out.OOM,
		Infeasible: out.Infeasible,
		Transient:  out.Transient,
	}
	if !fid.Full() {
		rec.Fidelity = fid
	}
	if out.Completed {
		rec.Seconds = math.Min(out.Seconds, cap)
	} else {
		// Failed, infeasible or truncated runs are worth the global
		// cap to the optimizer (worst case) but only charge what they
		// actually burned before the guard stopped them.
		rec.Seconds = ev.CapSeconds
	}
	return rec
}

// Evaluate runs the workload once under the configuration, charges
// the consumed time to the search cost, and returns the observation.
func (ev *Evaluator) Evaluate(c conf.Config) EvalRecord {
	return ev.EvaluateWithCap(c, ev.CapSeconds)
}

// EvaluateWithCap is Evaluate with a tighter per-run stopping
// threshold — ROBOTune's guard against bad configurations kills runs
// at a multiple of the median observed time (§4), which both bounds
// the objective value and reduces the charged search cost. cap is
// clamped to the evaluator's global limit.
func (ev *Evaluator) EvaluateWithCap(c conf.Config, cap float64) EvalRecord {
	return ev.EvaluateSpec(c, EvalSpec{Cap: cap})
}

// EvaluateSpec is the unified single-run entry point: one run under
// the spec's cap and fidelity. A non-full fidelity runs the derived
// proxy workload; the search cost is charged what the proxy actually
// consumed, which is the whole point of multi-fidelity tuning.
func (ev *Evaluator) EvaluateSpec(c conf.Config, spec EvalSpec) EvalRecord {
	cap := spec.Cap
	if cap <= 0 || cap > ev.CapSeconds {
		cap = ev.CapSeconds
	}
	// Read the seed under the same lock that reserves the evaluation
	// index: Reset may rewrite it concurrently, and an unlocked read
	// here is a data race.
	ev.mu.Lock()
	n := ev.evals
	ev.evals++
	seed := ev.seed
	plan := ev.Faults
	ev.mu.Unlock()

	out := ev.faultRun(spec.Fidelity.Apply(ev.Workload), c, seed, n, plan, cap)
	rec := ev.record(c, out, cap, spec.Fidelity)
	consumed := math.Min(out.Seconds, cap)

	ev.mu.Lock()
	ev.cost += consumed
	ev.history = append(ev.history, rec)
	ev.mu.Unlock()
	return rec
}

// Measure estimates a configuration's true performance by averaging
// reps fresh runs without charging search cost — used when reporting
// the quality of each tuner's final choice. Fault injection does not
// apply: Measure reports what the configuration is worth, not what a
// faulty session observed.
func (ev *Evaluator) Measure(c conf.Config, reps int, seed uint64) float64 {
	if reps < 1 {
		reps = 1
	}
	var sum float64
	for i := 0; i < reps; i++ {
		rng := sample.NewRNG(seed*31 + uint64(i) + 7)
		out := Run(ev.Cluster, ev.Workload, c, rng, ev.CapSeconds)
		s := math.Min(out.Seconds, ev.CapSeconds)
		if !out.Completed {
			s = ev.CapSeconds
		}
		sum += s
	}
	return sum / float64(reps)
}

// Evals returns the number of charged evaluations so far.
func (ev *Evaluator) Evals() int {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	return ev.evals
}

// SearchCost returns the accumulated simulated seconds consumed by
// charged evaluations.
func (ev *Evaluator) SearchCost() float64 {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	return ev.cost
}

// History returns a copy of all charged observations in order.
func (ev *Evaluator) History() []EvalRecord {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	return append([]EvalRecord(nil), ev.history...)
}

// Best returns the completed observation with the lowest objective
// value, or ok=false if nothing completed yet.
func (ev *Evaluator) Best() (EvalRecord, bool) {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	best := EvalRecord{Seconds: math.Inf(1)}
	ok := false
	for _, r := range ev.history {
		if r.Completed && r.Seconds < best.Seconds {
			best = r
			ok = true
		}
	}
	return best, ok
}

// RestoreStream moves the evaluation counter and accumulated search
// cost to a journaled position (tuners.StreamRestorer). The per-run
// noise and fault streams are derived from the evaluation index, so a
// resumed session that restores the counter hands its post-replay
// live evaluations exactly the streams the uninterrupted run would
// have consumed. History is not rebuilt — replayed observations live
// in the session's trace, not here.
func (ev *Evaluator) RestoreStream(evals int, cost float64) {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	ev.evals = evals
	ev.cost = cost
}

// Reset clears evaluation counters and history (the workload, noise
// seed and fault plan stay), so one evaluator can serve several tuner
// runs.
func (ev *Evaluator) Reset(seed uint64) {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	ev.seed = seed
	ev.evals = 0
	ev.cost = 0
	ev.history = nil
}

// EvaluateBatch evaluates configurations concurrently on up to
// `workers` goroutines (default GOMAXPROCS) while reproducing the
// exact observations sequential Evaluate calls would have produced:
// evaluation indices — which seed the per-run noise and fault streams
// — are assigned up front, and cost/history are committed in index
// order. Batch evaluation models running independent initial samples
// concurrently on a cluster; search cost still accounts every run's
// full duration.
func (ev *Evaluator) EvaluateBatch(cfgs []conf.Config, workers int) []EvalRecord {
	return ev.EvaluateBatchCtx(context.Background(), cfgs, workers)
}

// EvaluateBatchCtx is EvaluateBatch with cancellation: once ctx is
// done, no further configurations are dispatched; in-flight runs
// finish and are charged normally, and never-dispatched entries come
// back with Skipped=true (no observation, no cost). A nil ctx means
// no cancellation.
func (ev *Evaluator) EvaluateBatchCtx(ctx context.Context, cfgs []conf.Config, workers int) []EvalRecord {
	return ev.EvaluateSpecCtx(ctx, cfgs, EvalSpec{Workers: workers})
}

// EvaluateSpecCtx is the unified batch entry point: every
// configuration runs under the same spec (cap and fidelity), on up
// to spec.Workers goroutines, with EvaluateBatchCtx's cancellation
// and ordering guarantees. The zero spec reproduces EvaluateBatch
// byte for byte.
func (ev *Evaluator) EvaluateSpecCtx(ctx context.Context, cfgs []conf.Config, spec EvalSpec) []EvalRecord {
	workers := spec.Workers
	cap := spec.Cap
	if cap <= 0 || cap > ev.CapSeconds {
		cap = ev.CapSeconds
	}
	n := len(cfgs)
	if n == 0 {
		return nil
	}
	skipAll := func() []EvalRecord {
		recs := make([]EvalRecord, n)
		for i := range recs {
			recs[i] = EvalRecord{Config: cfgs[i], Skipped: true}
		}
		return recs
	}
	if ctx != nil {
		select {
		case <-ctx.Done():
			return skipAll()
		default:
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	// Reserve the index block and snapshot the seed in one critical
	// section; the workers below must not read ev.seed directly, since
	// a concurrent Reset writes it under the lock.
	ev.mu.Lock()
	base := ev.evals
	ev.evals += n
	seed := ev.seed
	plan := ev.Faults
	ev.mu.Unlock()

	wl := spec.Fidelity.Apply(ev.Workload)
	recs := make([]EvalRecord, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out := ev.faultRun(wl, cfgs[i], seed, base+i, plan, cap)
				recs[i] = ev.record(cfgs[i], out, cap, spec.Fidelity)
			}
		}()
	}
	// The dispatch loop is the single cancellation point: indices past
	// the first observed cancellation are marked skipped below.
	dispatched := n
dispatch:
	for i := 0; i < n; i++ {
		if ctx != nil {
			select {
			case <-ctx.Done():
				dispatched = i
				break dispatch
			case next <- i:
				continue
			}
		}
		next <- i
	}
	close(next)
	wg.Wait()
	for i := dispatched; i < n; i++ {
		recs[i] = EvalRecord{Config: cfgs[i], Skipped: true}
	}

	ev.mu.Lock()
	for _, rec := range recs {
		if rec.Skipped {
			continue
		}
		ev.cost += math.Min(rec.Raw, cap)
		ev.history = append(ev.history, rec)
	}
	ev.mu.Unlock()
	return recs
}
