package sparksim

import (
	"math"
	"testing"

	"repro/internal/conf"
	"repro/internal/sample"
)

// TestEveryParameterInfluencesSomeWorkload pins down that none of the
// 44 tunable parameters is dead weight: moving each one across its
// range changes the simulated execution time of at least one paper
// workload. (Most parameters are deliberately low-impact — that is
// what parameter selection exists to discover — but every knob must
// be wired to a real code path.)
func TestEveryParameterInfluencesSomeWorkload(t *testing.T) {
	cl := PaperCluster()
	space := conf.SparkSpace()
	// A context where conditional parameters are active: Kryo + lz4 +
	// speculation + off-heap all enabled, moderate resources so both
	// spill and cache paths are exercised.
	base, err := space.FromRaw(map[string]float64{
		conf.ExecutorCores:      8,
		conf.ExecutorMemory:     16384,
		conf.ExecutorInstances:  16,
		conf.DefaultParallelism: 160,
		conf.Serializer:         1, // kryo
		conf.Speculation:        1,
		conf.OffHeapEnabled:     1,
		conf.DriverMemory:       1024,
		conf.NetworkTimeout:     40000,
		conf.MemoryMapThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A cramped context where the memory-pressure paths (spill, cache
	// eviction, OOM retries, off-heap relief, packing by memory) are
	// active.
	cramped, err := space.FromRaw(map[string]float64{
		conf.ExecutorCores:      32,
		conf.ExecutorMemory:     8192,
		conf.ExecutorInstances:  40,
		conf.DefaultParallelism: 24,
		conf.MaxPartitionBytes:  512,
		conf.Serializer:         1,
		conf.Speculation:        1,
		conf.OffHeapEnabled:     1,
		conf.MemoryFraction:     0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A memory-bound packing context: executor footprint (heap +
	// overhead + off-heap) determines how many executors fit per
	// node, so spark.executor.memoryOverhead changes the layout.
	membound, err := space.FromRaw(map[string]float64{
		conf.ExecutorCores:     4,
		conf.ExecutorMemory:    40960,
		conf.ExecutorInstances: 40,
		conf.OffHeapEnabled:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	workloads := []Workload{TeraSort(30), PageRank(5), KMeans(200)}

	run := func(c conf.Config, w Workload) float64 {
		out := Run(cl, w, c, sample.NewRNG(7), math.Inf(1))
		return out.Seconds
	}
	for _, p := range space.Params() {
		moved := false
		for _, ctx := range []conf.Config{base, cramped, membound} {
			lo := ctx.With(p.Name, p.DecodeUnit(0.02))
			hi := ctx.With(p.Name, p.DecodeUnit(0.98))
			if lo.Raw(p.Name) == hi.Raw(p.Name) {
				t.Fatalf("%s: range endpoints identical", p.Name)
			}
			for _, w := range workloads {
				if run(lo, w) != run(hi, w) {
					moved = true
					break
				}
			}
		}
		if !moved {
			t.Errorf("%s: no workload's execution time responds to this parameter", p.Name)
		}
	}
}

// TestConditionalParametersGatedCorrectly verifies dependent
// parameters are inert when their controlling switch is off — the
// collinearity structure §3.3 groups for joint permutation.
func TestConditionalParametersGatedCorrectly(t *testing.T) {
	cl := PaperCluster()
	space := conf.SparkSpace()
	base, err := space.FromRaw(map[string]float64{
		conf.ExecutorCores:     8,
		conf.ExecutorMemory:    16384,
		conf.ExecutorInstances: 16,
		conf.Serializer:        0, // java: kryo knobs must be inert
		conf.Speculation:       0, // off: speculation knobs must be inert
		conf.OffHeapEnabled:    0, // off: size must be inert
	})
	if err != nil {
		t.Fatal(err)
	}
	w := TeraSort(30)
	run := func(c conf.Config) float64 {
		return Run(cl, w, c, sample.NewRNG(9), math.Inf(1)).Seconds
	}
	ref := run(base)
	for _, name := range []string{
		conf.KryoBuffer, conf.KryoBufferMax, conf.KryoReferenceTracking,
		conf.SpeculationInterval, conf.SpeculationMultiplier, conf.SpeculationQuantile,
		conf.OffHeapSize,
	} {
		p, _ := space.Param(name)
		if got := run(base.With(name, p.DecodeUnit(0.9))); got != ref {
			t.Errorf("%s: changed outcome (%v -> %v) while its switch is off", name, ref, got)
		}
	}
	// The lz4 block size must be inert under a different codec.
	zstd := base.With(conf.IOCompressionCodec, 3)
	refZ := run(zstd)
	p, _ := space.Param(conf.LZ4BlockSize)
	if got := run(zstd.With(conf.LZ4BlockSize, p.DecodeUnit(0.9))); got != refZ {
		t.Errorf("lz4 block size changed outcome under zstd codec")
	}
}

// TestSpeculationHelpsSkewedWorkload: with heavy skew, enabling
// speculation should reduce execution time despite its overhead.
func TestSpeculationHelpsSkewedWorkload(t *testing.T) {
	cl := PaperCluster()
	space := conf.SparkSpace()
	base, err := space.FromRaw(map[string]float64{
		conf.ExecutorCores:     8,
		conf.ExecutorMemory:    24576,
		conf.ExecutorInstances: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := PageRank(10) // skew 0.5
	off := Run(cl, w, base.With(conf.Speculation, 0), sample.NewRNG(4), math.Inf(1))
	on := Run(cl, w, base.With(conf.Speculation, 1), sample.NewRNG(4), math.Inf(1))
	if !off.Completed || !on.Completed {
		t.Fatalf("unexpected failures: off=%+v on=%+v", off, on)
	}
	if on.Seconds >= off.Seconds {
		t.Errorf("speculation on (%v) should beat off (%v) under heavy skew", on.Seconds, off.Seconds)
	}
}

// TestDriverMemoryMattersForManyTasks: a cramped driver slows stages
// with very many tasks.
func TestDriverMemoryMattersForManyTasks(t *testing.T) {
	cl := PaperCluster()
	space := conf.SparkSpace()
	base, err := space.FromRaw(map[string]float64{
		conf.ExecutorCores:      8,
		conf.ExecutorMemory:     24576,
		conf.ExecutorInstances:  20,
		conf.DefaultParallelism: 1024,
		conf.MaxPartitionBytes:  16,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := TeraSort(40)
	small := Run(cl, w, base.With(conf.DriverMemory, 1024), sample.NewRNG(5), math.Inf(1))
	big := Run(cl, w, base.With(conf.DriverMemory, 8192), sample.NewRNG(5), math.Inf(1))
	if big.Seconds >= small.Seconds {
		t.Errorf("8GB driver (%v) should beat 1GB driver (%v) with thousands of tasks", big.Seconds, small.Seconds)
	}
}
