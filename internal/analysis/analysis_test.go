package analysis

import (
	"math"
	"testing"

	"repro/internal/sample"
	"repro/internal/stats"
)

func TestBootstrapMeanCI(t *testing.T) {
	rng := sample.NewRNG(1)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 10 + rng.NormFloat64()
	}
	iv := BootstrapMeanCI(xs, 0.95, 2)
	if math.Abs(iv.Point-10) > 0.3 {
		t.Errorf("point %v, want ~10", iv.Point)
	}
	if !(iv.Lo < iv.Point && iv.Point < iv.Hi) {
		t.Errorf("interval not around point: %v", iv)
	}
	// ~95% CI of a unit-variance mean over 200 samples: halfwidth ~0.14.
	if hw := (iv.Hi - iv.Lo) / 2; hw < 0.05 || hw > 0.35 {
		t.Errorf("halfwidth %v implausible", hw)
	}
	if iv.String() == "" {
		t.Error("empty render")
	}
}

func TestBootstrapCIDegenerate(t *testing.T) {
	iv := BootstrapCI([]float64{5}, stats.Mean, 0.95, 100, 1)
	if iv.Point != 5 || iv.Lo != 5 || iv.Hi != 5 {
		t.Errorf("single-sample CI = %v", iv)
	}
	iv = BootstrapCI([]float64{3, 3, 3, 3}, stats.Mean, 0, 0, 1)
	if iv.Lo != 3 || iv.Hi != 3 || iv.Confidence != 0.95 {
		t.Errorf("constant CI = %v", iv)
	}
}

func TestBootstrapCICoverage(t *testing.T) {
	// Rough coverage check: the true mean (0) should fall inside the
	// 95% CI for the vast majority of repeated draws.
	hits := 0
	const trials = 60
	for trial := uint64(0); trial < trials; trial++ {
		rng := sample.NewRNG(trial + 100)
		xs := make([]float64, 30)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		iv := BootstrapCI(xs, stats.Mean, 0.95, 500, trial)
		if iv.Lo <= 0 && 0 <= iv.Hi {
			hits++
		}
	}
	if hits < trials*80/100 {
		t.Errorf("coverage %d/%d too low", hits, trials)
	}
}

func TestMannWhitneyDetectsShift(t *testing.T) {
	rng := sample.NewRNG(5)
	a := make([]float64, 40)
	b := make([]float64, 40)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 1.5
	}
	_, z, p := MannWhitney(a, b)
	if p > 0.001 {
		t.Errorf("clear shift not detected: p=%v", p)
	}
	if z >= 0 {
		t.Errorf("z=%v, want negative (a smaller)", z)
	}
	if !Better(a, b, 0.01) {
		t.Error("Better should report a < b")
	}
	if Better(b, a, 0.01) {
		t.Error("Better reported the wrong direction")
	}
}

func TestMannWhitneyNullAndEdge(t *testing.T) {
	rng := sample.NewRNG(6)
	a := make([]float64, 50)
	b := make([]float64, 50)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	if _, _, p := MannWhitney(a, b); p < 0.01 {
		t.Errorf("same-distribution p=%v suspiciously small", p)
	}
	// All tied values: p must be 1, not NaN.
	if _, z, p := MannWhitney([]float64{2, 2}, []float64{2, 2, 2}); p != 1 || z != 0 {
		t.Errorf("all-tied: z=%v p=%v", z, p)
	}
	if _, _, p := MannWhitney(nil, []float64{1}); !math.IsNaN(p) {
		t.Error("empty sample should give NaN")
	}
}

func TestMannWhitneyTiesHandled(t *testing.T) {
	// Heavy ties across groups: statistic stays finite and sane.
	a := []float64{1, 1, 2, 2, 3}
	b := []float64{2, 2, 3, 3, 4}
	u, z, p := MannWhitney(a, b)
	if math.IsNaN(u) || math.IsNaN(z) || p < 0 || p > 1 {
		t.Errorf("ties broke the test: u=%v z=%v p=%v", u, z, p)
	}
}

func TestRegretOf(t *testing.T) {
	trace := []float64{100, 80, 90, 60, 70}
	r := RegretOf(trace, 50)
	if r.Final != 10 {
		t.Errorf("final regret %v, want 10", r.Final)
	}
	// Running mins: 100, 80, 80, 60, 60 → mean - 50 = 76 - 50 = 26.
	if math.Abs(r.AUC-26) > 1e-9 {
		t.Errorf("AUC %v, want 26", r.AUC)
	}
	// Within 10% of 50 → <= 55 never happens → len+1.
	if r.FirstWithin != 6 {
		t.Errorf("FirstWithin %v, want 6 (never)", r.FirstWithin)
	}
	r2 := RegretOf([]float64{54, 70}, 50)
	if r2.FirstWithin != 1 {
		t.Errorf("FirstWithin %v, want 1", r2.FirstWithin)
	}
	r3 := RegretOf(nil, 50)
	if !math.IsNaN(r3.Final) {
		t.Error("empty trace should give NaN")
	}
}

func TestWinRate(t *testing.T) {
	if w := WinRate([]float64{1, 5, 2}, []float64{2, 4, 3}); math.Abs(w-2.0/3) > 1e-12 {
		t.Errorf("win rate %v", w)
	}
	if w := WinRate(nil, nil); !math.IsNaN(w) {
		t.Errorf("empty win rate %v", w)
	}
	if w := WinRate([]float64{1, 1}, []float64{2}); w != 1 {
		t.Errorf("length mismatch win rate %v", w)
	}
}
