package analysis_test

import (
	"fmt"

	"repro/internal/analysis"
)

// Mann-Whitney U answers "does tuner A find better configurations
// than tuner B" without assuming normal execution times.
func ExampleMannWhitney() {
	robotune := []float64{92, 95, 88, 90, 97, 91, 89, 94}
	baseline := []float64{120, 131, 115, 140, 118, 125, 122, 138}
	_, z, p := analysis.MannWhitney(robotune, baseline)
	fmt.Println("robotune stochastically smaller:", z < 0 && p < 0.01)
	fmt.Println("significant at 1%:", analysis.Better(robotune, baseline, 0.01))
	// Output:
	// robotune stochastically smaller: true
	// significant at 1%: true
}
