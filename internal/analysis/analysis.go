// Package analysis provides the statistical machinery for comparing
// tuners rigorously: bootstrap confidence intervals, the Mann-Whitney
// U test (the standard nonparametric test for "tuner A finds better
// configurations than tuner B" without normality assumptions), and
// convergence/regret summaries of tuning traces.
package analysis

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sample"
	"repro/internal/stats"
)

// Interval is a two-sided confidence interval around a point
// estimate.
type Interval struct {
	Point, Lo, Hi float64
	// Confidence is the nominal level, e.g. 0.95.
	Confidence float64
}

func (iv Interval) String() string {
	return fmt.Sprintf("%.3f [%.3f, %.3f]", iv.Point, iv.Lo, iv.Hi)
}

// BootstrapCI estimates a confidence interval for an arbitrary
// statistic of xs by percentile bootstrap with `resamples` draws
// (default 2000). The statistic receives a resampled copy it may
// reorder freely.
func BootstrapCI(xs []float64, stat func([]float64) float64, confidence float64, resamples int, seed uint64) Interval {
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	if resamples <= 0 {
		resamples = 2000
	}
	point := stat(append([]float64(nil), xs...))
	if len(xs) < 2 {
		return Interval{Point: point, Lo: point, Hi: point, Confidence: confidence}
	}
	rng := sample.NewRNG(seed ^ 0xb007)
	estimates := make([]float64, resamples)
	buf := make([]float64, len(xs))
	for r := 0; r < resamples; r++ {
		for i := range buf {
			buf[i] = xs[rng.IntN(len(xs))]
		}
		estimates[r] = stat(buf)
	}
	alpha := (1 - confidence) / 2
	return Interval{
		Point:      point,
		Lo:         stats.Percentile(estimates, alpha*100),
		Hi:         stats.Percentile(estimates, (1-alpha)*100),
		Confidence: confidence,
	}
}

// BootstrapMeanCI is BootstrapCI with the mean statistic.
func BootstrapMeanCI(xs []float64, confidence float64, seed uint64) Interval {
	return BootstrapCI(xs, stats.Mean, confidence, 0, seed)
}

// MannWhitney performs the two-sided Mann-Whitney U test (normal
// approximation with tie correction) on independent samples a and b.
// It returns the U statistic for a, the z score, and the two-sided
// p-value. Small p with U below its mean indicates a's values are
// stochastically smaller (better, for execution times).
func MannWhitney(a, b []float64) (u, z, p float64) {
	n1, n2 := float64(len(a)), float64(len(b))
	if n1 == 0 || n2 == 0 {
		return math.NaN(), math.NaN(), math.NaN()
	}
	type obs struct {
		v     float64
		group int
	}
	all := make([]obs, 0, len(a)+len(b))
	for _, v := range a {
		all = append(all, obs{v, 0})
	}
	for _, v := range b {
		all = append(all, obs{v, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Midranks with tie groups.
	ranks := make([]float64, len(all))
	var tieTerm float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	var r1 float64
	for i, o := range all {
		if o.group == 0 {
			r1 += ranks[i]
		}
	}
	u = r1 - n1*(n1+1)/2
	mu := n1 * n2 / 2
	n := n1 + n2
	sigma2 := n1 * n2 / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if sigma2 <= 0 {
		// All values tied: no evidence either way.
		return u, 0, 1
	}
	z = (u - mu) / math.Sqrt(sigma2)
	p = 2 * (1 - stats.NormCDF(math.Abs(z)))
	return u, z, p
}

// Better reports whether sample a is significantly smaller (better,
// for times/costs) than b at the given significance level.
func Better(a, b []float64, alpha float64) bool {
	u, z, p := MannWhitney(a, b)
	_ = u
	return p < alpha && z < 0
}

// Regret summarises a tuning trace against a reference optimum.
type Regret struct {
	// Final is best(trace) - optimum.
	Final float64
	// AUC is the mean simple regret across iterations (area under the
	// running-minimum curve minus the optimum) — lower means faster
	// convergence, not just a good endpoint.
	AUC float64
	// FirstWithin holds the 1-based iteration at which the running
	// minimum first came within 10% of the optimum (len(trace)+1 if
	// never).
	FirstWithin int
}

// RegretOf computes convergence statistics for a trace of observed
// objective values against a reference optimum (e.g. the best value
// any tuner ever observed for the workload).
func RegretOf(trace []float64, optimum float64) Regret {
	if len(trace) == 0 {
		return Regret{Final: math.NaN(), AUC: math.NaN(), FirstWithin: 1}
	}
	running := math.Inf(1)
	var auc float64
	first := len(trace) + 1
	for i, v := range trace {
		if v < running {
			running = v
		}
		auc += running - optimum
		if first > len(trace) && running <= optimum*1.10 {
			first = i + 1
		}
	}
	return Regret{
		Final:       running - optimum,
		AUC:         auc / float64(len(trace)),
		FirstWithin: first,
	}
}

// WinRate returns the fraction of paired sessions where a's value is
// strictly below b's. Inputs are paired by index; extra entries in
// the longer slice are ignored.
func WinRate(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return math.NaN()
	}
	wins := 0
	for i := 0; i < n; i++ {
		if a[i] < b[i] {
			wins++
		}
	}
	return float64(wins) / float64(n)
}
