package clustersim

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/conf"
)

// DefaultCapSeconds is the per-evaluation limit a zero cap selects:
// generous enough that any sane policy replays the largest trace, so
// the cap mostly catches pathological configurations.
const DefaultCapSeconds = 2400

// Backend exposes the cluster-scheduler simulator through the backend
// registry.
type Backend struct{}

// Name implements backend.Backend.
func (Backend) Name() string { return "clustersim" }

// Description implements backend.Backend.
func (Backend) Description() string {
	return "Multi-tenant cluster scheduler policy (pod placement traces, 13-parameter space)"
}

// Space implements backend.Backend.
func (Backend) Space() *conf.Space { return Space() }

// DefaultCap implements backend.Backend.
func (Backend) DefaultCap() float64 { return DefaultCapSeconds }

// Workloads implements backend.Backend.
func (Backend) Workloads() []string {
	return append([]string(nil), Families...)
}

// Workload implements backend.Backend via WorkloadByName.
func (Backend) Workload(name string, dataset int) (backend.Workload, error) {
	return WorkloadByName(name, dataset)
}

// NewEvaluator implements backend.Backend. w must be a clustersim
// Workload (the value this backend's Workload method returns).
func (Backend) NewEvaluator(w backend.Workload, seed uint64, capSeconds float64, faults backend.FaultPlan) (backend.Evaluator, error) {
	cw, ok := w.(Workload)
	if !ok {
		return nil, fmt.Errorf("clustersim: workload %T is not a clustersim.Workload", w)
	}
	ev := NewEvaluator(cw, seed, capSeconds)
	ev.Faults = faults
	return ev, nil
}
