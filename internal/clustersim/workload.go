package clustersim

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/backend"
	"repro/internal/sample"
)

// Metric selects the objective a workload is tuned for.
type Metric int

const (
	// Makespan is the time from first arrival to last completion.
	Makespan Metric = iota
	// P95Latency is the 95th percentile of per-job latency (completion
	// minus arrival).
	P95Latency
)

func (m Metric) String() string {
	if m == P95Latency {
		return "p95-latency"
	}
	return "makespan"
}

// Job is one arrival in the trace: Pods identical tasks that must all
// complete for the job to finish.
type Job struct {
	// Arrival is the submission time in seconds from trace start.
	Arrival float64
	// Pods is the task count.
	Pods int
	// CPU and MemGB are the per-pod demands.
	CPU   float64
	MemGB float64
	// Duration is the per-pod nominal run time in seconds at 1.0x
	// speed.
	Duration float64
	// Priority 1 marks production pods (may preempt); 0 is batch.
	Priority int
}

// Workload is a named arrival trace on a fixed cluster shape — the
// clustersim analogue of a SparkBench workload.
type Workload struct {
	Name    string
	Dataset string
	// Nodes, NodeCPU and NodeMemGB describe the homogeneous cluster
	// the trace runs on.
	Nodes     int
	NodeCPU   float64
	NodeMemGB float64
	// Jobs is the deterministic arrival trace, sorted by Arrival.
	Jobs []Job
	// Metric is the tuned objective.
	Metric Metric
}

// WorkloadName implements backend.Workload.
func (w Workload) WorkloadName() string { return w.Name }

// DatasetName implements backend.Workload.
func (w Workload) DatasetName() string { return w.Dataset }

// ID is the workload's catalog identity.
func (w Workload) ID() string { return w.Name + "/" + w.Dataset }

// Describe implements backend.Workload: the trace summary.
func (w Workload) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %d jobs on %d nodes (%g cores, %g GB each), objective %s\n",
		w.ID(), len(w.Jobs), w.Nodes, w.NodeCPU, w.NodeMemGB, w.Metric)
	var pods int
	var cpu, mem, work float64
	hi := 0
	for _, j := range w.Jobs {
		pods += j.Pods
		cpu += float64(j.Pods) * j.CPU
		mem += float64(j.Pods) * j.MemGB
		work += float64(j.Pods) * j.Duration * j.CPU
		if j.Priority > 0 {
			hi++
		}
	}
	span := w.span()
	fmt.Fprintf(&sb, "  %d pods, %d production jobs, arrivals over %.0f s\n", pods, hi, span)
	fmt.Fprintf(&sb, "  aggregate demand: %.0f core-pods, %.0f GB-pods, %.0f core-seconds of work\n", cpu, mem, work)
	fmt.Fprintf(&sb, "  cluster capacity: %.0f cores, %.0f GB\n",
		float64(w.Nodes)*w.NodeCPU, float64(w.Nodes)*w.NodeMemGB)
	return sb.String()
}

func (w Workload) span() float64 {
	if len(w.Jobs) == 0 {
		return 0
	}
	return w.Jobs[len(w.Jobs)-1].Arrival - w.Jobs[0].Arrival
}

// Validate checks the trace for internal consistency.
func (w Workload) Validate() error {
	if w.Nodes < 1 || w.NodeCPU <= 0 || w.NodeMemGB <= 0 {
		return fmt.Errorf("clustersim: %s: invalid cluster shape", w.ID())
	}
	if len(w.Jobs) == 0 {
		return fmt.Errorf("clustersim: %s: empty trace", w.ID())
	}
	for i, j := range w.Jobs {
		if j.Pods < 1 || j.CPU <= 0 || j.MemGB <= 0 || j.Duration <= 0 {
			return fmt.Errorf("clustersim: %s: job %d has non-positive demand", w.ID(), i)
		}
		if i > 0 && j.Arrival < w.Jobs[i-1].Arrival {
			return fmt.Errorf("clustersim: %s: arrivals out of order at %d", w.ID(), i)
		}
	}
	return nil
}

// ApplyFidelity derives the proxy trace f selects from w: StageFrac
// truncates to the first ceil(frac·len) arrivals, and InputScale
// thins the remaining trace to ceil(scale·len) jobs by even stride —
// both pure functions of (w, f), so journaled proxy evaluations
// replay bit-identically.
func ApplyFidelity(f backend.Fidelity, w Workload) Workload {
	if f.Full() {
		return w
	}
	jobs := w.Jobs
	if frac := f.Frac(); frac < 1 {
		keep := int(math.Ceil(frac * float64(len(jobs))))
		if keep < 1 {
			keep = 1
		}
		jobs = jobs[:keep]
	}
	if scale := f.Scale(); scale < 1 {
		keep := int(math.Ceil(scale * float64(len(jobs))))
		if keep < 1 {
			keep = 1
		}
		thinned := make([]Job, keep)
		for i := 0; i < keep; i++ {
			thinned[i] = jobs[i*len(jobs)/keep]
		}
		jobs = thinned
	} else {
		jobs = append([]Job(nil), jobs...)
	}
	w.Jobs = jobs
	return w
}

// traceSpec parameterizes the deterministic trace generator.
type traceSpec struct {
	jobs     int
	rate     float64 // mean inter-arrival seconds
	pods     [2]int  // min, max pods per job
	cpu      [2]float64
	mem      [2]float64
	duration [2]float64
	prodFrac float64 // fraction of production-priority jobs
	metric   Metric
}

// genTrace builds a trace from a spec. The generator seed is a pure
// function of the workload identity, so the trace is part of the
// workload definition — the same (name, dataset) always tunes the
// same jobs.
func genTrace(name, dataset string, spec traceSpec) Workload {
	var h uint64 = 1469598103934665603
	for _, b := range []byte(name + "/" + dataset) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	rng := sample.NewRNG(h)
	jobs := make([]Job, spec.jobs)
	t := 0.0
	for i := range jobs {
		t += spec.rate * (0.25 + 1.5*rng.Float64())
		span := func(b [2]float64) float64 { return b[0] + (b[1]-b[0])*rng.Float64() }
		j := Job{
			Arrival:  t,
			Pods:     spec.pods[0] + rng.IntN(spec.pods[1]-spec.pods[0]+1),
			CPU:      span(spec.cpu),
			MemGB:    span(spec.mem),
			Duration: span(spec.duration),
		}
		if rng.Float64() < spec.prodFrac {
			j.Priority = 1
		}
		jobs[i] = j
	}
	sort.SliceStable(jobs, func(a, b int) bool { return jobs[a].Arrival < jobs[b].Arrival })
	return Workload{
		Name:    name,
		Dataset: dataset,
		Nodes:   8, NodeCPU: 16, NodeMemGB: 64,
		Jobs:   jobs,
		Metric: spec.metric,
	}
}

// Families lists the workload catalog in report order.
var Families = []string{"BatchETL", "CIBuild", "MLTrain", "WebServing"}

// WorkloadByName constructs the named workload at dataset index 0..2
// (D1..D3 scale the job count and arrival pressure).
func WorkloadByName(name string, dataset int) (Workload, error) {
	if dataset < 0 || dataset > 2 {
		return Workload{}, fmt.Errorf("clustersim: dataset index %d out of range 0..2", dataset)
	}
	ds := fmt.Sprintf("D%d", dataset+1)
	scale := []float64{1, 1.5, 2}[dataset]
	switch name {
	case "BatchETL":
		// Few large multi-pod jobs; throughput-shaped.
		return genTrace(name, ds, traceSpec{
			jobs: int(24 * scale), rate: 18 / scale,
			pods: [2]int{4, 10}, cpu: [2]float64{2, 4}, mem: [2]float64{4, 12},
			duration: [2]float64{60, 180}, prodFrac: 0.1, metric: Makespan,
		}), nil
	case "CIBuild":
		// Bursty short jobs; latency-shaped.
		return genTrace(name, ds, traceSpec{
			jobs: int(60 * scale), rate: 6 / scale,
			pods: [2]int{1, 4}, cpu: [2]float64{1, 4}, mem: [2]float64{1, 6},
			duration: [2]float64{20, 90}, prodFrac: 0.25, metric: P95Latency,
		}), nil
	case "MLTrain":
		// Long-running wide jobs that dominate nodes.
		return genTrace(name, ds, traceSpec{
			jobs: int(10 * scale), rate: 40 / scale,
			pods: [2]int{6, 12}, cpu: [2]float64{3, 6}, mem: [2]float64{10, 24},
			duration: [2]float64{120, 300}, prodFrac: 0.15, metric: Makespan,
		}), nil
	case "WebServing":
		// Many tiny pods with strict latency expectations.
		return genTrace(name, ds, traceSpec{
			jobs: int(80 * scale), rate: 4 / scale,
			pods: [2]int{1, 3}, cpu: [2]float64{0.5, 2}, mem: [2]float64{0.5, 4},
			duration: [2]float64{10, 45}, prodFrac: 0.5, metric: P95Latency,
		}), nil
	}
	return Workload{}, fmt.Errorf("clustersim: unknown workload %q (have %s)", name, strings.Join(Families, ", "))
}
