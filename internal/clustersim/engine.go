package clustersim

import (
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/backend"
	"repro/internal/conf"
)

// policy is the decoded scheduler configuration.
type policy struct {
	cpuW, memW    float64
	scoring       string
	binpack       float64
	preempt       bool
	grace         float64
	maxPreempt    int64
	backoff       float64
	backoffFactor float64
	queue         string
	ocCPU, ocMem  float64
	tick          float64
}

func decodePolicy(c conf.Config) policy {
	return policy{
		cpuW:          c.Float(CPUScoreWeight),
		memW:          c.Float(MemScoreWeight),
		scoring:       c.Choice(ScoringPolicy),
		binpack:       c.Float(BinpackThreshold),
		preempt:       c.Bool(PreemptionEnabled),
		grace:         c.Float(PreemptionGrace),
		maxPreempt:    c.Int(MaxPreemptions),
		backoff:       c.Float(EvictionBackoff),
		backoffFactor: c.Float(BackoffFactor),
		queue:         c.Choice(QueuePolicy),
		ocCPU:         c.Float(OvercommitCPU),
		ocMem:         c.Float(OvercommitMem),
		tick:          c.Float(SchedInterval),
	}
}

// faultSchedule is the per-run realization of a backend.FaultPlan in
// cluster terms: a node crash, per-node stragglers, one spurious pod
// OOM kill and a transient whole-run abort.
type faultSchedule struct {
	active      bool
	transientAt float64 // fraction of cap; < 0 = none
	failNode    int     // node index; -1 = none
	failAt      float64 // fraction of trace span
	oomJob      int     // job index; -1 = none
	straggle    []float64
}

// scheduleFaults draws one run's faults. Every class is drawn
// unconditionally and in a fixed order, so the randomness consumed
// per run is constant and the schedule is a pure function of the
// stream — the property that keeps batch and sequential evaluation
// bit-equal.
func scheduleFaults(p backend.FaultPlan, frng *rand.Rand, nodes, jobs int) faultSchedule {
	fs := faultSchedule{active: true, transientAt: -1, failNode: -1, oomJob: -1}
	if nodes < 1 {
		nodes = 1
	}
	if jobs < 1 {
		jobs = 1
	}
	tp, tt := frng.Float64(), frng.Float64()
	np, ni, nt := frng.Float64(), frng.IntN(nodes), frng.Float64()
	op, oi := frng.Float64(), frng.IntN(jobs)
	if tp < p.TransientErrProb {
		fs.transientAt = 0.1 + 0.8*tt
	}
	if np < p.ExecutorLossProb {
		fs.failNode, fs.failAt = ni, nt
	}
	if op < p.SpuriousOOMProb {
		fs.oomJob = oi
	}
	fs.straggle = make([]float64, nodes)
	for i := range fs.straggle {
		fs.straggle[i] = 1
		if frng.Float64() < p.StragglerProb {
			fs.straggle[i] = p.EffectiveStragglerFactor()
		}
	}
	return fs
}

type node struct {
	cpu, mem float64 // allocated
	dead     bool
	straggle float64
}

type pod struct {
	job, idx  int
	ready     float64 // earliest placement time
	evictions int
}

type running struct {
	job, idx  int
	node      int
	end       float64
	cpu, mem  float64
	priority  int
	placedAt  float64
	evictions int
	oomAt     float64 // spurious-OOM kill time; 0 = none
}

// noiseJitter pre-draws the per-pod duration jitter in a fixed order;
// the randomness a run consumes depends only on the trace, never on
// the configuration, so every configuration at one evaluation index
// sees identical noise.
func noiseJitter(w Workload, rng *rand.Rand) [][]float64 {
	jit := make([][]float64, len(w.Jobs))
	for i, j := range w.Jobs {
		jit[i] = make([]float64, j.Pods)
		for k := range jit[i] {
			jit[i][k] = 1 + 0.05*(2*rng.Float64()-1)
		}
	}
	return jit
}

// Run simulates the trace under the configuration without faults.
func Run(w Workload, c conf.Config, rng *rand.Rand, cap float64) backend.Outcome {
	return simulate(w, c, rng, cap, faultSchedule{})
}

// RunWithFaults simulates the trace with the plan's faults realized
// from frng.
func RunWithFaults(w Workload, c conf.Config, rng *rand.Rand, cap float64, plan backend.FaultPlan, frng *rand.Rand) backend.Outcome {
	return simulate(w, c, rng, cap, scheduleFaults(plan, frng, w.Nodes, len(w.Jobs)))
}

func simulate(w Workload, c conf.Config, rng *rand.Rand, cap float64, fs faultSchedule) backend.Outcome {
	p := decodePolicy(c)
	jit := noiseJitter(w, rng) // drawn before any early return: constant stream use
	if math.IsInf(cap, 1) || cap <= 0 {
		cap = 1e9
	}

	// A pod that cannot fit on an empty node under the configured
	// overcommit can never run.
	for _, j := range w.Jobs {
		if j.CPU > w.NodeCPU*p.ocCPU || j.MemGB > w.NodeMemGB*p.ocMem {
			return backend.Outcome{Seconds: cap, Infeasible: true}
		}
	}

	// Scheduler overhead: an aggressive loop period taxes every pod.
	overhead := 1 + 0.005/p.tick

	nodes := make([]node, w.Nodes)
	for i := range nodes {
		nodes[i].straggle = 1
		if fs.active && i < len(fs.straggle) {
			nodes[i].straggle = fs.straggle[i]
		}
	}
	span := w.Jobs[len(w.Jobs)-1].Arrival + 60
	failAt := math.Inf(1)
	if fs.active && fs.failNode >= 0 {
		failAt = fs.failAt * span
	}
	transientAt := math.Inf(1)
	if fs.active && fs.transientAt >= 0 {
		transientAt = fs.transientAt * cap
	}

	var pending, requeued []pod
	var run []running
	remaining := make([]int, len(w.Jobs))
	doneAt := make([]float64, len(w.Jobs))
	oomStrikes := make([]int, len(w.Jobs))
	for i, j := range w.Jobs {
		remaining[i] = j.Pods
	}
	nextArrival, jobsDone := 0, 0

	duration := func(ji, pi, ni int) float64 {
		d := w.Jobs[ji].Duration * jit[ji][pi] * nodes[ni].straggle * overhead
		// CPU oversubscription past physical capacity slows the pod.
		if r := (nodes[ni].cpu + w.Jobs[ji].CPU) / w.NodeCPU; r > 1 {
			d *= r
		}
		return d
	}

	// requeue frees an evicted pod's resources and schedules its retry
	// after an exponentially growing backoff. Evicted pods collect in
	// requeued — never directly in pending — so an eviction during the
	// placement pass cannot be lost when the pass rebuilds pending.
	requeue := func(r running, t float64) {
		nodes[r.node].cpu -= w.Jobs[r.job].CPU
		nodes[r.node].mem -= w.Jobs[r.job].MemGB
		back := p.backoff * math.Pow(p.backoffFactor, float64(r.evictions))
		requeued = append(requeued, pod{job: r.job, idx: r.idx, ready: t + back, evictions: r.evictions + 1})
	}

	for t := 0.0; ; t += p.tick {
		if t > cap {
			return backend.Outcome{Seconds: cap}
		}
		if t >= transientAt {
			return backend.Outcome{Seconds: t, Transient: true}
		}
		// Node failure: evict its pods, remove its capacity.
		if fs.active && fs.failNode >= 0 && !nodes[fs.failNode].dead && t >= failAt {
			nodes[fs.failNode].dead = true
			kept := run[:0]
			for _, r := range run {
				if r.node == fs.failNode {
					requeue(r, t)
					continue
				}
				kept = append(kept, r)
			}
			run = kept
		}
		// Completions and spurious OOM kills due by now.
		kept := run[:0]
		for _, r := range run {
			switch {
			case r.oomAt > 0 && r.oomAt <= t:
				requeue(r, r.oomAt)
			case r.end <= t:
				nodes[r.node].cpu -= w.Jobs[r.job].CPU
				nodes[r.node].mem -= w.Jobs[r.job].MemGB
				remaining[r.job]--
				if r.end > doneAt[r.job] {
					doneAt[r.job] = r.end
				}
				if remaining[r.job] == 0 {
					jobsDone++
				}
			default:
				kept = append(kept, r)
			}
		}
		run = kept
		// Arrivals due by now.
		for nextArrival < len(w.Jobs) && w.Jobs[nextArrival].Arrival <= t {
			for k := 0; k < w.Jobs[nextArrival].Pods; k++ {
				pending = append(pending, pod{job: nextArrival, idx: k, ready: w.Jobs[nextArrival].Arrival})
			}
			nextArrival++
		}
		if jobsDone == len(w.Jobs) && nextArrival == len(w.Jobs) {
			break
		}
		// Placement pass over the ready queue in policy order.
		pending = append(pending, requeued...)
		requeued = requeued[:0]
		sortQueue(pending, w, p.queue)
		var still []pod
		for _, pd := range pending {
			if pd.ready > t {
				still = append(still, pd)
				continue
			}
			j := w.Jobs[pd.job]
			ni := pickNode(nodes, w, p, j)
			if ni < 0 && p.preempt && j.Priority > 0 {
				ni = preemptFor(nodes, &run, w, p, j, t, requeue)
			}
			if ni < 0 {
				still = append(still, pd)
				continue
			}
			d := duration(pd.job, pd.idx, ni)
			if j.Priority > 0 && p.preempt {
				// The grace period granted to any evicted pod delays the
				// preemptor's start; charge it unconditionally so the
				// knob has a cost even when no eviction happened.
				d += p.grace * 0.1
			}
			nodes[ni].cpu += j.CPU
			nodes[ni].mem += j.MemGB
			r := running{job: pd.job, idx: pd.idx, node: ni, end: t + d,
				cpu: j.CPU, mem: j.MemGB, priority: j.Priority, placedAt: t,
				evictions: pd.evictions}
			// Memory pressure past physical capacity OOM-kills the
			// newcomer; three strikes fail the run.
			if nodes[ni].mem > w.NodeMemGB*1.2 {
				oomStrikes[pd.job]++
				if oomStrikes[pd.job] >= 3 {
					return backend.Outcome{Seconds: cap, OOM: true}
				}
				requeue(r, t)
				continue
			}
			if fs.active && fs.oomJob == pd.job && pd.idx == 0 && pd.evictions == 0 {
				r.oomAt = t + d/2
			}
			run = append(run, r)
		}
		pending = append(still, requeued...)
		requeued = requeued[:0]
	}

	// Metric over the completed trace.
	first := w.Jobs[0].Arrival
	switch w.Metric {
	case P95Latency:
		lat := make([]float64, len(w.Jobs))
		for i := range w.Jobs {
			lat[i] = doneAt[i] - w.Jobs[i].Arrival
		}
		sort.Float64s(lat)
		idx := int(math.Ceil(0.95*float64(len(lat)))) - 1
		if idx < 0 {
			idx = 0
		}
		return backend.Outcome{Seconds: lat[idx], Completed: true}
	default:
		var last float64
		for i := range doneAt {
			if doneAt[i] > last {
				last = doneAt[i]
			}
		}
		return backend.Outcome{Seconds: last - first, Completed: true}
	}
}

// sortQueue orders the pending queue by the configured discipline;
// every discipline tie-breaks by (job, pod) index, so the order is a
// pure function of the queue contents.
func sortQueue(pending []pod, w Workload, queue string) {
	less := func(a, b pod) bool { return a.job < b.job || (a.job == b.job && a.idx < b.idx) }
	switch queue {
	case "sjf":
		sort.SliceStable(pending, func(i, j int) bool {
			di, dj := w.Jobs[pending[i].job].Duration, w.Jobs[pending[j].job].Duration
			if di != dj {
				return di < dj
			}
			return less(pending[i], pending[j])
		})
	case "priority":
		sort.SliceStable(pending, func(i, j int) bool {
			pi, pj := w.Jobs[pending[i].job].Priority, w.Jobs[pending[j].job].Priority
			if pi != pj {
				return pi > pj
			}
			return less(pending[i], pending[j])
		})
	default: // fifo
		sort.SliceStable(pending, func(i, j int) bool { return less(pending[i], pending[j]) })
	}
}

// pickNode scores the eligible nodes under the configured policy and
// returns the winner, or -1 when nothing fits. Ties break by node
// index.
func pickNode(nodes []node, w Workload, p policy, j Job) int {
	best, bestScore := -1, math.Inf(-1)
	for i := range nodes {
		n := &nodes[i]
		if n.dead || n.cpu+j.CPU > w.NodeCPU*p.ocCPU || n.mem+j.MemGB > w.NodeMemGB*p.ocMem {
			continue
		}
		cpuFree := 1 - (n.cpu+j.CPU)/(w.NodeCPU*p.ocCPU)
		memFree := 1 - (n.mem+j.MemGB)/(w.NodeMemGB*p.ocMem)
		var score float64
		switch p.scoring {
		case "binpack":
			// Prefer the fullest node still below the packing
			// threshold; nodes past it repel further pods.
			util := 1 - math.Min(cpuFree, memFree)
			score = -(p.cpuW*cpuFree + p.memW*memFree)
			if util > p.binpack {
				score -= 10
			}
		case "balanced":
			score = -math.Abs(cpuFree - memFree)
		default: // spread
			score = p.cpuW*cpuFree + p.memW*memFree
		}
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// preemptFor tries to make room for a production pod by evicting the
// most recently placed batch pods from one node, within the
// per-attempt eviction budget. Returns the freed node or -1.
func preemptFor(nodes []node, run *[]running, w Workload, p policy, j Job, t float64, requeue func(running, float64)) int {
	for ni := range nodes {
		n := &nodes[ni]
		if n.dead {
			continue
		}
		// Newest-first batch victims on this node.
		var victims []int
		for ri, r := range *run {
			if r.node == ni && r.priority == 0 {
				victims = append(victims, ri)
			}
		}
		sort.SliceStable(victims, func(a, b int) bool {
			return (*run)[victims[a]].placedAt > (*run)[victims[b]].placedAt
		})
		cpu, mem := n.cpu, n.mem
		var take []int
		for _, ri := range victims {
			if int64(len(take)) >= p.maxPreempt {
				break
			}
			if cpu+j.CPU <= w.NodeCPU*p.ocCPU && mem+j.MemGB <= w.NodeMemGB*p.ocMem {
				break
			}
			cpu -= (*run)[ri].cpu
			mem -= (*run)[ri].mem
			take = append(take, ri)
		}
		if cpu+j.CPU > w.NodeCPU*p.ocCPU || mem+j.MemGB > w.NodeMemGB*p.ocMem {
			continue
		}
		if len(take) == 0 {
			continue
		}
		// Evict, newest first; removal indices descend so they stay
		// valid.
		sort.Sort(sort.Reverse(sort.IntSlice(take)))
		for _, ri := range take {
			r := (*run)[ri]
			*run = append((*run)[:ri], (*run)[ri+1:]...)
			requeue(r, t)
		}
		return ni
	}
	return -1
}
