package clustersim

import (
	"math"

	"repro/internal/backend"
	"repro/internal/conf"
	"repro/internal/sample"
)

// Evaluator exposes the cluster-scheduler simulator as the expensive
// black-box objective the tuner stack drives, with the same
// search-cost accounting, guard-cap semantics and deterministic
// (seed, index) stream discipline as every other backend: the
// embedded backend.Harness owns index reservation, cost/history
// commit ordering and batch dispatch; clustersim supplies the per-run
// simulation.
//
// Evaluator is safe for concurrent use. Faults may be set before the
// evaluator is shared; mutating it concurrently with evaluations is
// not supported.
type Evaluator struct {
	backend.Harness
	Workload Workload
}

// NewEvaluator builds an evaluator for a workload trace. seed makes
// the noise sequence reproducible; cap <= 0 selects the backend's
// default limit.
func NewEvaluator(w Workload, seed uint64, cap float64) *Evaluator {
	if cap <= 0 {
		cap = DefaultCapSeconds
	}
	ev := &Evaluator{Workload: w}
	ev.Init(seed, cap, ev.runAt)
	return ev
}

// WorkloadName returns the trace family being tuned (used as the
// memoization key by ROBOTune).
func (ev *Evaluator) WorkloadName() string { return ev.Workload.Name }

// DatasetName returns the trace scale identity.
func (ev *Evaluator) DatasetName() string { return ev.Workload.Dataset }

// runAt executes one simulated trace replay at the given evaluation
// index, injecting the plan's faults when enabled. The noise and
// fault streams are seeded by the index alone, so a proxy run at
// index i consumes exactly the stream a full-fidelity run at i would
// have — fidelity never shifts the randomness of later evaluations.
func (ev *Evaluator) runAt(c conf.Config, seed uint64, idx int, plan backend.FaultPlan, cap float64, fid backend.Fidelity) backend.Outcome {
	w := ApplyFidelity(fid, ev.Workload)
	rng := sample.NewRNG(seed*1e9 + uint64(idx))
	if !plan.Enabled() {
		return Run(w, c, rng, cap)
	}
	frng := sample.NewRNG(plan.Seed ^ (seed*1e9 + uint64(idx)) ^ 0xfa1175ee)
	return RunWithFaults(w, c, rng, cap, plan, frng)
}

// Measure estimates a configuration's true performance by averaging
// reps fresh fault-free runs without charging search cost — used when
// reporting the quality of each tuner's final choice.
func (ev *Evaluator) Measure(c conf.Config, reps int, seed uint64) float64 {
	if reps < 1 {
		reps = 1
	}
	var sum float64
	for i := 0; i < reps; i++ {
		rng := sample.NewRNG(seed*31 + uint64(i) + 7)
		out := Run(ev.Workload, c, rng, ev.CapSeconds)
		s := math.Min(out.Seconds, ev.CapSeconds)
		if !out.Completed {
			s = ev.CapSeconds
		}
		sum += s
	}
	return sum / float64(reps)
}
