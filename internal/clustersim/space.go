// Package clustersim is the second tuning backend: a deterministic
// discrete-event simulator of a multi-tenant cluster scheduler. Jobs
// made of pods arrive on a fixed trace and are placed onto nodes by a
// configurable scheduling policy; the tunables are the policy's knobs
// — node-scoring weights, bin-packing threshold, preemption policy,
// eviction backoff, queue discipline and resource overcommit — and
// the objective is the makespan or the p95 job latency of the trace.
//
// The package exists to prove the backend seam: it shares nothing
// with internal/sparksim except the contracts in internal/backend
// (Harness, EvalSpec, Fidelity, FaultPlan), and everything above the
// seam — tuners, sessions, journals, the server, the CLI — drives it
// unchanged.
package clustersim

import "repro/internal/conf"

// Parameter names of the cluster-scheduler configuration space.
const (
	CPUScoreWeight    = "sched.score.cpuWeight"
	MemScoreWeight    = "sched.score.memWeight"
	ScoringPolicy     = "sched.score.policy"
	BinpackThreshold  = "sched.binpack.threshold"
	PreemptionEnabled = "sched.preemption.enabled"
	PreemptionGrace   = "sched.preemption.gracePeriod"
	MaxPreemptions    = "sched.preemption.maxPerJob"
	EvictionBackoff   = "sched.eviction.backoff"
	BackoffFactor     = "sched.eviction.backoffFactor"
	QueuePolicy       = "sched.queue.policy"
	OvercommitCPU     = "sched.overcommit.cpu"
	OvercommitMem     = "sched.overcommit.memory"
	SchedInterval     = "sched.loop.interval"
)

// Space returns the 13-parameter cluster-scheduler configuration
// space. Collinearity groups mirror the knobs that only act jointly:
// the two scoring weights, the preemption trio, the backoff pair and
// the overcommit pair.
func Space() *conf.Space {
	return conf.MustNewSpace(Params())
}

// Params returns the raw definitions behind Space, exposed so tests
// and tools can inspect them.
func Params() []conf.Param {
	return []conf.Param{
		{Name: CPUScoreWeight, Kind: conf.Float, Min: 0, Max: 1, Default: 0.5, Group: "score.weights",
			Desc: "Weight of CPU headroom in node scoring"},
		{Name: MemScoreWeight, Kind: conf.Float, Min: 0, Max: 1, Default: 0.5, Group: "score.weights",
			Desc: "Weight of memory headroom in node scoring"},
		{Name: ScoringPolicy, Kind: conf.Categorical, Choices: []string{"spread", "binpack", "balanced"}, Default: 0,
			Desc: "Node preference: emptiest (spread), fullest (binpack) or imbalance-minimizing"},
		{Name: BinpackThreshold, Kind: conf.Float, Min: 0.5, Max: 0.99, Default: 0.8,
			Desc: "Utilization past which a binpacked node stops attracting pods"},
		{Name: PreemptionEnabled, Kind: conf.Bool, Default: 0, Group: "preemption",
			Desc: "Allow high-priority pods to evict low-priority ones"},
		{Name: PreemptionGrace, Kind: conf.Float, Min: 0, Max: 60, Default: 30, Unit: "s", Group: "preemption",
			Desc: "Grace period an evicted pod occupies its slot before the preemptor starts"},
		{Name: MaxPreemptions, Kind: conf.Int, Min: 0, Max: 8, Default: 2, Group: "preemption",
			Desc: "Eviction budget per pending high-priority job"},
		{Name: EvictionBackoff, Kind: conf.Float, Min: 1, Max: 60, Log: true, Default: 10, Unit: "s", Group: "backoff",
			Desc: "Requeue delay after an eviction or failed placement"},
		{Name: BackoffFactor, Kind: conf.Float, Min: 1, Max: 4, Default: 2, Group: "backoff",
			Desc: "Backoff multiplier per repeated eviction of the same pod"},
		{Name: QueuePolicy, Kind: conf.Categorical, Choices: []string{"fifo", "sjf", "priority"}, Default: 0,
			Desc: "Pending-queue order: arrival, shortest-job-first or priority class"},
		{Name: OvercommitCPU, Kind: conf.Float, Min: 1, Max: 2, Default: 1,
			Desc: "CPU oversubscription ratio (pods slow down proportionally past 1.0)"},
		{Name: OvercommitMem, Kind: conf.Float, Min: 1, Max: 1.5, Default: 1,
			Desc: "Memory oversubscription ratio (OOM risk past physical capacity)"},
		{Name: SchedInterval, Kind: conf.Float, Min: 0.1, Max: 10, Log: true, Default: 1, Unit: "s",
			Desc: "Scheduling-loop period: placement latency vs scheduler overhead"},
	}
}
