package clustersim

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/backend"
	"repro/internal/conf"
	"repro/internal/sample"
)

func mustWorkload(t *testing.T, name string, di int) Workload {
	t.Helper()
	w, err := WorkloadByName(name, di)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestCatalog checks that every catalog entry validates and completes
// under the default configuration at the default cap.
func TestCatalog(t *testing.T) {
	def := Space().Default()
	for _, name := range Families {
		for di := 0; di < 3; di++ {
			w := mustWorkload(t, name, di)
			if err := w.Validate(); err != nil {
				t.Fatal(err)
			}
			out := Run(w, def, sample.NewRNG(1), DefaultCapSeconds)
			if !out.Completed {
				t.Errorf("%s: default config did not complete (%.1fs)", w.ID(), out.Seconds)
			}
			if out.Seconds <= 0 {
				t.Errorf("%s: non-positive objective %.1f", w.ID(), out.Seconds)
			}
		}
	}
	if _, err := WorkloadByName("NoSuch", 0); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := WorkloadByName("BatchETL", 3); err == nil {
		t.Fatal("out-of-range dataset accepted")
	}
}

// TestDeterminism: the same seed yields bit-identical evaluations, and
// evaluation order does not perturb later indices.
func TestDeterminism(t *testing.T) {
	w := mustWorkload(t, "CIBuild", 0)
	rng := sample.NewRNG(3)
	sp := Space()
	a := NewEvaluator(w, 99, 0)
	b := NewEvaluator(w, 99, 0)
	for i := 0; i < 6; i++ {
		c := sp.Decode(sample.Uniform(1, sp.Dim(), rng)[0])
		ra := a.EvaluateSpec(c, backend.EvalSpec{})
		rb := b.EvaluateSpec(c, backend.EvalSpec{})
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("eval %d diverged: %+v vs %+v", i, ra, rb)
		}
	}
	if a.SearchCost() != b.SearchCost() {
		t.Fatalf("cost diverged: %v vs %v", a.SearchCost(), b.SearchCost())
	}
}

// TestConfigMatters: the objective responds to the configuration —
// distinct policies produce distinct outcomes on the same trace.
func TestConfigMatters(t *testing.T) {
	w := mustWorkload(t, "BatchETL", 1)
	sp := Space()
	rng := sample.NewRNG(17)
	seen := map[float64]bool{}
	for i := 0; i < 8; i++ {
		c := sp.Decode(sample.Uniform(1, sp.Dim(), rng)[0])
		out := Run(w, c, sample.NewRNG(5), DefaultCapSeconds)
		seen[out.Seconds] = true
	}
	if len(seen) < 3 {
		t.Fatalf("objective insensitive to configuration: %d distinct values in 8 samples", len(seen))
	}
}

// TestBatchMatchesSequential: batch dispatch commits the same history
// and cost as one-at-a-time evaluation.
func TestBatchMatchesSequential(t *testing.T) {
	w := mustWorkload(t, "WebServing", 0)
	sp := Space()
	rng := sample.NewRNG(7)
	seq := NewEvaluator(w, 4, 0)
	bat := NewEvaluator(w, 4, 0)
	var batchCfgs []conf.Config
	for i := 0; i < 5; i++ {
		batchCfgs = append(batchCfgs, sp.Decode(sample.Uniform(1, sp.Dim(), rng)[0]))
	}
	var seqRecs []backend.EvalRecord
	for _, c := range batchCfgs {
		seqRecs = append(seqRecs, seq.EvaluateSpec(c, backend.EvalSpec{}))
	}
	batRecs := bat.EvaluateSpecCtx(context.Background(), batchCfgs, backend.EvalSpec{Workers: 3})
	for i := range seqRecs {
		if !reflect.DeepEqual(seqRecs[i], batRecs[i]) {
			t.Fatalf("record %d: sequential %+v != batch %+v", i, seqRecs[i], batRecs[i])
		}
	}
	if seq.SearchCost() != bat.SearchCost() {
		t.Fatalf("cost: sequential %v != batch %v", seq.SearchCost(), bat.SearchCost())
	}
}

// TestFidelityProxy: a reduced-fidelity evaluation is cheaper than the
// full trace and does not disturb the stream of later evaluations.
func TestFidelityProxy(t *testing.T) {
	w := mustWorkload(t, "CIBuild", 2)
	sp := Space()
	def := sp.Default()

	small := ApplyFidelity(backend.Fidelity{InputScale: 0.25, StageFrac: 0.5}, w)
	if len(small.Jobs) >= len(w.Jobs) {
		t.Fatalf("fidelity did not shrink trace: %d vs %d", len(small.Jobs), len(w.Jobs))
	}
	if len(ApplyFidelity(backend.Fidelity{}, w).Jobs) != len(w.Jobs) {
		t.Fatal("full fidelity altered trace")
	}

	a := NewEvaluator(w, 11, 0)
	b := NewEvaluator(w, 11, 0)
	ra := a.EvaluateSpec(def, backend.EvalSpec{Fidelity: backend.Fidelity{InputScale: 0.25}})
	rb := b.EvaluateSpec(def, backend.EvalSpec{Fidelity: backend.Fidelity{InputScale: 0.25}})
	if !reflect.DeepEqual(ra, rb) {
		t.Fatalf("proxy eval nondeterministic: %+v vs %+v", ra, rb)
	}
	full := a.EvaluateSpec(def, backend.EvalSpec{})
	if !a.SupportsFidelity() {
		t.Fatal("evaluator must advertise fidelity support")
	}
	if ra.Seconds >= full.Seconds {
		t.Fatalf("quarter-scale proxy (%.1fs) not cheaper than full trace (%.1fs)", ra.Seconds, full.Seconds)
	}
	// A proxy at index 0 must leave index 1 exactly as a full run
	// would: streams are per-index, not shared.
	c := NewEvaluator(w, 11, 0)
	cFull0 := c.EvaluateSpec(def, backend.EvalSpec{})
	_ = cFull0
	cNext := c.EvaluateSpec(def, backend.EvalSpec{})
	bNext := b.EvaluateSpec(def, backend.EvalSpec{})
	if !reflect.DeepEqual(cNext, bNext) {
		t.Fatalf("fidelity at index 0 shifted index 1: %+v vs %+v", cNext, bNext)
	}
}

// TestFaultsDeterministic: fault injection stays reproducible and
// degrades (never improves) the measured objective distribution.
func TestFaultsDeterministic(t *testing.T) {
	w := mustWorkload(t, "BatchETL", 0)
	def := Space().Default()
	plan := backend.DefaultFaultPlan()
	plan.Seed = 123
	plan.StragglerProb = 0.5
	plan.ExecutorLossProb = 0.3

	a := NewEvaluator(w, 9, 0)
	a.Faults = plan
	b := NewEvaluator(w, 9, 0)
	b.Faults = plan
	for i := 0; i < 4; i++ {
		ra := a.EvaluateSpec(def, backend.EvalSpec{})
		rb := b.EvaluateSpec(def, backend.EvalSpec{})
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("faulty eval %d diverged: %+v vs %+v", i, ra, rb)
		}
	}

	clean := NewEvaluator(w, 9, 0)
	var faultSum, cleanSum float64
	for i := 0; i < 4; i++ {
		faultSum += a.History()[i].Raw
		cleanSum += clean.EvaluateSpec(def, backend.EvalSpec{}).Raw
	}
	if faultSum < cleanSum {
		t.Fatalf("faults improved the objective: %.1f < %.1f", faultSum, cleanSum)
	}
}

// TestMeasure: quality measurement is fault-free, repeatable and does
// not charge search cost.
func TestMeasure(t *testing.T) {
	w := mustWorkload(t, "WebServing", 1)
	def := Space().Default()
	ev := NewEvaluator(w, 5, 0)
	ev.Faults = backend.DefaultFaultPlan()
	q1 := ev.Measure(def, 3, 99)
	q2 := ev.Measure(def, 3, 99)
	if q1 != q2 {
		t.Fatalf("Measure not repeatable: %v vs %v", q1, q2)
	}
	if ev.SearchCost() != 0 {
		t.Fatalf("Measure charged search cost %v", ev.SearchCost())
	}
	if q1 <= 0 || math.IsInf(q1, 0) {
		t.Fatalf("implausible quality %v", q1)
	}
}

// TestInfeasible: a pod that cannot fit on an empty node fails fast.
func TestInfeasible(t *testing.T) {
	w := mustWorkload(t, "MLTrain", 0)
	w.Jobs = append([]Job(nil), w.Jobs...)
	w.Jobs[0].MemGB = w.NodeMemGB * 2
	out := Run(w, Space().Default(), sample.NewRNG(1), DefaultCapSeconds)
	if !out.Infeasible {
		t.Fatalf("oversized pod not flagged infeasible: %+v", out)
	}
}
