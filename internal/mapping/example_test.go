package mapping_test

import (
	"fmt"

	"repro/internal/conf"
	"repro/internal/mapping"
	"repro/internal/sparksim"
)

// Signatures characterize how a workload responds to configuration;
// similar workloads can share tuning knowledge.
func ExampleMapper() {
	space := conf.SparkSpace()
	m := mapping.NewMapper(space, 6, 1)

	characterize := func(w sparksim.Workload, seed uint64) mapping.Signature {
		ev := sparksim.NewEvaluator(sparksim.PaperCluster(), w, seed, 480)
		return m.Characterize(func(c conf.Config) float64 {
			return ev.EvaluateSpec(c, sparksim.EvalSpec{}).Seconds
		})
	}
	if err := m.Register("PageRank", characterize(sparksim.PageRank(5), 2)); err != nil {
		panic(err)
	}

	// A new dataset of the same family maps straight back. (With only
	// six probes and cap-truncated runs the correlation is rough but
	// positive; production settings use more probes.)
	probe := characterize(sparksim.PageRank(10), 3)
	match, ok := m.BestMatch(probe)
	fmt.Println(ok, match.Workload, match.Similarity > 0.3)
	// Output:
	// true PageRank true
}
