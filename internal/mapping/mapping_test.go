package mapping

import (
	"math"
	"os"
	"testing"

	"repro/internal/conf"
	"repro/internal/sparksim"
)

func evaluatorFor(w sparksim.Workload, seed uint64) Evaluator {
	ev := sparksim.NewEvaluator(sparksim.PaperCluster(), w, seed, 480)
	return func(c conf.Config) float64 { return ev.EvaluateSpec(c, sparksim.EvalSpec{}).Seconds }
}

func TestPearson(t *testing.T) {
	if r, ok := pearson([]float64{1, 2, 3}, []float64{2, 4, 6}); !ok || math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect correlation: %v %v", r, ok)
	}
	if r, ok := pearson([]float64{1, 2, 3}, []float64{3, 2, 1}); !ok || math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect anticorrelation: %v %v", r, ok)
	}
	if _, ok := pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); ok {
		t.Error("constant vector should be uncomputable")
	}
	if _, ok := pearson([]float64{1}, []float64{1}); ok {
		t.Error("single point should be uncomputable")
	}
	if _, ok := pearson([]float64{1, 2}, []float64{1, 2, 3}); ok {
		t.Error("length mismatch should be uncomputable")
	}
}

func TestProbesDeterministicAndShared(t *testing.T) {
	space := conf.SparkSpace()
	a := NewMapper(space, 8, 1)
	b := NewMapper(space, 8, 1)
	pa, pb := a.ProbeConfigs(), b.ProbeConfigs()
	if len(pa) != 8 || a.ProbeCount() != 8 {
		t.Fatalf("probe count %d", len(pa))
	}
	for i := range pa {
		if !pa[i].Equal(pb[i]) {
			t.Fatal("probe sets differ across mappers with the same seed")
		}
	}
}

func TestSameFamilyDifferentDatasetCorrelatesHighly(t *testing.T) {
	space := conf.SparkSpace()
	m := NewMapper(space, 10, 2)
	sigD1 := m.Characterize(evaluatorFor(sparksim.PageRank(5), 3))
	sigD3 := m.Characterize(evaluatorFor(sparksim.PageRank(10), 4))
	// Probe runs that hit the 480 s evaluation cap flatten the larger
	// dataset's signature, so cross-dataset correlation is high but
	// not perfect.
	r, ok := pearson(sigD1.LogTimes, sigD3.LogTimes)
	if !ok || r < 0.7 {
		t.Errorf("PR-D1 vs PR-D3 correlation = %v (ok=%v), want > 0.7", r, ok)
	}
}

func TestGraphWorkloadsCorrelateMoreThanUnrelatedOnes(t *testing.T) {
	space := conf.SparkSpace()
	m := NewMapper(space, 10, 2)
	pr := m.Characterize(evaluatorFor(sparksim.PageRank(10), 5))
	cc := m.Characterize(evaluatorFor(sparksim.ConnectedComponents(10), 6))
	km := m.Characterize(evaluatorFor(sparksim.KMeans(200), 7))
	rGraph, _ := pearson(pr.LogTimes, cc.LogTimes)
	rCross, _ := pearson(pr.LogTimes, km.LogTimes)
	if rGraph <= rCross {
		t.Errorf("PR~CC correlation (%v) should exceed PR~KM (%v)", rGraph, rCross)
	}
}

func TestRegisterAndBestMatch(t *testing.T) {
	space := conf.SparkSpace()
	m := NewMapper(space, 10, 2)
	pr := m.Characterize(evaluatorFor(sparksim.PageRank(5), 8))
	km := m.Characterize(evaluatorFor(sparksim.KMeans(200), 9))
	if err := m.Register("PageRank", pr); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("KMeans", km); err != nil {
		t.Fatal(err)
	}
	if got := m.Known(); len(got) != 2 || got[0] != "KMeans" {
		t.Fatalf("Known = %v", got)
	}

	// A new PageRank dataset should map back to PageRank.
	probe := m.Characterize(evaluatorFor(sparksim.PageRank(7.5), 10))
	match, ok := m.BestMatch(probe)
	if !ok || match.Workload != "PageRank" {
		t.Fatalf("BestMatch = %+v ok=%v", match, ok)
	}
	if match.Similarity < 0.8 {
		t.Errorf("similarity %v too low", match.Similarity)
	}
	ms := m.Matches(probe)
	if len(ms) != 2 || ms[0].Similarity < ms[1].Similarity {
		t.Errorf("Matches not ranked: %+v", ms)
	}
}

func TestRegisterValidation(t *testing.T) {
	m := NewMapper(conf.SparkSpace(), 8, 1)
	if err := m.Register("x", Signature{}); err == nil {
		t.Error("empty signature accepted")
	}
	if err := m.Register("x", Signature{LogTimes: []float64{1, 2}}); err == nil {
		t.Error("wrong-length signature accepted")
	}
}

func TestBestMatchEmptyMapper(t *testing.T) {
	m := NewMapper(conf.SparkSpace(), 8, 1)
	sig := Signature{LogTimes: make([]float64, 8)}
	if _, ok := m.BestMatch(sig); ok {
		t.Error("empty mapper returned a match")
	}
}

func TestMapperPersistence(t *testing.T) {
	space := conf.SparkSpace()
	dir := t.TempDir()
	path := dir + "/mapper.json"

	m := NewMapper(space, 6, 3)
	sig := m.Characterize(evaluatorFor(sparksim.TeraSort(20), 11))
	if err := m.Register("TeraSort", sig); err != nil {
		t.Fatal(err)
	}
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadMapper(space, path, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Probe design survives verbatim: a signature characterized with
	// the loaded mapper is comparable with the stored one.
	probe := loaded.Characterize(evaluatorFor(sparksim.TeraSort(30), 12))
	match, ok := loaded.BestMatch(probe)
	if !ok || match.Workload != "TeraSort" {
		t.Fatalf("match after reload = %+v ok=%v", match, ok)
	}
	// Missing file returns a fresh mapper.
	fresh, err := LoadMapper(space, dir+"/none.json", 6, 3)
	if err != nil || len(fresh.Known()) != 0 {
		t.Errorf("missing file: %v %v", fresh.Known(), err)
	}
}

func TestLoadMapperValidation(t *testing.T) {
	space := conf.SparkSpace()
	dir := t.TempDir()
	bad := dir + "/bad.json"
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := LoadMapper(space, bad, 6, 3); err == nil {
		t.Error("corrupt file accepted")
	}
	empty := dir + "/empty.json"
	os.WriteFile(empty, []byte(`{"signatures": {}}`), 0o644)
	if _, err := LoadMapper(space, empty, 6, 3); err == nil {
		t.Error("file without probes accepted")
	}
	wrongDim := dir + "/dim.json"
	os.WriteFile(wrongDim, []byte(`{"probes": [[0.5, 0.5]], "signatures": {}}`), 0o644)
	if _, err := LoadMapper(space, wrongDim, 6, 3); err == nil {
		t.Error("wrong-dimension probes accepted")
	}
}
