// Package mapping implements OtterTune-style workload mapping as an
// extension to ROBOTune's memoization (§6 of the paper contrasts the
// two: OtterTune maps unseen workloads to known ones, ROBOTune reuses
// knowledge only for repeated workload families).
//
// A workload is characterized by its *signature*: the execution times
// of a small fixed probe set of configurations. Two workloads whose
// signatures correlate strongly respond to configuration the same way
// — so a brand-new workload that behaves like an already-tuned family
// can inherit that family's parameter selection (and warm-start
// configurations) instead of paying the 100-sample selection cost.
//
// Signatures are compared with the Pearson correlation of log
// execution times, which is invariant to dataset-size scaling (a
// bigger input multiplies times roughly uniformly) and emphasizes the
// *shape* of the configuration response.
package mapping

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"

	"repro/internal/conf"
	"repro/internal/sample"
)

// Signature is a workload's response to the shared probe set.
type Signature struct {
	// LogTimes holds log(execution seconds) per probe configuration.
	LogTimes []float64 `json:"logTimes"`
}

// Valid reports whether the signature has probe data.
func (s Signature) Valid() bool { return len(s.LogTimes) > 0 }

// Evaluator is the subset of the black-box interface the mapper
// needs; *sparksim.Evaluator satisfies it via an adapter func.
type Evaluator func(c conf.Config) (seconds float64)

// Mapper characterizes workloads over a fixed probe design and finds
// the most similar previously registered workload. It is safe for
// concurrent use.
type Mapper struct {
	space  *conf.Space
	probes sample.Design

	mu   sync.Mutex
	sigs map[string]Signature
}

// NewMapper builds a mapper over the given space with k probe
// configurations (default 8). The probe set is a maximin LHS design,
// deterministic in the seed, shared by every characterization so
// signatures are comparable.
func NewMapper(space *conf.Space, k int, seed uint64) *Mapper {
	if k <= 0 {
		k = 8
	}
	return &Mapper{
		space:  space,
		probes: sample.MaximinLHS(k, space.Dim(), 0, sample.NewRNG(seed^0x3a9)),
		sigs:   make(map[string]Signature),
	}
}

// ProbeCount returns the number of probe evaluations Characterize
// will spend.
func (m *Mapper) ProbeCount() int { return len(m.probes) }

// ProbeConfigs returns the decoded probe configurations.
func (m *Mapper) ProbeConfigs() []conf.Config {
	out := make([]conf.Config, len(m.probes))
	for i, u := range m.probes {
		out[i] = m.space.Decode(u)
	}
	return out
}

// Characterize evaluates the probe set against the objective and
// returns the workload's signature. The caller pays ProbeCount()
// evaluations.
func (m *Mapper) Characterize(eval Evaluator) Signature {
	sig := Signature{LogTimes: make([]float64, len(m.probes))}
	for i, c := range m.ProbeConfigs() {
		sec := eval(c)
		if sec <= 0 {
			sec = 1e-3
		}
		sig.LogTimes[i] = math.Log(sec)
	}
	return sig
}

// Register stores a workload family's signature for future matching.
func (m *Mapper) Register(workload string, sig Signature) error {
	if !sig.Valid() {
		return fmt.Errorf("mapping: empty signature for %q", workload)
	}
	if len(sig.LogTimes) != len(m.probes) {
		return fmt.Errorf("mapping: signature has %d probes, mapper uses %d",
			len(sig.LogTimes), len(m.probes))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sigs[workload] = Signature{LogTimes: append([]float64(nil), sig.LogTimes...)}
	return nil
}

// Known returns the registered workload names, sorted.
func (m *Mapper) Known() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.sigs))
	for w := range m.sigs {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// Match holds one similarity result.
type Match struct {
	Workload   string
	Similarity float64 // Pearson correlation in [-1, 1]
}

// BestMatch returns the registered workload most similar to the
// signature, with its correlation. ok is false when nothing is
// registered or no correlation is computable.
func (m *Mapper) BestMatch(sig Signature) (Match, bool) {
	matches := m.Matches(sig)
	if len(matches) == 0 {
		return Match{}, false
	}
	return matches[0], true
}

// Matches returns all registered workloads ranked by similarity
// (highest first). Workloads with undefined correlation (constant
// signatures) are skipped.
func (m *Mapper) Matches(sig Signature) []Match {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Match
	for w, s := range m.sigs {
		if len(s.LogTimes) != len(sig.LogTimes) {
			continue
		}
		r, ok := pearson(sig.LogTimes, s.LogTimes)
		if !ok {
			continue
		}
		out = append(out, Match{Workload: w, Similarity: r})
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Similarity != out[b].Similarity {
			return out[a].Similarity > out[b].Similarity
		}
		return out[a].Workload < out[b].Workload
	})
	return out
}

// pearson computes the Pearson correlation coefficient; ok is false
// when either vector is constant.
func pearson(a, b []float64) (float64, bool) {
	n := float64(len(a))
	if len(a) != len(b) || len(a) < 2 {
		return 0, false
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da := a[i] - ma
		db := b[i] - mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0, false
	}
	return cov / math.Sqrt(va*vb), true
}

// persisted is the JSON schema for Save/Load.
type persisted struct {
	Probes     [][]float64          `json:"probes"`
	Signatures map[string]Signature `json:"signatures"`
}

// Save writes the mapper's probe design and registered signatures to
// a JSON file, so mapping knowledge survives restarts alongside the
// memo store.
func (m *Mapper) Save(path string) error {
	m.mu.Lock()
	p := persisted{Probes: m.probes, Signatures: m.sigs}
	data, err := json.MarshalIndent(p, "", "  ")
	m.mu.Unlock()
	if err != nil {
		return fmt.Errorf("mapping: marshal: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("mapping: write: %w", err)
	}
	return os.Rename(tmp, path)
}

// LoadMapper restores a mapper written by Save. The persisted probe
// design is reused verbatim so old and new signatures stay
// comparable. A missing file returns a fresh mapper built from the
// fallback arguments, like memo.Load.
func LoadMapper(space *conf.Space, path string, k int, seed uint64) (*Mapper, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return NewMapper(space, k, seed), nil
	}
	if err != nil {
		return nil, fmt.Errorf("mapping: read: %w", err)
	}
	var p persisted
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("mapping: parse %s: %w", path, err)
	}
	if len(p.Probes) == 0 {
		return nil, fmt.Errorf("mapping: %s has no probe design", path)
	}
	for i, probe := range p.Probes {
		if len(probe) != space.Dim() {
			return nil, fmt.Errorf("mapping: probe %d has dim %d, space has %d", i, len(probe), space.Dim())
		}
	}
	m := &Mapper{space: space, probes: p.Probes, sigs: p.Signatures}
	if m.sigs == nil {
		m.sigs = make(map[string]Signature)
	}
	return m, nil
}
