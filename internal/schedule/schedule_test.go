package schedule

import (
	"repro/internal/backend"
	"testing"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/sparksim"
	"repro/internal/tuners"
)

func smallOptions() core.Options {
	o := core.Options{}
	o.GenericSamples = 12
	o.TuningSamples = 6
	o.Forest.Trees = 15
	o.PermuteRepeats = 2
	o.BO.CandidatePool = 32
	o.BO.Starts = 1
	o.BO.GP.Restarts = 1
	// Exercise the batched paths so the pool's opportunistic batch
	// grants are covered too.
	o.Parallel = 4
	o.BOBatch = 2
	return o
}

// campaignJobs builds a mixed campaign: one session per tuner family,
// each with a private evaluator, plus a second ROBOTune workload so the
// campaign is at least five sessions. The space is shared so best
// configs from separate runs are comparable with Config.Equal.
func campaignJobs(space *conf.Space) []Job {
	cluster := sparksim.PaperCluster()
	mk := func(w sparksim.Workload, seed uint64) *sparksim.Evaluator {
		return sparksim.NewEvaluator(cluster, w, seed, 480)
	}
	return []Job{
		{Tuner: core.New(nil, smallOptions()), Objective: mk(sparksim.TeraSort(20), 17),
			Space: space, Request: tuners.Request{Budget: 14, Seed: 11}},
		{Tuner: tuners.RandomSearch{}, Objective: mk(sparksim.KMeans(4), 23),
			Space: space, Request: tuners.Request{Budget: 12, Seed: 5}},
		{Tuner: tuners.BestConfig{RoundSize: 6}, Objective: mk(sparksim.PageRank(2), 31),
			Space: space, Request: tuners.Request{Budget: 12, Seed: 7}},
		{Tuner: tuners.Gunther{PopSize: 6, Elite: 2}, Objective: mk(sparksim.TeraSort(10), 41),
			Space: space, Request: tuners.Request{Budget: 14, Seed: 9}},
		{Tuner: core.New(nil, smallOptions()), Objective: mk(sparksim.KMeans(2), 53),
			Space: space, Request: tuners.Request{Budget: 12, Seed: 13}},
	}
}

func sameResult(t *testing.T, label string, a, b tuners.Result) {
	t.Helper()
	if a.Found != b.Found || a.BestSeconds != b.BestSeconds {
		t.Fatalf("%s: best mismatch: (%v, %v) vs (%v, %v)",
			label, a.Found, a.BestSeconds, b.Found, b.BestSeconds)
	}
	if a.Evals != b.Evals || a.SearchCost != b.SearchCost {
		t.Fatalf("%s: cost mismatch: (%d, %v) vs (%d, %v)",
			label, a.Evals, a.SearchCost, b.Evals, b.SearchCost)
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("%s: trace length %d vs %d", label, len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("%s: trace[%d] = %v vs %v", label, i, a.Trace[i], b.Trace[i])
		}
	}
	if len(a.Completed) != len(b.Completed) {
		t.Fatalf("%s: completed length %d vs %d", label, len(a.Completed), len(b.Completed))
	}
	for i := range a.Completed {
		if a.Completed[i] != b.Completed[i] {
			t.Fatalf("%s: completed[%d] = %v vs %v", label, i, a.Completed[i], b.Completed[i])
		}
	}
	if a.Found && !a.Best.Equal(b.Best) {
		t.Fatalf("%s: best config differs", label)
	}
}

// TestCampaignPoolSizeInvariance is the scheduler's core promise: a
// five-session campaign produces bit-identical results whether the
// evaluation pool has one slot (fully serialized evaluations) or
// enough for everyone, and matches unscheduled direct runs.
func TestCampaignPoolSizeInvariance(t *testing.T) {
	space := conf.SparkSpace()
	direct := make([]tuners.Result, 0, 5)
	for _, j := range campaignJobs(space) {
		direct = append(direct, j.Tuner.Run(tuners.NewSession(j.Objective, j.Space, j.Request)))
	}

	serial := NewScheduler(1, 0).Run(campaignJobs(space))
	wide := NewScheduler(8, 8).Run(campaignJobs(space))

	if len(serial) != len(direct) || len(wide) != len(direct) {
		t.Fatalf("result count mismatch: %d direct, %d serial, %d wide",
			len(direct), len(serial), len(wide))
	}
	for i := range direct {
		sameResult(t, "pool=1 vs direct", serial[i], direct[i])
		sameResult(t, "pool=8 vs direct", wide[i], direct[i])
	}
}

// TestSessionLimit bounds in-flight sessions without dropping any job.
func TestSessionLimit(t *testing.T) {
	jobs := campaignJobs(conf.SparkSpace())[:4]
	res := NewScheduler(2, 2).Run(jobs)
	if len(res) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(res), len(jobs))
	}
	for i, r := range res {
		if len(r.Trace) == 0 {
			t.Fatalf("job %d produced an empty trace", i)
		}
	}
}

// TestPoolWrapCapabilities checks the wrapper's capability surface:
// batch evaluation is claimed only when the inner objective claims it,
// and identity/guard capabilities degrade instead of disappearing.
func TestPoolWrapCapabilities(t *testing.T) {
	p := NewPool(2)
	ev := sparksim.NewEvaluator(sparksim.PaperCluster(), sparksim.TeraSort(20), 3, 480)
	w := p.Wrap(ev)
	if _, ok := w.(tuners.BatchEvaluator); !ok {
		t.Fatal("wrapping a batch evaluator must preserve the batch capability")
	}
	id, ok := w.(interface{ WorkloadName() string })
	if !ok || id.WorkloadName() != ev.WorkloadName() {
		t.Fatalf("wrapped workload identity mismatch")
	}

	// A plain functional objective has no batch capability; the
	// wrapper must not invent one (its presence changes tuner paths).
	fo := &tuners.FuncObjective{Fn: func(c conf.Config) (float64, bool) { return 1, true }}
	wf := p.Wrap(fo)
	if _, ok := wf.(tuners.BatchEvaluator); ok {
		t.Fatal("wrapper must not add a batch capability the inner objective lacks")
	}
	rec := wf.EvaluateSpec(conf.SparkSpace().Default(), backend.EvalSpec{})
	if !rec.Completed || rec.Seconds != 1 {
		t.Fatalf("gated evaluation altered the record: %+v", rec)
	}
}
