package schedule

import (
	"context"
	"math"
	"repro/internal/backend"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/conf"
	"repro/internal/journal"
	"repro/internal/sparksim"
	"repro/internal/tuners"
)

// detFn is a deterministic, order-independent objective function:
// cost depends only on the configuration (keys summed in sorted
// order, so float rounding never depends on map iteration).
func detFn(c conf.Config) float64 {
	m := c.ToMap()
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := 5.0
	for _, k := range keys {
		s += math.Mod(m[k], 97) * 0.01
	}
	return s
}

// countingObjective builds a fresh functional objective whose live
// evaluations (replay never reaches Fn) increment calls.
func countingObjective(calls *int32, hook func(n int32)) *tuners.FuncObjective {
	return &tuners.FuncObjective{Fn: func(c conf.Config) (float64, bool) {
		n := atomic.AddInt32(calls, 1)
		if hook != nil {
			hook(n)
		}
		return detFn(c), true
	}}
}

// funcTask assembles one durable campaign task over a counting
// functional objective. dir == "" builds a non-durable task.
func funcTask(space *conf.Space, name string, tn tuners.SessionTuner, budget int, seed uint64, dir string, calls *int32, hook func(n int32)) Task {
	t := Task{
		Name:    name,
		Space:   space,
		Request: tuners.Request{Budget: budget, Seed: seed},
		New: func() (tuners.SessionTuner, tuners.Objective) {
			return tn, countingObjective(calls, hook)
		},
	}
	if dir != "" {
		t.JournalPath = dir + "/" + name + ".jnl"
		t.Meta = journal.Meta{Seed: seed, Budget: budget, Tuner: tn.Name(), Workload: name}
	}
	return t
}

// TestCampaignLedgerResume: a completed campaign re-run against its
// ledger returns every task from the done records — no tuner is
// constructed, no objective is called, and the results are identical.
func TestCampaignLedgerResume(t *testing.T) {
	dir := t.TempDir()
	opts := CampaignOptions{LedgerPath: dir + "/campaign.lgr", Seed: 42, Config: "test"}
	space := conf.SparkSpace()
	var calls1 int32
	mk := func(calls *int32) []Task {
		return []Task{
			funcTask(space, "rs-a", tuners.RandomSearch{}, 10, 3, dir, calls, nil),
			funcTask(space, "bc", tuners.BestConfig{RoundSize: 4}, 12, 5, dir, calls, nil),
			funcTask(space, "rs-b", tuners.RandomSearch{}, 8, 7, dir, calls, nil),
		}
	}
	sched := NewScheduler(2, 2)
	res1, err := sched.RunCampaign(mk(&calls1), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Resumed {
		t.Fatal("fresh campaign reported Resumed")
	}
	if calls1 == 0 {
		t.Fatal("fresh campaign ran no live evaluations")
	}
	for i, out := range res1.Tasks {
		if out.Failed != "" || out.Reused || !out.Result.Found {
			t.Fatalf("task %d: unexpected fresh outcome %+v", i, out)
		}
	}

	var calls2 int32
	res2, err := sched.RunCampaign(mk(&calls2), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Resumed {
		t.Fatal("second run did not see the ledger")
	}
	if calls2 != 0 {
		t.Fatalf("resumed completed campaign re-executed %d evaluations", calls2)
	}
	for i := range res2.Tasks {
		if !res2.Tasks[i].Reused {
			t.Fatalf("task %d not satisfied from the ledger", i)
		}
		sameResult(t, "ledger resume", res2.Tasks[i].Result, res1.Tasks[i].Result)
	}
	if res2.Unused != res1.Unused {
		t.Fatalf("unused drifted across resume: %d vs %d", res2.Unused, res1.Unused)
	}
}

// TestCampaignResumesMidGrid: kill (via context cancellation) one
// in-flight session of a campaign, resume the campaign, and check the
// stitched outcome is bit-identical to an uninterrupted run — with
// completed sessions skipped and the interrupted one continued from
// its journal, never re-executed.
func TestCampaignResumesMidGrid(t *testing.T) {
	const interruptAt = 6
	space := conf.SparkSpace()
	baselineTasks := func(dir string, calls *int32, hook func(int32), ctx context.Context) []Task {
		ts := []Task{
			funcTask(space, "done-a", tuners.RandomSearch{}, 9, 11, dir, calls, nil),
			funcTask(space, "victim", tuners.RandomSearch{}, 10, 13, dir, calls, hook),
			funcTask(space, "done-b", tuners.BestConfig{RoundSize: 5}, 10, 17, dir, calls, nil),
		}
		if ctx != nil {
			ts[1].Request.Ctx = ctx
		}
		return ts
	}

	// Uninterrupted baseline, no durability.
	var base int32
	sched := NewScheduler(1, 1)
	want, err := sched.RunCampaign(baselineTasks("", &base, nil, nil), CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	opts := CampaignOptions{LedgerPath: dir + "/campaign.lgr", Seed: 1}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var victimCalls int32
	hook := func(n int32) {
		if n == interruptAt {
			cancel()
		}
	}
	// The hook counter must only see the victim's calls.
	var calls1 int32
	run1Tasks := baselineTasks(dir, &calls1, nil, ctx)
	run1Tasks[1] = funcTask(space, "victim", tuners.RandomSearch{}, 10, 13, dir, &victimCalls, hook)
	run1Tasks[1].Request.Ctx = ctx
	res1, err := sched.RunCampaign(run1Tasks, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Tasks[1].Result.Cancelled {
		t.Fatal("victim session was not interrupted")
	}
	if int(victimCalls) != interruptAt {
		t.Fatalf("victim ran %d live evaluations before the kill, want %d", victimCalls, interruptAt)
	}

	// Resume: completed tasks come from the ledger, the victim resumes
	// from its session journal and spends only the remaining budget.
	var calls2, victimCalls2 int32
	run2Tasks := baselineTasks(dir, &calls2, nil, nil)
	run2Tasks[1] = funcTask(space, "victim", tuners.RandomSearch{}, 10, 13, dir, &victimCalls2, nil)
	res2, err := sched.RunCampaign(run2Tasks, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Resumed {
		t.Fatal("resume did not see the ledger")
	}
	if !res2.Tasks[0].Reused || !res2.Tasks[2].Reused {
		t.Fatal("completed sessions were not satisfied from the ledger")
	}
	if calls2 != 0 {
		t.Fatalf("completed sessions re-executed %d evaluations on resume", calls2)
	}
	if got, wantLive := int(victimCalls2), 10-interruptAt; got != wantLive {
		t.Fatalf("victim spent %d live evaluations on resume, want %d (zero re-execution)", got, wantLive)
	}
	for i := range want.Tasks {
		sameResult(t, "stitched vs uninterrupted", res2.Tasks[i].Result, want.Tasks[i].Result)
	}
}

// panicObjective panics on its nth live evaluation.
func panicObjective(calls *int32, at int32) *tuners.FuncObjective {
	return &tuners.FuncObjective{Fn: func(c conf.Config) (float64, bool) {
		if atomic.AddInt32(calls, 1) == at {
			panic("boom: injected session crash")
		}
		return detFn(c), true
	}}
}

// TestCampaignPanicContainment: a session that panics mid-evaluation
// is recorded as failed in the ledger; every other session completes,
// no pool slot leaks (RunCampaign's teardown assertion would error),
// and a resumed campaign does not re-run the crashed task.
func TestCampaignPanicContainment(t *testing.T) {
	dir := t.TempDir()
	opts := CampaignOptions{LedgerPath: dir + "/campaign.lgr", Seed: 9}
	space := conf.SparkSpace()
	var ok1, boom1 int32
	mk := func(ok, boom *int32) []Task {
		ts := []Task{
			funcTask(space, "steady-a", tuners.RandomSearch{}, 8, 3, dir, ok, nil),
			funcTask(space, "crasher", tuners.RandomSearch{}, 10, 5, dir, boom, nil),
			funcTask(space, "steady-b", tuners.BestConfig{RoundSize: 4}, 8, 7, dir, ok, nil),
		}
		ts[1].New = func() (tuners.SessionTuner, tuners.Objective) {
			return tuners.RandomSearch{}, panicObjective(boom, 4)
		}
		return ts
	}
	sched := NewScheduler(2, 3)
	res1, err := sched.RunCampaign(mk(&ok1, &boom1), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := res1.Tasks[1].Failed; !strings.Contains(got, "boom") {
		t.Fatalf("crashed task not recorded failed: %+v", res1.Tasks[1])
	}
	for _, i := range []int{0, 2} {
		if res1.Tasks[i].Failed != "" || !res1.Tasks[i].Result.Found {
			t.Fatalf("sibling task %d did not complete: %+v", i, res1.Tasks[i])
		}
	}
	if sched.Pool().InUse() != 0 {
		t.Fatalf("%d pool slots leaked past containment", sched.Pool().InUse())
	}

	// Resume: the failed task stays failed (a deterministic panic would
	// only repeat) and costs zero evaluations.
	var ok2, boom2 int32
	res2, err := sched.RunCampaign(mk(&ok2, &boom2), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Tasks[1].Reused || !strings.Contains(res2.Tasks[1].Failed, "boom") {
		t.Fatalf("failed task not settled from the ledger: %+v", res2.Tasks[1])
	}
	if ok2 != 0 || boom2 != 0 {
		t.Fatalf("resume re-executed evaluations: ok=%d boom=%d", ok2, boom2)
	}
}

// earlyStopTuner consumes `use` trials of its budget and then stops
// deliberately — its stepper is not an Extender, so the campaign can
// never grant it anything and its unspent budget flows to the pool.
type earlyStopTuner struct{ use int }

func (t earlyStopTuner) Name() string { return "EarlyStop" }

func (t earlyStopTuner) Tune(obj tuners.Objective, space *conf.Space, budget int, seed uint64) tuners.Result {
	return t.Run(tuners.NewSession(obj, space, tuners.Request{Budget: budget, Seed: seed}))
}

func (t earlyStopTuner) Run(s *tuners.Session) tuners.Result {
	return tuners.Drive(&earlyStopStepper{space: s.Space(), left: t.use}, s)
}

type earlyStopStepper struct {
	tuners.Protocol
	space *conf.Space
	left  int
}

func (st *earlyStopStepper) Done() bool { return st.left <= 0 }

func (st *earlyStopStepper) Propose(n int) []tuners.Proposal {
	st.CheckPropose(st.Done())
	st.left--
	p := []tuners.Proposal{{Config: st.space.Default()}}
	st.Proposed(p)
	return p
}

func (st *earlyStopStepper) Observe(c conf.Config, rec sparksim.EvalRecord) { st.Observed(c) }

// reallocTasks: task 0 early-stops 15 trials short; task 1 is a
// random search that can absorb every grant.
func reallocTasks(space *conf.Space, dir string, stopCalls, absorbCalls *int32, hook func(int32), ctx context.Context) []Task {
	t0 := funcTask(space, "stopper", earlyStopTuner{use: 5}, 20, 21, dir, stopCalls, nil)
	t1 := funcTask(space, "absorber", tuners.RandomSearch{}, 10, 23, dir, absorbCalls, hook)
	if ctx != nil {
		t1.Request.Ctx = ctx
	}
	return []Task{t0, t1}
}

// TestCampaignBudgetReallocation: evaluations unspent by an
// early-stopped session flow to a still-running one. The extended
// session is bit-identical to a session granted the full amount up
// front, the grant sequence is deterministic across runs, and the
// campaign finishes with strictly fewer unused evaluations than the
// non-reallocating scheduler.
func TestCampaignBudgetReallocation(t *testing.T) {
	sched := NewScheduler(1, 1)
	space := conf.SparkSpace()

	var plain, plainA int32
	off, err := sched.RunCampaign(reallocTasks(space, "", &plain, &plainA, nil, nil), CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if off.Unused != 15 {
		t.Fatalf("non-reallocating campaign banked %d unused, want 15", off.Unused)
	}
	if got := len(off.Tasks[1].Result.Trace); got != 10 {
		t.Fatalf("absorber ran %d trials without reallocation, want 10", got)
	}

	var on1, on1A int32
	run1, err := sched.RunCampaign(reallocTasks(space, "", &on1, &on1A, nil, nil), CampaignOptions{Reallocate: true})
	if err != nil {
		t.Fatal(err)
	}
	if run1.Unused >= off.Unused {
		t.Fatalf("reallocation left %d unused, not fewer than %d", run1.Unused, off.Unused)
	}
	if run1.Unused != 0 {
		t.Fatalf("reallocation left %d unused, want 0 (absorber is insatiable)", run1.Unused)
	}
	if got := len(run1.Tasks[1].Result.Trace); got != 25 {
		t.Fatalf("absorber ran %d trials with reallocation, want 25 (10 base + 15 granted)", got)
	}

	// Extension equivalence: granted budget spends exactly like base
	// budget — the extended session matches a direct run at 25.
	var direct int32
	obj := countingObjective(&direct, nil)
	want := tuners.RandomSearch{}.Run(tuners.NewSession(obj, space, tuners.Request{Budget: 25, Seed: 23}))
	sameResult(t, "extended vs direct", run1.Tasks[1].Result, want)

	// Grant determinism: a second fresh run decides the same grants.
	var on2, on2A int32
	run2, err := sched.RunCampaign(reallocTasks(space, "", &on2, &on2A, nil, nil), CampaignOptions{Reallocate: true})
	if err != nil {
		t.Fatal(err)
	}
	assertSameGrants(t, run1.Grants, run2.Grants)
}

// TestCampaignGrantReplayAfterKill: kill a reallocating campaign
// after a grant was journaled but only partially spent; the resumed
// campaign replays the recorded grant at the same trial boundary and
// finishes bit-identical to the uninterrupted run, grants included.
func TestCampaignGrantReplayAfterKill(t *testing.T) {
	sched := NewScheduler(1, 1)
	space := conf.SparkSpace()

	var plain, plainA int32
	want, err := sched.RunCampaign(reallocTasks(space, "", &plain, &plainA, nil, nil), CampaignOptions{Reallocate: true})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	opts := CampaignOptions{LedgerPath: dir + "/campaign.lgr", Reallocate: true, Seed: 2}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stop1, killed int32
	// 15 live absorber calls = 10 base trials + 5 into the first grant
	// of 10: the kill lands with grant seq 0 journaled and half-spent.
	res1, err := sched.RunCampaign(reallocTasks(space, dir, &stop1, &killed, func(n int32) {
		if n == 15 {
			cancel()
		}
	}, ctx), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Tasks[1].Result.Cancelled {
		t.Fatal("absorber was not interrupted")
	}
	if len(res1.Grants) == 0 {
		t.Fatal("kill landed before any grant was journaled; move the interrupt point")
	}

	var stop2, resumed int32
	res2, err := sched.RunCampaign(reallocTasks(space, dir, &stop2, &resumed, nil, nil), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Tasks[0].Reused {
		t.Fatal("completed stopper re-ran on resume")
	}
	if got := int(resumed); got != 25-15 {
		t.Fatalf("resume spent %d live evaluations, want %d (zero re-execution)", got, 25-15)
	}
	sameResult(t, "grant replay", res2.Tasks[1].Result, want.Tasks[1].Result)
	assertSameGrants(t, res2.Grants, want.Grants)
	if res2.Unused != want.Unused {
		t.Fatalf("unused mismatch: %d resumed vs %d uninterrupted", res2.Unused, want.Unused)
	}
}

func assertSameGrants(t *testing.T, got, want []journal.Grant) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("grant count %d vs %d: %+v vs %+v", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("grant %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestBatchGateCancelled: the batch gate re-checks cancellation before
// acquiring slots — a batch dispatched after its campaign died returns
// all-skipped records immediately instead of blocking on a full pool.
func TestBatchGateCancelled(t *testing.T) {
	p := NewPool(1)
	p.acquire(Bulk) // saturate: any acquire would block forever
	defer p.release()

	ev := sparksim.NewEvaluator(sparksim.PaperCluster(), sparksim.TeraSort(10), 3, 480)
	w := p.Wrap(ev).(backend.BatchEvaluator)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfgs := []conf.Config{conf.SparkSpace().Default(), conf.SparkSpace().Default()}
	recs := w.EvaluateSpecCtx(ctx, cfgs, backend.EvalSpec{Workers: 2})
	if len(recs) != len(cfgs) {
		t.Fatalf("got %d records for %d configs", len(recs), len(cfgs))
	}
	for i, r := range recs {
		if !r.Skipped {
			t.Fatalf("record %d not skipped after cancellation: %+v", i, r)
		}
	}
	if p.InUse() != 1 {
		t.Fatalf("cancelled batch changed pool occupancy: InUse=%d", p.InUse())
	}
}
